// ndlint: whole-program static analysis for NDlog source files.
//
// Usage:
//   ndlint [options] FILE...
//   ndlint [options] --builtin all            # lint the shipped protocols
//   ndlint --explain [CODE]                   # describe diagnostic codes
//
// Options:
//   --machine          tab-separated output (file, line, col, severity,
//                      code, rule, message) for CI artifacts
//   --Werror           exit non-zero on warnings, not just errors
//   --allow=ND403,...  suppress codes (adds to in-source pragmas)
//   --link-pred=NAME   extra link predicate for the ND3xx pass (repeatable;
//                      "link" is always included)
//   --builtin NAME     lint a shipped program: mincost, pathvector, dsr,
//                      linkstate, bgp-maybe, or all
//
// Exit codes: 0 clean (at the chosen threshold), 1 findings, 2 usage/IO.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/ndlog/analysis.h"
#include "src/ndlog/diagnostics.h"
#include "src/ndlog/lint.h"
#include "src/ndlog/parser.h"
#include "src/protocols/programs.h"

namespace {

using nettrails::Result;
using nettrails::ndlog::AnalyzedProgram;
using nettrails::ndlog::Diagnostic;
using nettrails::ndlog::DiagnosticEngine;
using nettrails::ndlog::DiagnosticInfo;
using nettrails::ndlog::LintOptions;
using nettrails::ndlog::Program;
using nettrails::ndlog::Severity;

struct CliOptions {
  bool machine = false;
  bool warnings_are_errors = false;
  LintOptions lint;
};

/// Lints one named source. Returns the findings (front-end failures become
/// ND001/ND002 diagnostics so every outcome renders uniformly).
DiagnosticEngine LintSource(const std::string& source,
                            const CliOptions& cli) {
  LintOptions options = cli.lint;
  std::vector<std::string> pragmas =
      nettrails::ndlog::ParseLintPragmas(source);
  options.allow.insert(options.allow.end(), pragmas.begin(), pragmas.end());

  DiagnosticEngine diags;
  Result<Program> parsed = nettrails::ndlog::Parse(source);
  if (!parsed.ok()) {
    diags.Add("ND001", Severity::kError, {}, "", parsed.status().message());
    return diags;
  }
  Result<AnalyzedProgram> analyzed =
      nettrails::ndlog::Analyze(std::move(parsed).value());
  if (!analyzed.ok()) {
    diags.Add("ND002", Severity::kError, {}, "", analyzed.status().message());
    return diags;
  }
  return nettrails::ndlog::LintProgram(analyzed.value(), options);
}

/// Renders findings for one file; returns the worst severity seen.
int ReportFindings(const std::string& file, const DiagnosticEngine& diags,
                   const CliOptions& cli) {
  int worst = -1;
  for (const Diagnostic& d : diags.diagnostics()) {
    std::cout << (cli.machine ? d.RenderMachine(file) : d.Render(file))
              << "\n";
    worst = std::max(worst, static_cast<int>(d.severity));
  }
  return worst;
}

int Explain(const std::string& code) {
  if (!code.empty()) {
    const DiagnosticInfo* info = nettrails::ndlog::FindDiagnostic(code);
    if (info == nullptr) {
      std::cerr << "ndlint: unknown diagnostic code " << code << "\n";
      return 2;
    }
    std::cout << info->code << " (" << SeverityName(info->default_severity)
              << "): " << info->summary << "\n";
    return 0;
  }
  for (const DiagnosticInfo& info : nettrails::ndlog::AllDiagnostics()) {
    std::cout << info.code << "\t" << SeverityName(info.default_severity)
              << "\t" << info.summary << "\n";
  }
  return 0;
}

const char* BuiltinProgram(const std::string& name) {
  if (name == "mincost") return nettrails::protocols::MincostProgram();
  if (name == "pathvector") return nettrails::protocols::PathVectorProgram();
  if (name == "dsr") return nettrails::protocols::DsrProgram();
  if (name == "linkstate") return nettrails::protocols::LinkStateProgram();
  if (name == "bgp-maybe") return nettrails::protocols::BgpMaybeProgram();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::vector<std::pair<std::string, std::string>> inputs;  // (label, source)
  std::vector<std::string> files;
  std::vector<std::string> builtins;
  bool explain = false;
  std::string explain_code;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--machine") {
      cli.machine = true;
    } else if (arg == "--Werror") {
      cli.warnings_are_errors = true;
    } else if (arg.rfind("--allow=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string code;
      while (std::getline(ss, code, ',')) {
        if (!code.empty()) cli.lint.allow.push_back(code);
      }
    } else if (arg.rfind("--link-pred=", 0) == 0) {
      cli.lint.link_predicates.insert(arg.substr(12));
    } else if (arg == "--explain") {
      explain = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') explain_code = argv[++i];
    } else if (arg == "--builtin") {
      if (i + 1 >= argc) {
        std::cerr << "ndlint: --builtin requires a program name\n";
        return 2;
      }
      builtins.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: ndlint [--machine] [--Werror] [--allow=CODES] "
                   "[--link-pred=NAME] [--builtin NAME|all] [--explain "
                   "[CODE]] FILE...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ndlint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (explain) return Explain(explain_code);

  for (const std::string& name : builtins) {
    if (name == "all") {
      for (const char* p :
           {"mincost", "pathvector", "dsr", "linkstate", "bgp-maybe"}) {
        inputs.emplace_back(std::string("builtin:") + p, BuiltinProgram(p));
      }
      continue;
    }
    const char* source = BuiltinProgram(name);
    if (source == nullptr) {
      std::cerr << "ndlint: unknown builtin program " << name
                << " (try mincost, pathvector, dsr, linkstate, bgp-maybe, all)\n";
      return 2;
    }
    inputs.emplace_back("builtin:" + name, source);
  }
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "ndlint: cannot read " << file << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    inputs.emplace_back(file, buf.str());
  }
  if (inputs.empty()) {
    std::cerr << "ndlint: no input (pass files or --builtin all)\n";
    return 2;
  }

  int worst = -1;
  for (const auto& [label, source] : inputs) {
    DiagnosticEngine diags = LintSource(source, cli);
    worst = std::max(worst, ReportFindings(label, diags, cli));
  }

  int threshold = cli.warnings_are_errors
                      ? static_cast<int>(Severity::kWarning)
                      : static_cast<int>(Severity::kError);
  return worst >= threshold ? 1 : 0;
}
