// Scan-vs-index join evidence for the secondary-index subsystem: the same
// workloads run with use_secondary_indexes on and off. Convergence benches
// measure full protocol fixpoint computation (InstallLinks to quiescence);
// churn benches measure the steady-state per-delta cascade (one link
// failure + recovery on a converged network), which is where the
// incremental-provenance line of work pays its throughput ceiling.
//
// Expected shape: path-vector probes the (large) path table with
// (loc, dst, cost) bound — asymptotically fewer candidate rows, the
// headline speedup. Mincost joins bind only the location attribute
// (per-node fan-out: every local row matches), so its gain comes from the
// O(1) hashed key index on PlanInsert/PlanDelete/Apply/CountOf rather than
// candidate reduction. The join_rows / index_probes counters make the
// difference visible.
#include <benchmark/benchmark.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

struct Fixture {
  net::Simulator sim;
  net::Topology topo;
  std::vector<std::unique_ptr<runtime::Engine>> engines;
};

runtime::CompiledProgramPtr CompileOrNull(const char* source) {
  Result<runtime::CompiledProgramPtr> prog = runtime::Compile(source);
  return prog.ok() ? *prog : nullptr;
}

net::Topology MakeTopo(const char* program, size_t n, uint64_t seed) {
  // Path-vector materializes every loop-free path, which explodes on
  // random graphs; a ring keeps it at two paths per pair while the path
  // table still reaches O(n^2) rows per node's neighborhood — exactly the
  // table the pv4 (bestcost, path) join probes. Mincost tolerates random
  // graphs.
  if (program == protocols::PathVectorProgram()) return net::MakeRing(n);
  Rng rng(seed);
  return net::MakeRandomConnected(n, 0.08, &rng, 8);
}

std::unique_ptr<Fixture> Build(const char* program, size_t n, bool indexed,
                               bool run = true) {
  runtime::CompiledProgramPtr prog = CompileOrNull(program);
  if (prog == nullptr) return nullptr;
  auto fx = std::make_unique<Fixture>();
  fx->topo = MakeTopo(program, n, /*seed=*/7);
  runtime::EngineOptions opts;
  opts.use_secondary_indexes = indexed;
  fx->engines = protocols::MakeEngines(&fx->sim, fx->topo, prog, opts);
  if (!protocols::InstallLinks(fx->topo, &fx->engines, &fx->sim, run).ok()) {
    return nullptr;
  }
  return fx;
}

void ReportEngineCounters(benchmark::State& state, const Fixture& fx,
                          uint64_t iterations) {
  uint64_t join_rows = 0, index_probes = 0, broadcasts = 0, fallbacks = 0,
           tuples = 0;
  for (const auto& e : fx.engines) {
    join_rows += e->stats().join_probes;
    index_probes += e->stats().index_probes;
    broadcasts += e->stats().broadcast_probes;
    fallbacks += e->stats().index_scan_fallbacks;
    tuples += e->TotalTuples();
  }
  if (iterations > 0) {
    state.counters["join_rows_per_iter"] =
        static_cast<double>(join_rows) / static_cast<double>(iterations);
  }
  state.counters["index_probes"] = static_cast<double>(index_probes);
  state.counters["broadcast_probes"] = static_cast<double>(broadcasts);
  state.counters["scan_fallbacks"] = static_cast<double>(fallbacks);
  state.counters["tuples"] = static_cast<double>(tuples);
}

void RunConvergence(benchmark::State& state, const char* program,
                    bool indexed) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::unique_ptr<Fixture> last;
  for (auto _ : state) {
    last = Build(program, n, indexed);
    if (last == nullptr) {
      state.SkipWithError("fixture build failed");
      return;
    }
  }
  if (last != nullptr) {
    ReportEngineCounters(state, *last, 1);
  }
}

void RunChurn(benchmark::State& state, const char* program, bool indexed) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::unique_ptr<Fixture> fx = Build(program, n, indexed);
  if (fx == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  uint64_t base_rows = 0;
  for (const auto& e : fx->engines) base_rows += e->stats().join_probes;
  const net::CostedLink& link = fx->topo.links.front();
  uint64_t iterations = 0;
  for (auto _ : state) {
    Status failed = protocols::FailLink(static_cast<NodeId>(link.a),
                                        static_cast<NodeId>(link.b), link.cost,
                                        &fx->engines, &fx->sim);
    Status recovered = protocols::RecoverLink(
        static_cast<NodeId>(link.a), static_cast<NodeId>(link.b), link.cost,
        &fx->engines, &fx->sim);
    if (!failed.ok() || !recovered.ok()) {
      state.SkipWithError("link churn failed");
      return;
    }
    ++iterations;
  }
  uint64_t total_rows = 0;
  for (const auto& e : fx->engines) total_rows += e->stats().join_probes;
  ReportEngineCounters(state, *fx, 0);
  if (iterations > 0) {
    state.counters["join_rows_per_iter"] =
        static_cast<double>(total_rows - base_rows) /
        static_cast<double>(iterations);
  }
}

// Legacy-BGP announcement throughput: a routing table of `n` prefixes in
// inputRoute, then outputRoute announcements whose maybe-rule join probes
// inputRoute on (AS, Prefix). The probe matches exactly one row; the scan
// baseline walks all n — the paper's legacy-application workload is where
// scan-per-probe hurts most.
void RunBgpAnnounce(benchmark::State& state, bool indexed) {
  const int64_t n = state.range(0);
  runtime::CompiledProgramPtr prog =
      CompileOrNull(protocols::BgpMaybeProgram());
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  net::Simulator sim;
  sim.AddNode();
  runtime::EngineOptions opts;
  opts.use_secondary_indexes = indexed;
  runtime::Engine engine(&sim, 0, prog, opts);
  for (int64_t p = 0; p < n; ++p) {
    Tuple in("inputRoute",
             {Value::Address(0), Value::Address(5), Value::Int(p),
              Value::List({Value::Address(5), Value::Int(p)})});
    if (!engine.Insert(in).ok()) {
      state.SkipWithError("route load failed");
      return;
    }
  }
  int64_t next = 0;
  for (auto _ : state) {
    int64_t p = next++ % n;
    Tuple out("outputRoute",
              {Value::Address(0), Value::Address(3), Value::Int(p),
               Value::List({Value::Address(0), Value::Address(5),
                            Value::Int(p)})});
    if (!engine.Insert(out).ok()) {
      state.SkipWithError("announce failed");
      return;
    }
  }
  state.counters["routing_table"] = static_cast<double>(n);
  state.counters["index_probes"] =
      static_cast<double>(engine.stats().index_probes);
  state.counters["scan_fallbacks"] =
      static_cast<double>(engine.stats().index_scan_fallbacks);
}

void BM_Join_BgpAnnounce_Indexed(benchmark::State& state) {
  RunBgpAnnounce(state, true);
}
void BM_Join_BgpAnnounce_Scan(benchmark::State& state) {
  RunBgpAnnounce(state, false);
}

void BM_Join_MincostConvergence_Indexed(benchmark::State& state) {
  RunConvergence(state, protocols::MincostProgram(), true);
}
void BM_Join_MincostConvergence_Scan(benchmark::State& state) {
  RunConvergence(state, protocols::MincostProgram(), false);
}
void BM_Join_PathVectorConvergence_Indexed(benchmark::State& state) {
  RunConvergence(state, protocols::PathVectorProgram(), true);
}
void BM_Join_PathVectorConvergence_Scan(benchmark::State& state) {
  RunConvergence(state, protocols::PathVectorProgram(), false);
}
void BM_Join_MincostChurn_Indexed(benchmark::State& state) {
  RunChurn(state, protocols::MincostProgram(), true);
}
void BM_Join_MincostChurn_Scan(benchmark::State& state) {
  RunChurn(state, protocols::MincostProgram(), false);
}
void BM_Join_PathVectorChurn_Indexed(benchmark::State& state) {
  RunChurn(state, protocols::PathVectorProgram(), true);
}
void BM_Join_PathVectorChurn_Scan(benchmark::State& state) {
  RunChurn(state, protocols::PathVectorProgram(), false);
}

BENCHMARK(BM_Join_MincostConvergence_Indexed)
    ->Arg(64)->Arg(96)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_MincostConvergence_Scan)
    ->Arg(64)->Arg(96)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_PathVectorConvergence_Indexed)
    ->Arg(64)->Arg(96)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_PathVectorConvergence_Scan)
    ->Arg(64)->Arg(96)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_MincostChurn_Indexed)
    ->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_MincostChurn_Scan)
    ->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_PathVectorChurn_Indexed)
    ->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_PathVectorChurn_Scan)
    ->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_BgpAnnounce_Indexed)
    ->Arg(20000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Join_BgpAnnounce_Scan)
    ->Arg(20000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace nettrails
