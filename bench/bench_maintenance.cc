// Experiment E8: incremental provenance maintenance cost. For MINCOST and
// path-vector on growing networks, measures full-convergence time with and
// without the ExSPAN provenance rewrite, and reports state size, provenance
// size, and protocol traffic as counters. The paper's qualitative claim:
// maintenance adds a constant-factor overhead (extra views and messages),
// not an asymptotic one.
#include <benchmark/benchmark.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

// Args are (nodes, batch_size): batch_size=1 is the serial pipeline,
// batch_size>1 the batched delta pipeline (identical fixpoints, proven by
// tests/runtime/batch_equivalence_test.cc). The batch counters show where
// the amortization lands: trigger_dispatches and agg_recomputes drop while
// rule_firings and tuples (content) stay put.
void RunMaintenance(benchmark::State& state, const char* program,
                    bool provenance) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t batch_size = static_cast<uint32_t>(state.range(1));
  runtime::CompileOptions copts;
  copts.provenance = provenance;
  Result<runtime::CompiledProgramPtr> prog = runtime::Compile(program, copts);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  Rng rng(2011);
  net::Topology topo = net::MakeRandomConnected(n, 0.08, &rng, 8);

  size_t tuples = 0, prov_tuples = 0;
  uint64_t messages = 0, bytes = 0, firings = 0;
  uint64_t dispatches = 0, batches = 0, agg_recomputes = 0;
  for (auto _ : state) {
    net::Simulator sim;
    runtime::EngineOptions opts;
    opts.batch_size = batch_size;
    auto engines = protocols::MakeEngines(&sim, topo, *prog, opts);
    if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
      state.SkipWithError("install failed");
      return;
    }
    tuples = 0;
    prov_tuples = 0;
    firings = 0;
    dispatches = 0;
    batches = 0;
    agg_recomputes = 0;
    for (const auto& e : engines) {
      tuples += e->TotalTuples(false);
      prov_tuples += e->TotalTuples(true);
      firings += e->stats().rule_firings;
      dispatches += e->stats().trigger_dispatches;
      batches += e->stats().batches_processed;
      agg_recomputes += e->stats().agg_recomputes;
    }
    messages = sim.total_traffic().messages;
    bytes = sim.total_traffic().bytes;
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["batch_size"] = static_cast<double>(batch_size);
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["prov_tuples"] = static_cast<double>(prov_tuples);
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["rule_firings"] = static_cast<double>(firings);
  state.counters["trigger_dispatches"] = static_cast<double>(dispatches);
  state.counters["batches"] = static_cast<double>(batches);
  state.counters["agg_recomputes"] = static_cast<double>(agg_recomputes);
}

void BM_Mincost_NoProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::MincostProgram(), false);
}
void BM_Mincost_WithProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::MincostProgram(), true);
}
void BM_PathVector_NoProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::PathVectorProgram(), false);
}
void BM_PathVector_WithProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::PathVectorProgram(), true);
}

BENCHMARK(BM_Mincost_NoProvenance)
    ->Args({8, 1})->Args({8, 64})->Args({16, 1})->Args({16, 64})
    ->Args({24, 64})->Args({32, 1})->Args({32, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mincost_WithProvenance)
    ->Args({8, 1})->Args({8, 64})->Args({16, 1})->Args({16, 64})
    ->Args({24, 64})->Args({32, 1})->Args({32, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PathVector_NoProvenance)
    ->Args({8, 1})->Args({8, 64})->Args({12, 1})->Args({12, 64})
    ->Args({16, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PathVector_WithProvenance)
    ->Args({8, 1})->Args({8, 64})->Args({12, 1})->Args({12, 64})
    ->Args({16, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails
