// Experiment E8: incremental provenance maintenance cost. For MINCOST and
// path-vector on growing networks, measures full-convergence time with and
// without the ExSPAN provenance rewrite, and reports state size, provenance
// size, and protocol traffic as counters. The paper's qualitative claim:
// maintenance adds a constant-factor overhead (extra views and messages),
// not an asymptotic one.
#include <benchmark/benchmark.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

void RunMaintenance(benchmark::State& state, const char* program,
                    bool provenance) {
  const size_t n = static_cast<size_t>(state.range(0));
  runtime::CompileOptions copts;
  copts.provenance = provenance;
  Result<runtime::CompiledProgramPtr> prog = runtime::Compile(program, copts);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  Rng rng(2011);
  net::Topology topo = net::MakeRandomConnected(n, 0.08, &rng, 8);

  size_t tuples = 0, prov_tuples = 0;
  uint64_t messages = 0, bytes = 0, firings = 0;
  for (auto _ : state) {
    net::Simulator sim;
    auto engines = protocols::MakeEngines(&sim, topo, *prog);
    if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
      state.SkipWithError("install failed");
      return;
    }
    tuples = 0;
    prov_tuples = 0;
    firings = 0;
    for (const auto& e : engines) {
      tuples += e->TotalTuples(false);
      prov_tuples += e->TotalTuples(true);
      firings += e->stats().rule_firings;
    }
    messages = sim.total_traffic().messages;
    bytes = sim.total_traffic().bytes;
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["prov_tuples"] = static_cast<double>(prov_tuples);
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["rule_firings"] = static_cast<double>(firings);
}

void BM_Mincost_NoProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::MincostProgram(), false);
}
void BM_Mincost_WithProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::MincostProgram(), true);
}
void BM_PathVector_NoProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::PathVectorProgram(), false);
}
void BM_PathVector_WithProvenance(benchmark::State& state) {
  RunMaintenance(state, protocols::PathVectorProgram(), true);
}

BENCHMARK(BM_Mincost_NoProvenance)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mincost_WithProvenance)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PathVector_NoProvenance)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PathVector_WithProvenance)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails
