// Provenance hot-path microbench: VID digesting (f_mkvid / TupleVid over
// value lists) and eh_* view materialization. Profiles after PR 1/2 show
// these dominate convergence wall time — every rule firing re-digests its
// body tuples into VIDs and materializes an eh_<rule> row whose fields
// include the (often long) path list and the VID list.
//
// MkVidRepeat measures the hot pattern: the SAME path list digested once
// per firing (cacheable — with hashes cached in the shared list rep this
// is O(1) amortized). MkVidFresh digests a list built from scratch each
// iteration (the mandatory once-per-distinct-list cost, a cache cannot
// help beyond the first walk). EhMaterialization drives the full rewrite
// through a converged-network link flap and reports provenance table
// sizes, so storage-layer changes (hash-primary rows) show up here too.
#include <benchmark/benchmark.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/builtins.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

ValueList MakePath(int64_t len) {
  ValueList path;
  path.reserve(static_cast<size_t>(len));
  for (int64_t i = 0; i < len; ++i) {
    path.push_back(Value::Address(static_cast<NodeId>(i)));
  }
  return path;
}

// f_mkvid("path", @0, Dst, [path...], Cost) with one shared list value,
// re-digested every iteration — the per-firing pattern of the eh_* rules.
void BM_Provenance_MkVidRepeat(benchmark::State& state) {
  const int64_t len = state.range(0);
  const runtime::BuiltinFn* fn = runtime::FindBuiltin("f_mkvid");
  std::vector<Value> args{Value::Str("path"), Value::Address(0),
                          Value::Address(static_cast<NodeId>(len)),
                          Value::List(MakePath(len)), Value::Int(7)};
  for (auto _ : state) {
    Result<Value> v = (*fn)(args);
    if (!v.ok()) {
      state.SkipWithError("f_mkvid failed");
      return;
    }
    benchmark::DoNotOptimize(v.value());
  }
  state.counters["path_len"] = static_cast<double>(len);
}
BENCHMARK(BM_Provenance_MkVidRepeat)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// Same digest over a list constructed fresh per iteration: the unavoidable
// first-walk cost per distinct list (plus construction, paid identically
// before and after caching).
void BM_Provenance_MkVidFresh(benchmark::State& state) {
  const int64_t len = state.range(0);
  const runtime::BuiltinFn* fn = runtime::FindBuiltin("f_mkvid");
  for (auto _ : state) {
    std::vector<Value> args{Value::Str("path"), Value::Address(0),
                            Value::Address(static_cast<NodeId>(len)),
                            Value::List(MakePath(len)), Value::Int(7)};
    Result<Value> v = (*fn)(args);
    if (!v.ok()) {
      state.SkipWithError("f_mkvid failed");
      return;
    }
    benchmark::DoNotOptimize(v.value());
  }
  state.counters["path_len"] = static_cast<double>(len);
}
BENCHMARK(BM_Provenance_MkVidFresh)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// Engine-side VID digest (TupleVid) over a tuple whose fields include a
// shared path list — the aggregate-provenance and vid-index pattern.
void BM_Provenance_TupleVid(benchmark::State& state) {
  const int64_t len = state.range(0);
  ValueList fields{Value::Address(0), Value::Address(static_cast<NodeId>(len)),
                   Value::List(MakePath(len)), Value::Int(7)};
  for (auto _ : state) {
    Vid vid = runtime::TupleVid("path", fields);
    benchmark::DoNotOptimize(vid);
  }
  state.counters["path_len"] = static_cast<double>(len);
}
BENCHMARK(BM_Provenance_TupleVid)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// Full eh_* materialization cost: a converged MINCOST network with the
// provenance rewrite, one link flap per iteration. Dominated by digesting
// VIDs and inserting/retracting eh_<rule> / prov / ruleExec rows.
void BM_Provenance_EhMaterializationFlap(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t batch_size = static_cast<uint32_t>(state.range(1));
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::MincostProgram());
  if (!prog.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  Rng rng(1);
  net::Topology topo = net::MakeRandomConnected(n, 0.08, &rng, 4);
  net::Simulator sim;
  runtime::EngineOptions opts;
  opts.batch_size = batch_size;
  auto engines = protocols::MakeEngines(&sim, topo, *prog, opts);
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
    state.SkipWithError("install failed");
    return;
  }
  const net::CostedLink& flap = topo.links[topo.links.size() / 2];
  for (auto _ : state) {
    (void)protocols::FailLink(flap.a, flap.b, flap.cost, &engines, &sim);
    (void)protocols::RecoverLink(flap.a, flap.b, flap.cost, &engines, &sim);
  }
  size_t prov_tuples = 0;
  uint64_t hash_cache_hits = 0, vid_intern_hits = 0;
  for (const auto& e : engines) {
    prov_tuples += e->TotalTuples(true);
    hash_cache_hits += e->stats().hash_cache_hits;
    vid_intern_hits += e->stats().vid_intern_hits;
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["batch_size"] = static_cast<double>(batch_size);
  state.counters["prov_tuples"] = static_cast<double>(prov_tuples);
  state.counters["hash_cache_hits"] = static_cast<double>(hash_cache_hits);
  state.counters["vid_intern_hits"] = static_cast<double>(vid_intern_hits);
}
BENCHMARK(BM_Provenance_EhMaterializationFlap)
    ->Args({8, 1})->Args({8, 64})
    ->Args({16, 1})->Args({16, 64})
    ->Args({24, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails
