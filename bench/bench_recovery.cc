// Crash/recovery cost: virtual time-to-reconverge and messages-to-recover
// after CrashNode + RestartNode, comparing a warm restart (restore from a
// checkpoint of the converged state, then reconcile via neighbor
// re-announcement) against a cold restart (restore from an empty pre-boot
// checkpoint, rebuilding the node's entire state from re-announcements).
// Because reconciliation is re-announcement-based (neighbors re-derive and
// re-ship everything rooted at the cycled links either way), the wire cost
// of recovery is nearly warmth-independent; the checkpoint's value is the
// restored node's local state (bases, soft-state deadlines, aggregate
// internals, provenance) — visible in per-cycle CPU time, not messages.
// Both are dwarfed by msgs_crash: the survivors' reroute-around-the-crash
// cascade, which no restart strategy can skip.
//
// Counters (all per crash+restart cycle, averaged over the bench loop):
//   virtual_us_reconverge — simulator time from SetNodeUp(up) to quiescence
//   msgs_recover          — frames shipped during the restart phase
//   msgs_crash            — frames of the crash-side reroute cascade
#include <benchmark/benchmark.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

runtime::CompiledProgramPtr CompileCached(const char* source) {
  Result<runtime::CompiledProgramPtr> r = runtime::Compile(source);
  return r.ok() ? *r : nullptr;
}

void RunCrashRestart(benchmark::State& state, const char* program,
                     double p, bool warm) {
  const size_t n = static_cast<size_t>(state.range(0));
  runtime::CompiledProgramPtr prog = CompileCached(program);
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Rng rng(1);
  net::Topology topo = net::MakeRandomConnected(n, p, &rng, 4);
  net::Simulator sim;
  auto engines = protocols::MakeEngines(&sim, topo, prog);
  const NodeId victim = static_cast<NodeId>(n / 2);
  // Cold restart restores this pre-boot snapshot: empty tables, so the
  // restarted node owns nothing and every row is re-derived from scratch.
  runtime::EngineCheckpoint cold_ckpt = engines[victim]->TakeCheckpoint();
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
    state.SkipWithError("install failed");
    return;
  }
  // Warm restart restores the converged state; recovery then only
  // reconciles the remotely-grounded slice.
  runtime::EngineCheckpoint warm_ckpt = engines[victim]->TakeCheckpoint();
  const runtime::EngineCheckpoint& ckpt = warm ? warm_ckpt : cold_ckpt;

  uint64_t cycles = 0, msgs_crash = 0, msgs_recover = 0, reconverge_us = 0;
  for (auto _ : state) {
    uint64_t msgs0 = sim.total_traffic().messages;
    if (!protocols::CrashNode(victim, topo, &engines, &sim).ok()) {
      state.SkipWithError("crash failed");
      return;
    }
    uint64_t msgs1 = sim.total_traffic().messages;
    net::Time t0 = sim.now();
    if (!protocols::RestartNode(victim, ckpt, topo, &engines, &sim).ok()) {
      state.SkipWithError("restart failed");
      return;
    }
    msgs_crash += msgs1 - msgs0;
    msgs_recover += sim.total_traffic().messages - msgs1;
    reconverge_us += sim.now() - t0;
    ++cycles;
  }
  state.counters["nodes"] = static_cast<double>(n);
  if (cycles > 0) {
    state.counters["virtual_us_reconverge"] =
        static_cast<double>(reconverge_us) / static_cast<double>(cycles);
    state.counters["msgs_recover"] =
        static_cast<double>(msgs_recover) / static_cast<double>(cycles);
    state.counters["msgs_crash"] =
        static_cast<double>(msgs_crash) / static_cast<double>(cycles);
  }
}

void BM_Recovery_Mincost_WarmRestore(benchmark::State& state) {
  RunCrashRestart(state, protocols::MincostProgram(), 0.08, /*warm=*/true);
}
void BM_Recovery_Mincost_ColdRestart(benchmark::State& state) {
  RunCrashRestart(state, protocols::MincostProgram(), 0.08, /*warm=*/false);
}
void BM_Recovery_PathVector_WarmRestore(benchmark::State& state) {
  RunCrashRestart(state, protocols::PathVectorProgram(), 0.04, /*warm=*/true);
}
void BM_Recovery_PathVector_ColdRestart(benchmark::State& state) {
  RunCrashRestart(state, protocols::PathVectorProgram(), 0.04,
                  /*warm=*/false);
}

BENCHMARK(BM_Recovery_Mincost_WarmRestore)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_Mincost_ColdRestart)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_PathVector_WarmRestore)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Recovery_PathVector_ColdRestart)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails
