// Experiment E11: hypertree layout scalability — the responsiveness proxy
// for the GUI's "smooth transitions". Layout and refocus cost on synthetic
// provenance DAGs from 100 to 100k vertices.
#include <benchmark/benchmark.h>

#include "src/common/rand.h"
#include "src/viz/export.h"
#include "src/viz/hypertree.h"

namespace nettrails {
namespace {

// Synthetic provenance-shaped graph: alternating tuple / rule-exec levels
// with fanout drawn from [1, 4].
provenance::Graph SyntheticProvenance(size_t target_vertices, uint64_t seed) {
  provenance::Graph g;
  Rng rng(seed);
  g.root = 1;
  Vid next = 1;
  std::vector<Vid> frontier;
  g.vertices[next] = {next, provenance::VertexKind::kTuple, 0, "t1", false};
  frontier.push_back(next++);
  while (g.vertices.size() < target_vertices && !frontier.empty()) {
    std::vector<Vid> next_frontier;
    for (Vid v : frontier) {
      if (g.vertices.size() >= target_vertices) break;
      size_t fanout = 1 + rng.NextBelow(4);
      bool parent_tuple =
          g.vertices[v].kind == provenance::VertexKind::kTuple;
      for (size_t c = 0; c < fanout; ++c) {
        if (g.vertices.size() >= target_vertices) break;
        Vid id = next++;
        provenance::VertexKind kind = parent_tuple
                                          ? provenance::VertexKind::kRuleExec
                                          : provenance::VertexKind::kTuple;
        g.vertices[id] = {id, kind,
                          static_cast<NodeId>(rng.NextBelow(64)),
                          "v" + std::to_string(id), false};
        g.edges.push_back({v, id, false});
        next_frontier.push_back(id);
      }
    }
    frontier = std::move(next_frontier);
  }
  // Mark leaves base (single pass over edges; ChildrenOf would be O(V*E)).
  std::set<Vid> has_children;
  for (const provenance::GraphEdge& e : g.edges) has_children.insert(e.from);
  for (auto& [id, v] : g.vertices) v.is_base = !has_children.count(id);
  return g;
}

void BM_HypertreeLayout(benchmark::State& state) {
  provenance::Graph g =
      SyntheticProvenance(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    viz::Hypertree ht(g);
    benchmark::DoNotOptimize(ht.size());
  }
  state.counters["vertices"] = static_cast<double>(g.vertices.size());
}

BENCHMARK(BM_HypertreeLayout)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_HypertreeRefocus(benchmark::State& state) {
  provenance::Graph g =
      SyntheticProvenance(static_cast<size_t>(state.range(0)), 3);
  viz::Hypertree ht(g);
  std::vector<Vid> ids;
  for (const auto& [id, n] : ht.nodes()) ids.push_back(id);
  size_t i = 0;
  for (auto _ : state) {
    ht.Focus(ids[i++ % ids.size()]);
  }
  state.counters["vertices"] = static_cast<double>(g.vertices.size());
}

BENCHMARK(BM_HypertreeRefocus)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_HypertreeTransitionFrames(benchmark::State& state) {
  provenance::Graph g = SyntheticProvenance(5000, 3);
  viz::Hypertree ht(g);
  std::vector<Vid> ids;
  for (const auto& [id, n] : ht.nodes()) ids.push_back(id);
  const size_t frames = static_cast<size_t>(state.range(0));
  size_t i = 1;
  for (auto _ : state) {
    auto fs = ht.TransitionFrames(ids[i++ % ids.size()], frames);
    benchmark::DoNotOptimize(fs.size());
  }
  state.counters["frames"] = static_cast<double>(frames);
}

BENCHMARK(BM_HypertreeTransitionFrames)->Arg(4)->Arg(16)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_DotExport(benchmark::State& state) {
  provenance::Graph g =
      SyntheticProvenance(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    std::string dot = viz::ToDot(g);
    benchmark::DoNotOptimize(dot.size());
  }
  state.counters["vertices"] = static_cast<double>(g.vertices.size());
}

BENCHMARK(BM_DotExport)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails
