// Experiment E9: cascading effects of topology updates. Measures the cost
// of reconverging state AND provenance after a link failure/recovery flap,
// and compares incremental maintenance against recomputation from scratch
// (the paper's motivation for *incremental* provenance maintenance).
// MINCOST is the primary workload (it scales to the larger networks);
// path-vector runs at small sizes, where its loop-free path enumeration
// stays tractable.
//
// The flap benchmarks take (nodes, batch_size) so one run compares the
// serial pipeline (batch_size=1) against batched delta processing: the
// dispatches_per_flap counter (trigger-index dispatches per converged
// flap) is the amortization headline — batch_size>=8 must cut it >=2x —
// with msgs_per_flap showing the per-destination frame win on the wire
// (tuples_per_flap stays constant: framing changes packaging, not
// content).
#include <benchmark/benchmark.h>

#include <string>

#include "src/common/alloc_hook.h"
#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace {

// Set by main() from --topology=<file>; empty selects the default corpus
// file. Lives at global scope so both main() and the benches see it.
std::string g_topology_path;

}  // namespace

namespace nettrails {
namespace {

// The RealTopology benches default to the committed Abilene-like corpus
// file, so benches and the scenario matrix exercise the same graphs.
std::string TopologyPath() {
  if (!g_topology_path.empty()) return g_topology_path;
  return std::string(NETTRAILS_SOURCE_DIR) +
         "/examples/topologies/abilene.topo";
}

runtime::CompiledProgramPtr CompileCached(const char* source) {
  Result<runtime::CompiledProgramPtr> r = runtime::Compile(source);
  return r.ok() ? *r : nullptr;
}

uint64_t TotalDispatches(
    const std::vector<std::unique_ptr<runtime::Engine>>& engines) {
  uint64_t total = 0;
  for (const auto& e : engines) total += e->stats().trigger_dispatches;
  return total;
}

// One link flap (fail + recover) on a converged network, incremental.
// Shared by the random-topology and corpus-file benches; counters are
// identical either way so the columns stay comparable.
void RunFlapLoop(benchmark::State& state, runtime::CompiledProgramPtr prog,
                 const net::Topology& topo, uint32_t batch_size) {
  net::Simulator sim;
  runtime::EngineOptions opts;
  opts.batch_size = batch_size;
  auto engines = protocols::MakeEngines(&sim, topo, prog, opts);
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
    state.SkipWithError("install failed");
    return;
  }
  const net::CostedLink& flap = topo.links[topo.links.size() / 2];

  uint64_t flaps = 0;
  uint64_t base_msgs = sim.total_traffic().messages;
  uint64_t base_tuples = sim.total_traffic().tuples;
  uint64_t base_disp = TotalDispatches(engines);
  uint64_t base_allocs = AllocCount();
  uint64_t base_drain = 0;
  for (const auto& e : engines) base_drain += e->stats().drain_allocs;
  for (auto _ : state) {
    (void)protocols::FailLink(flap.a, flap.b, flap.cost, &engines, &sim);
    (void)protocols::RecoverLink(flap.a, flap.b, flap.cost, &engines, &sim);
    ++flaps;
  }
  state.counters["nodes"] = static_cast<double>(topo.num_nodes);
  state.counters["batch_size"] = static_cast<double>(batch_size);
  if (flaps > 0) {
    state.counters["msgs_per_flap"] =
        static_cast<double>(sim.total_traffic().messages - base_msgs) /
        static_cast<double>(flaps);
    state.counters["tuples_per_flap"] =
        static_cast<double>(sim.total_traffic().tuples - base_tuples) /
        static_cast<double>(flaps);
    state.counters["dispatches_per_flap"] =
        static_cast<double>(TotalDispatches(engines) - base_disp) /
        static_cast<double>(flaps);
    // Heap allocations per converged flap (operator-new calls; whole
    // process, but the bench loop is the only allocator while running).
    // Reads 0 unless built with -DNETTRAILS_COUNT_ALLOCS=ON; pinned by
    // scripts/check_alloc_budget.sh in CI.
    state.counters["allocs_per_flap"] =
        static_cast<double>(AllocCount() - base_allocs) /
        static_cast<double>(flaps);
    uint64_t drain = 0;
    for (const auto& e : engines) drain += e->stats().drain_allocs;
    state.counters["drain_allocs_per_flap"] =
        static_cast<double>(drain - base_drain) / static_cast<double>(flaps);
  }
}

void RunIncrementalFlap(benchmark::State& state, const char* program,
                        double p) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t batch_size = static_cast<uint32_t>(state.range(1));
  runtime::CompiledProgramPtr prog = CompileCached(program);
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Rng rng(1);
  net::Topology topo = net::MakeRandomConnected(n, p, &rng, 4);
  RunFlapLoop(state, prog, topo, batch_size);
}

void BM_Churn_Mincost_IncrementalFlap(benchmark::State& state) {
  RunIncrementalFlap(state, protocols::MincostProgram(), 0.08);
}
void BM_Churn_PathVector_IncrementalFlap(benchmark::State& state) {
  RunIncrementalFlap(state, protocols::PathVectorProgram(), 0.04);
}

// Same flap loop on a committed corpus topology (default: the Abilene-like
// research map; override with --topology=<file>). Arg is batch_size. The
// name deliberately avoids the 'IncrementalFlap' substring so the CI smoke
// filter and the alloc-budget gate keep their existing selections.
void BM_Churn_Mincost_RealTopologyFlap(benchmark::State& state) {
  const uint32_t batch_size = static_cast<uint32_t>(state.range(0));
  runtime::CompiledProgramPtr prog =
      CompileCached(protocols::MincostProgram());
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Result<net::Topology> topo = net::LoadTopologyFile(TopologyPath());
  if (!topo.ok()) {
    state.SkipWithError(topo.status().ToString().c_str());
    return;
  }
  RunFlapLoop(state, prog, *topo, batch_size);
}

BENCHMARK(BM_Churn_Mincost_IncrementalFlap)
    ->Args({8, 1})->Args({8, 8})->Args({8, 64})
    ->Args({16, 1})->Args({16, 8})->Args({16, 64})
    ->Args({24, 1})->Args({24, 64})
    ->Args({32, 1})->Args({32, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Churn_PathVector_IncrementalFlap)
    ->Args({6, 1})->Args({6, 8})->Args({6, 64})
    ->Args({8, 1})->Args({8, 8})->Args({8, 64})
    ->Args({10, 1})->Args({10, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Churn_Mincost_RealTopologyFlap)
    ->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Recompute-from-scratch baseline: rebuild the whole network per "event".
void BM_Churn_Mincost_FullRecompute(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  runtime::CompiledProgramPtr prog =
      CompileCached(protocols::MincostProgram());
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Rng rng(1);
  net::Topology topo = net::MakeRandomConnected(n, 0.08, &rng, 4);
  uint64_t rebuilds = 0, messages = 0;
  for (auto _ : state) {
    net::Simulator sim;
    auto engines = protocols::MakeEngines(&sim, topo, prog);
    if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
      state.SkipWithError("install failed");
      return;
    }
    ++rebuilds;
    messages += sim.total_traffic().messages;
  }
  state.counters["nodes"] = static_cast<double>(n);
  if (rebuilds > 0) {
    state.counters["msgs_per_rebuild"] =
        static_cast<double>(messages) / static_cast<double>(rebuilds);
  }
}

BENCHMARK(BM_Churn_Mincost_FullRecompute)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Failure storm: k sequential link failures without recovery, measuring
// the cascade cost of provenance-consistent retraction.
void BM_Churn_FailureStorm(benchmark::State& state) {
  const size_t kFailures = static_cast<size_t>(state.range(0));
  runtime::CompiledProgramPtr prog =
      CompileCached(protocols::MincostProgram());
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Rng rng(3);
  net::Topology topo = net::MakeRandomConnected(16, 0.1, &rng, 4);
  uint64_t storms = 0, messages = 0;
  for (auto _ : state) {
    net::Simulator sim;
    auto engines = protocols::MakeEngines(&sim, topo, prog);
    if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
      state.SkipWithError("install failed");
      return;
    }
    uint64_t before = sim.total_traffic().messages;
    for (size_t k = 0; k < kFailures && k < topo.links.size(); ++k) {
      const net::CostedLink& l = topo.links[k];
      (void)protocols::FailLink(l.a, l.b, l.cost, &engines, &sim);
    }
    messages += sim.total_traffic().messages - before;
    ++storms;
  }
  state.counters["failures"] = static_cast<double>(kFailures);
  if (storms > 0) {
    state.counters["msgs_per_storm"] =
        static_cast<double>(messages) / static_cast<double>(storms);
  }
}

// Note: storms that partition the network (6+ tree-link failures on this
// topology) additionally pay the distance-vector count-to-infinity
// transient up to the protocol's cost bound — visible as a superlinear
// jump in msgs_per_storm. That is protocol behaviour, not engine cost.
BENCHMARK(BM_Churn_FailureStorm)->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails

// Defining main() here overrides the benchmark_main library's: strip the
// repo-local --topology=<file> flag before google-benchmark parses argv.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, 11, "--topology=") == 0) {
      g_topology_path = arg.substr(11);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
