// Scale-out benchmark: the sharded epoch-barrier event loop
// (SimulatorOptions::num_threads) on topologies large enough that every
// delivery wave carries real parallel work — MINCOST convergence and
// incremental link flaps at (nodes x threads). The threaded and serial
// runs execute bit-identical event sequences (that is the protocol's
// contract, pinned by tests/runtime/threaded_determinism_test.cc), so the
// time ratio at fixed nodes is a pure measure of the sharded loop: wall
// clock is the only column that may differ across thread counts.
//
// Measurement caveat: speedup numbers are only meaningful on a machine
// with as many free cores as `threads`. On a single-core host (such as the
// container that produced the committed BENCH_scaleout.json) the worker
// pool is time-sliced onto one CPU and threaded runs can only show barrier
// overhead, never speedup — the committed numbers there document overhead
// honestly, not the scaling claim. Run on a multi-core host to measure
// scaling; correctness at every thread count is covered by the (cheap)
// determinism suite either way.
#include <benchmark/benchmark.h>

#include <string>

#include "src/common/alloc_hook.h"
#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace {

// Set by main() from --topology=<file>; empty selects the default corpus
// file. Lives at global scope so both main() and the benches see it.
std::string g_topology_path;

}  // namespace

namespace nettrails {
namespace {

runtime::CompiledProgramPtr CompileCached(const char* source) {
  Result<runtime::CompiledProgramPtr> r = runtime::Compile(source);
  return r.ok() ? *r : nullptr;
}

// The RealTopology bench defaults to the committed 102-node synthetic-ISP
// corpus file — the one corpus graph sized for scale-out measurement.
std::string TopologyPath() {
  if (!g_topology_path.empty()) return g_topology_path;
  return std::string(NETTRAILS_SOURCE_DIR) +
         "/examples/topologies/isp_synth_102.topo";
}

// Sparse random topology: p chosen so average degree stays near 4 as n
// grows (p = 4/n), keeping per-node work flat and wave width ~n.
net::Topology MakeScaleTopology(size_t n, Rng* rng) {
  double p = 4.0 / static_cast<double>(n);
  return net::MakeRandomConnected(n, p, rng, 4);
}

// Full MINCOST convergence from cold: build engines, install every link,
// run to quiescence. Each iteration is an independent world.
void BM_Scaleout_Mincost_Converge(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  runtime::CompiledProgramPtr prog =
      CompileCached(protocols::MincostProgram());
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Rng rng(7);
  net::Topology topo = MakeScaleTopology(n, &rng);
  uint64_t runs = 0, events = 0, messages = 0;
  for (auto _ : state) {
    net::SimulatorOptions sopts;
    sopts.num_threads = threads;
    net::Simulator sim(sopts);
    runtime::EngineOptions opts;
    opts.batch_size = 64;
    auto engines = protocols::MakeEngines(&sim, topo, prog, opts);
    if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
      state.SkipWithError("install failed");
      return;
    }
    ++runs;
    events += sim.events_executed();
    messages += sim.total_traffic().messages;
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
  if (runs > 0) {
    // Identical across thread counts by construction; a divergence here
    // means the determinism contract broke.
    state.counters["events_per_run"] =
        static_cast<double>(events) / static_cast<double>(runs);
    state.counters["msgs_per_run"] =
        static_cast<double>(messages) / static_cast<double>(runs);
  }
}

// MeasureProcessCPUTime: by default google-benchmark reports the main
// thread's CPU time, which sleeps at the wave barrier while workers burn
// cycles — process CPU time is the honest column for threaded runs (it
// also makes threads=1 vs N directly comparable: equal process-CPU with
// lower wall time is the definition of speedup here). UseRealTime paces
// iterations by wall clock for the same reason.
BENCHMARK(BM_Scaleout_Mincost_Converge)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4})
    ->Args({200, 1})->Args({200, 2})->Args({200, 4})
    ->MeasureProcessCPUTime()->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Incremental flap on a converged network (the bench_churn headline, at
// scale-out sizes): fail + recover one bridge-free link, reconverging to
// quiescence each time.
void BM_Scaleout_Mincost_IncrementalFlap(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  runtime::CompiledProgramPtr prog =
      CompileCached(protocols::MincostProgram());
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Rng rng(7);
  net::Topology topo = MakeScaleTopology(n, &rng);
  net::SimulatorOptions sopts;
  sopts.num_threads = threads;
  net::Simulator sim(sopts);
  runtime::EngineOptions opts;
  opts.batch_size = 64;
  auto engines = protocols::MakeEngines(&sim, topo, prog, opts);
  if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
    state.SkipWithError("install failed");
    return;
  }
  const net::CostedLink& flap = topo.links[topo.links.size() / 2];
  uint64_t flaps = 0;
  uint64_t base_msgs = sim.total_traffic().messages;
  uint64_t base_allocs = AllocCount();
  for (auto _ : state) {
    (void)protocols::FailLink(flap.a, flap.b, flap.cost, &engines, &sim);
    (void)protocols::RecoverLink(flap.a, flap.b, flap.cost, &engines, &sim);
    ++flaps;
  }
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
  if (flaps > 0) {
    state.counters["msgs_per_flap"] =
        static_cast<double>(sim.total_traffic().messages - base_msgs) /
        static_cast<double>(flaps);
    // Whole-process operator-new calls per converged flap. Reads 0 unless
    // built with -DNETTRAILS_COUNT_ALLOCS=ON; the threads=4 leg is pinned
    // by scripts/check_alloc_budget.sh in CI — worker arenas and op logs
    // must reach steady state like the shared frame pool does.
    state.counters["allocs_per_flap"] =
        static_cast<double>(AllocCount() - base_allocs) /
        static_cast<double>(flaps);
  }
}

BENCHMARK(BM_Scaleout_Mincost_IncrementalFlap)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4})
    ->Args({200, 1})->Args({200, 2})->Args({200, 4})
    ->MeasureProcessCPUTime()->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Cold convergence on a committed corpus topology (default: the 102-node
// synthetic ISP; override with --topology=<file>). Arg is the thread
// count; the graph comes from the file, so this is the scale-out story on
// the same corpus the scenario matrix pins.
void BM_Scaleout_Mincost_RealTopologyConverge(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  runtime::CompiledProgramPtr prog =
      CompileCached(protocols::MincostProgram());
  if (prog == nullptr) {
    state.SkipWithError("compile failed");
    return;
  }
  Result<net::Topology> file_topo = net::LoadTopologyFile(TopologyPath());
  if (!file_topo.ok()) {
    state.SkipWithError(file_topo.status().ToString().c_str());
    return;
  }
  const net::Topology& topo = *file_topo;
  uint64_t runs = 0, events = 0, messages = 0;
  for (auto _ : state) {
    net::SimulatorOptions sopts;
    sopts.num_threads = threads;
    net::Simulator sim(sopts);
    runtime::EngineOptions opts;
    opts.batch_size = 64;
    auto engines = protocols::MakeEngines(&sim, topo, prog, opts);
    if (!protocols::InstallLinks(topo, &engines, &sim).ok()) {
      state.SkipWithError("install failed");
      return;
    }
    ++runs;
    events += sim.events_executed();
    messages += sim.total_traffic().messages;
  }
  state.counters["nodes"] = static_cast<double>(topo.num_nodes);
  state.counters["threads"] = static_cast<double>(threads);
  if (runs > 0) {
    state.counters["events_per_run"] =
        static_cast<double>(events) / static_cast<double>(runs);
    state.counters["msgs_per_run"] =
        static_cast<double>(messages) / static_cast<double>(runs);
  }
}

BENCHMARK(BM_Scaleout_Mincost_RealTopologyConverge)
    ->Arg(1)->Arg(2)->Arg(4)
    ->MeasureProcessCPUTime()->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails

// Defining main() here overrides the benchmark_main library's: strip the
// repo-local --topology=<file> flag before google-benchmark parses argv.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, 11, "--topology=") == 0) {
      g_topology_path = arg.substr(11);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
