// Experiment E6: distributed provenance query cost by query type and
// network size (path-vector provenance). Reports per-query virtual latency,
// messages, and bytes as counters; wall time measures engine-side work.
#include <benchmark/benchmark.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

struct Fixture {
  net::Simulator sim;
  net::Topology topo;
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::unique_ptr<query::ProvenanceQuerier> querier;
  std::vector<Tuple> targets;
};

// MINCOST scales to larger networks than path-vector (whose loop-free path
// count explodes on dense random graphs); mincost provenance trees are
// deep derivation chains, which is what the query cost depends on.
std::unique_ptr<Fixture> BuildMincost(size_t n, uint64_t seed) {
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::MincostProgram());
  if (!prog.ok()) return nullptr;
  auto fx = std::make_unique<Fixture>();
  Rng rng(seed);
  fx->topo = net::MakeRandomConnected(n, 0.08, &rng, 8);
  fx->engines = protocols::MakeEngines(&fx->sim, fx->topo, *prog);
  fx->querier = std::make_unique<query::ProvenanceQuerier>(
      &fx->sim, protocols::EnginePtrs(fx->engines));
  if (!protocols::InstallLinks(fx->topo, &fx->engines, &fx->sim).ok()) {
    return nullptr;
  }
  fx->targets = fx->engines[0]->TableContents("mincost");
  return fx;
}

void RunQueryBench(benchmark::State& state, query::QueryType type) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::unique_ptr<Fixture> fx = BuildMincost(n, 7);
  if (fx == nullptr || fx->targets.empty()) {
    state.SkipWithError("fixture build failed");
    return;
  }
  query::QueryOptions opts;
  opts.type = type;
  opts.use_cache = false;

  uint64_t queries = 0, messages = 0, bytes = 0, latency = 0;
  size_t i = 0;
  for (auto _ : state) {
    const Tuple& target = fx->targets[i++ % fx->targets.size()];
    Result<query::QueryResult> r = fx->querier->Query(target, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->count);
    ++queries;
    messages += r->messages;
    bytes += r->bytes;
    latency += r->latency;
  }
  if (queries > 0) {
    state.counters["nodes"] = static_cast<double>(n);
    state.counters["msgs_per_query"] =
        static_cast<double>(messages) / static_cast<double>(queries);
    state.counters["bytes_per_query"] =
        static_cast<double>(bytes) / static_cast<double>(queries);
    state.counters["vlat_us_per_query"] =
        static_cast<double>(latency) / static_cast<double>(queries);
  }
}

void BM_Query_Lineage(benchmark::State& state) {
  RunQueryBench(state, query::QueryType::kLineage);
}
void BM_Query_NodeSet(benchmark::State& state) {
  RunQueryBench(state, query::QueryType::kNodeSet);
}
void BM_Query_DerivCount(benchmark::State& state) {
  RunQueryBench(state, query::QueryType::kDerivCount);
}

BENCHMARK(BM_Query_Lineage)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Query_NodeSet)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Query_DerivCount)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMicrosecond);

// Query latency vs derivation depth: a line topology makes the provenance
// tree depth proportional to the path length.
void BM_Query_ByDepth(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::PathVectorProgram());
  if (!prog.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  auto fx = std::make_unique<Fixture>();
  fx->topo = net::MakeLine(len + 1, 1);
  fx->engines = protocols::MakeEngines(&fx->sim, fx->topo, *prog);
  fx->querier = std::make_unique<query::ProvenanceQuerier>(
      &fx->sim, protocols::EnginePtrs(fx->engines));
  if (!protocols::InstallLinks(fx->topo, &fx->engines, &fx->sim).ok()) {
    state.SkipWithError("install failed");
    return;
  }
  // The full-length path has derivation depth proportional to len.
  Tuple target;
  for (const Tuple& t : fx->engines[0]->TableContents("path")) {
    if (t.field(3).as_list().size() == len + 1) target = t;
  }
  query::QueryOptions opts;
  opts.type = query::QueryType::kLineage;
  opts.use_cache = false;
  uint64_t messages = 0, queries = 0;
  for (auto _ : state) {
    Result<query::QueryResult> r = fx->querier->Query(target, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    messages += r->messages;
    ++queries;
  }
  state.counters["depth"] = static_cast<double>(len);
  if (queries > 0) {
    state.counters["msgs_per_query"] =
        static_cast<double>(messages) / static_cast<double>(queries);
  }
}

BENCHMARK(BM_Query_ByDepth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace nettrails
