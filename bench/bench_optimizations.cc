// Experiment E7: "optimization techniques, such as caching and
// threshold-based pruning, effectively reduce the network traffic." A
// Zipf-skewed stream of provenance queries runs with each optimization
// toggled; the per-configuration counters reproduce the comparison the
// demo shows visually. MINCOST on a grid provides tuples with many
// alternative derivations (symmetric equal-cost routes), which is where
// threshold pruning bites.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/query/query_engine.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

struct Fixture {
  net::Simulator sim;
  net::Topology topo;
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::unique_ptr<query::ProvenanceQuerier> querier;
  std::vector<Tuple> targets;
};

std::unique_ptr<Fixture> Build(size_t rows, size_t cols) {
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::MincostProgram());
  if (!prog.ok()) return nullptr;
  auto fx = std::make_unique<Fixture>();
  fx->topo = net::MakeGrid(rows, cols, 1);
  fx->engines = protocols::MakeEngines(&fx->sim, fx->topo, *prog);
  fx->querier = std::make_unique<query::ProvenanceQuerier>(
      &fx->sim, protocols::EnginePtrs(fx->engines));
  if (!protocols::InstallLinks(fx->topo, &fx->engines, &fx->sim).ok()) {
    return nullptr;
  }
  // Query targets: cost tuples at node 0 (corner), most-derivations first,
  // so the Zipf head hits the multi-derivation targets an operator
  // investigating redundancy would.
  fx->targets = fx->engines[0]->TableContents("cost");
  std::sort(fx->targets.begin(), fx->targets.end(),
            [&fx](const Tuple& a, const Tuple& b) {
              return fx->engines[0]->CountOf(a) > fx->engines[0]->CountOf(b);
            });
  return fx;
}

// Runs `queries` Zipf-selected queries and accumulates traffic.
void RunStream(Fixture* fx, const query::QueryOptions& base, size_t queries,
               Rng* rng, uint64_t* messages, uint64_t* bytes) {
  for (size_t q = 0; q < queries; ++q) {
    size_t idx = rng->NextZipf(fx->targets.size(), 1.1);
    Result<query::QueryResult> r =
        fx->querier->Query(fx->targets[idx], base);
    if (r.ok()) {
      *messages += r->messages;
      *bytes += r->bytes;
    }
  }
}

void BM_CachingOnOff(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  std::unique_ptr<Fixture> fx = Build(4, 4);
  if (fx == nullptr || fx->targets.empty()) {
    state.SkipWithError("fixture build failed");
    return;
  }
  query::QueryOptions opts;
  opts.type = query::QueryType::kLineage;
  opts.use_cache = cached;
  uint64_t messages = 0, bytes = 0, rounds = 0;
  for (auto _ : state) {
    fx->querier->ClearCaches();
    Rng rng(99);
    RunStream(fx.get(), opts, 64, &rng, &messages, &bytes);
    ++rounds;
  }
  state.counters["cache"] = cached ? 1 : 0;
  if (rounds > 0) {
    state.counters["msgs_per_64q"] =
        static_cast<double>(messages) / static_cast<double>(rounds);
    state.counters["bytes_per_64q"] =
        static_cast<double>(bytes) / static_cast<double>(rounds);
  }
  state.counters["cache_hits"] =
      static_cast<double>(fx->querier->total_cache_hits());
}

BENCHMARK(BM_CachingOnOff)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TraversalOrder(benchmark::State& state) {
  const bool sequential = state.range(0) != 0;
  std::unique_ptr<Fixture> fx = Build(4, 4);
  if (fx == nullptr || fx->targets.empty()) {
    state.SkipWithError("fixture build failed");
    return;
  }
  query::QueryOptions opts;
  opts.type = query::QueryType::kDerivCount;
  opts.traversal = sequential ? query::Traversal::kSequential
                              : query::Traversal::kParallel;
  opts.use_cache = false;
  uint64_t messages = 0, latency = 0, rounds = 0;
  for (auto _ : state) {
    Rng rng(5);
    for (size_t q = 0; q < 32; ++q) {
      size_t idx = rng.NextZipf(fx->targets.size(), 1.1);
      Result<query::QueryResult> r =
          fx->querier->Query(fx->targets[idx], opts);
      if (r.ok()) {
        messages += r->messages;
        latency += r->latency;
      }
    }
    ++rounds;
  }
  state.counters["sequential"] = sequential ? 1 : 0;
  if (rounds > 0) {
    state.counters["msgs_per_32q"] =
        static_cast<double>(messages) / static_cast<double>(rounds);
    state.counters["vlat_us_per_32q"] =
        static_cast<double>(latency) / static_cast<double>(rounds);
  }
}

BENCHMARK(BM_TraversalOrder)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ThresholdPruning(benchmark::State& state) {
  const int64_t threshold = state.range(0);
  std::unique_ptr<Fixture> fx = Build(4, 4);
  if (fx == nullptr || fx->targets.empty()) {
    state.SkipWithError("fixture build failed");
    return;
  }
  query::QueryOptions opts;
  opts.type = query::QueryType::kDerivCount;
  opts.traversal = query::Traversal::kSequential;  // pruning needs order
  opts.count_threshold = threshold;
  opts.use_cache = false;
  uint64_t messages = 0, bytes = 0, rounds = 0;
  for (auto _ : state) {
    Rng rng(27);
    RunStream(fx.get(), opts, 32, &rng, &messages, &bytes);
    ++rounds;
  }
  state.counters["threshold"] = static_cast<double>(threshold);
  if (rounds > 0) {
    state.counters["msgs_per_32q"] =
        static_cast<double>(messages) / static_cast<double>(rounds);
  }
}

BENCHMARK(BM_ThresholdPruning)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Engine-layer optimization: slot-compiled rule evaluation. This program
// is deliberately evaluation-bound — per candidate row the join loop runs
// two assignments, two selections, and three builtin calls (plus the
// f_mkvid-heavy provenance rules the rewrite adds) — so wall time tracks
// the per-firing cost of MatchAtom/Eval: with variables compiled to frame
// slots and builtins resolved at plan time, no string is compared or
// hashed and no map node is allocated anywhere in the measured loop.
constexpr char kEvalHeavyProgram[] = R"(
  materialize(item, infinity, infinity, keys(1,2)).
  materialize(score, infinity, infinity, keys(1,2,3)).
  sc1 score(@X, K, S) :- item(@X, K, V), W := V * 3 + V % 7,
      S := f_min(W, f_abs(V - 64)), S >= 0, W != 13.
)";

void BM_SlotFrameEvalChurn(benchmark::State& state) {
  const int64_t items = state.range(0);
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(kEvalHeavyProgram);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  net::Simulator sim;
  runtime::Engine engine(&sim, 1, *prog);
  auto item = [](int64_t k) {
    return Tuple("item", {Value::Address(1), Value::Int(k),
                          Value::Int((k * 37) % 1000)});
  };
  for (auto _ : state) {
    for (int64_t k = 0; k < items; ++k) {
      if (!engine.Insert(item(k)).ok()) {
        state.SkipWithError("insert failed");
        return;
      }
    }
    for (int64_t k = 0; k < items; ++k) {
      if (!engine.Delete(item(k)).ok()) {
        state.SkipWithError("delete failed");
        return;
      }
    }
  }
  state.counters["firings"] =
      static_cast<double>(engine.stats().rule_firings);
  state.counters["join_probes"] =
      static_cast<double>(engine.stats().join_probes);
}

BENCHMARK(BM_SlotFrameEvalChurn)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails
