// Experiment E10: legacy-application (BGP) trace replay through the proxy.
// Measures updates/second through speaker -> proxy -> maybe-rule inference,
// and how provenance state grows with trace length.
#include <benchmark/benchmark.h>

#include "src/bgp/speaker.h"
#include "src/bgp/tracegen.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

struct BgpNet {
  net::Simulator sim;
  bgp::AsTopology topo;
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  std::vector<std::unique_ptr<proxy::Proxy>> proxies;
  std::vector<std::unique_ptr<bgp::Speaker>> speakers;
};

std::unique_ptr<BgpNet> BuildBgp(size_t tier1, size_t mid, size_t stubs,
                                 bool with_proxy, uint64_t seed) {
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(protocols::BgpMaybeProgram());
  if (!prog.ok()) return nullptr;
  auto net = std::make_unique<BgpNet>();
  Rng rng(seed);
  net->topo = bgp::MakeAsTopology(tier1, mid, stubs, &rng);
  net->topo.Install(&net->sim);
  for (size_t i = 0; i < net->topo.num_ases; ++i) {
    net->engines.push_back(std::make_unique<runtime::Engine>(
        &net->sim, static_cast<NodeId>(i), *prog));
    proxy::Proxy* px = nullptr;
    if (with_proxy) {
      net->proxies.push_back(
          std::make_unique<proxy::Proxy>(net->engines.back().get()));
      px = net->proxies.back().get();
    }
    net->speakers.push_back(std::make_unique<bgp::Speaker>(
        &net->sim, static_cast<NodeId>(i), px));
  }
  for (const bgp::AsLink& l : net->topo.links) {
    net->speakers[l.a]->AddNeighbor(l.b, l.relation);
    net->speakers[l.b]->AddNeighbor(l.a, bgp::Reverse(l.relation));
  }
  return net;
}

void Replay(BgpNet* net, const std::vector<bgp::TraceEvent>& trace) {
  for (const bgp::TraceEvent& ev : trace) {
    net->sim.ScheduleAt(ev.time, [net, ev]() {
      if (ev.withdraw) {
        net->speakers[ev.origin]->Withdraw(ev.prefix);
      } else {
        net->speakers[ev.origin]->Originate(ev.prefix);
      }
    });
  }
  net->sim.Run();
}

void RunReplayBench(benchmark::State& state, bool with_proxy) {
  const size_t churn = static_cast<size_t>(state.range(0));
  uint64_t updates = 0, rounds = 0;
  size_t prov_tuples = 0, state_tuples = 0;
  for (auto _ : state) {
    std::unique_ptr<BgpNet> net = BuildBgp(3, 4, 5, with_proxy, 2011);
    if (net == nullptr) {
      state.SkipWithError("build failed");
      return;
    }
    Rng rng(17);
    std::vector<bgp::TraceEvent> trace =
        bgp::GenerateTrace(net->topo, churn, &rng);
    Replay(net.get(), trace);
    for (const auto& s : net->speakers) updates += s->updates_sent();
    prov_tuples = 0;
    state_tuples = 0;
    for (const auto& e : net->engines) {
      prov_tuples += e->TotalTuples(true);
      state_tuples += e->TotalTuples(false) - e->TotalTuples(true);
    }
    ++rounds;
  }
  state.counters["churn_events"] = static_cast<double>(churn);
  if (rounds > 0) {
    state.counters["bgp_updates"] =
        static_cast<double>(updates) / static_cast<double>(rounds);
  }
  state.counters["route_state_tuples"] = static_cast<double>(state_tuples);
  state.counters["prov_tuples"] = static_cast<double>(prov_tuples);
}

// Baseline: plain BGP, no interception (the cost of the legacy app alone).
void BM_BgpReplay_NoProxy(benchmark::State& state) {
  RunReplayBench(state, false);
}
// NetTrails: proxy interception + maybe-rule provenance inference.
void BM_BgpReplay_WithProxy(benchmark::State& state) {
  RunReplayBench(state, true);
}

BENCHMARK(BM_BgpReplay_NoProxy)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BgpReplay_WithProxy)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Provenance growth vs topology size at fixed churn.
void BM_BgpProvenanceGrowth(benchmark::State& state) {
  const size_t stubs = static_cast<size_t>(state.range(0));
  size_t prov_tuples = 0;
  for (auto _ : state) {
    std::unique_ptr<BgpNet> net = BuildBgp(3, stubs / 2 + 2, stubs, true, 5);
    if (net == nullptr) {
      state.SkipWithError("build failed");
      return;
    }
    Rng rng(23);
    std::vector<bgp::TraceEvent> trace =
        bgp::GenerateTrace(net->topo, 50, &rng);
    Replay(net.get(), trace);
    prov_tuples = 0;
    for (const auto& e : net->engines) prov_tuples += e->TotalTuples(true);
  }
  state.counters["stub_ases"] = static_cast<double>(stubs);
  state.counters["prov_tuples"] = static_cast<double>(prov_tuples);
}

BENCHMARK(BM_BgpProvenanceGrowth)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nettrails
