#!/usr/bin/env bash
# Lints every shipped NDlog program: the src/protocols library (via
# `ndlint --builtin all`) and the examples/programs/*.ndlog fixtures.
#
# Two passes:
#   1. machine-readable report -> <build>/ndlint_report.tsv (CI artifact,
#      written even when the gate fails so findings are inspectable)
#   2. the gate: --Werror, so any warning-or-error finding fails the job
#      (notes are informational and do not gate)
#
# Usage: scripts/run_ndlint.sh [build-dir]   (default: build)
set -uo pipefail

BUILD_DIR="${1:-build}"
NDLINT="$BUILD_DIR/ndlint"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -x "$NDLINT" ]]; then
  echo "run_ndlint.sh: $NDLINT not built (cmake --build $BUILD_DIR --target ndlint)" >&2
  exit 2
fi

shopt -s nullglob
FIXTURES=("$REPO_ROOT"/examples/programs/*.ndlog)

"$NDLINT" --machine --builtin all "${FIXTURES[@]}" \
  > "$BUILD_DIR/ndlint_report.tsv"
report_rc=$?
if [[ $report_rc -ge 2 ]]; then
  echo "run_ndlint.sh: ndlint failed to run (rc=$report_rc)" >&2
  exit $report_rc
fi

"$NDLINT" --Werror --builtin all "${FIXTURES[@]}"
rc=$?
if [[ $rc -ne 0 ]]; then
  echo "run_ndlint.sh: lint gate failed (findings above; report in $BUILD_DIR/ndlint_report.tsv)" >&2
  exit $rc
fi
echo "run_ndlint.sh: all shipped programs lint clean (report: $BUILD_DIR/ndlint_report.tsv)"
