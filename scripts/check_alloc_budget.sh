#!/usr/bin/env bash
# Allocation-budget gate for the zero-allocation shipping path.
#
# Runs the churn bench from an alloc-counting build (cmake
# -DNETTRAILS_COUNT_ALLOCS=ON) and fails if heap allocations per converged
# link flap exceed the committed budgets. The budgets pin the pooled
# pipeline — POD event records, recycled message frames, open-addressing
# row storage, pooled ValueList/arg buffers, tombstoned aggregate groups —
# against regressions that reintroduce per-tuple allocation.
#
# History (mincost, n=24): the pre-pooling pipeline measured 51,390
# allocs/flap at batch 64 and 54,529 at batch 1; the pooled pipeline
# measures ~3,920 and ~13,100. Budgets carry ~15% headroom over the
# measured values so noise does not flake CI, while any real per-tuple
# regression (one alloc per shipped tuple is ~1,300/flap) trips the gate.
#
# Usage: scripts/check_alloc_budget.sh [build-dir]
#   build-dir defaults to build-alloc and must be configured with
#   -DNETTRAILS_COUNT_ALLOCS=ON (the script fails loud if the counter
#   reads zero, which is what a non-counting build reports).
set -euo pipefail

BUILD_DIR="${1:-build-alloc}"
BENCH="$BUILD_DIR/bench_churn"
SCALEOUT="$BUILD_DIR/bench_scaleout"

# allocs_per_flap ceilings, keyed by benchmark args (nodes/batch).
BUDGET_24_64=4500
BUDGET_24_1=15000
# Threaded leg (bench_scaleout, nodes=64, threads=4, batch 64): the sharded
# loop must stay pooled too — worker frame arenas and op logs reach steady
# state exactly like the shared frame pool. Measured ~2,550 allocs/flap at
# threads 1, 2, AND 4 (the parallel path adds zero steady-state
# allocation); ~15% headroom like the serial budgets above.
BUDGET_SCALEOUT_64_4=3000

if [[ ! -x "$BENCH" || ! -x "$SCALEOUT" ]]; then
  echo "error: $BENCH / $SCALEOUT not built; configure with:" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release -DNETTRAILS_COUNT_ALLOCS=ON" >&2
  echo "  cmake --build $BUILD_DIR --target bench_churn bench_scaleout -j" >&2
  exit 2
fi

OUT="$BUILD_DIR/alloc_budget_churn.json"
"$BENCH" --benchmark_filter='Mincost_IncrementalFlap/24/(1|64)$' \
         --benchmark_min_time=0.2 \
         --benchmark_out="$OUT" --benchmark_out_format=json >/dev/null

SCALEOUT_OUT="$BUILD_DIR/alloc_budget_scaleout.json"
"$SCALEOUT" --benchmark_filter='Scaleout_Mincost_IncrementalFlap/64/4/' \
            --benchmark_min_time=0.2 \
            --benchmark_out="$SCALEOUT_OUT" --benchmark_out_format=json \
            >/dev/null

python3 - "$OUT" "$SCALEOUT_OUT" "$BUDGET_24_64" "$BUDGET_24_1" \
    "$BUDGET_SCALEOUT_64_4" <<'EOF'
import json, sys

out, scaleout_out = sys.argv[1], sys.argv[2]
budget64, budget1, budget_s = (float(a) for a in sys.argv[3:6])
budgets = {
    "BM_Churn_Mincost_IncrementalFlap/24/64": budget64,
    "BM_Churn_Mincost_IncrementalFlap/24/1": budget1,
    "BM_Scaleout_Mincost_IncrementalFlap/64/4/process_time/real_time":
        budget_s,
}
measured = {}
for path in (out, scaleout_out):
    for b in json.load(open(path))["benchmarks"]:
        if b["name"] in budgets:
            measured[b["name"]] = b.get("allocs_per_flap")

failed = False
for name, budget in budgets.items():
    got = measured.get(name)
    if got is None:
        print(f"FAIL {name}: no allocs_per_flap counter in bench output")
        failed = True
        continue
    if got == 0:
        print(f"FAIL {name}: allocs_per_flap reads 0 — bench was built "
              "without -DNETTRAILS_COUNT_ALLOCS=ON")
        failed = True
        continue
    verdict = "FAIL" if got > budget else "ok"
    print(f"{verdict:4s} {name}: {got:.0f} allocs/flap (budget {budget:.0f})")
    if got > budget:
        failed = True

sys.exit(1 if failed else 0)
EOF
