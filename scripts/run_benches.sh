#!/usr/bin/env bash
# Runs every bench binary with --benchmark_format=json, writing
# BENCH_<name>.json next to this repo's build directory — the perf
# trajectory artifacts (scan-vs-index evidence lives in BENCH_join.json,
# batch amortization in BENCH_churn.json, VID-digest caching / hash-primary
# storage in BENCH_provenance.json). New bench/bench_<name>.cc files are
# picked up automatically (and by the bench_json CMake target).
#
# Usage: scripts/run_benches.sh [build-dir] [bench-name...]
#   scripts/run_benches.sh                 # all benches, build/ directory
#   scripts/run_benches.sh build join      # just bench_join
#
# Equivalent CMake target: cmake --build build --target bench_json
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "build directory '$BUILD_DIR' not found; run:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

names=("$@")
if [[ ${#names[@]} -eq 0 ]]; then
  for bin in "$BUILD_DIR"/bench_*; do
    [[ -x "$bin" ]] && names+=("$(basename "$bin" | sed 's/^bench_//')")
  done
fi

for name in "${names[@]}"; do
  bin="$BUILD_DIR/bench_$name"
  out="$BUILD_DIR/BENCH_$name.json"
  if [[ ! -x "$bin" ]]; then
    echo "skipping $name: $bin not built" >&2
    continue
  fi
  echo "running bench_$name -> $out"
  # Extra flags (e.g. --benchmark_min_time=0.05) via BENCH_ARGS="..."
  "$bin" --benchmark_format=json \
         --benchmark_out="$out" --benchmark_out_format=json \
         ${BENCH_ARGS:-} >/dev/null
done
