#!/usr/bin/env bash
# Runs the (protocol x topology x scenario) regression matrix — the
# workload-level determinism gate pinned by
# tests/integration/golden/scenario_fingerprints.txt. Every cell replays a
# scenario script from examples/scenarios/ on a corpus topology from
# examples/topologies/ at batch {1,64} x threads {1,4} and must reproduce
# the committed golden fingerprints bit for bit.
#
# Usage: scripts/run_scenarios.sh [build-dir] [cell-filter]
#   scripts/run_scenarios.sh                      # full matrix, build/
#   scripts/run_scenarios.sh build mincost/       # one protocol's cells
#   scripts/run_scenarios.sh build /abilene/      # one topology's cells
#
# The cell filter is a substring match on "proto/topo/scn" keys
# (NETTRAILS_SCENARIO_FILTER in the test binary).
#
# After an INTENTIONAL semantic change, regenerate the goldens and review
# the diff like any other code change:
#   NETTRAILS_REGEN_GOLDENS=1 scripts/run_scenarios.sh
set -euo pipefail

BUILD_DIR="${1:-build}"
FILTER="${2:-}"
BIN="$BUILD_DIR/integration_scenario_matrix_test"

if [[ ! -x "$BIN" ]]; then
  echo "$BIN not built; run:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j \\" >&2
  echo "      --target integration_scenario_matrix_test" >&2
  exit 1
fi

if [[ -n "$FILTER" ]]; then
  NETTRAILS_SCENARIO_FILTER="$FILTER" "$BIN"
else
  "$BIN"
fi
