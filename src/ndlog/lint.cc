#include "src/ndlog/lint.h"

#include <algorithm>
#include <map>

#include "src/runtime/builtins.h"

namespace nettrails {
namespace ndlog {

namespace {

using runtime::BuiltinInfo;
using runtime::FindBuiltinInfo;
using runtime::TypeMask;
using runtime::TypeMaskName;
namespace tmask = runtime::typemask;

TypeMask MaskOfValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      return tmask::kInt;
    case Value::Kind::kDouble:
      return tmask::kDouble;
    case Value::Kind::kString:
      return tmask::kString;
    case Value::Kind::kAddress:
      return tmask::kAddress;
    case Value::Kind::kList:
      return tmask::kList;
    case Value::Kind::kNull:
      return tmask::kAny;
  }
  return tmask::kAny;
}

bool IsArith(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod:
      return true;
    default:
      return false;
  }
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Location variable of a normalized atom, or empty for an @n constant.
std::string LocVar(const Atom& atom) {
  return atom.args[0].expr->is_var() ? atom.args[0].expr->var_name()
                                     : std::string();
}

/// Collects (variable name, span) pairs from an expression tree.
void CollectVarSpans(const Expr& e,
                     std::vector<std::pair<std::string, Span>>* out) {
  if (e.is_var()) {
    out->emplace_back(e.var_name(), e.span());
    return;
  }
  if (const auto* call = std::get_if<Expr::Call>(&e.rep())) {
    for (const ExprPtr& a : call->args) CollectVarSpans(*a, out);
  } else if (const auto* bin = std::get_if<Expr::Binary>(&e.rep())) {
    CollectVarSpans(*bin->lhs, out);
    CollectVarSpans(*bin->rhs, out);
  } else if (const auto* un = std::get_if<Expr::Unary>(&e.rep())) {
    CollectVarSpans(*un->operand, out);
  } else if (const auto* list = std::get_if<Expr::ListLit>(&e.rep())) {
    for (const ExprPtr& el : list->elements) CollectVarSpans(*el, out);
  }
}

/// All lint passes over one analyzed program. Field-type masks shrink
/// monotonically, so the inference fixpoint terminates; diagnostics are
/// collected in a final reporting pass and deduplicated by (code, span).
class Linter {
 public:
  Linter(const AnalyzedProgram& ap, const LintOptions& opts)
      : ap_(ap), opts_(opts) {}

  DiagnosticEngine Run() {
    CheckStratification();
    InferTypes();
    CheckLinkRestriction();
    CheckDeadCode();
    CheckPlanQuality();
    CheckDeclarations();
    diags_.Suppress(opts_.allow);
    diags_.Sort();
    return std::move(diags_);
  }

 private:
  void Report(const char* code, Span span, const std::string& rule,
              std::string message) {
    std::string key = std::string(code) + "@" + std::to_string(span.line) +
                      ":" + std::to_string(span.column) + ":" + message;
    if (!seen_.insert(key).second) return;
    const DiagnosticInfo* info = FindDiagnostic(code);
    diags_.Add(code, info ? info->default_severity : Severity::kWarning, span,
               rule, std::move(message));
  }

  // ---------------------------------------------- stratification (ND1xx) --
  void CheckStratification() {
    // Transitive closure of the predicate dependency graph (head depends on
    // every body predicate). Predicate counts are small; the O(n^3)-ish
    // closure is simpler than SCC bookkeeping and plenty fast.
    std::map<std::string, std::set<std::string>> reach;
    for (const Rule& rule : ap_.program.rules) {
      for (const Atom* atom : rule.BodyAtoms()) {
        reach[rule.head.predicate].insert(atom->predicate);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [p, rs] : reach) {
        std::set<std::string> add;
        for (const std::string& q : rs) {
          auto it = reach.find(q);
          if (it == reach.end()) continue;
          for (const std::string& r : it->second) {
            if (!rs.count(r)) add.insert(r);
          }
        }
        if (!add.empty()) {
          rs.insert(add.begin(), add.end());
          changed = true;
        }
      }
    }
    auto closes_cycle = [&](const Rule& rule) -> const Atom* {
      for (const Atom* atom : rule.BodyAtoms()) {
        if (atom->predicate == rule.head.predicate) return atom;
        auto it = reach.find(atom->predicate);
        if (it != reach.end() && it->second.count(rule.head.predicate)) {
          return atom;
        }
      }
      return nullptr;
    };
    for (const Rule& rule : ap_.program.rules) {
      const Atom* via = closes_cycle(rule);
      if (via == nullptr) continue;
      if (!rule.is_maybe && rule.head.HasAggregate()) {
        AggFn fn = AggFn::kMin;
        for (const AtomArg& arg : rule.head.args) {
          if (arg.agg) fn = *arg.agg;
        }
        // Recursion through min/max converges under semi-naive evaluation
        // (the paper's MINCOST does exactly this); count/sum in a cycle is
        // unstratifiable — deltas through the cycle change the aggregate
        // non-monotonically and the fixpoint is not well defined.
        if (fn == AggFn::kCount || fn == AggFn::kSum) {
          Report("ND101", rule.span, rule.name,
                 "unstratified aggregation: " + rule.head.predicate +
                     " depends on itself through " + AggFnName(fn) +
                     " (via " + via->predicate + ")");
        }
      }
      if (rule.is_maybe) {
        Report("ND102", rule.span, rule.name,
               "maybe rule participates in a dependency cycle through " +
                   via->predicate +
                   ": inferred derivations feed back into their own "
                   "premises (non-monotone inference)");
      }
    }
  }

  // --------------------------------------------- type inference (ND2xx) --
  /// Per-predicate per-field kind masks, unified across every rule. The
  /// location field is always an address; everything else starts as kAny
  /// and shrinks as uses constrain it. An empty meet of two non-empty
  /// masks is a conflict: reported (in the reporting pass) and NOT
  /// applied, so one bad use cannot cascade into noise everywhere else.
  void InferTypes() {
    for (const auto& [name, info] : ap_.tables) {
      if (info.arity == 0) continue;
      std::vector<TypeMask>& f = fields_[name];
      f.assign(info.arity, tmask::kAny);
      f[0] = tmask::kAddress;
    }
    for (int iter = 0; iter < 64; ++iter) {
      types_changed_ = false;
      for (const Rule& rule : ap_.program.rules) InferRule(rule, false);
      if (!types_changed_) break;
    }
    for (const Rule& rule : ap_.program.rules) InferRule(rule, true);
  }

  void MeetField(const std::string& pred, size_t pos, TypeMask mask, Span span,
                 const Rule& rule, bool reporting) {
    auto it = fields_.find(pred);
    if (it == fields_.end() || pos >= it->second.size()) return;
    TypeMask& field = it->second[pos];
    TypeMask met = field & mask;
    if (met == 0 && field != 0 && mask != 0) {
      if (reporting) {
        Report("ND201", span, rule.name,
               "type conflict: field " + std::to_string(pos + 1) + " of " +
                   pred + " is " + TypeMaskName(field) +
                   " elsewhere but used as " + TypeMaskName(mask) + " here");
      }
      return;
    }
    if (met != field) {
      field = met;
      types_changed_ = true;
    }
  }

  void InferRule(const Rule& rule, bool reporting) {
    std::map<std::string, TypeMask> vars;
    auto var_mask = [&](const std::string& name) -> TypeMask& {
      auto it = vars.find(name);
      if (it == vars.end()) it = vars.emplace(name, tmask::kAny).first;
      return it->second;
    };
    auto meet_var = [&](const std::string& name, TypeMask mask, Span span,
                        const char* code, const std::string& what) {
      TypeMask& v = var_mask(name);
      TypeMask met = v & mask;
      if (met == 0 && v != 0 && mask != 0) {
        if (reporting) {
          Report(code, span, rule.name,
                 "type conflict: " + name + " is " + TypeMaskName(v) +
                     " but " + what + " requires " + TypeMaskName(mask));
        }
        return;
      }
      v = met;
    };

    // Bottom-up expression typing. Constrains bare-variable operands with
    // the sound facts the evaluator enforces (arith operands are numeric,
    // builtin args obey their BuiltinInfo contract) and reports
    // impossibilities.
    std::function<TypeMask(const Expr&)> expr_mask =
        [&](const Expr& e) -> TypeMask {
      if (e.is_const()) return MaskOfValue(e.const_value());
      if (e.is_var()) return var_mask(e.var_name());
      if (const auto* call = std::get_if<Expr::Call>(&e.rep())) {
        const BuiltinInfo* info = FindBuiltinInfo(call->fn);
        for (size_t i = 0; i < call->args.size(); ++i) {
          const Expr& arg = *call->args[i];
          TypeMask m = expr_mask(arg);
          if (info == nullptr) continue;  // CompileExpr rejects later
          TypeMask want = i < info->arg_types.size() ? info->arg_types[i]
                                                     : info->rest_type;
          if ((m & want) == 0 && m != 0 && want != 0) {
            if (reporting) {
              Report("ND202", arg.span().valid() ? arg.span() : e.span(),
                     rule.name,
                     call->fn + " argument " + std::to_string(i + 1) +
                         " must be " + TypeMaskName(want) + ", got " +
                         TypeMaskName(m));
            }
          } else if (arg.is_var()) {
            meet_var(arg.var_name(), want, arg.span(), "ND202",
                     call->fn + " argument " + std::to_string(i + 1));
          }
        }
        return info ? info->result_type : tmask::kAny;
      }
      if (const auto* bin = std::get_if<Expr::Binary>(&e.rep())) {
        TypeMask lm = expr_mask(*bin->lhs);
        TypeMask rm = expr_mask(*bin->rhs);
        if (IsArith(bin->op)) {
          for (const ExprPtr& side : {bin->lhs, bin->rhs}) {
            TypeMask m = side == bin->lhs ? lm : rm;
            if ((m & tmask::kNumeric) == 0 && m != 0) {
              if (reporting) {
                Report("ND203", side->span().valid() ? side->span() : e.span(),
                       rule.name,
                       "arithmetic on non-numeric operand of type " +
                           TypeMaskName(m));
              }
            } else if (side->is_var()) {
              meet_var(side->var_name(), tmask::kNumeric, side->span(), "ND203",
                       "arithmetic");
            }
          }
          TypeMask result = (lm | rm) & tmask::kNumeric;
          return result == 0 ? tmask::kNumeric : result;
        }
        if (IsComparison(bin->op)) {
          // Disjoint masks prove the runtime kinds differ: equality is
          // always false and ordering degenerates to the kind rank. Mixed
          // int/double is fine (numeric promotion).
          bool both_numeric = (lm & tmask::kNumeric) && (rm & tmask::kNumeric);
          if (lm != 0 && rm != 0 && (lm & rm) == 0 && !both_numeric &&
              reporting) {
            Report("ND203", e.span(), rule.name,
                   "comparison between disjoint types " + TypeMaskName(lm) +
                       " and " + TypeMaskName(rm) +
                       " can never hold structurally");
          }
          return tmask::kInt;
        }
        return tmask::kInt;  // kAnd / kOr yield 0/1
      }
      if (const auto* un = std::get_if<Expr::Unary>(&e.rep())) {
        TypeMask m = expr_mask(*un->operand);
        if (un->op == UnOp::kNeg) {
          if ((m & tmask::kNumeric) == 0 && m != 0) {
            if (reporting) {
              Report("ND203", e.span(), rule.name,
                     "negation of non-numeric operand of type " +
                         TypeMaskName(m));
            }
          } else if (un->operand->is_var()) {
            meet_var(un->operand->var_name(), tmask::kNumeric,
                     un->operand->span(), "ND203", "negation");
          }
          TypeMask result = m & tmask::kNumeric;
          return result == 0 ? tmask::kNumeric : result;
        }
        return tmask::kInt;
      }
      return tmask::kList;  // ListLit
    };

    // One atom argument: pull the field's mask into the variable (or check
    // the constant against it). Field-side updates happen in the backprop
    // sweep below so in-rule ordering cannot hide a conflict.
    auto visit_atom = [&](const Atom& atom) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const AtomArg& arg = atom.args[i];
        if (!arg.expr) continue;  // a_count<*>
        if (arg.agg) {
          if (*arg.agg == AggFn::kSum && arg.expr->is_var()) {
            meet_var(arg.expr->var_name(), tmask::kNumeric, arg.expr->span(),
                     "ND201", "a_sum");
          }
          continue;
        }
        if (arg.expr->is_const()) {
          MeetField(atom.predicate, i, MaskOfValue(arg.expr->const_value()),
                    arg.expr->span(), rule, reporting);
        } else if (arg.expr->is_var()) {
          auto fit = fields_.find(atom.predicate);
          if (fit != fields_.end() && i < fit->second.size()) {
            meet_var(arg.expr->var_name(), fit->second[i], arg.expr->span(),
                     "ND201", "field " + std::to_string(i + 1) + " of " +
                                  atom.predicate);
          }
        }
      }
    };

    for (const BodyTerm& term : rule.body) {
      if (const Atom* atom = std::get_if<Atom>(&term)) {
        visit_atom(*atom);
      } else if (const Assign* assign = std::get_if<Assign>(&term)) {
        TypeMask m = expr_mask(*assign->expr);
        meet_var(assign->var, m, assign->span, "ND201",
                 "the assigned expression");
      } else {
        const Select& sel = std::get<Select>(term);
        expr_mask(*sel.expr);
      }
    }
    visit_atom(rule.head);
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      const AtomArg& arg = rule.head.args[i];
      if (arg.agg) {
        // Aggregate result fields: a_count is always an int; min/max/sum
        // results have the contribution variable's type.
        if (*arg.agg == AggFn::kCount) {
          MeetField(rule.head.predicate, i, tmask::kInt,
                    arg.expr ? arg.expr->span() : rule.span, rule, reporting);
        } else if (arg.expr && arg.expr->is_var()) {
          MeetField(rule.head.predicate, i, var_mask(arg.expr->var_name()),
                    arg.expr->span(), rule, reporting);
        }
      } else if (arg.expr && !arg.expr->is_var() && !arg.expr->is_const()) {
        expr_mask(*arg.expr);
      }
    }

    // Backprop: every variable's final mask narrows the fields it binds.
    auto backprop_atom = [&](const Atom& atom) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const AtomArg& arg = atom.args[i];
        if (!arg.expr || arg.agg || !arg.expr->is_var()) continue;
        MeetField(atom.predicate, i, var_mask(arg.expr->var_name()),
                  arg.expr->span(), rule, reporting);
      }
    };
    for (const Atom* atom : rule.BodyAtoms()) backprop_atom(*atom);
    backprop_atom(rule.head);
  }

  // ------------------------------------------- link restriction (ND3xx) --
  void CheckLinkRestriction() {
    for (const Rule& rule : ap_.program.rules) {
      if (rule.is_maybe) continue;  // analysis already forces locality
      std::vector<const Atom*> atoms = rule.BodyAtoms();
      if (atoms.empty()) continue;
      std::set<std::string> locs;
      for (const Atom* atom : atoms) {
        std::string lv = LocVar(*atom);
        if (!lv.empty()) locs.insert(lv);
      }
      if (locs.size() > 2) {
        Report("ND301", rule.span, rule.name,
               "body spans " + std::to_string(locs.size()) +
                   " locations; NDlog rules are localizable across at most "
                   "two");
        continue;
      }
      if (locs.size() == 2) {
        // Mirror ndlog::Localize's connector search exactly: an atom at A
        // whose second argument is the other location B, with every other
        // atom at B.
        bool connected = false;
        for (size_t i = 0; i < atoms.size() && !connected; ++i) {
          const Atom* cand = atoms[i];
          std::string a = LocVar(*cand);
          if (a.empty() || cand->args.size() < 2 ||
              !cand->args[1].expr->is_var()) {
            continue;
          }
          std::string b = cand->args[1].expr->var_name();
          if (!locs.count(a) || !locs.count(b) || a == b) continue;
          bool others_at_b = true;
          for (size_t j = 0; j < atoms.size(); ++j) {
            if (j == i) continue;
            if (LocVar(*atoms[j]) != b) {
              others_at_b = false;
              break;
            }
          }
          if (others_at_b) connected = true;
        }
        if (!connected) {
          Report("ND302", rule.span, rule.name,
                 "body spans two locations with no link-shaped atom "
                 "connecting them (need l(@A,B,...) with the rest of the "
                 "body at B)");
        }
        continue;
      }
      // Single evaluation site: the head may stay local or ship one hop
      // along a declared link predicate (the NDlog link restriction —
      // localize.cc and the runtime assume tuples travel only on links).
      const AtomArg& head_loc = rule.head.args[0];
      if (head_loc.expr->is_var()) {
        const std::string& h = head_loc.expr->var_name();
        if (locs.count(h)) continue;
        bool via_link = false;
        for (const Atom* atom : atoms) {
          if (!opts_.link_predicates.count(atom->predicate)) continue;
          if (atom->args.size() >= 2 && atom->args[1].expr->is_var() &&
              atom->args[1].expr->var_name() == h) {
            via_link = true;
            break;
          }
        }
        if (!via_link) {
          Report("ND303", head_loc.expr->span().valid()
                              ? head_loc.expr->span()
                              : rule.span,
                 rule.name,
                 "head ships tuples to @" + h +
                     ", which is not the evaluation site and not bound as "
                     "the neighbor field of a link predicate (" +
                     LinkPredicateList() + ")");
        }
      } else {
        // Constant destination: fine only if the whole body runs there.
        bool local = false;
        if (locs.empty() && !atoms.empty()) {
          const AtomArg& body_loc = atoms[0]->args[0];
          local = body_loc.expr->is_const() &&
                  body_loc.expr->const_value() == head_loc.expr->const_value();
        }
        if (!local) {
          Report("ND303", head_loc.expr->span().valid()
                              ? head_loc.expr->span()
                              : rule.span,
                 rule.name,
                 "head ships every derived tuple to the fixed node " +
                     head_loc.expr->const_value().ToString() +
                     " regardless of where the rule fires");
        }
      }
    }
  }

  std::string LinkPredicateList() const {
    std::string out;
    for (const std::string& p : opts_.link_predicates) {
      if (!out.empty()) out += ", ";
      out += p;
    }
    return out.empty() ? "none declared" : out;
  }

  // ------------------------------------------------- dead code (ND4xx) --
  void CheckDeadCode() {
    std::set<std::string> consumed;
    for (const Rule& rule : ap_.program.rules) {
      for (const Atom* atom : rule.BodyAtoms()) consumed.insert(atom->predicate);
    }
    for (const Rule& rule : ap_.program.rules) {
      if (!rule.is_maybe) {
        const TableInfo* info = ap_.FindTable(rule.head.predicate);
        bool event_head = info == nullptr || !info->materialized;
        if (event_head && !consumed.count(rule.head.predicate)) {
          Report("ND401", rule.span, rule.name,
                 "derives event " + rule.head.predicate +
                     " which no rule consumes: tuples are computed (and "
                     "possibly shipped) then dropped");
        }
      }
      CheckRuleVariables(rule);
    }
  }

  void CheckRuleVariables(const Rule& rule) {
    struct VarUse {
      int count = 0;
      Span first_span;
      bool only_location = true;
      bool is_assign_target = false;
      Span assign_span;
    };
    std::map<std::string, VarUse> uses;
    auto add = [&](const std::string& name, Span span, bool is_location) {
      VarUse& u = uses[name];
      if (u.count == 0) u.first_span = span;
      ++u.count;
      if (!is_location) u.only_location = false;
    };
    auto add_expr = [&](const Expr& e) {
      std::vector<std::pair<std::string, Span>> vs;
      CollectVarSpans(e, &vs);
      for (auto& [name, span] : vs) add(name, span, false);
    };
    auto add_atom = [&](const Atom& atom) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const AtomArg& arg = atom.args[i];
        if (!arg.expr) continue;
        if (arg.expr->is_var()) {
          add(arg.expr->var_name(), arg.expr->span(), i == 0);
        } else if (!arg.expr->is_const()) {
          add_expr(*arg.expr);
        }
      }
    };
    for (const BodyTerm& term : rule.body) {
      if (const Atom* atom = std::get_if<Atom>(&term)) {
        add_atom(*atom);
      } else if (const Assign* assign = std::get_if<Assign>(&term)) {
        VarUse& u = uses[assign->var];
        u.is_assign_target = true;
        u.assign_span = assign->span;
        add_expr(*assign->expr);
      } else {
        add_expr(*std::get<Select>(term).expr);
      }
    }
    add_atom(rule.head);

    for (const auto& [name, u] : uses) {
      if (u.is_assign_target && u.count == 0) {
        Report("ND402", u.assign_span, rule.name,
               "variable " + name + " is assigned but never read");
      } else if (!u.is_assign_target && u.count == 1 && !u.only_location) {
        // A variable that appears exactly once matches anything and binds
        // to nothing downstream — often a typo for another variable.
        // Location fields are exempt: an atom must name its site even when
        // nothing else uses it.
        Report("ND403", u.first_span, rule.name,
               "variable " + name +
                   " appears exactly once; its binding is never used");
      }
    }
  }

  // ----------------------------------------------- plan quality (ND5xx) --
  /// Mirrors runtime plan.cc: trigger selection (an event atom pins the
  /// delta; otherwise every atom is a delta in turn) and the per-probe
  /// bound-position computation. Only single-site rules are simulated —
  /// localization rewrites two-site bodies before real planning.
  void CheckPlanQuality() {
    for (const Rule& rule : ap_.program.rules) {
      if (rule.is_maybe) continue;
      std::vector<size_t> atom_positions;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (std::holds_alternative<Atom>(rule.body[i])) {
          atom_positions.push_back(i);
        }
      }
      if (atom_positions.empty()) continue;
      std::set<std::string> locs;
      for (const Atom* atom : rule.BodyAtoms()) {
        std::string lv = LocVar(*atom);
        if (!lv.empty()) locs.insert(lv);
      }
      if (locs.size() > 1) continue;

      std::vector<size_t> deltas;
      for (size_t pos : atom_positions) {
        const Atom& atom = std::get<Atom>(rule.body[pos]);
        const TableInfo* info = ap_.FindTable(atom.predicate);
        if (info == nullptr || !info->materialized) {
          deltas.assign(1, pos);
          break;
        }
      }
      if (deltas.empty()) deltas = atom_positions;

      for (size_t delta : deltas) {
        std::set<std::string> bound;
        for (const AtomArg& arg : std::get<Atom>(rule.body[delta]).args) {
          if (arg.expr && arg.expr->is_var()) bound.insert(arg.expr->var_name());
        }
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (i == delta) continue;
          const BodyTerm& term = rule.body[i];
          if (const Assign* assign = std::get_if<Assign>(&term)) {
            bound.insert(assign->var);
            continue;
          }
          const Atom* atom = std::get_if<Atom>(&term);
          if (atom == nullptr) continue;
          const TableInfo* info = ap_.FindTable(atom->predicate);
          if (info != nullptr && info->materialized) {
            bool location_bound = false;
            bool has_positions = false;
            for (size_t a = 0; a < atom->args.size(); ++a) {
              const Expr& e = *atom->args[a].expr;
              if (e.is_const() || (e.is_var() && bound.count(e.var_name()))) {
                if (a == 0) {
                  location_bound = true;
                } else {
                  has_positions = true;
                }
              }
            }
            const Atom& delta_atom = std::get<Atom>(rule.body[delta]);
            if (!has_positions && !location_bound) {
              Report("ND501", atom->span.valid() ? atom->span : rule.span,
                     rule.name,
                     "probing " + atom->predicate + " on a " +
                         delta_atom.predicate +
                         " delta binds no argument (location included): "
                         "every delta scans the whole table "
                         "(index_scan_fallbacks)");
            } else if (!has_positions) {
              Report("ND502", atom->span.valid() ? atom->span : rule.span,
                     rule.name,
                     "joining " + atom->predicate + " on a " +
                         delta_atom.predicate +
                         " delta binds only the location: every stored "
                         "row is a join candidate (broadcast join)");
            }
          }
          for (const AtomArg& arg : atom->args) {
            if (arg.expr && arg.expr->is_var()) bound.insert(arg.expr->var_name());
          }
        }
      }
    }
  }

  // ------------------------------------- declaration hygiene (ND6xx) --
  void CheckDeclarations() {
    std::set<std::string> referenced;
    for (const Rule& rule : ap_.program.rules) {
      referenced.insert(rule.head.predicate);
      for (const Atom* atom : rule.BodyAtoms()) referenced.insert(atom->predicate);
    }
    std::set<std::string> agg_heads;
    for (const Rule& rule : ap_.program.rules) {
      if (!rule.is_maybe && rule.head.HasAggregate()) {
        agg_heads.insert(rule.head.predicate);
      }
    }
    for (const MaterializeDecl& decl : ap_.program.materializations) {
      if (!referenced.count(decl.table)) {
        Report("ND601", decl.span, "",
               "materialized table " + decl.table +
                   " is never referenced by any rule");
      }
      if ((decl.lifetime_secs >= 0 || decl.max_size >= 0) &&
          agg_heads.count(decl.table)) {
        Report("ND602", decl.span, "",
               "soft state on aggregate output " + decl.table +
                   ": expiry/eviction removes rows the aggregate rule "
                   "believes it owns, silently corrupting results");
      }
    }
  }

  const AnalyzedProgram& ap_;
  const LintOptions& opts_;
  DiagnosticEngine diags_;
  std::set<std::string> seen_;
  std::map<std::string, std::vector<TypeMask>> fields_;
  bool types_changed_ = false;
};

}  // namespace

std::vector<std::string> ParseLintPragmas(const std::string& source) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = source.find("ndlint:", pos)) != std::string::npos) {
    size_t open = source.find("allow(", pos);
    if (open == std::string::npos) break;
    size_t close = source.find(')', open);
    if (close == std::string::npos) break;
    std::string codes = source.substr(open + 6, close - open - 6);
    std::string cur;
    for (char c : codes + ",") {
      if (c == ',') {
        if (!cur.empty()) out.push_back(cur);
        cur.clear();
      } else if (c != ' ' && c != '\t') {
        cur += c;
      }
    }
    pos = close;
  }
  return out;
}

DiagnosticEngine LintProgram(const AnalyzedProgram& analyzed,
                             const LintOptions& options) {
  return Linter(analyzed, options).Run();
}

}  // namespace ndlog
}  // namespace nettrails
