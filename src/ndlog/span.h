// Source positions for NDlog diagnostics. Lexer tokens carry line/column;
// the parser stamps them onto AST nodes so every semantic or lint finding
// can point at the offending source location.
#ifndef NETTRAILS_NDLOG_SPAN_H_
#define NETTRAILS_NDLOG_SPAN_H_

#include <cstdint>
#include <string>

namespace nettrails {
namespace ndlog {

/// A source position (1-based line and column). Generated AST nodes (the
/// localization and provenance rewrites) carry the invalid default span.
struct Span {
  int32_t line = 0;
  int32_t column = 0;

  bool valid() const { return line > 0; }

  /// "line L:C", or "generated code" for invalid spans.
  std::string ToString() const;
};

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_SPAN_H_
