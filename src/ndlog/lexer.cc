#include "src/ndlog/lexer.h"

#include <cctype>

namespace nettrails {
namespace ndlog {

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      NT_RETURN_IF_ERROR(SkipWsAndComments());
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (pos_ >= src_.size()) {
        tok.kind = TokenKind::kEof;
        out.push_back(tok);
        return out;
      }
      char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexWord(&tok);
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        NT_RETURN_IF_ERROR(LexNumber(&tok));
      } else if (c == '"') {
        NT_RETURN_IF_ERROR(LexString(&tok));
      } else {
        NT_RETURN_IF_ERROR(LexPunct(&tok));
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ":" + std::to_string(column_));
  }

  void Advance() {
    if (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  char Peek(size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }

  Status SkipWsAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < src_.size() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ >= src_.size()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  void LexWord(Token* tok) {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      Advance();
    }
    tok->text = src_.substr(start, pos_ - start);
    tok->kind = std::isupper(static_cast<unsigned char>(tok->text[0]))
                    ? TokenKind::kVariable
                    : TokenKind::kIdent;
  }

  Status LexNumber(Token* tok) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      Advance();
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      Advance();
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      int save_line = line_, save_col = column_;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_double = true;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          Advance();
        }
      } else {
        pos_ = save;
        line_ = save_line;
        column_ = save_col;
      }
    }
    std::string text = src_.substr(start, pos_ - start);
    try {
      if (is_double) {
        tok->kind = TokenKind::kDoubleLit;
        tok->double_value = std::stod(text);
      } else {
        tok->kind = TokenKind::kIntLit;
        tok->int_value = std::stoll(text);
      }
    } catch (...) {
      return Error("malformed numeric literal '" + text + "'");
    }
    return Status::OK();
  }

  Status LexString(Token* tok) {
    Advance();  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        Advance();
        char e = src_[pos_];
        if (e == 'n') {
          text += '\n';
        } else if (e == 't') {
          text += '\t';
        } else {
          text += e;
        }
        Advance();
        continue;
      }
      text += src_[pos_];
      Advance();
    }
    if (pos_ >= src_.size()) return Error("unterminated string literal");
    Advance();  // closing quote
    tok->kind = TokenKind::kStringLit;
    tok->text = std::move(text);
    return Status::OK();
  }

  Status LexPunct(Token* tok) {
    char c = Peek();
    char c1 = Peek(1);
    auto two = [&](TokenKind k) {
      tok->kind = k;
      Advance();
      Advance();
      return Status::OK();
    };
    auto one = [&](TokenKind k) {
      tok->kind = k;
      Advance();
      return Status::OK();
    };
    switch (c) {
      case ':':
        if (c1 == '-') return two(TokenKind::kDerives);
        if (c1 == '=') return two(TokenKind::kAssign);
        return Error("unexpected ':'");
      case '?':
        if (c1 == '-') return two(TokenKind::kMaybeDerives);
        return Error("unexpected '?'");
      case '=':
        if (c1 == '=') return two(TokenKind::kEq);
        return Error("unexpected '=' (use '==' or ':=')");
      case '!':
        if (c1 == '=') return two(TokenKind::kNe);
        return one(TokenKind::kBang);
      case '<':
        if (c1 == '=') return two(TokenKind::kLe);
        return one(TokenKind::kLAngle);
      case '>':
        if (c1 == '=') return two(TokenKind::kGe);
        return one(TokenKind::kRAngle);
      case '&':
        if (c1 == '&') return two(TokenKind::kAndAnd);
        return Error("unexpected '&'");
      case '|':
        if (c1 == '|') return two(TokenKind::kOrOr);
        return Error("unexpected '|'");
      case '@':
        return one(TokenKind::kAt);
      case '(':
        return one(TokenKind::kLParen);
      case ')':
        return one(TokenKind::kRParen);
      case '[':
        return one(TokenKind::kLBracket);
      case ']':
        return one(TokenKind::kRBracket);
      case ',':
        return one(TokenKind::kComma);
      case '.':
        return one(TokenKind::kPeriod);
      case '+':
        return one(TokenKind::kPlus);
      case '-':
        return one(TokenKind::kMinus);
      case '*':
        return one(TokenKind::kStar);
      case '/':
        return one(TokenKind::kSlash);
      case '%':
        return one(TokenKind::kPercent);
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  return Lexer(source).Run();
}

}  // namespace ndlog
}  // namespace nettrails
