// Localization rewrite (Loo et al., "Declarative Networking"): turns rules
// whose bodies span two nodes connected by a link-shaped predicate into
// rules whose bodies execute at a single node, with results shipped to the
// head's node. Example:
//
//   sp2 path(@X,Z,C,P) :- link(@X,Y,C1), path(@Y,Z,C2,P2), ...
//
// becomes
//
//   sp2a link_d(@Y,X,C) :- link(@X,Y,C).
//   sp2  path(@X,Z,C,P) :- link_d(@Y,X,C1), path(@Y,Z,C2,P2), ...
//
// where link_d is the automatically generated "reversed link" table stored
// at the link's destination.
#ifndef NETTRAILS_NDLOG_LOCALIZE_H_
#define NETTRAILS_NDLOG_LOCALIZE_H_

#include "src/common/status.h"
#include "src/ndlog/analysis.h"

namespace nettrails {
namespace ndlog {

/// Suffix appended to a predicate name for its reversed-link table.
inline constexpr char kReversedSuffix[] = "_d";

/// Rewrites every rule of `prog` to have a single body location. Rules
/// already local pass through. A two-location rule is rewritten when one
/// location is introduced solely by a link-shaped atom l(@X, Y, ...) whose
/// second argument is the other location; anything else is a PlanError.
/// Generated reversed-link tables and their deriving rules are appended
/// (deduplicated per predicate).
Result<Program> Localize(const AnalyzedProgram& prog);

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_LOCALIZE_H_
