// Semantic analysis for NDlog programs: table catalog construction, arity
// and key checks, location normalization, variable safety, and aggregate
// restrictions.
#ifndef NETTRAILS_NDLOG_ANALYSIS_H_
#define NETTRAILS_NDLOG_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ndlog/ast.h"

namespace nettrails {
namespace ndlog {

/// Catalog entry for one predicate.
struct TableInfo {
  std::string name;
  size_t arity = 0;
  /// Primary-key field positions (0-based). Empty means "all fields":
  /// set/bag semantics with derivation counting. A proper subset means
  /// key-replacement semantics (latest tuple per key wins, the previous one
  /// is retracted with cascade).
  std::vector<int> keys;
  /// Declared via materialize(); undeclared predicates are transient events.
  bool materialized = false;
  /// Soft-state lifetime in seconds (-1 = infinity): tuples expire and are
  /// retracted (with cascade) this long after their last insertion.
  int64_t lifetime_secs = -1;
  /// Maximum visible tuples (-1 = infinity): FIFO eviction beyond this.
  int64_t max_size = -1;
  /// Not derived by any regular rule: populated externally (or by a proxy).
  bool is_base = true;
  /// Head of at least one maybe rule (legacy-app state whose derivations are
  /// inferred, not computed).
  bool is_maybe_head = false;

  /// True if keys is empty or covers every field.
  bool KeysCoverAllFields() const {
    return keys.empty() || keys.size() == arity;
  }
};

/// A semantically validated program plus its catalog. Atoms are normalized:
/// args[0].is_location is set on every atom and is a variable or address
/// constant.
struct AnalyzedProgram {
  Program program;
  std::map<std::string, TableInfo> tables;

  const TableInfo* FindTable(const std::string& name) const {
    auto it = tables.find(name);
    return it == tables.end() ? nullptr : &it->second;
  }
};

/// Validates `prog` and builds the catalog. Checks:
///  - consistent arity per predicate; key positions within arity;
///  - atom location normalization (first argument, '@' elsewhere rejected);
///  - variable safety (head and selection variables bound by body atoms or
///    assignments, in order);
///  - at most one aggregate per head; aggregates not in maybe rules; the
///    aggregate rule's head location equals its body location;
///  - at most one event (non-materialized) predicate per body; event
///    predicates cannot be materialized rule outputs' inputs requirements;
///  - maybe rules: head and body predicates materialized, single body
///    location equal to the head location (the proxy infers locally).
Result<AnalyzedProgram> Analyze(Program prog);

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_ANALYSIS_H_
