#include "src/ndlog/analysis.h"

#include <set>

namespace nettrails {
namespace ndlog {

namespace {

Status RuleError(const Rule& rule, const std::string& msg) {
  std::string where =
      rule.span.valid() ? " (" + rule.span.ToString() + ")" : "";
  return Status::PlanError("rule " + rule.name + where + ": " + msg);
}

/// Normalizes the location argument of an atom: position 0, '@' optional but
/// rejected elsewhere; must be a variable or an address constant.
Status NormalizeAtom(const Rule& rule, Atom* atom) {
  if (atom->args.empty()) {
    return RuleError(rule, "atom " + atom->predicate + " has no arguments");
  }
  for (size_t i = 1; i < atom->args.size(); ++i) {
    if (atom->args[i].is_location) {
      return RuleError(rule, "atom " + atom->predicate +
                                 ": '@' only allowed on the first argument");
    }
  }
  AtomArg& loc = atom->args[0];
  loc.is_location = true;
  if (loc.agg) {
    return RuleError(rule, "atom " + atom->predicate +
                               ": location argument cannot be an aggregate");
  }
  if (!loc.expr->is_var() &&
      !(loc.expr->is_const() && loc.expr->const_value().is_address())) {
    return RuleError(
        rule, "atom " + atom->predicate +
                  ": location argument must be a variable or @n constant");
  }
  return Status::OK();
}

Status CheckArgIsVarOrConst(const Rule& rule, const Atom& atom,
                            const AtomArg& arg) {
  if (arg.agg) return Status::OK();
  if (!arg.expr->is_var() && !arg.expr->is_const()) {
    return RuleError(rule, "atom " + atom.predicate +
                               ": arguments must be variables or constants, "
                               "got " +
                               arg.expr->ToString());
  }
  return Status::OK();
}

Status CheckVarsBound(const Rule& rule, const ExprPtr& expr,
                      const std::set<std::string>& bound,
                      const std::string& context) {
  std::vector<std::string> vars;
  expr->CollectVars(&vars);
  for (const std::string& v : vars) {
    if (!bound.count(v)) {
      return RuleError(rule, "unbound variable " + v + " in " + context);
    }
  }
  return Status::OK();
}

}  // namespace

Result<AnalyzedProgram> Analyze(Program prog) {
  AnalyzedProgram out;

  // Catalog: materialize declarations first.
  for (const MaterializeDecl& decl : prog.materializations) {
    TableInfo& info = out.tables[decl.table];
    if (info.materialized) {
      return Status::PlanError("duplicate materialize(" + decl.table + ")");
    }
    info.name = decl.table;
    info.materialized = true;
    info.keys = decl.keys;
    info.lifetime_secs = decl.lifetime_secs;
    info.max_size = decl.max_size;
  }

  // Arity discovery and per-rule checks.
  auto record_arity = [&](const Rule& rule, const Atom& atom) -> Status {
    TableInfo& info = out.tables[atom.predicate];
    if (info.name.empty()) info.name = atom.predicate;
    if (info.arity == 0) {
      info.arity = atom.args.size();
    } else if (info.arity != atom.args.size()) {
      return RuleError(rule, "predicate " + atom.predicate +
                                 " used with arity " +
                                 std::to_string(atom.args.size()) +
                                 " but previously " +
                                 std::to_string(info.arity));
    }
    return Status::OK();
  };

  for (Rule& rule : prog.rules) {
    NT_RETURN_IF_ERROR(NormalizeAtom(rule, &rule.head));
    NT_RETURN_IF_ERROR(record_arity(rule, rule.head));

    // Head argument shape.
    size_t agg_count = 0;
    for (const AtomArg& arg : rule.head.args) {
      if (arg.agg) {
        ++agg_count;
        if (rule.is_maybe) {
          return RuleError(rule, "maybe rules cannot aggregate");
        }
      } else {
        NT_RETURN_IF_ERROR(CheckArgIsVarOrConst(rule, rule.head, arg));
      }
    }
    if (agg_count > 1) {
      return RuleError(rule, "at most one aggregate per head");
    }

    std::set<std::string> bound;
    if (rule.is_maybe) {
      // The head tuple of a maybe rule arrives externally: its variables are
      // bound by matching against the existing head tuple.
      for (const AtomArg& arg : rule.head.args) {
        if (arg.expr->is_var()) bound.insert(arg.expr->var_name());
      }
    }

    size_t event_atoms = 0;
    for (BodyTerm& term : rule.body) {
      if (Atom* atom = std::get_if<Atom>(&term)) {
        NT_RETURN_IF_ERROR(NormalizeAtom(rule, atom));
        NT_RETURN_IF_ERROR(record_arity(rule, *atom));
        for (const AtomArg& arg : atom->args) {
          if (arg.agg) {
            return RuleError(rule, "aggregates not allowed in rule bodies");
          }
          NT_RETURN_IF_ERROR(CheckArgIsVarOrConst(rule, *atom, arg));
          if (arg.expr->is_var()) bound.insert(arg.expr->var_name());
        }
        (void)event_atoms;
      } else if (Assign* assign = std::get_if<Assign>(&term)) {
        NT_RETURN_IF_ERROR(
            CheckVarsBound(rule, assign->expr, bound,
                           "assignment of " + assign->var));
        if (bound.count(assign->var)) {
          return RuleError(rule,
                           "variable " + assign->var + " assigned twice");
        }
        bound.insert(assign->var);
      } else {
        const Select& sel = std::get<Select>(term);
        NT_RETURN_IF_ERROR(CheckVarsBound(rule, sel.expr, bound, "selection"));
      }
    }

    // All head variables bound.
    for (const AtomArg& arg : rule.head.args) {
      if (!arg.expr) continue;  // a_count<*>
      NT_RETURN_IF_ERROR(
          CheckVarsBound(rule, arg.expr, bound, "head of " + rule.name));
    }
  }

  // Event / base classification and event-related restrictions.
  for (const Rule& rule : prog.rules) {
    if (!rule.is_maybe) {
      out.tables[rule.head.predicate].is_base = false;
    } else {
      out.tables[rule.head.predicate].is_maybe_head = true;
    }
  }
  for (const Rule& rule : prog.rules) {
    size_t events_in_body = 0;
    for (const Atom* atom : rule.BodyAtoms()) {
      if (!out.tables[atom->predicate].materialized) ++events_in_body;
    }
    if (events_in_body > 1) {
      return RuleError(rule,
                       "at most one event (non-materialized) predicate per "
                       "rule body");
    }
    if (rule.is_maybe) {
      if (!out.tables[rule.head.predicate].materialized) {
        return RuleError(rule, "maybe rule head must be materialized");
      }
      for (const Atom* atom : rule.BodyAtoms()) {
        if (!out.tables[atom->predicate].materialized) {
          return RuleError(rule, "maybe rule body must be materialized");
        }
      }
      // Maybe rules are evaluated locally by the proxy.
      if (!rule.head.args[0].expr->is_var()) {
        return RuleError(rule, "maybe rule head location must be a variable");
      }
      const std::string& head_loc = rule.head.LocationVar();
      for (const Atom* atom : rule.BodyAtoms()) {
        if (!atom->args[0].expr->is_var() ||
            atom->args[0].expr->var_name() != head_loc) {
          return RuleError(rule,
                           "maybe rule body location must equal the head "
                           "location (local inference)");
        }
      }
    }
    // Aggregate rules: head location variable must be the (single) body
    // location variable. Rules still needing localization are re-checked
    // after the localization rewrite.
    if (rule.head.HasAggregate()) {
      std::set<std::string> body_locs;
      for (const Atom* atom : rule.BodyAtoms()) {
        if (atom->args[0].expr->is_var()) {
          body_locs.insert(atom->args[0].expr->var_name());
        }
      }
      if (body_locs.size() == 1 && rule.head.args[0].expr->is_var() &&
          !body_locs.count(rule.head.LocationVar())) {
        return RuleError(rule,
                         "aggregate rule head location must equal the body "
                         "location");
      }
    }
  }

  // Key positions within arity (only checkable once arity is known).
  for (auto& [name, info] : out.tables) {
    if (info.arity == 0) continue;
    for (int k : info.keys) {
      if (k < 0 || static_cast<size_t>(k) >= info.arity) {
        return Status::PlanError("table " + name + ": key position " +
                                 std::to_string(k + 1) + " out of range for "
                                 "arity " +
                                 std::to_string(info.arity));
      }
    }
  }

  out.program = std::move(prog);
  return out;
}

}  // namespace ndlog
}  // namespace nettrails
