// Token definitions for the NDlog lexer.
#ifndef NETTRAILS_NDLOG_TOKEN_H_
#define NETTRAILS_NDLOG_TOKEN_H_

#include <cstdint>
#include <string>

namespace nettrails {
namespace ndlog {

enum class TokenKind {
  kEof,
  kIdent,       // lowercase-initial: predicates, functions, keywords
  kVariable,    // uppercase-initial: rule variables
  kIntLit,
  kDoubleLit,
  kStringLit,
  kAt,          // @
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLAngle,      // <
  kRAngle,      // >
  kComma,       // ,
  kPeriod,      // .
  kDerives,     // :-
  kMaybeDerives,// ?-
  kAssign,      // :=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kEq,          // ==
  kNe,          // !=
  kLe,          // <=
  kGe,          // >=
  kAndAnd,      // &&
  kOrOr,        // ||
  kBang,        // !
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier / variable / string contents
  int64_t int_value = 0;
  double double_value = 0;
  int line = 0;
  int column = 0;

  std::string ToString() const;
};

/// Name of a token kind for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_TOKEN_H_
