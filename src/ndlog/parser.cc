#include "src/ndlog/parser.h"

#include "src/ndlog/lexer.h"

namespace nettrails {
namespace ndlog {

namespace {

bool IsAggName(const std::string& s, AggFn* fn) {
  if (s == "a_min") {
    *fn = AggFn::kMin;
    return true;
  }
  if (s == "a_max") {
    *fn = AggFn::kMax;
    return true;
  }
  if (s == "a_count") {
    *fn = AggFn::kCount;
    return true;
  }
  if (s == "a_sum") {
    *fn = AggFn::kSum;
    return true;
  }
  return false;
}

bool IsFunctionName(const std::string& s) {
  return s.rfind("f_", 0) == 0;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> Run() {
    Program prog;
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kIdent) && Cur().text == "materialize") {
        NT_ASSIGN_OR_RETURN(MaterializeDecl decl, ParseMaterialize());
        prog.materializations.push_back(std::move(decl));
      } else {
        NT_ASSIGN_OR_RETURN(Rule rule, ParseRule());
        prog.rules.push_back(std::move(rule));
      }
    }
    return prog;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  /// Span of the current token (stamped onto AST nodes as they parse).
  Span Sp() const { return Span{Cur().line, Cur().column}; }
  const Token& Next() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  bool At(TokenKind k) const { return Cur().kind == k; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Cur().line) +
                              ":" + std::to_string(Cur().column) + " (got " +
                              Cur().ToString() + ")");
  }

  Status Expect(TokenKind k, const char* what) {
    if (!At(k)) {
      return Error(std::string("expected ") + TokenKindName(k) + " in " +
                   what);
    }
    Advance();
    return Status::OK();
  }

  // materialize(name, lifetime, maxsize, keys(1,2)).
  Result<MaterializeDecl> ParseMaterialize() {
    Advance();  // "materialize"
    NT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "materialize"));
    if (!At(TokenKind::kIdent)) return Error("expected table name");
    MaterializeDecl decl;
    decl.table = Cur().text;
    decl.span = Sp();
    Advance();
    NT_RETURN_IF_ERROR(Expect(TokenKind::kComma, "materialize"));
    NT_ASSIGN_OR_RETURN(decl.lifetime_secs, ParseLifetimeOrSize());
    NT_RETURN_IF_ERROR(Expect(TokenKind::kComma, "materialize"));
    NT_ASSIGN_OR_RETURN(decl.max_size, ParseLifetimeOrSize());
    NT_RETURN_IF_ERROR(Expect(TokenKind::kComma, "materialize"));
    if (!At(TokenKind::kIdent) || Cur().text != "keys") {
      return Error("expected keys(...)");
    }
    Advance();
    NT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "keys"));
    while (At(TokenKind::kIntLit)) {
      int64_t pos = Cur().int_value;
      if (pos < 1) return Error("key positions are 1-based");
      decl.keys.push_back(static_cast<int>(pos - 1));
      Advance();
      if (At(TokenKind::kComma)) {
        Advance();
      } else {
        break;
      }
    }
    NT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "keys"));
    NT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "materialize"));
    NT_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "materialize"));
    return decl;
  }

  Result<int64_t> ParseLifetimeOrSize() {
    if (At(TokenKind::kIdent) && Cur().text == "infinity") {
      Advance();
      return static_cast<int64_t>(-1);
    }
    if (At(TokenKind::kIntLit)) {
      int64_t v = Cur().int_value;
      Advance();
      return v;
    }
    return Error("expected integer or 'infinity'");
  }

  // name head :- body.  |  name head ?- body.
  Result<Rule> ParseRule() {
    Rule rule;
    if (!At(TokenKind::kIdent)) return Error("expected rule name");
    rule.name = Cur().text;
    rule.span = Sp();
    Advance();
    NT_ASSIGN_OR_RETURN(rule.head, ParseAtom(/*allow_agg=*/true));
    if (At(TokenKind::kDerives)) {
      rule.is_maybe = false;
    } else if (At(TokenKind::kMaybeDerives)) {
      rule.is_maybe = true;
    } else {
      return Error("expected ':-' or '?-'");
    }
    Advance();
    while (true) {
      NT_ASSIGN_OR_RETURN(BodyTerm term, ParseBodyTerm());
      rule.body.push_back(std::move(term));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    NT_RETURN_IF_ERROR(Expect(TokenKind::kPeriod, "rule"));
    return rule;
  }

  Result<BodyTerm> ParseBodyTerm() {
    // Var := expr
    if (At(TokenKind::kVariable) && Next().kind == TokenKind::kAssign) {
      Assign assign;
      assign.var = Cur().text;
      assign.span = Sp();
      Advance();
      Advance();  // ':='
      NT_ASSIGN_OR_RETURN(assign.expr, ParseExpr());
      return BodyTerm(std::move(assign));
    }
    // Atom: ident '(' where ident is not an f_ function.
    if (At(TokenKind::kIdent) && !IsFunctionName(Cur().text) &&
        Next().kind == TokenKind::kLParen) {
      NT_ASSIGN_OR_RETURN(Atom atom, ParseAtom(/*allow_agg=*/false));
      return BodyTerm(std::move(atom));
    }
    // Otherwise a selection expression.
    NT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    return BodyTerm(Select{std::move(e)});
  }

  Result<Atom> ParseAtom(bool allow_agg) {
    Atom atom;
    if (!At(TokenKind::kIdent)) return Error("expected predicate name");
    atom.predicate = Cur().text;
    atom.span = Sp();
    Advance();
    NT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "atom"));
    if (At(TokenKind::kRParen)) {
      return Error("atoms must have at least one argument (the location)");
    }
    while (true) {
      NT_ASSIGN_OR_RETURN(AtomArg arg, ParseAtomArg(allow_agg));
      atom.args.push_back(std::move(arg));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    NT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "atom"));
    return atom;
  }

  Result<AtomArg> ParseAtomArg(bool allow_agg) {
    AtomArg arg;
    if (At(TokenKind::kAt)) {
      arg.is_location = true;
      Advance();
      if (!At(TokenKind::kVariable) && !At(TokenKind::kIntLit)) {
        return Error("expected variable or node id after '@'");
      }
      if (At(TokenKind::kIntLit)) {
        arg.expr = Expr::MakeConst(
            Value::Address(static_cast<NodeId>(Cur().int_value)), Sp());
        Advance();
      } else {
        arg.expr = Expr::MakeVar(Cur().text, Sp());
        Advance();
      }
      return arg;
    }
    AggFn fn;
    if (allow_agg && At(TokenKind::kIdent) && IsAggName(Cur().text, &fn) &&
        Next().kind == TokenKind::kLAngle) {
      arg.agg = fn;
      Advance();
      Advance();  // '<'
      if (At(TokenKind::kStar)) {
        arg.expr = nullptr;  // a_count<*>
        Advance();
      } else if (At(TokenKind::kVariable)) {
        arg.expr = Expr::MakeVar(Cur().text, Sp());
        Advance();
      } else {
        return Error("expected variable or '*' in aggregate");
      }
      if (!At(TokenKind::kRAngle)) return Error("expected '>' after aggregate");
      Advance();
      return arg;
    }
    NT_ASSIGN_OR_RETURN(arg.expr, ParseExpr());
    return arg;
  }

  // Precedence climbing: || < && < ==/!= < relational < +- < */% < unary.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    NT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (At(TokenKind::kOrOr)) {
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      Span sp = lhs->span();
      lhs = Expr::MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs), sp);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    NT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseEquality());
    while (At(TokenKind::kAndAnd)) {
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseEquality());
      Span sp = lhs->span();
      lhs = Expr::MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs), sp);
    }
    return lhs;
  }

  Result<ExprPtr> ParseEquality() {
    NT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRelational());
    while (At(TokenKind::kEq) || At(TokenKind::kNe)) {
      BinOp op = At(TokenKind::kEq) ? BinOp::kEq : BinOp::kNe;
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRelational());
      Span sp = lhs->span();
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs), sp);
    }
    return lhs;
  }

  Result<ExprPtr> ParseRelational() {
    NT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (At(TokenKind::kLAngle) || At(TokenKind::kRAngle) ||
           At(TokenKind::kLe) || At(TokenKind::kGe)) {
      BinOp op;
      if (At(TokenKind::kLAngle)) {
        op = BinOp::kLt;
      } else if (At(TokenKind::kRAngle)) {
        op = BinOp::kGt;
      } else if (At(TokenKind::kLe)) {
        op = BinOp::kLe;
      } else {
        op = BinOp::kGe;
      }
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      Span sp = lhs->span();
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs), sp);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    NT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      BinOp op = At(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      Span sp = lhs->span();
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs), sp);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    NT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) ||
           At(TokenKind::kPercent)) {
      BinOp op = At(TokenKind::kStar)
                     ? BinOp::kMul
                     : (At(TokenKind::kSlash) ? BinOp::kDiv : BinOp::kMod);
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      Span sp = lhs->span();
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs), sp);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (At(TokenKind::kMinus)) {
      Span sp = Sp();
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::MakeUnary(UnOp::kNeg, std::move(e), sp);
    }
    if (At(TokenKind::kBang)) {
      Span sp = Sp();
      Advance();
      NT_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::MakeUnary(UnOp::kNot, std::move(e), sp);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    switch (Cur().kind) {
      case TokenKind::kIntLit: {
        ExprPtr e = Expr::MakeConst(Value::Int(Cur().int_value), Sp());
        Advance();
        return e;
      }
      case TokenKind::kDoubleLit: {
        ExprPtr e = Expr::MakeConst(Value::Double(Cur().double_value), Sp());
        Advance();
        return e;
      }
      case TokenKind::kStringLit: {
        ExprPtr e = Expr::MakeConst(Value::Str(Cur().text), Sp());
        Advance();
        return e;
      }
      case TokenKind::kVariable: {
        ExprPtr e = Expr::MakeVar(Cur().text, Sp());
        Advance();
        return e;
      }
      case TokenKind::kAt: {
        // Address literal @N.
        Span sp = Sp();
        Advance();
        if (!At(TokenKind::kIntLit)) return Error("expected node id after '@'");
        ExprPtr e = Expr::MakeConst(
            Value::Address(static_cast<NodeId>(Cur().int_value)), sp);
        Advance();
        return e;
      }
      case TokenKind::kIdent: {
        if (!IsFunctionName(Cur().text)) {
          return Error("unexpected identifier '" + Cur().text +
                       "' (functions are f_*)");
        }
        std::string fn = Cur().text;
        Span sp = Sp();
        Advance();
        NT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "function call"));
        std::vector<ExprPtr> args;
        if (!At(TokenKind::kRParen)) {
          while (true) {
            NT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
            if (At(TokenKind::kComma)) {
              Advance();
              continue;
            }
            break;
          }
        }
        NT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "function call"));
        return Expr::MakeCall(std::move(fn), std::move(args), sp);
      }
      case TokenKind::kLParen: {
        Advance();
        NT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        NT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "parenthesized expr"));
        return e;
      }
      case TokenKind::kLBracket: {
        Span sp = Sp();
        Advance();
        std::vector<ExprPtr> elems;
        if (!At(TokenKind::kRBracket)) {
          while (true) {
            NT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            elems.push_back(std::move(e));
            if (At(TokenKind::kComma)) {
              Advance();
              continue;
            }
            break;
          }
        }
        NT_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "list literal"));
        return Expr::MakeList(std::move(elems), sp);
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  NT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).Run();
}

}  // namespace ndlog
}  // namespace nettrails
