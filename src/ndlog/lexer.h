// NDlog lexer. Comments: `//` to end of line and `/* ... */`.
#ifndef NETTRAILS_NDLOG_LEXER_H_
#define NETTRAILS_NDLOG_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ndlog/token.h"

namespace nettrails {
namespace ndlog {

/// Tokenizes NDlog source. Returns the token stream terminated by kEof, or a
/// ParseError with line/column info.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_LEXER_H_
