// Diagnostics engine for NDlog static analysis: stable rule codes,
// severities, and source spans. Produced by the lint passes (lint.h) and
// the front end; rendered by the ndlint CLI and folded into PlanErrors by
// the compile pipeline.
#ifndef NETTRAILS_NDLOG_DIAGNOSTICS_H_
#define NETTRAILS_NDLOG_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/ndlog/span.h"

namespace nettrails {
namespace ndlog {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity s);

/// One finding. `code` is a stable identifier (ND001...) that tools and
/// suppressions key on; the human message may evolve freely.
struct Diagnostic {
  std::string code;      // stable, e.g. "ND101"
  Severity severity = Severity::kWarning;
  Span span;             // invalid for whole-program findings
  std::string rule;      // rule name context ("" for program-level)
  std::string message;

  /// Human rendering: "<file>:<line>:<col>: <severity>: <message> [<code>]".
  /// `file` may be empty (omitted with its colon).
  std::string Render(const std::string& file = "") const;

  /// Machine rendering, one finding per line, tab-separated:
  /// "<file>\t<line>\t<col>\t<severity>\t<code>\t<rule>\t<message>".
  std::string RenderMachine(const std::string& file = "") const;
};

/// Registry entry describing one stable diagnostic code (for docs and
/// `ndlint --explain`).
struct DiagnosticInfo {
  const char* code;
  Severity default_severity;
  const char* summary;
};

/// All registered codes, ordered by code.
const std::vector<DiagnosticInfo>& AllDiagnostics();

/// Registry lookup; nullptr if `code` is unknown.
const DiagnosticInfo* FindDiagnostic(const std::string& code);

/// Collects findings. Passes append through Add(); callers inspect counts
/// and render. Deterministic: findings keep insertion order, and Sort()
/// orders by (line, column, code) for stable golden output.
class DiagnosticEngine {
 public:
  void Add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void Add(const char* code, Severity severity, Span span, std::string rule,
           std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }

  size_t CountAtLeast(Severity s) const;
  size_t errors() const { return CountAtLeast(Severity::kError); }
  size_t warnings() const;

  /// Stable order for golden tests and CLI output.
  void Sort();

  /// Drops findings whose code is in `allowed` (the suppression set).
  void Suppress(const std::vector<std::string>& allowed);

  /// Concatenated Render() of every finding, one per line.
  std::string RenderAll(const std::string& file = "") const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_DIAGNOSTICS_H_
