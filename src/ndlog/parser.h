// Recursive-descent parser for NDlog.
#ifndef NETTRAILS_NDLOG_PARSER_H_
#define NETTRAILS_NDLOG_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/ndlog/ast.h"

namespace nettrails {
namespace ndlog {

/// Parses NDlog source into a Program. Syntactic checks only; semantic
/// validation (safety, location consistency, catalog) happens in
/// analysis.h.
Result<Program> Parse(const std::string& source);

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_PARSER_H_
