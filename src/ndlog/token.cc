#include "src/ndlog/token.h"

namespace nettrails {
namespace ndlog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end-of-input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kIntLit: return "integer";
    case TokenKind::kDoubleLit: return "double";
    case TokenKind::kStringLit: return "string";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kDerives: return "':-'";
    case TokenKind::kMaybeDerives: return "'?-'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
  }
  return "unknown";
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kIdent:
    case TokenKind::kVariable:
      return text;
    case TokenKind::kIntLit:
      return std::to_string(int_value);
    case TokenKind::kDoubleLit:
      return std::to_string(double_value);
    case TokenKind::kStringLit:
      return "\"" + text + "\"";
    default:
      return TokenKindName(kind);
  }
}

}  // namespace ndlog
}  // namespace nettrails
