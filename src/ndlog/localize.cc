#include "src/ndlog/localize.h"

#include <set>

namespace nettrails {
namespace ndlog {

namespace {

/// Location variable of a normalized atom, or empty for an @n constant.
std::string LocVar(const Atom& atom) {
  return atom.args[0].expr->is_var() ? atom.args[0].expr->var_name()
                                     : std::string();
}

/// Builds the generated rule  p_d(@V1, V0, V2...) :- p(@V0, V1, V2...).
Rule MakeReversalRule(const std::string& pred, size_t arity) {
  Rule rule;
  rule.name = pred + "_loc";
  Atom head;
  head.predicate = pred + kReversedSuffix;
  Atom body;
  body.predicate = pred;
  for (size_t i = 0; i < arity; ++i) {
    AtomArg arg;
    arg.expr = Expr::MakeVar("LZ" + std::to_string(i));
    body.args.push_back(arg);
  }
  body.args[0].is_location = true;
  // Head: swap first two.
  AtomArg h0;
  h0.is_location = true;
  h0.expr = Expr::MakeVar("LZ1");
  head.args.push_back(h0);
  AtomArg h1;
  h1.expr = Expr::MakeVar("LZ0");
  head.args.push_back(h1);
  for (size_t i = 2; i < arity; ++i) {
    AtomArg a;
    a.expr = Expr::MakeVar("LZ" + std::to_string(i));
    head.args.push_back(a);
  }
  rule.head = std::move(head);
  rule.body.emplace_back(std::move(body));
  return rule;
}

}  // namespace

Result<Program> Localize(const AnalyzedProgram& analyzed) {
  const Program& in = analyzed.program;
  Program out;
  out.materializations = in.materializations;

  // Predicates for which the reversed table has been generated.
  std::set<std::string> reversed;

  for (const Rule& rule : in.rules) {
    std::set<std::string> locs;
    for (const Atom* atom : rule.BodyAtoms()) {
      std::string lv = LocVar(*atom);
      if (!lv.empty()) locs.insert(lv);
    }
    if (locs.size() <= 1) {
      out.rules.push_back(rule);
      continue;
    }
    if (locs.size() > 2) {
      return Status::PlanError("rule " + rule.name +
                               ": body spans more than two locations; not "
                               "localizable");
    }
    if (rule.is_maybe) {
      return Status::PlanError("rule " + rule.name +
                               ": maybe rules must be local");
    }

    // Two locations: find the link-shaped atom whose reversal localizes the
    // rule. Candidate atom l at location A with args[1] == B such that every
    // other atom is at B.
    Rule rewritten = rule;
    bool done = false;
    std::vector<Atom*> atoms;
    for (BodyTerm& term : rewritten.body) {
      if (Atom* a = std::get_if<Atom>(&term)) atoms.push_back(a);
    }
    for (size_t i = 0; i < atoms.size() && !done; ++i) {
      Atom* cand = atoms[i];
      std::string a = LocVar(*cand);
      if (a.empty() || cand->args.size() < 2 || !cand->args[1].expr->is_var()) {
        continue;
      }
      std::string b = cand->args[1].expr->var_name();
      if (!locs.count(a) || !locs.count(b) || a == b) continue;
      bool others_at_b = true;
      for (size_t j = 0; j < atoms.size(); ++j) {
        if (j == i) continue;
        if (LocVar(*atoms[j]) != b) {
          others_at_b = false;
          break;
        }
      }
      if (!others_at_b) continue;

      // Rewrite cand: p(@A, B, rest...) -> p_d(@B, A, rest...).
      const std::string pred = cand->predicate;
      const TableInfo* info = analyzed.FindTable(pred);
      Atom repl;
      repl.predicate = pred + kReversedSuffix;
      AtomArg r0;
      r0.is_location = true;
      r0.expr = cand->args[1].expr;
      repl.args.push_back(r0);
      AtomArg r1;
      r1.expr = cand->args[0].expr;
      repl.args.push_back(r1);
      for (size_t j = 2; j < cand->args.size(); ++j) {
        repl.args.push_back(cand->args[j]);
      }
      size_t arity = cand->args.size();
      *cand = std::move(repl);
      done = true;

      if (!reversed.count(pred)) {
        reversed.insert(pred);
        out.rules.push_back(MakeReversalRule(pred, arity));
        if (info != nullptr && info->materialized) {
          MaterializeDecl decl;
          decl.table = pred + kReversedSuffix;
          // Copy lifetime/size from the original declaration if present.
          if (const MaterializeDecl* orig = in.FindMaterialization(pred)) {
            decl.lifetime_secs = orig->lifetime_secs;
            decl.max_size = orig->max_size;
          }
          for (int k : info->keys) {
            decl.keys.push_back(k == 0 ? 1 : (k == 1 ? 0 : k));
          }
          out.materializations.push_back(std::move(decl));
        }
      }
    }
    if (!done) {
      return Status::PlanError(
          "rule " + rule.name +
          ": body spans two locations but no link-shaped atom connects "
          "them; not localizable");
    }
    out.rules.push_back(std::move(rewritten));
  }
  return out;
}

}  // namespace ndlog
}  // namespace nettrails
