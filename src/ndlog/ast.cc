#include "src/ndlog/ast.h"

namespace nettrails {
namespace ndlog {

namespace {
const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}
}  // namespace

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kMin: return "a_min";
    case AggFn::kMax: return "a_max";
    case AggFn::kCount: return "a_count";
    case AggFn::kSum: return "a_sum";
  }
  return "a_?";
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  struct Visitor {
    std::vector<std::string>* out;
    void operator()(const Const&) {}
    void operator()(const Var& v) { out->push_back(v.name); }
    void operator()(const Call& c) {
      for (const ExprPtr& a : c.args) a->CollectVars(out);
    }
    void operator()(const Binary& b) {
      b.lhs->CollectVars(out);
      b.rhs->CollectVars(out);
    }
    void operator()(const Unary& u) { u.operand->CollectVars(out); }
    void operator()(const ListLit& l) {
      for (const ExprPtr& e : l.elements) e->CollectVars(out);
    }
  };
  std::visit(Visitor{out}, rep_);
}

std::string Expr::ToString() const {
  struct Visitor {
    std::string operator()(const Const& c) { return c.value.ToString(); }
    std::string operator()(const Var& v) { return v.name; }
    std::string operator()(const Call& c) {
      std::string out = c.fn + "(";
      for (size_t i = 0; i < c.args.size(); ++i) {
        if (i) out += ", ";
        out += c.args[i]->ToString();
      }
      return out + ")";
    }
    std::string operator()(const Binary& b) {
      return "(" + b.lhs->ToString() + " " + BinOpName(b.op) + " " +
             b.rhs->ToString() + ")";
    }
    std::string operator()(const Unary& u) {
      return std::string(u.op == UnOp::kNeg ? "-" : "!") +
             u.operand->ToString();
    }
    std::string operator()(const ListLit& l) {
      std::string out = "[";
      for (size_t i = 0; i < l.elements.size(); ++i) {
        if (i) out += ", ";
        out += l.elements[i]->ToString();
      }
      return out + "]";
    }
  };
  return std::visit(Visitor{}, rep_);
}

std::string AtomArg::ToString() const {
  std::string out;
  if (agg) {
    out += AggFnName(*agg);
    out += '<';
    out += expr ? expr->ToString() : "*";
    out += '>';
    return out;
  }
  if (is_location) out += '@';
  out += expr->ToString();
  return out;
}

bool Atom::HasAggregate() const {
  for (const AtomArg& a : args) {
    if (a.agg) return true;
  }
  return false;
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

std::string Assign::ToString() const { return var + " := " + expr->ToString(); }

std::string Select::ToString() const { return expr->ToString(); }

std::string BodyTermToString(const BodyTerm& term) {
  struct Visitor {
    std::string operator()(const Atom& a) { return a.ToString(); }
    std::string operator()(const Assign& a) { return a.ToString(); }
    std::string operator()(const Select& s) { return s.ToString(); }
  };
  return std::visit(Visitor{}, term);
}

std::vector<const Atom*> Rule::BodyAtoms() const {
  std::vector<const Atom*> out;
  for (const BodyTerm& t : body) {
    if (const Atom* a = std::get_if<Atom>(&t)) out.push_back(a);
  }
  return out;
}

std::string Rule::ToString() const {
  std::string out = name + " " + head.ToString();
  out += is_maybe ? " ?- " : " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) out += ", ";
    out += BodyTermToString(body[i]);
  }
  return out + ".";
}

std::string MaterializeDecl::ToString() const {
  auto life = [&]() -> std::string {
    return lifetime_secs < 0 ? "infinity" : std::to_string(lifetime_secs);
  };
  auto size = [&]() -> std::string {
    return max_size < 0 ? "infinity" : std::to_string(max_size);
  };
  std::string out = "materialize(" + table + ", " + life() + ", " + size() +
                    ", keys(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(keys[i] + 1);  // render 1-based
  }
  return out + ")).";
}

const MaterializeDecl* Program::FindMaterialization(
    const std::string& table) const {
  for (const MaterializeDecl& m : materializations) {
    if (m.table == table) return &m;
  }
  return nullptr;
}

std::string Program::ToString() const {
  std::string out;
  for (const MaterializeDecl& m : materializations) {
    out += m.ToString();
    out += '\n';
  }
  if (!materializations.empty()) out += '\n';
  for (const Rule& r : rules) {
    out += r.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace ndlog
}  // namespace nettrails
