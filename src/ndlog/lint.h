// Whole-program static analysis (ndlint) for NDlog: stratification, type
// inference, link-restriction, dead-code, and plan-quality passes over an
// analyzed (pre-localization) program. Findings are Diagnostics with stable
// codes (see diagnostics.h); LintProgram never fails — severity decides
// whether the compile pipeline turns a finding into a PlanError.
#ifndef NETTRAILS_NDLOG_LINT_H_
#define NETTRAILS_NDLOG_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "src/ndlog/analysis.h"
#include "src/ndlog/diagnostics.h"

namespace nettrails {
namespace ndlog {

struct LintOptions {
  /// Predicates whose first two fields are (src, dst) of a physical link.
  /// The link-restriction pass (ND303) accepts shipping a derived head one
  /// hop along args[1] of such an atom; everything else is flagged.
  std::set<std::string> link_predicates = {"link"};
  /// Diagnostic codes to drop from the result (merged with the in-source
  /// `// ndlint: allow(NDxxx)` pragmas by callers that hold the source).
  std::vector<std::string> allow;
};

/// Scans NDlog source text for suppression pragmas of the form
/// `// ndlint: allow(ND303)` or `// ndlint: allow(ND303, ND403)`.
/// Suppressions are file-scoped. Returns the allowed codes.
std::vector<std::string> ParseLintPragmas(const std::string& source);

/// Runs every lint pass over `analyzed`. The program must be the
/// pre-localization user program (generated localization/provenance rules
/// would trip dead-code and link lints by construction). Findings come
/// back sorted by source position.
DiagnosticEngine LintProgram(const AnalyzedProgram& analyzed,
                             const LintOptions& options = {});

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_LINT_H_
