// Abstract syntax tree for NDlog programs.
//
// Grammar sketch (see parser.cc):
//   program     := { materialize | rule }
//   materialize := "materialize" "(" name "," life "," size "," "keys" "(" ints ")" ")" "."
//   rule        := name head (":-" | "?-") body "."
//   head        := atom (args may include one aggregate a_min<V> etc.)
//   body        := term { "," term }
//   term        := atom | Var ":=" expr | expr
//   atom        := name "(" arg { "," arg } ")", args are @Var / Var / const
#ifndef NETTRAILS_NDLOG_AST_H_
#define NETTRAILS_NDLOG_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/value.h"
#include "src/ndlog/span.h"

namespace nettrails {
namespace ndlog {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp { kNeg, kNot };

/// Expression tree node. Immutable; shared across rewritten rules.
class Expr {
 public:
  struct Const {
    Value value;
  };
  struct Var {
    std::string name;
  };
  struct Call {
    std::string fn;  // builtin name, e.g. "f_append"
    std::vector<ExprPtr> args;
  };
  struct Binary {
    BinOp op;
    ExprPtr lhs;
    ExprPtr rhs;
  };
  struct Unary {
    UnOp op;
    ExprPtr operand;
  };
  /// List literal [e1, e2, ...].
  struct ListLit {
    std::vector<ExprPtr> elements;
  };

  using Rep = std::variant<Const, Var, Call, Binary, Unary, ListLit>;

  explicit Expr(Rep rep, Span span = {}) : rep_(std::move(rep)), span_(span) {}

  // Factories take an optional source span; generated expressions (the
  // localization and provenance rewrites) keep the invalid default.
  static ExprPtr MakeConst(Value v, Span span = {}) {
    return std::make_shared<Expr>(Rep(Const{std::move(v)}), span);
  }
  static ExprPtr MakeVar(std::string name, Span span = {}) {
    return std::make_shared<Expr>(Rep(Var{std::move(name)}), span);
  }
  static ExprPtr MakeCall(std::string fn, std::vector<ExprPtr> args,
                          Span span = {}) {
    return std::make_shared<Expr>(Rep(Call{std::move(fn), std::move(args)}),
                                  span);
  }
  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs,
                            Span span = {}) {
    return std::make_shared<Expr>(
        Rep(Binary{op, std::move(lhs), std::move(rhs)}), span);
  }
  static ExprPtr MakeUnary(UnOp op, ExprPtr operand, Span span = {}) {
    return std::make_shared<Expr>(Rep(Unary{op, std::move(operand)}), span);
  }
  static ExprPtr MakeList(std::vector<ExprPtr> elements, Span span = {}) {
    return std::make_shared<Expr>(Rep(ListLit{std::move(elements)}), span);
  }

  const Rep& rep() const { return rep_; }
  Span span() const { return span_; }

  bool is_var() const { return std::holds_alternative<Var>(rep_); }
  bool is_const() const { return std::holds_alternative<Const>(rep_); }
  const std::string& var_name() const { return std::get<Var>(rep_).name; }
  const Value& const_value() const { return std::get<Const>(rep_).value; }

  /// Appends the names of all variables in this expression to `out`.
  void CollectVars(std::vector<std::string>* out) const;

  std::string ToString() const;

 private:
  Rep rep_;
  Span span_;
};

/// Aggregate function in a rule head argument, e.g. a_min<C>.
enum class AggFn { kMin, kMax, kCount, kSum };

const char* AggFnName(AggFn fn);

/// One argument of an atom.
struct AtomArg {
  /// Marked with '@' — the location attribute. Only valid at position 0.
  bool is_location = false;
  /// Set when the head argument is an aggregate, e.g. a_min<C>.
  std::optional<AggFn> agg;
  /// a_count<*> has no variable; otherwise the expression (Var/Const for
  /// atoms; aggregates always wrap a Var or '*').
  ExprPtr expr;

  std::string ToString() const;
};

/// A predicate atom, e.g. link(@X, Y, C).
struct Atom {
  std::string predicate;
  std::vector<AtomArg> args;
  /// Position of the predicate token (invalid for generated atoms).
  Span span;

  /// Location variable name (args[0] must be @Var after analysis).
  const std::string& LocationVar() const { return args[0].expr->var_name(); }
  bool HasAggregate() const;
  std::string ToString() const;
};

/// Var := expr.
struct Assign {
  std::string var;
  ExprPtr expr;
  /// Position of the assigned variable token.
  Span span;

  std::string ToString() const;
};

/// A boolean selection predicate over bound variables.
struct Select {
  ExprPtr expr;

  /// Position of the selection expression (from its root expr).
  Span span() const { return expr ? expr->span() : Span{}; }

  std::string ToString() const;
};

using BodyTerm = std::variant<Atom, Assign, Select>;

std::string BodyTermToString(const BodyTerm& term);

/// One NDlog rule. `is_maybe` marks "maybe" rules (`?-`), which describe
/// possible causal relationships for legacy (black-box) applications rather
/// than hard derivations.
struct Rule {
  std::string name;
  Atom head;
  std::vector<BodyTerm> body;
  bool is_maybe = false;
  /// Position of the rule-name token (invalid for generated rules).
  Span span;

  /// Atoms of the body, in order.
  std::vector<const Atom*> BodyAtoms() const;
  std::string ToString() const;
};

/// materialize(name, lifetime, maxsize, keys(...)). Lifetime/size of -1
/// mean "infinity". Key positions are 1-based in the source (matching the
/// original NDlog syntax) and stored 0-based here.
struct MaterializeDecl {
  std::string table;
  int64_t lifetime_secs = -1;
  int64_t max_size = -1;
  std::vector<int> keys;  // 0-based field positions
  /// Position of the table-name token.
  Span span;

  std::string ToString() const;
};

/// A parsed NDlog program.
struct Program {
  std::vector<MaterializeDecl> materializations;
  std::vector<Rule> rules;

  const MaterializeDecl* FindMaterialization(const std::string& table) const;
  std::string ToString() const;
};

}  // namespace ndlog
}  // namespace nettrails

#endif  // NETTRAILS_NDLOG_AST_H_
