#include "src/ndlog/diagnostics.h"

#include <algorithm>

namespace nettrails {
namespace ndlog {

std::string Span::ToString() const {
  if (!valid()) return "generated code";
  return "line " + std::to_string(line) + ":" + std::to_string(column);
}

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

const std::vector<DiagnosticInfo>& AllDiagnostics() {
  // Codes are stable across releases: never renumber or reuse. Grouped by
  // family — ND0xx front end, ND1xx stratification, ND2xx types, ND3xx
  // link restriction, ND4xx dead code, ND5xx plan quality, ND6xx soft
  // state.
  static const std::vector<DiagnosticInfo>* infos =
      new std::vector<DiagnosticInfo>{
          {"ND001", Severity::kError, "parse error"},
          {"ND002", Severity::kError, "semantic analysis error"},
          {"ND101", Severity::kError,
           "unstratified aggregation: predicate depends on itself through "
           "a_count/a_sum"},
          {"ND102", Severity::kWarning,
           "non-monotone recursion through a maybe-rule head"},
          {"ND201", Severity::kError,
           "conflicting field types for a predicate across rules"},
          {"ND202", Severity::kError,
           "builtin argument type mismatch (BuiltinInfo contract)"},
          {"ND203", Severity::kWarning,
           "comparison between disjoint types is always false"},
          {"ND301", Severity::kError,
           "rule body spans more than two locations; not localizable"},
          {"ND302", Severity::kError,
           "rule body spans two locations with no link-shaped atom "
           "connecting them; not localizable"},
          {"ND303", Severity::kWarning,
           "rule head ships tuples to a location that is not a declared "
           "link neighbor of the evaluation site"},
          {"ND401", Severity::kWarning,
           "dead rule: derives an event predicate no rule consumes"},
          {"ND402", Severity::kWarning,
           "write-only variable: assigned but never read"},
          {"ND403", Severity::kNote,
           "singleton variable: bound once and never used (possible typo)"},
          {"ND501", Severity::kWarning,
           "join probes a table with no usable index and an unbound "
           "location: whole-table scan fallback per delta"},
          {"ND502", Severity::kNote,
           "broadcast join: only the location is bound, so every row of "
           "the probed table is a candidate per delta"},
          {"ND601", Severity::kWarning,
           "materialized table is never referenced by any rule"},
          {"ND602", Severity::kWarning,
           "soft-state lifetime/max_size on an aggregate output table: "
           "eviction silently changes aggregate results"},
      };
  return *infos;
}

const DiagnosticInfo* FindDiagnostic(const std::string& code) {
  for (const DiagnosticInfo& info : AllDiagnostics()) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

std::string Diagnostic::Render(const std::string& file) const {
  std::string out;
  if (!file.empty()) out += file + ":";
  out += std::to_string(span.line) + ":" + std::to_string(span.column) + ": ";
  out += SeverityName(severity);
  out += ": ";
  if (!rule.empty()) out += "rule " + rule + ": ";
  out += message;
  out += " [" + code + "]";
  return out;
}

std::string Diagnostic::RenderMachine(const std::string& file) const {
  std::string out = file;
  out += "\t" + std::to_string(span.line) + "\t" + std::to_string(span.column);
  out += "\t";
  out += SeverityName(severity);
  out += "\t" + code + "\t" + rule + "\t" + message;
  return out;
}

void DiagnosticEngine::Add(const char* code, Severity severity, Span span,
                           std::string rule, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.span = span;
  d.rule = std::move(rule);
  d.message = std::move(message);
  diags_.push_back(std::move(d));
}

size_t DiagnosticEngine::CountAtLeast(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity >= s) ++n;
  }
  return n;
}

size_t DiagnosticEngine::warnings() const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

void DiagnosticEngine::Sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     if (a.span.column != b.span.column) {
                       return a.span.column < b.span.column;
                     }
                     return a.code < b.code;
                   });
}

void DiagnosticEngine::Suppress(const std::vector<std::string>& allowed) {
  if (allowed.empty()) return;
  diags_.erase(std::remove_if(diags_.begin(), diags_.end(),
                              [&](const Diagnostic& d) {
                                for (const std::string& code : allowed) {
                                  if (d.code == code) return true;
                                }
                                return false;
                              }),
               diags_.end());
}

std::string DiagnosticEngine::RenderAll(const std::string& file) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.Render(file);
    out += "\n";
  }
  return out;
}

}  // namespace ndlog
}  // namespace nettrails
