#include "src/runtime/plan.h"

#include <algorithm>
#include <set>

#include "src/ndlog/localize.h"
#include "src/ndlog/parser.h"
#include "src/provenance/rewrite.h"

namespace nettrails {
namespace runtime {

namespace {

using ndlog::AnalyzedProgram;
using ndlog::Atom;
using ndlog::BodyTerm;
using ndlog::Expr;
using ndlog::Program;
using ndlog::Rule;

/// Lowers a rule to its slot-frame form: every variable interned into
/// cr->slots, body atoms lowered to slot/constant patterns, assignments and
/// selections (and every head argument) lowered to CompiledExprs with
/// builtins resolved and arity-checked — so unknown-builtin and arity
/// errors surface here, at compile time, not on the first firing.

/// "rule <name> (line L:C)" — the span is invalid (and omitted) for rules
/// the localization/provenance rewrites generate.
std::string RuleAt(const Rule& rule) {
  std::string where =
      rule.span.valid() ? " (" + rule.span.ToString() + ")" : "";
  return "rule " + rule.name + where;
}

Status LowerRule(CompiledRule* cr) {
  const Rule& rule = cr->rule;
  auto lower_expr = [&](const Expr& e) -> Result<CompiledExpr> {
    Result<CompiledExpr> ce = CompileExpr(e, &cr->slots);
    if (!ce.ok()) {
      return Status::PlanError(RuleAt(rule) + ": " + ce.status().message());
    }
    return ce;
  };

  cr->body.resize(rule.body.size());
  for (size_t i = 0; i < rule.body.size(); ++i) {
    CompiledTerm& term = cr->body[i];
    if (const Atom* atom = std::get_if<Atom>(&rule.body[i])) {
      term.kind = CompiledTerm::Kind::kAtom;
      term.atom.args.reserve(atom->args.size());
      for (const ndlog::AtomArg& arg : atom->args) {
        const Expr& e = *arg.expr;
        SlotArg sa;
        if (e.is_var()) {
          sa.slot = cr->slots.Intern(e.var_name());
          sa.name = e.var_name();
        } else if (e.is_const()) {
          sa.constant = e.const_value();
        } else {
          return Status::PlanError(
              RuleAt(rule) +
              ": body atom arguments must be variables or constants");
        }
        term.atom.args.push_back(std::move(sa));
      }
    } else if (const ndlog::Assign* assign =
                   std::get_if<ndlog::Assign>(&rule.body[i])) {
      term.kind = CompiledTerm::Kind::kAssign;
      NT_ASSIGN_OR_RETURN(term.expr, lower_expr(*assign->expr));
      term.assign_slot = cr->slots.Intern(assign->var);
    } else {
      term.kind = CompiledTerm::Kind::kSelect;
      NT_ASSIGN_OR_RETURN(term.expr,
                          lower_expr(*std::get<ndlog::Select>(rule.body[i]).expr));
    }
  }

  cr->head_exprs.resize(rule.head.args.size());
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (rule.head.args[i].expr) {
      NT_ASSIGN_OR_RETURN(cr->head_exprs[i],
                          lower_expr(*rule.head.args[i].expr));
    }
  }
  return Status::OK();
}

/// Appends the variable names of an atom's arguments to `out` (atom args
/// are Var/Const only after analysis).
void CollectAtomVars(const Atom& atom, std::set<std::string>* out) {
  for (const ndlog::AtomArg& arg : atom.args) {
    if (arg.expr && arg.expr->is_var()) out->insert(arg.expr->var_name());
  }
}

/// Computes the probe plan for rule `cr` evaluated with `delta_term` as the
/// delta atom, registering every needed (table, bound-position-set)
/// secondary index in `table_indexes`. Mirrors Engine::JoinRec exactly:
/// bindings start from the delta atom, then body terms are processed in
/// order (skipping the delta), assignments binding their target and each
/// probed atom binding its variables.
void PlanJoinIndexes(
    CompiledRule* cr, size_t delta_term,
    const std::map<std::string, ndlog::TableInfo>& tables,
    std::map<std::string, std::vector<std::vector<int>>>* table_indexes) {
  const Rule& rule = cr->rule;
  std::vector<AtomProbePlan> plans(rule.body.size());

  std::set<std::string> bound;
  CollectAtomVars(std::get<Atom>(rule.body[delta_term]), &bound);

  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i == delta_term) continue;
    const BodyTerm& term = rule.body[i];
    if (const ndlog::Assign* assign = std::get_if<ndlog::Assign>(&term)) {
      bound.insert(assign->var);
      continue;
    }
    const Atom* atom = std::get_if<Atom>(&term);
    if (atom == nullptr) continue;  // selection: binds nothing
    plans[i].same_pred_as_delta =
        atom->predicate == std::get<Atom>(rule.body[delta_term]).predicate;
    auto tit = tables.find(atom->predicate);
    if (tit != tables.end() && tit->second.materialized) {
      bool location_bound = false;
      std::vector<int> positions;
      for (size_t a = 0; a < atom->args.size(); ++a) {
        const Expr& e = *atom->args[a].expr;
        if (e.is_const() || (e.is_var() && bound.count(e.var_name()))) {
          // Position 0 is the location attribute: constant across a
          // node-local table, so useless (and harmful) as an index key.
          if (a == 0) {
            location_bound = true;
          } else {
            positions.push_back(static_cast<int>(a));
          }
        }
      }
      if (!positions.empty()) {
        std::vector<std::vector<int>>& specs =
            (*table_indexes)[atom->predicate];
        auto sit = std::find(specs.begin(), specs.end(), positions);
        int id = static_cast<int>(sit - specs.begin());
        if (sit == specs.end()) specs.push_back(positions);
        plans[i].bound_positions = std::move(positions);
        plans[i].index_id = id;
      } else if (location_bound) {
        plans[i].broadcast = true;
      }
    }
    CollectAtomVars(*atom, &bound);
  }
  cr->join_plans.emplace(delta_term, std::move(plans));
}

}  // namespace

Result<CompiledProgramPtr> Compile(const std::string& source,
                                   const CompileOptions& options) {
  NT_ASSIGN_OR_RETURN(Program parsed, ndlog::Parse(source));
  NT_ASSIGN_OR_RETURN(AnalyzedProgram analyzed, ndlog::Analyze(std::move(parsed)));

  // Static analysis runs over the user program, before localization and the
  // provenance rewrite introduce generated rules that would trip the link
  // and dead-code lints by construction. Only error-severity findings stop
  // the compile; the ndlint CLI surfaces warnings and notes.
  if (options.lint) {
    ndlog::LintOptions lint_options = options.lint_options;
    std::vector<std::string> pragmas = ndlog::ParseLintPragmas(source);
    lint_options.allow.insert(lint_options.allow.end(), pragmas.begin(),
                              pragmas.end());
    ndlog::DiagnosticEngine diags = ndlog::LintProgram(analyzed, lint_options);
    if (diags.errors() > 0) {
      std::string msg = "lint failed:";
      for (const ndlog::Diagnostic& d : diags.diagnostics()) {
        if (d.severity == ndlog::Severity::kError) msg += "\n  " + d.Render();
      }
      return Status::PlanError(msg);
    }
  }

  NT_ASSIGN_OR_RETURN(Program localized, ndlog::Localize(analyzed));
  NT_ASSIGN_OR_RETURN(analyzed, ndlog::Analyze(std::move(localized)));

  if (options.provenance) {
    NT_ASSIGN_OR_RETURN(Program rewritten,
                        provenance::RewriteForProvenance(analyzed));
    NT_ASSIGN_OR_RETURN(analyzed, ndlog::Analyze(std::move(rewritten)));
  } else {
    // Maybe rules only produce provenance; without the rewrite they are
    // no-ops and are removed.
    Program& prog = analyzed.program;
    std::vector<Rule> kept;
    for (Rule& r : prog.rules) {
      if (!r.is_maybe) kept.push_back(std::move(r));
    }
    prog.rules = std::move(kept);
  }

  auto prog = std::make_shared<CompiledProgram>();
  prog->tables = analyzed.tables;
  prog->provenance = options.provenance;

  // Periodic timer streams: periodic(@X, E, Period, Count) body atoms.
  {
    const ndlog::TableInfo* pinfo = analyzed.FindTable(kPeriodicPredicate);
    if (pinfo != nullptr && pinfo->materialized) {
      return Status::PlanError(
          "periodic is a reserved event predicate and cannot be "
          "materialized");
    }
    std::set<PeriodicStream> streams;
    for (const Rule& rule : analyzed.program.rules) {
      for (const Atom* atom : rule.BodyAtoms()) {
        if (atom->predicate != kPeriodicPredicate) continue;
        if (atom->args.size() != 4) {
          return Status::PlanError(
              RuleAt(rule) +
              ": periodic requires (loc, EventId, Period, Count)");
        }
        const Expr& period = *atom->args[2].expr;
        const Expr& count = *atom->args[3].expr;
        if (!period.is_const() || !period.const_value().is_int() ||
            period.const_value().as_int() <= 0 || !count.is_const() ||
            !count.const_value().is_int() ||
            count.const_value().as_int() <= 0) {
          return Status::PlanError(
              RuleAt(rule) +
              ": periodic period and count must be positive integer "
              "constants");
        }
        streams.insert(PeriodicStream{period.const_value().as_int(),
                                      count.const_value().as_int()});
      }
      if (rule.head.predicate == kPeriodicPredicate) {
        return Status::PlanError(RuleAt(rule) +
                                 ": periodic cannot be derived");
      }
    }
    prog->periodic_streams.assign(streams.begin(), streams.end());
  }

  for (Rule& rule : analyzed.program.rules) {
    CompiledRule cr;
    cr.rule = rule;

    const ndlog::TableInfo* head_info =
        analyzed.FindTable(cr.rule.head.predicate);
    cr.head_is_event = head_info == nullptr || !head_info->materialized;

    for (size_t i = 0; i < cr.rule.head.args.size(); ++i) {
      if (cr.rule.head.args[i].agg) {
        cr.has_agg = true;
        cr.agg_fn = *cr.rule.head.args[i].agg;
        cr.agg_arg_index = i;
      }
    }
    if (cr.has_agg) {
      if (cr.head_is_event) {
        return Status::PlanError(RuleAt(cr.rule) +
                                 ": aggregate heads must be materialized");
      }
      // Key replacement drives the output update: the head table's key must
      // be exactly the group-by columns.
      std::vector<int> group;
      for (size_t i = 0; i < cr.rule.head.args.size(); ++i) {
        if (i != cr.agg_arg_index) group.push_back(static_cast<int>(i));
      }
      std::vector<int> keys = head_info->keys;
      std::sort(keys.begin(), keys.end());
      if (keys != group) {
        return Status::PlanError(
            RuleAt(cr.rule) + ": table " + cr.rule.head.predicate +
            " must be keyed on exactly the non-aggregate head columns");
      }
    }

    for (size_t i = 0; i < cr.rule.body.size(); ++i) {
      if (std::holds_alternative<Atom>(cr.rule.body[i])) {
        cr.atom_positions.push_back(i);
      }
    }
    if (cr.atom_positions.empty()) {
      return Status::PlanError(RuleAt(cr.rule) +
                               ": body must contain at least one atom");
    }
    NT_RETURN_IF_ERROR(LowerRule(&cr));
    prog->rules.push_back(std::move(cr));
  }

  // Trigger index. Rules containing an event atom fire only on that event
  // (events are instantaneous and cannot be scanned as stored relations).
  for (size_t r = 0; r < prog->rules.size(); ++r) {
    const CompiledRule& cr = prog->rules[r];
    size_t event_pos = SIZE_MAX;
    for (size_t pos : cr.atom_positions) {
      const Atom& atom = std::get<Atom>(cr.rule.body[pos]);
      const ndlog::TableInfo* info = prog->FindTable(atom.predicate);
      if (info == nullptr || !info->materialized) {
        event_pos = pos;
        break;
      }
    }
    if (event_pos != SIZE_MAX) {
      const Atom& atom = std::get<Atom>(cr.rule.body[event_pos]);
      prog->triggers[atom.predicate].emplace_back(r, event_pos);
      continue;
    }
    for (size_t pos : cr.atom_positions) {
      const Atom& atom = std::get<Atom>(cr.rule.body[pos]);
      prog->triggers[atom.predicate].emplace_back(r, pos);
    }
  }

  // Index selection: one probe plan per trigger entry, one secondary index
  // per distinct (table, bound-position-set) across the whole program.
  for (const auto& [pred, entries] : prog->triggers) {
    for (const auto& [rule_idx, delta_term] : entries) {
      PlanJoinIndexes(&prog->rules[rule_idx], delta_term, prog->tables,
                      &prog->table_indexes);
    }
  }

  prog->program = std::move(analyzed.program);
  return CompiledProgramPtr(std::move(prog));
}

}  // namespace runtime
}  // namespace nettrails
