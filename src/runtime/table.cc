#include "src/runtime/table.h"

#include <algorithm>
#include <cassert>

namespace nettrails {
namespace runtime {

namespace {

/// Hash of `fields` projected onto `positions`, computed in place.
/// Bit-identical to ValueListHash{}(Table::Project(positions, fields))
/// without materializing the projection — the projected elements are not
/// contiguous, so this replays AddValueRange's layout (count, then element
/// digests) by position.
uint64_t ProjectionHash(const std::vector<int>& positions,
                        const ValueList& fields) {
  Hasher h;
  h.AddU64(positions.size());
  for (int p : positions) {
    assert(static_cast<size_t>(p) < fields.size());
    h.AddU64(fields[static_cast<size_t>(p)].Hash());
  }
  return h.Digest();
}

}  // namespace

Table::Table(ndlog::TableInfo info) : info_(std::move(info)) {}

ValueList Table::KeyOf(const ValueList& fields) const {
  if (info_.keys.empty()) return fields;
  ValueList key;
  key.reserve(info_.keys.size());
  for (int k : info_.keys) {
    assert(static_cast<size_t>(k) < fields.size());
    key.push_back(fields[static_cast<size_t>(k)]);
  }
  return key;
}

uint64_t Table::KeyHashOf(const ValueList& fields) const {
  return info_.keys.empty() ? ValueListHash{}(fields)
                            : ProjectionHash(info_.keys, fields);
}

bool Table::SlotKeyMatchesProjection(const Slot& slot,
                                     const ValueList& fields) const {
  if (info_.keys.empty()) return ValueListEq{}(slot.row.fields, fields);
  const ValueList& key = slot.key;
  assert(key.size() == info_.keys.size());
  for (size_t i = 0; i < key.size(); ++i) {
    if (key[i] != fields[static_cast<size_t>(info_.keys[i])]) return false;
  }
  return true;
}

ValueList Table::Project(const std::vector<int>& positions,
                         const ValueList& fields) {
  ValueList key;
  key.reserve(positions.size());
  for (int p : positions) {
    assert(static_cast<size_t>(p) < fields.size());
    key.push_back(fields[static_cast<size_t>(p)]);
  }
  return key;
}

std::vector<TableAction> Table::PlanInsert(const ValueList& fields,
                                           int64_t mult) const {
  assert(mult > 0);
  std::vector<TableAction> actions;
  const Row* row = FindByKeyOf(fields);
  if (row == nullptr || row->fields == fields) {
    actions.push_back({fields, mult, /*is_delete=*/false});
    return actions;
  }
  // Key replacement: retract the displaced tuple entirely, then insert.
  actions.push_back({row->fields, row->count, /*is_delete=*/true});
  actions.push_back({fields, mult, /*is_delete=*/false});
  return actions;
}

std::vector<TableAction> Table::PlanDelete(const ValueList& fields,
                                           int64_t mult) {
  assert(mult > 0);
  std::vector<TableAction> actions;
  const Row* row = FindByKeyOf(fields);
  if (row == nullptr || row->fields != fields) {
    ++spurious_deletes_;
    return actions;
  }
  int64_t m = std::min(mult, row->count);
  if (m > 0) actions.push_back({fields, m, /*is_delete=*/true});
  return actions;
}

Table::PrimaryMap::iterator Table::FindSlot(uint64_t hash,
                                            const ValueList& fields) {
  auto [it, end] = primary_.equal_range(hash);
  for (; it != end; ++it) {
    if (SlotKeyMatchesProjection(it->second, fields)) return it;
  }
  return primary_.end();
}

Table::PrimaryMap::const_iterator Table::FindSlot(
    uint64_t hash, const ValueList& fields) const {
  auto [it, end] = primary_.equal_range(hash);
  for (; it != end; ++it) {
    if (SlotKeyMatchesProjection(it->second, fields)) return it;
  }
  return primary_.end();
}

void Table::DecrementAt(PrimaryMap::iterator it, int64_t mult) {
  Row& row = it->second.row;
  row.count -= mult;
  if (row.count <= 0) {
    UnindexRow(&row);
    primary_.erase(it);
    ordered_view_valid_ = false;
  }
}

void Table::InsertNewRow(uint64_t hash, const ValueList& fields,
                         int64_t mult) {
  Slot slot;
  if (!info_.keys.empty()) slot.key = KeyOf(fields);
  slot.row.fields = fields;
  slot.row.count = mult;
  auto it = primary_.emplace(hash, std::move(slot));
  IndexRow(&it->second.row);
  ordered_view_valid_ = false;
}

void Table::Apply(const TableAction& action) {
  uint64_t hash = KeyHashOf(action.fields);
  auto it = FindSlot(hash, action.fields);
  if (action.is_delete) {
    if (it == primary_.end() || it->second.row.fields != action.fields) {
      return;
    }
    DecrementAt(it, action.mult);
    return;
  }
  if (it != primary_.end()) {
    // PlanInsert issues the displacement delete first, so by the time an
    // insert lands here the stored fields match (or the row was erased).
    assert(it->second.row.fields == action.fields);
    it->second.row.count += action.mult;
    return;
  }
  InsertNewRow(hash, action.fields, action.mult);
}

void Table::ApplyBatch(const std::vector<DeltaRequest>& deltas,
                       std::vector<TableAction>* out) {
  for (const DeltaRequest& d : deltas) {
    assert(d.mult > 0);
    uint64_t hash = KeyHashOf(d.fields);
    auto it = FindSlot(hash, d.fields);
    if (d.is_delete) {
      if (it == primary_.end() || it->second.row.fields != d.fields) {
        ++spurious_deletes_;  // matches PlanDelete on a missing tuple
        continue;
      }
      int64_t m = std::min(d.mult, it->second.row.count);
      if (m <= 0) continue;
      out->push_back({d.fields, m, /*is_delete=*/true});
      DecrementAt(it, m);
      continue;
    }
    if (it != primary_.end()) {
      Row& row = it->second.row;
      if (row.fields == d.fields) {
        out->push_back({d.fields, d.mult, /*is_delete=*/false});
        row.count += d.mult;
        continue;
      }
      // Key replacement: retract the displaced tuple entirely, then insert.
      out->push_back({row.fields, row.count, /*is_delete=*/true});
      DecrementAt(it, row.count);
    }
    out->push_back({d.fields, d.mult, /*is_delete=*/false});
    InsertNewRow(hash, d.fields, d.mult);
  }
}

const std::vector<Table::RowHandle>& Table::OrderedView() const {
  if (!ordered_view_valid_) {
    ++ordered_view_rebuilds_;
    ordered_view_.clear();
    ordered_view_.reserve(primary_.size());
    for (const auto& [hash, slot] : primary_) {
      ordered_view_.push_back(&slot.row);
    }
    // Sort by key projection: exactly the old ordered-map order. Keys are
    // unique within a table (key replacement guarantees it), so the sort is
    // a total order and the result is independent of the hash layout.
    if (KeyIsAllFields()) {
      std::sort(ordered_view_.begin(), ordered_view_.end(),
                [](RowHandle a, RowHandle b) {
                  return ValueListLess{}(a->fields, b->fields);
                });
    } else {
      std::sort(ordered_view_.begin(), ordered_view_.end(),
                [this](RowHandle a, RowHandle b) {
                  for (int k : info_.keys) {
                    size_t i = static_cast<size_t>(k);
                    int c = a->fields[i].Compare(b->fields[i]);
                    if (c != 0) return c < 0;
                  }
                  return false;
                });
    }
    ordered_view_valid_ = true;
  }
  return ordered_view_;
}

int Table::AddIndex(std::vector<int> positions) {
  assert(std::is_sorted(positions.begin(), positions.end()));
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].positions == positions) return static_cast<int>(i);
  }
  indexes_.push_back(SecondaryIndex{std::move(positions), {}});
  SecondaryIndex& idx = indexes_.back();
  // Existing rows are indexed in deterministic (sorted) order so bucket
  // contents — and therefore probe iteration order — do not depend on the
  // primary hash layout.
  for (RowHandle row : OrderedView()) {
    idx.buckets[ProjectionHash(idx.positions, row->fields)].push_back(row);
  }
  return static_cast<int>(indexes_.size()) - 1;
}

const std::vector<Table::RowHandle>* Table::Probe(int index_id,
                                                  const ValueList& key) const {
  const SecondaryIndex& idx = indexes_[static_cast<size_t>(index_id)];
  auto it = idx.buckets.find(ValueListHash{}(key));
  return it == idx.buckets.end() ? nullptr : &it->second;
}

void Table::IndexRow(const Row* row) {
  for (SecondaryIndex& idx : indexes_) {
    idx.buckets[ProjectionHash(idx.positions, row->fields)].push_back(row);
  }
}

void Table::UnindexRow(const Row* row) {
  for (SecondaryIndex& idx : indexes_) {
    auto bit = idx.buckets.find(ProjectionHash(idx.positions, row->fields));
    assert(bit != idx.buckets.end());
    std::vector<RowHandle>& bucket = bit->second;
    // Ordered erase keeps probe results in insertion order (deterministic
    // join evaluation); planner-selected buckets are selective, so linear
    // cost is fine.
    bucket.erase(std::find(bucket.begin(), bucket.end(), row));
    if (bucket.empty()) idx.buckets.erase(bit);
  }
}

const Table::Row* Table::FindByKeyOf(const ValueList& fields) const {
  auto it = FindSlot(KeyHashOf(fields), fields);
  return it == primary_.end() ? nullptr : &it->second.row;
}

const Table::Row* Table::FindByKey(const ValueList& key) const {
  uint64_t hash = ValueListHash{}(key);
  auto [it, end] = primary_.equal_range(hash);
  for (; it != end; ++it) {
    if (ValueListEq{}(SlotKey(it->second), key)) return &it->second.row;
  }
  return nullptr;
}

int64_t Table::CountOf(const ValueList& fields) const {
  const Row* row = FindByKeyOf(fields);
  return (row != nullptr && row->fields == fields) ? row->count : 0;
}

std::vector<Tuple> Table::Contents() const {
  std::vector<Tuple> out;
  out.reserve(primary_.size());
  for (RowHandle row : OrderedView()) {
    out.emplace_back(info_.name, row->fields);
  }
  return out;
}

}  // namespace runtime
}  // namespace nettrails
