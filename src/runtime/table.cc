#include "src/runtime/table.h"

#include <algorithm>
#include <cassert>

namespace nettrails {
namespace runtime {

namespace {

/// Hash of `fields` projected onto `positions`, computed in place.
/// Bit-identical to ValueListHash{}(Table::Project(positions, fields))
/// without materializing the projection — the projected elements are not
/// contiguous, so this replays AddValueRange's layout (count, then element
/// digests) by position.
uint64_t ProjectionHash(const std::vector<int>& positions,
                        const ValueList& fields) {
  Hasher h;
  h.AddU64(positions.size());
  for (int p : positions) {
    assert(static_cast<size_t>(p) < fields.size());
    h.AddU64(fields[static_cast<size_t>(p)].Hash());
  }
  return h.Digest();
}

}  // namespace

Table::Table(ndlog::TableInfo info) : info_(std::move(info)) {}

ValueList Table::KeyOf(const ValueList& fields) const {
  if (info_.keys.empty()) return fields;
  ValueList key;
  key.reserve(info_.keys.size());
  for (int k : info_.keys) {
    assert(static_cast<size_t>(k) < fields.size());
    key.push_back(fields[static_cast<size_t>(k)]);
  }
  return key;
}

uint64_t Table::KeyHashOf(const ValueList& fields) const {
  return info_.keys.empty() ? ValueListHash{}(fields)
                            : ProjectionHash(info_.keys, fields);
}

bool Table::SlotKeyMatchesProjection(const Slot& slot,
                                     const ValueList& fields) const {
  if (info_.keys.empty()) return ValueListEq{}(slot.row.fields, fields);
  const ValueList& key = slot.key;
  assert(key.size() == info_.keys.size());
  for (size_t i = 0; i < key.size(); ++i) {
    if (key[i] != fields[static_cast<size_t>(info_.keys[i])]) return false;
  }
  return true;
}

ValueList Table::Project(const std::vector<int>& positions,
                         const ValueList& fields) {
  ValueList key;
  key.reserve(positions.size());
  for (int p : positions) {
    assert(static_cast<size_t>(p) < fields.size());
    key.push_back(fields[static_cast<size_t>(p)]);
  }
  return key;
}

std::vector<TableAction> Table::PlanInsert(const ValueList& fields,
                                           int64_t mult) const {
  assert(mult > 0);
  std::vector<TableAction> actions;
  const Row* row = FindByKeyOf(fields);
  if (row == nullptr || row->fields == fields) {
    actions.push_back({fields, mult, /*is_delete=*/false});
    return actions;
  }
  // Key replacement: retract the displaced tuple entirely, then insert.
  actions.push_back({row->fields, row->count, /*is_delete=*/true});
  actions.push_back({fields, mult, /*is_delete=*/false});
  return actions;
}

std::vector<TableAction> Table::PlanDelete(const ValueList& fields,
                                           int64_t mult) {
  assert(mult > 0);
  std::vector<TableAction> actions;
  const Row* row = FindByKeyOf(fields);
  if (row == nullptr || row->fields != fields) {
    ++spurious_deletes_;
    return actions;
  }
  int64_t m = std::min(mult, row->count);
  if (m > 0) actions.push_back({fields, m, /*is_delete=*/true});
  return actions;
}

uint32_t Table::FindSlotIdx(uint64_t hash, const ValueList& fields) const {
  const uint32_t* head = primary_.Find(hash);
  if (head == nullptr) return kNil;
  for (uint32_t i = *head - 1; i != kNil; i = slots_[i].next) {
    if (SlotKeyMatchesProjection(slots_[i], fields)) return i;
  }
  return kNil;
}

void Table::DecrementAt(uint32_t slot_idx, int64_t mult) {
  Row& row = slots_[slot_idx].row;
  row.count -= mult;
  if (row.count <= 0) EraseSlot(slot_idx);
}

void Table::EraseSlot(uint32_t slot_idx) {
  Slot& s = slots_[slot_idx];
  assert(s.live);
  UnindexRow(slot_idx);
  // Unlink from the same-hash chain (almost always a single-slot chain).
  uint32_t* head = primary_.Find(s.key_hash);
  assert(head != nullptr && *head != 0);
  if (*head - 1 == slot_idx) {
    if (s.next == kNil) {
      primary_.Erase(s.key_hash);
    } else {
      *head = s.next + 1;
    }
  } else {
    uint32_t prev = *head - 1;
    while (slots_[prev].next != slot_idx) prev = slots_[prev].next;
    slots_[prev].next = s.next;
  }
  // The recycled slot keeps its row.fields / key buffers — the next
  // InsertNewRow copy-assigns into them. The generation bump is what
  // invalidates outstanding handles.
  s.next = kNil;
  s.live = false;
  ++s.gen;
  s.row.count = 0;
  free_slots_.push_back(slot_idx);
  --live_count_;
  ordered_view_valid_ = false;
}

void Table::InsertNewRow(uint64_t hash, const ValueList& fields,
                         int64_t mult) {
  uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.row.fields = fields;  // copy-assign reuses the recycled slot's buffers
  s.row.count = mult;
  if (!info_.keys.empty()) {
    s.key.clear();
    for (int k : info_.keys) s.key.push_back(fields[static_cast<size_t>(k)]);
  }
  s.key_hash = hash;
  uint32_t& head = primary_[hash];
  s.next = head == 0 ? kNil : head - 1;
  head = idx + 1;
  s.live = true;
  ++live_count_;
  IndexRow(idx);
  ordered_view_valid_ = false;
}

void Table::Apply(const TableAction& action) {
  uint64_t hash = KeyHashOf(action.fields);
  uint32_t i = FindSlotIdx(hash, action.fields);
  if (action.is_delete) {
    if (i == kNil || slots_[i].row.fields != action.fields) return;
    DecrementAt(i, action.mult);
    return;
  }
  if (i != kNil) {
    // PlanInsert issues the displacement delete first, so by the time an
    // insert lands here the stored fields match (or the row was erased).
    assert(slots_[i].row.fields == action.fields);
    slots_[i].row.count += action.mult;
    return;
  }
  InsertNewRow(hash, action.fields, action.mult);
}

namespace {

/// ApplyBatchImpl sinks: both copy-assign the action fields so an
/// ActionBuffer slot's retained capacity is reused (a brace-constructed
/// push_back would build a fresh ValueList either way).
struct VectorActionSink {
  std::vector<TableAction>* v;
  TableAction& Append() {
    v->emplace_back();
    return v->back();
  }
};
struct BufferActionSink {
  ActionBuffer* b;
  TableAction& Append() { return b->Append(); }
};

}  // namespace

template <typename Sink>
void Table::ApplyBatchImpl(const std::vector<DeltaRequest>& deltas,
                           Sink* out) {
  auto emit = [out](const ValueList& fields, int64_t mult, bool is_delete) {
    TableAction& a = out->Append();
    a.fields = fields;  // copy-assign: reuses a recycled slot's capacity
    a.mult = mult;
    a.is_delete = is_delete;
  };
  for (const DeltaRequest& d : deltas) {
    assert(d.mult > 0);
    uint64_t hash = KeyHashOf(d.fields);
    uint32_t i = FindSlotIdx(hash, d.fields);
    if (d.is_delete) {
      if (i == kNil || slots_[i].row.fields != d.fields) {
        ++spurious_deletes_;  // matches PlanDelete on a missing tuple
        continue;
      }
      int64_t m = std::min(d.mult, slots_[i].row.count);
      if (m <= 0) continue;
      emit(d.fields, m, /*is_delete=*/true);
      DecrementAt(i, m);
      continue;
    }
    if (i != kNil) {
      Row& row = slots_[i].row;
      if (row.fields == d.fields) {
        emit(d.fields, d.mult, /*is_delete=*/false);
        row.count += d.mult;
        continue;
      }
      // Key replacement: retract the displaced tuple entirely, then insert.
      // The action copies the fields before the erase recycles the slot.
      emit(row.fields, row.count, /*is_delete=*/true);
      DecrementAt(i, row.count);
    }
    emit(d.fields, d.mult, /*is_delete=*/false);
    InsertNewRow(hash, d.fields, d.mult);
  }
}

void Table::ApplyBatch(const std::vector<DeltaRequest>& deltas,
                       std::vector<TableAction>* out) {
  VectorActionSink sink{out};
  ApplyBatchImpl(deltas, &sink);
}

void Table::ApplyBatch(const std::vector<DeltaRequest>& deltas,
                       ActionBuffer* out) {
  BufferActionSink sink{out};
  ApplyBatchImpl(deltas, &sink);
}

const std::vector<Table::RowHandle>& Table::OrderedView() const {
  if (!ordered_view_valid_) {
    ++ordered_view_rebuilds_;
    ordered_view_.clear();
    ordered_view_.reserve(live_count_);
    for (uint32_t i = 0; i < static_cast<uint32_t>(slots_.size()); ++i) {
      if (slots_[i].live) ordered_view_.push_back({i, slots_[i].gen});
    }
    // Sort by key projection: exactly the old ordered-map order. Keys are
    // unique within a table (key replacement guarantees it), so the sort is
    // a total order and the result is independent of the slab layout.
    if (KeyIsAllFields()) {
      std::sort(ordered_view_.begin(), ordered_view_.end(),
                [this](RowHandle a, RowHandle b) {
                  return ValueListLess{}(slots_[a.idx].row.fields,
                                         slots_[b.idx].row.fields);
                });
    } else {
      std::sort(ordered_view_.begin(), ordered_view_.end(),
                [this](RowHandle a, RowHandle b) {
                  const ValueList& fa = slots_[a.idx].row.fields;
                  const ValueList& fb = slots_[b.idx].row.fields;
                  for (int k : info_.keys) {
                    size_t i = static_cast<size_t>(k);
                    int c = fa[i].Compare(fb[i]);
                    if (c != 0) return c < 0;
                  }
                  return false;
                });
    }
    ordered_view_valid_ = true;
  }
  return ordered_view_;
}

int Table::AddIndex(std::vector<int> positions) {
  assert(std::is_sorted(positions.begin(), positions.end()));
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].positions == positions) return static_cast<int>(i);
  }
  indexes_.emplace_back();
  SecondaryIndex& idx = indexes_.back();
  idx.positions = std::move(positions);
  // Existing rows are indexed in deterministic (sorted) order so bucket
  // contents — and therefore probe iteration order — do not depend on the
  // hash layout.
  for (RowHandle h : OrderedView()) IndexRowInto(&idx, h.idx);
  return static_cast<int>(indexes_.size()) - 1;
}

const std::vector<Table::RowHandle>* Table::Probe(int index_id,
                                                  const ValueList& key) const {
  const SecondaryIndex& idx = indexes_[static_cast<size_t>(index_id)];
  const uint32_t* head = idx.heads.Find(ValueListHash{}(key));
  return head == nullptr ? nullptr : &idx.buckets[*head - 1];
}

void Table::IndexRowInto(SecondaryIndex* idx, uint32_t slot_idx) {
  const Slot& s = slots_[slot_idx];
  uint32_t& head = idx->heads[ProjectionHash(idx->positions, s.row.fields)];
  if (head == 0) {
    if (!idx->free_buckets.empty()) {
      head = idx->free_buckets.back() + 1;
      idx->free_buckets.pop_back();
    } else {
      head = static_cast<uint32_t>(idx->buckets.size()) + 1;
      idx->buckets.emplace_back();
    }
  }
  idx->buckets[head - 1].push_back({slot_idx, s.gen});
}

void Table::IndexRow(uint32_t slot_idx) {
  for (SecondaryIndex& idx : indexes_) IndexRowInto(&idx, slot_idx);
}

void Table::UnindexRow(uint32_t slot_idx) {
  const Slot& s = slots_[slot_idx];
  const RowHandle h{slot_idx, s.gen};
  for (SecondaryIndex& idx : indexes_) {
    uint64_t ph = ProjectionHash(idx.positions, s.row.fields);
    uint32_t* head = idx.heads.Find(ph);
    assert(head != nullptr && *head != 0);
    std::vector<RowHandle>& bucket = idx.buckets[*head - 1];
    // Ordered erase keeps probe results in insertion order (deterministic
    // join evaluation); planner-selected buckets are selective, so linear
    // cost is fine.
    bucket.erase(std::find(bucket.begin(), bucket.end(), h));
    if (bucket.empty()) {
      // The freed bucket keeps its vector capacity for its next tenant.
      idx.free_buckets.push_back(*head - 1);
      idx.heads.Erase(ph);
    }
  }
}

const Table::Row* Table::FindByKeyOf(const ValueList& fields) const {
  uint32_t i = FindSlotIdx(KeyHashOf(fields), fields);
  return i == kNil ? nullptr : &slots_[i].row;
}

const Table::Row* Table::FindByKey(const ValueList& key) const {
  const uint32_t* head = primary_.Find(ValueListHash{}(key));
  if (head == nullptr) return nullptr;
  for (uint32_t i = *head - 1; i != kNil; i = slots_[i].next) {
    if (ValueListEq{}(SlotKey(slots_[i]), key)) return &slots_[i].row;
  }
  return nullptr;
}

int64_t Table::CountOf(const ValueList& fields) const {
  const Row* row = FindByKeyOf(fields);
  return (row != nullptr && row->fields == fields) ? row->count : 0;
}

std::vector<Tuple> Table::Contents() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (RowHandle h : OrderedView()) {
    out.emplace_back(info_.name, slots_[h.idx].row.fields);
  }
  return out;
}

}  // namespace runtime
}  // namespace nettrails
