#include "src/runtime/table.h"

#include <cassert>

namespace nettrails {
namespace runtime {

Table::Table(ndlog::TableInfo info) : info_(std::move(info)) {}

ValueList Table::KeyOf(const ValueList& fields) const {
  if (info_.keys.empty()) return fields;
  ValueList key;
  key.reserve(info_.keys.size());
  for (int k : info_.keys) {
    assert(static_cast<size_t>(k) < fields.size());
    key.push_back(fields[static_cast<size_t>(k)]);
  }
  return key;
}

std::vector<TableAction> Table::PlanInsert(const ValueList& fields,
                                           int64_t mult) const {
  assert(mult > 0);
  std::vector<TableAction> actions;
  auto it = rows_.find(KeyOf(fields));
  if (it == rows_.end() || it->second.fields == fields) {
    actions.push_back({fields, mult, /*is_delete=*/false});
    return actions;
  }
  // Key replacement: retract the displaced tuple entirely, then insert.
  actions.push_back({it->second.fields, it->second.count, /*is_delete=*/true});
  actions.push_back({fields, mult, /*is_delete=*/false});
  return actions;
}

std::vector<TableAction> Table::PlanDelete(const ValueList& fields,
                                           int64_t mult) const {
  assert(mult > 0);
  std::vector<TableAction> actions;
  auto it = rows_.find(KeyOf(fields));
  if (it == rows_.end() || it->second.fields != fields) {
    ++spurious_deletes_;
    return actions;
  }
  int64_t m = std::min(mult, it->second.count);
  if (m > 0) actions.push_back({fields, m, /*is_delete=*/true});
  return actions;
}

void Table::Apply(const TableAction& action) {
  ValueList key = KeyOf(action.fields);
  if (action.is_delete) {
    auto it = rows_.find(key);
    if (it == rows_.end() || it->second.fields != action.fields) return;
    it->second.count -= action.mult;
    if (it->second.count <= 0) rows_.erase(it);
    return;
  }
  auto [it, inserted] = rows_.try_emplace(std::move(key));
  if (inserted) {
    it->second.fields = action.fields;
    it->second.count = action.mult;
  } else {
    // PlanInsert issues the displacement delete first, so by the time an
    // insert lands here the stored fields match (or the row was erased).
    assert(it->second.fields == action.fields);
    it->second.count += action.mult;
  }
}

const Table::Row* Table::FindByKeyOf(const ValueList& fields) const {
  auto it = rows_.find(KeyOf(fields));
  return it == rows_.end() ? nullptr : &it->second;
}

const Table::Row* Table::FindByKey(const ValueList& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

int64_t Table::CountOf(const ValueList& fields) const {
  const Row* row = FindByKeyOf(fields);
  return (row != nullptr && row->fields == fields) ? row->count : 0;
}

std::vector<Tuple> Table::Contents() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) {
    out.emplace_back(info_.name, row.fields);
  }
  return out;
}

}  // namespace runtime
}  // namespace nettrails
