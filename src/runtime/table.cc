#include "src/runtime/table.h"

#include <algorithm>
#include <cassert>

namespace nettrails {
namespace runtime {

Table::Table(ndlog::TableInfo info) : info_(std::move(info)) {}

ValueList Table::KeyOf(const ValueList& fields) const {
  if (info_.keys.empty()) return fields;
  ValueList key;
  key.reserve(info_.keys.size());
  for (int k : info_.keys) {
    assert(static_cast<size_t>(k) < fields.size());
    key.push_back(fields[static_cast<size_t>(k)]);
  }
  return key;
}

ValueList Table::Project(const std::vector<int>& positions,
                         const ValueList& fields) {
  ValueList key;
  key.reserve(positions.size());
  for (int p : positions) {
    assert(static_cast<size_t>(p) < fields.size());
    key.push_back(fields[static_cast<size_t>(p)]);
  }
  return key;
}

std::vector<TableAction> Table::PlanInsert(const ValueList& fields,
                                           int64_t mult) const {
  assert(mult > 0);
  std::vector<TableAction> actions;
  const Row* row = FindByKeyOf(fields);
  if (row == nullptr || row->fields == fields) {
    actions.push_back({fields, mult, /*is_delete=*/false});
    return actions;
  }
  // Key replacement: retract the displaced tuple entirely, then insert.
  actions.push_back({row->fields, row->count, /*is_delete=*/true});
  actions.push_back({fields, mult, /*is_delete=*/false});
  return actions;
}

std::vector<TableAction> Table::PlanDelete(const ValueList& fields,
                                           int64_t mult) {
  assert(mult > 0);
  std::vector<TableAction> actions;
  const Row* row = FindByKeyOf(fields);
  if (row == nullptr || row->fields != fields) {
    ++spurious_deletes_;
    return actions;
  }
  int64_t m = std::min(mult, row->count);
  if (m > 0) actions.push_back({fields, m, /*is_delete=*/true});
  return actions;
}

Table::KeyIndex::iterator Table::FindKeyEntry(uint64_t hash,
                                              const ValueList& key) {
  auto [it, end] = key_index_.equal_range(hash);
  for (; it != end; ++it) {
    if (ValueListEq{}(it->second->first, key)) return it;
  }
  return key_index_.end();
}

Table::KeyIndex::const_iterator Table::FindKeyEntry(
    uint64_t hash, const ValueList& key) const {
  auto [it, end] = key_index_.equal_range(hash);
  for (; it != end; ++it) {
    if (ValueListEq{}(it->second->first, key)) return it;
  }
  return key_index_.end();
}

void Table::DecrementAt(KeyIndex::iterator kit, int64_t mult) {
  RowMap::iterator it = kit->second;
  it->second.count -= mult;
  if (it->second.count <= 0) {
    UnindexRow(&it->second);
    key_index_.erase(kit);
    rows_.erase(it);
  }
}

void Table::InsertNewRow(uint64_t hash, ValueList key, const ValueList& fields,
                         int64_t mult) {
  auto [it, inserted] = rows_.try_emplace(std::move(key));
  assert(inserted);
  (void)inserted;
  it->second.fields = fields;
  it->second.count = mult;
  key_index_.emplace(hash, it);
  IndexRow(&it->second);
}

void Table::Apply(const TableAction& action) {
  ValueList key = KeyOf(action.fields);
  uint64_t hash = ValueListHash{}(key);
  auto kit = FindKeyEntry(hash, key);
  if (action.is_delete) {
    if (kit == key_index_.end() ||
        kit->second->second.fields != action.fields) {
      return;
    }
    DecrementAt(kit, action.mult);
    return;
  }
  if (kit != key_index_.end()) {
    // PlanInsert issues the displacement delete first, so by the time an
    // insert lands here the stored fields match (or the row was erased).
    assert(kit->second->second.fields == action.fields);
    kit->second->second.count += action.mult;
    return;
  }
  InsertNewRow(hash, std::move(key), action.fields, action.mult);
}

void Table::ApplyBatch(const std::vector<DeltaRequest>& deltas,
                       std::vector<TableAction>* out) {
  for (const DeltaRequest& d : deltas) {
    assert(d.mult > 0);
    ValueList key = KeyOf(d.fields);
    uint64_t hash = ValueListHash{}(key);
    auto kit = FindKeyEntry(hash, key);
    if (d.is_delete) {
      if (kit == key_index_.end() || kit->second->second.fields != d.fields) {
        ++spurious_deletes_;  // matches PlanDelete on a missing tuple
        continue;
      }
      int64_t m = std::min(d.mult, kit->second->second.count);
      if (m <= 0) continue;
      out->push_back({d.fields, m, /*is_delete=*/true});
      DecrementAt(kit, m);
      continue;
    }
    if (kit != key_index_.end()) {
      Row& row = kit->second->second;
      if (row.fields == d.fields) {
        out->push_back({d.fields, d.mult, /*is_delete=*/false});
        row.count += d.mult;
        continue;
      }
      // Key replacement: retract the displaced tuple entirely, then insert.
      out->push_back({row.fields, row.count, /*is_delete=*/true});
      DecrementAt(kit, row.count);
    }
    out->push_back({d.fields, d.mult, /*is_delete=*/false});
    InsertNewRow(hash, std::move(key), d.fields, d.mult);
  }
}

int Table::AddIndex(std::vector<int> positions) {
  assert(std::is_sorted(positions.begin(), positions.end()));
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].positions == positions) return static_cast<int>(i);
  }
  indexes_.push_back(SecondaryIndex{std::move(positions), {}});
  SecondaryIndex& idx = indexes_.back();
  for (const auto& [key, row] : rows_) {
    idx.buckets[ValueListHash{}(Project(idx.positions, row.fields))]
        .push_back(&row);
  }
  return static_cast<int>(indexes_.size()) - 1;
}

const std::vector<Table::RowHandle>* Table::Probe(int index_id,
                                                  const ValueList& key) const {
  const SecondaryIndex& idx = indexes_[static_cast<size_t>(index_id)];
  auto it = idx.buckets.find(ValueListHash{}(key));
  return it == idx.buckets.end() ? nullptr : &it->second;
}

void Table::IndexRow(const Row* row) {
  for (SecondaryIndex& idx : indexes_) {
    idx.buckets[ValueListHash{}(Project(idx.positions, row->fields))]
        .push_back(row);
  }
}

void Table::UnindexRow(const Row* row) {
  for (SecondaryIndex& idx : indexes_) {
    auto bit =
        idx.buckets.find(ValueListHash{}(Project(idx.positions, row->fields)));
    assert(bit != idx.buckets.end());
    std::vector<RowHandle>& bucket = bit->second;
    // Ordered erase keeps probe results in insertion order (deterministic
    // join evaluation); planner-selected buckets are selective, so linear
    // cost is fine.
    bucket.erase(std::find(bucket.begin(), bucket.end(), row));
    if (bucket.empty()) idx.buckets.erase(bit);
  }
}

const Table::Row* Table::FindByKeyOf(const ValueList& fields) const {
  return FindByKey(KeyOf(fields));
}

const Table::Row* Table::FindByKey(const ValueList& key) const {
  auto it = FindKeyEntry(ValueListHash{}(key), key);
  return it == key_index_.end() ? nullptr : &it->second->second;
}

int64_t Table::CountOf(const ValueList& fields) const {
  const Row* row = FindByKeyOf(fields);
  return (row != nullptr && row->fields == fields) ? row->count : 0;
}

std::vector<Tuple> Table::Contents() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) {
    out.emplace_back(info_.name, row.fields);
  }
  return out;
}

}  // namespace runtime
}  // namespace nettrails
