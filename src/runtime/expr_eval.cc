#include "src/runtime/expr_eval.h"

#include <cstdint>

namespace nettrails {
namespace runtime {

namespace {

using ndlog::BinOp;
using ndlog::Expr;
using ndlog::UnOp;

std::string SpanSuffix(ndlog::Span span) {
  return span.valid() ? " at " + span.ToString() : std::string();
}

Status ArityPlanError(const std::string& fn, const BuiltinInfo& info,
                      size_t got, ndlog::Span span) {
  std::string want;
  if (info.max_args < 0) {
    want = "at least " + std::to_string(info.min_args);
  } else if (info.min_args == info.max_args) {
    want = std::to_string(info.min_args);
  } else {
    want = std::to_string(info.min_args) + ".." +
           std::to_string(info.max_args);
  }
  return Status::PlanError(fn + " expects " + want + " argument(s), got " +
                           std::to_string(got) + SpanSuffix(span));
}

/// Lowers `expr` into `out`'s node pool, returning the new node's id.
Result<uint32_t> Lower(const Expr& expr, SlotMap* slots, CompiledExpr* out) {
  struct Visitor {
    SlotMap* slots;
    CompiledExpr* out;
    ndlog::Span span;  // source position of the expression being visited

    Result<uint32_t> Emit(CompiledExpr::Node node) {
      out->nodes.push_back(std::move(node));
      return static_cast<uint32_t>(out->nodes.size()) - 1;
    }

    Result<uint32_t> operator()(const Expr::Const& c) {
      CompiledExpr::Node node;
      node.op = CompiledExpr::Op::kConst;
      node.constant = c.value;
      return Emit(std::move(node));
    }

    Result<uint32_t> operator()(const Expr::Var& v) {
      CompiledExpr::Node node;
      node.op = CompiledExpr::Op::kSlot;
      node.slot = slots->Intern(v.name);
      node.name = v.name;
      return Emit(std::move(node));
    }

    Result<uint32_t> operator()(const Expr::Call& call) {
      const BuiltinInfo* info = FindBuiltinInfo(call.fn);
      if (info == nullptr) {
        return Status::PlanError("unknown builtin function " + call.fn +
                                 SpanSuffix(span));
      }
      if (static_cast<int>(call.args.size()) < info->min_args ||
          (info->max_args >= 0 &&
           static_cast<int>(call.args.size()) > info->max_args)) {
        return ArityPlanError(call.fn, *info, call.args.size(), span);
      }
      CompiledExpr::Node node;
      node.op = CompiledExpr::Op::kCall;
      node.fn = &info->fn;
      node.name = call.fn;
      node.children.reserve(call.args.size());
      for (const ndlog::ExprPtr& a : call.args) {
        NT_ASSIGN_OR_RETURN(uint32_t child, Lower(*a, slots, out));
        node.children.push_back(child);
      }
      return Emit(std::move(node));
    }

    Result<uint32_t> operator()(const Expr::Binary& bin) {
      CompiledExpr::Node node;
      node.op = CompiledExpr::Op::kBinary;
      node.bin_op = bin.op;
      NT_ASSIGN_OR_RETURN(uint32_t lhs, Lower(*bin.lhs, slots, out));
      NT_ASSIGN_OR_RETURN(uint32_t rhs, Lower(*bin.rhs, slots, out));
      node.children = {lhs, rhs};
      return Emit(std::move(node));
    }

    Result<uint32_t> operator()(const Expr::Unary& un) {
      CompiledExpr::Node node;
      node.op = CompiledExpr::Op::kUnary;
      node.un_op = un.op;
      NT_ASSIGN_OR_RETURN(uint32_t operand, Lower(*un.operand, slots, out));
      node.children = {operand};
      return Emit(std::move(node));
    }

    Result<uint32_t> operator()(const Expr::ListLit& lst) {
      CompiledExpr::Node node;
      node.op = CompiledExpr::Op::kList;
      node.children.reserve(lst.elements.size());
      for (const ndlog::ExprPtr& e : lst.elements) {
        NT_ASSIGN_OR_RETURN(uint32_t child, Lower(*e, slots, out));
        node.children.push_back(child);
      }
      return Emit(std::move(node));
    }
  };
  return std::visit(Visitor{slots, out, expr.span()}, expr.rep());
}

/// Integer arithmetic is overflow-checked: on int64 wrap the result is a
/// RuntimeError (not UB), so a crafted NDlog program can never trip UBSan
/// or produce silently wrapped values. INT64_MIN % -1 is 0 (the
/// mathematically defined remainder; the hardware instruction faults).
Result<Value> EvalArith(BinOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::TypeError("arithmetic on non-numeric values (" +
                             a.ToString() + ", " + b.ToString() + ")");
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.as_int(), y = b.as_int(), r = 0;
    switch (op) {
      case BinOp::kAdd:
        if (__builtin_add_overflow(x, y, &r)) {
          return Status::RuntimeError("integer overflow in addition");
        }
        return Value::Int(r);
      case BinOp::kSub:
        if (__builtin_sub_overflow(x, y, &r)) {
          return Status::RuntimeError("integer overflow in subtraction");
        }
        return Value::Int(r);
      case BinOp::kMul:
        if (__builtin_mul_overflow(x, y, &r)) {
          return Status::RuntimeError("integer overflow in multiplication");
        }
        return Value::Int(r);
      case BinOp::kDiv:
        if (y == 0) return Status::RuntimeError("integer division by zero");
        if (y == -1 && x == INT64_MIN) {
          return Status::RuntimeError("integer overflow in division");
        }
        return Value::Int(x / y);
      case BinOp::kMod:
        if (y == 0) return Status::RuntimeError("modulo by zero");
        // x % -1 == 0 for every x; computed directly so INT64_MIN never
        // reaches the (faulting) hardware remainder.
        if (y == -1) return Value::Int(0);
        return Value::Int(x % y);
      default:
        return Status::RuntimeError("not an arithmetic op");
    }
  }
  double x = a.NumericAsDouble(), y = b.NumericAsDouble();
  switch (op) {
    case BinOp::kAdd:
      return Value::Double(x + y);
    case BinOp::kSub:
      return Value::Double(x - y);
    case BinOp::kMul:
      return Value::Double(x * y);
    case BinOp::kDiv:
      if (y == 0) return Status::RuntimeError("division by zero");
      return Value::Double(x / y);
    case BinOp::kMod:
      return Status::TypeError("modulo on doubles");
    default:
      return Status::RuntimeError("not an arithmetic op");
  }
}

Result<Value> EvalNode(const CompiledExpr& expr, uint32_t id,
                       const Frame& frame) {
  const CompiledExpr::Node& node = expr.nodes[id];
  switch (node.op) {
    case CompiledExpr::Op::kConst:
      return node.constant;
    case CompiledExpr::Op::kSlot:
      if (!frame.IsBound(node.slot)) {
        return Status::RuntimeError("unbound variable " + node.name);
      }
      return frame.Get(node.slot);
    case CompiledExpr::Op::kCall: {
      // Argument vectors are pooled across evaluations: builtin calls run
      // on every selection/head evaluation, and a fresh vector here was the
      // single largest allocation source in converged churn. Calls nest
      // (arguments may themselves be calls), so the pool holds one buffer
      // per nesting level seen. One pool per thread: parallel simulator
      // workers each evaluate their own nodes' rules, and a shared pool
      // would both race and ping-pong cache lines.
      static thread_local std::vector<std::vector<Value>>* pool =
          new std::vector<std::vector<Value>>();
      std::vector<Value> args;
      if (!pool->empty()) {
        args = std::move(pool->back());
        pool->pop_back();
        args.clear();
      }
      args.reserve(node.children.size());
      for (uint32_t child : node.children) {
        NT_ASSIGN_OR_RETURN(Value v, EvalNode(expr, child, frame));
        args.push_back(std::move(v));
      }
      Result<Value> r = (*node.fn)(args);
      pool->push_back(std::move(args));
      return r;
    }
    case CompiledExpr::Op::kBinary: {
      // Short-circuit logical operators.
      if (node.bin_op == BinOp::kAnd || node.bin_op == BinOp::kOr) {
        NT_ASSIGN_OR_RETURN(Value lhs,
                            EvalNode(expr, node.children[0], frame));
        bool l = lhs.Truthy();
        if (node.bin_op == BinOp::kAnd && !l) return Value::Bool(false);
        if (node.bin_op == BinOp::kOr && l) return Value::Bool(true);
        NT_ASSIGN_OR_RETURN(Value rhs,
                            EvalNode(expr, node.children[1], frame));
        return Value::Bool(rhs.Truthy());
      }
      NT_ASSIGN_OR_RETURN(Value lhs, EvalNode(expr, node.children[0], frame));
      NT_ASSIGN_OR_RETURN(Value rhs, EvalNode(expr, node.children[1], frame));
      switch (node.bin_op) {
        case BinOp::kEq:
          return Value::Bool(lhs == rhs);
        case BinOp::kNe:
          return Value::Bool(lhs != rhs);
        case BinOp::kLt:
          return Value::Bool(lhs < rhs);
        case BinOp::kLe:
          return Value::Bool(lhs <= rhs);
        case BinOp::kGt:
          return Value::Bool(lhs > rhs);
        case BinOp::kGe:
          return Value::Bool(lhs >= rhs);
        default:
          return EvalArith(node.bin_op, lhs, rhs);
      }
    }
    case CompiledExpr::Op::kUnary: {
      NT_ASSIGN_OR_RETURN(Value v, EvalNode(expr, node.children[0], frame));
      if (node.un_op == UnOp::kNot) return Value::Bool(!v.Truthy());
      if (v.is_int()) {
        // -INT64_MIN is not representable (UB if computed).
        if (v.as_int() == INT64_MIN) {
          return Status::RuntimeError("integer overflow in negation");
        }
        return Value::Int(-v.as_int());
      }
      if (v.is_double()) return Value::Double(-v.as_double());
      return Status::TypeError("negation of non-numeric value");
    }
    case CompiledExpr::Op::kList: {
      ValueList out;
      out.reserve(node.children.size());
      for (uint32_t child : node.children) {
        NT_ASSIGN_OR_RETURN(Value v, EvalNode(expr, child, frame));
        out.push_back(std::move(v));
      }
      return Value::List(std::move(out));
    }
  }
  return Status::RuntimeError("corrupt compiled expression");
}

}  // namespace

Result<CompiledExpr> CompileExpr(const ndlog::Expr& expr, SlotMap* slots) {
  CompiledExpr out;
  NT_ASSIGN_OR_RETURN(out.root, Lower(expr, slots, &out));
  return out;
}

Result<Value> Eval(const CompiledExpr& expr, const Frame& frame) {
  return EvalNode(expr, expr.root, frame);
}

}  // namespace runtime
}  // namespace nettrails
