#include "src/runtime/expr_eval.h"

#include "src/runtime/builtins.h"

namespace nettrails {
namespace runtime {

namespace {

using ndlog::BinOp;
using ndlog::Expr;
using ndlog::UnOp;

Result<Value> EvalArith(BinOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::TypeError("arithmetic on non-numeric values (" +
                             a.ToString() + ", " + b.ToString() + ")");
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.as_int(), y = b.as_int();
    switch (op) {
      case BinOp::kAdd:
        return Value::Int(x + y);
      case BinOp::kSub:
        return Value::Int(x - y);
      case BinOp::kMul:
        return Value::Int(x * y);
      case BinOp::kDiv:
        if (y == 0) return Status::RuntimeError("integer division by zero");
        return Value::Int(x / y);
      case BinOp::kMod:
        if (y == 0) return Status::RuntimeError("modulo by zero");
        return Value::Int(x % y);
      default:
        return Status::RuntimeError("not an arithmetic op");
    }
  }
  double x = a.NumericAsDouble(), y = b.NumericAsDouble();
  switch (op) {
    case BinOp::kAdd:
      return Value::Double(x + y);
    case BinOp::kSub:
      return Value::Double(x - y);
    case BinOp::kMul:
      return Value::Double(x * y);
    case BinOp::kDiv:
      if (y == 0) return Status::RuntimeError("division by zero");
      return Value::Double(x / y);
    case BinOp::kMod:
      return Status::TypeError("modulo on doubles");
    default:
      return Status::RuntimeError("not an arithmetic op");
  }
}

}  // namespace

Result<Value> Eval(const Expr& expr, const Bindings& bindings) {
  struct Visitor {
    const Bindings& bindings;

    Result<Value> operator()(const Expr::Const& c) { return c.value; }

    Result<Value> operator()(const Expr::Var& v) {
      auto it = bindings.find(v.name);
      if (it == bindings.end()) {
        return Status::RuntimeError("unbound variable " + v.name);
      }
      return it->second;
    }

    Result<Value> operator()(const Expr::Call& call) {
      const BuiltinFn* fn = FindBuiltin(call.fn);
      if (fn == nullptr) {
        return Status::RuntimeError("unknown builtin " + call.fn);
      }
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const ndlog::ExprPtr& a : call.args) {
        NT_ASSIGN_OR_RETURN(Value v, Eval(*a, bindings));
        args.push_back(std::move(v));
      }
      return (*fn)(args);
    }

    Result<Value> operator()(const Expr::Binary& bin) {
      // Short-circuit logical operators.
      if (bin.op == BinOp::kAnd || bin.op == BinOp::kOr) {
        NT_ASSIGN_OR_RETURN(Value lhs, Eval(*bin.lhs, bindings));
        bool l = lhs.Truthy();
        if (bin.op == BinOp::kAnd && !l) return Value::Bool(false);
        if (bin.op == BinOp::kOr && l) return Value::Bool(true);
        NT_ASSIGN_OR_RETURN(Value rhs, Eval(*bin.rhs, bindings));
        return Value::Bool(rhs.Truthy());
      }
      NT_ASSIGN_OR_RETURN(Value lhs, Eval(*bin.lhs, bindings));
      NT_ASSIGN_OR_RETURN(Value rhs, Eval(*bin.rhs, bindings));
      switch (bin.op) {
        case BinOp::kEq:
          return Value::Bool(lhs == rhs);
        case BinOp::kNe:
          return Value::Bool(lhs != rhs);
        case BinOp::kLt:
          return Value::Bool(lhs < rhs);
        case BinOp::kLe:
          return Value::Bool(lhs <= rhs);
        case BinOp::kGt:
          return Value::Bool(lhs > rhs);
        case BinOp::kGe:
          return Value::Bool(lhs >= rhs);
        default:
          return EvalArith(bin.op, lhs, rhs);
      }
    }

    Result<Value> operator()(const Expr::Unary& un) {
      NT_ASSIGN_OR_RETURN(Value v, Eval(*un.operand, bindings));
      if (un.op == UnOp::kNot) return Value::Bool(!v.Truthy());
      if (v.is_int()) return Value::Int(-v.as_int());
      if (v.is_double()) return Value::Double(-v.as_double());
      return Status::TypeError("negation of non-numeric value");
    }

    Result<Value> operator()(const Expr::ListLit& lst) {
      ValueList out;
      out.reserve(lst.elements.size());
      for (const ndlog::ExprPtr& e : lst.elements) {
        NT_ASSIGN_OR_RETURN(Value v, Eval(*e, bindings));
        out.push_back(std::move(v));
      }
      return Value::List(std::move(out));
    }
  };
  return std::visit(Visitor{bindings}, expr.rep());
}

}  // namespace runtime
}  // namespace nettrails
