// Per-node declarative networking engine (the RapidNet runtime equivalent):
// executes a compiled NDlog program with semi-naive incremental evaluation
// over insert/delete deltas, ships non-local derivations through the
// network simulator, maintains aggregates incrementally, and — when the
// program was compiled with provenance — keeps the node's slice of the
// distributed provenance tables plus a VID -> tuple index for the query
// engine and the visualizer.
#ifndef NETTRAILS_RUNTIME_ENGINE_H_
#define NETTRAILS_RUNTIME_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/flat_hash.h"
#include "src/common/hash.h"

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/net/simulator.h"
#include "src/provenance/interner.h"
#include "src/runtime/aggregates.h"
#include "src/runtime/expr_eval.h"
#include "src/runtime/plan.h"
#include "src/runtime/table.h"

namespace nettrails {
namespace runtime {

struct EngineOptions {
  /// Safety valve: abort (and flag overflowed()) if a single external
  /// trigger cascades into more than this many actions.
  uint64_t max_actions_per_trigger = 2'000'000;
  /// Maintain the VID -> tuple index (needed by the provenance query
  /// engine; forced on when the program has provenance).
  bool track_vid_index = true;
  /// Probe planner-selected secondary hash indexes in the join loop instead
  /// of scanning tables. Off is only useful for measuring the speedup
  /// (bench_join) — results are identical either way.
  bool use_secondary_indexes = true;
  /// Maximum tuples drained from the local queue into one DeltaBatch (a run
  /// of consecutive same-table deltas processed together: one trigger
  /// dispatch, one Table::ApplyBatch, one aggregate recomputation per
  /// touched group, and per-destination batch message frames). 1 selects
  /// the serial pre-batching pipeline exactly — per-tuple dispatch,
  /// immediate aggregate recomputation, per-tuple shipping — and anchors
  /// the batched-vs-serial equivalence suite
  /// (tests/runtime/batch_equivalence_test.cc). Both modes converge to
  /// identical table fixpoints, aggregate values, and provenance graphs.
  uint32_t batch_size = 64;
};

struct EngineStats {
  /// Tuples entering the local delta queue. Always counted per tuple —
  /// batch frames arriving from the network are unpacked before counting —
  /// so the value is batch_size-independent.
  uint64_t deltas_enqueued = 0;
  uint64_t batches_processed = 0;  // DeltaBatches drained (batched mode)
  uint64_t batched_tuples = 0;     // tuples those batches carried
  /// Trigger-index dispatches: one per visible action in serial mode, one
  /// per DeltaBatch in batched mode (the dispatch-amortization metric
  /// bench_churn reports per converged link flap).
  uint64_t trigger_dispatches = 0;
  uint64_t actions_processed = 0;
  uint64_t rule_firings = 0;
  uint64_t agg_recomputes = 0;    // aggregate-group output recomputations
  uint64_t join_probes = 0;       // candidate rows examined by the join loop
  uint64_t index_probes = 0;      // joins answered by a secondary index
  uint64_t broadcast_probes = 0;  // planned whole-table joins (only the
                                  // location was bound: every row matches)
  uint64_t index_scan_fallbacks = 0;  // unplanned scans (no probe plan)
  uint64_t messages_sent = 0;     // network sends (a batch frame counts once)
  uint64_t tuples_shipped = 0;    // tuple deltas shipped to remote nodes
  uint64_t batch_messages_sent = 0;  // frames carrying more than one tuple
  uint64_t send_failures = 0;     // per shipped tuple, batched or not
  uint64_t eval_errors = 0;
  uint64_t expirations = 0;      // soft-state lifetime retractions
  uint64_t evictions = 0;        // max-size FIFO evictions
  uint64_t periodic_firings = 0; // timer events injected
  /// Structural list-hash digests answered from the cache inside the shared
  /// list rep while this engine was draining (Value::Hash on a kList whose
  /// hash was already computed). The cached-hash win: re-digest count per
  /// distinct list drops to <= 1.
  uint64_t hash_cache_hits = 0;
  /// VidInterner lookups that found an already-interned VID (eh_* / prov /
  /// ruleExec churn re-touching known vertices).
  uint64_t vid_intern_hits = 0;
  /// Heap allocations (global operator new calls, process-wide) that landed
  /// while this engine was draining its delta queue. Reads 0 unless the
  /// build defines NETTRAILS_COUNT_ALLOCS (see src/common/alloc_hook.h);
  /// attribution is exact for the same reason hash_cache_hits is — drains
  /// never nest across engines. The zero-allocation shipping path drives
  /// this to (near) zero on converged churn; bench_churn reports it as
  /// allocs_per_flap and scripts/check_alloc_budget.sh pins it.
  uint64_t drain_allocs = 0;
};

/// The "tuple" message channel used for shipped deltas.
inline constexpr char kTupleChannel[] = "tuple";

/// Point-in-time snapshot of one node's recoverable engine state, produced
/// by Engine::TakeCheckpoint and consumed by Engine::RestoreCheckpoint.
/// In-memory format (the durable serialization would be a straightforward
/// walk of these fields); every container is in a deterministic order —
/// OrderedView for table rows, key order for soft state, (rule, group) for
/// aggregates, first-intern order for VIDs — so two checkpoints of equal
/// states compare equal.
struct EngineCheckpoint {
  /// Virtual time the checkpoint was taken at (soft-state deadlines below
  /// are absolute times).
  net::Time taken_at = 0;

  struct TableRow {
    ValueList fields;
    int64_t count = 0;
  };
  std::map<std::string, std::vector<TableRow>> tables;

  /// Soft-state expiry metadata: one entry per live (table, key) with its
  /// generation and absolute expiry deadline (0 when the table has no
  /// lifetime — max-size-only soft state).
  struct SoftEntry {
    std::string table;
    ValueList key;
    uint64_t gen = 0;
    net::Time deadline = 0;
  };
  std::vector<SoftEntry> soft;
  std::map<std::string, std::vector<std::pair<ValueList, uint64_t>>> fifo;
  std::map<std::string, int64_t> pending_evictions;

  struct AggContribution {
    Value value;
    Value vids;
    int64_t count = 0;
  };
  struct AggEntry {
    size_t rule_idx = 0;
    ValueList group;
    std::vector<AggContribution> contribs;
    bool has_output = false;
    ValueList last_output;
    std::vector<Tuple> last_prov;
  };
  std::vector<AggEntry> aggregates;

  /// Interned VIDs in dense-handle order, and the VID -> tuple index.
  std::vector<Vid> interned_vids;
  std::vector<std::pair<Vid, Tuple>> vid_index;
};

class Engine {
 public:
  /// Observes every visible table change on this node, after application.
  using ActionObserver =
      std::function<void(const std::string& table, const TableAction&)>;

  Engine(net::Simulator* sim, NodeId id, CompiledProgramPtr prog,
         EngineOptions opts = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  NodeId id() const { return id_; }
  const CompiledProgram& program() const { return *prog_; }

  /// Inserts / deletes an external (base) tuple. The tuple's location
  /// attribute must be this node.
  Status Insert(const Tuple& tuple);
  Status Delete(const Tuple& tuple);
  /// Injects a transient event tuple (located here).
  Status InsertEvent(const Tuple& tuple);

  /// Materialized table, or nullptr for events / unknown names.
  const Table* GetTable(const std::string& name) const;
  std::vector<Tuple> TableContents(const std::string& name) const;
  bool HasTuple(const Tuple& tuple) const;
  int64_t CountOf(const Tuple& tuple) const;

  /// Total visible tuples across all materialized tables (storage metric;
  /// `provenance_only` restricts to prov/ruleExec/eh_* tables).
  size_t TotalTuples(bool provenance_only = false) const;

  /// VID -> tuple for local state (and locally observed events). Entries
  /// for deleted state are retained while provenance references them.
  const Tuple* FindTupleByVid(Vid vid) const;

  /// This node's VID interner, shared with the provenance store so engine
  /// and store agree on handles. Stats land in EngineStats::vid_intern_hits.
  provenance::VidInterner* vid_interner() { return &vid_interner_; }
  const provenance::VidInterner& vid_interner() const { return vid_interner_; }

  void AddActionObserver(ActionObserver obs) {
    observers_.push_back(std::move(obs));
  }

  const EngineStats& stats() const { return stats_; }
  /// True if the max_actions safety valve tripped (runaway program).
  bool overflowed() const { return overflowed_; }
  /// Last evaluation error, for diagnostics ("" if none).
  const std::string& last_error() const { return last_error_; }

  // --- Crash / recovery ---------------------------------------------------
  // See docs/ARCHITECTURE.md "Fault model and recovery" for the full
  // protocol; protocols::CrashNode / RestartNode orchestrate these with the
  // simulator's node lifecycle.

  /// Snapshot of all recoverable state: table rows (with derivation
  /// counts), soft-state expiry generations + deadlines, FIFO eviction
  /// order, aggregate groups (live contributions, last output, last
  /// emitted provenance), the VID interner, and the VID -> tuple index.
  EngineCheckpoint TakeCheckpoint() const;

  /// Marks the engine crashed: bumps the restart epoch so every
  /// outstanding timer closure (soft-state expiries, periodics) becomes a
  /// no-op, and clears the delta queue. The simulator-side counterpart is
  /// Simulator::SetNodeUp(id, false), which gates message delivery.
  void HaltForCrash();

  /// Restores a checkpoint in place: rebuilds tables (indexes and the
  /// join loop's table resolution included), aggregate state, soft-state
  /// bookkeeping (expiry timers are re-armed at their absolute deadlines —
  /// deadlines that passed while the node was down fire immediately), the
  /// VID interner, and the VID index. Action observers are dropped (a
  /// pre-crash ProvStore points at dead state; the recovery harness
  /// attaches a fresh store, which bootstraps itself from the restored
  /// prov/ruleExec tables). Periodic streams restart from iteration 1.
  void RestoreCheckpoint(const EngineCheckpoint& ckpt);

  /// Recovery reconciliation, run after RestoreCheckpoint (and after the
  /// fresh provenance store is attached): retracts the remote-grounded
  /// share of every restored tuple — derivations whose rule execution
  /// lives on another node (prov rows with RLoc != this node). A restarted
  /// node missed every retraction addressed to it while it was down, so
  /// remotely-derived rows in its checkpoint may be stale; dropping them
  /// (with full local cascade) and letting neighbors re-announce is what
  /// makes recovery converge to the fault-free fixpoint. The cascade does
  /// NOT ship retractions of this node's own exports: the survivors already
  /// scrubbed those at crash time (DropDerivationsFrom), and re-shipping
  /// would land unmatched -1 deltas that eat same-fields sibling
  /// derivations at the receiver.
  void DropRemoteDerivations();

  /// Survivor-side half of the crash protocol: retracts every row whose
  /// derivation was grounded at `origin` (the crashed node), with full
  /// cascade and normal shipping — retractions bound for live nodes are
  /// genuine, and those bound for the crashed node are swallowed by the
  /// simulator. Without this, a survivor keeps routing through derivations
  /// whose deriver no longer exists, and the restarted node's
  /// re-announcements would double-count against the stale copies.
  void DropDerivationsFrom(NodeId origin);

 private:
  struct Delta {
    std::string table;
    ValueList fields;
    int64_t mult = 1;
    bool is_delete = false;
    bool is_eviction = false;  // decrement the pending-eviction counter
  };

  /// Net per-tuple count adjustments carried by a suffix of a batch's
  /// actions, with first-touch enumeration order for determinism. During
  /// batched evaluation of action i the overlay holds the summed effects of
  /// actions [i..n): subtracting it from the post-batch store reconstructs
  /// exactly the store action i saw in serial mode. Entries are kept at
  /// net 0 so every tuple the batch touches stays enumerable (the
  /// synthetic-candidate sweep in JoinRec relies on it).
  ///
  /// Storage is a slab (first-touch order — the old `order` vector) plus a
  /// flat content-hash index with explicit collision chains; entries hold
  /// pointers into the batch's TableActions (stable for the whole batch)
  /// instead of ValueList copies, so refilling the overlay each rule pass
  /// allocates nothing once the slab has grown to batch size.
  struct BatchOverlay {
    struct Entry {
      const ValueList* fields;
      int64_t net;
      int32_t next;  // same-hash chain, slab index + 1; 0 terminates
    };
    std::vector<Entry> slab;       // first-touch order
    FlatHashMap64<int32_t> heads;  // content hash -> slab index + 1
    /// Subset of `slab` absent from the post-batch store: the synthetic
    /// join candidates. The store is frozen during batch evaluation, so
    /// ProcessBatch computes this once per rule pass.
    std::vector<const ValueList*> absent;

    void Add(const ValueList& fields, int64_t delta) {
      int32_t& head = heads[ValueListHash{}(fields)];
      for (int32_t i = head; i != 0; i = slab[i - 1].next) {
        Entry& e = slab[i - 1];
        if (ValueListEq{}(*e.fields, fields)) {
          e.net += delta;
          return;
        }
      }
      slab.push_back({&fields, delta, head});
      head = static_cast<int32_t>(slab.size());
    }
    int64_t Net(const ValueList& fields) const {
      const int32_t* head = heads.Find(ValueListHash{}(fields));
      for (int32_t i = head == nullptr ? 0 : *head; i != 0;
           i = slab[i - 1].next) {
        const Entry& e = slab[i - 1];
        if (ValueListEq{}(*e.fields, fields)) return e.net;
      }
      return 0;
    }
    void Clear() {
      slab.clear();
      heads.Clear();
      absent.clear();
    }
  };

  void OnTupleMessage(net::Message& msg);
  void EnqueueLocal(Delta delta);

  /// ValueList recycling pool for the delta pipeline. Field buffers flow
  /// emit -> queue -> batch -> harvest-back-to-pool, so a converged flap's
  /// tuple churn reuses the same allocations instead of paying one
  /// malloc/free pair per derived tuple.
  ValueList AcquireList() {
    if (list_pool_.empty()) return ValueList();
    ValueList out = std::move(list_pool_.back());
    list_pool_.pop_back();
    out.clear();
    return out;
  }
  void ReleaseList(ValueList&& v) { list_pool_.push_back(std::move(v)); }
  /// Copy of `src` backed by a pooled buffer (the enqueue-a-copy idiom).
  ValueList CopyToPooled(const ValueList& src) {
    ValueList out = AcquireList();
    out = src;
    return out;
  }
  void DrainQueue();
  void ProcessDelta(const Delta& delta);
  /// Shared core of DropRemoteDerivations / DropDerivationsFrom: retracts
  /// prov rows (and their targets) grounded at any remote node
  /// (`any_remote`) or at `origin` specifically, cascading locally;
  /// outbound deltas ship only when `ship_retractions`.
  void ScrubGroundedRows(bool any_remote, NodeId origin,
                         bool ship_retractions);
  /// Batched pipeline: drains a run of consecutive same-table deltas from
  /// the queue front and processes them as one DeltaBatch (one-pass
  /// ApplyBatch, rule-major evaluation under suffix overlays, one aggregate
  /// recomputation per touched group, per-destination batch shipping).
  void ProcessBatch();
  void ProcessEventBatch(const std::string& name, std::vector<Delta>* deltas);
  void FireTriggers(const std::string& pred, const TableAction& action);
  /// Joins the rule body around the delta atom; `action` is the visible
  /// change that seeded the evaluation. `suffix` is the batch overlay for
  /// this action (nullptr in serial mode and for event deltas).
  void EvalRuleWithDelta(size_t rule_idx, size_t delta_term,
                         const TableAction& action,
                         const BatchOverlay* suffix);
  /// `plans` is the per-body-term probe plan for this (rule, delta_term)
  /// choice, or nullptr to scan every atom.
  void JoinRec(const CompiledRule& cr, size_t rule_idx, size_t term_idx,
               size_t delta_term, const std::vector<AtomProbePlan>* plans,
               const TableAction& action, const BatchOverlay* suffix,
               Frame* frame, int64_t mult);
  /// Matches `fields` against the lowered atom pattern, binding previously
  /// unbound frame slots. On success the newly bound slots are appended to
  /// `added` (the caller's undo log: Unset them to restore the frame — an
  /// O(1) bit clear per slot); on failure the frame is restored before
  /// returning.
  bool MatchAtom(const CompiledAtom& atom, const ValueList& fields,
                 Frame* frame, std::vector<int>* added) const;
  void EmitHead(const CompiledRule& cr, size_t rule_idx, const Frame& frame,
                int64_t mult, bool is_delete);
  /// Ships one tuple delta to a remote node: immediately in serial mode,
  /// buffered into the per-destination outbox during batch processing.
  void ShipRemote(NodeId dst, Tuple tuple, int64_t mult, bool is_delete);
  /// Sends each destination's buffered deltas as one batch frame.
  void FlushOutbox();
  void HandleAggContribution(const CompiledRule& cr, size_t rule_idx,
                             const Frame& frame, int64_t mult,
                             bool is_delete);
  struct AggGroupState;
  void RecomputeAggGroup(const CompiledRule& cr, const ValueList& group_key,
                         AggGroupState* state);
  /// Recomputes (once each) the aggregate groups touched by the current
  /// batch, in first-touch order.
  void FlushDirtyAggregates();
  /// Interns the tuple's VID and indexes the tuple on first sight. Takes
  /// (name, fields) so repeat registrations (every re-derivation) skip the
  /// Tuple construction entirely — the VID digest itself reuses cached list
  /// hashes.
  void RegisterVid(const std::string& name, const ValueList& fields);
  void NoteEvalError(const Status& status);
  /// Soft-state bookkeeping after a visible insert: refresh the expiry
  /// timer and enforce FIFO max-size eviction.
  void HandleSoftState(const Table& table, const TableAction& action);
  /// Arms one epoch-guarded expiry timer at the absolute `deadline`.
  void ScheduleExpiry(const std::string& name, const ValueList& key,
                      uint64_t gen, net::Time deadline);
  /// Schedules the program's periodic(@X,E,T,C) timer streams.
  void SchedulePeriodics();
  void FirePeriodic(PeriodicStream stream, int64_t iteration);
  /// (Re)builds tables_ from the program — storage, planner-selected
  /// indexes, and the join loop's per-term table resolution. Shared by the
  /// constructor and RestoreCheckpoint (which must rebuild term_tables_
  /// too: it holds raw pointers into tables_).
  void InitTables();

  net::Simulator* sim_;
  NodeId id_;
  CompiledProgramPtr prog_;
  EngineOptions opts_;
  /// Interned "tuple" channel id, resolved once at construction so shipping
  /// never touches the channel string.
  net::ChannelId tuple_channel_ = 0;

  std::map<std::string, Table> tables_;
  /// Per (rule, body-term) table resolution: term_tables_[rule][term] is
  /// the materialized table backing that body atom (nullptr for events and
  /// non-atom terms), resolved once at construction so the join loop never
  /// does a string-keyed map lookup. Pointers into tables_ are stable
  /// (node-based map, populated before this).
  std::vector<std::vector<const Table*>> term_tables_;
  /// Scratch evaluation frame, reset per EvalRuleWithDelta. Safe as a
  /// member because rule evaluation never nests: derived heads are
  /// enqueued, not evaluated inline, and drains do not re-enter.
  Frame frame_;
  std::deque<Delta> queue_;
  bool draining_ = false;
  /// True while a scrub cascade runs with shipping suppressed (see
  /// DropRemoteDerivations); checked at the top of ShipRemote.
  bool suppress_shipping_ = false;
  uint64_t actions_this_trigger_ = 0;
  bool overflowed_ = false;

  std::unordered_map<Vid, Tuple> vid_index_;
  provenance::VidInterner vid_interner_;

  struct AggGroupState {
    AggGroup group;
    bool dirty = false;  // already on dirty_aggs_ for the current batch
    bool has_output = false;
    ValueList last_output;
    std::vector<Tuple> last_prov;  // emitted prov + ruleExec tuples
  };
  /// Hash/equality over (rule index, group key). Group-key hashing reuses
  /// the digests cached in shared list reps. Both agg containers are pure
  /// lookup structures — never iterated — so hash layout cannot leak into
  /// evaluation order (dirty_aggs_ keeps the deterministic first-touch
  /// order).
  struct AggKeyHash {
    size_t operator()(const std::pair<size_t, ValueList>& k) const {
      Hasher h;
      h.AddU64(k.first);
      AddValueRange(&h, k.second.data(), k.second.data() + k.second.size());
      return static_cast<size_t>(h.Digest());
    }
  };
  struct AggKeyEq {
    bool operator()(const std::pair<size_t, ValueList>& a,
                    const std::pair<size_t, ValueList>& b) const {
      return a.first == b.first && ValueListEq{}(a.second, b.second);
    }
  };
  // (rule index, group key) -> state
  std::unordered_map<std::pair<size_t, ValueList>, AggGroupState, AggKeyHash,
                     AggKeyEq>
      agg_state_;

  // Batch-scoped state: true while a DeltaBatch is being evaluated (routes
  // remote shipping into the outbox and aggregate recomputation into the
  // dirty set).
  bool batching_ = false;
  /// Touched aggregate groups in first-touch order. Group key and state
  /// live in agg_state_ nodes (stable — the map never erases), so the dirty
  /// list carries pointers, not ValueList copies.
  struct DirtyAgg {
    size_t rule_idx;
    const ValueList* group;
    AggGroupState* state;
  };
  std::vector<DirtyAgg> dirty_aggs_;
  std::vector<NodeId> outbox_order_;  // destinations, first-use order
  /// dst -> simulator frame ref + 1 (0 = none). Batch entries are built in
  /// place in the pooled frame's Message::batch, so per-destination
  /// buffering allocates nothing once frames have warmed up.
  FlatHashMap64<uint32_t> outbox_;

  // Drain-scoped scratch buffers (reused across batches so a converged
  // drain allocates nothing): the current batch's deltas / table requests /
  // applied actions, the shared frame-undo stack for MatchAtom (callers
  // restore to their saved mark — safe across JoinRec recursion), the
  // secondary-index probe key, the per-rule-pass suffix overlay, and the
  // aggregate lookup key (find-before-emplace keeps the hit path free of
  // pair<rule, group> copies).
  std::vector<Delta> batch_deltas_;
  std::vector<DeltaRequest> batch_reqs_;
  ActionBuffer batch_actions_;
  std::vector<int> undo_stack_;
  ValueList probe_key_;
  BatchOverlay suffix_overlay_;
  std::pair<size_t, ValueList> agg_key_scratch_;
  ValueList agg_vid_scratch_;
  /// Recompute scratch: winners, their raw VIDs, and the desired-provenance
  /// build buffer (swapped against each state's last_prov, so tuple storage
  /// cycles instead of being reallocated per recomputation).
  std::vector<AggGroup::ContribKey> winners_scratch_;
  std::vector<Vid> winner_vids_scratch_;
  std::vector<Tuple> agg_prov_scratch_;
  std::vector<ValueList> list_pool_;

  // Soft state: per-key insertion generation (a re-insertion refreshes the
  // expiry timer and invalidates stale timers), the absolute expiry
  // deadline (recorded so checkpoints can re-arm timers), and FIFO
  // insertion order.
  struct TableKeyLess {
    bool operator()(const std::pair<std::string, ValueList>& a,
                    const std::pair<std::string, ValueList>& b) const {
      if (a.first != b.first) return a.first < b.first;
      return ValueListLess{}(a.second, b.second);
    }
  };
  struct SoftMeta {
    uint64_t gen = 0;
    net::Time deadline = 0;  // 0 when the table has no lifetime
  };
  std::map<std::pair<std::string, ValueList>, SoftMeta, TableKeyLess>
      soft_gen_;
  std::map<std::string, std::deque<std::pair<ValueList, uint64_t>>> fifo_;
  std::map<std::string, int64_t> pending_evictions_;

  /// Bumped by HaltForCrash/RestoreCheckpoint; timer closures capture the
  /// epoch they were armed in and no-op if it has moved on, so a restored
  /// engine never executes a pre-crash timer.
  uint64_t restart_epoch_ = 0;

  std::vector<ActionObserver> observers_;
  EngineStats stats_;
  std::string last_error_;
};

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_ENGINE_H_
