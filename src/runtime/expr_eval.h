// Slot-compiled expression evaluation over flat variable frames.
//
// Rule variables are interned into dense per-rule slot ids at plan time
// (SlotMap), and every ndlog::Expr is lowered once into a CompiledExpr
// whose Var nodes hold a slot index and whose Call nodes hold a
// pre-resolved builtin pointer — unknown builtins and arity mismatches are
// compile-time errors, not first-firing surprises. Evaluation runs over a
// Frame: a flat vector of slot values plus a bound bitmask, so binding,
// probing, and undo in the join loop are O(1) slot stores with no string
// compares or map-node allocations (this replaced the old
// std::map<std::string, Value> Bindings that dominated the convergence
// profile).
#ifndef NETTRAILS_RUNTIME_EXPR_EVAL_H_
#define NETTRAILS_RUNTIME_EXPR_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/ndlog/ast.h"
#include "src/runtime/builtins.h"

namespace nettrails {
namespace runtime {

/// Interns variable names into dense slot ids (one namespace per rule).
/// Compile-time only; lookups are a linear scan because rules hold a
/// handful of variables and nothing at evaluation time touches names.
class SlotMap {
 public:
  /// Returns the slot of `name`, interning it on first sight.
  int Intern(const std::string& name) {
    int found = Find(name);
    if (found >= 0) return found;
    names_.push_back(name);
    return static_cast<int>(names_.size()) - 1;
  }

  /// Slot of `name`, or -1 if it was never interned.
  int Find(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  size_t size() const { return names_.size(); }
  const std::string& name(int slot) const {
    return names_[static_cast<size_t>(slot)];
  }

 private:
  std::vector<std::string> names_;
};

/// The evaluation frame for one rule: slot values plus a bound bitmask.
/// Reset keeps vector capacity, so a reused frame allocates nothing in
/// steady state; stale slot values are simply left behind (IsBound gates
/// every read, and Unset is a single bit clear — no Value destruction on
/// the undo path).
class Frame {
 public:
  Frame() = default;
  explicit Frame(size_t num_slots) { Reset(num_slots); }

  void Reset(size_t num_slots) {
    if (slots_.size() < num_slots) slots_.resize(num_slots);
    bound_.assign((num_slots + 63) / 64, 0);
    size_ = num_slots;
  }

  size_t size() const { return size_; }

  bool IsBound(int slot) const {
    return (bound_[static_cast<size_t>(slot) >> 6] >> (slot & 63)) & 1;
  }
  const Value& Get(int slot) const { return slots_[static_cast<size_t>(slot)]; }
  void Set(int slot, const Value& v) {
    slots_[static_cast<size_t>(slot)] = v;
    bound_[static_cast<size_t>(slot) >> 6] |= uint64_t{1} << (slot & 63);
  }
  void Set(int slot, Value&& v) {
    slots_[static_cast<size_t>(slot)] = std::move(v);
    bound_[static_cast<size_t>(slot) >> 6] |= uint64_t{1} << (slot & 63);
  }
  void Unset(int slot) {
    bound_[static_cast<size_t>(slot) >> 6] &= ~(uint64_t{1} << (slot & 63));
  }

 private:
  std::vector<Value> slots_;
  std::vector<uint64_t> bound_;
  size_t size_ = 0;
};

/// A lowered expression: a flat node pool plus the root node id. Produced
/// by CompileExpr at plan time, evaluated by Eval on the firing path.
struct CompiledExpr {
  enum class Op : uint8_t { kConst, kSlot, kCall, kBinary, kUnary, kList };

  struct Node {
    Op op = Op::kConst;
    ndlog::BinOp bin_op = ndlog::BinOp::kAdd;  // kBinary
    ndlog::UnOp un_op = ndlog::UnOp::kNot;     // kUnary
    int slot = -1;                             // kSlot
    Value constant;                            // kConst
    const BuiltinFn* fn = nullptr;             // kCall (plan-time resolved)
    std::vector<uint32_t> children;            // operand node ids
    /// kSlot: variable name; kCall: builtin name. Error paths only.
    std::string name;
  };

  std::vector<Node> nodes;
  uint32_t root = 0;

  /// False for a default-constructed (never lowered) expression, e.g. the
  /// head slot of an a_count<*> aggregate argument.
  bool valid() const { return !nodes.empty(); }
};

/// Lowers `expr` against `slots`, interning every variable and resolving
/// every builtin call. Unknown builtins and arity violations are
/// PlanErrors.
Result<CompiledExpr> CompileExpr(const ndlog::Expr& expr, SlotMap* slots);

/// Evaluates a compiled expression under `frame`. Unbound slots and type
/// mismatches are errors; integer arithmetic is overflow-checked (overflow,
/// INT64_MIN / -1, and negation of INT64_MIN are RuntimeErrors rather than
/// undefined behavior; INT64_MIN % -1 yields the mathematical result 0).
Result<Value> Eval(const CompiledExpr& expr, const Frame& frame);

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_EXPR_EVAL_H_
