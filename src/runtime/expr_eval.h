// Expression evaluation over variable bindings.
#ifndef NETTRAILS_RUNTIME_EXPR_EVAL_H_
#define NETTRAILS_RUNTIME_EXPR_EVAL_H_

#include <map>
#include <string>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/ndlog/ast.h"

namespace nettrails {
namespace runtime {

/// Variable bindings accumulated while evaluating a rule body.
using Bindings = std::map<std::string, Value>;

/// Evaluates `expr` under `bindings`. Unbound variables, type mismatches,
/// and unknown builtins are errors.
Result<Value> Eval(const ndlog::Expr& expr, const Bindings& bindings);

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_EXPR_EVAL_H_
