// Compilation pipeline: NDlog source -> parsed -> analyzed -> localized ->
// (optionally) provenance-rewritten -> trigger-indexed executable plan
// shared by every node's engine.
#ifndef NETTRAILS_RUNTIME_PLAN_H_
#define NETTRAILS_RUNTIME_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/ndlog/analysis.h"

namespace nettrails {
namespace runtime {

struct CompileOptions {
  /// Apply the ExSPAN provenance rewrite. Maybe rules are dropped (with no
  /// effect) when false, since their sole output is provenance.
  bool provenance = true;
};

/// One executable rule.
struct CompiledRule {
  ndlog::Rule rule;
  /// Indices into rule.body that are atoms, in body order.
  std::vector<size_t> atom_positions;
  /// Head predicate is an event (not materialized).
  bool head_is_event = false;
  /// Aggregate rule bookkeeping.
  bool has_agg = false;
  ndlog::AggFn agg_fn = ndlog::AggFn::kMin;
  size_t agg_arg_index = 0;  // position of the aggregate in the head args
};

/// The reserved periodic-event predicate: periodic(@X, E, Period, Count)
/// fires Count times every Period seconds at each node, with a fresh event
/// id E per firing (the P2/RapidNet timer mechanism).
inline constexpr char kPeriodicPredicate[] = "periodic";

/// A distinct periodic stream required by the program.
struct PeriodicStream {
  int64_t period_secs = 1;
  int64_t count = 1;

  bool operator<(const PeriodicStream& other) const {
    if (period_secs != other.period_secs) {
      return period_secs < other.period_secs;
    }
    return count < other.count;
  }
};

/// The shared, immutable execution plan.
struct CompiledProgram {
  /// Final program text (after localization and rewrite) — this is the
  /// "modified program that contains additional rules for capturing the
  /// program's provenance information" of the paper.
  ndlog::Program program;
  std::map<std::string, ndlog::TableInfo> tables;
  std::vector<CompiledRule> rules;
  /// predicate -> [(rule index, body-term index of the triggering atom)].
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> triggers;
  /// Distinct (period, count) timer streams the engines must run.
  std::vector<PeriodicStream> periodic_streams;
  bool provenance = false;

  const ndlog::TableInfo* FindTable(const std::string& name) const {
    auto it = tables.find(name);
    return it == tables.end() ? nullptr : &it->second;
  }

  /// Rendered program text (for tests, docs, and the demo display of the
  /// rewritten rules).
  std::string Dump() const { return program.ToString(); }
};

using CompiledProgramPtr = std::shared_ptr<const CompiledProgram>;

/// Full pipeline from source text.
Result<CompiledProgramPtr> Compile(const std::string& source,
                                   const CompileOptions& options = {});

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_PLAN_H_
