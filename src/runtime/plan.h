// Compilation pipeline: NDlog source -> parsed -> analyzed -> localized ->
// (optionally) provenance-rewritten -> trigger-indexed executable plan
// shared by every node's engine.
#ifndef NETTRAILS_RUNTIME_PLAN_H_
#define NETTRAILS_RUNTIME_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/ndlog/analysis.h"
#include "src/ndlog/lint.h"
#include "src/runtime/expr_eval.h"

namespace nettrails {
namespace runtime {

struct CompileOptions {
  /// Apply the ExSPAN provenance rewrite. Maybe rules are dropped (with no
  /// effect) when false, since their sole output is provenance.
  bool provenance = true;
  /// Run the ndlint static-analysis passes over the user program (before
  /// localization). Error-severity findings fail the compile with a
  /// PlanError; warnings and notes are silent here (run the ndlint CLI to
  /// see them). In-source `// ndlint: allow(NDxxx)` pragmas apply.
  bool lint = true;
  /// Lint configuration (link predicates, extra allowed codes).
  ndlog::LintOptions lint_options;
};

/// Options with the ExSPAN provenance rewrite disabled (lint stays on).
inline CompileOptions NoProvenanceOptions() {
  CompileOptions options;
  options.provenance = false;
  return options;
}

/// Probe plan for one body atom under a specific choice of delta atom:
/// which argument positions are already bound when the join reaches it, and
/// the table-local secondary index covering exactly those positions.
///
/// The location attribute (position 0) is excluded from index keys: every
/// row of a node-local table carries that node's address there, so a
/// location key can never discriminate — indexing it would just duplicate
/// the table into one giant bucket (and make its maintenance quadratic).
struct AtomProbePlan {
  /// Sorted non-location argument positions whose values are known
  /// (constants or variables bound by the delta atom, earlier atoms, or
  /// assignments) when this atom is probed.
  std::vector<int> bound_positions;
  /// Id of the secondary index on bound_positions (Table::AddIndex
  /// registration order per table); -1 means no index.
  int index_id = -1;
  /// Set when the planner proved only the location is bound: the probe
  /// degenerates to a whole-table iteration in which every row is a
  /// genuine join candidate (a per-node broadcast join, e.g. "all
  /// neighbors"), as opposed to an unplanned scan fallback.
  bool broadcast = false;
  /// This atom's predicate equals the delta atom's predicate (a self-join).
  /// The engine's semi-naive visibility adjustments — and, in batched mode,
  /// the per-batch overlay — apply only to such atoms; precomputing the
  /// flag removes a per-probe string comparison from the join loop.
  bool same_pred_as_delta = false;
};

/// Lowered atom argument: a frame slot (variable) or a constant. Body atom
/// arguments are Var/Const only after analysis, so this is total.
struct SlotArg {
  int slot = -1;     // >= 0: frame slot holding the variable
  Value constant;    // the value when slot < 0
  std::string name;  // variable name (diagnostics only; never on hot path)

  bool is_const() const { return slot < 0; }
};

/// Lowered body-atom pattern: the engine matches candidate rows against it,
/// binding unbound slots, and rebuilds concrete tuples from a full frame.
struct CompiledAtom {
  std::vector<SlotArg> args;
};

/// One lowered body term, index-parallel to CompiledRule::rule.body.
struct CompiledTerm {
  enum class Kind : uint8_t { kAtom, kAssign, kSelect };
  Kind kind = Kind::kSelect;
  CompiledAtom atom;     // kAtom
  int assign_slot = -1;  // kAssign: slot the assignment binds
  CompiledExpr expr;     // kAssign / kSelect
};

/// One executable rule.
struct CompiledRule {
  ndlog::Rule rule;
  /// Indices into rule.body that are atoms, in body order.
  std::vector<size_t> atom_positions;
  /// Slot frame layout: every variable appearing in the rule, interned to a
  /// dense id at compile time. Evaluation frames are sized to slots.size().
  SlotMap slots;
  /// Lowered body, index-parallel to rule.body (patterns for atoms,
  /// slot-compiled expressions for assignments and selections).
  std::vector<CompiledTerm> body;
  /// Lowered head-argument expressions, index-parallel to rule.head.args.
  /// The a_count<*> aggregate argument has no expression (entry invalid).
  std::vector<CompiledExpr> head_exprs;
  /// Head predicate is an event (not materialized).
  bool head_is_event = false;
  /// Aggregate rule bookkeeping.
  bool has_agg = false;
  ndlog::AggFn agg_fn = ndlog::AggFn::kMin;
  size_t agg_arg_index = 0;  // position of the aggregate in the head args
  /// delta body-term index -> probe plan per body term (entries for
  /// non-delta materialized atoms; everything else keeps index_id == -1).
  /// Populated for exactly the (rule, delta) pairs in the trigger index.
  std::map<size_t, std::vector<AtomProbePlan>> join_plans;
};

/// The reserved periodic-event predicate: periodic(@X, E, Period, Count)
/// fires Count times every Period seconds at each node, with a fresh event
/// id E per firing (the P2/RapidNet timer mechanism).
inline constexpr char kPeriodicPredicate[] = "periodic";

/// A distinct periodic stream required by the program.
struct PeriodicStream {
  int64_t period_secs = 1;
  int64_t count = 1;

  bool operator<(const PeriodicStream& other) const {
    if (period_secs != other.period_secs) {
      return period_secs < other.period_secs;
    }
    return count < other.count;
  }
};

/// The shared, immutable execution plan.
struct CompiledProgram {
  /// Final program text (after localization and rewrite) — this is the
  /// "modified program that contains additional rules for capturing the
  /// program's provenance information" of the paper.
  ndlog::Program program;
  std::map<std::string, ndlog::TableInfo> tables;
  std::vector<CompiledRule> rules;
  /// predicate -> [(rule index, body-term index of the triggering atom)].
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> triggers;
  /// table -> distinct sorted bound-position sets required by the join
  /// plans; the vector index is the index id the engine registers with
  /// Table::AddIndex (in order).
  std::map<std::string, std::vector<std::vector<int>>> table_indexes;
  /// Distinct (period, count) timer streams the engines must run.
  std::vector<PeriodicStream> periodic_streams;
  bool provenance = false;

  const ndlog::TableInfo* FindTable(const std::string& name) const {
    auto it = tables.find(name);
    return it == tables.end() ? nullptr : &it->second;
  }

  /// Rendered program text (for tests, docs, and the demo display of the
  /// rewritten rules).
  std::string Dump() const { return program.ToString(); }
};

using CompiledProgramPtr = std::shared_ptr<const CompiledProgram>;

/// Full pipeline from source text.
Result<CompiledProgramPtr> Compile(const std::string& source,
                                   const CompileOptions& options = {});

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_PLAN_H_
