#include "src/runtime/aggregates.h"

namespace nettrails {
namespace runtime {

void AggGroup::Adjust(const Value& value, const Value& vids, int64_t mult) {
  ContribKey key{value, vids};
  auto it = contribs_.try_emplace(std::move(key), 0).first;
  int64_t before = it->second;
  int64_t after = before + mult;
  // Applied derivation-count change: an over-delete clamps at erasure, so
  // the running totals track what the multiset actually holds.
  int64_t applied = after <= 0 ? -before : mult;
  if (after <= 0) {
    contribs_.erase(it);
  } else {
    it->second = after;
  }
  total_count_ += applied;
  if (value.is_int()) {
    // Accumulate mod 2^64: exact whenever the true sum fits int64, and
    // well-defined wraparound (no signed-overflow UB) when a crafted
    // program pushes a_sum past the range — inserts and deletes stay
    // exactly inverse either way, so the running total never drifts.
    int_sum_ = static_cast<int64_t>(
        static_cast<uint64_t>(int_sum_) +
        static_cast<uint64_t>(value.as_int()) *
            static_cast<uint64_t>(applied));
  } else if (value.is_double()) {
    double_weight_ += applied;
  }
}

std::optional<Value> AggGroup::Output(ndlog::AggFn fn) const {
  if (contribs_.empty()) return std::nullopt;
  switch (fn) {
    case ndlog::AggFn::kMin:
      return contribs_.begin()->first.value;
    case ndlog::AggFn::kMax:
      return contribs_.rbegin()->first.value;
    case ndlog::AggFn::kCount:
      return Value::Int(total_count_);
    case ndlog::AggFn::kSum: {
      if (double_weight_ == 0) return Value::Int(int_sum_);
      double dsum = 0;
      for (const auto& [key, mult] : contribs_) {
        if (key.value.is_int()) {
          dsum += static_cast<double>(key.value.as_int()) * mult;
        } else if (key.value.is_double()) {
          dsum += key.value.as_double() * mult;
        }
      }
      return Value::Double(dsum);
    }
  }
  return std::nullopt;
}

std::vector<AggGroup::ContribKey> AggGroup::Winners(ndlog::AggFn fn) const {
  std::vector<ContribKey> out;
  if (contribs_.empty()) return out;
  switch (fn) {
    case ndlog::AggFn::kMin: {
      const Value& best = contribs_.begin()->first.value;
      for (const auto& [key, mult] : contribs_) {
        if (key.value != best) break;  // map is ordered by value first
        out.push_back(key);
      }
      break;
    }
    case ndlog::AggFn::kMax: {
      const Value& best = contribs_.rbegin()->first.value;
      for (auto it = contribs_.rbegin(); it != contribs_.rend(); ++it) {
        if (it->first.value != best) break;
        out.push_back(it->first);
      }
      break;
    }
    case ndlog::AggFn::kCount:
    case ndlog::AggFn::kSum:
      for (const auto& [key, mult] : contribs_) out.push_back(key);
      break;
  }
  return out;
}

}  // namespace runtime
}  // namespace nettrails
