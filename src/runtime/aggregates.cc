#include "src/runtime/aggregates.h"

namespace nettrails {
namespace runtime {

int AggGroup::CompareVidsToProbe(const Value& stored, const ValueList* probe) {
  if (probe == nullptr) {
    // Probe is Null. Value::Compare orders by kind when kinds differ, and
    // kNull is the smallest kind.
    return stored.is_null() ? 0 : 1;
  }
  if (!stored.is_list()) {
    // Stored Null (or any non-list) sorts before a probe list by kind.
    return -1;
  }
  const ValueList& a = stored.as_list();
  const ValueList& b = *probe;
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t AggGroup::LowerBound(const Value& value, const ValueList* probe) const {
  size_t lo = 0, hi = contribs_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    const ContribKey& k = contribs_[mid].key;
    int c = k.value.Compare(value);
    if (c == 0) c = CompareVidsToProbe(k.vids, probe);
    if (c < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void AggGroup::Adjust(const Value& value, const Value& vids, int64_t mult) {
  if (vids.is_list()) {
    Adjust(value, &vids.as_list(), mult);
    return;
  }
  Adjust(value, nullptr, mult);
}

void AggGroup::Adjust(const Value& value, const ValueList* vid_list,
                      int64_t mult) {
  size_t pos = LowerBound(value, vid_list);
  Entry* e = nullptr;
  if (pos < contribs_.size()) {
    const ContribKey& k = contribs_[pos].key;
    if (k.value.Compare(value) == 0 &&
        CompareVidsToProbe(k.vids, vid_list) == 0) {
      e = &contribs_[pos];
    }
  }
  if (e == nullptr) {
    // Over-deleting an absent contribution is a no-op (matches the old
    // try_emplace(0)-then-erase behaviour, which applied nothing).
    if (mult <= 0) return;
    Entry fresh;
    fresh.key.value = value;
    fresh.key.vids = vid_list == nullptr ? Value::Null()
                                         : Value::List(*vid_list);
    fresh.count = 0;
    contribs_.insert(contribs_.begin() + static_cast<long>(pos),
                     std::move(fresh));
    e = &contribs_[pos];
  }
  int64_t before = e->count;
  int64_t after = before + mult;
  // Applied derivation-count change: an over-delete clamps at the tombstone,
  // so the running totals track what the multiset actually holds.
  int64_t applied = after <= 0 ? -before : mult;
  if (after <= 0) {
    e->count = 0;  // tombstone: keeps the entry (and its vids rep) for reuse
    if (before > 0) --live_;
  } else {
    if (before == 0) ++live_;
    e->count = after;
  }
  total_count_ += applied;
  if (value.is_int()) {
    // Accumulate mod 2^64: exact whenever the true sum fits int64, and
    // well-defined wraparound (no signed-overflow UB) when a crafted
    // program pushes a_sum past the range — inserts and deletes stay
    // exactly inverse either way, so the running total never drifts.
    int_sum_ = static_cast<int64_t>(
        static_cast<uint64_t>(int_sum_) +
        static_cast<uint64_t>(value.as_int()) *
            static_cast<uint64_t>(applied));
  } else if (value.is_double()) {
    double_weight_ += applied;
  }
  MaybeCompact();
}

void AggGroup::MaybeCompact() {
  // Tombstones trade memory for allocation-free churn; bound the trade.
  // The threshold is a function of sizes only, so compaction points are
  // deterministic across runs.
  if (contribs_.size() < 32 || contribs_.size() < 2 * live_) return;
  size_t w = 0;
  for (size_t r = 0; r < contribs_.size(); ++r) {
    if (contribs_[r].count == 0) continue;
    if (w != r) contribs_[w] = std::move(contribs_[r]);
    ++w;
  }
  contribs_.resize(w);
}

std::optional<Value> AggGroup::Output(ndlog::AggFn fn) const {
  if (live_ == 0) return std::nullopt;
  switch (fn) {
    case ndlog::AggFn::kMin:
      for (const Entry& e : contribs_) {
        if (e.count > 0) return e.key.value;
      }
      return std::nullopt;  // unreachable: live_ > 0
    case ndlog::AggFn::kMax:
      for (auto it = contribs_.rbegin(); it != contribs_.rend(); ++it) {
        if (it->count > 0) return it->key.value;
      }
      return std::nullopt;  // unreachable: live_ > 0
    case ndlog::AggFn::kCount:
      return Value::Int(total_count_);
    case ndlog::AggFn::kSum: {
      if (double_weight_ == 0) return Value::Int(int_sum_);
      double dsum = 0;
      for (const Entry& e : contribs_) {
        if (e.count == 0) continue;
        if (e.key.value.is_int()) {
          dsum += static_cast<double>(e.key.value.as_int()) *
                  static_cast<double>(e.count);
        } else if (e.key.value.is_double()) {
          dsum += e.key.value.as_double() * static_cast<double>(e.count);
        }
      }
      return Value::Double(dsum);
    }
  }
  return std::nullopt;
}

std::vector<AggGroup::ContribKey> AggGroup::Winners(ndlog::AggFn fn) const {
  std::vector<ContribKey> out;
  Winners(fn, &out);
  return out;
}

void AggGroup::Winners(ndlog::AggFn fn, std::vector<ContribKey>* out_ptr) const {
  std::vector<ContribKey>& out = *out_ptr;
  out.clear();
  if (live_ == 0) return;
  switch (fn) {
    case ndlog::AggFn::kMin: {
      const Value* best = nullptr;
      for (const Entry& e : contribs_) {
        if (e.count == 0) continue;
        if (best == nullptr) best = &e.key.value;
        if (e.key.value != *best) break;  // sorted by value first
        out.push_back(e.key);
      }
      break;
    }
    case ndlog::AggFn::kMax: {
      const Value* best = nullptr;
      for (auto it = contribs_.rbegin(); it != contribs_.rend(); ++it) {
        if (it->count == 0) continue;
        if (best == nullptr) best = &it->key.value;
        if (it->key.value != *best) break;
        out.push_back(it->key);
      }
      break;
    }
    case ndlog::AggFn::kCount:
    case ndlog::AggFn::kSum:
      for (const Entry& e : contribs_) {
        if (e.count > 0) out.push_back(e.key);
      }
      break;
  }
}

}  // namespace runtime
}  // namespace nettrails
