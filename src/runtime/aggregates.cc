#include "src/runtime/aggregates.h"

namespace nettrails {
namespace runtime {

void AggGroup::Adjust(const Value& value, const Value& vids, int64_t mult) {
  ContribKey key{value, vids};
  int64_t& count = contribs_[key];
  count += mult;
  if (count <= 0) contribs_.erase(key);
}

std::optional<Value> AggGroup::Output(ndlog::AggFn fn) const {
  if (contribs_.empty()) return std::nullopt;
  switch (fn) {
    case ndlog::AggFn::kMin:
      return contribs_.begin()->first.value;
    case ndlog::AggFn::kMax:
      return contribs_.rbegin()->first.value;
    case ndlog::AggFn::kCount: {
      int64_t total = 0;
      for (const auto& [key, mult] : contribs_) total += mult;
      return Value::Int(total);
    }
    case ndlog::AggFn::kSum: {
      bool any_double = false;
      int64_t isum = 0;
      double dsum = 0;
      for (const auto& [key, mult] : contribs_) {
        if (key.value.is_int()) {
          isum += key.value.as_int() * mult;
          dsum += static_cast<double>(key.value.as_int()) * mult;
        } else if (key.value.is_double()) {
          any_double = true;
          dsum += key.value.as_double() * mult;
        }
      }
      return any_double ? Value::Double(dsum) : Value::Int(isum);
    }
  }
  return std::nullopt;
}

std::vector<AggGroup::ContribKey> AggGroup::Winners(ndlog::AggFn fn) const {
  std::vector<ContribKey> out;
  if (contribs_.empty()) return out;
  switch (fn) {
    case ndlog::AggFn::kMin: {
      const Value& best = contribs_.begin()->first.value;
      for (const auto& [key, mult] : contribs_) {
        if (key.value != best) break;  // map is ordered by value first
        out.push_back(key);
      }
      break;
    }
    case ndlog::AggFn::kMax: {
      const Value& best = contribs_.rbegin()->first.value;
      for (auto it = contribs_.rbegin(); it != contribs_.rend(); ++it) {
        if (it->first.value != best) break;
        out.push_back(it->first);
      }
      break;
    }
    case ndlog::AggFn::kCount:
    case ndlog::AggFn::kSum:
      for (const auto& [key, mult] : contribs_) out.push_back(key);
      break;
  }
  return out;
}

}  // namespace runtime
}  // namespace nettrails
