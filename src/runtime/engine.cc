#include "src/runtime/engine.h"

#include <algorithm>
#include <cassert>

#include "src/common/alloc_hook.h"
#include "src/common/hash.h"
#include "src/provenance/rewrite.h"
#include "src/runtime/builtins.h"

namespace nettrails {
namespace runtime {

namespace {

using ndlog::Atom;

/// VID of the concrete tuple a lowered atom matched, hashed straight from
/// the frame (used for aggregate provenance). Bit-identical to
/// TupleVid(predicate, fields-materialized-from-the-frame) — it replays
/// DigestTuple's layout (name, then AddValueRange's count + element
/// digests) without building the ValueList.
Result<Vid> AtomVid(const std::string& predicate, const CompiledAtom& atom,
                    const Frame& frame) {
  Hasher h;
  h.AddString(predicate);
  h.AddU64(atom.args.size());
  for (const SlotArg& arg : atom.args) {
    if (arg.is_const()) {
      h.AddU64(arg.constant.Hash());
    } else if (frame.IsBound(arg.slot)) {
      h.AddU64(frame.Get(arg.slot).Hash());
    } else {
      return Status::RuntimeError("unbound variable " + arg.name);
    }
  }
  return h.Digest();
}

}  // namespace

Engine::Engine(net::Simulator* sim, NodeId id, CompiledProgramPtr prog,
               EngineOptions opts)
    : sim_(sim), id_(id), prog_(std::move(prog)), opts_(opts) {
  if (prog_->provenance) opts_.track_vid_index = true;
  InitTables();
  tuple_channel_ = sim_->InternChannel(kTupleChannel);
  sim_->RegisterHandler(id_, kTupleChannel,
                        [this](net::Message& msg) { OnTupleMessage(msg); });
  SchedulePeriodics();
}

void Engine::InitTables() {
  tables_.clear();
  for (const auto& [name, info] : prog_->tables) {
    if (info.materialized) tables_.emplace(name, Table(info));
  }
  if (opts_.use_secondary_indexes) {
    // Registration order must match the compiled index ids (AddIndex
    // returns ids sequentially and the planner dedups per table).
    for (const auto& [name, specs] : prog_->table_indexes) {
      auto it = tables_.find(name);
      if (it == tables_.end()) continue;
      for (const std::vector<int>& positions : specs) {
        it->second.AddIndex(positions);
      }
    }
  }
  // Resolve each body atom's table once: the join loop indexes
  // term_tables_ instead of probing the string-keyed table map per visit.
  term_tables_.assign(prog_->rules.size(), {});
  for (size_t r = 0; r < prog_->rules.size(); ++r) {
    const CompiledRule& cr = prog_->rules[r];
    term_tables_[r].assign(cr.rule.body.size(), nullptr);
    for (size_t pos : cr.atom_positions) {
      const Atom& atom = std::get<Atom>(cr.rule.body[pos]);
      auto it = tables_.find(atom.predicate);
      if (it != tables_.end()) term_tables_[r][pos] = &it->second;
    }
  }
}

void Engine::SchedulePeriodics() {
  const uint64_t epoch = restart_epoch_;
  for (const PeriodicStream& stream : prog_->periodic_streams) {
    sim_->ScheduleAfter(
        static_cast<net::Time>(stream.period_secs) * net::kSecond,
        [this, stream, epoch]() {
          if (restart_epoch_ == epoch) FirePeriodic(stream, 1);
        });
  }
}

void Engine::FirePeriodic(PeriodicStream stream, int64_t iteration) {
  ++stats_.periodic_firings;
  // Fresh event id per firing, stable across runs (no wall clock). The
  // restart epoch is mixed in so a restored engine's re-run of the stream
  // (which restarts from iteration 1) emits ids distinct from the
  // checkpointed firings of its previous incarnation.
  Hasher h;
  h.AddU64(id_);
  h.AddU64(static_cast<uint64_t>(stream.period_secs));
  h.AddU64(static_cast<uint64_t>(iteration));
  h.AddU64(restart_epoch_);
  Value eid = Value::Int(static_cast<int64_t>(h.Digest() >> 1));
  EnqueueLocal({kPeriodicPredicate,
                {Value::Address(id_), eid, Value::Int(stream.period_secs),
                 Value::Int(stream.count)},
                1,
                /*is_delete=*/false});
  DrainQueue();
  if (iteration < stream.count) {
    const uint64_t epoch = restart_epoch_;
    sim_->ScheduleAfter(
        static_cast<net::Time>(stream.period_secs) * net::kSecond,
        [this, stream, iteration, epoch]() {
          if (restart_epoch_ == epoch) FirePeriodic(stream, iteration + 1);
        });
  }
}

Status Engine::Insert(const Tuple& tuple) {
  if (!tuple.HasLocation() || tuple.Location() != id_) {
    return Status::InvalidArgument("tuple " + tuple.ToString() +
                                   " is not located at node " +
                                   std::to_string(id_));
  }
  auto it = tables_.find(tuple.name());
  if (it == tables_.end()) {
    return Status::NotFound("no materialized table " + tuple.name());
  }
  EnqueueLocal({tuple.name(), tuple.fields(), 1, /*is_delete=*/false});
  DrainQueue();
  return Status::OK();
}

Status Engine::Delete(const Tuple& tuple) {
  if (!tuple.HasLocation() || tuple.Location() != id_) {
    return Status::InvalidArgument("tuple " + tuple.ToString() +
                                   " is not located at node " +
                                   std::to_string(id_));
  }
  auto it = tables_.find(tuple.name());
  if (it == tables_.end()) {
    return Status::NotFound("no materialized table " + tuple.name());
  }
  // External deletion retracts the tuple entirely (all external
  // derivations); base tuples normally have count 1.
  int64_t count = it->second.CountOf(tuple.fields());
  if (count == 0) {
    return Status::NotFound("tuple " + tuple.ToString() + " not present");
  }
  EnqueueLocal({tuple.name(), tuple.fields(), count, /*is_delete=*/true});
  DrainQueue();
  return Status::OK();
}

Status Engine::InsertEvent(const Tuple& tuple) {
  if (!tuple.HasLocation() || tuple.Location() != id_) {
    return Status::InvalidArgument("event " + tuple.ToString() +
                                   " is not located at node " +
                                   std::to_string(id_));
  }
  if (tables_.count(tuple.name())) {
    return Status::InvalidArgument("table " + tuple.name() +
                                   " is materialized; use Insert");
  }
  EnqueueLocal({tuple.name(), tuple.fields(), 1, /*is_delete=*/false});
  DrainQueue();
  return Status::OK();
}

void Engine::OnTupleMessage(net::Message& msg) {
  // Delivery hands the frame's contents to the handler, so tuple fields move
  // straight from the wire frame into the delta queue (no per-tuple copy;
  // the frame is recycled after we return).
  if (!msg.batch.empty()) {
    // Batch frame: unpack in order. deltas_enqueued stays per tuple.
    for (net::BatchedTuple& b : msg.batch) {
      EnqueueLocal({b.payload.name(), std::move(b.payload.mutable_fields()),
                    b.multiplicity, b.is_delete});
    }
    DrainQueue();
    return;
  }
  EnqueueLocal({msg.payload.name(), std::move(msg.payload.mutable_fields()),
                msg.multiplicity, msg.is_delete});
  DrainQueue();
}

void Engine::EnqueueLocal(Delta delta) {
  ++stats_.deltas_enqueued;
  queue_.push_back(std::move(delta));
}

void Engine::DrainQueue() {
  if (draining_) return;
  draining_ = true;
  actions_this_trigger_ = 0;
  // Both counters are per-thread; a drain executes entirely on the thread
  // that entered it (cross-engine message delivery goes through the
  // simulator's event queue, so drains never nest across engines), which
  // keeps the before/after deltas exactly attributable to this engine even
  // when other workers hash and allocate concurrently.
  const uint64_t hash_hits_before = Value::ListHashCacheHits();
  const uint64_t allocs_before = AllocCountThisThread();
  while (!queue_.empty()) {
    bool serial = opts_.batch_size <= 1;
    if (!serial) {
      // Soft-state tables drain serially even in batched mode: FIFO
      // eviction and expiry-timer bookkeeping are defined against the
      // per-action store (e.g. an eviction victim re-inserted later in the
      // same batch must be evicted at its pre-re-insert count), so only
      // per-delta processing is serial-exact for them. The batching win
      // lives in the infinite-lifetime protocol and provenance tables.
      auto it = tables_.find(queue_.front().table);
      if (it != tables_.end()) {
        const ndlog::TableInfo& info = it->second.info();
        serial = info.lifetime_secs >= 0 || info.max_size >= 0;
      }
    }
    if (serial) {
      Delta delta = std::move(queue_.front());
      queue_.pop_front();
      ProcessDelta(delta);
      ReleaseList(std::move(delta.fields));
    } else {
      ProcessBatch();
    }
    if (overflowed_) {
      queue_.clear();
      break;
    }
  }
  stats_.hash_cache_hits += Value::ListHashCacheHits() - hash_hits_before;
  stats_.vid_intern_hits = vid_interner_.hits();
  stats_.drain_allocs += AllocCountThisThread() - allocs_before;
  draining_ = false;
}

void Engine::ProcessBatch() {
  // Form the batch: the run of consecutive same-table deltas at the queue
  // front (mixed inserts and deletes; runs never reorder the queue, so
  // cross-table and insert/delete ordering is exactly the serial order).
  const std::string table_name = queue_.front().table;
  batch_deltas_.clear();
  while (!queue_.empty() && batch_deltas_.size() < opts_.batch_size &&
         queue_.front().table == table_name) {
    batch_deltas_.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++stats_.batches_processed;
  stats_.batched_tuples += batch_deltas_.size();
  ++stats_.trigger_dispatches;

  auto tit = tables_.find(table_name);
  if (tit == tables_.end()) {
    ProcessEventBatch(table_name, &batch_deltas_);
    return;
  }
  Table& table = tit->second;

  // Plan + apply the whole run through the table in one pass. Evaluation
  // below runs against the post-batch store; per-action suffix overlays
  // reconstruct each action's exact serial-mode visibility.
  batch_reqs_.clear();
  batch_reqs_.reserve(batch_deltas_.size());
  for (Delta& d : batch_deltas_) {
    if (d.is_eviction) --pending_evictions_[table_name];
    batch_reqs_.push_back({std::move(d.fields), d.mult, d.is_delete});
  }
  batch_actions_.Reset();
  const ActionBuffer& actions = batch_actions_;
  table.ApplyBatch(batch_reqs_, &batch_actions_);
  // The requests' field buffers were copied into the store / actions above;
  // recycle them for the next emitted tuples.
  for (DeltaRequest& r : batch_reqs_) ReleaseList(std::move(r.fields));
  if (actions.empty()) return;

  actions_this_trigger_ += actions.size();
  stats_.actions_processed += actions.size();
  if (actions_this_trigger_ > opts_.max_actions_per_trigger) {
    // Valve tripped: skip evaluation, but fall through to the per-tuple
    // epilogue — the store was already mutated, so observers and the VID
    // index must still see every applied action (as serial mode does).
    overflowed_ = true;
    last_error_ = "max_actions_per_trigger exceeded on " + table_name;
  } else {
    batching_ = true;
    auto trig = prog_->triggers.find(table_name);
    if (trig != prog_->triggers.end()) {
      BatchOverlay& suffix = suffix_overlay_;
      for (const auto& [rule_idx, term_idx] : trig->second) {
        // The overlay starts as the net effect of the whole batch and
        // shrinks as evaluation advances: when action i evaluates it holds
        // the summed effects of actions [i..n).
        suffix.Clear();
        for (const TableAction& a : actions) {
          suffix.Add(a.fields, a.is_delete ? -a.mult : a.mult);
        }
        // The store is frozen during evaluation, so which batch-touched
        // tuples are absent from it (the synthetic-candidate pool) is
        // computed once per rule pass, not per probe.
        suffix.absent.clear();
        for (const BatchOverlay::Entry& e : suffix.slab) {
          if (table.CountOf(*e.fields) == 0) suffix.absent.push_back(e.fields);
        }
        for (const TableAction& a : actions) {
          EvalRuleWithDelta(rule_idx, term_idx, a, &suffix);
          if (overflowed_) break;
          suffix.Add(a.fields, a.is_delete ? a.mult : -a.mult);
        }
        if (overflowed_) break;
      }
    }
    FlushDirtyAggregates();
    batching_ = false;
  }

  // Per-tuple post-processing in application order: exactly the serial
  // per-action bookkeeping (provenance observers still see every tuple).
  // Under the rewrite, its own views (eh_* / prov / ruleExec) are never
  // provenance vertices — the graph references program-tuple VIDs and
  // RIDs, both digested by f_mkvid/f_mkrid — so their rows skip VID
  // registration. Gated on prog_->provenance: without the rewrite those
  // names are ordinary user tables.
  const bool track_vids =
      opts_.track_vid_index &&
      !(prog_->provenance && provenance::IsProvenancePredicate(table_name));
  for (const TableAction& action : actions) {
    if (track_vids && !action.is_delete) {
      RegisterVid(table_name, action.fields);
    }
    for (const ActionObserver& obs : observers_) obs(table_name, action);
    if (!action.is_delete) HandleSoftState(table, action);
  }
  FlushOutbox();
}

void Engine::ProcessEventBatch(const std::string& name,
                               std::vector<Delta>* deltas) {
  // Events fire triggers and register VIDs but are never stored; retraction
  // deltas are dropped (as in serial mode). Event predicates cannot appear
  // as non-delta body atoms, so no overlay is needed.
  batch_actions_.Reset();
  const ActionBuffer& actions = batch_actions_;
  for (Delta& d : *deltas) {
    if (d.is_delete) continue;
    if (opts_.track_vid_index) RegisterVid(name, d.fields);
    TableAction& a = batch_actions_.Append();
    a.fields = d.fields;  // copy into the slot's recycled buffer
    a.mult = d.mult;
    a.is_delete = false;
    ReleaseList(std::move(d.fields));
  }
  if (actions.empty()) return;

  actions_this_trigger_ += actions.size();
  stats_.actions_processed += actions.size();
  if (actions_this_trigger_ > opts_.max_actions_per_trigger) {
    overflowed_ = true;
    last_error_ = "max_actions_per_trigger exceeded on " + name;
    return;
  }

  batching_ = true;
  auto trig = prog_->triggers.find(name);
  if (trig != prog_->triggers.end()) {
    for (const auto& [rule_idx, term_idx] : trig->second) {
      for (const TableAction& a : actions) {
        EvalRuleWithDelta(rule_idx, term_idx, a, /*suffix=*/nullptr);
        if (overflowed_) break;
      }
      if (overflowed_) break;
    }
  }
  FlushDirtyAggregates();
  batching_ = false;
  FlushOutbox();
}

void Engine::ProcessDelta(const Delta& delta) {
  auto it = tables_.find(delta.table);
  if (it == tables_.end()) {
    // Event: fire triggers, register the VID, never store.
    if (delta.is_delete) return;  // events have no retraction
    if (opts_.track_vid_index) {
      RegisterVid(delta.table, delta.fields);
    }
    TableAction action{delta.fields, delta.mult, /*is_delete=*/false};
    FireTriggers(delta.table, action);
    return;
  }

  Table& table = it->second;
  if (delta.is_eviction) --pending_evictions_[delta.table];
  std::vector<TableAction> actions =
      delta.is_delete ? table.PlanDelete(delta.fields, delta.mult)
                      : table.PlanInsert(delta.fields, delta.mult);
  // See ProcessBatch: under the rewrite, its own views never need VID
  // registration.
  const bool track_vids =
      opts_.track_vid_index &&
      !(prog_->provenance && provenance::IsProvenancePredicate(delta.table));
  for (const TableAction& action : actions) {
    // Rules see the pre-action store; atoms positioned before the delta
    // atom adjust by the action's effect (exact semi-naive maintenance).
    FireTriggers(delta.table, action);
    table.Apply(action);
    if (track_vids && !action.is_delete) {
      RegisterVid(delta.table, action.fields);
    }
    for (const ActionObserver& obs : observers_) obs(delta.table, action);
    if (!action.is_delete) HandleSoftState(table, action);
  }
}

void Engine::ScheduleExpiry(const std::string& name, const ValueList& key,
                            uint64_t gen, net::Time deadline) {
  const uint64_t epoch = restart_epoch_;
  sim_->ScheduleAt(deadline, [this, name, key, gen, epoch]() {
    if (restart_epoch_ != epoch) return;  // armed before a crash/restore
    auto git = soft_gen_.find({name, key});
    if (git == soft_gen_.end() || git->second.gen != gen) return;
    const Table* t = GetTable(name);
    if (t == nullptr) return;
    const Table::Row* row = t->FindByKey(key);
    if (row == nullptr) return;
    ++stats_.expirations;
    EnqueueLocal({name, CopyToPooled(row->fields), row->count,
                  /*is_delete=*/true});
    DrainQueue();
  });
}

void Engine::HandleSoftState(const Table& table, const TableAction& action) {
  const ndlog::TableInfo& info = table.info();
  if (info.lifetime_secs < 0 && info.max_size < 0) return;
  const std::string& name = table.name();
  ValueList key = table.KeyOf(action.fields);
  SoftMeta& meta = soft_gen_[{name, key}];
  uint64_t gen = ++meta.gen;

  if (info.lifetime_secs >= 0) {
    meta.deadline =
        sim_->now() + static_cast<net::Time>(info.lifetime_secs) * net::kSecond;
    ScheduleExpiry(name, key, gen, meta.deadline);
  }

  if (info.max_size >= 0) {
    std::deque<std::pair<ValueList, uint64_t>>& order = fifo_[name];
    order.push_back({key, gen});
    int64_t& pending = pending_evictions_[name];
    while (static_cast<int64_t>(table.size()) - pending > info.max_size &&
           !order.empty()) {
      auto [victim_key, victim_gen] = order.front();
      order.pop_front();
      auto git = soft_gen_.find({name, victim_key});
      if (git == soft_gen_.end() || git->second.gen != victim_gen) {
        continue;  // refreshed or replaced since: a newer entry exists
      }
      const Table::Row* row = table.FindByKey(victim_key);
      if (row == nullptr) continue;
      ++stats_.evictions;
      ++pending;
      Delta evict{name, CopyToPooled(row->fields), row->count,
                  /*is_delete=*/true};
      evict.is_eviction = true;
      EnqueueLocal(std::move(evict));
    }
  }
}

void Engine::FireTriggers(const std::string& pred, const TableAction& action) {
  if (++actions_this_trigger_ > opts_.max_actions_per_trigger) {
    overflowed_ = true;
    last_error_ = "max_actions_per_trigger exceeded on " + pred;
    return;
  }
  ++stats_.actions_processed;
  ++stats_.trigger_dispatches;
  auto it = prog_->triggers.find(pred);
  if (it == prog_->triggers.end()) return;
  for (const auto& [rule_idx, term_idx] : it->second) {
    EvalRuleWithDelta(rule_idx, term_idx, action, /*suffix=*/nullptr);
  }
}

bool Engine::MatchAtom(const CompiledAtom& atom, const ValueList& fields,
                       Frame* frame, std::vector<int>* added) const {
  const size_t undo_mark = added->size();
  auto fail = [&]() {
    while (added->size() > undo_mark) {
      frame->Unset(added->back());
      added->pop_back();
    }
    return false;
  };
  if (atom.args.size() != fields.size()) return fail();
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const SlotArg& arg = atom.args[i];
    if (arg.is_const()) {
      if (arg.constant != fields[i]) return fail();
    } else if (!frame->IsBound(arg.slot)) {
      frame->Set(arg.slot, fields[i]);
      added->push_back(arg.slot);
    } else if (frame->Get(arg.slot) != fields[i]) {
      return fail();
    }
  }
  return true;
}

void Engine::EvalRuleWithDelta(size_t rule_idx, size_t delta_term,
                               const TableAction& action,
                               const BatchOverlay* suffix) {
  const CompiledRule& cr = prog_->rules[rule_idx];
  const CompiledAtom& delta_atom = cr.body[delta_term].atom;
  frame_.Reset(cr.slots.size());
  // The shared undo stack starts empty per evaluation (the frame reset just
  // cleared every binding the previous evaluation logged).
  undo_stack_.clear();
  if (!MatchAtom(delta_atom, action.fields, &frame_, &undo_stack_)) return;
  const std::vector<AtomProbePlan>* plans = nullptr;
  if (opts_.use_secondary_indexes) {
    auto pit = cr.join_plans.find(delta_term);
    if (pit != cr.join_plans.end()) plans = &pit->second;
  }
  JoinRec(cr, rule_idx, 0, delta_term, plans, action, suffix, &frame_,
          action.mult);
}

void Engine::JoinRec(const CompiledRule& cr, size_t rule_idx, size_t term_idx,
                     size_t delta_term, const std::vector<AtomProbePlan>* plans,
                     const TableAction& action, const BatchOverlay* suffix,
                     Frame* frame, int64_t mult) {
  if (overflowed_) return;
  if (term_idx == cr.rule.body.size()) {
    EmitHead(cr, rule_idx, *frame, mult, action.is_delete);
    return;
  }
  if (term_idx == delta_term) {
    JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, suffix,
            frame, mult);
    return;
  }
  const CompiledTerm& term = cr.body[term_idx];
  if (term.kind == CompiledTerm::Kind::kAtom) {
    const CompiledAtom& atom = term.atom;
    const Table* tptr = term_tables_[rule_idx][term_idx];
    if (tptr == nullptr) return;  // event atom: only ever the delta
    const Table& table = *tptr;
    const AtomProbePlan* probe =
        plans != nullptr ? &(*plans)[term_idx] : nullptr;
    const bool same_pred =
        probe != nullptr
            ? probe->same_pred_as_delta
            : std::get<Atom>(cr.rule.body[term_idx]).predicate ==
                  std::get<Atom>(cr.rule.body[delta_term]).predicate;
    const bool before_delta = term_idx < delta_term;

    // Semi-naive visibility for self-join atoms. Serial mode: the store is
    // pre-action, so atoms before the delta position (which must see the
    // post-action state) adjust matches of the action tuple itself. Batched
    // mode: the store is post-batch, so matches of any tuple the batch
    // touched subtract the suffix overlay (the summed effects of this and
    // all later actions), which reconstructs the pre-action store; atoms
    // before the delta add the action's own effect back on top.
    bool synthetic_needed = suffix == nullptr && before_delta && same_pred &&
                            !action.is_delete &&
                            table.CountOf(action.fields) == 0;

    // One candidate row, shared by the probe and scan paths. The shared
    // undo stack (restored to the saved mark after each candidate — one bit
    // clear per newly bound slot) replaces a per-call vector, so recursing
    // through the body allocates nothing.
    auto consider = [&](const ValueList& fields, int64_t count) {
      ++stats_.join_probes;
      if (same_pred) {
        if (suffix != nullptr) count -= suffix->Net(fields);
        if (before_delta && fields == action.fields) {
          count += action.is_delete ? -action.mult : action.mult;
        }
        if (count <= 0) return;
      }
      const size_t mark = undo_stack_.size();
      if (MatchAtom(atom, fields, frame, &undo_stack_)) {
        JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, suffix,
                frame, mult * count);
        while (undo_stack_.size() > mark) {
          frame->Unset(undo_stack_.back());
          undo_stack_.pop_back();
        }
      }
    };

    if (probe != nullptr && probe->broadcast) {
      // Planner-proven broadcast join: only the location is bound, which
      // every row of a node-local table matches — full iteration is the
      // optimal plan, not a fallback.
      ++stats_.broadcast_probes;
      for (Table::RowHandle h : table.OrderedView()) {
        const Table::Row& row = table.Deref(h);
        consider(row.fields, row.count);
      }
    } else if (probe != nullptr && probe->index_id >= 0) {
      // All bound positions are constants or bound slots by construction
      // of the plan; build the probe key directly from the frame. An
      // unbound slot here would mean PlanJoinIndexes diverged from
      // JoinRec's binding order — fail loud (as the old name-keyed at()
      // lookup did) rather than silently probing with a stale slot value.
      // probe_key_ is shared scratch: Probe consumes it before recursion
      // can refill it (deeper levels only run inside `consider`, after the
      // probe answered).
      probe_key_.clear();
      for (int p : probe->bound_positions) {
        const SlotArg& arg = atom.args[static_cast<size_t>(p)];
        if (!arg.is_const() && !frame->IsBound(arg.slot)) {
          NoteEvalError(Status::RuntimeError(
              "internal: planner-proven probe slot for " + arg.name +
              " is unbound in rule " + cr.rule.name));
          return;
        }
        probe_key_.push_back(arg.is_const() ? arg.constant
                                            : frame->Get(arg.slot));
      }
      ++stats_.index_probes;
      const std::vector<Table::RowHandle>* rows =
          table.Probe(probe->index_id, probe_key_);
      if (rows != nullptr) {
        for (Table::RowHandle h : *rows) {
          const Table::Row& row = table.Deref(h);
          consider(row.fields, row.count);
        }
      }
    } else {
      ++stats_.index_scan_fallbacks;
      for (Table::RowHandle h : table.OrderedView()) {
        const Table::Row& row = table.Deref(h);
        consider(row.fields, row.count);
      }
    }
    if (same_pred && suffix != nullptr) {
      // Synthetic candidates: tuples this batch touched that are absent
      // from the post-batch store (inserted then displaced, or deleted by a
      // later action) but visible to this action's serial-mode evaluation.
      // `consider` re-applies the overlay, so pass a zero store count.
      for (const ValueList* fields : suffix->absent) {
        consider(*fields, 0);
      }
    } else if (synthetic_needed) {
      const size_t mark = undo_stack_.size();
      if (MatchAtom(atom, action.fields, frame, &undo_stack_)) {
        JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, suffix,
                frame, mult * action.mult);
        while (undo_stack_.size() > mark) {
          frame->Unset(undo_stack_.back());
          undo_stack_.pop_back();
        }
      }
    }
    return;
  }
  if (term.kind == CompiledTerm::Kind::kAssign) {
    Result<Value> v = Eval(term.expr, *frame);
    if (!v.ok()) {
      NoteEvalError(v.status());
      return;
    }
    if (frame->IsBound(term.assign_slot)) return;  // rebinding conflict: prune
    frame->Set(term.assign_slot, std::move(v).value());
    JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, suffix,
            frame, mult);
    frame->Unset(term.assign_slot);
    return;
  }
  Result<Value> v = Eval(term.expr, *frame);  // selection
  if (!v.ok()) {
    NoteEvalError(v.status());
    return;
  }
  if (v.value().Truthy()) {
    JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, suffix,
            frame, mult);
  }
}

void Engine::EmitHead(const CompiledRule& cr, size_t rule_idx,
                      const Frame& frame, int64_t mult, bool is_delete) {
  if (cr.has_agg) {
    HandleAggContribution(cr, rule_idx, frame, mult, is_delete);
    return;
  }
  if (cr.head_is_event && is_delete) return;  // no event retraction

  auto eval_head = [&]() -> Result<ValueList> {
    ValueList out = AcquireList();
    out.reserve(cr.head_exprs.size());
    for (const CompiledExpr& e : cr.head_exprs) {
      NT_ASSIGN_OR_RETURN(Value v, Eval(e, frame));
      out.push_back(std::move(v));
    }
    return out;
  };
  Result<ValueList> fields = eval_head();
  if (!fields.ok()) {
    NoteEvalError(fields.status());
    return;
  }
  if (fields->empty() || !(*fields)[0].is_address()) {
    NoteEvalError(Status::RuntimeError(
        "rule " + cr.rule.name + ": head location is not an address"));
    return;
  }
  ++stats_.rule_firings;
  NodeId dst = (*fields)[0].as_address();
  if (dst == id_) {
    EnqueueLocal({cr.rule.head.predicate, std::move(fields).value(), mult,
                  is_delete});
    return;
  }
  ShipRemote(dst, Tuple(cr.rule.head.predicate, std::move(fields).value()),
             mult, is_delete);
}

void Engine::ShipRemote(NodeId dst, Tuple tuple, int64_t mult,
                        bool is_delete) {
  if (suppress_shipping_) return;
  if (batching_) {
    // Per-destination buffering happens directly in a pooled simulator
    // frame: the batch entry is built in place in the frame's arena, so
    // nothing is copied again at flush time.
    uint32_t& slot = outbox_[dst];
    if (slot == 0) {
      net::Simulator::FrameRef f = sim_->AcquireFrame();
      net::Message& m = sim_->FrameMessage(f);
      m.src = id_;
      m.dst = dst;
      m.channel = tuple_channel_;
      slot = f + 1;
      outbox_order_.push_back(dst);
    }
    sim_->FrameMessage(slot - 1).batch.push_back(
        {std::move(tuple), is_delete, mult});
    return;
  }
  net::Simulator::FrameRef f = sim_->AcquireFrame();
  net::Message& m = sim_->FrameMessage(f);
  m.src = id_;
  m.dst = dst;
  m.channel = tuple_channel_;
  m.payload = std::move(tuple);
  m.is_delete = is_delete;
  m.multiplicity = mult;
  ++stats_.messages_sent;
  ++stats_.tuples_shipped;
  if (!sim_->SendFrame(f)) ++stats_.send_failures;
}

void Engine::FlushOutbox() {
  for (NodeId dst : outbox_order_) {
    net::Simulator::FrameRef f = *outbox_.Find(dst) - 1;
    net::Message& msg = sim_->FrameMessage(f);
    const size_t n = msg.batch.size();
    if (n == 1) {
      // Single delta: ship the legacy frame (identical wire size to serial
      // mode).
      msg.payload = std::move(msg.batch[0].payload);
      msg.is_delete = msg.batch[0].is_delete;
      msg.multiplicity = msg.batch[0].multiplicity;
      msg.batch.clear();
    } else {
      ++stats_.batch_messages_sent;
    }
    ++stats_.messages_sent;
    stats_.tuples_shipped += n;
    if (!sim_->SendFrame(f)) stats_.send_failures += n;
  }
  outbox_.Clear();
  outbox_order_.clear();
}

void Engine::HandleAggContribution(const CompiledRule& cr, size_t rule_idx,
                                   const Frame& frame, int64_t mult,
                                   bool is_delete) {
  // Group key: head args except the aggregate, in order. Built in the
  // shared (rule, group) lookup key so the agg-state and dirty-set hit
  // paths below run find-first against it — no pair/ValueList copies per
  // firing (RecomputeAggGroup never re-enters this function, so the
  // scratch cannot be clobbered mid-use).
  agg_key_scratch_.first = rule_idx;
  ValueList& group = agg_key_scratch_.second;
  group.clear();
  for (size_t i = 0; i < cr.head_exprs.size(); ++i) {
    if (i == cr.agg_arg_index) continue;
    Result<Value> v = Eval(cr.head_exprs[i], frame);
    if (!v.ok()) {
      NoteEvalError(v.status());
      return;
    }
    group.push_back(std::move(v).value());
  }
  // Aggregated value (a_count<*> has no expression and contributes 1).
  Value agg_value = Value::Int(1);
  if (cr.head_exprs[cr.agg_arg_index].valid()) {
    Result<Value> v = Eval(cr.head_exprs[cr.agg_arg_index], frame);
    if (!v.ok()) {
      NoteEvalError(v.status());
      return;
    }
    agg_value = std::move(v).value();
  }
  // Input VIDs for provenance, built in reusable scratch. AggGroup wraps
  // them in a Value::List only when the contribution is brand new; repeat
  // derivations (including re-inserts after a retraction) compare against
  // the stored list in place.
  const ValueList* vids = nullptr;
  if (prog_->provenance) {
    agg_vid_scratch_.clear();
    for (size_t pos : cr.atom_positions) {
      const Atom& atom = std::get<Atom>(cr.rule.body[pos]);
      Result<Vid> vid = AtomVid(atom.predicate, cr.body[pos].atom, frame);
      if (!vid.ok()) {
        NoteEvalError(vid.status());
        return;
      }
      agg_vid_scratch_.push_back(VidToValue(*vid));
    }
    vids = &agg_vid_scratch_;
  }
  ++stats_.rule_firings;
  auto it = agg_state_.find(agg_key_scratch_);
  if (it == agg_state_.end()) {
    it = agg_state_.emplace(std::make_pair(rule_idx, group), AggGroupState{})
             .first;
  }
  AggGroupState& state = it->second;
  state.group.Adjust(agg_value, vids, is_delete ? -mult : mult);
  if (batching_) {
    // Defer: the batch recomputes each touched group's output once, so a
    // cascade that adjusts a group N times pays one recomputation (and
    // enqueues no intermediate outputs — the fixpoint is unchanged, only
    // the transient churn). The per-state flag replaces a keyed dirty set:
    // states are unique per (rule, group), so marking the state is
    // equivalent and skips the group-key copy.
    if (!state.dirty) {
      state.dirty = true;
      dirty_aggs_.push_back({rule_idx, &it->first.second, &state});
    }
    return;
  }
  RecomputeAggGroup(cr, it->first.second, &state);
}

void Engine::FlushDirtyAggregates() {
  for (const DirtyAgg& d : dirty_aggs_) {
    d.state->dirty = false;
    RecomputeAggGroup(prog_->rules[d.rule_idx], *d.group, d.state);
  }
  dirty_aggs_.clear();
}

void Engine::RecomputeAggGroup(const CompiledRule& cr,
                               const ValueList& group_key,
                               AggGroupState* state_ptr) {
  ++stats_.agg_recomputes;
  AggGroupState& state = *state_ptr;
  std::optional<Value> output = state.group.Output(cr.agg_fn);

  // Desired provenance tuples for the (new) output, built in scratch whose
  // tuple field buffers come from the list pool (and return to it when the
  // state's previous provenance is retired below).
  std::vector<Tuple>& desired_prov = agg_prov_scratch_;
  desired_prov.clear();
  ValueList new_fields = AcquireList();
  if (output) {
    new_fields = group_key;
    new_fields.insert(new_fields.begin() + static_cast<long>(cr.agg_arg_index),
                      *output);
    if (prog_->provenance) {
      Vid head_vid = TupleVid(cr.rule.head.predicate, new_fields);
      state.group.Winners(cr.agg_fn, &winners_scratch_);
      for (const AggGroup::ContribKey& win : winners_scratch_) {
        if (!win.vids.is_list()) continue;
        winner_vids_scratch_.clear();
        for (const Value& v : win.vids.as_list()) {
          winner_vids_scratch_.push_back(ValueToVid(v));
        }
        Vid rid = RuleExecRid(cr.rule.name, id_, winner_vids_scratch_);
        ValueList rx = AcquireList();
        rx.push_back(Value::Address(id_));
        rx.push_back(VidToValue(rid));
        rx.push_back(Value::Str(cr.rule.name));
        rx.push_back(win.vids);
        desired_prov.emplace_back(provenance::kRuleExecTable, std::move(rx));
        ValueList pv = AcquireList();
        pv.push_back(Value::Address(id_));
        pv.push_back(VidToValue(head_vid));
        pv.push_back(VidToValue(rid));
        pv.push_back(Value::Address(id_));
        pv.push_back(Value::Int(0));
        desired_prov.emplace_back(provenance::kProvTable, std::move(pv));
      }
    }
  }

  // Retract stale provenance, emit fresh provenance (set difference).
  auto contains = [](const std::vector<Tuple>& xs, const Tuple& t) {
    for (const Tuple& x : xs) {
      if (x == t) return true;
    }
    return false;
  };
  for (const Tuple& old : state.last_prov) {
    if (!contains(desired_prov, old)) {
      EnqueueLocal({old.name(), CopyToPooled(old.fields()), 1,
                    /*is_delete=*/true});
    }
  }
  for (const Tuple& fresh : desired_prov) {
    if (!contains(state.last_prov, fresh)) {
      EnqueueLocal({fresh.name(), CopyToPooled(fresh.fields()), 1,
                    /*is_delete=*/false});
    }
  }
  // Retire the old provenance set: recycle its field buffers, then swap the
  // vectors so both the tuple storage and the scratch capacity cycle.
  for (Tuple& t : state.last_prov) ReleaseList(std::move(t.mutable_fields()));
  state.last_prov.swap(desired_prov);
  desired_prov.clear();

  // Output maintenance via key replacement on the head table.
  if (!output) {
    ReleaseList(std::move(new_fields));
    if (state.has_output) {
      EnqueueLocal({cr.rule.head.predicate, CopyToPooled(state.last_output), 1,
                    /*is_delete=*/true});
      state.has_output = false;
      state.last_output.clear();
    }
    return;
  }
  if (state.has_output && state.last_output == new_fields) {
    ReleaseList(std::move(new_fields));
    return;
  }
  EnqueueLocal({cr.rule.head.predicate, CopyToPooled(new_fields), 1,
                /*is_delete=*/false});
  state.has_output = true;
  // Swap so the displaced last_output buffer goes back to the pool instead
  // of being freed by a move-assign.
  std::swap(state.last_output, new_fields);
  ReleaseList(std::move(new_fields));
}

void Engine::RegisterVid(const std::string& name, const ValueList& fields) {
  Vid vid = TupleVid(name, fields);
  vid_interner_.Intern(vid);
  // Re-derivations re-register the same VID constantly; try_emplace
  // constructs the Tuple only when the VID is new (one lookup, no copy on
  // the hit path).
  vid_index_.try_emplace(vid, name, fields);
}

void Engine::NoteEvalError(const Status& status) {
  ++stats_.eval_errors;
  last_error_ = status.ToString();
}

const Table* Engine::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<Tuple> Engine::TableContents(const std::string& name) const {
  const Table* table = GetTable(name);
  return table == nullptr ? std::vector<Tuple>{} : table->Contents();
}

bool Engine::HasTuple(const Tuple& tuple) const { return CountOf(tuple) > 0; }

int64_t Engine::CountOf(const Tuple& tuple) const {
  const Table* table = GetTable(tuple.name());
  return table == nullptr ? 0 : table->CountOf(tuple.fields());
}

size_t Engine::TotalTuples(bool provenance_only) const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) {
    if (provenance_only && !provenance::IsProvenancePredicate(name)) continue;
    total += table.size();
  }
  return total;
}

const Tuple* Engine::FindTupleByVid(Vid vid) const {
  auto it = vid_index_.find(vid);
  return it == vid_index_.end() ? nullptr : &it->second;
}

EngineCheckpoint Engine::TakeCheckpoint() const {
  EngineCheckpoint ckpt;
  ckpt.taken_at = sim_->now();
  for (const auto& [name, table] : tables_) {
    std::vector<EngineCheckpoint::TableRow>& rows = ckpt.tables[name];
    for (Table::RowHandle h : table.OrderedView()) {
      const Table::Row& row = table.Deref(h);
      rows.push_back({row.fields, row.count});
    }
  }
  for (const auto& [key, meta] : soft_gen_) {
    ckpt.soft.push_back({key.first, key.second, meta.gen, meta.deadline});
  }
  for (const auto& [name, order] : fifo_) {
    ckpt.fifo[name].assign(order.begin(), order.end());
  }
  ckpt.pending_evictions = pending_evictions_;
  // agg_state_ is a hash map (never iterated on evaluation paths); sort the
  // serialized entries so equal states checkpoint identically.
  std::vector<std::pair<AggGroup::ContribKey, int64_t>> live;
  for (const auto& [key, state] : agg_state_) {
    EngineCheckpoint::AggEntry e;
    e.rule_idx = key.first;
    e.group = key.second;
    state.group.LiveContributions(&live);
    e.contribs.reserve(live.size());
    for (const auto& [k, count] : live) {
      e.contribs.push_back({k.value, k.vids, count});
    }
    e.has_output = state.has_output;
    e.last_output = state.last_output;
    e.last_prov = state.last_prov;
    ckpt.aggregates.push_back(std::move(e));
  }
  std::sort(ckpt.aggregates.begin(), ckpt.aggregates.end(),
            [](const EngineCheckpoint::AggEntry& a,
               const EngineCheckpoint::AggEntry& b) {
              if (a.rule_idx != b.rule_idx) return a.rule_idx < b.rule_idx;
              return ValueListLess{}(a.group, b.group);
            });
  ckpt.interned_vids.reserve(vid_interner_.size());
  for (size_t h = 0; h < vid_interner_.size(); ++h) {
    ckpt.interned_vids.push_back(
        vid_interner_.ToVid(static_cast<provenance::VidInterner::Handle>(h)));
  }
  ckpt.vid_index.reserve(vid_index_.size());
  for (const auto& [vid, tuple] : vid_index_) {
    ckpt.vid_index.emplace_back(vid, tuple);
  }
  std::sort(ckpt.vid_index.begin(), ckpt.vid_index.end(),
            [](const std::pair<Vid, Tuple>& a, const std::pair<Vid, Tuple>& b) {
              return a.first < b.first;
            });
  return ckpt;
}

void Engine::HaltForCrash() {
  ++restart_epoch_;  // every armed timer closure becomes a no-op
  queue_.clear();
  draining_ = false;
  overflowed_ = false;
  last_error_.clear();
}

void Engine::RestoreCheckpoint(const EngineCheckpoint& ckpt) {
  ++restart_epoch_;
  queue_.clear();
  draining_ = false;
  batching_ = false;
  overflowed_ = false;
  last_error_.clear();
  dirty_aggs_.clear();
  outbox_.Clear();
  outbox_order_.clear();
  // Pre-crash observers (the node's ProvStore among them) reference dead
  // state; the recovery harness attaches fresh ones after this returns.
  observers_.clear();

  // Tables are rebuilt from scratch — term_tables_ holds raw pointers into
  // tables_, so InitTables re-resolves it too. Rows load through the
  // ordinary plan/apply path (correct for both bag and key-replacement
  // tables) but fire no triggers, observers, or VID registration: derived
  // state is restored as data, not re-derived.
  InitTables();
  for (const auto& [name, rows] : ckpt.tables) {
    auto it = tables_.find(name);
    if (it == tables_.end()) continue;
    Table& table = it->second;
    for (const EngineCheckpoint::TableRow& row : rows) {
      for (const TableAction& a : table.PlanInsert(row.fields, row.count)) {
        table.Apply(a);
      }
    }
  }

  soft_gen_.clear();
  fifo_.clear();
  pending_evictions_ = ckpt.pending_evictions;
  for (const EngineCheckpoint::SoftEntry& e : ckpt.soft) {
    soft_gen_[{e.table, e.key}] = SoftMeta{e.gen, e.deadline};
  }
  for (const auto& [name, order] : ckpt.fifo) {
    fifo_[name].assign(order.begin(), order.end());
  }
  // Re-arm expiry timers at their absolute deadlines. ScheduleAt clamps
  // past times to now, so an entry whose lifetime elapsed while the node
  // was down is retracted immediately after restart — expiry order (by
  // original deadline, then schedule order) is preserved.
  for (const EngineCheckpoint::SoftEntry& e : ckpt.soft) {
    if (e.deadline == 0) continue;
    const Table* t = GetTable(e.table);
    if (t == nullptr || t->info().lifetime_secs < 0) continue;
    ScheduleExpiry(e.table, e.key, e.gen, e.deadline);
  }

  agg_state_.clear();
  for (const EngineCheckpoint::AggEntry& e : ckpt.aggregates) {
    AggGroupState state;
    for (const EngineCheckpoint::AggContribution& c : e.contribs) {
      state.group.Adjust(c.value, c.vids, c.count);
    }
    state.has_output = e.has_output;
    state.last_output = e.last_output;
    state.last_prov = e.last_prov;
    agg_state_.emplace(std::make_pair(e.rule_idx, e.group), std::move(state));
  }

  vid_interner_ = provenance::VidInterner();
  for (Vid vid : ckpt.interned_vids) vid_interner_.Intern(vid);
  vid_index_.clear();
  for (const auto& [vid, tuple] : ckpt.vid_index) {
    vid_index_.emplace(vid, tuple);
  }

  SchedulePeriodics();
}

void Engine::DropRemoteDerivations() {
  // Suppress shipping: the survivors already scrubbed this node's exports
  // when it crashed (DropDerivationsFrom), so re-shipping the retractions
  // here would deliver unmatched -1 deltas that clamp against — and eat —
  // same-fields sibling derivations at the receiver.
  ScrubGroundedRows(/*any_remote=*/true, /*origin=*/0,
                    /*ship_retractions=*/false);
}

void Engine::DropDerivationsFrom(NodeId origin) {
  ScrubGroundedRows(/*any_remote=*/false, origin, /*ship_retractions=*/true);
}

void Engine::ScrubGroundedRows(bool any_remote, NodeId origin,
                               bool ship_retractions) {
  if (!prog_->provenance) return;
  const Table* prov = GetTable(provenance::kProvTable);
  if (prov == nullptr) return;
  // Snapshot the remote-grounded prov rows first: the deletes below cascade
  // through the rules and mutate the table while draining.
  struct Victim {
    ValueList prov_fields;
    int64_t prov_count;
    std::string target_name;
    ValueList target_fields;
  };
  std::vector<Victim> victims;
  for (Table::RowHandle h : prov->OrderedView()) {
    const Table::Row& row = prov->Deref(h);
    // prov(@Loc, VID, RID, RLoc, Maybe): RLoc is where the derivation's
    // rule executed. RLoc == id_ means locally grounded — keep.
    if (row.fields.size() < 4 || !row.fields[3].is_address()) continue;
    const NodeId rloc = row.fields[3].as_address();
    if (rloc == id_) continue;
    if (!any_remote && rloc != origin) continue;
    Victim v;
    v.prov_fields = row.fields;
    v.prov_count = row.count;
    const Tuple* target = FindTupleByVid(ValueToVid(row.fields[1]));
    if (target != nullptr) {
      v.target_name = target->name();
      v.target_fields = target->fields();
    }
    victims.push_back(std::move(v));
  }
  const bool saved_suppress = suppress_shipping_;
  suppress_shipping_ = !ship_retractions;
  for (Victim& v : victims) {
    // The prov row itself arrived as shipped deltas from the remote
    // deriver; no local rule maintains it, so delete it directly. Then
    // retract the remote-grounded share of the target tuple (its local
    // derivations, if any, stay) — this cascades through the node's own
    // rules, retracting downstream derivations.
    EnqueueLocal({provenance::kProvTable, std::move(v.prov_fields),
                  v.prov_count, /*is_delete=*/true});
    if (!v.target_name.empty()) {
      EnqueueLocal({v.target_name, std::move(v.target_fields), v.prov_count,
                    /*is_delete=*/true});
    }
  }
  DrainQueue();
  suppress_shipping_ = saved_suppress;
}

}  // namespace runtime
}  // namespace nettrails
