#include "src/runtime/engine.h"

#include <cassert>

#include "src/common/hash.h"
#include "src/provenance/rewrite.h"
#include "src/runtime/builtins.h"

namespace nettrails {
namespace runtime {

namespace {

using ndlog::Atom;

/// Evaluates all fields of an atom under full bindings (used to compute the
/// concrete tuple an atom matched, e.g. for aggregate provenance VIDs).
Result<ValueList> AtomFields(const Atom& atom, const Bindings& bindings) {
  ValueList out;
  out.reserve(atom.args.size());
  for (const ndlog::AtomArg& arg : atom.args) {
    NT_ASSIGN_OR_RETURN(Value v, Eval(*arg.expr, bindings));
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace

Engine::Engine(net::Simulator* sim, NodeId id, CompiledProgramPtr prog,
               EngineOptions opts)
    : sim_(sim), id_(id), prog_(std::move(prog)), opts_(opts) {
  if (prog_->provenance) opts_.track_vid_index = true;
  for (const auto& [name, info] : prog_->tables) {
    if (info.materialized) tables_.emplace(name, Table(info));
  }
  if (opts_.use_secondary_indexes) {
    // Registration order must match the compiled index ids (AddIndex
    // returns ids sequentially and the planner dedups per table).
    for (const auto& [name, specs] : prog_->table_indexes) {
      auto it = tables_.find(name);
      if (it == tables_.end()) continue;
      for (const std::vector<int>& positions : specs) {
        it->second.AddIndex(positions);
      }
    }
  }
  sim_->RegisterHandler(id_, kTupleChannel,
                        [this](const net::Message& msg) { OnTupleMessage(msg); });
  SchedulePeriodics();
}

void Engine::SchedulePeriodics() {
  for (const PeriodicStream& stream : prog_->periodic_streams) {
    sim_->ScheduleAfter(
        static_cast<net::Time>(stream.period_secs) * net::kSecond,
        [this, stream]() { FirePeriodic(stream, 1); });
  }
}

void Engine::FirePeriodic(PeriodicStream stream, int64_t iteration) {
  ++stats_.periodic_firings;
  // Fresh event id per firing, stable across runs (no wall clock).
  Hasher h;
  h.AddU64(id_);
  h.AddU64(static_cast<uint64_t>(stream.period_secs));
  h.AddU64(static_cast<uint64_t>(iteration));
  Value eid = Value::Int(static_cast<int64_t>(h.Digest() >> 1));
  EnqueueLocal({kPeriodicPredicate,
                {Value::Address(id_), eid, Value::Int(stream.period_secs),
                 Value::Int(stream.count)},
                1,
                /*is_delete=*/false});
  DrainQueue();
  if (iteration < stream.count) {
    sim_->ScheduleAfter(
        static_cast<net::Time>(stream.period_secs) * net::kSecond,
        [this, stream, iteration]() { FirePeriodic(stream, iteration + 1); });
  }
}

Status Engine::Insert(const Tuple& tuple) {
  if (!tuple.HasLocation() || tuple.Location() != id_) {
    return Status::InvalidArgument("tuple " + tuple.ToString() +
                                   " is not located at node " +
                                   std::to_string(id_));
  }
  auto it = tables_.find(tuple.name());
  if (it == tables_.end()) {
    return Status::NotFound("no materialized table " + tuple.name());
  }
  EnqueueLocal({tuple.name(), tuple.fields(), 1, /*is_delete=*/false});
  DrainQueue();
  return Status::OK();
}

Status Engine::Delete(const Tuple& tuple) {
  if (!tuple.HasLocation() || tuple.Location() != id_) {
    return Status::InvalidArgument("tuple " + tuple.ToString() +
                                   " is not located at node " +
                                   std::to_string(id_));
  }
  auto it = tables_.find(tuple.name());
  if (it == tables_.end()) {
    return Status::NotFound("no materialized table " + tuple.name());
  }
  // External deletion retracts the tuple entirely (all external
  // derivations); base tuples normally have count 1.
  int64_t count = it->second.CountOf(tuple.fields());
  if (count == 0) {
    return Status::NotFound("tuple " + tuple.ToString() + " not present");
  }
  EnqueueLocal({tuple.name(), tuple.fields(), count, /*is_delete=*/true});
  DrainQueue();
  return Status::OK();
}

Status Engine::InsertEvent(const Tuple& tuple) {
  if (!tuple.HasLocation() || tuple.Location() != id_) {
    return Status::InvalidArgument("event " + tuple.ToString() +
                                   " is not located at node " +
                                   std::to_string(id_));
  }
  if (tables_.count(tuple.name())) {
    return Status::InvalidArgument("table " + tuple.name() +
                                   " is materialized; use Insert");
  }
  EnqueueLocal({tuple.name(), tuple.fields(), 1, /*is_delete=*/false});
  DrainQueue();
  return Status::OK();
}

void Engine::OnTupleMessage(const net::Message& msg) {
  EnqueueLocal({msg.payload.name(), msg.payload.fields(), msg.multiplicity,
                msg.is_delete});
  DrainQueue();
}

void Engine::EnqueueLocal(Delta delta) {
  ++stats_.deltas_enqueued;
  queue_.push_back(std::move(delta));
}

void Engine::DrainQueue() {
  if (draining_) return;
  draining_ = true;
  actions_this_trigger_ = 0;
  while (!queue_.empty()) {
    Delta delta = std::move(queue_.front());
    queue_.pop_front();
    ProcessDelta(delta);
    if (overflowed_) {
      queue_.clear();
      break;
    }
  }
  draining_ = false;
}

void Engine::ProcessDelta(const Delta& delta) {
  auto it = tables_.find(delta.table);
  if (it == tables_.end()) {
    // Event: fire triggers, register the VID, never store.
    if (delta.is_delete) return;  // events have no retraction
    if (opts_.track_vid_index) {
      RegisterVid(Tuple(delta.table, delta.fields));
    }
    TableAction action{delta.fields, delta.mult, /*is_delete=*/false};
    FireTriggers(delta.table, action);
    return;
  }

  Table& table = it->second;
  if (delta.is_eviction) --pending_evictions_[delta.table];
  std::vector<TableAction> actions =
      delta.is_delete ? table.PlanDelete(delta.fields, delta.mult)
                      : table.PlanInsert(delta.fields, delta.mult);
  for (const TableAction& action : actions) {
    // Rules see the pre-action store; atoms positioned before the delta
    // atom adjust by the action's effect (exact semi-naive maintenance).
    FireTriggers(delta.table, action);
    table.Apply(action);
    if (opts_.track_vid_index && !action.is_delete) {
      RegisterVid(Tuple(delta.table, action.fields));
    }
    for (const ActionObserver& obs : observers_) obs(delta.table, action);
    if (!action.is_delete) HandleSoftState(table, action);
  }
}

void Engine::HandleSoftState(const Table& table, const TableAction& action) {
  const ndlog::TableInfo& info = table.info();
  if (info.lifetime_secs < 0 && info.max_size < 0) return;
  const std::string& name = table.name();
  ValueList key = table.KeyOf(action.fields);
  uint64_t gen = ++soft_gen_[{name, key}];

  if (info.lifetime_secs >= 0) {
    sim_->ScheduleAfter(
        static_cast<net::Time>(info.lifetime_secs) * net::kSecond,
        [this, name, key, gen]() {
          auto git = soft_gen_.find({name, key});
          if (git == soft_gen_.end() || git->second != gen) return;
          const Table* t = GetTable(name);
          if (t == nullptr) return;
          const Table::Row* row = t->FindByKey(key);
          if (row == nullptr) return;
          ++stats_.expirations;
          EnqueueLocal({name, row->fields, row->count, /*is_delete=*/true});
          DrainQueue();
        });
  }

  if (info.max_size >= 0) {
    std::deque<std::pair<ValueList, uint64_t>>& order = fifo_[name];
    order.push_back({key, gen});
    int64_t& pending = pending_evictions_[name];
    while (static_cast<int64_t>(table.size()) - pending > info.max_size &&
           !order.empty()) {
      auto [victim_key, victim_gen] = order.front();
      order.pop_front();
      auto git = soft_gen_.find({name, victim_key});
      if (git == soft_gen_.end() || git->second != victim_gen) {
        continue;  // refreshed or replaced since: a newer entry exists
      }
      const Table::Row* row = table.FindByKey(victim_key);
      if (row == nullptr) continue;
      ++stats_.evictions;
      ++pending;
      Delta evict{name, row->fields, row->count, /*is_delete=*/true};
      evict.is_eviction = true;
      EnqueueLocal(std::move(evict));
    }
  }
}

void Engine::FireTriggers(const std::string& pred, const TableAction& action) {
  if (++actions_this_trigger_ > opts_.max_actions_per_trigger) {
    overflowed_ = true;
    last_error_ = "max_actions_per_trigger exceeded on " + pred;
    return;
  }
  ++stats_.actions_processed;
  auto it = prog_->triggers.find(pred);
  if (it == prog_->triggers.end()) return;
  for (const auto& [rule_idx, term_idx] : it->second) {
    EvalRuleWithDelta(rule_idx, term_idx, action);
  }
}

bool Engine::MatchAtom(const Atom& atom, const ValueList& fields,
                       Bindings* bindings,
                       std::vector<Bindings::iterator>* added) const {
  const size_t undo_mark = added->size();
  auto fail = [&]() {
    while (added->size() > undo_mark) {
      bindings->erase(added->back());
      added->pop_back();
    }
    return false;
  };
  if (atom.args.size() != fields.size()) return fail();
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const ndlog::Expr& e = *atom.args[i].expr;
    if (e.is_const()) {
      if (e.const_value() != fields[i]) return fail();
    } else if (e.is_var()) {
      auto [it, inserted] = bindings->emplace(e.var_name(), fields[i]);
      if (inserted) {
        added->push_back(it);
      } else if (it->second != fields[i]) {
        return fail();
      }
    } else {
      return fail();  // analysis guarantees Var/Const only
    }
  }
  return true;
}

void Engine::EvalRuleWithDelta(size_t rule_idx, size_t delta_term,
                               const TableAction& action) {
  const CompiledRule& cr = prog_->rules[rule_idx];
  const Atom& delta_atom = std::get<Atom>(cr.rule.body[delta_term]);
  Bindings bindings;
  std::vector<Bindings::iterator> added;
  if (!MatchAtom(delta_atom, action.fields, &bindings, &added)) return;
  const std::vector<AtomProbePlan>* plans = nullptr;
  if (opts_.use_secondary_indexes) {
    auto pit = cr.join_plans.find(delta_term);
    if (pit != cr.join_plans.end()) plans = &pit->second;
  }
  JoinRec(cr, rule_idx, 0, delta_term, plans, action, &bindings, action.mult);
}

void Engine::JoinRec(const CompiledRule& cr, size_t rule_idx, size_t term_idx,
                     size_t delta_term, const std::vector<AtomProbePlan>* plans,
                     const TableAction& action, Bindings* bindings,
                     int64_t mult) {
  if (overflowed_) return;
  if (term_idx == cr.rule.body.size()) {
    EmitHead(cr, rule_idx, *bindings, mult, action.is_delete);
    return;
  }
  if (term_idx == delta_term) {
    JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, bindings,
            mult);
    return;
  }
  const ndlog::BodyTerm& term = cr.rule.body[term_idx];
  if (const Atom* atom = std::get_if<Atom>(&term)) {
    auto tit = tables_.find(atom->predicate);
    if (tit == tables_.end()) return;  // event atom: only ever the delta
    const Table& table = tit->second;
    const std::string& delta_pred =
        std::get<Atom>(cr.rule.body[delta_term]).predicate;
    const bool same_pred = atom->predicate == delta_pred;
    const bool before_delta = term_idx < delta_term;

    // Atoms before the delta position see the post-action state; the store
    // is pre-action during evaluation, so adjust matches of the action
    // tuple itself (self-join correctness).
    bool synthetic_needed = before_delta && same_pred && !action.is_delete &&
                            table.CountOf(action.fields) == 0;

    // One candidate row, shared by the probe and scan paths. The undo log
    // restores bindings after each candidate without copying the map.
    std::vector<Bindings::iterator> added;
    auto consider = [&](const Table::Row& row) {
      ++stats_.join_probes;
      int64_t count = row.count;
      if (before_delta && same_pred && row.fields == action.fields) {
        count += action.is_delete ? -action.mult : action.mult;
        if (count <= 0) return;
      }
      if (MatchAtom(*atom, row.fields, bindings, &added)) {
        JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action,
                bindings, mult * count);
        while (!added.empty()) {
          bindings->erase(added.back());
          added.pop_back();
        }
      }
    };

    const AtomProbePlan* probe =
        plans != nullptr ? &(*plans)[term_idx] : nullptr;
    if (probe != nullptr && probe->broadcast) {
      // Planner-proven broadcast join: only the location is bound, which
      // every row of a node-local table matches — full iteration is the
      // optimal plan, not a fallback.
      ++stats_.broadcast_probes;
      for (const auto& [key, row] : table.rows()) consider(row);
    } else if (probe != nullptr && probe->index_id >= 0) {
      // All bound positions are constants or bound variables by
      // construction of the plan; build the probe key directly.
      ValueList key;
      key.reserve(probe->bound_positions.size());
      for (int p : probe->bound_positions) {
        const ndlog::Expr& e = *atom->args[static_cast<size_t>(p)].expr;
        key.push_back(e.is_const() ? e.const_value()
                                   : bindings->at(e.var_name()));
      }
      ++stats_.index_probes;
      const std::vector<Table::RowHandle>* rows =
          table.Probe(probe->index_id, key);
      if (rows != nullptr) {
        for (Table::RowHandle row : *rows) consider(*row);
      }
    } else {
      ++stats_.index_scan_fallbacks;
      for (const auto& [key, row] : table.rows()) consider(row);
    }
    if (synthetic_needed) {
      if (MatchAtom(*atom, action.fields, bindings, &added)) {
        JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action,
                bindings, mult * action.mult);
        while (!added.empty()) {
          bindings->erase(added.back());
          added.pop_back();
        }
      }
    }
    return;
  }
  if (const ndlog::Assign* assign = std::get_if<ndlog::Assign>(&term)) {
    Result<Value> v = Eval(*assign->expr, *bindings);
    if (!v.ok()) {
      NoteEvalError(v.status());
      return;
    }
    auto [it, inserted] = bindings->emplace(assign->var, std::move(v).value());
    if (!inserted) return;  // rebinding conflict: prune
    JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, bindings,
            mult);
    bindings->erase(assign->var);
    return;
  }
  const ndlog::Select& select = std::get<ndlog::Select>(term);
  Result<Value> v = Eval(*select.expr, *bindings);
  if (!v.ok()) {
    NoteEvalError(v.status());
    return;
  }
  if (v.value().Truthy()) {
    JoinRec(cr, rule_idx, term_idx + 1, delta_term, plans, action, bindings,
            mult);
  }
}

void Engine::EmitHead(const CompiledRule& cr, size_t rule_idx,
                      const Bindings& bindings, int64_t mult, bool is_delete) {
  if (cr.has_agg) {
    HandleAggContribution(cr, rule_idx, bindings, mult, is_delete);
    return;
  }
  if (cr.head_is_event && is_delete) return;  // no event retraction

  Result<ValueList> fields = AtomFields(cr.rule.head, bindings);
  if (!fields.ok()) {
    NoteEvalError(fields.status());
    return;
  }
  if (fields->empty() || !(*fields)[0].is_address()) {
    NoteEvalError(Status::RuntimeError(
        "rule " + cr.rule.name + ": head location is not an address"));
    return;
  }
  ++stats_.rule_firings;
  NodeId dst = (*fields)[0].as_address();
  if (dst == id_) {
    EnqueueLocal({cr.rule.head.predicate, std::move(fields).value(), mult,
                  is_delete});
    return;
  }
  net::Message msg;
  msg.src = id_;
  msg.dst = dst;
  msg.channel = kTupleChannel;
  msg.payload = Tuple(cr.rule.head.predicate, std::move(fields).value());
  msg.is_delete = is_delete;
  msg.multiplicity = mult;
  ++stats_.messages_sent;
  if (!sim_->Send(std::move(msg))) ++stats_.send_failures;
}

void Engine::HandleAggContribution(const CompiledRule& cr, size_t rule_idx,
                                   const Bindings& bindings, int64_t mult,
                                   bool is_delete) {
  // Group key: head args except the aggregate, in order.
  ValueList group;
  for (size_t i = 0; i < cr.rule.head.args.size(); ++i) {
    if (i == cr.agg_arg_index) continue;
    Result<Value> v = Eval(*cr.rule.head.args[i].expr, bindings);
    if (!v.ok()) {
      NoteEvalError(v.status());
      return;
    }
    group.push_back(std::move(v).value());
  }
  // Aggregated value (a_count<*> contributes 1).
  Value agg_value = Value::Int(1);
  if (cr.rule.head.args[cr.agg_arg_index].expr) {
    Result<Value> v =
        Eval(*cr.rule.head.args[cr.agg_arg_index].expr, bindings);
    if (!v.ok()) {
      NoteEvalError(v.status());
      return;
    }
    agg_value = std::move(v).value();
  }
  // Input VIDs for provenance.
  Value vids = Value::Null();
  if (prog_->provenance) {
    ValueList vid_list;
    for (size_t pos : cr.atom_positions) {
      const Atom& atom = std::get<Atom>(cr.rule.body[pos]);
      Result<ValueList> fields = AtomFields(atom, bindings);
      if (!fields.ok()) {
        NoteEvalError(fields.status());
        return;
      }
      vid_list.push_back(
          VidToValue(TupleVid(atom.predicate, std::move(fields).value())));
    }
    vids = Value::List(std::move(vid_list));
  }
  ++stats_.rule_firings;
  AggGroupState& state = agg_state_[{rule_idx, group}];
  state.group.Adjust(agg_value, vids, is_delete ? -mult : mult);
  RecomputeAggGroup(cr, rule_idx, group);
}

void Engine::RecomputeAggGroup(const CompiledRule& cr, size_t rule_idx,
                               const ValueList& group_key) {
  AggGroupState& state = agg_state_[{rule_idx, group_key}];
  std::optional<Value> output = state.group.Output(cr.agg_fn);

  // Desired provenance tuples for the (new) output.
  std::vector<Tuple> desired_prov;
  ValueList new_fields;
  if (output) {
    new_fields = group_key;
    new_fields.insert(new_fields.begin() + static_cast<long>(cr.agg_arg_index),
                      *output);
    if (prog_->provenance) {
      Vid head_vid = TupleVid(cr.rule.head.predicate, new_fields);
      for (const AggGroup::ContribKey& win : state.group.Winners(cr.agg_fn)) {
        if (!win.vids.is_list()) continue;
        std::vector<Vid> vids;
        for (const Value& v : win.vids.as_list()) {
          vids.push_back(ValueToVid(v));
        }
        Vid rid = RuleExecRid(cr.rule.name, id_, vids);
        desired_prov.emplace_back(
            provenance::kRuleExecTable,
            ValueList{Value::Address(id_), VidToValue(rid),
                      Value::Str(cr.rule.name), win.vids});
        desired_prov.emplace_back(
            provenance::kProvTable,
            ValueList{Value::Address(id_), VidToValue(head_vid),
                      VidToValue(rid), Value::Address(id_), Value::Int(0)});
      }
    }
  }

  // Retract stale provenance, emit fresh provenance (set difference).
  auto contains = [](const std::vector<Tuple>& xs, const Tuple& t) {
    for (const Tuple& x : xs) {
      if (x == t) return true;
    }
    return false;
  };
  for (const Tuple& old : state.last_prov) {
    if (!contains(desired_prov, old)) {
      EnqueueLocal({old.name(), old.fields(), 1, /*is_delete=*/true});
    }
  }
  for (const Tuple& fresh : desired_prov) {
    if (!contains(state.last_prov, fresh)) {
      EnqueueLocal({fresh.name(), fresh.fields(), 1, /*is_delete=*/false});
    }
  }
  state.last_prov = std::move(desired_prov);

  // Output maintenance via key replacement on the head table.
  if (!output) {
    if (state.has_output) {
      EnqueueLocal({cr.rule.head.predicate, state.last_output, 1,
                    /*is_delete=*/true});
      state.has_output = false;
      state.last_output.clear();
    }
    return;
  }
  if (state.has_output && state.last_output == new_fields) return;
  EnqueueLocal({cr.rule.head.predicate, new_fields, 1, /*is_delete=*/false});
  state.has_output = true;
  state.last_output = std::move(new_fields);
}

void Engine::RegisterVid(const Tuple& tuple) {
  vid_index_.emplace(tuple.Hash(), tuple);
}

void Engine::NoteEvalError(const Status& status) {
  ++stats_.eval_errors;
  last_error_ = status.ToString();
}

const Table* Engine::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<Tuple> Engine::TableContents(const std::string& name) const {
  const Table* table = GetTable(name);
  return table == nullptr ? std::vector<Tuple>{} : table->Contents();
}

bool Engine::HasTuple(const Tuple& tuple) const { return CountOf(tuple) > 0; }

int64_t Engine::CountOf(const Tuple& tuple) const {
  const Table* table = GetTable(tuple.name());
  return table == nullptr ? 0 : table->CountOf(tuple.fields());
}

size_t Engine::TotalTuples(bool provenance_only) const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) {
    if (provenance_only && !provenance::IsProvenancePredicate(name)) continue;
    total += table.size();
  }
  return total;
}

const Tuple* Engine::FindTupleByVid(Vid vid) const {
  auto it = vid_index_.find(vid);
  return it == vid_index_.end() ? nullptr : &it->second;
}

}  // namespace runtime
}  // namespace nettrails
