#include "src/runtime/builtins.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>

#include "src/common/hash.h"

namespace nettrails {
namespace runtime {

namespace {

/// Digest of name(values...) over a contiguous Value range. Byte-identical
/// to Tuple::Hash by construction (same AddValueRange layout) — the
/// provenance graph's declaratively computed VIDs (f_mkvid) and the
/// engine's (TupleVid) both come from here, and tests pin all three
/// against each other. List values reuse the hash cached in their shared
/// rep.
Vid DigestTuple(const std::string& name, const Value* begin,
                const Value* end) {
  Hasher h;
  h.AddString(name);
  AddValueRange(&h, begin, end);
  return h.Digest();
}

Status ArityError(const char* fn, size_t want, size_t got) {
  return Status::TypeError(std::string(fn) + " expects " +
                           std::to_string(want) + " argument(s), got " +
                           std::to_string(got));
}

Status WantList(const char* fn, const Value& v) {
  return Status::TypeError(std::string(fn) + " expects a list, got " +
                           KindName(v.kind()));
}

Result<Value> FList(const std::vector<Value>& args) {
  return Value::List(ValueList(args.begin(), args.end()));
}

Result<Value> FEmpty(const std::vector<Value>& args) {
  if (!args.empty()) return ArityError("f_empty", 0, args.size());
  return Value::List({});
}

Result<Value> FAppend(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_append", 2, args.size());
  if (!args[0].is_list()) return WantList("f_append", args[0]);
  ValueList out = args[0].as_list();
  out.push_back(args[1]);
  return Value::List(std::move(out));
}

Result<Value> FPrepend(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_prepend", 2, args.size());
  if (!args[1].is_list()) return WantList("f_prepend", args[1]);
  ValueList out;
  out.reserve(args[1].as_list().size() + 1);
  out.push_back(args[0]);
  for (const Value& v : args[1].as_list()) out.push_back(v);
  return Value::List(std::move(out));
}

Result<Value> FConcat(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_concat", 2, args.size());
  if (args[0].is_list() && args[1].is_list()) {
    ValueList out = args[0].as_list();
    for (const Value& v : args[1].as_list()) out.push_back(v);
    return Value::List(std::move(out));
  }
  if (args[0].is_string() && args[1].is_string()) {
    return Value::Str(args[0].as_string() + args[1].as_string());
  }
  return Status::TypeError("f_concat expects two lists or two strings");
}

Result<Value> FMember(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_member", 2, args.size());
  if (!args[0].is_list()) return WantList("f_member", args[0]);
  for (const Value& v : args[0].as_list()) {
    if (v == args[1]) return Value::Bool(true);
  }
  return Value::Bool(false);
}

Result<Value> FSize(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_size", 1, args.size());
  if (args[0].is_list()) {
    return Value::Int(static_cast<int64_t>(args[0].as_list().size()));
  }
  if (args[0].is_string()) {
    return Value::Int(static_cast<int64_t>(args[0].as_string().size()));
  }
  return Status::TypeError("f_size expects a list or string");
}

Result<Value> FFirst(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_first", 1, args.size());
  if (!args[0].is_list()) return WantList("f_first", args[0]);
  if (args[0].as_list().empty()) {
    return Status::RuntimeError("f_first of empty list");
  }
  return args[0].as_list().front();
}

Result<Value> FLast(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_last", 1, args.size());
  if (!args[0].is_list()) return WantList("f_last", args[0]);
  if (args[0].as_list().empty()) {
    return Status::RuntimeError("f_last of empty list");
  }
  return args[0].as_list().back();
}

Result<Value> FNth(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_nth", 2, args.size());
  if (!args[0].is_list()) return WantList("f_nth", args[0]);
  if (!args[1].is_int()) return Status::TypeError("f_nth index must be int");
  int64_t i = args[1].as_int();
  const ValueList& xs = args[0].as_list();
  if (i < 0 || static_cast<size_t>(i) >= xs.size()) {
    return Status::RuntimeError("f_nth index out of range");
  }
  return xs[static_cast<size_t>(i)];
}

Result<Value> FIndexOf(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_indexof", 2, args.size());
  if (!args[0].is_list()) return WantList("f_indexof", args[0]);
  const ValueList& xs = args[0].as_list();
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == args[1]) return Value::Int(static_cast<int64_t>(i));
  }
  return Value::Int(-1);
}

Result<Value> FReverse(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_reverse", 1, args.size());
  if (!args[0].is_list()) return WantList("f_reverse", args[0]);
  ValueList out(args[0].as_list().rbegin(), args[0].as_list().rend());
  return Value::List(std::move(out));
}

Result<Value> FRemoveLast(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_removeLast", 1, args.size());
  if (!args[0].is_list()) return WantList("f_removeLast", args[0]);
  if (args[0].as_list().empty()) {
    return Status::RuntimeError("f_removeLast of empty list");
  }
  ValueList out = args[0].as_list();
  out.pop_back();
  return Value::List(std::move(out));
}

Result<Value> FMin(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_min", 2, args.size());
  return args[0] <= args[1] ? args[0] : args[1];
}

Result<Value> FMax(const std::vector<Value>& args) {
  if (args.size() != 2) return ArityError("f_max", 2, args.size());
  return args[0] >= args[1] ? args[0] : args[1];
}

Result<Value> FAbs(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_abs", 1, args.size());
  if (args[0].is_int()) {
    int64_t x = args[0].as_int();
    // llabs(INT64_MIN) is undefined: the magnitude is not representable.
    if (x == INT64_MIN) {
      return Status::RuntimeError("integer overflow in f_abs");
    }
    return Value::Int(x < 0 ? -x : x);
  }
  if (args[0].is_double()) return Value::Double(std::fabs(args[0].as_double()));
  return Status::TypeError("f_abs expects a number");
}

Result<Value> FToStr(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_tostr", 1, args.size());
  return Value::Str(args[0].ToString());
}

Result<Value> FSha1(const std::vector<Value>& args) {
  if (args.size() != 1) return ArityError("f_sha1", 1, args.size());
  return VidToValue(args[0].Hash());
}

// f_isExtend(R2, R1, N): does route R2 equal R1 with node N prepended?
// This is the interdomain-routing matcher from the paper's "maybe" rule
// br1: a BGP router prefixes its identifier to incoming advertisements.
Result<Value> FIsExtend(const std::vector<Value>& args) {
  if (args.size() != 3) return ArityError("f_isExtend", 3, args.size());
  if (!args[0].is_list()) return WantList("f_isExtend", args[0]);
  if (!args[1].is_list()) return WantList("f_isExtend", args[1]);
  const ValueList& r2 = args[0].as_list();
  const ValueList& r1 = args[1].as_list();
  if (r2.size() != r1.size() + 1) return Value::Bool(false);
  if (r2.empty() || r2[0] != args[2]) return Value::Bool(false);
  for (size_t i = 0; i < r1.size(); ++i) {
    if (r2[i + 1] != r1[i]) return Value::Bool(false);
  }
  return Value::Bool(true);
}

// f_mkvid("pred", field0, field1, ...): the VID of tuple pred(fields...).
// Digests the argument values in place instead of copying them into a
// ValueList and re-walking every element (this runs once per rule firing
// per body atom under the provenance rewrite).
Result<Value> FMkVid(const std::vector<Value>& args) {
  if (args.empty() || !args[0].is_string()) {
    return Status::TypeError("f_mkvid expects a predicate name first");
  }
  return VidToValue(
      DigestTuple(args[0].as_string(), args.data() + 1, args.data() + args.size()));
}

// f_mkrid("rule", Loc, VidList): the RID of a rule execution.
Result<Value> FMkRid(const std::vector<Value>& args) {
  if (args.size() != 3 || !args[0].is_string() || !args[1].is_address() ||
      !args[2].is_list()) {
    return Status::TypeError(
        "f_mkrid expects (rule name, location, vid list)");
  }
  std::vector<Vid> vids;
  vids.reserve(args[2].as_list().size());
  for (const Value& v : args[2].as_list()) vids.push_back(ValueToVid(v));
  return VidToValue(RuleExecRid(args[0].as_string(), args[1].as_address(), vids));
}

const std::map<std::string, BuiltinInfo>& Registry() {
  using namespace typemask;  // NOLINT(build/namespaces) masks read better bare
  static const std::map<std::string, BuiltinInfo>* reg = [] {
    auto* m = new std::map<std::string, BuiltinInfo>();
    // {fn, min_args, max_args, arg_types, rest_type, result_type};
    // max -1 = variadic, with rest_type covering the tail. The type
    // contracts mirror the runtime checks inside each function — ndlint's
    // inference pass must never be stricter than the evaluator.
    (*m)["f_list"] = {FList, 0, -1, {}, kAny, kList};
    (*m)["f_empty"] = {FEmpty, 0, 0, {}, kAny, kList};
    (*m)["f_append"] = {FAppend, 2, 2, {kList, kAny}, kAny, kList};
    (*m)["f_prepend"] = {FPrepend, 2, 2, {kAny, kList}, kAny, kList};
    (*m)["f_concat"] = {FConcat, 2, 2, {kList | kString, kList | kString},
                        kAny, kList | kString};
    (*m)["f_member"] = {FMember, 2, 2, {kList, kAny}, kAny, kInt};
    (*m)["f_size"] = {FSize, 1, 1, {kList | kString}, kAny, kInt};
    (*m)["f_first"] = {FFirst, 1, 1, {kList}, kAny, kAny};
    (*m)["f_last"] = {FLast, 1, 1, {kList}, kAny, kAny};
    (*m)["f_nth"] = {FNth, 2, 2, {kList, kInt}, kAny, kAny};
    (*m)["f_indexof"] = {FIndexOf, 2, 2, {kList, kAny}, kAny, kInt};
    (*m)["f_reverse"] = {FReverse, 1, 1, {kList}, kAny, kList};
    (*m)["f_removeLast"] = {FRemoveLast, 1, 1, {kList}, kAny, kList};
    (*m)["f_min"] = {FMin, 2, 2, {kAny, kAny}, kAny, kAny};
    (*m)["f_max"] = {FMax, 2, 2, {kAny, kAny}, kAny, kAny};
    (*m)["f_abs"] = {FAbs, 1, 1, {kNumeric}, kAny, kNumeric};
    (*m)["f_tostr"] = {FToStr, 1, 1, {kAny}, kAny, kString};
    (*m)["f_sha1"] = {FSha1, 1, 1, {kAny}, kAny, kInt};
    (*m)["f_isExtend"] = {FIsExtend, 3, 3, {kList, kList, kAny}, kAny, kInt};
    (*m)["f_mkvid"] = {FMkVid, 1, -1, {kString}, kAny, kInt};
    (*m)["f_mkrid"] = {FMkRid, 3, 3, {kString, kAddress, kList}, kAny, kInt};
    return m;
  }();
  return *reg;
}

}  // namespace

std::string TypeMaskName(TypeMask mask) {
  if (mask == typemask::kAny) return "any";
  if (mask == 0) return "none";
  static const struct {
    TypeMask bit;
    const char* name;
  } kBits[] = {{typemask::kInt, "int"},
               {typemask::kDouble, "double"},
               {typemask::kString, "string"},
               {typemask::kAddress, "address"},
               {typemask::kList, "list"}};
  std::string out;
  for (const auto& b : kBits) {
    if (mask & b.bit) {
      if (!out.empty()) out += "|";
      out += b.name;
    }
  }
  return out;
}

const BuiltinFn* FindBuiltin(const std::string& name) {
  const BuiltinInfo* info = FindBuiltinInfo(name);
  return info == nullptr ? nullptr : &info->fn;
}

const BuiltinInfo* FindBuiltinInfo(const std::string& name) {
  auto it = Registry().find(name);
  return it == Registry().end() ? nullptr : &it->second;
}

bool IsBuiltin(const std::string& name) { return FindBuiltin(name) != nullptr; }

std::vector<std::string> BuiltinNames() {
  std::vector<std::string> out;
  for (const auto& [name, fn] : Registry()) out.push_back(name);
  return out;
}

Vid TupleVid(const std::string& name, const ValueList& fields) {
  // Same digest as Tuple(name, fields).Hash(), without constructing (and
  // copying into) a Tuple first — this is the engine's per-action VID path.
  return DigestTuple(name, fields.data(), fields.data() + fields.size());
}

Vid RuleExecRid(const std::string& rule_name, NodeId loc,
                const std::vector<Vid>& vids) {
  Hasher h;
  h.AddString(rule_name);
  h.AddU64(loc);
  h.AddU64(vids.size());
  for (Vid v : vids) h.AddU64(v);
  return h.Digest();
}

Value VidToValue(Vid vid) {
  int64_t as_int;
  std::memcpy(&as_int, &vid, sizeof(as_int));
  return Value::Int(as_int);
}

Vid ValueToVid(const Value& v) {
  int64_t i = v.is_int() ? v.as_int() : 0;
  Vid vid;
  std::memcpy(&vid, &i, sizeof(vid));
  return vid;
}

}  // namespace runtime
}  // namespace nettrails
