// Builtin NDlog functions (the f_* library). Includes the list/path helpers
// used by the routing protocols, the BGP route matcher f_isExtend from the
// paper's maybe rule, and the VID/RID digest functions the ExSPAN
// provenance rewrite emits.
#ifndef NETTRAILS_RUNTIME_BUILTINS_H_
#define NETTRAILS_RUNTIME_BUILTINS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/common/value.h"

namespace nettrails {
namespace runtime {

using BuiltinFn = std::function<Result<Value>(const std::vector<Value>&)>;

/// Bitmask over Value kinds, used by the builtin type contracts and the
/// ndlint type-inference lattice (a field/variable's possible runtime
/// kinds; masks only ever shrink during inference, and an empty mask is a
/// type conflict).
using TypeMask = uint8_t;

namespace typemask {
inline constexpr TypeMask kInt = 1u << 0;
inline constexpr TypeMask kDouble = 1u << 1;
inline constexpr TypeMask kString = 1u << 2;
inline constexpr TypeMask kAddress = 1u << 3;
inline constexpr TypeMask kList = 1u << 4;
inline constexpr TypeMask kNumeric = kInt | kDouble;
inline constexpr TypeMask kAny = kInt | kDouble | kString | kAddress | kList;
}  // namespace typemask

/// Human rendering of a mask, e.g. "int|address" or "any".
std::string TypeMaskName(TypeMask mask);

/// A registered builtin: the callable plus its arity and type contracts.
/// The planner lowers Call expressions against this at compile time, so
/// unknown-builtin and arity errors are rejected when a program is compiled
/// instead of on the first rule firing (the functions still validate arity
/// themselves for direct invocations, e.g. from tests). The type contract
/// drives ndlint's type-inference pass: `arg_types` covers the leading
/// fixed arguments, `rest_type` any variadic remainder, `result_type` the
/// return value.
struct BuiltinInfo {
  BuiltinFn fn;
  int min_args = 0;
  int max_args = -1;  // -1 = unbounded (variadic)
  std::vector<TypeMask> arg_types;
  TypeMask rest_type = typemask::kAny;
  TypeMask result_type = typemask::kAny;
};

/// Looks up a builtin by name ("f_append", ...). Returns nullptr if unknown.
const BuiltinFn* FindBuiltin(const std::string& name);

/// Looks up a builtin with its arity contract. Returns nullptr if unknown.
const BuiltinInfo* FindBuiltinInfo(const std::string& name);

/// True if `name` is a registered builtin.
bool IsBuiltin(const std::string& name);

/// All registered builtin names (for diagnostics and docs).
std::vector<std::string> BuiltinNames();

/// VID of tuple `name(fields...)` as the engine computes it. The f_mkvid
/// builtin and the aggregate provenance path both call this, so declarative
/// and engine-computed VIDs agree bit-for-bit.
Vid TupleVid(const std::string& name, const ValueList& fields);

/// RID of a rule execution: digest of (rule name, executing node, input VID
/// list). Mirrors the f_mkrid builtin.
Vid RuleExecRid(const std::string& rule_name, NodeId loc,
                const std::vector<Vid>& vids);

/// Vids encode into Value as Int (bit-cast); these convert losslessly.
Value VidToValue(Vid vid);
Vid ValueToVid(const Value& v);

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_BUILTINS_H_
