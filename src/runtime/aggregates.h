// Incrementally maintained aggregate groups (a_min / a_max / a_count /
// a_sum). Each group holds a multiset of contributions; insertion and
// deletion of contributions recompute the output value and the set of
// "winning" contributions whose rule executions constitute the aggregate
// tuple's provenance (ExSPAN records the contributions that achieve the
// aggregate).
#ifndef NETTRAILS_RUNTIME_AGGREGATES_H_
#define NETTRAILS_RUNTIME_AGGREGATES_H_

#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/ndlog/ast.h"
#include "src/runtime/table.h"

namespace nettrails {
namespace runtime {

/// The multiset of contributions to one aggregate group.
///
/// Storage is a sorted vector rather than a node-based map: groups are
/// small (one entry per distinct derivation of the group), and churn-heavy
/// workloads (link flaps) repeatedly delete and re-insert the same
/// contributions. Deleted entries are kept as zero-count tombstones, so a
/// re-insertion finds the existing entry — including its already-built VID
/// list value — and a converged fail/recover cycle allocates nothing here.
class AggGroup {
 public:
  /// A contribution is (aggregated value, input VID list). The VID list
  /// disambiguates distinct rule executions that contribute equal values.
  struct ContribKey {
    Value value;
    Value vids;  // Value::List of VIDs; Null when provenance is off

    bool operator<(const ContribKey& other) const {
      int c = value.Compare(other.value);
      if (c != 0) return c < 0;
      return vids.Compare(other.vids) < 0;
    }
  };

  /// Adds (mult > 0) or removes (mult < 0) derivations of a contribution.
  void Adjust(const Value& value, const Value& vids, int64_t mult);

  /// As above, with the VID list passed as a plain element span (nullptr =
  /// Null vids, i.e. provenance off). The Value::List wrapper is built only
  /// when a brand-new contribution is inserted; adjustments of an existing
  /// entry (or its tombstone) compare element-wise against the stored list
  /// and allocate nothing. This is the engine's hot path.
  void Adjust(const Value& value, const ValueList* vid_list, int64_t mult);

  bool empty() const { return live_ == 0; }

  /// Current output of the aggregate, or nullopt if the group is empty.
  /// a_count returns the total derivation count; a_sum the
  /// multiplicity-weighted sum (numeric contributions only).
  std::optional<Value> Output(ndlog::AggFn fn) const;

  /// Contributions whose rule executions form the provenance of the current
  /// output: for min/max, those achieving the extremum; for count/sum, all.
  std::vector<ContribKey> Winners(ndlog::AggFn fn) const;

  /// As above, filling a caller-owned vector (cleared first) so the hot
  /// path can reuse one scratch buffer across recomputations.
  void Winners(ndlog::AggFn fn, std::vector<ContribKey>* out) const;

  /// Total number of distinct contributions (for tests).
  size_t distinct_contributions() const { return live_; }

  /// Live (count > 0) contributions with their derivation counts, in
  /// sorted key order — the checkpoint serialization of the group.
  /// Replaying Adjust(key.value, key.vids, count) into a fresh group
  /// rebuilds an equivalent multiset (same outputs, same winners).
  void LiveContributions(
      std::vector<std::pair<ContribKey, int64_t>>* out) const {
    out->clear();
    for (const Entry& e : contribs_) {
      if (e.count > 0) out->emplace_back(e.key, e.count);
    }
  }

 private:
  struct Entry {
    ContribKey key;
    int64_t count;  // 0 = tombstone (retained for buffer reuse)
  };

  /// Compare a stored vids Value against a probe span, with exactly
  /// Value::Compare's ordering (Null sorts before List; lists compare
  /// element-wise then by length). Returns <0/0/>0 for stored vs probe.
  static int CompareVidsToProbe(const Value& stored, const ValueList* probe);

  /// lower_bound position for (value, probe vids) among entries.
  size_t LowerBound(const Value& value, const ValueList* probe) const;

  void MaybeCompact();

  std::vector<Entry> contribs_;  // sorted by key; count==0 entries inert
  size_t live_ = 0;              // entries with count > 0
  /// Running totals so a_count and integer a_sum answer in O(1) instead of
  /// rescanning the multiset per Output call. Integer arithmetic only —
  /// exact under any insert/delete interleaving (int_sum_ accumulates in
  /// unsigned arithmetic, so even an out-of-range crafted sum wraps
  /// deterministically instead of hitting signed-overflow UB). Groups
  /// holding double contributions fall back to the full scan
  /// (floating-point addition is not exactly invertible, and an
  /// incremental double sum would drift from the rescanned value).
  int64_t total_count_ = 0;
  int64_t int_sum_ = 0;
  int64_t double_weight_ = 0;  // derivation count held by double contributions
};

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_AGGREGATES_H_
