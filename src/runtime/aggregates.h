// Incrementally maintained aggregate groups (a_min / a_max / a_count /
// a_sum). Each group holds a multiset of contributions; insertion and
// deletion of contributions recompute the output value and the set of
// "winning" contributions whose rule executions constitute the aggregate
// tuple's provenance (ExSPAN records the contributions that achieve the
// aggregate).
#ifndef NETTRAILS_RUNTIME_AGGREGATES_H_
#define NETTRAILS_RUNTIME_AGGREGATES_H_

#include <map>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/ndlog/ast.h"
#include "src/runtime/table.h"

namespace nettrails {
namespace runtime {

/// The multiset of contributions to one aggregate group.
class AggGroup {
 public:
  /// A contribution is (aggregated value, input VID list). The VID list
  /// disambiguates distinct rule executions that contribute equal values.
  struct ContribKey {
    Value value;
    Value vids;  // Value::List of VIDs; Null when provenance is off

    bool operator<(const ContribKey& other) const {
      int c = value.Compare(other.value);
      if (c != 0) return c < 0;
      return vids.Compare(other.vids) < 0;
    }
  };

  /// Adds (mult > 0) or removes (mult < 0) derivations of a contribution.
  void Adjust(const Value& value, const Value& vids, int64_t mult);

  bool empty() const { return contribs_.empty(); }

  /// Current output of the aggregate, or nullopt if the group is empty.
  /// a_count returns the total derivation count; a_sum the
  /// multiplicity-weighted sum (numeric contributions only).
  std::optional<Value> Output(ndlog::AggFn fn) const;

  /// Contributions whose rule executions form the provenance of the current
  /// output: for min/max, those achieving the extremum; for count/sum, all.
  std::vector<ContribKey> Winners(ndlog::AggFn fn) const;

  /// Total number of distinct contributions (for tests).
  size_t distinct_contributions() const { return contribs_.size(); }

 private:
  std::map<ContribKey, int64_t> contribs_;
  /// Running totals so a_count and integer a_sum answer in O(1) instead of
  /// rescanning the multiset per Output call. Integer arithmetic only —
  /// exact under any insert/delete interleaving (int_sum_ accumulates in
  /// unsigned arithmetic, so even an out-of-range crafted sum wraps
  /// deterministically instead of hitting signed-overflow UB). Groups
  /// holding double contributions fall back to the full scan
  /// (floating-point addition is not exactly invertible, and an
  /// incremental double sum would drift from the rescanned value).
  int64_t total_count_ = 0;
  int64_t int_sum_ = 0;
  int64_t double_weight_ = 0;  // derivation count held by double contributions
};

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_AGGREGATES_H_
