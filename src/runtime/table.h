// Materialized tables with derivation counting and key-replacement.
//
// Two storage semantics, selected by the declared primary key:
//  * keys cover all fields  -> bag semantics with derivation counting: a
//    tuple stays visible while its derivation count is positive (supports
//    incremental deletion of recursively derived views);
//  * keys are a proper subset -> key replacement (P2/RapidNet semantics):
//    inserting a tuple with an existing key retracts the previous tuple for
//    that key with cascade. Used for base state and aggregate outputs.
//
// Lookup structure: the ordered primary map (rows()) provides deterministic
// iteration for snapshots and full scans; every point lookup (FindByKey,
// PlanInsert/PlanDelete, Apply) goes through an O(1) hash index on the key
// projection. Planner-selected secondary hash indexes (AddIndex/Probe) map a
// projection of argument positions to the row handles matching it, so the
// engine's join loop probes instead of scanning.
#ifndef NETTRAILS_RUNTIME_TABLE_H_
#define NETTRAILS_RUNTIME_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/tuple.h"
#include "src/common/value.h"
#include "src/ndlog/analysis.h"

namespace nettrails {
namespace runtime {

/// A visible change to a table, in application order.
struct TableAction {
  ValueList fields;
  int64_t mult = 1;  // derivation-count delta, always positive
  bool is_delete = false;
};

/// One unplanned delta (an insert or delete request before key-replacement
/// and count-clamping planning), as drained from an engine queue.
struct DeltaRequest {
  ValueList fields;
  int64_t mult = 1;  // always positive; is_delete selects the sign
  bool is_delete = false;
};

/// Lexicographic ordering on value lists (Value::Compare per element).
struct ValueListLess {
  bool operator()(const ValueList& a, const ValueList& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Hash over a value list. Value::Hash guarantees Compare()==0 implies equal
/// hashes across numeric kinds, so this is consistent with ValueListEq.
struct ValueListHash {
  size_t operator()(const ValueList& v) const {
    Hasher h;
    h.AddU64(v.size());
    for (const Value& x : v) h.AddU64(x.Hash());
    return static_cast<size_t>(h.Digest());
  }
};

/// Element-wise Value equality (numeric kinds compare by value, matching the
/// engine's MatchAtom semantics).
struct ValueListEq {
  bool operator()(const ValueList& a, const ValueList& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

class Table {
 public:
  struct Row {
    ValueList fields;
    int64_t count = 0;
  };

  /// Stable handle to a visible row. Handles stay valid until the row's
  /// derivation count reaches zero (node-based primary storage).
  using RowHandle = const Row*;

  explicit Table(ndlog::TableInfo info);

  // Secondary indexes hold pointers into rows_; copying would alias the
  // source's nodes. Moves transfer map nodes wholesale, keeping handles
  // valid.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const ndlog::TableInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  /// Plans the visible actions for an insert delta of `mult` (> 0)
  /// derivations of `fields`, WITHOUT mutating the table. A key replacement
  /// yields a delete of the displaced tuple followed by the insert.
  std::vector<TableAction> PlanInsert(const ValueList& fields,
                                      int64_t mult) const;

  /// Plans the visible actions for a delete delta. A delete of a tuple that
  /// is not present (e.g. an in-flight retraction racing a replacement) is
  /// dropped and counted in spurious_deletes(). Non-const only for that
  /// counter bump; the stored rows are never mutated.
  std::vector<TableAction> PlanDelete(const ValueList& fields, int64_t mult);

  /// Applies one planned action to the stored counts, maintaining the key
  /// index and every secondary index.
  void Apply(const TableAction& action);

  /// Plans and applies a batch of deltas in order, appending the visible
  /// actions (in application order) to `out`. Behaviourally identical to N
  /// sequential PlanInsert/PlanDelete + Apply round-trips — including key
  /// replacement, count clamping, spurious-delete accounting, and
  /// count-to-zero retraction — but runs in one pass: the key hash is
  /// computed once per delta and shared between planning and primary +
  /// secondary index maintenance (sequential round-trips hash each key at
  /// least twice). Property-tested against the serial path in
  /// tests/runtime/apply_batch_test.cc.
  void ApplyBatch(const std::vector<DeltaRequest>& deltas,
                  std::vector<TableAction>* out);

  /// Stored rows, keyed by their key projection.
  const std::map<ValueList, Row, ValueListLess>& rows() const { return rows_; }

  /// Row whose key projection matches `fields`' projection, else nullptr.
  const Row* FindByKeyOf(const ValueList& fields) const;

  /// Row stored under exactly this key projection, else nullptr.
  const Row* FindByKey(const ValueList& key) const;

  /// Derivation count of exactly `fields` (0 if absent).
  int64_t CountOf(const ValueList& fields) const;

  /// Number of visible (distinct) tuples.
  size_t size() const { return rows_.size(); }

  /// All visible tuples as Tuple objects (for tests and snapshots).
  std::vector<Tuple> Contents() const;

  /// Key projection of a fields vector under this table's key.
  ValueList KeyOf(const ValueList& fields) const;

  /// Registers a secondary hash index on the given argument positions
  /// (sorted, each < arity) and returns its id; re-registering an existing
  /// position set returns the original id. Existing rows are indexed.
  int AddIndex(std::vector<int> positions);

  size_t num_indexes() const { return indexes_.size(); }

  /// Bound-position set of an index (for diagnostics and tests).
  const std::vector<int>& IndexPositions(int index_id) const {
    return indexes_[static_cast<size_t>(index_id)].positions;
  }

  /// Rows whose projection onto the index's positions hashes like `key`,
  /// or nullptr when none match. Buckets are keyed by the 64-bit key hash
  /// alone (no stored key copies); a hash collision can therefore surface a
  /// non-matching row, which the engine's per-candidate MatchAtom filters
  /// out. The returned vector is invalidated by the next Apply().
  const std::vector<RowHandle>* Probe(int index_id, const ValueList& key) const;

  /// Projection of `fields` onto `positions`.
  static ValueList Project(const std::vector<int>& positions,
                           const ValueList& fields);

  /// Count of dropped spurious deletes (see PlanDelete).
  uint64_t spurious_deletes() const { return spurious_deletes_; }

 private:
  struct SecondaryIndex {
    std::vector<int> positions;
    /// projected-key hash -> matching rows (collision false-positives are
    /// the engine's MatchAtom's job).
    std::unordered_map<uint64_t, std::vector<RowHandle>> buckets;
  };

  using RowMap = std::map<ValueList, Row, ValueListLess>;
  using KeyIndex = std::unordered_multimap<uint64_t, RowMap::iterator>;

  void IndexRow(const Row* row);
  void UnindexRow(const Row* row);

  /// Shared mutation primitives behind Apply and ApplyBatch. `kit` is the
  /// key-index entry for the affected key; `hash` is its precomputed 64-bit
  /// key hash.
  void DecrementAt(KeyIndex::iterator kit, int64_t mult);
  void InsertNewRow(uint64_t hash, ValueList key, const ValueList& fields,
                    int64_t mult);

  /// Entry whose pointed-to row key equals `key` (hash pre-computed), or
  /// end(). Multimap + verification makes 64-bit collisions harmless.
  KeyIndex::iterator FindKeyEntry(uint64_t hash, const ValueList& key);
  KeyIndex::const_iterator FindKeyEntry(uint64_t hash,
                                        const ValueList& key) const;

  ndlog::TableInfo info_;
  RowMap rows_;
  /// O(1) key-projection lookup, keyed by hash only (no key copies).
  /// Holding iterators (not just Row*) lets Apply erase without a second
  /// O(log n) Compare-chain descent.
  KeyIndex key_index_;
  std::vector<SecondaryIndex> indexes_;
  uint64_t spurious_deletes_ = 0;
};

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_TABLE_H_
