// Materialized tables with derivation counting and key-replacement.
//
// Two storage semantics, selected by the declared primary key:
//  * keys cover all fields  -> bag semantics with derivation counting: a
//    tuple stays visible while its derivation count is positive (supports
//    incremental deletion of recursively derived views);
//  * keys are a proper subset -> key replacement (P2/RapidNet semantics):
//    inserting a tuple with an existing key retracts the previous tuple for
//    that key with cascade. Used for base state and aggregate outputs.
#ifndef NETTRAILS_RUNTIME_TABLE_H_
#define NETTRAILS_RUNTIME_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/tuple.h"
#include "src/common/value.h"
#include "src/ndlog/analysis.h"

namespace nettrails {
namespace runtime {

/// A visible change to a table, in application order.
struct TableAction {
  ValueList fields;
  int64_t mult = 1;  // derivation-count delta, always positive
  bool is_delete = false;
};

/// Lexicographic ordering on value lists (Value::Compare per element).
struct ValueListLess {
  bool operator()(const ValueList& a, const ValueList& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

class Table {
 public:
  struct Row {
    ValueList fields;
    int64_t count = 0;
  };

  explicit Table(ndlog::TableInfo info);

  const ndlog::TableInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  /// Plans the visible actions for an insert delta of `mult` (> 0)
  /// derivations of `fields`, WITHOUT mutating the table. A key replacement
  /// yields a delete of the displaced tuple followed by the insert.
  std::vector<TableAction> PlanInsert(const ValueList& fields,
                                      int64_t mult) const;

  /// Plans the visible actions for a delete delta. A delete of a tuple that
  /// is not present (e.g. an in-flight retraction racing a replacement) is
  /// dropped; the multiplicity is clamped to the stored count.
  std::vector<TableAction> PlanDelete(const ValueList& fields,
                                      int64_t mult) const;

  /// Applies one planned action to the stored counts.
  void Apply(const TableAction& action);

  /// Stored rows, keyed by their key projection.
  const std::map<ValueList, Row, ValueListLess>& rows() const { return rows_; }

  /// Row whose key projection matches `fields`' projection, else nullptr.
  const Row* FindByKeyOf(const ValueList& fields) const;

  /// Row stored under exactly this key projection, else nullptr.
  const Row* FindByKey(const ValueList& key) const;

  /// Derivation count of exactly `fields` (0 if absent).
  int64_t CountOf(const ValueList& fields) const;

  /// Number of visible (distinct) tuples.
  size_t size() const { return rows_.size(); }

  /// All visible tuples as Tuple objects (for tests and snapshots).
  std::vector<Tuple> Contents() const;

  /// Key projection of a fields vector under this table's key.
  ValueList KeyOf(const ValueList& fields) const;

  /// Count of dropped spurious deletes (see PlanDelete).
  uint64_t spurious_deletes() const { return spurious_deletes_; }

 private:
  ndlog::TableInfo info_;
  std::map<ValueList, Row, ValueListLess> rows_;
  mutable uint64_t spurious_deletes_ = 0;
};

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_TABLE_H_
