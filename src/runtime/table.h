// Materialized tables with derivation counting and key-replacement.
//
// Two storage semantics, selected by the declared primary key:
//  * keys cover all fields  -> bag semantics with derivation counting: a
//    tuple stays visible while its derivation count is positive (supports
//    incremental deletion of recursively derived views);
//  * keys are a proper subset -> key replacement (P2/RapidNet semantics):
//    inserting a tuple with an existing key retracts the previous tuple for
//    that key with cascade. Used for base state and aggregate outputs.
//
// Storage layout: rows live in a slab of recycled slots addressed by
// generation-tagged 32-bit handles, with a flat open-addressing
// (robin-hood) primary index from the 64-bit key-projection hash to a slot
// chain (the chain plus an equality walk makes 64-bit collisions
// harmless). Erased slots go on a free list and KEEP their field buffers;
// re-inserting a row of the same shape copy-assigns into the recycled
// buffers, so steady-state churn (the converged-flap workload: the same
// rows retracted and re-derived) allocates nothing — no map nodes, no
// fresh ValueLists. Generation tags make stale handles detectable instead
// of silently aliasing the slot's next tenant.
//
// Deterministic iteration (broadcast joins, snapshots, scans) goes through
// OrderedView(), a lazily built, cached sorted view whose order is exactly
// the old ordered-map order (sorted by key projection); it is only rebuilt
// after an insert or erase, and the hot-churn tables (eh_* / prov /
// ruleExec) are never iterated. Planner-selected secondary hash indexes
// (AddIndex/Probe) map a projection of argument positions to the row
// handles matching it, so the engine's join loop probes instead of
// scanning; their buckets are slab-recycled the same way the rows are.
#ifndef NETTRAILS_RUNTIME_TABLE_H_
#define NETTRAILS_RUNTIME_TABLE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/flat_hash.h"
#include "src/common/hash.h"
#include "src/common/tuple.h"
#include "src/common/value.h"
#include "src/ndlog/analysis.h"

namespace nettrails {
namespace runtime {

/// A visible change to a table, in application order.
struct TableAction {
  ValueList fields;
  int64_t mult = 1;  // derivation-count delta, always positive
  bool is_delete = false;
};

/// One unplanned delta (an insert or delete request before key-replacement
/// and count-clamping planning), as drained from an engine queue.
struct DeltaRequest {
  ValueList fields;
  int64_t mult = 1;  // always positive; is_delete selects the sign
  bool is_delete = false;
};

/// Recycling buffer of TableActions for the batch hot path. Reset() rewinds
/// the logical size without destroying elements, so each action's ValueList
/// keeps its buffer and the next batch copy-assigns into retained capacity
/// instead of allocating (a plain vector's clear() frees every fields
/// buffer). Append() returns a slot whose previous contents are
/// unspecified — the caller must assign fields, mult, and is_delete.
class ActionBuffer {
 public:
  TableAction& Append() {
    if (used_ == storage_.size()) storage_.emplace_back();
    return storage_[used_++];
  }
  void Reset() { used_ = 0; }
  size_t size() const { return used_; }
  bool empty() const { return used_ == 0; }
  const TableAction* begin() const { return storage_.data(); }
  const TableAction* end() const { return storage_.data() + used_; }
  const TableAction& operator[](size_t i) const { return storage_[i]; }

 private:
  std::vector<TableAction> storage_;
  size_t used_ = 0;
};

/// Lexicographic ordering on value lists (Value::Compare per element).
struct ValueListLess {
  bool operator()(const ValueList& a, const ValueList& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Hash over a value list. Value::Hash guarantees Compare()==0 implies equal
/// hashes across numeric kinds, so this is consistent with ValueListEq.
/// List elements reuse the digest cached in their shared rep.
struct ValueListHash {
  size_t operator()(const ValueList& v) const {
    Hasher h;
    AddValueRange(&h, v.data(), v.data() + v.size());
    return static_cast<size_t>(h.Digest());
  }
};

/// Element-wise Value equality (numeric kinds compare by value, matching the
/// engine's MatchAtom semantics).
struct ValueListEq {
  bool operator()(const ValueList& a, const ValueList& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

class Table {
 public:
  struct Row {
    ValueList fields;
    int64_t count = 0;
  };

  /// Generation-tagged handle to a visible row: a 32-bit slot index plus
  /// the slot's generation at handle creation. Valid until the row's
  /// derivation count reaches zero; after that, Deref of the stale handle
  /// asserts and HandleValid() returns false — even if the slot has been
  /// recycled for a new row (the recycle bumped the generation). Handles
  /// survive slab growth (they are indices, not pointers).
  struct RowHandle {
    uint32_t idx = 0xffffffffu;
    uint32_t gen = 0;

    bool operator==(const RowHandle& o) const {
      return idx == o.idx && gen == o.gen;
    }
    bool operator!=(const RowHandle& o) const { return !(*this == o); }
  };

  explicit Table(ndlog::TableInfo info);

  // Handles are slab indices, so moving the table keeps them valid;
  // copying is still deleted (two tables sharing handle space would be a
  // footgun, and nothing needs it).
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const ndlog::TableInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  /// The row a handle refers to. The handle must be live (assert-checked:
  /// generation and occupancy); the reference is valid until the next
  /// mutation.
  const Row& Deref(RowHandle h) const {
    assert(HandleValid(h));
    return slots_[h.idx].row;
  }

  /// True if `h` still refers to the row it was created for (its slot is
  /// occupied and the generation matches — erase and recycling both bump
  /// the generation).
  bool HandleValid(RowHandle h) const {
    return h.idx < slots_.size() && slots_[h.idx].live &&
           slots_[h.idx].gen == h.gen;
  }

  /// Plans the visible actions for an insert delta of `mult` (> 0)
  /// derivations of `fields`, WITHOUT mutating the table. A key replacement
  /// yields a delete of the displaced tuple followed by the insert.
  std::vector<TableAction> PlanInsert(const ValueList& fields,
                                      int64_t mult) const;

  /// Plans the visible actions for a delete delta. A delete of a tuple that
  /// is not present (e.g. an in-flight retraction racing a replacement) is
  /// dropped and counted in spurious_deletes(). Non-const only for that
  /// counter bump; the stored rows are never mutated.
  std::vector<TableAction> PlanDelete(const ValueList& fields, int64_t mult);

  /// Applies one planned action to the stored counts, maintaining every
  /// secondary index.
  void Apply(const TableAction& action);

  /// Plans and applies a batch of deltas in order, appending the visible
  /// actions (in application order) to `out`. Behaviourally identical to N
  /// sequential PlanInsert/PlanDelete + Apply round-trips — including key
  /// replacement, count clamping, spurious-delete accounting, and
  /// count-to-zero retraction — but runs in one pass: the key hash is
  /// computed once per delta and shared between planning and primary +
  /// secondary index maintenance (sequential round-trips hash each key at
  /// least twice). Property-tested against the serial path in
  /// tests/runtime/apply_batch_test.cc.
  void ApplyBatch(const std::vector<DeltaRequest>& deltas,
                  std::vector<TableAction>* out);

  /// Same semantics, writing into a recycling ActionBuffer (the engine's
  /// zero-allocation batch path). Appends after the buffer's current
  /// contents, exactly like the vector overload.
  void ApplyBatch(const std::vector<DeltaRequest>& deltas, ActionBuffer* out);

  /// All visible rows sorted by key projection — bit-for-bit the iteration
  /// order of the ordered-map storage this table used to keep, which the
  /// golden derivation trace and snapshot determinism depend on. Built
  /// lazily and cached; any insert or erase invalidates the cache (count
  /// adjustments that leave the row set unchanged do not). The returned
  /// vector is invalidated by the next insert or erase, like Probe()
  /// results.
  const std::vector<RowHandle>& OrderedView() const;

  /// Ordered-view rebuilds so far (diagnostics: hot-churn tables should
  /// never pay one).
  uint64_t ordered_view_rebuilds() const { return ordered_view_rebuilds_; }

  /// Row whose key projection matches `fields`' projection, else nullptr.
  const Row* FindByKeyOf(const ValueList& fields) const;

  /// Row stored under exactly this key projection, else nullptr.
  const Row* FindByKey(const ValueList& key) const;

  /// Derivation count of exactly `fields` (0 if absent).
  int64_t CountOf(const ValueList& fields) const;

  /// Number of visible (distinct) tuples.
  size_t size() const { return live_count_; }

  /// All visible tuples as Tuple objects, in OrderedView() order (for tests
  /// and snapshots).
  std::vector<Tuple> Contents() const;

  /// Key projection of a fields vector under this table's key.
  ValueList KeyOf(const ValueList& fields) const;

  /// Registers a secondary hash index on the given argument positions
  /// (sorted, each < arity) and returns its id; re-registering an existing
  /// position set returns the original id. Existing rows are indexed.
  int AddIndex(std::vector<int> positions);

  size_t num_indexes() const { return indexes_.size(); }

  /// Bound-position set of an index (for diagnostics and tests).
  const std::vector<int>& IndexPositions(int index_id) const {
    return indexes_[static_cast<size_t>(index_id)].positions;
  }

  /// Rows whose projection onto the index's positions hashes like `key`,
  /// or nullptr when none match. Buckets are keyed by the 64-bit key hash
  /// alone (no stored key copies); a hash collision can therefore surface a
  /// non-matching row, which the engine's per-candidate MatchAtom filters
  /// out. The returned vector is invalidated by the next Apply().
  const std::vector<RowHandle>* Probe(int index_id, const ValueList& key) const;

  /// Projection of `fields` onto `positions`.
  static ValueList Project(const std::vector<int>& positions,
                           const ValueList& fields);

  /// Count of dropped spurious deletes (see PlanDelete).
  uint64_t spurious_deletes() const { return spurious_deletes_; }

  /// Slots in the slab (live + recycled; diagnostics — bounded by the peak
  /// row count, not by total churn).
  size_t slot_count() const { return slots_.size(); }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  /// One slab slot: the row, its materialized key projection (proper-subset
  /// keys only — when the declared keys cover all fields the key IS
  /// row.fields, and storing it again would double the footprint of the
  /// all-fields provenance tables), the cached key hash (shared by chain
  /// walks and erase), the same-hash chain link, and the generation /
  /// occupancy pair behind handle validation. Recycled slots keep their
  /// ValueList buffers, which is where the zero-allocation churn comes
  /// from.
  struct Slot {
    Row row;
    ValueList key;
    uint64_t key_hash = 0;
    uint32_t next = kNil;  // next slot with the same 64-bit key hash
    uint32_t gen = 0;
    bool live = false;
  };

  bool KeyIsAllFields() const { return info_.keys.empty(); }
  const ValueList& SlotKey(const Slot& slot) const {
    return KeyIsAllFields() ? slot.row.fields : slot.key;
  }

  /// Hash of `fields`' key projection, computed in place (no projection
  /// copy). Bit-identical to ValueListHash{}(KeyOf(fields)).
  uint64_t KeyHashOf(const ValueList& fields) const;

  /// Does `slot`'s key equal `fields`' key projection? Compares in place.
  bool SlotKeyMatchesProjection(const Slot& slot,
                                const ValueList& fields) const;

  struct SecondaryIndex;
  void IndexRow(uint32_t slot_idx);
  void IndexRowInto(SecondaryIndex* idx, uint32_t slot_idx);
  void UnindexRow(uint32_t slot_idx);

  /// Slot whose key equals `fields`' key projection (hash pre-computed), or
  /// kNil. The chain walk plus verification makes 64-bit collisions
  /// harmless.
  uint32_t FindSlotIdx(uint64_t hash, const ValueList& fields) const;

  /// Shared one-pass implementation behind both ApplyBatch overloads;
  /// `Sink` provides `TableAction& Append()`.
  template <typename Sink>
  void ApplyBatchImpl(const std::vector<DeltaRequest>& deltas, Sink* out);

  /// Shared mutation primitives behind Apply and ApplyBatch.
  void DecrementAt(uint32_t slot_idx, int64_t mult);
  void InsertNewRow(uint64_t hash, const ValueList& fields, int64_t mult);
  void EraseSlot(uint32_t slot_idx);

  struct SecondaryIndex {
    std::vector<int> positions;
    /// projected-key hash -> bucket slab index + 1. Buckets are recycled
    /// through a free list and keep their row-vector capacity, mirroring
    /// the row slab (collision false-positives are the engine's
    /// MatchAtom's job).
    FlatHashMap64<uint32_t> heads;
    std::vector<std::vector<RowHandle>> buckets;
    std::vector<uint32_t> free_buckets;
  };

  ndlog::TableInfo info_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t live_count_ = 0;
  /// 64-bit key hash -> slot index + 1 (chain head; 0 = absent).
  FlatHashMap64<uint32_t> primary_;
  std::vector<SecondaryIndex> indexes_;
  uint64_t spurious_deletes_ = 0;

  /// Lazily built sorted view over the live slots (see OrderedView()).
  mutable std::vector<RowHandle> ordered_view_;
  mutable bool ordered_view_valid_ = false;
  mutable uint64_t ordered_view_rebuilds_ = 0;
};

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_TABLE_H_
