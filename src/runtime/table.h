// Materialized tables with derivation counting and key-replacement.
//
// Two storage semantics, selected by the declared primary key:
//  * keys cover all fields  -> bag semantics with derivation counting: a
//    tuple stays visible while its derivation count is positive (supports
//    incremental deletion of recursively derived views);
//  * keys are a proper subset -> key replacement (P2/RapidNet semantics):
//    inserting a tuple with an existing key retracts the previous tuple for
//    that key with cascade. Used for base state and aggregate outputs.
//
// Storage layout: hash-primary. Rows live in an unordered multimap keyed by
// the 64-bit hash of their key projection (the multimap plus an equality
// walk makes 64-bit collisions harmless), so every structural insert,
// point lookup (FindByKey, PlanInsert/PlanDelete, Apply) and erase is O(1)
// — no ordered-map Compare descent. Deterministic iteration (broadcast
// joins, snapshots, scans) goes through OrderedView(), a lazily built,
// cached sorted view whose order is exactly the old ordered-map order
// (sorted by key projection); it is only rebuilt after an insert or erase,
// and the hot-churn tables (eh_* / prov / ruleExec) are never iterated.
// Planner-selected secondary hash indexes (AddIndex/Probe) map a projection
// of argument positions to the row handles matching it, so the engine's
// join loop probes instead of scanning.
#ifndef NETTRAILS_RUNTIME_TABLE_H_
#define NETTRAILS_RUNTIME_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/tuple.h"
#include "src/common/value.h"
#include "src/ndlog/analysis.h"

namespace nettrails {
namespace runtime {

/// A visible change to a table, in application order.
struct TableAction {
  ValueList fields;
  int64_t mult = 1;  // derivation-count delta, always positive
  bool is_delete = false;
};

/// One unplanned delta (an insert or delete request before key-replacement
/// and count-clamping planning), as drained from an engine queue.
struct DeltaRequest {
  ValueList fields;
  int64_t mult = 1;  // always positive; is_delete selects the sign
  bool is_delete = false;
};

/// Lexicographic ordering on value lists (Value::Compare per element).
struct ValueListLess {
  bool operator()(const ValueList& a, const ValueList& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Hash over a value list. Value::Hash guarantees Compare()==0 implies equal
/// hashes across numeric kinds, so this is consistent with ValueListEq.
/// List elements reuse the digest cached in their shared rep.
struct ValueListHash {
  size_t operator()(const ValueList& v) const {
    Hasher h;
    AddValueRange(&h, v.data(), v.data() + v.size());
    return static_cast<size_t>(h.Digest());
  }
};

/// Element-wise Value equality (numeric kinds compare by value, matching the
/// engine's MatchAtom semantics).
struct ValueListEq {
  bool operator()(const ValueList& a, const ValueList& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
};

class Table {
 public:
  struct Row {
    ValueList fields;
    int64_t count = 0;
  };

  /// Stable handle to a visible row. Handles stay valid until the row's
  /// derivation count reaches zero (node-based primary storage; unordered
  /// containers never move elements on rehash).
  using RowHandle = const Row*;

  explicit Table(ndlog::TableInfo info);

  // Secondary indexes hold pointers into the primary store; copying would
  // alias the source's nodes. Moves transfer map nodes wholesale, keeping
  // handles valid.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const ndlog::TableInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  /// Plans the visible actions for an insert delta of `mult` (> 0)
  /// derivations of `fields`, WITHOUT mutating the table. A key replacement
  /// yields a delete of the displaced tuple followed by the insert.
  std::vector<TableAction> PlanInsert(const ValueList& fields,
                                      int64_t mult) const;

  /// Plans the visible actions for a delete delta. A delete of a tuple that
  /// is not present (e.g. an in-flight retraction racing a replacement) is
  /// dropped and counted in spurious_deletes(). Non-const only for that
  /// counter bump; the stored rows are never mutated.
  std::vector<TableAction> PlanDelete(const ValueList& fields, int64_t mult);

  /// Applies one planned action to the stored counts, maintaining every
  /// secondary index.
  void Apply(const TableAction& action);

  /// Plans and applies a batch of deltas in order, appending the visible
  /// actions (in application order) to `out`. Behaviourally identical to N
  /// sequential PlanInsert/PlanDelete + Apply round-trips — including key
  /// replacement, count clamping, spurious-delete accounting, and
  /// count-to-zero retraction — but runs in one pass: the key hash is
  /// computed once per delta and shared between planning and primary +
  /// secondary index maintenance (sequential round-trips hash each key at
  /// least twice). Property-tested against the serial path in
  /// tests/runtime/apply_batch_test.cc.
  void ApplyBatch(const std::vector<DeltaRequest>& deltas,
                  std::vector<TableAction>* out);

  /// All visible rows sorted by key projection — bit-for-bit the iteration
  /// order of the ordered-map storage this table used to keep, which the
  /// golden derivation trace and snapshot determinism depend on. Built
  /// lazily and cached; any insert or erase invalidates the cache (count
  /// adjustments that leave the row set unchanged do not). The returned
  /// vector is invalidated by the next insert or erase, like Probe()
  /// results.
  const std::vector<RowHandle>& OrderedView() const;

  /// Ordered-view rebuilds so far (diagnostics: hot-churn tables should
  /// never pay one).
  uint64_t ordered_view_rebuilds() const { return ordered_view_rebuilds_; }

  /// Row whose key projection matches `fields`' projection, else nullptr.
  const Row* FindByKeyOf(const ValueList& fields) const;

  /// Row stored under exactly this key projection, else nullptr.
  const Row* FindByKey(const ValueList& key) const;

  /// Derivation count of exactly `fields` (0 if absent).
  int64_t CountOf(const ValueList& fields) const;

  /// Number of visible (distinct) tuples.
  size_t size() const { return primary_.size(); }

  /// All visible tuples as Tuple objects, in OrderedView() order (for tests
  /// and snapshots).
  std::vector<Tuple> Contents() const;

  /// Key projection of a fields vector under this table's key.
  ValueList KeyOf(const ValueList& fields) const;

  /// Registers a secondary hash index on the given argument positions
  /// (sorted, each < arity) and returns its id; re-registering an existing
  /// position set returns the original id. Existing rows are indexed.
  int AddIndex(std::vector<int> positions);

  size_t num_indexes() const { return indexes_.size(); }

  /// Bound-position set of an index (for diagnostics and tests).
  const std::vector<int>& IndexPositions(int index_id) const {
    return indexes_[static_cast<size_t>(index_id)].positions;
  }

  /// Rows whose projection onto the index's positions hashes like `key`,
  /// or nullptr when none match. Buckets are keyed by the 64-bit key hash
  /// alone (no stored key copies); a hash collision can therefore surface a
  /// non-matching row, which the engine's per-candidate MatchAtom filters
  /// out. The returned vector is invalidated by the next Apply().
  const std::vector<RowHandle>* Probe(int index_id, const ValueList& key) const;

  /// Projection of `fields` onto `positions`.
  static ValueList Project(const std::vector<int>& positions,
                           const ValueList& fields);

  /// Count of dropped spurious deletes (see PlanDelete).
  uint64_t spurious_deletes() const { return spurious_deletes_; }

 private:
  /// One stored row plus its key projection. `key` is materialized only for
  /// proper-subset keys; when the declared keys cover all fields the key IS
  /// row.fields, and storing it again would double the footprint of the
  /// all-fields provenance tables (eh_* / prov / ruleExec).
  struct Slot {
    ValueList key;
    Row row;
  };

  /// Hash-primary storage: 64-bit key-projection hash -> slot. A multimap
  /// so a 64-bit collision degrades to an equality walk instead of a wrong
  /// merge; node-based, so Row handles stay valid until erase.
  using PrimaryMap = std::unordered_multimap<uint64_t, Slot>;

  bool KeyIsAllFields() const { return info_.keys.empty(); }
  const ValueList& SlotKey(const Slot& slot) const {
    return KeyIsAllFields() ? slot.row.fields : slot.key;
  }

  /// Hash of `fields`' key projection, computed in place (no projection
  /// copy). Bit-identical to ValueListHash{}(KeyOf(fields)).
  uint64_t KeyHashOf(const ValueList& fields) const;

  /// Does `slot`'s key equal `fields`' key projection? Compares in place.
  bool SlotKeyMatchesProjection(const Slot& slot,
                                const ValueList& fields) const;

  void IndexRow(const Row* row);
  void UnindexRow(const Row* row);

  /// Shared mutation primitives behind Apply and ApplyBatch. `it` is the
  /// primary entry for the affected key; `hash` is its precomputed 64-bit
  /// key hash.
  void DecrementAt(PrimaryMap::iterator it, int64_t mult);
  void InsertNewRow(uint64_t hash, const ValueList& fields, int64_t mult);

  /// Primary entry whose slot key equals `fields`' key projection (hash
  /// pre-computed), or end(). Multimap + verification makes 64-bit
  /// collisions harmless.
  PrimaryMap::iterator FindSlot(uint64_t hash, const ValueList& fields);
  PrimaryMap::const_iterator FindSlot(uint64_t hash,
                                      const ValueList& fields) const;

  struct SecondaryIndex {
    std::vector<int> positions;
    /// projected-key hash -> matching rows (collision false-positives are
    /// the engine's MatchAtom's job).
    std::unordered_map<uint64_t, std::vector<RowHandle>> buckets;
  };

  ndlog::TableInfo info_;
  PrimaryMap primary_;
  std::vector<SecondaryIndex> indexes_;
  uint64_t spurious_deletes_ = 0;

  /// Lazily built sorted view over primary_ (see OrderedView()).
  mutable std::vector<RowHandle> ordered_view_;
  mutable bool ordered_view_valid_ = false;
  mutable uint64_t ordered_view_rebuilds_ = 0;
};

}  // namespace runtime
}  // namespace nettrails

#endif  // NETTRAILS_RUNTIME_TABLE_H_
