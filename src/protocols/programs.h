// The declarative protocol library from the demonstration plan: MINCOST
// (pair-wise minimal path costs), the path-vector protocol, and dynamic
// source routing (DSR), plus the "maybe"-rule program used for the legacy
// BGP use case. All are NDlog sources compiled by runtime::Compile.
#ifndef NETTRAILS_PROTOCOLS_PROGRAMS_H_
#define NETTRAILS_PROTOCOLS_PROGRAMS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/topology.h"
#include "src/runtime/engine.h"

namespace nettrails {
namespace protocols {

/// MINCOST: computes pair-wise minimal path costs (the protocol of Figures
/// 2 and 3). Recursion through a_min; terminates with positive costs.
const char* MincostProgram();

/// Path-vector: full paths with loop avoidance (f_member), plus best-path
/// selection. Requires localization (the canonical sp2-style rule).
const char* PathVectorProgram();

/// Dynamic source routing: on-demand route discovery with route-request
/// flooding (rreq/rrep events) into a materialized route table.
const char* DsrProgram();

/// Link-state protocol (OSPF-style): every node originates one link-state
/// advertisement per adjacent link and floods it hop-by-hop (the recorded
/// flood path bounds the flood, the NDlog analogue of OSPF's
/// sequence-number dedup), giving each node a replicated link-state
/// database (lsdb) of the whole topology; a purely local SPF pass
/// (Bellman-Ford through the a_min-aggregated spf table, cost-bounded like
/// MINCOST) turns the database into shortest-path distances. Convergence
/// oracle: spf at every node equals Dijkstra over the topology, and every
/// lsdb holds exactly both directions of every live link.
const char* LinkStateProgram();

/// The legacy-BGP provenance program: inputRoute/outputRoute tables plus
/// the paper's maybe rule br1 with f_isExtend.
const char* BgpMaybeProgram();

/// Creates one engine per topology node, all sharing `program`.
std::vector<std::unique_ptr<runtime::Engine>> MakeEngines(
    net::Simulator* sim, const net::Topology& topo,
    runtime::CompiledProgramPtr program,
    const runtime::EngineOptions& opts = {});

/// Non-owning view (e.g. for ProvenanceQuerier).
std::vector<runtime::Engine*> EnginePtrs(
    const std::vector<std::unique_ptr<runtime::Engine>>& engines);

/// Inserts link(@a,b,c) and link(@b,a,c) base tuples for every topology
/// edge, then runs the simulator to convergence if `run_to_quiescence`.
Status InstallLinks(const net::Topology& topo,
                    std::vector<std::unique_ptr<runtime::Engine>>* engines,
                    net::Simulator* sim, bool run_to_quiescence = true);

/// Deletes both directions of one link's tuples (protocol-level failure:
/// the physical channel stays up so retraction deltas can propagate, which
/// is how declarative-networking experiments model link failure).
Status FailLink(NodeId a, NodeId b, int64_t cost,
                std::vector<std::unique_ptr<runtime::Engine>>* engines,
                net::Simulator* sim, bool run_to_quiescence = true);

/// Re-inserts both directions of a link's tuples.
Status RecoverLink(NodeId a, NodeId b, int64_t cost,
                   std::vector<std::unique_ptr<runtime::Engine>>* engines,
                   net::Simulator* sim, bool run_to_quiescence = true);

/// Starts a DSR route discovery: injects rreq(@src, src, dst, [src]).
Status StartDsrDiscovery(runtime::Engine* engine, NodeId src, NodeId dst);

/// Crashes node `v`: takes its physical links down in the simulator (frames
/// in flight to/from v are swallowed and counted as fault drops), halts its
/// engine (pending work discarded, timers fenced), and has each topology
/// neighbor retract its link tuple toward v so the failure propagates
/// protocol-level exactly as neighbors would detect it.
Status CrashNode(NodeId v, const net::Topology& topo,
                 std::vector<std::unique_ptr<runtime::Engine>>* engines,
                 net::Simulator* sim, bool run_to_quiescence = true);

/// Restarts node `v` from `ckpt`: brings its links back up, restores the
/// engine checkpoint, invokes `on_restored` (attach fresh provenance
/// store / fence query caches — must run before reconciliation so the new
/// store observes the reconciliation deltas), reconciles away restored
/// remote-grounded derivations that may be stale (v missed retractions
/// addressed to it while down), then cycles v's link tuples on both
/// endpoints to trigger re-announcement and re-convergence.
Status RestartNode(NodeId v, const runtime::EngineCheckpoint& ckpt,
                   const net::Topology& topo,
                   std::vector<std::unique_ptr<runtime::Engine>>* engines,
                   net::Simulator* sim,
                   const std::function<void(NodeId)>& on_restored = nullptr,
                   bool run_to_quiescence = true);

}  // namespace protocols
}  // namespace nettrails

#endif  // NETTRAILS_PROTOCOLS_PROGRAMS_H_
