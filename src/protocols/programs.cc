#include "src/protocols/programs.h"

namespace nettrails {
namespace protocols {

const char* MincostProgram() {
  return R"(
    // MINCOST: pair-wise minimal path costs (Figures 2 and 3 of the paper).
    // The C < 255 bound is the distance-vector "infinity" (RIP counts to
    // 16): it bounds the count-to-infinity transient when link failures
    // partition the network. Topologies must keep true path costs below it.
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2)).

    mc1 cost(@X,Y,C) :- link(@X,Y,C).
    mc2 cost(@X,Z,C) :- link(@X,Y,C1), mincost(@Y,Z,C2), X != Z,
                        C := C1 + C2, C < 255.
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
  )";
}

const char* PathVectorProgram() {
  return R"(
    // Path-vector protocol with loop avoidance and best-path selection.
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2,3,4)).
    materialize(bestcost, infinity, infinity, keys(1,2)).
    materialize(bestpath, infinity, infinity, keys(1,2,3,4)).

    pv1 path(@X,Y,C,P) :- link(@X,Y,C), P := f_list(X,Y).
    pv2 path(@X,Z,C,P) :- link(@X,Y,C1), path(@Y,Z,C2,P2),
                          f_member(P2,X) == 0, C := C1 + C2,
                          P := f_prepend(X,P2).
    pv3 bestcost(@X,Z,a_min<C>) :- path(@X,Z,C,P).
    pv4 bestpath(@X,Z,C,P) :- bestcost(@X,Z,C), path(@X,Z,C,P).
  )";
}

const char* DsrProgram() {
  return R"(
    // Dynamic source routing: on-demand route discovery. Route requests
    // (rreq) flood outward accumulating the traversed path; when a node
    // adjacent to the destination completes the path, a route reply (rrep)
    // relays back hop-by-hop along the reverse source route (as in DSR:
    // replies follow the accumulated route, not a direct channel).
    //
    // dr3 ships rrep to f_nth(P, I-1) — the previous hop of the recorded
    // route rather than a link neighbor the linter can prove, so the
    // link-restriction lint is suppressed for this file. The route was
    // built hop-by-hop over real links by dr1, which is exactly the
    // invariant ND303 cannot see through a computed address.
    // ndlint: allow(ND303)
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(route, infinity, infinity, keys(1,2)).

    dr1 rreq(@Y,S,D,P2) :- rreq(@X,S,D,P), link(@X,Y,C),
                           Y != D, f_member(P,Y) == 0,
                           P2 := f_append(P,Y).
    dr2 rrep(@X,S,D,P2) :- rreq(@X,S,D,P), link(@X,D,C),
                           f_member(P,D) == 0, P2 := f_append(P,D).
    dr3 rrep(@Prev,S,D,P) :- rrep(@X,S,D,P), X != S,
                             I := f_indexof(P,X), Prev := f_nth(P,I-1).
    dr4 route(@S,D,P) :- rrep(@S,S,D,P).
  )";
}

const char* LinkStateProgram() {
  return R"(
    // Link-state (OSPF-style). ls1 originates an LSA for each adjacent
    // link; ls2 floods LSAs to every neighbor, recording the traversed
    // nodes so each LSA crosses a node at most once per loop-free flood
    // path (bag-semantics-safe termination, standing in for OSPF's
    // sequence-number duplicate suppression). ls3 projects the flood into
    // the node's link-state database; ls4-ls6 are the local SPF: a
    // Bellman-Ford relaxation over the *local* database routed through the
    // a_min aggregate, with the same C < 255 distance-vector bound MINCOST
    // uses to cut the retraction transient when churn partitions the
    // topology. Unlike MINCOST, no SPF messages cross the wire — only
    // LSAs do, exactly the link-state/distance-vector split.
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(lsa, infinity, infinity, keys(1,2,3,4,5)).
    materialize(lsdb, infinity, infinity, keys(1,2,3,4)).
    materialize(spfdist, infinity, infinity, keys(1,2,3)).
    materialize(spf, infinity, infinity, keys(1,2)).

    ls1 lsa(@X,X,Y,C,P) :- link(@X,Y,C), P := f_list(X).
    ls2 lsa(@Z,S,D,C,P2) :- lsa(@X,S,D,C,P), link(@X,Z,C2),
                            f_member(P,Z) == 0, P2 := f_append(P,Z).
    ls3 lsdb(@N,S,D,C) :- lsa(@N,S,D,C,P).
    ls4 spfdist(@N,D,C) :- lsdb(@N,N,D,C).
    ls5 spfdist(@N,D,C) :- spf(@N,Z,C1), lsdb(@N,Z,D,C2), D != N,
                           C := C1 + C2, C < 255.
    ls6 spf(@N,D,a_min<C>) :- spfdist(@N,D,C).
  )";
}

const char* BgpMaybeProgram() {
  return R"(
    // Legacy-application support (Section 2.2): the proxy extracts
    // inputRoute / outputRoute tuples from intercepted BGP messages; the
    // maybe rule br1 captures the likely causal relationship between them.
    materialize(inputRoute, infinity, infinity, keys(1,2,3)).
    materialize(outputRoute, infinity, infinity, keys(1,2,3)).

    br1 outputRoute(@AS,R2,Prefix,Route2) ?-
        inputRoute(@AS,R1,Prefix,Route1),
        f_isExtend(Route2,Route1,AS) == 1.
  )";
}

std::vector<std::unique_ptr<runtime::Engine>> MakeEngines(
    net::Simulator* sim, const net::Topology& topo,
    runtime::CompiledProgramPtr program, const runtime::EngineOptions& opts) {
  topo.Install(sim);
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  engines.reserve(topo.num_nodes);
  for (size_t i = 0; i < topo.num_nodes; ++i) {
    engines.push_back(std::make_unique<runtime::Engine>(
        sim, static_cast<NodeId>(i), program, opts));
  }
  return engines;
}

std::vector<runtime::Engine*> EnginePtrs(
    const std::vector<std::unique_ptr<runtime::Engine>>& engines) {
  std::vector<runtime::Engine*> out;
  out.reserve(engines.size());
  for (const auto& e : engines) out.push_back(e.get());
  return out;
}

namespace {

Tuple LinkTuple(NodeId a, NodeId b, int64_t cost) {
  return Tuple("link",
               {Value::Address(a), Value::Address(b), Value::Int(cost)});
}

}  // namespace

Status InstallLinks(const net::Topology& topo,
                    std::vector<std::unique_ptr<runtime::Engine>>* engines,
                    net::Simulator* sim, bool run_to_quiescence) {
  for (const net::CostedLink& l : topo.links) {
    NT_RETURN_IF_ERROR((*engines)[l.a]->Insert(LinkTuple(l.a, l.b, l.cost)));
    NT_RETURN_IF_ERROR((*engines)[l.b]->Insert(LinkTuple(l.b, l.a, l.cost)));
  }
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status FailLink(NodeId a, NodeId b, int64_t cost,
                std::vector<std::unique_ptr<runtime::Engine>>* engines,
                net::Simulator* sim, bool run_to_quiescence) {
  NT_RETURN_IF_ERROR((*engines)[a]->Delete(LinkTuple(a, b, cost)));
  NT_RETURN_IF_ERROR((*engines)[b]->Delete(LinkTuple(b, a, cost)));
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status RecoverLink(NodeId a, NodeId b, int64_t cost,
                   std::vector<std::unique_ptr<runtime::Engine>>* engines,
                   net::Simulator* sim, bool run_to_quiescence) {
  NT_RETURN_IF_ERROR((*engines)[a]->Insert(LinkTuple(a, b, cost)));
  NT_RETURN_IF_ERROR((*engines)[b]->Insert(LinkTuple(b, a, cost)));
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status CrashNode(NodeId v, const net::Topology& topo,
                 std::vector<std::unique_ptr<runtime::Engine>>* engines,
                 net::Simulator* sim, bool run_to_quiescence) {
  // Physical takedown first: from here on every frame to or from v is
  // swallowed (counted as a fault drop), so nothing the dying node had in
  // flight reaches the survivors after this point.
  NT_RETURN_IF_ERROR(sim->SetNodeUp(v, false));
  (*engines)[v]->HaltForCrash();
  for (const net::CostedLink& l : topo.links) {
    if (l.a == v) {
      NT_RETURN_IF_ERROR((*engines)[l.b]->Delete(LinkTuple(l.b, v, l.cost)));
    } else if (l.b == v) {
      NT_RETURN_IF_ERROR((*engines)[l.a]->Delete(LinkTuple(l.a, v, l.cost)));
    }
  }
  // Survivors evict every derivation grounded at the dead node: its rule
  // executions no longer exist, and any retraction it would have shipped is
  // lost. The cascades route the protocol around the crash; retractions
  // bound for v are swallowed by the simulator. This also keeps the
  // restarted node's later re-announcements from double-counting against
  // stale copies.
  for (size_t u = 0; u < engines->size(); ++u) {
    if (static_cast<NodeId>(u) == v) continue;
    (*engines)[u]->DropDerivationsFrom(v);
  }
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status RestartNode(NodeId v, const runtime::EngineCheckpoint& ckpt,
                   const net::Topology& topo,
                   std::vector<std::unique_ptr<runtime::Engine>>* engines,
                   net::Simulator* sim,
                   const std::function<void(NodeId)>& on_restored,
                   bool run_to_quiescence) {
  NT_RETURN_IF_ERROR(sim->SetNodeUp(v, true));
  runtime::Engine* engine = (*engines)[v].get();
  engine->RestoreCheckpoint(ckpt);
  // Observers were dropped by the restore; re-attach provenance stores and
  // fence query caches before any reconciliation delta flows.
  if (on_restored) on_restored(v);
  // Retract the restored remote-grounded share: v missed every retraction
  // addressed to it while down, so rows whose derivations executed on other
  // nodes may no longer be held by those nodes. The re-announcement below
  // re-derives whatever is still true.
  engine->DropRemoteDerivations();
  // Cycle the links on both endpoints: the Delete scrubs v's restored
  // local derivations rooted at each link (and their exports), the
  // re-Inserts trigger fresh derivation and re-announcement from both
  // sides, re-converging v and its neighbors.
  for (const net::CostedLink& l : topo.links) {
    NodeId u;
    if (l.a == v) {
      u = l.b;
    } else if (l.b == v) {
      u = l.a;
    } else {
      continue;
    }
    // A cold restart (empty or pre-boot checkpoint) restores no link
    // bases; there is nothing to scrub, only the re-announce half applies.
    if (engine->HasTuple(LinkTuple(v, u, l.cost))) {
      NT_RETURN_IF_ERROR(engine->Delete(LinkTuple(v, u, l.cost)));
    }
    NT_RETURN_IF_ERROR(engine->Insert(LinkTuple(v, u, l.cost)));
    NT_RETURN_IF_ERROR((*engines)[u]->Insert(LinkTuple(u, v, l.cost)));
  }
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status StartDsrDiscovery(runtime::Engine* engine, NodeId src, NodeId dst) {
  return engine->InsertEvent(
      Tuple("rreq", {Value::Address(src), Value::Address(src),
                     Value::Address(dst),
                     Value::List({Value::Address(src)})}));
}

}  // namespace protocols
}  // namespace nettrails
