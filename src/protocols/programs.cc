#include "src/protocols/programs.h"

namespace nettrails {
namespace protocols {

const char* MincostProgram() {
  return R"(
    // MINCOST: pair-wise minimal path costs (Figures 2 and 3 of the paper).
    // The C < 255 bound is the distance-vector "infinity" (RIP counts to
    // 16): it bounds the count-to-infinity transient when link failures
    // partition the network. Topologies must keep true path costs below it.
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2)).

    mc1 cost(@X,Y,C) :- link(@X,Y,C).
    mc2 cost(@X,Z,C) :- link(@X,Y,C1), mincost(@Y,Z,C2), X != Z,
                        C := C1 + C2, C < 255.
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
  )";
}

const char* PathVectorProgram() {
  return R"(
    // Path-vector protocol with loop avoidance and best-path selection.
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(path, infinity, infinity, keys(1,2,3,4)).
    materialize(bestcost, infinity, infinity, keys(1,2)).
    materialize(bestpath, infinity, infinity, keys(1,2,3,4)).

    pv1 path(@X,Y,C,P) :- link(@X,Y,C), P := f_list(X,Y).
    pv2 path(@X,Z,C,P) :- link(@X,Y,C1), path(@Y,Z,C2,P2),
                          f_member(P2,X) == 0, C := C1 + C2,
                          P := f_prepend(X,P2).
    pv3 bestcost(@X,Z,a_min<C>) :- path(@X,Z,C,P).
    pv4 bestpath(@X,Z,C,P) :- bestcost(@X,Z,C), path(@X,Z,C,P).
  )";
}

const char* DsrProgram() {
  return R"(
    // Dynamic source routing: on-demand route discovery. Route requests
    // (rreq) flood outward accumulating the traversed path; when a node
    // adjacent to the destination completes the path, a route reply (rrep)
    // relays back hop-by-hop along the reverse source route (as in DSR:
    // replies follow the accumulated route, not a direct channel).
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(route, infinity, infinity, keys(1,2)).

    dr1 rreq(@Y,S,D,P2) :- rreq(@X,S,D,P), link(@X,Y,C),
                           Y != D, f_member(P,Y) == 0,
                           P2 := f_append(P,Y).
    dr2 rrep(@X,S,D,P2) :- rreq(@X,S,D,P), link(@X,D,C),
                           f_member(P,D) == 0, P2 := f_append(P,D).
    dr3 rrep(@Prev,S,D,P) :- rrep(@X,S,D,P), X != S,
                             I := f_indexof(P,X), Prev := f_nth(P,I-1).
    dr4 route(@S,D,P) :- rrep(@S,S,D,P).
  )";
}

const char* BgpMaybeProgram() {
  return R"(
    // Legacy-application support (Section 2.2): the proxy extracts
    // inputRoute / outputRoute tuples from intercepted BGP messages; the
    // maybe rule br1 captures the likely causal relationship between them.
    materialize(inputRoute, infinity, infinity, keys(1,2,3)).
    materialize(outputRoute, infinity, infinity, keys(1,2,3)).

    br1 outputRoute(@AS,R2,Prefix,Route2) ?-
        inputRoute(@AS,R1,Prefix,Route1),
        f_isExtend(Route2,Route1,AS) == 1.
  )";
}

std::vector<std::unique_ptr<runtime::Engine>> MakeEngines(
    net::Simulator* sim, const net::Topology& topo,
    runtime::CompiledProgramPtr program, const runtime::EngineOptions& opts) {
  topo.Install(sim);
  std::vector<std::unique_ptr<runtime::Engine>> engines;
  engines.reserve(topo.num_nodes);
  for (size_t i = 0; i < topo.num_nodes; ++i) {
    engines.push_back(std::make_unique<runtime::Engine>(
        sim, static_cast<NodeId>(i), program, opts));
  }
  return engines;
}

std::vector<runtime::Engine*> EnginePtrs(
    const std::vector<std::unique_ptr<runtime::Engine>>& engines) {
  std::vector<runtime::Engine*> out;
  out.reserve(engines.size());
  for (const auto& e : engines) out.push_back(e.get());
  return out;
}

namespace {

Tuple LinkTuple(NodeId a, NodeId b, int64_t cost) {
  return Tuple("link",
               {Value::Address(a), Value::Address(b), Value::Int(cost)});
}

}  // namespace

Status InstallLinks(const net::Topology& topo,
                    std::vector<std::unique_ptr<runtime::Engine>>* engines,
                    net::Simulator* sim, bool run_to_quiescence) {
  for (const net::CostedLink& l : topo.links) {
    NT_RETURN_IF_ERROR((*engines)[l.a]->Insert(LinkTuple(l.a, l.b, l.cost)));
    NT_RETURN_IF_ERROR((*engines)[l.b]->Insert(LinkTuple(l.b, l.a, l.cost)));
  }
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status FailLink(NodeId a, NodeId b, int64_t cost,
                std::vector<std::unique_ptr<runtime::Engine>>* engines,
                net::Simulator* sim, bool run_to_quiescence) {
  NT_RETURN_IF_ERROR((*engines)[a]->Delete(LinkTuple(a, b, cost)));
  NT_RETURN_IF_ERROR((*engines)[b]->Delete(LinkTuple(b, a, cost)));
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status RecoverLink(NodeId a, NodeId b, int64_t cost,
                   std::vector<std::unique_ptr<runtime::Engine>>* engines,
                   net::Simulator* sim, bool run_to_quiescence) {
  NT_RETURN_IF_ERROR((*engines)[a]->Insert(LinkTuple(a, b, cost)));
  NT_RETURN_IF_ERROR((*engines)[b]->Insert(LinkTuple(b, a, cost)));
  if (run_to_quiescence) sim->Run();
  return Status::OK();
}

Status StartDsrDiscovery(runtime::Engine* engine, NodeId src, NodeId dst) {
  return engine->InsertEvent(
      Tuple("rreq", {Value::Address(src), Value::Address(src),
                     Value::Address(dst),
                     Value::List({Value::Address(src)})}));
}

}  // namespace protocols
}  // namespace nettrails
