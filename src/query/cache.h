// Per-node provenance query result cache (one of the ExSPAN query
// optimizations: "caching previously queried results"). Entries are
// validated against the provenance store's version counter, so any
// provenance change invalidates stale results without eager flushing.
#ifndef NETTRAILS_QUERY_CACHE_H_
#define NETTRAILS_QUERY_CACHE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/tuple.h"
#include "src/common/value.h"

namespace nettrails {
namespace query {

/// Query flavors (Section 2.2: "users can query for a tuple's lineage, the
/// set of all nodes that have been involved in the derivation ... and/or
/// the total number of alternative derivations").
enum class QueryType { kLineage = 0, kNodeSet = 1, kDerivCount = 2 };

/// Child-resolution strategy ("leveraging alternative tree traversal
/// orders"): sequential depth-first (enables early pruning) or parallel
/// breadth-first (lower latency, more concurrent traffic).
enum class Traversal { kSequential = 0, kParallel = 1 };

/// Partial result of resolving one provenance subtree.
struct PartialResult {
  int64_t count = 0;
  /// Leaf (base/event) tuples as (vid, home node).
  std::set<std::pair<Vid, NodeId>> leaves;
  std::set<NodeId> nodes;
  bool truncated = false;  // depth limit or pruning applied underneath

  /// Merges the structural fields (leaves, nodes, truncated) only. `count`
  /// is deliberately NOT combined here: how counts fold depends on the
  /// vertex kind — alternative derivations of a tuple vertex SUM, joint
  /// inputs of a rule-execution vertex MULTIPLY — so the fold owner
  /// (Fanout::Combine in query_engine.cc) accumulates counts itself before
  /// calling this. A blind `count += other.count` here would double-count
  /// under the product fold.
  void MergeStructure(const PartialResult& other) {
    leaves.insert(other.leaves.begin(), other.leaves.end());
    nodes.insert(other.nodes.begin(), other.nodes.end());
    truncated = truncated || other.truncated;
  }
};

/// Cache key: target vertex plus the parameters that affect the result.
struct CacheKey {
  Vid vid = 0;
  QueryType type = QueryType::kLineage;
  bool include_maybe = true;
  int64_t threshold = 0;
  /// Remaining traversal depth at this vertex. Two traversals reaching the
  /// same vertex with different remaining budgets can legitimately produce
  /// different results (a tighter budget truncates more), so depth must
  /// discriminate cache entries.
  uint32_t depth = 0;

  bool operator<(const CacheKey& other) const {
    if (vid != other.vid) return vid < other.vid;
    if (type != other.type) return type < other.type;
    if (include_maybe != other.include_maybe)
      return include_maybe < other.include_maybe;
    if (threshold != other.threshold) return threshold < other.threshold;
    return depth < other.depth;
  }
};

class ResultCache {
 public:
  /// Returns the cached result if present and its stored version matches
  /// `current_version`. Any version advance sweeps the whole cache: every
  /// entry is validated against the store's single version counter, so a
  /// provenance change invalidates all of them at once, and per-key
  /// eviction alone would let keys that are never looked up again
  /// accumulate without bound under churn.
  const PartialResult* Lookup(const CacheKey& key, uint64_t current_version);

  /// Caches `result` under `key`. Truncated results are refused: they
  /// reflect the budget of the traversal that produced them, not the
  /// provenance graph, so serving one to a later query would silently
  /// under-report. Stores tagged with a version older than one already
  /// observed are dropped as stale.
  void Store(const CacheKey& key, uint64_t version, PartialResult result);

  void Clear() {
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
  }

  /// Restart fence. A recovered node attaches a *fresh* ProvStore whose
  /// version counter restarts near zero, so version comparison alone cannot
  /// distinguish "same version, same graph" from "same version, different
  /// incarnation". Drops every entry AND forgets the observed version —
  /// unlike Clear, which keeps hit/miss counters, this resets the version
  /// watermark so post-restart Stores at small versions are not rejected
  /// as stale.
  void InvalidateForRestart() {
    entries_.clear();
    seen_version_ = 0;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return entries_.size(); }

 private:
  // All live entries share `seen_version_`; any other version observed by
  // Lookup/Store clears the map (see Lookup above).
  std::map<CacheKey, PartialResult> entries_;
  uint64_t seen_version_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace query
}  // namespace nettrails

#endif  // NETTRAILS_QUERY_CACHE_H_
