#include "src/query/query_engine.h"

#include <cassert>

#include "src/runtime/builtins.h"

namespace nettrails {
namespace query {

namespace {

using runtime::ValueToVid;
using runtime::VidToValue;

constexpr char kRequestTuple[] = "provReq";
constexpr char kReplyTuple[] = "provRep";

/// Shared fan-out driver: resolves a list of children sequentially or in
/// parallel and combines results by sum (tuple vertices: alternative
/// derivations) or product (execution vertices: joint inputs).
struct Fanout : std::enable_shared_from_this<Fanout> {
  PartialResult acc;
  bool product = false;
  QueryOptions opts;
  size_t next_child = 0;
  size_t outstanding = 0;
  bool finished = false;
  std::vector<std::function<void(QueryService::Done)>> children;
  QueryService::Done done;

  void Combine(const PartialResult& child) {
    // Count accumulation is owned here, not by MergeStructure: tuple
    // vertices sum alternative derivations, exec vertices multiply joint
    // inputs.
    if (product) {
      acc.count *= child.count;
    } else {
      acc.count += child.count;
    }
    acc.MergeStructure(child);
  }

  bool ShouldPrune() const {
    return !product && opts.type == QueryType::kDerivCount &&
           opts.count_threshold > 0 && acc.count >= opts.count_threshold;
  }

  void Finish() {
    if (finished) return;
    finished = true;
    done(acc);
  }

  void RunSequential() {
    if (ShouldPrune()) {
      acc.truncated = true;
      Finish();
      return;
    }
    if (next_child >= children.size()) {
      Finish();
      return;
    }
    size_t i = next_child++;
    auto self = shared_from_this();
    children[i]([self](const PartialResult& r) {
      self->Combine(r);
      self->RunSequential();
    });
  }

  void RunParallel() {
    if (children.empty()) {
      Finish();
      return;
    }
    outstanding = children.size();
    auto self = shared_from_this();
    // Issue all children; completions may be synchronous.
    for (auto& child : children) {
      child([self](const PartialResult& r) {
        self->Combine(r);
        if (--self->outstanding == 0) self->Finish();
      });
    }
  }

  void Run() {
    if (opts.traversal == Traversal::kSequential) {
      RunSequential();
    } else {
      RunParallel();
    }
  }
};

Value EncodePath(const std::set<Vid>& path) {
  ValueList xs;
  xs.reserve(path.size());
  for (Vid v : path) xs.push_back(VidToValue(v));
  return Value::List(std::move(xs));
}

std::set<Vid> DecodePath(const Value& v) {
  std::set<Vid> out;
  if (v.is_list()) {
    for (const Value& x : v.as_list()) out.insert(ValueToVid(x));
  }
  return out;
}

}  // namespace

QueryService::QueryService(net::Simulator* sim, runtime::Engine* engine,
                           provenance::ProvStore* store)
    : sim_(sim), engine_(engine), store_(store) {
  channel_ = sim_->InternChannel(kProvQueryChannel);
  sim_->RegisterHandler(engine_->id(), kProvQueryChannel,
                        [this](const net::Message& msg) { OnMessage(msg); });
}

void QueryService::ResolveTuple(uint64_t qid, const QueryOptions& opts,
                                Vid vid, uint32_t depth, std::set<Vid> path,
                                Done done) {
  if (depth == 0 || path.count(vid)) {
    PartialResult r;
    r.truncated = true;
    done(r);
    return;
  }

  // Per-query memo (DAG sharing within one traversal).
  MemoEntry& memo = memo_[qid][vid];
  if (memo.complete) {
    done(memo.result);
    return;
  }
  if (!memo.waiters.empty()) {
    memo.waiters.push_back(std::move(done));
    return;
  }
  memo.waiters.push_back(std::move(done));

  // Cross-query cache, validated against the provenance version. The
  // remaining depth is part of the key: a result computed under a tight
  // budget must not be served to a traversal arriving with a deeper one.
  CacheKey key{vid, opts.type, opts.include_maybe, opts.count_threshold,
               depth};
  if (opts.use_cache) {
    if (const PartialResult* hit = cache_.Lookup(key, store_->version())) {
      MemoEntry& m = memo_[qid][vid];
      m.complete = true;
      m.result = *hit;
      for (Done& w : m.waiters) w(m.result);
      m.waiters.clear();
      return;
    }
  }

  const std::vector<provenance::ProvEdge>* edges = store_->EdgesFor(vid);
  auto fan = std::make_shared<Fanout>();
  fan->opts = opts;
  fan->product = false;
  fan->acc.nodes.insert(node());

  bool leaf_contribution = false;
  std::vector<provenance::ProvEdge> child_edges;
  if (edges != nullptr) {
    for (const provenance::ProvEdge& e : *edges) {
      if (e.IsSelf(vid)) {
        leaf_contribution = true;
      } else if (e.maybe && !opts.include_maybe) {
        continue;
      } else {
        child_edges.push_back(e);
      }
    }
  }
  // No usable derivation (including the case where every edge was a maybe
  // edge excluded by the query): the tuple is an unexplained leaf.
  if (child_edges.empty()) leaf_contribution = true;
  if (leaf_contribution) {
    fan->acc.count += 1;
    fan->acc.leaves.insert({vid, node()});
  }

  path.insert(vid);
  for (const provenance::ProvEdge& e : child_edges) {
    fan->children.push_back([this, qid, opts, e, depth, path](Done d) {
      ResolveExecAt(qid, opts, e.rid, e.rloc, depth - 1, path, std::move(d));
    });
  }

  uint64_t version = store_->version();
  fan->done = [this, qid, vid, key, version, opts](const PartialResult& r) {
    if (opts.use_cache) cache_.Store(key, version, r);  // refuses truncated
    auto& per_query = memo_[qid];
    std::vector<Done> waiters = std::move(per_query[vid].waiters);
    per_query[vid].waiters.clear();
    if (r.truncated) {
      // A truncated result reflects the depth/pruning budget of the branch
      // that computed it, not the vertex itself. Memoizing it as complete
      // would serve the undercount to later branches reaching this vertex
      // with more remaining depth (multi-parent derivations), so drop the
      // entry and let them recompute under their own budget. Waiters that
      // piled up while this resolution was in flight (parallel traversal)
      // still receive this result — they arrived under the same in-flight
      // budget and re-resolving them here could recurse forever.
      per_query.erase(vid);
      for (Done& w : waiters) w(r);
      return;
    }
    MemoEntry& m = per_query[vid];
    m.complete = true;
    m.result = r;
    for (Done& w : waiters) w(m.result);
  };
  fan->Run();
}

void QueryService::ResolveExecAt(uint64_t qid, const QueryOptions& opts,
                                 Vid rid, NodeId rloc, uint32_t depth,
                                 const std::set<Vid>& path, Done done) {
  if (rloc == node()) {
    ResolveExec(qid, opts, rid, depth, path, std::move(done));
    return;
  }
  int64_t token = next_token_++;
  pending_[token] = std::move(done);
  Tuple req(kRequestTuple,
            {Value::Address(rloc), Value::Int(static_cast<int64_t>(qid)),
             Value::Int(token), VidToValue(rid),
             Value::Int(static_cast<int64_t>(opts.type)),
             Value::Int(static_cast<int64_t>(opts.traversal)),
             Value::Int(opts.count_threshold), Value::Bool(opts.use_cache),
             Value::Bool(opts.include_maybe),
             Value::Int(static_cast<int64_t>(depth)), EncodePath(path),
             Value::Address(node())});
  net::Message msg;
  msg.src = node();
  msg.dst = rloc;
  msg.channel = channel_;
  msg.payload = std::move(req);
  sim_->Send(std::move(msg));
}

void QueryService::ResolveExec(uint64_t qid, const QueryOptions& opts, Vid rid,
                               uint32_t depth, const std::set<Vid>& path,
                               Done done) {
  const provenance::ExecEntry* exec = store_->ExecFor(rid);
  if (exec == nullptr || depth == 0) {
    PartialResult r;
    r.truncated = true;
    done(r);
    return;
  }
  auto fan = std::make_shared<Fanout>();
  fan->opts = opts;
  fan->product = true;
  fan->acc.count = 1;
  fan->acc.nodes.insert(node());
  for (Vid input : exec->inputs) {
    fan->children.push_back([this, qid, opts, input, depth, path](Done d) {
      ResolveTuple(qid, opts, input, depth - 1, path, std::move(d));
    });
  }
  fan->done = std::move(done);
  fan->Run();
}

void QueryService::OnMessage(const net::Message& msg) {
  if (msg.payload.name() == kRequestTuple) {
    HandleRequest(msg.payload);
  } else if (msg.payload.name() == kReplyTuple) {
    HandleReply(msg.payload);
  }
}

void QueryService::HandleRequest(const Tuple& req) {
  if (req.arity() != 12) return;
  ++remote_requests_served_;
  uint64_t qid = static_cast<uint64_t>(req.field(1).as_int());
  int64_t token = req.field(2).as_int();
  Vid rid = ValueToVid(req.field(3));
  QueryOptions opts;
  opts.type = static_cast<QueryType>(req.field(4).as_int());
  opts.traversal = static_cast<Traversal>(req.field(5).as_int());
  opts.count_threshold = req.field(6).as_int();
  opts.use_cache = req.field(7).Truthy();
  opts.include_maybe = req.field(8).Truthy();
  uint32_t depth = static_cast<uint32_t>(req.field(9).as_int());
  std::set<Vid> path = DecodePath(req.field(10));
  NodeId reply_to = req.field(11).as_address();

  ResolveExec(qid, opts, rid, depth, path,
              [this, reply_to, token](const PartialResult& r) {
                SendReply(reply_to, token, r);
              });
}

void QueryService::SendReply(NodeId dst, int64_t token,
                             const PartialResult& result) {
  ValueList leaves;
  for (const auto& [vid, loc] : result.leaves) {
    leaves.push_back(
        Value::List({VidToValue(vid), Value::Address(loc)}));
  }
  ValueList nodes;
  for (NodeId n : result.nodes) nodes.push_back(Value::Address(n));
  Tuple rep(kReplyTuple,
            {Value::Address(dst), Value::Int(token), Value::Int(result.count),
             Value::List(std::move(leaves)), Value::List(std::move(nodes)),
             Value::Bool(result.truncated)});
  net::Message msg;
  msg.src = node();
  msg.dst = dst;
  msg.channel = channel_;
  msg.payload = std::move(rep);
  sim_->Send(std::move(msg));
}

void QueryService::HandleReply(const Tuple& rep) {
  if (rep.arity() != 6) return;
  int64_t token = rep.field(1).as_int();
  auto it = pending_.find(token);
  if (it == pending_.end()) return;
  Done done = std::move(it->second);
  pending_.erase(it);

  PartialResult result;
  result.count = rep.field(2).as_int();
  if (rep.field(3).is_list()) {
    for (const Value& v : rep.field(3).as_list()) {
      if (v.is_list() && v.as_list().size() == 2) {
        result.leaves.insert(
            {ValueToVid(v.as_list()[0]), v.as_list()[1].as_address()});
      }
    }
  }
  if (rep.field(4).is_list()) {
    for (const Value& v : rep.field(4).as_list()) {
      if (v.is_address()) result.nodes.insert(v.as_address());
    }
  }
  result.truncated = rep.field(5).Truthy();
  done(result);
}

void QueryService::ClearQuery(uint64_t qid) { memo_.erase(qid); }

void QueryService::OnNodeRestart(provenance::ProvStore* new_store) {
  store_ = new_store;
  cache_.InvalidateForRestart();
  // Memoized partials and pending remote continuations reference the dead
  // incarnation's graph; any in-flight query over a crashing node is
  // abandoned rather than answered from stale state.
  memo_.clear();
  pending_.clear();
}

ProvenanceQuerier::ProvenanceQuerier(net::Simulator* sim,
                                     std::vector<runtime::Engine*> engines)
    : sim_(sim), engines_(std::move(engines)) {
  sim_->MarkOverlayChannel(kProvQueryChannel);
  for (size_t i = 0; i < engines_.size(); ++i) {
    assert(engines_[i]->id() == i && "engines must be ordered by node id");
    stores_.push_back(std::make_unique<provenance::ProvStore>(engines_[i]));
    services_.push_back(
        std::make_unique<QueryService>(sim_, engines_[i], stores_[i].get()));
  }
}

Result<QueryResult> ProvenanceQuerier::Query(const Tuple& tuple,
                                             const QueryOptions& opts) {
  if (!tuple.HasLocation()) {
    return Status::InvalidArgument("tuple " + tuple.ToString() +
                                   " has no location attribute");
  }
  return QueryVid(tuple.Location(), tuple.Hash(), opts);
}

Result<QueryResult> ProvenanceQuerier::QueryVid(NodeId home, Vid vid,
                                                const QueryOptions& opts) {
  if (home >= services_.size()) {
    return Status::InvalidArgument("unknown home node " +
                                   std::to_string(home));
  }
  uint64_t qid = next_qid_++;
  net::Time start = sim_->now();
  const net::ChannelId ch = sim_->InternChannel(kProvQueryChannel);
  net::TrafficStats before = sim_->channel_traffic(ch);

  bool done = false;
  PartialResult partial;
  services_[home]->ResolveTuple(qid, opts, vid, opts.max_depth, {},
                                [&](const PartialResult& r) {
                                  partial = r;
                                  done = true;
                                });
  sim_->Run();
  for (auto& service : services_) service->ClearQuery(qid);
  if (!done) {
    return Status::RuntimeError("provenance query did not complete (lost "
                                "messages or partitioned overlay)");
  }

  QueryResult result;
  result.type = opts.type;
  result.count = partial.count;
  result.nodes = partial.nodes;
  result.truncated = partial.truncated;
  for (const auto& [leaf_vid, loc] : partial.leaves) {
    result.leaf_vids.push_back(leaf_vid);
    result.leaf_tuples.push_back(RenderVid(leaf_vid));
  }
  result.latency = sim_->now() - start;
  net::TrafficStats after = sim_->channel_traffic(ch);
  result.messages = after.messages - before.messages;
  result.bytes = after.bytes - before.bytes;
  return result;
}

std::string ProvenanceQuerier::RenderVid(Vid vid) const {
  for (const runtime::Engine* engine : engines_) {
    if (const Tuple* t = engine->FindTupleByVid(vid)) return t->ToString();
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "vid:%016llx",
                static_cast<unsigned long long>(vid));
  return buf;
}

uint64_t ProvenanceQuerier::total_cache_hits() const {
  uint64_t total = 0;
  for (const auto& s : services_) {
    total += const_cast<QueryService&>(*s).cache().hits();
  }
  return total;
}

uint64_t ProvenanceQuerier::total_cache_misses() const {
  uint64_t total = 0;
  for (const auto& s : services_) {
    total += const_cast<QueryService&>(*s).cache().misses();
  }
  return total;
}

void ProvenanceQuerier::ClearCaches() {
  for (auto& s : services_) s->cache().Clear();
}

void ProvenanceQuerier::RestartNode(NodeId id) {
  assert(id < stores_.size());
  // The fresh store's constructor replays the restored prov/ruleExec rows
  // into its adjacency indexes and registers a new engine observer, so it
  // must be built after Engine::RestoreCheckpoint has repopulated tables
  // (and cleared the old observers).
  stores_[id] = std::make_unique<provenance::ProvStore>(engines_[id]);
  services_[id]->OnNodeRestart(stores_[id].get());
}

}  // namespace query
}  // namespace nettrails
