// The ExSPAN distributed provenance query engine. Query execution performs
// a traversal of the provenance graph in a distributed fashion: a query for
// tuple T starts at T's home node, expands prov edges to rule-execution
// vertices (possibly on other nodes, reached over the "provq" overlay
// channel), recursively resolves the execution's input tuples, and folds
// results back along the reverse path. Supported optimizations (Section
// 2.2): result caching, alternative traversal orders (sequential vs
// parallel child resolution), and threshold-based pruning for derivation
// counting.
#ifndef NETTRAILS_QUERY_QUERY_ENGINE_H_
#define NETTRAILS_QUERY_QUERY_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/net/simulator.h"
#include "src/provenance/store.h"
#include "src/query/cache.h"
#include "src/runtime/engine.h"

namespace nettrails {
namespace query {

/// The overlay channel provenance queries travel on.
inline constexpr char kProvQueryChannel[] = "provq";

struct QueryOptions {
  QueryType type = QueryType::kLineage;
  Traversal traversal = Traversal::kParallel;
  /// For kDerivCount with kSequential traversal: stop expanding a vertex
  /// once its accumulated count reaches the threshold (the reported count
  /// becomes a lower bound). 0 disables pruning.
  int64_t count_threshold = 0;
  bool use_cache = true;
  /// Traverse maybe edges (inferred legacy-application dependencies).
  bool include_maybe = true;
  uint32_t max_depth = 200;
};

/// Completed query, with the measured cost of answering it.
struct QueryResult {
  QueryType type = QueryType::kLineage;
  int64_t count = 0;
  std::vector<Vid> leaf_vids;
  std::vector<std::string> leaf_tuples;  // rendered base/event tuples
  std::set<NodeId> nodes;
  bool truncated = false;
  net::Time latency = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Per-node query processor. Handles remote rule-execution resolution
/// requests and drives local recursive resolution with memoization.
class QueryService {
 public:
  using Done = std::function<void(const PartialResult&)>;

  QueryService(net::Simulator* sim, runtime::Engine* engine,
               provenance::ProvStore* store);

  NodeId node() const { return engine_->id(); }

  /// Resolves the provenance subtree rooted at local tuple `vid`.
  /// `path` carries the tuple VIDs on the current branch (cycle guard).
  void ResolveTuple(uint64_t qid, const QueryOptions& opts, Vid vid,
                    uint32_t depth, std::set<Vid> path, Done done);

  /// Drops per-query memoization state.
  void ClearQuery(uint64_t qid);

  /// Re-points the service at the store attached to a restarted engine and
  /// fences all cached/memoized results from the previous incarnation.
  /// Must be called whenever the node's ProvStore is replaced — cached
  /// answers keyed by the old store's version counter would otherwise be
  /// served against the new store's unrelated counter.
  void OnNodeRestart(provenance::ProvStore* new_store);

  ResultCache& cache() { return cache_; }
  uint64_t remote_requests_served() const { return remote_requests_served_; }

 private:
  struct MemoEntry {
    bool complete = false;
    PartialResult result;
    std::vector<Done> waiters;
  };

  void ResolveExec(uint64_t qid, const QueryOptions& opts, Vid rid,
                   uint32_t depth, const std::set<Vid>& path, Done done);
  void ResolveExecAt(uint64_t qid, const QueryOptions& opts, Vid rid,
                     NodeId rloc, uint32_t depth, const std::set<Vid>& path,
                     Done done);
  void OnMessage(const net::Message& msg);
  void HandleRequest(const Tuple& req);
  void HandleReply(const Tuple& rep);
  void SendReply(NodeId dst, int64_t token, const PartialResult& result);

  net::Simulator* sim_;
  runtime::Engine* engine_;
  provenance::ProvStore* store_;
  /// Interned kProvQueryChannel id, resolved once at construction.
  net::ChannelId channel_ = 0;
  ResultCache cache_;

  std::unordered_map<uint64_t, std::unordered_map<Vid, MemoEntry>> memo_;
  std::unordered_map<int64_t, Done> pending_;  // token -> continuation
  int64_t next_token_ = 1;
  uint64_t remote_requests_served_ = 0;
};

/// Client-side facade: owns a ProvStore and QueryService per node, issues
/// queries, runs the simulator to completion, and assembles QueryResults
/// with rendered leaf tuples and measured traffic.
class ProvenanceQuerier {
 public:
  /// `engines[i]` must be the engine of node i.
  ProvenanceQuerier(net::Simulator* sim,
                    std::vector<runtime::Engine*> engines);

  /// Queries the provenance of `tuple` (homed at its location attribute).
  Result<QueryResult> Query(const Tuple& tuple, const QueryOptions& opts = {});

  /// Queries by VID for historical or remote-known vertices.
  Result<QueryResult> QueryVid(NodeId home, Vid vid, const QueryOptions& opts);

  /// Renders a VID via the nodes' tuple indexes ("vid:<hex>" if unknown).
  std::string RenderVid(Vid vid) const;

  provenance::ProvStore* store(NodeId id) { return stores_[id].get(); }
  QueryService* service(NodeId id) { return services_[id].get(); }
  size_t node_count() const { return services_.size(); }

  /// Aggregate cache statistics across all nodes.
  uint64_t total_cache_hits() const;
  uint64_t total_cache_misses() const;
  void ClearCaches();

  /// Rebinds node `id` after an engine crash+restore: replaces its
  /// ProvStore with a fresh one (which re-bootstraps adjacency from the
  /// restored prov/ruleExec tables) and fences the node's query cache so
  /// no pre-crash answer survives into the new incarnation.
  void RestartNode(NodeId id);

 private:
  net::Simulator* sim_;
  std::vector<runtime::Engine*> engines_;
  std::vector<std::unique_ptr<provenance::ProvStore>> stores_;
  std::vector<std::unique_ptr<QueryService>> services_;
  uint64_t next_qid_ = 1;
};

}  // namespace query
}  // namespace nettrails

#endif  // NETTRAILS_QUERY_QUERY_ENGINE_H_
