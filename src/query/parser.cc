#include "src/query/parser.h"

#include <cctype>
#include <stdexcept>
#include <vector>

namespace nettrails {
namespace query {

namespace {

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

/// Splits into words, keeping a parenthesized tuple (which may contain
/// spaces inside lists/strings) as a single token.
Result<std::vector<std::string>> Split(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      cur += c;
      if (c == '\\' && i + 1 < text.size()) {
        cur += text[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      cur += c;
      continue;
    }
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (std::isspace(static_cast<unsigned char>(c)) && depth == 0) {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur += c;
  }
  if (in_string) return Status::ParseError("unterminated string in query");
  if (depth != 0) return Status::ParseError("unbalanced brackets in query");
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

Result<int64_t> ParseInt(const std::vector<std::string>& words, size_t* i,
                         const char* opt) {
  if (*i + 1 >= words.size()) {
    return Status::ParseError(std::string(opt) + " requires a number");
  }
  const std::string& w = words[++*i];
  try {
    size_t pos = 0;
    int64_t v = std::stoll(w, &pos);
    if (pos != w.size()) throw std::invalid_argument(w);
    return v;
  } catch (...) {
    return Status::ParseError(std::string(opt) + ": bad number '" + w + "'");
  }
}

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& text) {
  NT_ASSIGN_OR_RETURN(std::vector<std::string> words, Split(text));
  if (words.size() < 3) {
    return Status::ParseError(
        "query must be LINEAGE|NODES|COUNT OF <tuple> [options]");
  }
  ParsedQuery query;
  std::string kind = Upper(words[0]);
  if (kind == "LINEAGE") {
    query.options.type = QueryType::kLineage;
  } else if (kind == "NODES") {
    query.options.type = QueryType::kNodeSet;
  } else if (kind == "COUNT") {
    query.options.type = QueryType::kDerivCount;
  } else {
    return Status::ParseError("unknown query type " + words[0]);
  }
  if (Upper(words[1]) != "OF") {
    return Status::ParseError("expected OF after the query type");
  }
  NT_ASSIGN_OR_RETURN(query.target, Tuple::Parse(words[2]));
  if (!query.target.HasLocation()) {
    return Status::ParseError("query target must have an @node location");
  }

  for (size_t i = 3; i < words.size(); ++i) {
    std::string opt = Upper(words[i]);
    if (opt == "SEQUENTIAL") {
      query.options.traversal = Traversal::kSequential;
    } else if (opt == "PARALLEL") {
      query.options.traversal = Traversal::kParallel;
    } else if (opt == "NOCACHE") {
      query.options.use_cache = false;
    } else if (opt == "NOMAYBE") {
      query.options.include_maybe = false;
    } else if (opt == "THRESHOLD") {
      NT_ASSIGN_OR_RETURN(int64_t v, ParseInt(words, &i, "THRESHOLD"));
      if (v < 0) return Status::ParseError("THRESHOLD must be >= 0");
      query.options.count_threshold = v;
    } else if (opt == "DEPTH") {
      NT_ASSIGN_OR_RETURN(int64_t v, ParseInt(words, &i, "DEPTH"));
      if (v <= 0) return Status::ParseError("DEPTH must be positive");
      query.options.max_depth = static_cast<uint32_t>(v);
    } else {
      return Status::ParseError("unknown query option " + words[i]);
    }
  }
  return query;
}

std::string FormatQuery(const ParsedQuery& query) {
  std::string out;
  switch (query.options.type) {
    case QueryType::kLineage:
      out = "LINEAGE";
      break;
    case QueryType::kNodeSet:
      out = "NODES";
      break;
    case QueryType::kDerivCount:
      out = "COUNT";
      break;
  }
  out += " OF " + query.target.ToString();
  QueryOptions defaults;
  if (query.options.traversal == Traversal::kSequential) out += " SEQUENTIAL";
  if (!query.options.use_cache) out += " NOCACHE";
  if (!query.options.include_maybe) out += " NOMAYBE";
  if (query.options.count_threshold != defaults.count_threshold) {
    out += " THRESHOLD " + std::to_string(query.options.count_threshold);
  }
  if (query.options.max_depth != defaults.max_depth) {
    out += " DEPTH " + std::to_string(query.options.max_depth);
  }
  return out;
}

}  // namespace query
}  // namespace nettrails
