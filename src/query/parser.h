// A small declarative query language for network provenance — the
// distributed ProQL-flavored frontend sketched as ongoing work in the
// paper's Section 3. Queries are text:
//
//   LINEAGE OF mincost(@0,@3,6)
//   NODES   OF path(@0,@3,3,[@0,@1,@2,@3])
//   COUNT   OF cost(@1,@2,5) THRESHOLD 4 SEQUENTIAL
//
// Options (any order, after the tuple):
//   SEQUENTIAL | PARALLEL    traversal order
//   NOCACHE                  disable result caching
//   NOMAYBE                  ignore maybe (inferred) edges
//   THRESHOLD <n>            count-pruning threshold
//   DEPTH <n>                traversal depth limit
#ifndef NETTRAILS_QUERY_PARSER_H_
#define NETTRAILS_QUERY_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/query/query_engine.h"

namespace nettrails {
namespace query {

/// A parsed query: the target tuple plus execution options.
struct ParsedQuery {
  Tuple target;
  QueryOptions options;
};

/// Parses the query text. Keywords are case-insensitive; the tuple uses
/// the standard rendering syntax (Tuple::Parse).
Result<ParsedQuery> ParseQuery(const std::string& text);

/// Renders a query back to canonical text (round-trips with ParseQuery).
std::string FormatQuery(const ParsedQuery& query);

}  // namespace query
}  // namespace nettrails

#endif  // NETTRAILS_QUERY_PARSER_H_
