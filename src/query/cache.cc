#include "src/query/cache.h"

namespace nettrails {
namespace query {

const PartialResult* ResultCache::Lookup(const CacheKey& key,
                                         uint64_t current_version) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.version != current_version) {
    ++misses_;
    if (it != entries_.end()) entries_.erase(it);  // stale
    return nullptr;
  }
  ++hits_;
  return &it->second.result;
}

void ResultCache::Store(const CacheKey& key, uint64_t version,
                        PartialResult result) {
  entries_[key] = Entry{version, std::move(result)};
}

}  // namespace query
}  // namespace nettrails
