#include "src/query/cache.h"

namespace nettrails {
namespace query {

const PartialResult* ResultCache::Lookup(const CacheKey& key,
                                         uint64_t current_version) {
  if (current_version != seen_version_) {
    // The provenance version moved: every cached entry is stale. Sweep now
    // so the map stays bounded by the number of distinct keys queried since
    // the *last* change, not since process start.
    entries_.clear();
    seen_version_ = current_version;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ResultCache::Store(const CacheKey& key, uint64_t version,
                        PartialResult result) {
  if (result.truncated) return;  // budget artifact, not a graph property
  if (version != seen_version_) {
    if (version < seen_version_) return;  // producer raced a newer sweep
    entries_.clear();
    seen_version_ = version;
  }
  entries_[key] = std::move(result);
}

}  // namespace query
}  // namespace nettrails
