// Provenance graph exporters (GraphViz DOT and JSON) — the file-based
// substitutes for the interactive provenance visualizer's rendering layer.
#ifndef NETTRAILS_VIZ_EXPORT_H_
#define NETTRAILS_VIZ_EXPORT_H_

#include <string>

#include "src/provenance/graph.h"

namespace nettrails {
namespace viz {

/// GraphViz DOT: tuple vertices as boxes (base tuples shaded), rule
/// executions as ellipses, maybe edges dashed.
std::string ToDot(const provenance::Graph& graph);

/// Compact JSON with "vertices" and "edges" arrays.
std::string ToJson(const provenance::Graph& graph);

/// Indented text tree rooted at graph.root (cycle- and share-safe): the
/// quick textual view used by the examples.
std::string ToTextTree(const provenance::Graph& graph, size_t max_depth = 32);

}  // namespace viz
}  // namespace nettrails

#endif  // NETTRAILS_VIZ_EXPORT_H_
