// System snapshots: "per-node provenance information and other system state
// (such as the network topology ...) can be periodically captured as system
// snapshots at each node, and then propagated to a central Log Store"
// (Section 2.3).
#ifndef NETTRAILS_VIZ_SNAPSHOT_H_
#define NETTRAILS_VIZ_SNAPSHOT_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/tuple.h"
#include "src/net/simulator.h"

namespace nettrails {
namespace viz {

/// One node's state at a point in virtual time.
struct NodeSnapshot {
  NodeId node = 0;
  std::map<std::string, std::vector<Tuple>> tables;

  size_t TotalTuples() const {
    size_t n = 0;
    for (const auto& [name, tuples] : tables) n += tuples.size();
    return n;
  }
};

/// State of one link at snapshot time.
struct LinkSnapshot {
  NodeId a = 0;
  NodeId b = 0;
  bool up = true;
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// A system-wide snapshot (what the demo's time slider scrubs through).
struct SystemSnapshot {
  net::Time time = 0;
  std::vector<NodeSnapshot> nodes;
  std::vector<LinkSnapshot> links;

  const NodeSnapshot* FindNode(NodeId id) const {
    for (const NodeSnapshot& n : nodes) {
      if (n.node == id) return &n;
    }
    return nullptr;
  }
};

}  // namespace viz
}  // namespace nettrails

#endif  // NETTRAILS_VIZ_SNAPSHOT_H_
