#include "src/viz/log_store.h"

#include "src/provenance/rewrite.h"

namespace nettrails {
namespace viz {

LogStore::LogStore(net::Simulator* sim, std::vector<runtime::Engine*> engines,
                   Options options)
    : sim_(sim), engines_(std::move(engines)), options_(options) {
  sim_->AddLinkObserver([this](NodeId a, NodeId b, bool up) {
    link_events_.push_back({sim_->now(), a, b, up});
  });
}

const SystemSnapshot& LogStore::CaptureNow() {
  SystemSnapshot snap;
  snap.time = sim_->now();
  for (runtime::Engine* engine : engines_) {
    NodeSnapshot ns;
    ns.node = engine->id();
    for (const auto& [name, info] : engine->program().tables) {
      if (!info.materialized) continue;
      bool is_prov = provenance::IsProvenancePredicate(name);
      bool is_eh = name.rfind(provenance::kEhPrefix, 0) == 0;
      if (is_eh && !options_.include_eh) continue;
      if (is_prov && !is_eh && !options_.include_provenance) continue;
      std::vector<Tuple> contents = engine->TableContents(name);
      if (!contents.empty()) ns.tables[name] = std::move(contents);
    }
    snap.nodes.push_back(std::move(ns));
  }
  for (const auto& [a, b] : sim_->Links()) {
    const net::LinkState* ls = sim_->link(a, b);
    snap.links.push_back({a, b, ls->up, ls->traffic.messages,
                          ls->traffic.bytes});
  }
  snapshots_.push_back(std::move(snap));
  return snapshots_.back();
}

void LogStore::CapturePeriodically(net::Time period, net::Time until) {
  for (net::Time t = sim_->now() + period; t <= until; t += period) {
    sim_->ScheduleAt(t, [this]() { CaptureNow(); });
  }
}

const SystemSnapshot* LogStore::SnapshotAt(net::Time t) const {
  const SystemSnapshot* best = nullptr;
  for (const SystemSnapshot& s : snapshots_) {
    if (s.time <= t && (best == nullptr || s.time > best->time)) best = &s;
  }
  return best;
}

std::vector<Tuple> LogStore::TableAt(net::Time t, NodeId node,
                                     const std::string& table) const {
  const SystemSnapshot* snap = SnapshotAt(t);
  if (snap == nullptr) return {};
  const NodeSnapshot* ns = snap->FindNode(node);
  if (ns == nullptr) return {};
  auto it = ns->tables.find(table);
  return it == ns->tables.end() ? std::vector<Tuple>{} : it->second;
}

}  // namespace viz
}  // namespace nettrails
