#include "src/viz/export.h"

#include <set>

namespace nettrails {
namespace viz {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string VidName(Vid v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "v%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string ToDot(const provenance::Graph& graph) {
  std::string out = "digraph provenance {\n  rankdir=BT;\n";
  for (const auto& [id, v] : graph.vertices) {
    out += "  " + VidName(id) + " [label=\"" + EscapeDot(v.label) +
           "\\n@" + std::to_string(v.location) + "\"";
    if (v.kind == provenance::VertexKind::kTuple) {
      out += ", shape=box";
      if (v.is_base) out += ", style=filled, fillcolor=lightgray";
      if (id == graph.root) out += ", color=red, penwidth=2";
    } else {
      out += ", shape=ellipse";
    }
    out += "];\n";
  }
  for (const provenance::GraphEdge& e : graph.edges) {
    out += "  " + VidName(e.to) + " -> " + VidName(e.from);
    if (e.maybe) out += " [style=dashed, label=\"maybe\"]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::string ToJson(const provenance::Graph& graph) {
  std::string out = "{\n  \"root\": \"" + VidName(graph.root) +
                    "\",\n  \"vertices\": [\n";
  bool first = true;
  for (const auto& [id, v] : graph.vertices) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"id\": \"" + VidName(id) + "\", \"kind\": \"" +
           (v.kind == provenance::VertexKind::kTuple ? "tuple" : "ruleExec") +
           "\", \"node\": " + std::to_string(v.location) + ", \"label\": \"" +
           EscapeJson(v.label) + "\", \"base\": " +
           (v.is_base ? "true" : "false") + "}";
  }
  out += "\n  ],\n  \"edges\": [\n";
  first = true;
  for (const provenance::GraphEdge& e : graph.edges) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"effect\": \"" + VidName(e.from) + "\", \"cause\": \"" +
           VidName(e.to) + "\", \"maybe\": " + (e.maybe ? "true" : "false") +
           "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

namespace {

void RenderTree(const provenance::Graph& graph, Vid v, size_t depth,
                size_t max_depth, std::set<Vid>* on_path, std::string* out) {
  auto it = graph.vertices.find(v);
  if (it == graph.vertices.end()) return;
  const provenance::Vertex& vert = it->second;
  out->append(2 * depth, ' ');
  if (vert.kind == provenance::VertexKind::kRuleExec) {
    *out += "<- rule " + vert.label + " @" + std::to_string(vert.location);
  } else {
    *out += vert.label + " @" + std::to_string(vert.location);
    if (vert.is_base) *out += " [base]";
  }
  if (depth >= max_depth || on_path->count(v)) {
    *out += " ...\n";
    return;
  }
  *out += "\n";
  on_path->insert(v);
  for (const provenance::GraphEdge& e : graph.edges) {
    if (e.from != v) continue;
    if (e.maybe) {
      out->append(2 * (depth + 1), ' ');
      *out += "(maybe)\n";
    }
    RenderTree(graph, e.to, depth + 1, max_depth, on_path, out);
  }
  on_path->erase(v);
}

}  // namespace

std::string ToTextTree(const provenance::Graph& graph, size_t max_depth) {
  std::string out;
  std::set<Vid> on_path;
  RenderTree(graph, graph.root, 0, max_depth, &on_path, &out);
  return out;
}

}  // namespace viz
}  // namespace nettrails
