#include "src/viz/hypertree.h"

#include <cmath>
#include <deque>
#include <set>

namespace nettrails {
namespace viz {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Hypertree::Hypertree(const provenance::Graph& graph, double step) {
  root_ = graph.root;
  focused_ = root_;

  // Adjacency index (ChildrenOf per vertex would be O(V*E)).
  std::map<Vid, std::vector<Vid>> children_of;
  for (const provenance::GraphEdge& e : graph.edges) {
    children_of[e.from].push_back(e.to);
  }

  // BFS spanning tree over the (possibly shared / DAG-shaped) provenance
  // graph: first visit wins a vertex.
  std::set<Vid> seen;
  std::deque<Vid> frontier;
  auto rit = graph.vertices.find(root_);
  if (rit == graph.vertices.end()) return;
  seen.insert(root_);
  frontier.push_back(root_);
  HypertreeNode root_node;
  root_node.id = root_;
  root_node.parent = root_;
  root_node.label = rit->second.label;
  root_node.is_exec = rit->second.kind == provenance::VertexKind::kRuleExec;
  root_node.is_base = rit->second.is_base;
  nodes_[root_] = root_node;

  while (!frontier.empty()) {
    Vid v = frontier.front();
    frontier.pop_front();
    HypertreeNode& parent = nodes_[v];
    auto cit = children_of.find(v);
    if (cit == children_of.end()) continue;
    for (Vid child : cit->second) {
      if (!seen.insert(child).second) continue;
      auto cit = graph.vertices.find(child);
      if (cit == graph.vertices.end()) continue;
      HypertreeNode node;
      node.id = child;
      node.parent = v;
      node.depth = parent.depth + 1;
      node.label = cit->second.label;
      node.is_exec = cit->second.kind == provenance::VertexKind::kRuleExec;
      node.is_base = cit->second.is_base;
      nodes_[child] = node;
      parent.children.push_back(child);
      frontier.push_back(child);
      max_depth_ = std::max(max_depth_, node.depth);
    }
  }

  // Leaf counts bottom-up (post-order via depth bucketing).
  std::vector<Vid> order;
  order.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) order.push_back(id);
  std::sort(order.begin(), order.end(), [this](Vid a, Vid b) {
    return nodes_[a].depth > nodes_[b].depth;
  });
  for (Vid id : order) {
    HypertreeNode& n = nodes_[id];
    if (n.children.empty()) {
      n.leaves = 1;
    } else {
      n.leaves = 0;
      for (Vid c : n.children) n.leaves += nodes_[c].leaves;
    }
  }

  LayoutSubtree(root_, 0, 2 * kPi, step);
  ApplyFocus({0, 0});
}

void Hypertree::LayoutSubtree(Vid v, double angle_lo, double angle_hi,
                              double step) {
  HypertreeNode& n = nodes_[v];
  double mid = (angle_lo + angle_hi) / 2;
  double radius = std::tanh(static_cast<double>(n.depth) * step / 2);
  n.base_pos = std::polar(radius, mid);
  if (n.id == root_) n.base_pos = {0, 0};

  double total = static_cast<double>(n.leaves);
  double at = angle_lo;
  for (Vid c : n.children) {
    double share =
        (angle_hi - angle_lo) * static_cast<double>(nodes_[c].leaves) / total;
    LayoutSubtree(c, at, at + share, step);
    at += share;
  }
}

std::complex<double> Hypertree::MobiusTranslate(std::complex<double> z,
                                                std::complex<double> c) {
  return (z - c) / (1.0 - std::conj(c) * z);
}

void Hypertree::ApplyFocus(std::complex<double> c) {
  focus_center_ = c;
  for (auto& [id, n] : nodes_) {
    n.pos = MobiusTranslate(n.base_pos, c);
  }
}

const HypertreeNode* Hypertree::node(Vid id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

bool Hypertree::Focus(Vid v) {
  auto it = nodes_.find(v);
  if (it == nodes_.end()) return false;
  focused_ = v;
  ApplyFocus(it->second.base_pos);
  return true;
}

std::vector<std::map<Vid, std::complex<double>>> Hypertree::TransitionFrames(
    Vid v, size_t steps) {
  std::vector<std::map<Vid, std::complex<double>>> frames;
  auto it = nodes_.find(v);
  if (it == nodes_.end() || steps == 0) return frames;
  std::complex<double> from = focus_center_;
  std::complex<double> to = it->second.base_pos;
  for (size_t s = 1; s <= steps; ++s) {
    double t = static_cast<double>(s) / static_cast<double>(steps);
    std::complex<double> c = from + t * (to - from);
    std::map<Vid, std::complex<double>> frame;
    for (const auto& [id, n] : nodes_) {
      frame[id] = MobiusTranslate(n.base_pos, c);
    }
    frames.push_back(std::move(frame));
  }
  focused_ = v;
  ApplyFocus(to);
  return frames;
}

std::string Hypertree::AsciiRender(size_t width, size_t height) const {
  std::vector<std::string> grid(height, std::string(width, ' '));
  auto plot = [&](double x, double y, char c) {
    // Disk [-1,1]^2 -> grid.
    int col = static_cast<int>((x + 1) / 2 * static_cast<double>(width - 1));
    int row = static_cast<int>((1 - (y + 1) / 2) * static_cast<double>(height - 1));
    if (row < 0 || col < 0 || row >= static_cast<int>(height) ||
        col >= static_cast<int>(width)) {
      return;
    }
    grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = c;
  };
  // Disk boundary.
  for (int i = 0; i < 128; ++i) {
    double a = 2 * kPi * i / 128;
    plot(std::cos(a), std::sin(a), '.');
  }
  for (const auto& [id, n] : nodes_) {
    char c = n.is_exec ? 'x' : 'o';
    if (id == focused_) c = '*';
    plot(n.pos.real(), n.pos.imag(), c);
  }
  std::string out;
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace viz
}  // namespace nettrails
