// snapshot.h is header-only; this translation unit exists so the target
// layout stays uniform and future out-of-line helpers have a home.
#include "src/viz/snapshot.h"
