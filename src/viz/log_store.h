// The central Log Store of Figure 1: collects periodic per-node snapshots
// and link events, and supports replay — the demo pauses the network at a
// given time and views any node's provenance as of that snapshot.
#ifndef NETTRAILS_VIZ_LOG_STORE_H_
#define NETTRAILS_VIZ_LOG_STORE_H_

#include <string>
#include <vector>

#include "src/net/simulator.h"
#include "src/runtime/engine.h"
#include "src/viz/snapshot.h"

namespace nettrails {
namespace viz {

/// One recorded topology event (for the RapidNet-visualizer timeline).
struct LinkEvent {
  net::Time time = 0;
  NodeId a = 0;
  NodeId b = 0;
  bool up = true;
};

struct LogStoreOptions {
  /// Capture provenance tables (prov/ruleExec/eh_*) in snapshots.
  bool include_provenance = true;
  /// Capture internal eh_* views (verbose).
  bool include_eh = false;
};

class LogStore {
 public:
  using Options = LogStoreOptions;

  /// Observes `engines` (indexed by node id) and link events on `sim`.
  LogStore(net::Simulator* sim, std::vector<runtime::Engine*> engines,
           Options options = Options());

  /// Captures a system-wide snapshot now.
  const SystemSnapshot& CaptureNow();

  /// Schedules periodic captures every `period` until `until`.
  void CapturePeriodically(net::Time period, net::Time until);

  const std::vector<SystemSnapshot>& snapshots() const { return snapshots_; }
  const std::vector<LinkEvent>& link_events() const { return link_events_; }

  /// Latest snapshot at or before `t` (nullptr if none) — the replay
  /// operation behind the demo's "pause the network at a given time".
  const SystemSnapshot* SnapshotAt(net::Time t) const;

  /// Tuples of `table` at node `node` as of the snapshot at/before `t`.
  std::vector<Tuple> TableAt(net::Time t, NodeId node,
                             const std::string& table) const;

 private:
  net::Simulator* sim_;
  std::vector<runtime::Engine*> engines_;
  Options options_;
  std::vector<SystemSnapshot> snapshots_;
  std::vector<LinkEvent> link_events_;
};

}  // namespace viz
}  // namespace nettrails

#endif  // NETTRAILS_VIZ_LOG_STORE_H_
