// Hyperbolic (Poincaré-disk) tree layout: the geometry behind the paper's
// hypertree provenance visualizer. "The provenance graph is presented on a
// hyperbolic plane, enabling users to focus on small segments of the graph;
// additionally, users can navigate the provenance graph by changing focus
// with smooth transitions" (Section 2.3). The Java GUI is replaced by this
// deterministic layout engine plus an ASCII renderer; refocusing is a
// Möbius translation z -> (z - c) / (1 - conj(c) z), and smooth transitions
// are parameterized interpolations of the focus point.
#ifndef NETTRAILS_VIZ_HYPERTREE_H_
#define NETTRAILS_VIZ_HYPERTREE_H_

#include <complex>
#include <map>
#include <string>
#include <vector>

#include "src/provenance/graph.h"

namespace nettrails {
namespace viz {

struct HypertreeNode {
  Vid id = 0;
  std::string label;
  Vid parent = 0;  // == id for the root
  std::vector<Vid> children;
  size_t depth = 0;
  bool is_exec = false;
  bool is_base = false;
  size_t leaves = 1;  // leaf count of the subtree (wedge share)
  /// Position with the root focused (layout coordinates).
  std::complex<double> base_pos{0, 0};
  /// Position under the current focus transform.
  std::complex<double> pos{0, 0};
};

class Hypertree {
 public:
  /// Builds a BFS spanning tree of `graph` from its root and lays it out
  /// radially on the Poincaré disk: a node at depth d sits at hyperbolic
  /// radius d*step (Euclidean tanh(d*step/2)), inside the angular wedge
  /// allotted to its subtree (proportional to leaf counts).
  explicit Hypertree(const provenance::Graph& graph, double step = 0.9);

  const std::map<Vid, HypertreeNode>& nodes() const { return nodes_; }
  const HypertreeNode* node(Vid id) const;
  Vid root() const { return root_; }
  size_t size() const { return nodes_.size(); }
  size_t max_depth() const { return max_depth_; }

  /// Möbius translation of the disk: (z - c) / (1 - conj(c) z).
  static std::complex<double> MobiusTranslate(std::complex<double> z,
                                              std::complex<double> c);

  /// Re-centers the view on vertex `v` (the click-to-refocus interaction).
  /// Updates every node's `pos`. Returns false for unknown vertices.
  bool Focus(Vid v);
  Vid focused() const { return focused_; }

  /// Intermediate position maps for a smooth transition from the current
  /// focus to `v` (`steps` frames, last frame == Focus(v) result). Also
  /// applies the final focus.
  std::vector<std::map<Vid, std::complex<double>>> TransitionFrames(
      Vid v, size_t steps);

  /// Character rendering of the current view: '*' focus, 'o' tuples,
  /// 'x' rule executions, '.' disk boundary.
  std::string AsciiRender(size_t width = 64, size_t height = 32) const;

 private:
  void LayoutSubtree(Vid v, double angle_lo, double angle_hi, double step);
  void ApplyFocus(std::complex<double> c);

  std::map<Vid, HypertreeNode> nodes_;
  Vid root_ = 0;
  Vid focused_ = 0;
  std::complex<double> focus_center_{0, 0};
  size_t max_depth_ = 0;
};

}  // namespace viz
}  // namespace nettrails

#endif  // NETTRAILS_VIZ_HYPERTREE_H_
