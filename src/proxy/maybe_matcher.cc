#include "src/proxy/maybe_matcher.h"

namespace nettrails {
namespace proxy {

bool IsExtend(NodeId self, const RouteMessage& input,
              const RouteMessage& output) {
  if (input.withdraw || output.withdraw) return false;
  if (input.prefix != output.prefix) return false;
  if (output.path.size() != input.path.size() + 1) return false;
  if (output.path.empty() || output.path.front() != self) return false;
  for (size_t i = 0; i < input.path.size(); ++i) {
    if (output.path[i + 1] != input.path[i]) return false;
  }
  return true;
}

std::vector<MaybeMatch> MatchMaybe(NodeId self,
                                   const std::vector<RouteMessage>& inputs,
                                   const std::vector<RouteMessage>& outputs) {
  std::vector<MaybeMatch> out;
  for (size_t o = 0; o < outputs.size(); ++o) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (IsExtend(self, inputs[i], outputs[o])) {
        out.push_back({i, o});
      }
    }
  }
  return out;
}

}  // namespace proxy
}  // namespace nettrails
