// Legacy-application proxy (Figure 1): intercepts the messages of an
// unmodified ("black box") application, extracts state changes, and feeds
// them into the node's NDlog engine as inputRoute / outputRoute tuples.
// The maybe rules of the loaded program then infer the likely causal
// dependencies between them (Section 2.2).
#ifndef NETTRAILS_PROXY_PROXY_H_
#define NETTRAILS_PROXY_PROXY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/runtime/engine.h"

namespace nettrails {
namespace proxy {

/// An intercepted routing message, direction-agnostic. `path` is the
/// AS-path (front = most recent hop).
struct RouteMessage {
  NodeId peer = 0;  // neighbor the message came from / goes to
  int64_t prefix = 0;
  std::vector<NodeId> path;
  bool withdraw = false;
};

/// Per-node proxy. The engine must be running a program with inputRoute /
/// outputRoute tables (see protocols::BgpMaybeProgram).
class Proxy {
 public:
  explicit Proxy(runtime::Engine* engine);

  /// A message from `peer` entering the legacy application.
  Status OnIncoming(const RouteMessage& msg);

  /// A message leaving the legacy application towards `peer`.
  Status OnOutgoing(const RouteMessage& msg);

  uint64_t incoming_seen() const { return incoming_seen_; }
  uint64_t outgoing_seen() const { return outgoing_seen_; }

  /// Builds the tuple a message maps to (exposed for tests).
  Tuple ToTuple(const char* table, const RouteMessage& msg) const;

 private:
  Status Apply(const char* table,
               std::map<std::pair<NodeId, int64_t>, Tuple>* current,
               const RouteMessage& msg);

  runtime::Engine* engine_;
  // Current announcement per (peer, prefix), for explicit withdrawals.
  std::map<std::pair<NodeId, int64_t>, Tuple> current_in_;
  std::map<std::pair<NodeId, int64_t>, Tuple> current_out_;
  uint64_t incoming_seen_ = 0;
  uint64_t outgoing_seen_ = 0;
};

}  // namespace proxy
}  // namespace nettrails

#endif  // NETTRAILS_PROXY_PROXY_H_
