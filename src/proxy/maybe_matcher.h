// Reference (offline) matcher for maybe-rule semantics: given the observed
// inputRoute / outputRoute state, computes the causal pairs the paper's
// br1 rule should infer. Used to cross-validate the engine's declarative
// maybe-edge inference in tests, and by diagnostics that want match
// statistics without a running engine.
#ifndef NETTRAILS_PROXY_MAYBE_MATCHER_H_
#define NETTRAILS_PROXY_MAYBE_MATCHER_H_

#include <cstdint>
#include <vector>

#include "src/common/value.h"
#include "src/proxy/proxy.h"

namespace nettrails {
namespace proxy {

/// One inferred causal pair: output message likely caused by input message.
struct MaybeMatch {
  size_t input_index = 0;
  size_t output_index = 0;
};

/// True if `output.path` equals `input.path` with `self` prepended and the
/// prefixes agree — the f_isExtend relation of rule br1.
bool IsExtend(NodeId self, const RouteMessage& input,
              const RouteMessage& output);

/// All (input, output) pairs related by IsExtend. Quadratic reference
/// implementation (per prefix), intentionally simple.
std::vector<MaybeMatch> MatchMaybe(NodeId self,
                                   const std::vector<RouteMessage>& inputs,
                                   const std::vector<RouteMessage>& outputs);

}  // namespace proxy
}  // namespace nettrails

#endif  // NETTRAILS_PROXY_MAYBE_MATCHER_H_
