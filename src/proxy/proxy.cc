#include "src/proxy/proxy.h"

namespace nettrails {
namespace proxy {

Proxy::Proxy(runtime::Engine* engine) : engine_(engine) {}

Tuple Proxy::ToTuple(const char* table, const RouteMessage& msg) const {
  ValueList path;
  path.reserve(msg.path.size());
  for (NodeId hop : msg.path) path.push_back(Value::Address(hop));
  return Tuple(table, {Value::Address(engine_->id()), Value::Address(msg.peer),
                       Value::Int(msg.prefix), Value::List(std::move(path))});
}

Status Proxy::Apply(const char* table,
                    std::map<std::pair<NodeId, int64_t>, Tuple>* current,
                    const RouteMessage& msg) {
  std::pair<NodeId, int64_t> key{msg.peer, msg.prefix};
  if (msg.withdraw) {
    auto it = current->find(key);
    if (it == current->end()) return Status::OK();  // unknown: ignore
    Status st = engine_->Delete(it->second);
    current->erase(it);
    return st;
  }
  Tuple tuple = ToTuple(table, msg);
  // An announcement for a (peer, prefix) implicitly replaces the previous
  // one; the engine's key-replacement semantics retract it with cascade.
  (*current)[key] = tuple;
  return engine_->Insert(tuple);
}

Status Proxy::OnIncoming(const RouteMessage& msg) {
  ++incoming_seen_;
  return Apply("inputRoute", &current_in_, msg);
}

Status Proxy::OnOutgoing(const RouteMessage& msg) {
  ++outgoing_seen_;
  return Apply("outputRoute", &current_out_, msg);
}

}  // namespace proxy
}  // namespace nettrails
