#include "src/provenance/secure.h"

#include <deque>
#include <set>

#include "src/common/hash.h"

namespace nettrails {
namespace provenance {

KeyAuthority::KeyAuthority(uint64_t master_seed) : master_seed_(master_seed) {}

MacKey KeyAuthority::KeyFor(NodeId node) const {
  Hasher h;
  h.AddU64(master_seed_);
  h.AddString("node-key");
  h.AddU64(node);
  return h.Digest();
}

uint64_t KeyAuthority::MacEdge(const SignedEdge& edge) const {
  Hasher h;
  h.AddU64(KeyFor(edge.loc));
  h.AddString("prov-edge");
  h.AddU64(edge.vid);
  h.AddU64(edge.loc);
  h.AddU64(edge.rid);
  h.AddU64(edge.rloc);
  h.AddU64(edge.maybe ? 1 : 0);
  return h.Digest();
}

uint64_t KeyAuthority::MacExec(const SignedExec& exec) const {
  Hasher h;
  h.AddU64(KeyFor(exec.rloc));
  h.AddString("rule-exec");
  h.AddU64(exec.rid);
  h.AddU64(exec.rloc);
  h.AddString(exec.rule);
  h.AddU64(exec.inputs.size());
  for (Vid v : exec.inputs) h.AddU64(v);
  return h.Digest();
}

Evidence CollectEvidence(const std::vector<const ProvStore*>& stores,
                         const KeyAuthority& authority, NodeId root_home,
                         Vid root, size_t max_depth) {
  Evidence evidence;
  std::set<Vid> seen_tuples;
  std::set<Vid> seen_execs;
  // BFS over (tuple vid, home, depth).
  std::deque<std::tuple<Vid, NodeId, size_t>> frontier;
  frontier.push_back({root, root_home, max_depth});
  seen_tuples.insert(root);
  while (!frontier.empty()) {
    auto [vid, home, depth] = frontier.front();
    frontier.pop_front();
    if (depth == 0 || home >= stores.size()) continue;
    const std::vector<ProvEdge>* edges = stores[home]->EdgesFor(vid);
    if (edges == nullptr) continue;
    for (const ProvEdge& e : *edges) {
      SignedEdge se;
      se.vid = vid;
      se.loc = home;
      se.rid = e.rid;
      se.rloc = e.rloc;
      se.maybe = e.maybe;
      se.mac = authority.MacEdge(se);
      evidence.edges.push_back(se);
      if (e.IsSelf(vid)) continue;
      if (!seen_execs.insert(e.rid).second) continue;
      const ExecEntry* exec =
          e.rloc < stores.size() ? stores[e.rloc]->ExecFor(e.rid) : nullptr;
      if (exec == nullptr) continue;
      SignedExec sx;
      sx.rid = e.rid;
      sx.rloc = e.rloc;
      sx.rule = exec->rule;
      sx.inputs = exec->inputs;
      sx.mac = authority.MacExec(sx);
      evidence.execs.push_back(sx);
      for (Vid input : exec->inputs) {
        if (seen_tuples.insert(input).second) {
          // Inputs of an execution are homed at the executing node.
          frontier.push_back({input, e.rloc, depth - 1});
        }
      }
    }
  }
  return evidence;
}

VerifyResult VerifyEvidence(const Evidence& evidence,
                            const KeyAuthority& authority, Vid root) {
  VerifyResult result;

  std::map<Vid, const SignedExec*> execs;
  for (const SignedExec& sx : evidence.execs) {
    if (authority.MacExec(sx) != sx.mac) {
      result.Fail("bad MAC on rule execution " + sx.rule);
      continue;
    }
    execs[sx.rid] = &sx;
  }

  std::set<Vid> explained;  // tuples with at least one valid edge
  bool root_present = false;
  for (const SignedEdge& se : evidence.edges) {
    if (authority.MacEdge(se) != se.mac) {
      result.Fail("bad MAC on provenance edge");
      continue;
    }
    explained.insert(se.vid);
    if (se.vid == root) root_present = true;
    if (se.rid == se.vid) continue;  // base self-edge
    auto it = execs.find(se.rid);
    if (it == execs.end()) {
      result.Fail("edge references missing/invalid rule execution");
      continue;
    }
    if (it->second->rloc != se.rloc) {
      result.Fail("edge and execution disagree on the executing node");
    }
  }
  if (!root_present) {
    result.Fail("no valid provenance edge for the queried tuple");
  }

  // Input coverage: each execution input must be explained by an edge
  // (derivation or self) somewhere in the evidence — otherwise a node
  // could claim support from tuples nobody vouches for. Unexplained
  // inputs are reported; transient events are legitimately edge-free, so
  // callers decide whether those reports are fatal.
  for (const auto& [rid, sx] : execs) {
    for (Vid input : sx->inputs) {
      if (!explained.count(input)) {
        result.problems.push_back("unvouched input of rule " + sx->rule);
      }
    }
  }
  return result;
}

}  // namespace provenance
}  // namespace nettrails
