// Centralized assembly of the distributed provenance graph, as the
// visualization node does from propagated snapshots (Section 2.3). The
// graph is the paper's model: an acyclic graph G(V,E) whose vertices are
// tuple vertices and rule-execution vertices, with edges representing
// dataflow between them.
#ifndef NETTRAILS_PROVENANCE_GRAPH_H_
#define NETTRAILS_PROVENANCE_GRAPH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/tuple.h"
#include "src/provenance/store.h"

namespace nettrails {
namespace provenance {

enum class VertexKind { kTuple, kRuleExec };

struct Vertex {
  Vid id = 0;
  VertexKind kind = VertexKind::kTuple;
  NodeId location = 0;
  /// Tuple rendering, or rule name for executions.
  std::string label;
  bool is_base = false;  // tuple vertex with a self-edge (or no derivation)
};

/// Directed edge cause -> effect is stored effect-first for traversal:
/// from = effect vertex, to = cause vertex.
struct GraphEdge {
  Vid from = 0;
  Vid to = 0;
  bool maybe = false;
};

struct Graph {
  Vid root = 0;
  std::map<Vid, Vertex> vertices;
  std::vector<GraphEdge> edges;

  /// Children (causes) of a vertex, in insertion order.
  std::vector<Vid> ChildrenOf(Vid v) const;
  size_t tuple_vertices() const;
  size_t exec_vertices() const;
};

/// Renders a VID into a human-readable label (typically backed by the
/// engines' VID indexes).
using VidLabeler = std::function<std::string(Vid)>;

/// Assembles the provenance graph rooted at tuple `root` (homed at
/// `root_home`) by following prov/ruleExec across all node stores.
/// `stores[i]` must belong to node i. Depth-limited; cycles are broken.
Graph BuildGraph(const std::vector<const ProvStore*>& stores, NodeId root_home,
                 Vid root, const VidLabeler& labeler, size_t max_depth = 64,
                 bool include_maybe = true);

}  // namespace provenance
}  // namespace nettrails

#endif  // NETTRAILS_PROVENANCE_GRAPH_H_
