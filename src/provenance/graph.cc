#include "src/provenance/graph.h"

#include <set>

namespace nettrails {
namespace provenance {

std::vector<Vid> Graph::ChildrenOf(Vid v) const {
  std::vector<Vid> out;
  for (const GraphEdge& e : edges) {
    if (e.from == v) out.push_back(e.to);
  }
  return out;
}

size_t Graph::tuple_vertices() const {
  size_t n = 0;
  for (const auto& [id, v] : vertices) {
    if (v.kind == VertexKind::kTuple) ++n;
  }
  return n;
}

size_t Graph::exec_vertices() const {
  return vertices.size() - tuple_vertices();
}

namespace {

struct Builder {
  const std::vector<const ProvStore*>& stores;
  const VidLabeler& labeler;
  bool include_maybe;
  Graph graph;
  std::set<Vid> visiting;

  void VisitTuple(NodeId home, Vid vid, size_t depth) {
    if (graph.vertices.count(vid) || depth == 0) return;
    if (visiting.count(vid)) return;  // cycle guard
    visiting.insert(vid);

    Vertex v;
    v.id = vid;
    v.kind = VertexKind::kTuple;
    v.location = home;
    v.label = labeler(vid);

    const std::vector<ProvEdge>* edges =
        home < stores.size() ? stores[home]->EdgesFor(vid) : nullptr;
    bool has_derivation = false;
    if (edges != nullptr) {
      for (const ProvEdge& e : *edges) {
        if (e.IsSelf(vid)) {
          v.is_base = true;
          continue;
        }
        if (e.maybe && !include_maybe) continue;
        has_derivation = true;
      }
    }
    // Unexplained tuples (no edges, or only excluded maybe edges) render
    // as leaves.
    if (!has_derivation && !v.is_base) v.is_base = true;
    graph.vertices[vid] = v;

    if (has_derivation) {
      for (const ProvEdge& e : *edges) {
        if (e.IsSelf(vid)) continue;
        if (e.maybe && !include_maybe) continue;
        graph.edges.push_back({vid, e.rid, e.maybe});
        VisitExec(e.rloc, e.rid, depth - 1);
      }
    }
    visiting.erase(vid);
  }

  void VisitExec(NodeId rloc, Vid rid, size_t depth) {
    if (graph.vertices.count(rid) || depth == 0) return;
    const ExecEntry* exec =
        rloc < stores.size() ? stores[rloc]->ExecFor(rid) : nullptr;
    Vertex v;
    v.id = rid;
    v.kind = VertexKind::kRuleExec;
    v.location = rloc;
    v.label = exec != nullptr ? exec->rule : "rule?";
    graph.vertices[rid] = v;
    if (exec == nullptr) return;
    for (Vid input : exec->inputs) {
      graph.edges.push_back({rid, input, false});
      // Inputs of a rule execution are homed at the executing node.
      VisitTuple(rloc, input, depth - 1);
    }
  }
};

}  // namespace

Graph BuildGraph(const std::vector<const ProvStore*>& stores, NodeId root_home,
                 Vid root, const VidLabeler& labeler, size_t max_depth,
                 bool include_maybe) {
  Builder builder{stores, labeler, include_maybe, {}, {}};
  builder.graph.root = root;
  builder.VisitTuple(root_home, root, max_depth);
  return std::move(builder.graph);
}

}  // namespace provenance
}  // namespace nettrails
