// The ExSPAN automatic rule-rewriting algorithm (Zhou et al., SIGMOD 2010;
// Section 2.2 of the NetTrails paper): takes an NDlog program and outputs a
// modified program with additional rules that capture the program's
// provenance as distributed relational views.
//
// For every (localized) rule  rk: h(@H, A...) :- b1(@L,...), ..., bn(@L,...)
// the rewrite emits an execution-history view plus three consumers:
//
//   rk_eh:  eh_rk(@L, H, A..., Vids) :- b1...bn, quals,
//               NT_V1 := f_mkvid("b1", ...), ..., NT_Vids := f_list(...)
//   rk_hd:  h(@H, A...)                  :- eh_rk(@L, H, A..., Vids).
//   rk_re:  ruleExec(@L, RID, "rk", Vids):- eh_rk(...), RID := f_mkrid(...).
//   rk_pr:  prov(@H, VID, RID, L, 0)     :- eh_rk(...), VID := f_mkvid(...).
//
// Base tables get self-edges:  prov(@L, VID, VID, L, 0) :- b(@L, ...).
//
// Maybe rules (h ?- body) become provenance-only rules: the head atom joins
// as the first body atom (the head tuple arrives externally, e.g. from the
// legacy-application proxy) and the emitted prov edge carries Maybe = 1. No
// head-derivation rule is produced.
//
// Aggregate rules pass through unchanged; the engine records their
// provenance directly (the contributions achieving the aggregate value),
// using the same VID/RID digests.
#ifndef NETTRAILS_PROVENANCE_REWRITE_H_
#define NETTRAILS_PROVENANCE_REWRITE_H_

#include <string>

#include "src/common/status.h"
#include "src/ndlog/analysis.h"

namespace nettrails {
namespace provenance {

/// prov(@Loc, VID, RID, RLoc, Maybe): tuple VID at Loc is derivable via
/// rule execution RID stored at RLoc; Maybe is 1 for inferred (maybe-rule)
/// edges. Base tuples carry a self-edge with RID == VID and RLoc == Loc.
inline constexpr char kProvTable[] = "prov";
inline constexpr size_t kProvArity = 5;

/// ruleExec(@RLoc, RID, RuleName, VidList): the rule execution vertex.
inline constexpr char kRuleExecTable[] = "ruleExec";
inline constexpr size_t kRuleExecArity = 4;

/// Prefix of generated execution-history views: eh_<rulename>.
inline constexpr char kEhPrefix[] = "eh_";

/// True for predicates the rewrite owns (user programs must not define
/// them): prov, ruleExec, eh_*.
bool IsProvenancePredicate(const std::string& name);

/// Applies the rewrite. Requires a localized program (single body location
/// per rule) with unique rule names.
Result<ndlog::Program> RewriteForProvenance(const ndlog::AnalyzedProgram& prog);

}  // namespace provenance
}  // namespace nettrails

#endif  // NETTRAILS_PROVENANCE_REWRITE_H_
