#include "src/provenance/store.h"

#include <algorithm>

#include "src/provenance/rewrite.h"
#include "src/runtime/builtins.h"

namespace nettrails {
namespace provenance {

using runtime::TableAction;
using runtime::ValueToVid;

ProvStore::ProvStore(runtime::Engine* engine) : engine_(engine) {
  // Bootstrap from state that existed before this store attached.
  for (const char* table : {kProvTable, kRuleExecTable}) {
    const runtime::Table* t = engine_->GetTable(table);
    if (t == nullptr) continue;
    for (runtime::Table::RowHandle h : t->OrderedView()) {
      const runtime::Table::Row& row = t->Deref(h);
      OnAction(table, {row.fields, row.count, /*is_delete=*/false});
    }
  }
  engine_->AddActionObserver(
      [this](const std::string& table, const TableAction& action) {
        OnAction(table, action);
      });
}

void ProvStore::OnAction(const std::string& table, const TableAction& action) {
  if (table == kProvTable) {
    // prov(@Loc, VID, RID, RLoc, Maybe)
    if (action.fields.size() != kProvArity) return;
    Vid vid = ValueToVid(action.fields[1]);
    Vid rid = ValueToVid(action.fields[2]);
    NodeId rloc = action.fields[3].is_address() ? action.fields[3].as_address()
                                                : engine_->id();
    bool maybe = action.fields[4].Truthy();
    ++version_;
    if (action.is_delete) {
      // A retraction of an unknown vertex allocates nothing: the interner
      // is append-only, so dead handles would accumulate otherwise.
      VidInterner::Handle vh = interner()->Find(vid);
      if (vh == VidInterner::kInvalidHandle) return;
      auto eit = edges_.find(vh);
      if (eit == edges_.end()) return;
      std::vector<ProvEdge>& edges = eit->second;
      for (size_t i = 0; i < edges.size(); ++i) {
        ProvEdge& e = edges[i];
        if (e.rid == rid && e.rloc == rloc && e.maybe == maybe) {
          e.count -= action.mult;
          if (e.count <= 0) {
            edges.erase(edges.begin() + static_cast<long>(i));
            if (edges.empty()) edges_.erase(eit);
          }
          return;
        }
      }
      return;
    }
    VidInterner::Handle vh = interner()->Intern(vid);
    std::vector<ProvEdge>& edges = edges_[vh];
    for (ProvEdge& e : edges) {
      if (e.rid == rid && e.rloc == rloc && e.maybe == maybe) {
        e.count += action.mult;
        return;
      }
    }
    edges.push_back(ProvEdge{rid, rloc, maybe, action.mult});
    return;
  }
  if (table == kRuleExecTable) {
    // ruleExec(@RLoc, RID, RuleName, VidList)
    if (action.fields.size() != kRuleExecArity) return;
    Vid rid = ValueToVid(action.fields[1]);
    ++version_;
    if (action.is_delete) {
      VidInterner::Handle rh = interner()->Find(rid);
      if (rh == VidInterner::kInvalidHandle) return;
      auto it = execs_.find(rh);
      if (it != execs_.end()) {
        it->second.count -= action.mult;
        if (it->second.count <= 0) execs_.erase(it);
      }
      return;
    }
    ExecEntry& entry = execs_[interner()->Intern(rid)];
    if (entry.count == 0) {
      entry.rule =
          action.fields[2].is_string() ? action.fields[2].as_string() : "?";
      entry.inputs.clear();
      if (action.fields[3].is_list()) {
        for (const Value& v : action.fields[3].as_list()) {
          entry.inputs.push_back(ValueToVid(v));
        }
      }
    }
    entry.count += action.mult;
  }
}

const std::vector<ProvEdge>* ProvStore::EdgesFor(Vid vid) const {
  VidInterner::Handle h = interner()->Find(vid);
  if (h == VidInterner::kInvalidHandle) return nullptr;
  auto it = edges_.find(h);
  return it == edges_.end() ? nullptr : &it->second;
}

const ExecEntry* ProvStore::ExecFor(Vid rid) const {
  VidInterner::Handle h = interner()->Find(rid);
  if (h == VidInterner::kInvalidHandle) return nullptr;
  auto it = execs_.find(h);
  return it == execs_.end() ? nullptr : &it->second;
}

std::vector<Vid> ProvStore::AllVids() const {
  std::vector<Vid> out;
  out.reserve(edges_.size());
  for (const auto& [vh, edges] : edges_) out.push_back(interner()->ToVid(vh));
  return out;
}

size_t ProvStore::edge_count() const {
  size_t n = 0;
  for (const auto& [vid, edges] : edges_) n += edges.size();
  return n;
}

std::string ProvStore::CanonicalGraph() const {
  std::vector<std::string> lines;
  lines.reserve(edges_.size() + execs_.size());
  for (const auto& [vh, edges] : edges_) {
    Vid vid = interner()->ToVid(vh);
    for (const ProvEdge& e : edges) {
      lines.push_back("edge " + std::to_string(vid) + " <- rid=" +
                      std::to_string(e.rid) + " @" + std::to_string(e.rloc) +
                      (e.maybe ? " maybe" : "") + " x" +
                      std::to_string(e.count));
    }
  }
  for (const auto& [rh, exec] : execs_) {
    std::string line = "exec " + std::to_string(interner()->ToVid(rh)) + " " +
                       exec.rule + "(";
    for (size_t i = 0; i < exec.inputs.size(); ++i) {
      if (i > 0) line += ",";
      line += std::to_string(exec.inputs[i]);
    }
    line += ") x" + std::to_string(exec.count);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace provenance
}  // namespace nettrails
