// Per-node indexed view over the distributed provenance relations. The
// engine maintains prov / ruleExec as ordinary NDlog views; ProvStore
// observes their deltas and keeps the adjacency indexes the distributed
// query engine and the visualizer traverse.
#ifndef NETTRAILS_PROVENANCE_STORE_H_
#define NETTRAILS_PROVENANCE_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/tuple.h"
#include "src/provenance/interner.h"
#include "src/runtime/engine.h"

namespace nettrails {
namespace provenance {

/// One provenance edge: the local tuple VID is derivable via rule execution
/// `rid` stored at node `rloc`. A self-edge (rid == vid) marks a base tuple.
struct ProvEdge {
  Vid rid = 0;
  NodeId rloc = 0;
  bool maybe = false;
  int64_t count = 0;  // derivation count of the edge itself

  bool IsSelf(Vid vid) const { return rid == vid; }
};

/// One rule-execution vertex: rule name plus ordered input tuple VIDs.
struct ExecEntry {
  std::string rule;
  std::vector<Vid> inputs;
  int64_t count = 0;
};

class ProvStore {
 public:
  /// Attaches to the engine's action stream. The engine must outlive the
  /// store.
  explicit ProvStore(runtime::Engine* engine);

  NodeId node() const { return engine_->id(); }
  const runtime::Engine* engine() const { return engine_; }

  /// Edges for a locally stored tuple VID (nullptr if none).
  const std::vector<ProvEdge>* EdgesFor(Vid vid) const;

  /// Rule execution stored at this node (nullptr if unknown).
  const ExecEntry* ExecFor(Vid rid) const;

  /// All tuple VIDs with at least one edge (for graph export).
  std::vector<Vid> AllVids() const;

  /// Monotone version counter, bumped on every provenance change. Query
  /// caches validate their entries against it.
  uint64_t version() const { return version_; }

  /// Canonical text serialization of this node's provenance slice: every
  /// edge and rule execution with its derivation count, sorted. Two stores
  /// hold the same graph iff their canonical forms are equal, independent
  /// of the order deltas arrived in — the batched-vs-serial equivalence
  /// suite compares engines through it (and its diff is readable on
  /// failure).
  std::string CanonicalGraph() const;

  size_t edge_count() const;
  size_t exec_count() const { return execs_.size(); }

 private:
  void OnAction(const std::string& table, const runtime::TableAction& action);

  VidInterner* interner() const { return engine_->vid_interner(); }

  runtime::Engine* engine_;
  /// Adjacency keyed by interned 32-bit VID handles (the engine's interner,
  /// shared with the VID index): provenance churn re-touches the same
  /// vertices constantly, so entries key on a dense 4-byte handle and the
  /// re-touch rate is visible in EngineStats::vid_intern_hits. Public
  /// lookups (EdgesFor/ExecFor) translate Vid -> handle without allocating.
  std::unordered_map<VidInterner::Handle, std::vector<ProvEdge>> edges_;
  std::unordered_map<VidInterner::Handle, ExecEntry> execs_;
  uint64_t version_ = 0;
};

}  // namespace provenance
}  // namespace nettrails

#endif  // NETTRAILS_PROVENANCE_STORE_H_
