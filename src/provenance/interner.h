// Interning of 64-bit VIDs into dense 32-bit handles. The provenance churn
// of a converging network re-touches the same vertices over and over (every
// re-derivation of a tuple re-emits prov/ruleExec deltas naming the same
// VIDs); interning gives each distinct VID a small dense handle once, so
// the adjacency maps key on 4-byte handles instead of full digests and the
// re-touch rate is directly observable (hits()). Leaf header: safe to
// include from the runtime layer (depends only on common/).
#ifndef NETTRAILS_PROVENANCE_INTERNER_H_
#define NETTRAILS_PROVENANCE_INTERNER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/tuple.h"

namespace nettrails {
namespace provenance {

class VidInterner {
 public:
  /// Dense handle, assigned in first-intern order starting at 0.
  using Handle = uint32_t;
  static constexpr Handle kInvalidHandle = 0xffffffffu;

  /// Handle of `vid`, allocating one on first sight. Re-interning a known
  /// VID is a hit (the hot path the interner exists for).
  Handle Intern(Vid vid) {
    auto [it, inserted] =
        handles_.emplace(vid, static_cast<Handle>(vids_.size()));
    if (inserted) {
      vids_.push_back(vid);
    } else {
      ++hits_;
    }
    return it->second;
  }

  /// Handle of `vid` if already interned, else kInvalidHandle. Never
  /// allocates and does not count as a hit (read-side lookup).
  Handle Find(Vid vid) const {
    auto it = handles_.find(vid);
    return it == handles_.end() ? kInvalidHandle : it->second;
  }

  /// The VID a handle stands for. `h` must come from this interner.
  Vid ToVid(Handle h) const { return vids_[h]; }

  /// Distinct VIDs interned.
  size_t size() const { return vids_.size(); }

  /// Intern() calls that found an existing entry.
  uint64_t hits() const { return hits_; }

 private:
  std::unordered_map<Vid, Handle> handles_;
  std::vector<Vid> vids_;
  uint64_t hits_ = 0;
};

}  // namespace provenance
}  // namespace nettrails

#endif  // NETTRAILS_PROVENANCE_INTERNER_H_
