// Authenticated provenance — the lightweight core of the paper's second
// "ongoing work" item (Section 3): "enhancing the current system to
// securely utilize network provenance information in untrusted
// environments" (Zhou et al., Secure Network Provenance, TR MS-CIS-10-28).
//
// Each node holds a MAC key; every provenance edge and rule execution it
// stores is authenticated with a keyed digest binding the vertex ids, the
// location, and the edge kind. A verifier holding the key table can then
// check a provenance graph assembled from (possibly compromised) nodes:
// fabricated edges, re-homed vertices, and tampered input lists are
// detected. This models SNP's evidence checking over our simulator
// substrate; the full SNP protocol additionally signs update commitments,
// which is out of scope here.
#ifndef NETTRAILS_PROVENANCE_SECURE_H_
#define NETTRAILS_PROVENANCE_SECURE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/provenance/graph.h"
#include "src/provenance/store.h"

namespace nettrails {
namespace provenance {

/// Per-node MAC key (simulation-grade: a 64-bit secret fed into the keyed
/// digest; a deployment would use HMAC-SHA256).
using MacKey = uint64_t;

/// An authenticated provenance edge: tuple `vid` at `loc` derivable via
/// execution `rid` at `rloc`.
struct SignedEdge {
  Vid vid = 0;
  NodeId loc = 0;
  Vid rid = 0;
  NodeId rloc = 0;
  bool maybe = false;
  uint64_t mac = 0;
};

/// An authenticated rule execution: rule name and ordered input VIDs.
struct SignedExec {
  Vid rid = 0;
  NodeId rloc = 0;
  std::string rule;
  std::vector<Vid> inputs;
  uint64_t mac = 0;
};

/// Evidence for one provenance graph: every edge and execution, signed by
/// the node that stores it.
struct Evidence {
  std::vector<SignedEdge> edges;
  std::vector<SignedExec> execs;
};

/// Key authority: issues per-node keys deterministically from a master
/// seed and verifies MACs. In SNP terms this stands in for the PKI.
class KeyAuthority {
 public:
  explicit KeyAuthority(uint64_t master_seed);

  MacKey KeyFor(NodeId node) const;

  uint64_t MacEdge(const SignedEdge& edge) const;
  uint64_t MacExec(const SignedExec& exec) const;

 private:
  uint64_t master_seed_;
};

/// Collects signed evidence for the provenance subgraph rooted at `root`
/// (homed at `root_home`) from the per-node stores. `stores[i]` must
/// belong to node i.
Evidence CollectEvidence(const std::vector<const ProvStore*>& stores,
                         const KeyAuthority& authority, NodeId root_home,
                         Vid root, size_t max_depth = 64);

/// Verification outcome.
struct VerifyResult {
  bool ok = true;
  std::vector<std::string> problems;

  void Fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
};

/// Verifies evidence integrity and structure:
///  * every MAC is valid under the signer's key;
///  * every non-self edge's execution is present in the evidence;
///  * executions' input VIDs are covered (each input either has an edge in
///    the evidence or is an explicit leaf);
///  * edge RLoc matches the execution's signing location.
VerifyResult VerifyEvidence(const Evidence& evidence,
                            const KeyAuthority& authority, Vid root);

}  // namespace provenance
}  // namespace nettrails

#endif  // NETTRAILS_PROVENANCE_SECURE_H_
