#include "src/provenance/rewrite.h"

#include <set>

namespace nettrails {
namespace provenance {

namespace {

using ndlog::Atom;
using ndlog::AtomArg;
using ndlog::Assign;
using ndlog::BodyTerm;
using ndlog::Expr;
using ndlog::ExprPtr;
using ndlog::MaterializeDecl;
using ndlog::Program;
using ndlog::Rule;

AtomArg PlainArg(ExprPtr expr) {
  AtomArg arg;
  arg.expr = std::move(expr);
  return arg;
}

AtomArg LocArg(ExprPtr expr) {
  AtomArg arg;
  arg.is_location = true;
  arg.expr = std::move(expr);
  return arg;
}

/// f_mkvid("<pred>", arg0, arg1, ...) over an atom's argument expressions.
ExprPtr MkVidCall(const Atom& atom) {
  std::vector<ExprPtr> args;
  args.push_back(Expr::MakeConst(Value::Str(atom.predicate)));
  for (const AtomArg& a : atom.args) args.push_back(a.expr);
  return Expr::MakeCall("f_mkvid", std::move(args));
}

MaterializeDecl AllFieldsDecl(const std::string& table) {
  MaterializeDecl decl;
  decl.table = table;
  decl.lifetime_secs = -1;
  decl.max_size = -1;
  // Empty key list = all fields: derivation-counting semantics.
  return decl;
}

}  // namespace

bool IsProvenancePredicate(const std::string& name) {
  return name == kProvTable || name == kRuleExecTable ||
         name.rfind(kEhPrefix, 0) == 0;
}

Result<Program> RewriteForProvenance(const ndlog::AnalyzedProgram& analyzed) {
  const Program& in = analyzed.program;
  Program out;
  out.materializations = in.materializations;
  out.materializations.push_back(AllFieldsDecl(kProvTable));
  out.materializations.push_back(AllFieldsDecl(kRuleExecTable));

  // Unique rule names are required: RIDs embed them.
  std::set<std::string> rule_names;
  for (const Rule& rule : in.rules) {
    if (!rule_names.insert(rule.name).second) {
      return Status::PlanError("duplicate rule name " + rule.name +
                               " (provenance rewrite requires unique names)");
    }
    if (IsProvenancePredicate(rule.head.predicate)) {
      return Status::PlanError("rule " + rule.name +
                               ": predicate " + rule.head.predicate +
                               " is reserved for the provenance rewrite");
    }
  }

  for (const Rule& rule : in.rules) {
    if (rule.head.HasAggregate()) {
      // Aggregate provenance is recorded by the engine (winning
      // contributions); the rule itself passes through.
      if (rule.is_maybe) {
        return Status::PlanError("rule " + rule.name +
                                 ": maybe rules cannot aggregate");
      }
      out.rules.push_back(rule);
      continue;
    }

    // The rewrite pivots on the execution-history view eh_<rule>.
    const std::string eh_pred = std::string(kEhPrefix) + rule.name;
    out.materializations.push_back(AllFieldsDecl(eh_pred));

    // Body location expression: first body atom's location argument. The
    // program is localized, so every body atom shares it. Maybe rules have
    // the head at the same location (checked by analysis).
    std::vector<const Atom*> body_atoms = rule.BodyAtoms();
    ExprPtr loc_expr;
    if (!body_atoms.empty()) {
      loc_expr = body_atoms[0]->args[0].expr;
    } else {
      // Body with no atoms (constant rule): executes at the head location.
      loc_expr = rule.head.args[0].expr;
    }

    // --- rk_eh: capture the execution history. ---
    Rule eh_rule;
    eh_rule.name = rule.name + "_eh";
    eh_rule.head.predicate = eh_pred;
    eh_rule.head.args.push_back(LocArg(loc_expr));
    for (const AtomArg& harg : rule.head.args) {
      eh_rule.head.args.push_back(PlainArg(harg.expr));
    }
    const std::string vids_var = "NT_Vids";
    eh_rule.head.args.push_back(PlainArg(Expr::MakeVar(vids_var)));

    if (rule.is_maybe) {
      // The externally observed head tuple joins as the first body atom.
      Atom head_as_body = rule.head;
      eh_rule.body.emplace_back(std::move(head_as_body));
    }
    for (const BodyTerm& term : rule.body) eh_rule.body.push_back(term);

    // NT_Vi := f_mkvid(...) per body atom; the maybe-rule head is not an
    // input (it is the effect, not a cause).
    std::vector<ExprPtr> vid_vars;
    for (size_t i = 0; i < body_atoms.size(); ++i) {
      std::string v = "NT_V" + std::to_string(i);
      eh_rule.body.emplace_back(Assign{v, MkVidCall(*body_atoms[i]), {}});
      vid_vars.push_back(Expr::MakeVar(v));
    }
    eh_rule.body.emplace_back(
        Assign{vids_var, Expr::MakeCall("f_list", std::move(vid_vars)), {}});
    out.rules.push_back(std::move(eh_rule));

    // Shared eh body atom for the consumer rules.
    Atom eh_atom;
    eh_atom.predicate = eh_pred;
    eh_atom.args.push_back(LocArg(loc_expr));
    for (const AtomArg& harg : rule.head.args) {
      eh_atom.args.push_back(PlainArg(harg.expr));
    }
    eh_atom.args.push_back(PlainArg(Expr::MakeVar(vids_var)));

    // --- rk_hd: derive the head from the history (regular rules only). ---
    if (!rule.is_maybe) {
      Rule hd_rule;
      hd_rule.name = rule.name + "_hd";
      hd_rule.head = rule.head;
      hd_rule.body.emplace_back(eh_atom);
      out.rules.push_back(std::move(hd_rule));
    }

    // --- rk_re: the rule-execution vertex. ---
    ExprPtr rid_call = Expr::MakeCall(
        "f_mkrid", {Expr::MakeConst(Value::Str(rule.name)), loc_expr,
                    Expr::MakeVar(vids_var)});
    Rule re_rule;
    re_rule.name = rule.name + "_re";
    re_rule.head.predicate = kRuleExecTable;
    re_rule.head.args.push_back(LocArg(loc_expr));
    re_rule.head.args.push_back(PlainArg(Expr::MakeVar("NT_RID")));
    re_rule.head.args.push_back(
        PlainArg(Expr::MakeConst(Value::Str(rule.name))));
    re_rule.head.args.push_back(PlainArg(Expr::MakeVar(vids_var)));
    re_rule.body.emplace_back(eh_atom);
    re_rule.body.emplace_back(Assign{"NT_RID", rid_call, {}});
    out.rules.push_back(std::move(re_rule));

    // --- rk_pr: the provenance edge, shipped to the head's node. ---
    ExprPtr vid_call = MkVidCall(rule.head);
    Rule pr_rule;
    pr_rule.name = rule.name + "_pr";
    pr_rule.head.predicate = kProvTable;
    pr_rule.head.args.push_back(LocArg(rule.head.args[0].expr));
    pr_rule.head.args.push_back(PlainArg(Expr::MakeVar("NT_VID")));
    pr_rule.head.args.push_back(PlainArg(Expr::MakeVar("NT_RID")));
    pr_rule.head.args.push_back(PlainArg(loc_expr));
    pr_rule.head.args.push_back(
        PlainArg(Expr::MakeConst(Value::Int(rule.is_maybe ? 1 : 0))));
    pr_rule.body.emplace_back(eh_atom);
    pr_rule.body.emplace_back(Assign{"NT_VID", vid_call, {}});
    pr_rule.body.emplace_back(Assign{"NT_RID", rid_call, {}});
    out.rules.push_back(std::move(pr_rule));
  }

  // Base-tuple self-edges: prov(@L, VID, VID, L, 0) :- b(@L, ...).
  for (const auto& [name, info] : analyzed.tables) {
    if (!info.materialized || !info.is_base || info.is_maybe_head) continue;
    if (IsProvenancePredicate(name)) continue;
    if (info.arity == 0) continue;  // never referenced by a rule: unknowable
    Rule bp;
    bp.name = name + "_bprov";
    Atom body;
    body.predicate = name;
    std::vector<ExprPtr> vid_args;
    vid_args.push_back(Expr::MakeConst(Value::Str(name)));
    for (size_t i = 0; i < info.arity; ++i) {
      ExprPtr v = Expr::MakeVar("NT_B" + std::to_string(i));
      AtomArg arg = i == 0 ? LocArg(v) : PlainArg(v);
      body.args.push_back(std::move(arg));
      vid_args.push_back(v);
    }
    bp.head.predicate = kProvTable;
    bp.head.args.push_back(LocArg(body.args[0].expr));
    bp.head.args.push_back(PlainArg(Expr::MakeVar("NT_VID")));
    bp.head.args.push_back(PlainArg(Expr::MakeVar("NT_VID")));
    bp.head.args.push_back(PlainArg(body.args[0].expr));
    bp.head.args.push_back(PlainArg(Expr::MakeConst(Value::Int(0))));
    bp.body.emplace_back(std::move(body));
    bp.body.emplace_back(
        Assign{"NT_VID", Expr::MakeCall("f_mkvid", std::move(vid_args)), {}});
    out.rules.push_back(std::move(bp));
  }

  return out;
}

}  // namespace provenance
}  // namespace nettrails
