#include "src/net/topology.h"

namespace nettrails {
namespace net {

void Topology::Install(Simulator* sim, Time latency) const {
  while (sim->node_count() < num_nodes) sim->AddNode();
  for (const CostedLink& l : links) sim->AddLink(l.a, l.b, latency);
}

Topology MakeLine(size_t n, int64_t cost) {
  Topology t;
  t.num_nodes = n;
  for (size_t i = 0; i + 1 < n; ++i) {
    t.links.push_back({static_cast<NodeId>(i), static_cast<NodeId>(i + 1), cost});
  }
  return t;
}

Topology MakeRing(size_t n, int64_t cost) {
  Topology t = MakeLine(n, cost);
  if (n > 2) {
    t.links.push_back({static_cast<NodeId>(n - 1), 0, cost});
  }
  return t;
}

Topology MakeRingWithChords(size_t n, int64_t ring_cost, int64_t chord_cost) {
  Topology t = MakeRing(n, ring_cost);
  for (size_t i = 0; i < n / 2; i += 2) {
    NodeId a = static_cast<NodeId>(i);
    NodeId b = static_cast<NodeId>((i + n / 2) % n);
    if (a != b) t.links.push_back({a, b, chord_cost});
  }
  return t;
}

Topology MakeStar(size_t n, int64_t cost) {
  Topology t;
  t.num_nodes = n;
  for (size_t i = 1; i < n; ++i) {
    t.links.push_back({0, static_cast<NodeId>(i), cost});
  }
  return t;
}

Topology MakeGrid(size_t rows, size_t cols, int64_t cost) {
  Topology t;
  t.num_nodes = rows * cols;
  auto id = [cols](size_t r, size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.links.push_back({id(r, c), id(r, c + 1), cost});
      if (r + 1 < rows) t.links.push_back({id(r, c), id(r + 1, c), cost});
    }
  }
  return t;
}

Topology MakeRandomConnected(size_t n, double p, Rng* rng, int64_t max_cost) {
  Topology t;
  t.num_nodes = n;
  auto cost = [&]() { return rng->NextInRange(1, max_cost); };
  // Random spanning tree: attach node i to a random earlier node.
  for (size_t i = 1; i < n; ++i) {
    NodeId parent = static_cast<NodeId>(rng->NextBelow(i));
    t.links.push_back({parent, static_cast<NodeId>(i), cost()});
  }
  // Extra edges.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool in_tree = false;
      for (const CostedLink& l : t.links) {
        if ((l.a == i && l.b == j) || (l.a == j && l.b == i)) {
          in_tree = true;
          break;
        }
      }
      if (!in_tree && rng->NextBool(p)) {
        t.links.push_back({static_cast<NodeId>(i), static_cast<NodeId>(j), cost()});
      }
    }
  }
  return t;
}

}  // namespace net
}  // namespace nettrails
