#include "src/net/topology.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <tuple>

namespace nettrails {
namespace net {

void Topology::Install(Simulator* sim, Time latency) const {
  while (sim->node_count() < num_nodes) sim->AddNode();
  for (const CostedLink& l : links) sim->AddLink(l.a, l.b, latency);
}

Topology MakeLine(size_t n, int64_t cost) {
  Topology t;
  t.num_nodes = n;
  for (size_t i = 0; i + 1 < n; ++i) {
    t.links.push_back({static_cast<NodeId>(i), static_cast<NodeId>(i + 1), cost});
  }
  return t;
}

Topology MakeRing(size_t n, int64_t cost) {
  Topology t = MakeLine(n, cost);
  if (n > 2) {
    t.links.push_back({static_cast<NodeId>(n - 1), 0, cost});
  }
  return t;
}

Topology MakeRingWithChords(size_t n, int64_t ring_cost, int64_t chord_cost) {
  Topology t = MakeRing(n, ring_cost);
  for (size_t i = 0; i < n / 2; i += 2) {
    NodeId a = static_cast<NodeId>(i);
    NodeId b = static_cast<NodeId>((i + n / 2) % n);
    if (a != b) t.links.push_back({a, b, chord_cost});
  }
  return t;
}

Topology MakeStar(size_t n, int64_t cost) {
  Topology t;
  t.num_nodes = n;
  for (size_t i = 1; i < n; ++i) {
    t.links.push_back({0, static_cast<NodeId>(i), cost});
  }
  return t;
}

Topology MakeGrid(size_t rows, size_t cols, int64_t cost) {
  Topology t;
  t.num_nodes = rows * cols;
  auto id = [cols](size_t r, size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.links.push_back({id(r, c), id(r, c + 1), cost});
      if (r + 1 < rows) t.links.push_back({id(r, c), id(r + 1, c), cost});
    }
  }
  return t;
}

Topology MakeRandomConnected(size_t n, double p, Rng* rng, int64_t max_cost) {
  Topology t;
  t.num_nodes = n;
  auto cost = [&]() { return rng->NextInRange(1, max_cost); };
  // Random spanning tree: attach node i to a random earlier node.
  for (size_t i = 1; i < n; ++i) {
    NodeId parent = static_cast<NodeId>(rng->NextBelow(i));
    t.links.push_back({parent, static_cast<NodeId>(i), cost()});
  }
  // Extra edges.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool in_tree = false;
      for (const CostedLink& l : t.links) {
        if ((l.a == i && l.b == j) || (l.a == j && l.b == i)) {
          in_tree = true;
          break;
        }
      }
      if (!in_tree && rng->NextBool(p)) {
        t.links.push_back({static_cast<NodeId>(i), static_cast<NodeId>(j), cost()});
      }
    }
  }
  return t;
}

Topology MakeSyntheticIsp(size_t n_core, size_t n_regions,
                          size_t region_size, uint64_t seed) {
  Topology t;
  t.name = "isp-synth";
  t.num_nodes = n_core + n_regions * region_size;
  Rng rng(seed);
  auto node = [](size_t i) { return static_cast<NodeId>(i); };
  // Core ring (cost 1) with chords every fourth node for east-west paths.
  for (size_t i = 0; i < n_core; ++i) {
    t.links.push_back({node(i), node((i + 1) % n_core), 1});
  }
  for (size_t i = 0; i + n_core / 2 < n_core; i += 4) {
    t.links.push_back({node(i), node(i + n_core / 2), 1});
  }
  // Regional rings (cost 2), each dual-homed into the core (cost 3) from
  // two distinct region nodes to two distinct core nodes, so no single
  // failure isolates a region.
  for (size_t r = 0; r < n_regions; ++r) {
    size_t base = n_core + r * region_size;
    for (size_t i = 0; i < region_size; ++i) {
      t.links.push_back(
          {node(base + i), node(base + (i + 1) % region_size), 2});
    }
    size_t core_a = rng.NextBelow(n_core);
    size_t core_b = (core_a + 1 + rng.NextBelow(n_core - 1)) % n_core;
    size_t attach_b = 1 + rng.NextBelow(region_size - 1);
    t.links.push_back({node(core_a), node(base), 3});
    t.links.push_back({node(core_b), node(base + attach_b), 3});
  }
  return t;
}

namespace {

/// Strips a trailing '#' comment and surrounding whitespace, then splits on
/// whitespace.
std::vector<std::string> TokenizeLine(const std::string& line) {
  std::string body = line.substr(0, line.find('#'));
  std::istringstream ss(body);
  std::vector<std::string> tokens;
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

Status TopoError(size_t line_no, const std::string& msg) {
  return Status::ParseError("topology: line " + std::to_string(line_no) +
                            ": " + msg);
}

}  // namespace

Result<Topology> ParseTopology(const std::string& text) {
  Topology t;
  bool saw_nodes = false;
  std::vector<std::pair<NodeId, NodeId>> seen_links;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tok = TokenizeLine(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];
    if (kw == "topology") {
      if (tok.size() != 2) {
        return TopoError(line_no, "expected `topology <name>`");
      }
      if (saw_nodes) {
        return TopoError(line_no, "`topology` must precede `nodes`");
      }
      if (!t.name.empty()) return TopoError(line_no, "duplicate `topology`");
      t.name = tok[1];
    } else if (kw == "nodes") {
      uint64_t n = 0;
      if (tok.size() != 2 || !ParseUint(tok[1], &n)) {
        return TopoError(line_no, "expected `nodes <count>`");
      }
      if (saw_nodes) return TopoError(line_no, "duplicate `nodes`");
      if (n == 0) return TopoError(line_no, "node count must be positive");
      t.num_nodes = n;
      saw_nodes = true;
    } else if (kw == "name") {
      uint64_t id = 0;
      if (tok.size() != 3 || !ParseUint(tok[1], &id)) {
        return TopoError(line_no, "expected `name <id> <label>`");
      }
      if (!saw_nodes) return TopoError(line_no, "`name` before `nodes`");
      if (id >= t.num_nodes) {
        return TopoError(line_no,
                         "node id " + tok[1] + " out of range (nodes " +
                             std::to_string(t.num_nodes) + ")");
      }
      NodeId nid = static_cast<NodeId>(id);
      if (!t.labels.emplace(nid, tok[2]).second) {
        return TopoError(line_no, "duplicate label for node " + tok[1]);
      }
    } else if (kw == "link") {
      uint64_t a = 0, b = 0, cost = 1;
      if ((tok.size() != 3 && tok.size() != 4) || !ParseUint(tok[1], &a) ||
          !ParseUint(tok[2], &b) ||
          (tok.size() == 4 && !ParseUint(tok[3], &cost))) {
        return TopoError(line_no, "expected `link <a> <b> [<cost>]`");
      }
      if (!saw_nodes) return TopoError(line_no, "`link` before `nodes`");
      if (a >= t.num_nodes || b >= t.num_nodes) {
        return TopoError(line_no,
                         "link endpoint out of range (nodes " +
                             std::to_string(t.num_nodes) + ")");
      }
      if (a == b) return TopoError(line_no, "self-link on node " + tok[1]);
      if (cost < 1 || cost > static_cast<uint64_t>(INT64_MAX)) {
        return TopoError(line_no, "link cost must be >= 1");
      }
      NodeId na = static_cast<NodeId>(a), nb = static_cast<NodeId>(b);
      std::pair<NodeId, NodeId> key = na < nb ? std::make_pair(na, nb)
                                              : std::make_pair(nb, na);
      if (std::find(seen_links.begin(), seen_links.end(), key) !=
          seen_links.end()) {
        return TopoError(line_no, "duplicate link " + tok[1] + "-" + tok[2]);
      }
      seen_links.push_back(key);
      t.links.push_back({na, nb, static_cast<int64_t>(cost)});
    } else {
      return TopoError(line_no, "unknown directive `" + kw + "`");
    }
  }
  if (!saw_nodes) return Status::ParseError("topology: missing `nodes` line");
  return t;
}

Result<Topology> LoadTopologyFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read topology file " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  Result<Topology> parsed = ParseTopology(buf.str());
  if (!parsed.ok()) {
    return Status::ParseError(path + ": " + parsed.status().message());
  }
  return parsed;
}

std::string SerializeTopology(const Topology& t) {
  std::string out;
  if (!t.name.empty()) out += "topology " + t.name + "\n";
  out += "nodes " + std::to_string(t.num_nodes) + "\n";
  for (const auto& [id, label] : t.labels) {
    out += "name " + std::to_string(id) + " " + label + "\n";
  }
  std::vector<CostedLink> links = t.links;
  for (CostedLink& l : links) {
    if (l.a > l.b) std::swap(l.a, l.b);
  }
  std::sort(links.begin(), links.end(),
            [](const CostedLink& x, const CostedLink& y) {
              return std::tie(x.a, x.b, x.cost) < std::tie(y.a, y.b, y.cost);
            });
  for (const CostedLink& l : links) {
    out += "link " + std::to_string(l.a) + " " + std::to_string(l.b) + " " +
           std::to_string(l.cost) + "\n";
  }
  return out;
}

}  // namespace net
}  // namespace nettrails
