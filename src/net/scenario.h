// Scenario scripts: timed link-churn and node crash/restart events as data
// files, replayable against any (protocol, topology) pair. A scenario is
// topology-portable: events address links and nodes by *index*, reduced
// modulo the topology's link/node count at run time, so one committed
// script (examples/scenarios/*.scn) drives every topology in the corpus.
//
// File format, one event per line ('#' comments, blank lines ignored):
//
//   scenario <name>            optional, at most once, first
//   at <time> fail <i>         delete both link tuples of links[i % L]
//   at <time> recover <i>      re-insert them
//   at <time> crash <i>        crash node (i % N): checkpoint, halt, scrub
//   at <time> restart <i>      restart it from the crash-time checkpoint
//
// <time> is an integer with a unit suffix: us, ms, or s. Event times must
// be non-decreasing. The runner advances the simulator to each event time
// *without* forcing quiescence first, so closely spaced events deliberately
// overlap in-flight convergence; after the last event it runs to
// quiescence. Events that do not apply in the current world state — fail
// of an already-failed link, recover of a live one, crash of a crashed
// node, restart of a running one, or churn touching a crashed endpoint —
// are counted and skipped deterministically, which is what makes a script
// meaningful on every topology it is reduced onto.
#ifndef NETTRAILS_NET_SCENARIO_H_
#define NETTRAILS_NET_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"

namespace nettrails {
namespace runtime {
class Engine;
}  // namespace runtime

namespace net {

enum class ScenarioAction : uint8_t {
  kFailLink,
  kRecoverLink,
  kCrashNode,
  kRestartNode,
};

const char* ScenarioActionName(ScenarioAction a);

struct ScenarioEvent {
  Time time = 0;
  ScenarioAction action = ScenarioAction::kFailLink;
  /// Link index (fail/recover) or node index (crash/restart); reduced
  /// modulo the topology's link/node count when the scenario runs.
  uint64_t index = 0;
};

struct Scenario {
  std::string name;
  std::vector<ScenarioEvent> events;
};

/// Parses the scenario format above. Errors carry the 1-based line number.
Result<Scenario> ParseScenario(const std::string& text);

/// Reads and parses a scenario file; errors are prefixed with the path.
Result<Scenario> LoadScenarioFile(const std::string& path);

/// Canonical serialization (times rendered in the largest exact unit).
/// Round-trips through ParseScenario bit-for-bit.
std::string SerializeScenario(const Scenario& s);

struct ScenarioRunOptions {
  /// Invoked after a crashed node's checkpoint is restored, before
  /// reconciliation deltas flow (re-attach provenance stores, fence query
  /// caches) — forwarded to protocols::RestartNode.
  std::function<void(NodeId)> on_restored;
};

struct ScenarioRunStats {
  size_t applied = 0;
  size_t skipped = 0;
};

/// Replays `scenario` against a running world. The engines must have been
/// built over `topo` (one per node, links installed). Advances virtual
/// time to each event, applies it via the protocols:: churn/crash helpers,
/// and finally runs the simulator to quiescence.
Result<ScenarioRunStats> RunScenario(
    const Scenario& scenario, const Topology& topo,
    std::vector<std::unique_ptr<runtime::Engine>>* engines, Simulator* sim,
    const ScenarioRunOptions& opts = {});

}  // namespace net
}  // namespace nettrails

#endif  // NETTRAILS_NET_SCENARIO_H_
