// Discrete-event network simulator: the ns-3 substitute NetTrails executes
// on. Provides a virtual clock, latency-modelled message delivery between
// nodes, topology dynamics (links up/down), and the per-link / per-channel
// traffic accounting that the query-optimization experiments report.
#ifndef NETTRAILS_NET_SIMULATOR_H_
#define NETTRAILS_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/common/value.h"

namespace nettrails {
namespace net {

/// Virtual time in microseconds.
using Time = uint64_t;

inline constexpr Time kMillisecond = 1000;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// One tuple delta inside a batched "tuple" message.
struct BatchedTuple {
  Tuple payload;
  bool is_delete = false;
  int64_t multiplicity = 1;
};

/// A message in flight between two nodes. The payload is a tuple; every
/// NetTrails subsystem (rule deltas, provenance queries, BGP updates)
/// serializes into tuples, so one message type covers the whole platform.
///
/// A batched engine frames all deltas shipped to one destination during one
/// delta batch into a single message (`batch` non-empty, `payload` unused):
/// the 17-byte-plus-channel header is paid once per frame instead of once
/// per tuple, which is the per-tuple framing amortization of the batch
/// pipeline. Receivers unpack entries in order, so per-destination delta
/// order is identical to per-tuple shipping.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  /// Dispatch key at the receiver, e.g. "tuple", "provq", "bgp".
  std::string channel;
  Tuple payload;
  /// True for a retraction (delete delta) on the "tuple" channel.
  bool is_delete = false;
  /// Derivation-count delta carried by a "tuple" message (bag semantics).
  int64_t multiplicity = 1;
  /// Batched tuple deltas (empty for a single-tuple message).
  std::vector<BatchedTuple> batch;

  size_t TupleCount() const { return batch.empty() ? 1 : batch.size(); }

  /// Wire size used by the traffic accounting. Each batched entry pays its
  /// serialized tuple plus a 9-byte (flags + multiplicity) record header;
  /// the message header is shared across the frame.
  size_t SerializedSize() const {
    if (batch.empty()) {
      return 16 + channel.size() + payload.SerializedSize() + 1;
    }
    size_t n = 16 + channel.size() + 4;  // shared header + entry count
    for (const BatchedTuple& b : batch) {
      n += b.payload.SerializedSize() + 9;
    }
    return n;
  }
};

/// Cumulative traffic counters. `tuples` counts payload tuples, so with
/// batched framing messages <= tuples (the gap is the framing win).
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t tuples = 0;

  void Add(size_t nbytes, size_t ntuples = 1) {
    ++messages;
    bytes += nbytes;
    tuples += ntuples;
  }
};

/// State of one undirected link.
struct LinkState {
  Time latency = kMillisecond;
  bool up = true;
  TrafficStats traffic;
};

/// Handler invoked when a message is delivered to a node on a channel.
using MessageHandler = std::function<void(const Message&)>;

/// Observer of link up/down events: (a, b, up).
using LinkObserver = std::function<void(NodeId, NodeId, bool)>;

/// Single-threaded discrete-event simulator. Owns virtual time; all
/// scheduling happens through it, so runs are deterministic.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Adds a node and returns its id (ids are dense, starting at 0).
  NodeId AddNode();

  size_t node_count() const { return node_count_; }

  /// Adds an undirected link. No-op (latency update) if it already exists.
  void AddLink(NodeId a, NodeId b, Time latency = kMillisecond);

  /// Marks a link up or down and notifies observers. Messages in flight on
  /// a link that goes down are still delivered (they already left the NIC);
  /// subsequent sends are dropped.
  Status SetLinkUp(NodeId a, NodeId b, bool up);

  bool HasLink(NodeId a, NodeId b) const;
  bool LinkUp(NodeId a, NodeId b) const;

  /// All links as (a, b) with a < b.
  std::vector<std::pair<NodeId, NodeId>> Links() const;

  /// Neighbors of `n` over up links.
  std::vector<NodeId> UpNeighbors(NodeId n) const;

  void AddLinkObserver(LinkObserver obs) {
    link_observers_.push_back(std::move(obs));
  }

  /// Registers the handler for (node, channel). Overwrites any previous.
  void RegisterHandler(NodeId node, const std::string& channel,
                       MessageHandler handler);

  /// Declares a channel as an overlay channel: messages on it may travel
  /// between any two nodes (as over IP routing in a deployment) with
  /// `latency`, independent of the simulated link topology. Used by the
  /// distributed provenance query engine, whose requests and replies hop
  /// between arbitrary rule-execution locations.
  void MarkOverlayChannel(const std::string& channel,
                          Time latency = kMillisecond);

  /// Sends a message. Local delivery (src == dst) is immediate-at-now+1us and
  /// does not require a link; remote delivery requires an up link between
  /// src and dst (or an overlay channel) and takes the link (or overlay)
  /// latency. Returns false if dropped.
  bool Send(Message msg);

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void ScheduleAt(Time t, std::function<void()> fn);
  /// Schedules `fn` after `delay`.
  void ScheduleAfter(Time delay, std::function<void()> fn);

  /// Runs until the event queue drains or `Stop()` is called.
  void Run();
  /// Runs until virtual time `t` (events at exactly t are executed).
  void RunUntil(Time t);
  /// Runs for `dt` more virtual time.
  void RunFor(Time dt) { RunUntil(now_ + dt); }
  void Stop() { stopped_ = true; }

  Time now() const { return now_; }

  /// Traffic aggregated over all links, per channel.
  const std::map<std::string, TrafficStats>& channel_traffic() const {
    return channel_traffic_;
  }
  /// Total over all channels.
  TrafficStats total_traffic() const;
  /// Messages dropped for lack of an up link.
  uint64_t dropped_messages() const { return dropped_messages_; }
  /// Per-link traffic. Key has a < b.
  const LinkState* link(NodeId a, NodeId b) const;

  /// Zeroes all traffic counters (links and channels). Used to isolate the
  /// traffic of a query phase from setup traffic.
  void ResetTrafficStats();

  /// Number of events executed so far (debug/bench metric).
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    Time time;
    uint64_t seq;  // FIFO tie-break for same-time events
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static std::pair<NodeId, NodeId> Key(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  void Deliver(const Message& msg);

  Time now_ = 0;
  uint64_t seq_ = 0;
  bool stopped_ = false;
  size_t node_count_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t dropped_messages_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::map<std::pair<NodeId, NodeId>, LinkState> links_;
  std::unordered_map<NodeId, std::unordered_map<std::string, MessageHandler>>
      handlers_;
  std::map<std::string, TrafficStats> channel_traffic_;
  std::map<std::string, Time> overlay_channels_;
  std::vector<LinkObserver> link_observers_;
};

}  // namespace net
}  // namespace nettrails

#endif  // NETTRAILS_NET_SIMULATOR_H_
