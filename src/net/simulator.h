// Discrete-event network simulator: the ns-3 substitute NetTrails executes
// on. Provides a virtual clock, latency-modelled message delivery between
// nodes, topology dynamics (links up/down), and the per-link / per-channel
// traffic accounting that the query-optimization experiments report.
//
// The event loop is allocation-free on the message path: events are tagged
// POD records (deliver-message / timer-closure / link-change), messages
// live in a slab-allocated, free-listed frame pool whose frames keep their
// internal buffers across reuse, and channels are interned to dense
// ChannelIds so neither sending nor delivering touches a std::string or a
// string-keyed map. The old closure-based ScheduleAt survives as a
// compatibility shim for tests/tools off the hot path (closures are pooled
// slots; the std::function itself may still allocate its capture).
//
// With SimulatorOptions::num_threads > 1 the loop runs the deterministic
// epoch-barrier protocol: each contiguous run of same-time delivery events
// (a "wave") is partitioned by destination node across persistent worker
// threads, handlers execute in parallel recording their side effects
// (sends, timers, link changes) into per-worker op logs backed by
// per-worker frame arenas, and at the barrier the coordinator replays the
// logs in canonical event-seq order — reproducing the serial loop's event
// sequencing bit-for-bit. See docs/ARCHITECTURE.md ("Deterministic
// parallel execution") for the full protocol and its invariants.
#ifndef NETTRAILS_NET_SIMULATOR_H_
#define NETTRAILS_NET_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#ifdef NETTRAILS_THREADS
#include <condition_variable>
#include <mutex>
#include <thread>
#endif

#include "src/common/flat_hash.h"
#include "src/common/status.h"
#include "src/common/tuple.h"
#include "src/common/value.h"
#include "src/net/fault.h"

namespace nettrails {
namespace net {

/// Virtual time in microseconds.
using Time = uint64_t;

inline constexpr Time kMillisecond = 1000;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Dense id of an interned message channel (see Simulator::InternChannel).
using ChannelId = uint32_t;

/// One tuple delta inside a batched "tuple" message.
struct BatchedTuple {
  Tuple payload;
  bool is_delete = false;
  int64_t multiplicity = 1;
};

/// A message in flight between two nodes. The payload is a tuple; every
/// NetTrails subsystem (rule deltas, provenance queries, BGP updates)
/// serializes into tuples, so one message type covers the whole platform.
///
/// A batched engine frames all deltas shipped to one destination during one
/// delta batch into a single message (`batch` non-empty, `payload` unused):
/// the 17-byte-plus-channel header is paid once per frame instead of once
/// per tuple, which is the per-tuple framing amortization of the batch
/// pipeline. Receivers unpack entries in order, so per-destination delta
/// order is identical to per-tuple shipping.
///
/// Messages on the hot path live in the simulator's frame pool
/// (AcquireFrame/SendFrame): the channel is an interned dense id and the
/// batch vector keeps its capacity across frame reuse, so a converged
/// engine ships deltas without allocating.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  /// Interned dispatch key at the receiver, e.g. "tuple", "provq", "bgp"
  /// (Simulator::InternChannel).
  ChannelId channel = 0;
  Tuple payload;
  /// True for a retraction (delete delta) on the "tuple" channel.
  bool is_delete = false;
  /// Derivation-count delta carried by a "tuple" message (bag semantics).
  int64_t multiplicity = 1;
  /// Batched tuple deltas (empty for a single-tuple message).
  std::vector<BatchedTuple> batch;

  size_t TupleCount() const { return batch.empty() ? 1 : batch.size(); }

  /// Wire size used by the traffic accounting; `channel_len` is the length
  /// of the channel's name (the simulator owns the interned name). Each
  /// batched entry pays its serialized tuple plus a 9-byte (flags +
  /// multiplicity) record header; the message header is shared across the
  /// frame.
  size_t SerializedSize(size_t channel_len) const {
    if (batch.empty()) {
      return 16 + channel_len + payload.SerializedSize() + 1;
    }
    size_t n = 16 + channel_len + 4;  // shared header + entry count
    for (const BatchedTuple& b : batch) {
      n += b.payload.SerializedSize() + 9;
    }
    return n;
  }
};

/// Cumulative traffic counters. `tuples` counts payload tuples, so with
/// batched framing messages <= tuples (the gap is the framing win).
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t tuples = 0;

  void Add(size_t nbytes, size_t ntuples = 1) {
    ++messages;
    bytes += nbytes;
    tuples += ntuples;
  }
};

/// State of one undirected link.
struct LinkState {
  Time latency = kMillisecond;
  bool up = true;
  TrafficStats traffic;
};

/// Handler invoked when a message is delivered to a node on a channel. The
/// message is mutable: delivery transfers ownership of the frame's payload
/// for the duration of the call, so handlers may move tuples out instead of
/// copying (the frame is recycled after the handler returns).
using MessageHandler = std::function<void(Message&)>;

/// Observer of link up/down events: (a, b, up).
using LinkObserver = std::function<void(NodeId, NodeId, bool)>;

/// Observer of node up/down events: (node, up).
using NodeObserver = std::function<void(NodeId, bool)>;

/// Execution options for the simulator event loop.
struct SimulatorOptions {
  /// Worker threads for the epoch-barrier parallel loop. 1 (the default)
  /// runs the exact legacy serial loop; N > 1 shards every same-time
  /// delivery wave across N workers while staying bit-identical to serial
  /// execution (fixpoints, provenance, traffic, event ordering). Clamped
  /// to 1 in builds configured with -DNETTRAILS_THREADS=OFF.
  unsigned num_threads = 1;
  /// Seeded fault schedule (drop/duplicate/delay/reorder + node events).
  /// Installed at construction when non-empty; see InstallFaultPlan.
  FaultPlan faults;
};

/// Discrete-event simulator. Owns virtual time; all scheduling happens
/// through it, so runs are deterministic — including in threaded mode,
/// whose wave/barrier protocol replays side effects in the serial order.
class Simulator {
 public:
  /// Handle to a pooled message frame. Plain indices address the shared
  /// slab; refs with kWorkerFrameBit set address a worker arena (only ever
  /// seen by code running inside a wave and by the barrier replay).
  using FrameRef = uint32_t;

  Simulator() = default;
  explicit Simulator(const SimulatorOptions& opts) {
    set_num_threads(opts.num_threads);
    if (!opts.faults.Empty()) InstallFaultPlan(opts.faults);
  }
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Worker threads used by Run (1 = serial loop).
  unsigned num_threads() const { return num_threads_; }
  /// Reconfigures the worker count. Must not be called from inside Run().
  /// Joins any existing pool; the new pool starts lazily on the next wave.
  void set_num_threads(unsigned n);

  /// Adds a node and returns its id (ids are dense, starting at 0).
  NodeId AddNode();

  size_t node_count() const { return node_count_; }

  /// Adds an undirected link. No-op (latency update) if it already exists.
  void AddLink(NodeId a, NodeId b, Time latency = kMillisecond);

  /// Marks a link up or down and notifies observers. Messages in flight on
  /// a link that goes down are still delivered (they already left the NIC);
  /// subsequent sends are dropped.
  Status SetLinkUp(NodeId a, NodeId b, bool up);

  bool HasLink(NodeId a, NodeId b) const;
  bool LinkUp(NodeId a, NodeId b) const;

  /// All links as (a, b) with a < b, sorted.
  std::vector<std::pair<NodeId, NodeId>> Links() const;

  /// Neighbors of `n` over up links, ascending. Served from a cached
  /// adjacency (rebuilt lazily after AddLink/SetLinkUp); the reference is
  /// valid until the next topology change.
  const std::vector<NodeId>& UpNeighbors(NodeId n) const;

  void AddLinkObserver(LinkObserver obs) {
    link_observers_.push_back(std::move(obs));
  }

  // --- Fault injection and node lifecycle (see fault.h) -------------------

  /// Installs (or replaces) the fault plan: resets the fault sequence
  /// counter and schedules the plan's node events as POD events. Message
  /// faults apply to sends in the plan's [start, heal_time) window; the
  /// per-flow FIFO clamp applies to every remote send while a plan is
  /// installed. Must not be called from inside Run().
  void InstallFaultPlan(const FaultPlan& plan);
  bool fault_plan_installed() const { return plan_installed_; }

  /// Marks a node down (crashed/paused) or up. While down, frames sent by
  /// the node are swallowed at the NIC and frames delivered to it are
  /// consumed by the fault layer (both count as dropped_fault on their
  /// channel); handlers never run. `with_links` on a down transition also
  /// takes the node's up links down (observers fire — neighbors see the
  /// crash as link failures) and records them; an up transition restores
  /// exactly the recorded links. Node observers fire on every transition.
  Status SetNodeUp(NodeId node, bool up, bool with_links = true);
  /// True unless the node was taken down by SetNodeUp / a node event.
  bool NodeUp(NodeId node) const {
    return !(node < node_down_.size() && node_down_[node]);
  }
  /// Schedules a node up/down transition at time `t` as a POD event.
  void ScheduleNodeChange(Time t, NodeId node, bool up,
                          bool with_links = true);
  void AddNodeObserver(NodeObserver obs) {
    node_observers_.push_back(std::move(obs));
  }

  /// Per-channel fault/conservation counters (zero stats if unknown).
  const ChannelFaultStats& channel_fault_stats(ChannelId ch) const;
  /// Fault counters by channel name (all-zero channels omitted).
  std::map<std::string, ChannelFaultStats> ChannelFaultStatsByName() const;
  /// Sum over all channels. At quiescence (after Run() drains the queue)
  /// sent == delivered + dropped_link + dropped_fault.
  ChannelFaultStats total_fault_stats() const;

  /// Interns a channel name to its dense id (idempotent). Senders cache the
  /// id once and never touch the string again.
  ChannelId InternChannel(const std::string& name);
  /// Name of an interned channel.
  const std::string& ChannelName(ChannelId ch) const {
    return channel_names_[ch];
  }
  size_t channel_count() const { return channel_names_.size(); }

  /// Registers the handler for (node, channel). Overwrites any previous.
  void RegisterHandler(NodeId node, const std::string& channel,
                       MessageHandler handler);

  /// Declares a channel as an overlay channel: messages on it may travel
  /// between any two nodes (as over IP routing in a deployment) with
  /// `latency`, independent of the simulated link topology. Used by the
  /// distributed provenance query engine, whose requests and replies hop
  /// between arbitrary rule-execution locations.
  void MarkOverlayChannel(const std::string& channel,
                          Time latency = kMillisecond);

  // --- Pooled frame sending (the zero-allocation hot path) ---------------

  /// Acquires a frame from the pool. Header fields are reset; payload and
  /// batch are empty but keep their buffers from previous uses. The frame
  /// must subsequently be passed to SendFrame or ReleaseFrame.
  FrameRef AcquireFrame();
  /// The frame's message, for filling in (valid until SendFrame/Release).
  Message& FrameMessage(FrameRef f) {
#ifdef NETTRAILS_THREADS
    if (f & kWorkerFrameBit) return WorkerFrameMessage(f);
#endif
    return frames_[f];
  }
  /// Sends a pooled frame: local delivery (src == dst) is immediate at
  /// now+1us and needs no link; remote delivery requires an up link (or an
  /// overlay channel). Returns false if dropped. The frame is consumed
  /// either way (released back to the pool on drop, after delivery
  /// otherwise).
  bool SendFrame(FrameRef f);
  /// Returns an acquired-but-unsent frame to the pool.
  void ReleaseFrame(FrameRef f);

  /// Frames in the pool slab (diagnostic: bounded by the maximum number of
  /// messages simultaneously in flight, not by messages sent).
  size_t frame_pool_size() const { return frames_.size(); }
  /// Frames currently acquired or in flight.
  size_t frames_in_flight() const { return frames_.size() - free_frames_.size(); }

  /// Compatibility shim: moves `msg` into a pooled frame and sends it.
  /// `msg.channel` must already be interned.
  bool Send(Message msg);

  // --- Scheduling --------------------------------------------------------

  /// Schedules `fn` at absolute virtual time `t`. A `t` in the past is
  /// clamped to now and counted in schedule_in_past() — a hard guard, not
  /// an assert, so Release builds cannot move time backwards. Compatibility
  /// shim for tests/tools: closures are pooled, but the std::function's
  /// capture may allocate; hot-path work uses POD events instead.
  void ScheduleAt(Time t, std::function<void()> fn);
  /// Schedules `fn` after `delay`.
  void ScheduleAfter(Time delay, std::function<void()> fn);
  /// Schedules a link up/down transition at time `t` as a POD event (no
  /// closure). Unknown links are ignored at fire time.
  void ScheduleLinkChange(Time t, NodeId a, NodeId b, bool up);

  /// Events whose requested time was in the past and were clamped to now.
  uint64_t schedule_in_past() const { return schedule_in_past_; }

  /// Runs until the event queue drains or `Stop()` is called.
  void Run();
  /// Runs until virtual time `t` (events at exactly t are executed).
  void RunUntil(Time t);
  /// Runs for `dt` more virtual time.
  void RunFor(Time dt) { RunUntil(now_ + dt); }
  /// Stops the loop. In threaded mode a Stop() issued from inside a
  /// handler takes effect at the wave boundary, not mid-wave.
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }

  Time now() const { return now_; }

  // --- Accounting --------------------------------------------------------

  /// Traffic of one channel (zero stats if the id is unknown).
  const TrafficStats& channel_traffic(ChannelId ch) const;
  /// Traffic aggregated per channel name (channels with no traffic are
  /// omitted). Built on demand — for tests and reports, not hot paths.
  std::map<std::string, TrafficStats> ChannelTrafficByName() const;
  /// Total over all channels.
  TrafficStats total_traffic() const;
  /// Messages dropped for lack of an up link.
  uint64_t dropped_messages() const { return dropped_messages_; }
  /// Per-link traffic. Key has a < b.
  const LinkState* link(NodeId a, NodeId b) const;

  /// Zeroes all traffic counters (links, channels, drops). Used to isolate
  /// the traffic of a query phase from setup traffic. Event-loop counters
  /// are a separate concern: see ResetEventStats().
  void ResetTrafficStats();
  /// Zeroes the event-loop counters (events_executed, schedule_in_past) so
  /// bench phases can isolate event counts the same way they isolate
  /// traffic.
  void ResetEventStats();

  /// Number of events executed so far (debug/bench metric).
  uint64_t events_executed() const { return events_executed_; }

 private:
  /// Tagged POD event record. Delivery events reference a pooled frame by
  /// index; timer events reference a pooled closure slot; link-change
  /// events carry their payload inline. sizeof(Event) is two cache words —
  /// the priority queue never touches the heap per event.
  struct Event {
    Time time;
    uint64_t seq;  // FIFO tie-break for same-time events
    enum class Kind : uint8_t {
      kDeliver,
      kClosure,
      kLinkChange,
      kNodeChange
    } kind;
    union {
      FrameRef frame;    // kDeliver
      uint32_t closure;  // kClosure
      struct {
        NodeId a, b;
        bool up;
      } link;  // kLinkChange
      struct {
        NodeId id;
        bool up;
        bool links;
      } node;  // kNodeChange
    };
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Packed undirected-link key: (min(a,b) << 32) | max(a,b).
  static uint64_t LinkKey(NodeId a, NodeId b) {
    NodeId lo = a < b ? a : b;
    NodeId hi = a < b ? b : a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }

  /// Pushes an event, clamping past times to now (schedule_in_past guard).
  void Push(Time t, Event ev);
  void Execute(const Event& ev);
  void Deliver(FrameRef f);
  void RebuildAdjacency() const;
  /// Per-channel fault stats slot, grown on demand (coordinator only).
  ChannelFaultStats& FaultStatsFor(ChannelId ch);
  /// Delivery-side conservation accounting: delivered, or dropped_fault
  /// when the destination node is down. Coordinator only (the serial
  /// Deliver and the wave barrier both run there).
  void AccountDelivery(const Message& msg);
  /// The fault spec applying to this send: link override, else channel
  /// override, else the plan default. Never consulted for local sends.
  const FaultSpec& EffectiveSpec(const Message& msg) const;
  /// Per-flow FIFO clamp (active while a plan is installed): delivery
  /// times on one (src, dst) flow are monotone in send order.
  Time ClampFlowArrival(NodeId src, NodeId dst, Time arrival);
  /// Shared body of Run/RunUntil: pops events in (time, seq) order; in
  /// threaded mode, contiguous same-time delivery runs become waves.
  void RunLoop(Time until, bool bounded);

  // --- Epoch-barrier parallel execution ---------------------------------
  //
  // A wave is the maximal contiguous run of kDeliver events at one virtual
  // time popped in seq order (bounded by the first non-delivery event or
  // time advance — closures and link changes always execute serially, at
  // their exact seq position). Wave events are partitioned by destination
  // node (dst % workers), so each node's engine is touched by exactly one
  // worker per wave; handlers run in parallel with tls_ctx_ pointing at
  // the worker's context, which reroutes AcquireFrame/SendFrame/
  // ScheduleAt/ScheduleLinkChange into a per-worker frame arena and op
  // log instead of the shared pool and event queue. During a wave the
  // shared structures (links_, adjacency_, handlers_, frames_ of the
  // delivered events, now_) are frozen and read-only.
  //
  // At the barrier the coordinator replays the op logs in canonical order:
  // ascending trigger seq (the seq of the delivery whose handler issued
  // the op), then issue order within a handler. That is exactly the order
  // the serial loop produces side effects in, so seq_ assignment, queue
  // contents, traffic accounting, and drop decisions are bit-identical to
  // threads=1. Only frame-pool indices may differ (release/acquire
  // interleaving changes), which nothing observable depends on.

  /// High bit marks a FrameRef as worker-arena-resident:
  /// [31] flag, [30..24] worker id, [23..0] arena index.
  static constexpr FrameRef kWorkerFrameBit = 0x80000000u;
  static constexpr unsigned kMaxWorkers = 128;  // worker id field width

  /// One side effect recorded by a handler running inside a wave.
  struct WorkerOp {
    enum class Kind : uint8_t { kSend, kClosure, kLinkChange, kNodeChange };
    Kind kind;
    bool up = false;           // kLinkChange / kNodeChange
    bool links = true;         // kNodeChange: take/restore links too
    NodeId a = 0, b = 0;       // kLinkChange / kNodeChange (a = node)
    FrameRef frame = 0;        // kSend
    uint64_t trigger_seq = 0;  // seq of the delivery that issued this op
    Time time = 0;             // kClosure / kLinkChange / kNodeChange time
    std::function<void()> fn;  // kClosure
  };

  struct WorkerCtx {
    uint32_t id = 0;
    uint64_t trigger_seq = 0;  // seq of the event whose handler is running
    // Arena mirroring the shared frame pool (deque: frames never move).
    std::deque<Message> frames;
    std::vector<FrameRef> free_frames;
    std::vector<WorkerOp> ops;  // this wave's log, in issue order
    std::vector<Event> events;  // this wave's shard, in seq order
  };

  Message& WorkerFrameMessage(FrameRef f) {
    return workers_[(f >> 24) & 0x7fu]->frames[f & 0xffffffu];
  }
  FrameRef WorkerAcquireFrame(WorkerCtx* ctx);
  void WorkerReleaseFrame(FrameRef f);
  bool WorkerSendFrame(WorkerCtx* ctx, FrameRef f);
  void ExecuteWave();
  void ReplayOps();
  void ApplyOp(WorkerOp op);
  void EnsureWorkers();
  void StopWorkers();
  void WorkerMain(WorkerCtx* ctx);

  unsigned num_threads_ = 1;
  std::vector<Event> wave_;  // scratch: the delivery run being executed
  std::vector<std::unique_ptr<WorkerCtx>> workers_;
#ifdef NETTRAILS_THREADS
  /// Worker context of the calling thread, nullptr on the coordinator.
  /// Routes the simulator's mutating entry points while a wave runs.
  static thread_local WorkerCtx* tls_ctx_;
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;
  std::condition_variable work_cv_;  // workers wait for an epoch ticket
  std::condition_variable done_cv_;  // coordinator waits for the barrier
  uint64_t epoch_gen_ = 0;           // bumped once per dispatched wave
  unsigned busy_ = 0;                // workers still inside the wave
  bool shutdown_ = false;
#endif

  Time now_ = 0;
  uint64_t seq_ = 0;
  std::atomic<bool> stopped_{false};
  size_t node_count_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t dropped_messages_ = 0;
  uint64_t schedule_in_past_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;

  // Message frame pool: slab of reusable Messages + free list. A deque so
  // frames never move (FrameMessage references stay valid while in use).
  std::deque<Message> frames_;
  std::vector<FrameRef> free_frames_;

  // Pooled closure slots for the ScheduleAt shim.
  std::vector<std::function<void()>> closures_;
  std::vector<uint32_t> free_closures_;

  // Links: flat hash on the packed (min,max) key.
  FlatHashMap64<LinkState> links_;

  // Lazily rebuilt per-node up-neighbor lists (ascending), invalidated by
  // AddLink/SetLinkUp.
  mutable std::vector<std::vector<NodeId>> adjacency_;
  mutable bool adjacency_valid_ = false;

  // Channel interning + per-channel state, all indexed by ChannelId.
  std::unordered_map<std::string, ChannelId> channel_ids_;
  std::vector<std::string> channel_names_;
  std::vector<TrafficStats> channel_traffic_;
  static constexpr Time kNoOverlay = ~Time{0};
  std::vector<Time> overlay_latency_;  // kNoOverlay if not an overlay

  // handlers_[node][channel]; inner vectors sized on registration.
  std::vector<std::vector<MessageHandler>> handlers_;

  std::vector<LinkObserver> link_observers_;
  std::vector<NodeObserver> node_observers_;

  // --- Fault injection state (see fault.h) -------------------------------
  // All of it is mutated on the coordinator's serial paths only: SendFrame
  // outside waves or in the barrier replay, Execute(kNodeChange) between
  // waves. Workers read node_down_ (frozen during a wave) and nothing else.
  FaultPlan plan_;
  bool plan_installed_ = false;
  /// Fault sequence number: one per remote send reaching the fault layer,
  /// assigned in serial send order (== barrier replay order), which is what
  /// makes fault decisions bit-identical at any thread count.
  uint64_t fault_seq_ = 0;
  std::vector<ChannelFaultStats> channel_fault_;
  /// Last scheduled arrival per directed flow (src << 32 | dst).
  std::unordered_map<uint64_t, Time> flow_last_;
  std::vector<uint8_t> node_down_;  // indexed by NodeId; empty = all up
  /// Links a crash took down, per node, restored on restart (sorted for
  /// deterministic takedown/restore order).
  std::map<NodeId, std::vector<std::pair<NodeId, NodeId>>> crashed_links_;
};

}  // namespace net
}  // namespace nettrails

#endif  // NETTRAILS_NET_SIMULATOR_H_
