// Deterministic fault injection for the network simulator.
//
// A FaultPlan attached to SimulatorOptions describes message faults (drop,
// duplicate, delay-jitter, reorder hold-back) and scripted node lifecycle
// events (crash / pause / restart). Every message-fault decision is a pure
// function of (plan seed, fault sequence number, channel id): the sequence
// number is assigned on the coordinator's serial send path — which the
// epoch-barrier replay drives in exactly the serial loop's order — so a
// faulted run is bit-identical at any SimulatorOptions::num_threads. No
// floating point is involved anywhere (rates are integer parts-per-10000,
// jitter is a modulus), so there is no platform drift either.
//
// Fault semantics (see docs/ARCHITECTURE.md "Fault model and recovery"):
//  * drop       — the frame is consumed by the network after leaving the
//                 NIC: link traffic is accounted, the sender sees success
//                 (SendFrame returns true), and the per-channel fault stats
//                 count it as dropped_fault. Link-down drops stay sender-
//                 visible (SendFrame returns false) exactly as before.
//  * duplicate  — a deep copy of the frame is delivered a second time,
//                 after the original (its extra delay is drawn from the
//                 same decision hash).
//  * delay      — extra latency of 1..delay_jitter_max microseconds.
//  * reorder    — extra hold-back of reorder_hold microseconds, letting
//                 later traffic on *other* flows overtake this frame.
// While a plan is installed, per-flow FIFO is preserved: delivery times on
// one (src, dst) flow are clamped monotone in send order, so jitter and
// hold-back reorder traffic across flows but never within one. That is the
// delivery contract the delta-shipping pipeline assumes (a retraction may
// not overtake the insertion it cancels), and it is what makes the
// convergence oracles hold: timing faults perturb interleavings, never
// delta content.
#ifndef NETTRAILS_NET_FAULT_H_
#define NETTRAILS_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/tuple.h"

namespace nettrails {
namespace net {

/// Virtual time in microseconds (mirrors simulator.h; kept here so this
/// header stays includable on its own).
using FaultTime = uint64_t;

/// Fault rates for one scope (a channel, a link, or the plan default).
/// Rates are parts-per-10000 — integers end to end, so decisions are exact
/// and platform-independent.
struct FaultSpec {
  uint32_t drop_per_10k = 0;
  uint32_t dup_per_10k = 0;
  uint32_t delay_per_10k = 0;
  uint32_t reorder_per_10k = 0;
  /// Maximum extra latency (microseconds) of a delay fault; the drawn
  /// jitter is uniform in [1, delay_jitter_max].
  FaultTime delay_jitter_max = 0;
  /// Extra hold-back (microseconds) applied by a reorder fault.
  FaultTime reorder_hold = 0;

  bool Any() const {
    return drop_per_10k != 0 || dup_per_10k != 0 || delay_per_10k != 0 ||
           reorder_per_10k != 0;
  }
};

/// One scripted node lifecycle event. A crash takes the node's up links
/// down with it (neighbors observe the link change and can retract); a
/// pause only stops delivery (links stay up, messages to the node are
/// dropped and counted as fault drops); a restart brings the node back and
/// restores exactly the links its crash took down. Engine-level state loss
/// and checkpoint restore are the harness's job (see Engine::TakeCheckpoint
/// / RestoreCheckpoint) — the simulator only gates delivery and topology.
struct NodeFaultEvent {
  enum class Kind : uint8_t { kCrash, kPause, kRestart };
  FaultTime time = 0;
  NodeId node = 0;
  Kind kind = Kind::kCrash;
};

/// A complete seeded fault schedule.
struct FaultPlan {
  uint64_t seed = 0;
  /// Message faults are active in virtual-time window [start, heal_time).
  /// Node events fire at their own times, independent of the window.
  FaultTime start = 0;
  FaultTime heal_time = ~FaultTime{0};
  /// Default message-fault rates for every non-local send.
  FaultSpec spec;
  /// Per-channel overrides by channel name (take precedence over `spec`).
  std::map<std::string, FaultSpec> channel_overrides;
  /// Per-link overrides keyed by undirected (min, max) node pair (take
  /// precedence over channel overrides; never apply to overlay channels).
  std::map<std::pair<NodeId, NodeId>, FaultSpec> link_overrides;
  std::vector<NodeFaultEvent> node_events;

  bool Empty() const {
    return !spec.Any() && channel_overrides.empty() && link_overrides.empty() &&
           node_events.empty();
  }
};

/// Per-channel fault accounting. Conservation invariant at quiescence:
///   sent == delivered + dropped_link + dropped_fault
/// where `sent` counts every frame entering SendFrame (duplicates included,
/// so a duplicate is both +1 sent and +1 duplicated), `dropped_link` counts
/// sender-visible drops for lack of an up link, and `dropped_fault` counts
/// injected drops plus deliveries consumed by a down (crashed/paused) node.
struct ChannelFaultStats {
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped_link = 0;
  uint64_t dropped_fault = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;
  uint64_t reordered = 0;
};

/// SplitMix64 finalizer — the decision mixer. Pure integer function.
inline uint64_t FaultMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Independent decision salts: one send consumes one fault sequence number
/// and derives each sub-decision with its own salt.
enum class FaultSalt : uint32_t {
  kDrop = 1,
  kDup = 2,
  kDelay = 3,
  kDelayJitter = 4,
  kReorder = 5,
  kDupDelay = 6,
};

/// The deterministic decision value for (seed, seq, channel, salt).
inline uint64_t FaultDecision(uint64_t seed, uint64_t seq, uint32_t channel,
                              FaultSalt salt) {
  uint64_t key = (static_cast<uint64_t>(channel) << 32) |
                 static_cast<uint64_t>(salt);
  return FaultMix(seed ^ FaultMix(seq ^ FaultMix(key)));
}

/// True with probability per10k / 10000 (exact, integer-only).
inline bool FaultHit(uint64_t seed, uint64_t seq, uint32_t channel,
                     FaultSalt salt, uint32_t per10k) {
  if (per10k == 0) return false;
  return FaultDecision(seed, seq, channel, salt) % 10000 < per10k;
}

/// Uniform draw in [1, max] (returns 0 when max is 0).
inline FaultTime FaultDraw(uint64_t seed, uint64_t seq, uint32_t channel,
                           FaultSalt salt, FaultTime max) {
  if (max == 0) return 0;
  return 1 + FaultDecision(seed, seq, channel, salt) % max;
}

}  // namespace net
}  // namespace nettrails

#endif  // NETTRAILS_NET_FAULT_H_
