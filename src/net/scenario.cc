#include "src/net/scenario.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "src/protocols/programs.h"
#include "src/runtime/engine.h"

namespace nettrails {
namespace net {

const char* ScenarioActionName(ScenarioAction a) {
  switch (a) {
    case ScenarioAction::kFailLink:
      return "fail";
    case ScenarioAction::kRecoverLink:
      return "recover";
    case ScenarioAction::kCrashNode:
      return "crash";
    case ScenarioAction::kRestartNode:
      return "restart";
  }
  return "?";
}

namespace {

std::vector<std::string> TokenizeLine(const std::string& line) {
  std::string body = line.substr(0, line.find('#'));
  std::istringstream ss(body);
  std::vector<std::string> tokens;
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

Status ScnError(size_t line_no, const std::string& msg) {
  return Status::ParseError("scenario: line " + std::to_string(line_no) +
                            ": " + msg);
}

/// Parses "<integer><unit>" with unit us|ms|s.
bool ParseTime(const std::string& s, Time* out) {
  size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  if (i == 0) return false;
  uint64_t v = 0;
  for (size_t j = 0; j < i; ++j) {
    if (v > (UINT64_MAX - (s[j] - '0')) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(s[j] - '0');
  }
  std::string unit = s.substr(i);
  uint64_t scale;
  if (unit == "us") {
    scale = 1;
  } else if (unit == "ms") {
    scale = kMillisecond;
  } else if (unit == "s") {
    scale = kSecond;
  } else {
    return false;
  }
  if (v > UINT64_MAX / scale) return false;
  *out = v * scale;
  return true;
}

std::string RenderTime(Time t) {
  if (t >= kSecond && t % kSecond == 0) {
    return std::to_string(t / kSecond) + "s";
  }
  if (t >= kMillisecond && t % kMillisecond == 0) {
    return std::to_string(t / kMillisecond) + "ms";
  }
  return std::to_string(t) + "us";
}

bool ParseAction(const std::string& s, ScenarioAction* out) {
  if (s == "fail") {
    *out = ScenarioAction::kFailLink;
  } else if (s == "recover") {
    *out = ScenarioAction::kRecoverLink;
  } else if (s == "crash") {
    *out = ScenarioAction::kCrashNode;
  } else if (s == "restart") {
    *out = ScenarioAction::kRestartNode;
  } else {
    return false;
  }
  return true;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Result<Scenario> ParseScenario(const std::string& text) {
  Scenario s;
  bool saw_event = false;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tok = TokenizeLine(line);
    if (tok.empty()) continue;
    if (tok[0] == "scenario") {
      if (tok.size() != 2) {
        return ScnError(line_no, "expected `scenario <name>`");
      }
      if (!s.name.empty()) return ScnError(line_no, "duplicate `scenario`");
      if (saw_event) {
        return ScnError(line_no, "`scenario` must precede events");
      }
      s.name = tok[1];
    } else if (tok[0] == "at") {
      ScenarioEvent ev;
      if (tok.size() != 4 || !ParseTime(tok[1], &ev.time) ||
          !ParseAction(tok[2], &ev.action) ||
          !ParseUint(tok[3], &ev.index)) {
        return ScnError(line_no,
                        "expected `at <time> fail|recover|crash|restart "
                        "<index>` (time = <int>us|ms|s)");
      }
      if (!s.events.empty() && ev.time < s.events.back().time) {
        return ScnError(line_no, "event times must be non-decreasing");
      }
      s.events.push_back(ev);
      saw_event = true;
    } else {
      return ScnError(line_no, "unknown directive `" + tok[0] + "`");
    }
  }
  if (s.events.empty()) {
    return Status::ParseError("scenario: no events");
  }
  return s;
}

Result<Scenario> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read scenario file " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  Result<Scenario> parsed = ParseScenario(buf.str());
  if (!parsed.ok()) {
    return Status::ParseError(path + ": " + parsed.status().message());
  }
  return parsed;
}

std::string SerializeScenario(const Scenario& s) {
  std::string out;
  if (!s.name.empty()) out += "scenario " + s.name + "\n";
  for (const ScenarioEvent& ev : s.events) {
    out += "at " + RenderTime(ev.time) + " " +
           std::string(ScenarioActionName(ev.action)) + " " +
           std::to_string(ev.index) + "\n";
  }
  return out;
}

Result<ScenarioRunStats> RunScenario(
    const Scenario& scenario, const Topology& topo,
    std::vector<std::unique_ptr<runtime::Engine>>* engines, Simulator* sim,
    const ScenarioRunOptions& opts) {
  if (topo.links.empty() || topo.num_nodes == 0) {
    return Status::InvalidArgument("scenario: empty topology");
  }
  if (engines->size() != topo.num_nodes) {
    return Status::InvalidArgument(
        "scenario: engine count does not match topology");
  }
  ScenarioRunStats stats;
  std::set<size_t> failed_links;
  std::map<NodeId, runtime::EngineCheckpoint> checkpoints;
  auto crashed = [&](NodeId v) { return checkpoints.count(v) > 0; };
  for (const ScenarioEvent& ev : scenario.events) {
    sim->RunUntil(std::max(sim->now(), ev.time));
    switch (ev.action) {
      case ScenarioAction::kFailLink:
      case ScenarioAction::kRecoverLink: {
        size_t idx = ev.index % topo.links.size();
        const CostedLink& l = topo.links[idx];
        bool want_fail = ev.action == ScenarioAction::kFailLink;
        // Skip deterministically when the event does not apply: already in
        // the target state, or an endpoint is down (its engine is halted).
        if ((failed_links.count(idx) > 0) == want_fail || crashed(l.a) ||
            crashed(l.b)) {
          ++stats.skipped;
          break;
        }
        Status st = want_fail
                        ? protocols::FailLink(l.a, l.b, l.cost, engines, sim,
                                              /*run_to_quiescence=*/false)
                        : protocols::RecoverLink(
                              l.a, l.b, l.cost, engines, sim,
                              /*run_to_quiescence=*/false);
        NT_RETURN_IF_ERROR(st);
        if (want_fail) {
          failed_links.insert(idx);
        } else {
          failed_links.erase(idx);
        }
        ++stats.applied;
        break;
      }
      case ScenarioAction::kCrashNode: {
        NodeId v = static_cast<NodeId>(ev.index % topo.num_nodes);
        // Skip if v is already down, or one of its links is protocol-failed
        // (CrashNode retracts and RestartNode re-announces every incident
        // link, which would resurrect the failed one — authors space crash
        // away from same-node link churn; the guard keeps a colliding
        // modulo reduction deterministic instead of corrupting state).
        bool incident_failed = false;
        for (size_t idx : failed_links) {
          const CostedLink& l = topo.links[idx];
          if (l.a == v || l.b == v) {
            incident_failed = true;
            break;
          }
        }
        if (crashed(v) || incident_failed) {
          ++stats.skipped;
          break;
        }
        checkpoints.emplace(v, (*engines)[v]->TakeCheckpoint());
        NT_RETURN_IF_ERROR(protocols::CrashNode(
            v, topo, engines, sim, /*run_to_quiescence=*/false));
        ++stats.applied;
        break;
      }
      case ScenarioAction::kRestartNode: {
        NodeId v = static_cast<NodeId>(ev.index % topo.num_nodes);
        auto it = checkpoints.find(v);
        if (it == checkpoints.end()) {
          ++stats.skipped;
          break;
        }
        NT_RETURN_IF_ERROR(protocols::RestartNode(
            v, it->second, topo, engines, sim, opts.on_restored,
            /*run_to_quiescence=*/false));
        checkpoints.erase(it);
        ++stats.applied;
        break;
      }
    }
  }
  sim->Run();
  return stats;
}

}  // namespace net
}  // namespace nettrails
