// Topology generators and the topology file format for the experiment
// corpus. Generators build lines, rings, grids, random connected graphs,
// the ring+chord topology of the Figure 2 walkthrough, and a tiered
// synthetic ISP; the file format (ParseTopology / SerializeTopology /
// LoadTopologyFile) stores research-style topologies as data files under
// examples/topologies/, the way NSDI/INFOCOM-style declarative-networking
// evaluations keep their experiment inputs out of the test code. Costs are
// protocol-level link costs (the C in link(@X,Y,C)).
#ifndef NETTRAILS_NET_TOPOLOGY_H_
#define NETTRAILS_NET_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/net/simulator.h"

namespace nettrails {
namespace net {

/// One undirected edge with a protocol cost.
struct CostedLink {
  NodeId a = 0;
  NodeId b = 0;
  int64_t cost = 1;
};

/// A topology: node count plus costed edges. `name` and `labels` carry the
/// optional metadata of the file format (generator topologies leave them
/// empty); neither affects Install or protocol behaviour.
struct Topology {
  size_t num_nodes = 0;
  std::vector<CostedLink> links;
  std::string name;
  std::map<NodeId, std::string> labels;

  /// Registers all nodes and links with the simulator.
  void Install(Simulator* sim, Time latency = kMillisecond) const;
};

/// 0-1-2-...-(n-1) chain, all costs `cost`.
Topology MakeLine(size_t n, int64_t cost = 1);

/// Ring over n nodes.
Topology MakeRing(size_t n, int64_t cost = 1);

/// Ring plus chords i -> (i + n/2) for the hypertree exploration demo.
Topology MakeRingWithChords(size_t n, int64_t ring_cost = 1,
                            int64_t chord_cost = 3);

/// Node 0 is the hub.
Topology MakeStar(size_t n, int64_t cost = 1);

/// rows x cols grid.
Topology MakeGrid(size_t rows, size_t cols, int64_t cost = 1);

/// Connected G(n, p): random spanning tree first, then extra edges with
/// probability p. Costs uniform in [1, max_cost].
Topology MakeRandomConnected(size_t n, double p, Rng* rng,
                             int64_t max_cost = 10);

/// Tiered synthetic ISP: a core ring of `n_core` nodes (cost-1 links, plus
/// chords every fourth node) and `n_regions` regional rings of
/// `region_size` nodes (cost-2 links), each region attached to the core by
/// two cost-3 uplinks from distinct region nodes to distinct core nodes.
/// Every node sits on a ring, so the graph is 2-edge-connected: no single
/// link failure or node crash partitions it. Deterministic in `seed`
/// (which only perturbs the attachment points). The committed
/// examples/topologies/isp_synth_102.topo is this generator's output for
/// (12, 10, 9, seed 42), cross-checked by tests/net/topology_test.cc.
Topology MakeSyntheticIsp(size_t n_core, size_t n_regions,
                          size_t region_size, uint64_t seed);

/// Parses the topology file format:
///
///   # comment (to end of line); blank lines ignored
///   topology <name>          optional, at most once, before nodes
///   nodes <N>                required, exactly once, before name/link
///   name <id> <label>        optional node label
///   link <a> <b> [<cost>]    undirected edge; cost defaults to 1
///
/// Endpoints must be in [0, N), distinct, and each undirected pair may
/// appear once. Errors carry the 1-based line number.
Result<Topology> ParseTopology(const std::string& text);

/// Reads and parses a topology file; errors are prefixed with the path.
Result<Topology> LoadTopologyFile(const std::string& path);

/// Canonical serialization: `topology` header (if named), `nodes`, labels
/// in id order, links normalized to a < b and sorted by (a, b). Output
/// round-trips through ParseTopology bit-for-bit, and two topologies are
/// graph-identical iff their serializations match — the committed corpus
/// files are in this form, which is what lets the generator cross-check
/// tests compare files against generator output directly.
std::string SerializeTopology(const Topology& t);

}  // namespace net
}  // namespace nettrails

#endif  // NETTRAILS_NET_TOPOLOGY_H_
