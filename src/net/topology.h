// Topology generators for the experiment workloads: lines, rings, grids,
// random connected graphs, and the ring+chord topology used in the Figure 2
// walkthrough. Costs are protocol-level link costs (the C in link(@X,Y,C)).
#ifndef NETTRAILS_NET_TOPOLOGY_H_
#define NETTRAILS_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/common/rand.h"
#include "src/common/value.h"
#include "src/net/simulator.h"

namespace nettrails {
namespace net {

/// One undirected edge with a protocol cost.
struct CostedLink {
  NodeId a = 0;
  NodeId b = 0;
  int64_t cost = 1;
};

/// A generated topology: node count plus costed edges.
struct Topology {
  size_t num_nodes = 0;
  std::vector<CostedLink> links;

  /// Registers all nodes and links with the simulator.
  void Install(Simulator* sim, Time latency = kMillisecond) const;
};

/// 0-1-2-...-(n-1) chain, all costs `cost`.
Topology MakeLine(size_t n, int64_t cost = 1);

/// Ring over n nodes.
Topology MakeRing(size_t n, int64_t cost = 1);

/// Ring plus chords i -> (i + n/2) for the hypertree exploration demo.
Topology MakeRingWithChords(size_t n, int64_t ring_cost = 1,
                            int64_t chord_cost = 3);

/// Node 0 is the hub.
Topology MakeStar(size_t n, int64_t cost = 1);

/// rows x cols grid.
Topology MakeGrid(size_t rows, size_t cols, int64_t cost = 1);

/// Connected G(n, p): random spanning tree first, then extra edges with
/// probability p. Costs uniform in [1, max_cost].
Topology MakeRandomConnected(size_t n, double p, Rng* rng,
                             int64_t max_cost = 10);

}  // namespace net
}  // namespace nettrails

#endif  // NETTRAILS_NET_TOPOLOGY_H_
