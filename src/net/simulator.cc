#include "src/net/simulator.h"

#include <algorithm>
#include <cassert>

namespace nettrails {
namespace net {

#ifdef NETTRAILS_THREADS
thread_local Simulator::WorkerCtx* Simulator::tls_ctx_ = nullptr;
#endif

Simulator::~Simulator() { StopWorkers(); }

void Simulator::set_num_threads(unsigned n) {
#ifdef NETTRAILS_THREADS
  if (n < 1) n = 1;
  if (n > kMaxWorkers) n = kMaxWorkers;
  if (n != num_threads_) StopWorkers();
  num_threads_ = n;
#else
  (void)n;
  num_threads_ = 1;  // threading compiled out: serial loop only
#endif
}

NodeId Simulator::AddNode() {
  NodeId id = static_cast<NodeId>(node_count_);
  ++node_count_;
  return id;
}

void Simulator::AddLink(NodeId a, NodeId b, Time latency) {
  assert(a != b);
  LinkState& ls = links_[LinkKey(a, b)];
  ls.latency = latency;
  ls.up = true;
  adjacency_valid_ = false;
}

Status Simulator::SetLinkUp(NodeId a, NodeId b, bool up) {
  LinkState* ls = links_.Find(LinkKey(a, b));
  if (ls == nullptr) {
    return Status::NotFound("no link between " + std::to_string(a) + " and " +
                            std::to_string(b));
  }
  if (ls->up == up) return Status::OK();
  ls->up = up;
  adjacency_valid_ = false;
  for (const LinkObserver& obs : link_observers_) obs(a, b, up);
  return Status::OK();
}

bool Simulator::HasLink(NodeId a, NodeId b) const {
  return links_.Find(LinkKey(a, b)) != nullptr;
}

bool Simulator::LinkUp(NodeId a, NodeId b) const {
  const LinkState* ls = links_.Find(LinkKey(a, b));
  return ls != nullptr && ls->up;
}

std::vector<std::pair<NodeId, NodeId>> Simulator::Links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(links_.size());
  links_.ForEach([&out](uint64_t key, const LinkState&) {
    out.emplace_back(static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xffffffffu));
  });
  std::sort(out.begin(), out.end());
  return out;
}

void Simulator::RebuildAdjacency() const {
  adjacency_.assign(node_count_, {});
  links_.ForEach([this](uint64_t key, const LinkState& ls) {
    if (!ls.up) return;
    NodeId a = static_cast<NodeId>(key >> 32);
    NodeId b = static_cast<NodeId>(key & 0xffffffffu);
    if (a < node_count_) adjacency_[a].push_back(b);
    if (b < node_count_) adjacency_[b].push_back(a);
  });
  for (std::vector<NodeId>& nbrs : adjacency_) {
    std::sort(nbrs.begin(), nbrs.end());
  }
  adjacency_valid_ = true;
}

const std::vector<NodeId>& Simulator::UpNeighbors(NodeId n) const {
  static const std::vector<NodeId> kEmptyNeighbors;
  if (!adjacency_valid_) RebuildAdjacency();
  if (n >= adjacency_.size()) return kEmptyNeighbors;
  return adjacency_[n];
}

ChannelId Simulator::InternChannel(const std::string& name) {
  auto [it, inserted] =
      channel_ids_.emplace(name, static_cast<ChannelId>(channel_names_.size()));
  if (inserted) {
    channel_names_.push_back(name);
    channel_traffic_.emplace_back();
    overlay_latency_.push_back(kNoOverlay);
  }
  return it->second;
}

void Simulator::RegisterHandler(NodeId node, const std::string& channel,
                                MessageHandler handler) {
  ChannelId ch = InternChannel(channel);
  if (node >= handlers_.size()) handlers_.resize(node + 1);
  if (ch >= handlers_[node].size()) handlers_[node].resize(ch + 1);
  handlers_[node][ch] = std::move(handler);
}

void Simulator::MarkOverlayChannel(const std::string& channel, Time latency) {
  overlay_latency_[InternChannel(channel)] = latency;
}

Simulator::FrameRef Simulator::AcquireFrame() {
#ifdef NETTRAILS_THREADS
  if (WorkerCtx* ctx = tls_ctx_) return WorkerAcquireFrame(ctx);
#endif
  FrameRef f;
  if (!free_frames_.empty()) {
    f = free_frames_.back();
    free_frames_.pop_back();
  } else {
    f = static_cast<FrameRef>(frames_.size());
    frames_.emplace_back();
  }
  Message& m = frames_[f];
  m.src = 0;
  m.dst = 0;
  m.channel = 0;
  m.is_delete = false;
  m.multiplicity = 1;
  // payload/batch were cleared on release; their buffers are retained.
  return f;
}

void Simulator::ReleaseFrame(FrameRef f) {
#ifdef NETTRAILS_THREADS
  if (f & kWorkerFrameBit) {
    WorkerReleaseFrame(f);
    return;
  }
#endif
  Message& m = frames_[f];
  m.payload = Tuple();
  m.batch.clear();  // keeps vector capacity; entry buffers are freed
  free_frames_.push_back(f);
}

bool Simulator::SendFrame(FrameRef f) {
#ifdef NETTRAILS_THREADS
  if (WorkerCtx* ctx = tls_ctx_) return WorkerSendFrame(ctx, f);
#endif
  Message& msg = frames_[f];
  ChannelFaultStats& fs = FaultStatsFor(msg.channel);
  ++fs.sent;
  if (!NodeUp(msg.src)) {
    // A down node's NIC is off: stale timers may still try to send; the
    // frame never reaches the network. Sender-transparent (the node is in
    // no position to observe the result anyway).
    ++fs.dropped_fault;
    ReleaseFrame(f);
    return true;
  }
  Time delay = 1;  // local hop: 1us
  bool duplicate = false;
  Time dup_delay = 0;
  if (msg.src != msg.dst) {
    size_t nbytes = msg.SerializedSize(channel_names_[msg.channel].size());
    size_t ntuples = msg.TupleCount();
    LinkState* ls = nullptr;
    if (overlay_latency_[msg.channel] != kNoOverlay) {
      channel_traffic_[msg.channel].Add(nbytes, ntuples);
      delay = overlay_latency_[msg.channel];
    } else {
      ls = links_.Find(LinkKey(msg.src, msg.dst));
      if (ls == nullptr || !ls->up) {
        ++dropped_messages_;  // legacy counter stays link-drops-only
        ++fs.dropped_link;
        ReleaseFrame(f);
        return false;
      }
      ls->traffic.Add(nbytes, ntuples);
      channel_traffic_[msg.channel].Add(nbytes, ntuples);
      delay = ls->latency;
    }
    // Message-fault resolution. This branch only ever runs on the
    // coordinator's serial path (direct sends, singleton waves, or the
    // barrier replay — WorkerSendFrame logs an op instead of coming here),
    // so fault_seq_ advances in canonical serial order and every decision
    // is a pure function of (seed, seq, channel): bit-identical at any
    // num_threads.
    if (plan_installed_ && now_ >= plan_.start && now_ < plan_.heal_time) {
      const FaultSpec& spec = EffectiveSpec(msg);
      if (spec.Any()) {
        const uint64_t seed = plan_.seed;
        const uint64_t fseq = fault_seq_++;
        const ChannelId ch = msg.channel;
        if (FaultHit(seed, fseq, ch, FaultSalt::kDrop, spec.drop_per_10k)) {
          // Lost in flight: the link carried it (traffic accounted above)
          // and the sender saw it leave — sender-transparent.
          ++fs.dropped_fault;
          ReleaseFrame(f);
          return true;
        }
        if (FaultHit(seed, fseq, ch, FaultSalt::kDelay,
                     spec.delay_per_10k)) {
          delay += FaultDraw(seed, fseq, ch, FaultSalt::kDelayJitter,
                             spec.delay_jitter_max);
          ++fs.delayed;
        }
        if (FaultHit(seed, fseq, ch, FaultSalt::kReorder,
                     spec.reorder_per_10k)) {
          delay += spec.reorder_hold;
          ++fs.reordered;
        }
        if (FaultHit(seed, fseq, ch, FaultSalt::kDup, spec.dup_per_10k)) {
          duplicate = true;
          // The copy trails the original by a jitter draw (>= 1us so the
          // original always arrives first even on a zero-jitter spec).
          dup_delay = delay + FaultDraw(seed, fseq, ch, FaultSalt::kDupDelay,
                                        spec.delay_jitter_max > 0
                                            ? spec.delay_jitter_max
                                            : 1);
          ++fs.duplicated;
          if (ls != nullptr) ls->traffic.Add(nbytes, ntuples);
          channel_traffic_[msg.channel].Add(nbytes, ntuples);
        }
      }
    }
  }
  Time arrival = now_ + delay;
  if (plan_installed_ && msg.src != msg.dst) {
    arrival = ClampFlowArrival(msg.src, msg.dst, arrival);
  }
  Event ev;
  ev.kind = Event::Kind::kDeliver;
  ev.frame = f;
  Push(arrival, ev);
  if (duplicate) {
    // Deep copy: the handler may move tuples out of whichever copy arrives
    // first, so the two frames must not share payload buffers.
    FrameRef df = AcquireFrame();
    Message& orig = frames_[f];  // re-resolve: AcquireFrame may grow the
    Message& d = frames_[df];    // deque (references stay valid; be tidy)
    d.src = orig.src;
    d.dst = orig.dst;
    d.channel = orig.channel;
    d.is_delete = orig.is_delete;
    d.multiplicity = orig.multiplicity;
    d.payload = orig.payload;
    d.batch = orig.batch;
    ChannelFaultStats& dfs = FaultStatsFor(d.channel);
    ++dfs.sent;
    Time dup_arrival = ClampFlowArrival(d.src, d.dst, now_ + dup_delay);
    Event dev;
    dev.kind = Event::Kind::kDeliver;
    dev.frame = df;
    Push(dup_arrival, dev);
  }
  return true;
}

bool Simulator::Send(Message msg) {
  // FrameMessage (not frames_[f]) so the shim also works from inside a
  // wave, where AcquireFrame hands out worker-arena frames.
  FrameRef f = AcquireFrame();
  FrameMessage(f) = std::move(msg);
  return SendFrame(f);
}

void Simulator::Deliver(FrameRef f) {
  Message& msg = frames_[f];
  AccountDelivery(msg);
  if (NodeUp(msg.dst) && msg.dst < handlers_.size() &&
      msg.channel < handlers_[msg.dst].size()) {
    const MessageHandler& h = handlers_[msg.dst][msg.channel];
    if (h) h(msg);
  }
  ReleaseFrame(f);
}

ChannelFaultStats& Simulator::FaultStatsFor(ChannelId ch) {
  if (ch >= channel_fault_.size()) channel_fault_.resize(ch + 1);
  return channel_fault_[ch];
}

void Simulator::AccountDelivery(const Message& msg) {
  ChannelFaultStats& fs = FaultStatsFor(msg.channel);
  if (NodeUp(msg.dst)) {
    ++fs.delivered;
  } else {
    // In flight toward a node that crashed before arrival: consumed by the
    // fault layer, never seen by a handler.
    ++fs.dropped_fault;
  }
}

const FaultSpec& Simulator::EffectiveSpec(const Message& msg) const {
  if (!plan_.link_overrides.empty() &&
      overlay_latency_[msg.channel] == kNoOverlay) {
    NodeId lo = msg.src < msg.dst ? msg.src : msg.dst;
    NodeId hi = msg.src < msg.dst ? msg.dst : msg.src;
    auto it = plan_.link_overrides.find({lo, hi});
    if (it != plan_.link_overrides.end()) return it->second;
  }
  if (!plan_.channel_overrides.empty()) {
    auto it = plan_.channel_overrides.find(channel_names_[msg.channel]);
    if (it != plan_.channel_overrides.end()) return it->second;
  }
  return plan_.spec;
}

Time Simulator::ClampFlowArrival(NodeId src, NodeId dst, Time arrival) {
  Time& last = flow_last_[(static_cast<uint64_t>(src) << 32) | dst];
  if (arrival < last) arrival = last;
  last = arrival;
  return arrival;
}

void Simulator::InstallFaultPlan(const FaultPlan& plan) {
  plan_ = plan;
  plan_installed_ = true;
  fault_seq_ = 0;
  flow_last_.clear();
  for (const NodeFaultEvent& e : plan_.node_events) {
    bool up = e.kind == NodeFaultEvent::Kind::kRestart;
    bool links = e.kind != NodeFaultEvent::Kind::kPause;
    ScheduleNodeChange(e.time, e.node, up, links);
  }
}

Status Simulator::SetNodeUp(NodeId node, bool up, bool with_links) {
  if (node >= node_count_) {
    return Status::NotFound("no node " + std::to_string(node));
  }
  if (node_down_.size() < node_count_) node_down_.resize(node_count_, 0);
  if (node_down_[node] == static_cast<uint8_t>(!up)) return Status::OK();
  node_down_[node] = !up;
  if (!up) {
    if (with_links) {
      // Crash takes the node's up links with it; record them so a restart
      // restores exactly this set. The hash map's iteration order is
      // layout-dependent, so sort before taking links down — observers
      // must fire in a deterministic order.
      std::vector<std::pair<NodeId, NodeId>> taken;
      links_.ForEach([&](uint64_t key, const LinkState& ls) {
        NodeId a = static_cast<NodeId>(key >> 32);
        NodeId b = static_cast<NodeId>(key & 0xffffffffu);
        if (ls.up && (a == node || b == node)) taken.emplace_back(a, b);
      });
      std::sort(taken.begin(), taken.end());
      for (const auto& [a, b] : taken) (void)SetLinkUp(a, b, false);
      crashed_links_[node] = std::move(taken);
    }
  } else {
    auto it = crashed_links_.find(node);
    if (it != crashed_links_.end()) {
      for (const auto& [a, b] : it->second) (void)SetLinkUp(a, b, true);
      crashed_links_.erase(it);
    }
  }
  for (const NodeObserver& obs : node_observers_) obs(node, up);
  return Status::OK();
}

void Simulator::Push(Time t, Event ev) {
  // Hard guard (not an assert): an event scheduled in the past would move
  // now_ backwards when executed, silently corrupting virtual time in
  // Release builds. Clamp to now and count it.
  if (t < now_) {
    ++schedule_in_past_;
    t = now_;
  }
  ev.time = t;
  ev.seq = seq_++;
  queue_.push(ev);
}

void Simulator::ScheduleAt(Time t, std::function<void()> fn) {
#ifdef NETTRAILS_THREADS
  if (WorkerCtx* ctx = tls_ctx_) {
    WorkerOp op;
    op.kind = WorkerOp::Kind::kClosure;
    op.trigger_seq = ctx->trigger_seq;
    op.time = t;
    op.fn = std::move(fn);
    ctx->ops.push_back(std::move(op));
    return;
  }
#endif
  uint32_t slot;
  if (!free_closures_.empty()) {
    slot = free_closures_.back();
    free_closures_.pop_back();
    closures_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(closures_.size());
    closures_.push_back(std::move(fn));
  }
  Event ev;
  ev.kind = Event::Kind::kClosure;
  ev.closure = slot;
  Push(t, ev);
}

void Simulator::ScheduleAfter(Time delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleLinkChange(Time t, NodeId a, NodeId b, bool up) {
#ifdef NETTRAILS_THREADS
  if (WorkerCtx* ctx = tls_ctx_) {
    WorkerOp op;
    op.kind = WorkerOp::Kind::kLinkChange;
    op.trigger_seq = ctx->trigger_seq;
    op.time = t;
    op.a = a;
    op.b = b;
    op.up = up;
    ctx->ops.push_back(std::move(op));
    return;
  }
#endif
  Event ev;
  ev.kind = Event::Kind::kLinkChange;
  ev.link.a = a;
  ev.link.b = b;
  ev.link.up = up;
  Push(t, ev);
}

void Simulator::ScheduleNodeChange(Time t, NodeId node, bool up,
                                   bool with_links) {
#ifdef NETTRAILS_THREADS
  if (WorkerCtx* ctx = tls_ctx_) {
    WorkerOp op;
    op.kind = WorkerOp::Kind::kNodeChange;
    op.trigger_seq = ctx->trigger_seq;
    op.time = t;
    op.a = node;
    op.up = up;
    op.links = with_links;
    ctx->ops.push_back(std::move(op));
    return;
  }
#endif
  Event ev;
  ev.kind = Event::Kind::kNodeChange;
  ev.node.id = node;
  ev.node.up = up;
  ev.node.links = with_links;
  Push(t, ev);
}

void Simulator::Execute(const Event& ev) {
  switch (ev.kind) {
    case Event::Kind::kDeliver:
      Deliver(ev.frame);
      break;
    case Event::Kind::kClosure: {
      // Move out before running: the closure may schedule new events, which
      // may reuse the slot.
      std::function<void()> fn = std::move(closures_[ev.closure]);
      closures_[ev.closure] = nullptr;
      free_closures_.push_back(ev.closure);
      fn();
      break;
    }
    case Event::Kind::kLinkChange:
      (void)SetLinkUp(ev.link.a, ev.link.b, ev.link.up);  // unknown link: no-op
      break;
    case Event::Kind::kNodeChange:
      (void)SetNodeUp(ev.node.id, ev.node.up, ev.node.links);
      break;
  }
}

void Simulator::Run() { RunLoop(0, /*bounded=*/false); }

void Simulator::RunUntil(Time t) {
  RunLoop(t, /*bounded=*/true);
  if (now_ < t) now_ = t;
}

void Simulator::RunLoop(Time until, bool bounded) {
  stopped_.store(false, std::memory_order_relaxed);
  while (!queue_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    if (bounded && queue_.top().time > until) break;
#ifdef NETTRAILS_THREADS
    if (num_threads_ > 1 && queue_.top().kind == Event::Kind::kDeliver) {
      // Collect the wave: the contiguous run of deliveries at this time,
      // in seq order. A closure or link-change event bounds the run — it
      // executes serially at its exact seq position, so handlers never
      // observe topology or timer effects out of order.
      const Time t = queue_.top().time;
      wave_.clear();
      while (!queue_.empty() && queue_.top().time == t &&
             queue_.top().kind == Event::Kind::kDeliver) {
        wave_.push_back(queue_.top());
        queue_.pop();
      }
      now_ = t;
      events_executed_ += wave_.size();
      if (wave_.size() == 1) {
        // Singleton wave: the barrier would cost more than it buys. The
        // wave decomposition is deterministic, so this choice is too.
        Execute(wave_[0]);
      } else {
        ExecuteWave();
      }
      continue;
    }
#endif
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    Execute(ev);
  }
}

#ifdef NETTRAILS_THREADS

Simulator::FrameRef Simulator::WorkerAcquireFrame(WorkerCtx* ctx) {
  uint32_t idx;
  if (!ctx->free_frames.empty()) {
    idx = ctx->free_frames.back() & 0xffffffu;
    ctx->free_frames.pop_back();
  } else {
    idx = static_cast<uint32_t>(ctx->frames.size());
    ctx->frames.emplace_back();
  }
  Message& m = ctx->frames[idx];
  m.src = 0;
  m.dst = 0;
  m.channel = 0;
  m.is_delete = false;
  m.multiplicity = 1;
  return kWorkerFrameBit | (ctx->id << 24) | idx;
}

void Simulator::WorkerReleaseFrame(FrameRef f) {
  // Safe from the owning worker during a wave (handlers only ever hold
  // their own arena's frames) and from the coordinator during replay
  // (workers are parked at the barrier).
  Message& m = WorkerFrameMessage(f);
  m.payload = Tuple();
  m.batch.clear();
  workers_[(f >> 24) & 0x7fu]->free_frames.push_back(f);
}

bool Simulator::WorkerSendFrame(WorkerCtx* ctx, FrameRef f) {
  // All queue and accounting mutation is deferred to the barrier replay;
  // here we only log the op and predict the serial return value from the
  // frozen link state (links never change inside a wave: link-change
  // events bound waves, and handlers do not call SetLinkUp).
  const Message& msg = FrameMessage(f);
  bool delivered = true;
  if (msg.src != msg.dst && overlay_latency_[msg.channel] == kNoOverlay) {
    const LinkState* ls = links_.Find(LinkKey(msg.src, msg.dst));
    delivered = ls != nullptr && ls->up;
  }
  WorkerOp op;
  op.kind = WorkerOp::Kind::kSend;
  op.trigger_seq = ctx->trigger_seq;
  op.frame = f;
  ctx->ops.push_back(std::move(op));
  return delivered;
}

void Simulator::EnsureWorkers() {
  if (!threads_.empty()) return;
  workers_.clear();
  workers_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    auto ctx = std::make_unique<WorkerCtx>();
    ctx->id = i;
    workers_.push_back(std::move(ctx));
  }
  threads_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(workers_[i].get()); });
  }
}

void Simulator::StopWorkers() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  workers_.clear();
  shutdown_ = false;
  epoch_gen_ = 0;
}

void Simulator::WorkerMain(WorkerCtx* ctx) {
  tls_ctx_ = ctx;  // reroutes this thread's simulator calls for its lifetime
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_gen_ != seen; });
      if (shutdown_) return;
      seen = epoch_gen_;
    }
    // Deliver this shard in seq order (Deliver() minus the frame release
    // and delivery accounting, which the coordinator performs at the
    // barrier in global seq order). node_down_ is frozen during a wave
    // (node changes bound waves), so the down-destination skip is a pure
    // read and matches the serial Deliver exactly.
    for (const Event& ev : ctx->events) {
      ctx->trigger_seq = ev.seq;
      Message& msg = frames_[ev.frame];
      if (NodeUp(msg.dst) && msg.dst < handlers_.size() &&
          msg.channel < handlers_[msg.dst].size()) {
        const MessageHandler& h = handlers_[msg.dst][msg.channel];
        if (h) h(msg);
      }
    }
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (--busy_ == 0) done_cv_.notify_one();
    }
  }
}

void Simulator::ExecuteWave() {
  EnsureWorkers();
  // Freeze the adjacency before handlers read it concurrently: the lazy
  // const rebuild in UpNeighbors would race if a worker triggered it.
  if (!adjacency_valid_) RebuildAdjacency();
  const uint32_t n = static_cast<uint32_t>(workers_.size());
  for (auto& w : workers_) w->events.clear();
  for (const Event& ev : wave_) {
    // Stable per-node partition: one worker per destination engine, and a
    // node keeps its worker (and warm arena) across waves.
    workers_[frames_[ev.frame].dst % n]->events.push_back(ev);
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    busy_ = n;
    ++epoch_gen_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(pool_mu_);
    done_cv_.wait(lock, [this] { return busy_ == 0; });
  }
  // The serial loop releases each delivered frame right after its handler
  // returns; batch the releases (and the delivery-side conservation
  // accounting — counters are sums, so batching at the barrier yields the
  // same totals as the serial interleaving) here in the same seq order.
  for (const Event& ev : wave_) {
    AccountDelivery(frames_[ev.frame]);
    ReleaseFrame(ev.frame);
  }
  ReplayOps();
}

void Simulator::ReplayOps() {
  // Canonical replay: apply every recorded side effect in exactly the
  // order the serial loop would have produced it — handlers in event-seq
  // order, ops in issue order within a handler. Each delivery is handled
  // by exactly one worker and each worker walks its shard in seq order,
  // so its op log is already trigger_seq-sorted; a k-way merge on
  // trigger_seq across workers yields the serial order, and with it the
  // exact seq_ assignment of every event pushed here.
  std::vector<size_t> cursor(workers_.size(), 0);
  for (;;) {
    size_t best = workers_.size();
    uint64_t best_seq = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
      const std::vector<WorkerOp>& ops = workers_[i]->ops;
      if (cursor[i] >= ops.size()) continue;
      uint64_t s = ops[cursor[i]].trigger_seq;
      if (best == workers_.size() || s < best_seq) {
        best = i;
        best_seq = s;
      }
    }
    if (best == workers_.size()) break;
    ApplyOp(std::move(workers_[best]->ops[cursor[best]]));
    ++cursor[best];
  }
  for (auto& w : workers_) w->ops.clear();
}

void Simulator::ApplyOp(WorkerOp op) {
  // Runs on the coordinator (tls_ctx_ == nullptr), so the calls below take
  // the ordinary serial paths.
  switch (op.kind) {
    case WorkerOp::Kind::kSend: {
      if ((op.frame & kWorkerFrameBit) == 0) {
        // A global frame held across waves (none on today's hot path, but
        // legal): its contents are already in place.
        SendFrame(op.frame);
        return;
      }
      FrameRef gf = AcquireFrame();
      Message& g = frames_[gf];
      Message& w = WorkerFrameMessage(op.frame);
      g.src = w.src;
      g.dst = w.dst;
      g.channel = w.channel;
      g.is_delete = w.is_delete;
      g.multiplicity = w.multiplicity;
      // Swap, not copy: the worker frame inherits the global frame's
      // recycled batch capacity, so both pools stay allocation-free in
      // steady state.
      std::swap(g.payload, w.payload);
      g.batch.swap(w.batch);
      WorkerReleaseFrame(op.frame);
      SendFrame(gf);
      return;
    }
    case WorkerOp::Kind::kClosure:
      ScheduleAt(op.time, std::move(op.fn));
      return;
    case WorkerOp::Kind::kLinkChange:
      ScheduleLinkChange(op.time, op.a, op.b, op.up);
      return;
    case WorkerOp::Kind::kNodeChange:
      ScheduleNodeChange(op.time, op.a, op.up, op.links);
      return;
  }
}

#else  // !NETTRAILS_THREADS

void Simulator::StopWorkers() {}

#endif  // NETTRAILS_THREADS

const TrafficStats& Simulator::channel_traffic(ChannelId ch) const {
  static const TrafficStats kZero;
  if (ch >= channel_traffic_.size()) return kZero;
  return channel_traffic_[ch];
}

std::map<std::string, TrafficStats> Simulator::ChannelTrafficByName() const {
  std::map<std::string, TrafficStats> out;
  for (size_t ch = 0; ch < channel_traffic_.size(); ++ch) {
    const TrafficStats& ts = channel_traffic_[ch];
    if (ts.messages == 0 && ts.bytes == 0 && ts.tuples == 0) continue;
    out[channel_names_[ch]] = ts;
  }
  return out;
}

TrafficStats Simulator::total_traffic() const {
  TrafficStats total;
  for (const TrafficStats& ts : channel_traffic_) {
    total.messages += ts.messages;
    total.bytes += ts.bytes;
    total.tuples += ts.tuples;
  }
  return total;
}

const LinkState* Simulator::link(NodeId a, NodeId b) const {
  return links_.Find(LinkKey(a, b));
}

void Simulator::ResetTrafficStats() {
  for (TrafficStats& ts : channel_traffic_) ts = TrafficStats{};
  links_.ForEach([](uint64_t, LinkState& ls) { ls.traffic = TrafficStats{}; });
  dropped_messages_ = 0;
  for (ChannelFaultStats& fs : channel_fault_) fs = ChannelFaultStats{};
}

const ChannelFaultStats& Simulator::channel_fault_stats(ChannelId ch) const {
  static const ChannelFaultStats kZero;
  if (ch >= channel_fault_.size()) return kZero;
  return channel_fault_[ch];
}

std::map<std::string, ChannelFaultStats> Simulator::ChannelFaultStatsByName()
    const {
  std::map<std::string, ChannelFaultStats> out;
  for (size_t ch = 0; ch < channel_fault_.size(); ++ch) {
    const ChannelFaultStats& fs = channel_fault_[ch];
    if (fs.sent == 0 && fs.delivered == 0 && fs.dropped_link == 0 &&
        fs.dropped_fault == 0) {
      continue;
    }
    out[channel_names_[ch]] = fs;
  }
  return out;
}

ChannelFaultStats Simulator::total_fault_stats() const {
  ChannelFaultStats total;
  for (const ChannelFaultStats& fs : channel_fault_) {
    total.sent += fs.sent;
    total.delivered += fs.delivered;
    total.dropped_link += fs.dropped_link;
    total.dropped_fault += fs.dropped_fault;
    total.duplicated += fs.duplicated;
    total.delayed += fs.delayed;
    total.reordered += fs.reordered;
  }
  return total;
}

void Simulator::ResetEventStats() {
  events_executed_ = 0;
  schedule_in_past_ = 0;
}

}  // namespace net
}  // namespace nettrails
