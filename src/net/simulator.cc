#include "src/net/simulator.h"

#include <algorithm>
#include <cassert>

namespace nettrails {
namespace net {

NodeId Simulator::AddNode() {
  NodeId id = static_cast<NodeId>(node_count_);
  ++node_count_;
  return id;
}

void Simulator::AddLink(NodeId a, NodeId b, Time latency) {
  assert(a != b);
  LinkState& ls = links_[LinkKey(a, b)];
  ls.latency = latency;
  ls.up = true;
  adjacency_valid_ = false;
}

Status Simulator::SetLinkUp(NodeId a, NodeId b, bool up) {
  LinkState* ls = links_.Find(LinkKey(a, b));
  if (ls == nullptr) {
    return Status::NotFound("no link between " + std::to_string(a) + " and " +
                            std::to_string(b));
  }
  if (ls->up == up) return Status::OK();
  ls->up = up;
  adjacency_valid_ = false;
  for (const LinkObserver& obs : link_observers_) obs(a, b, up);
  return Status::OK();
}

bool Simulator::HasLink(NodeId a, NodeId b) const {
  return links_.Find(LinkKey(a, b)) != nullptr;
}

bool Simulator::LinkUp(NodeId a, NodeId b) const {
  const LinkState* ls = links_.Find(LinkKey(a, b));
  return ls != nullptr && ls->up;
}

std::vector<std::pair<NodeId, NodeId>> Simulator::Links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(links_.size());
  links_.ForEach([&out](uint64_t key, const LinkState&) {
    out.emplace_back(static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xffffffffu));
  });
  std::sort(out.begin(), out.end());
  return out;
}

void Simulator::RebuildAdjacency() const {
  adjacency_.assign(node_count_, {});
  links_.ForEach([this](uint64_t key, const LinkState& ls) {
    if (!ls.up) return;
    NodeId a = static_cast<NodeId>(key >> 32);
    NodeId b = static_cast<NodeId>(key & 0xffffffffu);
    if (a < node_count_) adjacency_[a].push_back(b);
    if (b < node_count_) adjacency_[b].push_back(a);
  });
  for (std::vector<NodeId>& nbrs : adjacency_) {
    std::sort(nbrs.begin(), nbrs.end());
  }
  adjacency_valid_ = true;
}

const std::vector<NodeId>& Simulator::UpNeighbors(NodeId n) const {
  static const std::vector<NodeId> kEmptyNeighbors;
  if (!adjacency_valid_) RebuildAdjacency();
  if (n >= adjacency_.size()) return kEmptyNeighbors;
  return adjacency_[n];
}

ChannelId Simulator::InternChannel(const std::string& name) {
  auto [it, inserted] =
      channel_ids_.emplace(name, static_cast<ChannelId>(channel_names_.size()));
  if (inserted) {
    channel_names_.push_back(name);
    channel_traffic_.emplace_back();
    overlay_latency_.push_back(kNoOverlay);
  }
  return it->second;
}

void Simulator::RegisterHandler(NodeId node, const std::string& channel,
                                MessageHandler handler) {
  ChannelId ch = InternChannel(channel);
  if (node >= handlers_.size()) handlers_.resize(node + 1);
  if (ch >= handlers_[node].size()) handlers_[node].resize(ch + 1);
  handlers_[node][ch] = std::move(handler);
}

void Simulator::MarkOverlayChannel(const std::string& channel, Time latency) {
  overlay_latency_[InternChannel(channel)] = latency;
}

Simulator::FrameRef Simulator::AcquireFrame() {
  FrameRef f;
  if (!free_frames_.empty()) {
    f = free_frames_.back();
    free_frames_.pop_back();
  } else {
    f = static_cast<FrameRef>(frames_.size());
    frames_.emplace_back();
  }
  Message& m = frames_[f];
  m.src = 0;
  m.dst = 0;
  m.channel = 0;
  m.is_delete = false;
  m.multiplicity = 1;
  // payload/batch were cleared on release; their buffers are retained.
  return f;
}

void Simulator::ReleaseFrame(FrameRef f) {
  Message& m = frames_[f];
  m.payload = Tuple();
  m.batch.clear();  // keeps vector capacity; entry buffers are freed
  free_frames_.push_back(f);
}

bool Simulator::SendFrame(FrameRef f) {
  Message& msg = frames_[f];
  Time delay = 1;  // local hop: 1us
  if (msg.src != msg.dst) {
    size_t nbytes = msg.SerializedSize(channel_names_[msg.channel].size());
    size_t ntuples = msg.TupleCount();
    if (overlay_latency_[msg.channel] != kNoOverlay) {
      channel_traffic_[msg.channel].Add(nbytes, ntuples);
      delay = overlay_latency_[msg.channel];
    } else {
      LinkState* ls = links_.Find(LinkKey(msg.src, msg.dst));
      if (ls == nullptr || !ls->up) {
        ++dropped_messages_;
        ReleaseFrame(f);
        return false;
      }
      ls->traffic.Add(nbytes, ntuples);
      channel_traffic_[msg.channel].Add(nbytes, ntuples);
      delay = ls->latency;
    }
  }
  Event ev;
  ev.kind = Event::Kind::kDeliver;
  ev.frame = f;
  Push(now_ + delay, ev);
  return true;
}

bool Simulator::Send(Message msg) {
  FrameRef f = AcquireFrame();
  frames_[f] = std::move(msg);
  return SendFrame(f);
}

void Simulator::Deliver(FrameRef f) {
  Message& msg = frames_[f];
  if (msg.dst < handlers_.size() && msg.channel < handlers_[msg.dst].size()) {
    const MessageHandler& h = handlers_[msg.dst][msg.channel];
    if (h) h(msg);
  }
  ReleaseFrame(f);
}

void Simulator::Push(Time t, Event ev) {
  // Hard guard (not an assert): an event scheduled in the past would move
  // now_ backwards when executed, silently corrupting virtual time in
  // Release builds. Clamp to now and count it.
  if (t < now_) {
    ++schedule_in_past_;
    t = now_;
  }
  ev.time = t;
  ev.seq = seq_++;
  queue_.push(ev);
}

void Simulator::ScheduleAt(Time t, std::function<void()> fn) {
  uint32_t slot;
  if (!free_closures_.empty()) {
    slot = free_closures_.back();
    free_closures_.pop_back();
    closures_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(closures_.size());
    closures_.push_back(std::move(fn));
  }
  Event ev;
  ev.kind = Event::Kind::kClosure;
  ev.closure = slot;
  Push(t, ev);
}

void Simulator::ScheduleAfter(Time delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleLinkChange(Time t, NodeId a, NodeId b, bool up) {
  Event ev;
  ev.kind = Event::Kind::kLinkChange;
  ev.link.a = a;
  ev.link.b = b;
  ev.link.up = up;
  Push(t, ev);
}

void Simulator::Execute(const Event& ev) {
  switch (ev.kind) {
    case Event::Kind::kDeliver:
      Deliver(ev.frame);
      break;
    case Event::Kind::kClosure: {
      // Move out before running: the closure may schedule new events, which
      // may reuse the slot.
      std::function<void()> fn = std::move(closures_[ev.closure]);
      closures_[ev.closure] = nullptr;
      free_closures_.push_back(ev.closure);
      fn();
      break;
    }
    case Event::Kind::kLinkChange:
      (void)SetLinkUp(ev.link.a, ev.link.b, ev.link.up);  // unknown link: no-op
      break;
  }
}

void Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    Execute(ev);
  }
}

void Simulator::RunUntil(Time t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    Execute(ev);
  }
  if (now_ < t) now_ = t;
}

const TrafficStats& Simulator::channel_traffic(ChannelId ch) const {
  static const TrafficStats kZero;
  if (ch >= channel_traffic_.size()) return kZero;
  return channel_traffic_[ch];
}

std::map<std::string, TrafficStats> Simulator::ChannelTrafficByName() const {
  std::map<std::string, TrafficStats> out;
  for (size_t ch = 0; ch < channel_traffic_.size(); ++ch) {
    const TrafficStats& ts = channel_traffic_[ch];
    if (ts.messages == 0 && ts.bytes == 0 && ts.tuples == 0) continue;
    out[channel_names_[ch]] = ts;
  }
  return out;
}

TrafficStats Simulator::total_traffic() const {
  TrafficStats total;
  for (const TrafficStats& ts : channel_traffic_) {
    total.messages += ts.messages;
    total.bytes += ts.bytes;
    total.tuples += ts.tuples;
  }
  return total;
}

const LinkState* Simulator::link(NodeId a, NodeId b) const {
  return links_.Find(LinkKey(a, b));
}

void Simulator::ResetTrafficStats() {
  for (TrafficStats& ts : channel_traffic_) ts = TrafficStats{};
  links_.ForEach([](uint64_t, LinkState& ls) { ls.traffic = TrafficStats{}; });
  dropped_messages_ = 0;
}

void Simulator::ResetEventStats() {
  events_executed_ = 0;
  schedule_in_past_ = 0;
}

}  // namespace net
}  // namespace nettrails
