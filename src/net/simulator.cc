#include "src/net/simulator.h"

#include <cassert>

namespace nettrails {
namespace net {

NodeId Simulator::AddNode() {
  NodeId id = static_cast<NodeId>(node_count_);
  ++node_count_;
  return id;
}

void Simulator::AddLink(NodeId a, NodeId b, Time latency) {
  assert(a != b);
  LinkState& ls = links_[Key(a, b)];
  ls.latency = latency;
  ls.up = true;
}

Status Simulator::SetLinkUp(NodeId a, NodeId b, bool up) {
  auto it = links_.find(Key(a, b));
  if (it == links_.end()) {
    return Status::NotFound("no link between " + std::to_string(a) + " and " +
                            std::to_string(b));
  }
  if (it->second.up == up) return Status::OK();
  it->second.up = up;
  for (const LinkObserver& obs : link_observers_) obs(a, b, up);
  return Status::OK();
}

bool Simulator::HasLink(NodeId a, NodeId b) const {
  return links_.count(Key(a, b)) > 0;
}

bool Simulator::LinkUp(NodeId a, NodeId b) const {
  auto it = links_.find(Key(a, b));
  return it != links_.end() && it->second.up;
}

std::vector<std::pair<NodeId, NodeId>> Simulator::Links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(links_.size());
  for (const auto& [key, ls] : links_) out.push_back(key);
  return out;
}

std::vector<NodeId> Simulator::UpNeighbors(NodeId n) const {
  std::vector<NodeId> out;
  for (const auto& [key, ls] : links_) {
    if (!ls.up) continue;
    if (key.first == n) out.push_back(key.second);
    if (key.second == n) out.push_back(key.first);
  }
  return out;
}

void Simulator::RegisterHandler(NodeId node, const std::string& channel,
                                MessageHandler handler) {
  handlers_[node][channel] = std::move(handler);
}

void Simulator::MarkOverlayChannel(const std::string& channel, Time latency) {
  overlay_channels_[channel] = latency;
}

bool Simulator::Send(Message msg) {
  size_t nbytes = msg.SerializedSize();
  size_t ntuples = msg.TupleCount();
  Time delay = 1;  // local hop: 1us
  if (msg.src != msg.dst) {
    auto oit = overlay_channels_.find(msg.channel);
    if (oit != overlay_channels_.end()) {
      channel_traffic_[msg.channel].Add(nbytes, ntuples);
      delay = oit->second;
    } else {
      auto it = links_.find(Key(msg.src, msg.dst));
      if (it == links_.end() || !it->second.up) {
        ++dropped_messages_;
        return false;
      }
      it->second.traffic.Add(nbytes, ntuples);
      channel_traffic_[msg.channel].Add(nbytes, ntuples);
      delay = it->second.latency;
    }
  }
  ScheduleAfter(delay,
                [this, m = std::move(msg)]() { Deliver(m); });
  return true;
}

void Simulator::Deliver(const Message& msg) {
  auto nit = handlers_.find(msg.dst);
  if (nit == handlers_.end()) return;
  auto hit = nit->second.find(msg.channel);
  if (hit == nit->second.end()) return;
  hit->second(msg);
}

void Simulator::ScheduleAt(Time t, std::function<void()> fn) {
  assert(t >= now_);
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void Simulator::ScheduleAfter(Time delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // Move out before pop (fn may schedule new events). top() is const, but
    // the element is discarded immediately, so moving from it is safe and
    // avoids copying the closure — delivery closures capture the full
    // Message, a per-event deep copy otherwise.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
  }
}

void Simulator::RunUntil(Time t) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
  }
  if (now_ < t) now_ = t;
}

TrafficStats Simulator::total_traffic() const {
  TrafficStats total;
  for (const auto& [ch, ts] : channel_traffic_) {
    total.messages += ts.messages;
    total.bytes += ts.bytes;
    total.tuples += ts.tuples;
  }
  return total;
}

const LinkState* Simulator::link(NodeId a, NodeId b) const {
  auto it = links_.find(Key(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

void Simulator::ResetTrafficStats() {
  channel_traffic_.clear();
  for (auto& [key, ls] : links_) ls.traffic = TrafficStats{};
  dropped_messages_ = 0;
}

}  // namespace net
}  // namespace nettrails
