#include "src/bgp/trace_parser.h"

#include <sstream>

namespace nettrails {
namespace bgp {

Result<std::vector<TraceEvent>> ParseTrace(const std::string& text) {
  std::vector<TraceEvent> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream ls(line);
    uint64_t time = 0;
    std::string kind;
    uint64_t origin = 0;
    int64_t prefix = 0;
    if (!(ls >> time >> kind >> origin >> prefix) ||
        (kind != "A" && kind != "W")) {
      return Status::ParseError("malformed trace record at line " +
                                std::to_string(lineno) + ": " + line);
    }
    std::string extra;
    if (ls >> extra) {
      return Status::ParseError("trailing fields at line " +
                                std::to_string(lineno) + ": " + line);
    }
    out.push_back({time, kind == "W", static_cast<NodeId>(origin), prefix});
  }
  return out;
}

std::string SerializeTrace(const std::vector<TraceEvent>& trace) {
  std::string out =
      "# NetTrails BGP trace: <time_us> A|W <origin_as> <prefix>\n";
  for (const TraceEvent& ev : trace) {
    out += ev.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace bgp
}  // namespace nettrails
