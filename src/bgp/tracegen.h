// Synthetic RouteViews-style workload: realistic AS topologies (tier-1
// clique, mid-tier ISPs, stubs, with customer/provider/peer edges) and
// announce/withdraw event traces. Substitutes for the real RouteViews BGP
// traces used in the demonstration (external data we do not have); the
// replay pipeline — trace -> speakers -> proxy -> maybe rules -> provenance
// — is identical.
#ifndef NETTRAILS_BGP_TRACEGEN_H_
#define NETTRAILS_BGP_TRACEGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bgp/policy.h"
#include "src/bgp/route.h"
#include "src/common/rand.h"
#include "src/net/simulator.h"

namespace nettrails {
namespace bgp {

/// One inter-AS adjacency. `relation` is `a`'s view of `b` (kCustomer means
/// b is a's customer).
struct AsLink {
  NodeId a = 0;
  NodeId b = 0;
  Relation relation = Relation::kPeer;
};

/// Generated AS-level topology.
struct AsTopology {
  size_t num_ases = 0;
  std::vector<AsLink> links;
  std::vector<NodeId> tier1;
  std::vector<NodeId> mid;
  std::vector<NodeId> stubs;

  /// Registers nodes and links with the simulator.
  void Install(net::Simulator* sim, net::Time latency = net::kMillisecond) const;
};

/// Tier-1s form a peering clique; each mid-tier AS buys transit from 1-2
/// tier-1s (and occasionally peers with another mid); each stub buys
/// transit from 1-2 mid-tier ASes.
AsTopology MakeAsTopology(size_t n_tier1, size_t n_mid, size_t n_stub,
                          Rng* rng);

/// One trace record.
struct TraceEvent {
  net::Time time = 0;
  bool withdraw = false;
  NodeId origin = 0;  // originating AS
  Prefix prefix = 0;

  std::string ToString() const;
};

/// A replayable trace: initial announcements (one prefix per stub), then
/// `n_churn_events` announce/withdraw flaps on Zipf-selected prefixes.
std::vector<TraceEvent> GenerateTrace(const AsTopology& topo,
                                      size_t n_churn_events, Rng* rng,
                                      net::Time spacing = net::kMillisecond *
                                                          50);

}  // namespace bgp
}  // namespace nettrails

#endif  // NETTRAILS_BGP_TRACEGEN_H_
