#include "src/bgp/policy.h"

namespace nettrails {
namespace bgp {

const char* RelationName(Relation rel) {
  switch (rel) {
    case Relation::kCustomer:
      return "customer";
    case Relation::kPeer:
      return "peer";
    case Relation::kProvider:
      return "provider";
  }
  return "?";
}

int LocalPref(Relation learned_from) {
  switch (learned_from) {
    case Relation::kCustomer:
      return 2;
    case Relation::kPeer:
      return 1;
    case Relation::kProvider:
      return 0;
  }
  return 0;
}

bool ShouldExport(Relation learned_from, Relation export_to) {
  // Customer routes go everywhere; peer/provider routes only to customers.
  if (learned_from == Relation::kCustomer) return true;
  return export_to == Relation::kCustomer;
}

Relation Reverse(Relation rel) {
  switch (rel) {
    case Relation::kCustomer:
      return Relation::kProvider;
    case Relation::kPeer:
      return Relation::kPeer;
    case Relation::kProvider:
      return Relation::kCustomer;
  }
  return Relation::kPeer;
}

}  // namespace bgp
}  // namespace nettrails
