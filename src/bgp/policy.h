// Interdomain routing policy: business relationships and the Gao-Rexford
// export rules used by the demonstration's "topology of ASes that consists
// of several large and small ISPs connected by a mix of customer/provider/
// peer relationships".
#ifndef NETTRAILS_BGP_POLICY_H_
#define NETTRAILS_BGP_POLICY_H_

namespace nettrails {
namespace bgp {

/// Relationship of a neighbor AS, from this AS's point of view.
enum class Relation {
  kCustomer,  // the neighbor pays us
  kPeer,      // settlement-free peering
  kProvider,  // we pay the neighbor
};

const char* RelationName(Relation rel);

/// Local preference by learning relation: customer > peer > provider
/// (prefer revenue-generating routes).
int LocalPref(Relation learned_from);

/// Gao-Rexford export rule: a route learned from `learned_from` may be
/// exported to a neighbor with relation `export_to` iff the route came from
/// a customer (or is locally originated, handled by the caller) or the
/// target is a customer.
bool ShouldExport(Relation learned_from, Relation export_to);

/// The relation the neighbor sees on its side of the session.
Relation Reverse(Relation rel);

}  // namespace bgp
}  // namespace nettrails

#endif  // NETTRAILS_BGP_POLICY_H_
