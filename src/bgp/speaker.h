// A miniature BGP daemon (the Quagga substitute): per-neighbor RIB-in, the
// standard decision process (local-pref by business relation, then shortest
// AS path, then lowest neighbor id), Gao-Rexford export policies, and
// UPDATE / WITHDRAW messages over the simulator. An attached proxy::Proxy
// observes every message entering and leaving the speaker, exactly as the
// demonstration intercepts Quagga's BGP sessions.
#ifndef NETTRAILS_BGP_SPEAKER_H_
#define NETTRAILS_BGP_SPEAKER_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/bgp/policy.h"
#include "src/bgp/route.h"
#include "src/common/status.h"
#include "src/net/simulator.h"
#include "src/proxy/proxy.h"

namespace nettrails {
namespace bgp {

/// Message channel for BGP sessions.
inline constexpr char kBgpChannel[] = "bgp";

class Speaker {
 public:
  /// `proxy` may be null (untracked speaker).
  Speaker(net::Simulator* sim, NodeId as, proxy::Proxy* proxy = nullptr);

  NodeId as() const { return as_; }

  /// Declares a neighbor with its relation (from this AS's viewpoint). A
  /// simulator link between the ASes must exist for sessions to work.
  void AddNeighbor(NodeId neighbor, Relation rel);

  /// Originates / withdraws a locally owned prefix.
  void Originate(Prefix prefix);
  void Withdraw(Prefix prefix);

  /// Best route currently selected for `prefix` (nullopt if none).
  std::optional<Route> BestRoute(Prefix prefix) const;

  /// All prefixes with a selected route.
  std::vector<Prefix> ReachablePrefixes() const;

  /// Neighbors and their relations.
  const std::map<NodeId, Relation>& neighbors() const { return neighbors_; }

  uint64_t updates_sent() const { return updates_sent_; }
  uint64_t updates_received() const { return updates_received_; }

 private:
  struct RibInEntry {
    Route route;
  };
  struct BestEntry {
    Route route;
    // kCustomer beats kPeer beats kProvider; locally originated routes are
    // modelled as learned from a virtual best-possible source.
    Relation learned_from = Relation::kCustomer;
    bool local = false;
    NodeId from_neighbor = 0;
  };

  void OnMessage(const net::Message& msg);
  void HandleUpdate(NodeId from, const Route& route);
  void HandleWithdraw(NodeId from, Prefix prefix);
  void RunDecision(Prefix prefix);
  void ExportBest(Prefix prefix);
  void SendUpdate(NodeId to, const Route& route);
  void SendWithdraw(NodeId to, Prefix prefix);

  net::Simulator* sim_;
  NodeId as_;
  /// Interned kBgpChannel id, resolved once at construction.
  net::ChannelId channel_ = 0;
  proxy::Proxy* proxy_;
  std::map<NodeId, Relation> neighbors_;
  std::set<Prefix> originated_;
  // rib_in_[prefix][neighbor] = route as received (before self-prepend).
  std::map<Prefix, std::map<NodeId, RibInEntry>> rib_in_;
  std::map<Prefix, BestEntry> loc_rib_;
  // Neighbors we have currently exported each prefix to.
  std::map<Prefix, std::set<NodeId>> exported_to_;
  uint64_t updates_sent_ = 0;
  uint64_t updates_received_ = 0;
};

}  // namespace bgp
}  // namespace nettrails

#endif  // NETTRAILS_BGP_SPEAKER_H_
