#include "src/bgp/speaker.h"

namespace nettrails {
namespace bgp {

namespace {

constexpr char kUpdateTuple[] = "bgpUpd";
constexpr char kWithdrawTuple[] = "bgpWdr";

ValueList PathToValues(const std::vector<NodeId>& path) {
  ValueList out;
  out.reserve(path.size());
  for (NodeId hop : path) out.push_back(Value::Address(hop));
  return out;
}

std::vector<NodeId> ValuesToPath(const Value& v) {
  std::vector<NodeId> out;
  if (v.is_list()) {
    for (const Value& x : v.as_list()) {
      if (x.is_address()) out.push_back(x.as_address());
    }
  }
  return out;
}

}  // namespace

Speaker::Speaker(net::Simulator* sim, NodeId as, proxy::Proxy* proxy)
    : sim_(sim), as_(as), proxy_(proxy) {
  channel_ = sim_->InternChannel(kBgpChannel);
  sim_->RegisterHandler(as_, kBgpChannel,
                        [this](const net::Message& msg) { OnMessage(msg); });
}

void Speaker::AddNeighbor(NodeId neighbor, Relation rel) {
  neighbors_[neighbor] = rel;
}

void Speaker::Originate(Prefix prefix) {
  originated_.insert(prefix);
  RunDecision(prefix);
}

void Speaker::Withdraw(Prefix prefix) {
  originated_.erase(prefix);
  RunDecision(prefix);
}

std::optional<Route> Speaker::BestRoute(Prefix prefix) const {
  auto it = loc_rib_.find(prefix);
  if (it == loc_rib_.end()) return std::nullopt;
  return it->second.route;
}

std::vector<Prefix> Speaker::ReachablePrefixes() const {
  std::vector<Prefix> out;
  out.reserve(loc_rib_.size());
  for (const auto& [prefix, best] : loc_rib_) out.push_back(prefix);
  return out;
}

void Speaker::OnMessage(const net::Message& msg) {
  const Tuple& t = msg.payload;
  if (t.name() == kUpdateTuple && t.arity() == 4) {
    ++updates_received_;
    NodeId from = t.field(1).as_address();
    Route route;
    route.prefix = t.field(2).as_int();
    route.as_path = ValuesToPath(t.field(3));
    if (proxy_ != nullptr) {
      proxy_->OnIncoming({from, route.prefix, route.as_path, false});
    }
    HandleUpdate(from, route);
  } else if (t.name() == kWithdrawTuple && t.arity() == 3) {
    ++updates_received_;
    NodeId from = t.field(1).as_address();
    Prefix prefix = t.field(2).as_int();
    if (proxy_ != nullptr) {
      proxy_->OnIncoming({from, prefix, {}, true});
    }
    HandleWithdraw(from, prefix);
  }
}

void Speaker::HandleUpdate(NodeId from, const Route& route) {
  if (!neighbors_.count(from)) return;
  if (route.ContainsAs(as_)) {
    // Loop detected: drop, but also clear any previous route from this
    // neighbor for the prefix (the new announcement replaces it).
    rib_in_[route.prefix].erase(from);
    RunDecision(route.prefix);
    return;
  }
  rib_in_[route.prefix][from] = RibInEntry{route};
  RunDecision(route.prefix);
}

void Speaker::HandleWithdraw(NodeId from, Prefix prefix) {
  auto it = rib_in_.find(prefix);
  if (it != rib_in_.end()) it->second.erase(from);
  RunDecision(prefix);
}

void Speaker::RunDecision(Prefix prefix) {
  std::optional<BestEntry> best;
  if (originated_.count(prefix)) {
    BestEntry local;
    local.route.prefix = prefix;
    local.local = true;
    local.learned_from = Relation::kCustomer;  // best possible preference
    best = local;
  } else {
    auto it = rib_in_.find(prefix);
    if (it != rib_in_.end()) {
      for (const auto& [neighbor, entry] : it->second) {
        Relation rel = neighbors_.at(neighbor);
        if (!best) {
          best = BestEntry{entry.route, rel, false, neighbor};
          continue;
        }
        // Rank: local-pref desc, path length asc, neighbor id asc.
        int lp_new = LocalPref(rel), lp_old = LocalPref(best->learned_from);
        bool better = false;
        if (lp_new != lp_old) {
          better = lp_new > lp_old;
        } else if (entry.route.as_path.size() !=
                   best->route.as_path.size()) {
          better = entry.route.as_path.size() < best->route.as_path.size();
        } else {
          better = neighbor < best->from_neighbor;
        }
        if (better) best = BestEntry{entry.route, rel, false, neighbor};
      }
    }
  }

  auto old = loc_rib_.find(prefix);
  bool changed;
  if (!best) {
    changed = old != loc_rib_.end();
    if (changed) loc_rib_.erase(old);
  } else {
    changed = old == loc_rib_.end() ||
              !(old->second.route.as_path == best->route.as_path &&
                old->second.local == best->local &&
                old->second.from_neighbor == best->from_neighbor);
    loc_rib_[prefix] = *best;
  }
  if (changed) ExportBest(prefix);
}

void Speaker::ExportBest(Prefix prefix) {
  auto bit = loc_rib_.find(prefix);
  std::set<NodeId> desired;
  Route exported;
  if (bit != loc_rib_.end()) {
    const BestEntry& best = bit->second;
    exported = best.route.Extend(as_);
    for (const auto& [neighbor, rel] : neighbors_) {
      if (!best.local && neighbor == best.from_neighbor) continue;
      if (best.local || ShouldExport(best.learned_from, rel)) {
        desired.insert(neighbor);
      }
    }
  }
  std::set<NodeId>& current = exported_to_[prefix];
  for (NodeId n : current) {
    if (!desired.count(n)) SendWithdraw(n, prefix);
  }
  for (NodeId n : desired) {
    // Re-sending after a best change carries the new path; BGP updates are
    // implicit replacements.
    SendUpdate(n, exported);
  }
  current = std::move(desired);
}

void Speaker::SendUpdate(NodeId to, const Route& route) {
  if (proxy_ != nullptr) {
    proxy_->OnOutgoing({to, route.prefix, route.as_path, false});
  }
  ++updates_sent_;
  net::Message msg;
  msg.src = as_;
  msg.dst = to;
  msg.channel = channel_;
  msg.payload =
      Tuple(kUpdateTuple, {Value::Address(to), Value::Address(as_),
                           Value::Int(route.prefix),
                           Value::List(PathToValues(route.as_path))});
  sim_->Send(std::move(msg));
}

void Speaker::SendWithdraw(NodeId to, Prefix prefix) {
  if (proxy_ != nullptr) {
    proxy_->OnOutgoing({to, prefix, {}, true});
  }
  ++updates_sent_;
  net::Message msg;
  msg.src = as_;
  msg.dst = to;
  msg.channel = channel_;
  msg.payload = Tuple(kWithdrawTuple, {Value::Address(to), Value::Address(as_),
                                       Value::Int(prefix)});
  sim_->Send(std::move(msg));
}

}  // namespace bgp
}  // namespace nettrails
