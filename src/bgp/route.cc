#include "src/bgp/route.h"

namespace nettrails {
namespace bgp {

std::string Route::ToString() const {
  std::string out = "P" + std::to_string(prefix) + " via [";
  for (size_t i = 0; i < as_path.size(); ++i) {
    if (i) out += " ";
    out += std::to_string(as_path[i]);
  }
  out += "]";
  return out;
}

}  // namespace bgp
}  // namespace nettrails
