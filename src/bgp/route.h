// BGP route representation for the mini-Quagga substrate.
#ifndef NETTRAILS_BGP_ROUTE_H_
#define NETTRAILS_BGP_ROUTE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace nettrails {
namespace bgp {

/// Prefixes are opaque integer identifiers (e.g. one per stub AS).
using Prefix = int64_t;

/// An AS-path route to a prefix. `as_path.front()` is the most recent hop
/// (the advertising AS); the origin is at the back.
struct Route {
  Prefix prefix = 0;
  std::vector<NodeId> as_path;

  bool ContainsAs(NodeId as) const {
    for (NodeId hop : as_path) {
      if (hop == as) return true;
    }
    return false;
  }

  /// The route after `as` prepends itself (what a BGP speaker exports).
  Route Extend(NodeId as) const {
    Route out;
    out.prefix = prefix;
    out.as_path.reserve(as_path.size() + 1);
    out.as_path.push_back(as);
    out.as_path.insert(out.as_path.end(), as_path.begin(), as_path.end());
    return out;
  }

  std::string ToString() const;
};

}  // namespace bgp
}  // namespace nettrails

#endif  // NETTRAILS_BGP_ROUTE_H_
