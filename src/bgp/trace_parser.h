// Text trace format (RouteViews-dump substitute):
//   <time_us> A <origin_as> <prefix>
//   <time_us> W <origin_as> <prefix>
// one record per line; '#' starts a comment.
#ifndef NETTRAILS_BGP_TRACE_PARSER_H_
#define NETTRAILS_BGP_TRACE_PARSER_H_

#include <string>
#include <vector>

#include "src/bgp/tracegen.h"
#include "src/common/status.h"

namespace nettrails {
namespace bgp {

/// Parses a trace from text. Malformed lines are errors (with line number).
Result<std::vector<TraceEvent>> ParseTrace(const std::string& text);

/// Serializes a trace to the text format (round-trips with ParseTrace).
std::string SerializeTrace(const std::vector<TraceEvent>& trace);

}  // namespace bgp
}  // namespace nettrails

#endif  // NETTRAILS_BGP_TRACE_PARSER_H_
