#include "src/bgp/tracegen.h"

#include <set>

namespace nettrails {
namespace bgp {

void AsTopology::Install(net::Simulator* sim, net::Time latency) const {
  while (sim->node_count() < num_ases) sim->AddNode();
  for (const AsLink& l : links) sim->AddLink(l.a, l.b, latency);
}

AsTopology MakeAsTopology(size_t n_tier1, size_t n_mid, size_t n_stub,
                          Rng* rng) {
  AsTopology topo;
  topo.num_ases = n_tier1 + n_mid + n_stub;
  NodeId next = 0;
  for (size_t i = 0; i < n_tier1; ++i) topo.tier1.push_back(next++);
  for (size_t i = 0; i < n_mid; ++i) topo.mid.push_back(next++);
  for (size_t i = 0; i < n_stub; ++i) topo.stubs.push_back(next++);

  std::set<std::pair<NodeId, NodeId>> seen;
  auto add = [&](NodeId a, NodeId b, Relation rel_of_b_for_a) {
    auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (!seen.insert(key).second) return;
    topo.links.push_back({a, b, rel_of_b_for_a});
  };

  // Tier-1 peering clique.
  for (size_t i = 0; i < topo.tier1.size(); ++i) {
    for (size_t j = i + 1; j < topo.tier1.size(); ++j) {
      add(topo.tier1[i], topo.tier1[j], Relation::kPeer);
    }
  }
  // Mid-tier ASes buy transit from 1-2 tier-1s.
  for (NodeId m : topo.mid) {
    size_t n_providers = topo.tier1.empty() ? 0 : 1 + rng->NextBelow(2);
    std::vector<NodeId> providers = topo.tier1;
    rng->Shuffle(&providers);
    for (size_t i = 0; i < std::min(n_providers, providers.size()); ++i) {
      // The provider (tier-1) sees the mid as a customer.
      add(providers[i], m, Relation::kCustomer);
    }
  }
  // Occasional mid-mid peering.
  for (size_t i = 0; i < topo.mid.size(); ++i) {
    for (size_t j = i + 1; j < topo.mid.size(); ++j) {
      if (rng->NextBool(0.25)) {
        add(topo.mid[i], topo.mid[j], Relation::kPeer);
      }
    }
  }
  // Stubs buy transit from 1-2 mid-tier ASes (or a tier-1 if no mids).
  const std::vector<NodeId>& upstreams =
      topo.mid.empty() ? topo.tier1 : topo.mid;
  for (NodeId s : topo.stubs) {
    if (upstreams.empty()) break;
    size_t n_providers = 1 + rng->NextBelow(2);
    std::vector<NodeId> providers = upstreams;
    rng->Shuffle(&providers);
    for (size_t i = 0; i < std::min(n_providers, providers.size()); ++i) {
      add(providers[i], s, Relation::kCustomer);
    }
  }
  return topo;
}

std::string TraceEvent::ToString() const {
  return std::to_string(time) + (withdraw ? " W " : " A ") +
         std::to_string(origin) + " " + std::to_string(prefix);
}

std::vector<TraceEvent> GenerateTrace(const AsTopology& topo,
                                      size_t n_churn_events, Rng* rng,
                                      net::Time spacing) {
  std::vector<TraceEvent> trace;
  net::Time t = spacing;
  // Initial table transfer: every stub originates one prefix.
  for (size_t i = 0; i < topo.stubs.size(); ++i) {
    trace.push_back(
        {t, false, topo.stubs[i], static_cast<Prefix>(i + 100)});
    t += spacing;
  }
  // Churn: Zipf-selected prefixes flap (withdraw while announced, announce
  // while withdrawn).
  std::vector<bool> announced(topo.stubs.size(), true);
  for (size_t e = 0; e < n_churn_events; ++e) {
    if (topo.stubs.empty()) break;
    size_t idx = rng->NextZipf(topo.stubs.size(), 1.1);
    announced[idx] = !announced[idx];
    trace.push_back({t, announced[idx] ? false : true, topo.stubs[idx],
                     static_cast<Prefix>(idx + 100)});
    t += spacing;
  }
  return trace;
}

}  // namespace bgp
}  // namespace nettrails
