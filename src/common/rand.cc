#include "src/common/rand.h"

#include <cmath>

namespace nettrails {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  s0_ = SplitMix64(&s);
  s1_ = SplitMix64(&s);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;
}

uint64_t Rng::NextU64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextZipf(size_t n, double s) {
  if (n == 0) return 0;
  // Inverse-CDF over the truncated harmonic series. O(n) per draw is fine
  // for workload generation.
  double total = 0;
  for (size_t k = 1; k <= n; ++k) total += 1.0 / std::pow(static_cast<double>(k), s);
  double u = NextDouble() * total;
  double acc = 0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= u) return k - 1;
  }
  return n - 1;
}

}  // namespace nettrails
