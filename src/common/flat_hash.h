// Open-addressing (robin-hood) hash map keyed by 64-bit integers.
//
// The zero-allocation shipping path and the open-addressing table storage
// both need the same primitive: a flat, cache-friendly u64 -> V map with no
// per-node heap allocation (std::unordered_map pays one node allocation per
// element, which on the churn hot path means one malloc/free per row or
// bucket touched). This map stores entries inline in one slab, resolves
// collisions with robin-hood linear probing (insertions displace entries
// that are closer to home, bounding probe-sequence variance), and erases
// with backward shifting (no tombstones), so steady-state insert/erase
// cycles on a converged workload allocate nothing at all.
//
// Keys are whatever 64 bits the caller has — typically an already-mixed
// content hash (Table key-projection digests) or a packed id pair (the
// simulator's (min,max) link key). A splitmix64 finalizer is applied
// internally, so poorly distributed keys (packed pairs, dense ids) are safe.
//
// Deliberately minimal: values must be movable and default-constructible,
// no iterator invalidation guarantees, no heterogeneous lookup. Iteration
// (ForEach) runs in slab order, which depends on insertion history —
// callers that need determinism must sort, exactly as they did with
// std::unordered_map.
#ifndef NETTRAILS_COMMON_FLAT_HASH_H_
#define NETTRAILS_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nettrails {

/// splitmix64 finalizer: bijective 64-bit mixer.
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename V>
class FlatHashMap64 {
 public:
  FlatHashMap64() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drops all entries but keeps the slab, so refilling to the same size
  /// allocates nothing. Entry values are reset to V{} (releasing whatever
  /// they own).
  void Clear() {
    for (Entry& e : entries_) {
      if (e.dist != kEmpty) {
        e.value = V{};
        e.dist = kEmpty;
      }
    }
    size_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr. Valid until the next
  /// mutation.
  V* Find(uint64_t key) {
    return const_cast<V*>(static_cast<const FlatHashMap64*>(this)->Find(key));
  }
  const V* Find(uint64_t key) const {
    if (entries_.empty()) return nullptr;
    size_t i = Home(key);
    for (uint32_t dist = 1;; ++dist, i = Next(i)) {
      const Entry& e = entries_[i];
      // Robin-hood invariant: an entry stored at probe distance shorter
      // than ours would have been displaced by our key, so the key is
      // absent.
      if (e.dist < dist) return nullptr;
      if (e.dist == dist && e.key == key) return &e.value;
    }
  }

  /// Value for `key`, inserting a default-constructed V if absent. The
  /// reference is valid until the next mutation.
  V& operator[](uint64_t key) {
    if (NeedsGrow()) Rehash(entries_.empty() ? 16 : entries_.size() * 2);
    size_t i = Home(key);
    for (uint32_t dist = 1;; ++dist, i = Next(i)) {
      Entry& e = entries_[i];
      if (e.dist == dist && e.key == key) return e.value;
      if (e.dist < dist) {
        ++size_;
        return InsertAt(i, dist, key);
      }
    }
  }

  /// Erases `key` if present; returns true if an entry was removed.
  bool Erase(uint64_t key) {
    if (entries_.empty()) return false;
    size_t i = Home(key);
    for (uint32_t dist = 1;; ++dist, i = Next(i)) {
      Entry& e = entries_[i];
      if (e.dist < dist) return false;
      if (e.dist == dist && e.key == key) break;
    }
    // Backward shift: pull each successor one slot toward home until a
    // slot that is empty or already at its home position.
    size_t hole = i;
    for (size_t next = Next(hole);; hole = next, next = Next(next)) {
      Entry& n = entries_[next];
      if (n.dist <= 1) break;  // empty (0) or at home (1)
      entries_[hole].key = n.key;
      entries_[hole].value = std::move(n.value);
      entries_[hole].dist = n.dist - 1;
    }
    entries_[hole].value = V{};
    entries_[hole].dist = kEmpty;
    --size_;
    return true;
  }

  /// Calls fn(key, value&) for every entry, in slab order (NOT
  /// deterministic across insertion histories — sort if order matters).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Entry& e : entries_) {
      if (e.dist != kEmpty) fn(e.key, e.value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) {
      if (e.dist != kEmpty) fn(e.key, e.value);
    }
  }

 private:
  // dist: probe distance + 1 of the stored entry; 0 marks an empty slot.
  // With at least one empty slot (guaranteed by the 0.75 load cap) every
  // probe loop terminates on an `e.dist < dist` slot.
  static constexpr uint32_t kEmpty = 0;

  struct Entry {
    uint64_t key = 0;
    V value{};
    uint32_t dist = kEmpty;
  };

  size_t Home(uint64_t key) const { return MixU64(key) & mask_; }
  size_t Next(size_t i) const { return (i + 1) & mask_; }
  bool NeedsGrow() const {
    return entries_.empty() || size_ + 1 > (entries_.size() / 4) * 3;
  }

  /// Claims slot i (whose resident, if any, is farther-from-home than
  /// `dist`... i.e. closer to home — robin hood displaces it) for `key` and
  /// sifts the displaced chain down. Returns the value slot for `key`.
  V& InsertAt(size_t i, uint32_t dist, uint64_t key) {
    uint64_t cur_key = key;
    V cur_val{};
    uint32_t cur_dist = dist;
    size_t slot = i;
    while (true) {
      Entry& e = entries_[slot];
      if (e.dist == kEmpty) {
        e.key = cur_key;
        e.value = std::move(cur_val);
        e.dist = cur_dist;
        break;
      }
      if (e.dist < cur_dist) {
        std::swap(e.key, cur_key);
        std::swap(e.value, cur_val);
        std::swap(e.dist, cur_dist);
      }
      ++cur_dist;
      slot = Next(slot);
    }
    // The requested key always ends up at slot i (displacements only move
    // other entries further down the chain).
    return entries_[i].value;
  }

  void Rehash(size_t new_cap) {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(new_cap, Entry{});
    mask_ = new_cap - 1;
    size_ = 0;
    for (Entry& e : old) {
      if (e.dist != kEmpty) {
        size_t i = Home(e.key);
        uint32_t dist = 1;
        for (;; ++dist, i = Next(i)) {
          if (entries_[i].dist < dist) break;
        }
        ++size_;
        InsertAt(i, dist, e.key) = std::move(e.value);
      }
    }
  }

  std::vector<Entry> entries_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace nettrails

#endif  // NETTRAILS_COMMON_FLAT_HASH_H_
