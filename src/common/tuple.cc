#include "src/common/tuple.h"

#include <cctype>

#include "src/common/hash.h"

namespace nettrails {

bool Tuple::operator<(const Tuple& other) const {
  if (name_ != other.name_) return name_ < other.name_;
  size_t n = std::min(fields_.size(), other.fields_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = fields_[i].Compare(other.fields_[i]);
    if (c != 0) return c < 0;
  }
  return fields_.size() < other.fields_.size();
}

Vid Tuple::Hash() const {
  Hasher h;
  h.AddString(name_);
  AddValueRange(&h, fields_.data(), fields_.data() + fields_.size());
  return h.Digest();
}

std::string Tuple::ToString() const {
  std::string out = name_;
  out += '(';
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ',';
    out += fields_[i].ToString();
  }
  out += ')';
  return out;
}

size_t Tuple::SerializedSize() const {
  size_t n = 4 + name_.size() + 4;
  for (const Value& v : fields_) n += v.SerializedSize();
  return n;
}

Result<Tuple> Tuple::Parse(const std::string& text) {
  size_t open = text.find('(');
  if (open == std::string::npos || text.empty() || text.back() != ')') {
    return Status::ParseError("malformed tuple: " + text);
  }
  std::string name = text.substr(0, open);
  if (name.empty()) return Status::ParseError("tuple missing name: " + text);
  std::string body = text.substr(open + 1, text.size() - open - 2);
  ValueList fields;
  // Split on commas at depth 0 (lists and strings may contain commas).
  size_t start = 0;
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || (body[i] == ',' && depth == 0 && !in_string)) {
      std::string part = body.substr(start, i - start);
      // Trim whitespace.
      size_t a = part.find_first_not_of(" \t");
      if (a == std::string::npos) {
        if (!body.empty()) {
          return Status::ParseError("empty field in tuple: " + text);
        }
        break;
      }
      size_t b = part.find_last_not_of(" \t");
      NT_ASSIGN_OR_RETURN(Value v, Value::Parse(part.substr(a, b - a + 1)));
      fields.push_back(std::move(v));
      start = i + 1;
      continue;
    }
    char c = body[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '[') ++depth;
    if (c == ']') --depth;
  }
  return Tuple(std::move(name), std::move(fields));
}

}  // namespace nettrails
