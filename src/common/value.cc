#include "src/common/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/hash.h"

namespace nettrails {

const char* KindName(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull:
      return "null";
    case Value::Kind::kInt:
      return "int";
    case Value::Kind::kDouble:
      return "double";
    case Value::Kind::kString:
      return "string";
    case Value::Kind::kAddress:
      return "address";
    case Value::Kind::kList:
      return "list";
  }
  return "unknown";
}

bool Value::Truthy() const {
  switch (kind()) {
    case Kind::kInt:
      return as_int() != 0;
    case Kind::kDouble:
      return as_double() != 0.0;
    default:
      return false;
  }
}

bool Value::operator==(const Value& other) const { return Compare(other) == 0; }

namespace {

/// Hashes an integral-valued double exactly like Value::Hash's kDouble
/// branch, so ints that Compare() can only see through double promotion
/// land in the same equivalence class.
void HashNumericAsDouble(double d, Hasher* h) {
  if (d >= -9.2e18 && d <= 9.2e18) {
    h->AddU64(1);
    h->AddU64(static_cast<uint64_t>(static_cast<int64_t>(d)));
  } else {
    h->AddU64(2);
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    h->AddU64(bits);
  }
}

/// List-hash cache counters, thread_local so parallel simulator workers
/// never contend on them. An engine drain executes on exactly one thread,
/// so the deltas it snapshots around the drain remain exact.
thread_local uint64_t g_list_hash_cache_hits = 0;
thread_local uint64_t g_list_hash_cache_misses = 0;

}  // namespace

uint64_t Value::ListHashCacheHits() { return g_list_hash_cache_hits; }
uint64_t Value::ListHashCacheMisses() { return g_list_hash_cache_misses; }

int Value::Compare(const Value& other) const {
  // Numeric kinds compare against each other by value.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = as_int(), b = other.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericAsDouble(), b = other.NumericAsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind() != other.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(other.kind()) ? -1 : 1;
  }
  switch (kind()) {
    case Kind::kNull:
      return 0;
    case Kind::kString: {
      int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Kind::kAddress: {
      NodeId a = as_address(), b = other.as_address();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Kind::kList: {
      // Shared-rep shortcut: copies of a list value alias one immutable rep.
      if (std::get<5>(rep_) == std::get<5>(other.rep_)) return 0;
      const ValueList& a = as_list();
      const ValueList& b = other.as_list();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() == b.size()) return 0;
      return a.size() < b.size() ? -1 : 1;
    }
    default:
      return 0;  // unreachable: numeric handled above
  }
}

uint64_t Value::Hash() const {
  Hasher h;
  // Hash ints and doubles that hold integral values identically so that
  // Compare()==0 implies Hash() equality across the numeric kinds.
  switch (kind()) {
    case Kind::kNull:
      h.AddU64(0x6e756c6c);
      break;
    case Kind::kInt: {
      int64_t v = as_int();
      constexpr int64_t kExactDouble = int64_t{1} << 53;
      if (v >= -kExactDouble && v <= kExactDouble) {
        h.AddU64(1);
        h.AddU64(static_cast<uint64_t>(v));
      } else {
        // Beyond 2^53 Compare() equates an int with its nearest double
        // (mixed comparisons promote to double); hash through the same
        // conversion so Compare()==0 still implies equal hashes — the
        // table key/secondary indexes rely on that invariant.
        HashNumericAsDouble(static_cast<double>(v), &h);
      }
      break;
    }
    case Kind::kDouble: {
      double d = as_double();
      double r = std::floor(d);
      if (r == d && d >= -9.2e18 && d <= 9.2e18) {
        h.AddU64(1);
        h.AddU64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      } else {
        h.AddU64(2);
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        h.AddU64(bits);
      }
      break;
    }
    case Kind::kString:
      h.AddU64(3);
      h.AddString(as_string());
      break;
    case Kind::kAddress:
      h.AddU64(4);
      h.AddU64(as_address());
      break;
    case Kind::kList: {
      const std::shared_ptr<const ListRep>& rep = std::get<5>(rep_);
      if (rep->hash_valid.load(std::memory_order_acquire)) {
        ++g_list_hash_cache_hits;
        return rep->hash.load(std::memory_order_relaxed);
      }
      h.AddU64(5);
      h.AddU64(rep->items.size());
      for (const Value& x : rep->items) h.AddU64(x.Hash());
      // Concurrent fills race benignly: the digest is a pure function of
      // the immutable items, so every writer stores the same value. The
      // release publishes the hash to acquire-loads above.
      uint64_t digest = h.Digest();
      rep->hash.store(digest, std::memory_order_relaxed);
      rep->hash_valid.store(true, std::memory_order_release);
      ++g_list_hash_cache_misses;
      return digest;
    }
  }
  return h.Digest();
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kInt:
      return std::to_string(as_int());
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      // Ensure doubles render distinguishably from ints.
      std::string s(buf);
      if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
      return s;
    }
    case Kind::kString: {
      std::string out = "\"";
      for (char c : as_string()) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
    case Kind::kAddress:
      return "@" + std::to_string(as_address());
    case Kind::kList: {
      std::string out = "[";
      const ValueList& xs = as_list();
      for (size_t i = 0; i < xs.size(); ++i) {
        if (i) out += ",";
        out += xs[i].ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

size_t Value::SerializedSize() const {
  switch (kind()) {
    case Kind::kNull:
      return 1;
    case Kind::kInt:
      return 1 + 8;
    case Kind::kDouble:
      return 1 + 8;
    case Kind::kString:
      return 1 + 4 + as_string().size();
    case Kind::kAddress:
      return 1 + 4;
    case Kind::kList: {
      size_t n = 1 + 4;
      for (const Value& x : as_list()) n += x.SerializedSize();
      return n;
    }
  }
  return 1;
}

namespace {

// Recursive-descent parser over the ToString() grammar.
class ValueParser {
 public:
  explicit ValueParser(const std::string& text) : s_(text) {}

  Result<Value> Parse() {
    NT_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::ParseError("trailing characters in value: " + s_);
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  Result<Value> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Status::ParseError("empty value");
    char c = s_[pos_];
    if (c == '"') return ParseString();
    if (c == '[') return ParseList();
    if (c == '@') return ParseAddress();
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Value::Null();
    }
    return ParseNumber();
  }

  Result<Value> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) return Status::ParseError("unterminated string");
    ++pos_;  // closing quote
    return Value::Str(std::move(out));
  }

  Result<Value> ParseList() {
    ++pos_;  // '['
    ValueList xs;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return Value::List(std::move(xs));
    }
    while (true) {
      NT_ASSIGN_OR_RETURN(Value v, ParseValue());
      xs.push_back(std::move(v));
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return Value::List(std::move(xs));
      }
      return Status::ParseError("malformed list");
    }
  }

  Result<Value> ParseAddress() {
    ++pos_;  // '@'
    size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ == start) return Status::ParseError("malformed address");
    return Value::Address(
        static_cast<NodeId>(std::stoul(s_.substr(start, pos_ - start))));
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '-' || c == '+') && pos_ > start &&
                  (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E'))) {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Status::ParseError("malformed number");
    std::string num = s_.substr(start, pos_ - start);
    try {
      if (is_double) return Value::Double(std::stod(num));
      return Value::Int(std::stoll(num));
    } catch (...) {
      return Status::ParseError("malformed number: " + num);
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Value::Parse(const std::string& text) {
  return ValueParser(text).Parse();
}

}  // namespace nettrails
