#include "src/common/hash.h"

namespace nettrails {

void Hasher::AddBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    state_ ^= p[i];
    state_ *= kFnvPrime;
  }
}

void Hasher::AddString(const std::string& s) {
  AddU64(s.size());
  AddBytes(s.data(), s.size());
}

uint64_t Hasher::Digest() const {
  uint64_t h = state_;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashBytes(const void* data, size_t len) {
  Hasher h;
  h.AddBytes(data, len);
  return h.Digest();
}

}  // namespace nettrails
