// Runtime value system for NDlog tuples (RapidNet value layer equivalent).
#ifndef NETTRAILS_COMMON_VALUE_H_
#define NETTRAILS_COMMON_VALUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/hash.h"
#include "src/common/status.h"

namespace nettrails {

/// Identifier of a simulated node; doubles as the NDlog address type.
using NodeId = uint32_t;

class Value;
using ValueList = std::vector<Value>;

/// A dynamically-typed NDlog value: null, int64, double, string, node
/// address, or list of values. Lists are immutable and shared (cheap copies
/// of path vectors, VID lists, etc.).
class Value {
 public:
  enum class Kind { kNull = 0, kInt, kDouble, kString, kAddress, kList };

  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Double(double v) {
    return Value(Rep(std::in_place_index<2>, v));
  }
  static Value Str(std::string v) {
    return Value(Rep(std::in_place_index<3>, std::move(v)));
  }
  static Value Address(NodeId v) {
    return Value(Rep(std::in_place_index<4>, v));
  }
  static Value List(ValueList v) {
    auto rep = std::make_shared<ListRep>();
    rep->items = std::move(v);
    return Value(Rep(std::in_place_index<5>, std::move(rep)));
  }
  static Value Bool(bool v) { return Int(v ? 1 : 0); }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_address() const { return kind() == Kind::kAddress; }
  bool is_list() const { return kind() == Kind::kList; }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<1>(rep_); }
  double as_double() const { return std::get<2>(rep_); }
  const std::string& as_string() const { return std::get<3>(rep_); }
  NodeId as_address() const { return std::get<4>(rep_); }
  const ValueList& as_list() const { return std::get<5>(rep_)->items; }

  /// Numeric promotion: int or double as double. Asserts numeric.
  double NumericAsDouble() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Truthiness: nonzero numeric. Null, strings, lists are falsy except
  /// non-empty is NOT considered; NDlog predicates yield 0/1 ints.
  bool Truthy() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: by kind rank, then value (ints and doubles compare
  /// numerically against each other).
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Three-way comparison: negative / zero / positive.
  int Compare(const Value& other) const;

  /// Stable 64-bit hash (FNV-1a over kind + canonical bytes). Used for VIDs.
  /// For lists the digest is computed once per shared immutable rep and
  /// cached inside it, so re-hashing a path vector or VID list on every
  /// rule firing is O(1) after the first walk. The cached digest is
  /// bit-identical to the uncached computation (property-tested).
  uint64_t Hash() const;

  /// Per-thread list-hash cache counters (thread_local so parallel workers
  /// never contend; an engine's drain runs entirely on one thread, so the
  /// before/after deltas it attributes into EngineStats stay exact).
  static uint64_t ListHashCacheHits();
  static uint64_t ListHashCacheMisses();

  /// Render for logs and the visualizer, e.g. `"abc"`, `@3`, `[1,2]`.
  std::string ToString() const;

  /// Size in bytes when serialized into a network message (for the traffic
  /// accounting the optimization experiments report).
  size_t SerializedSize() const;

  /// Parse from the ToString() rendering.
  static Result<Value> Parse(const std::string& text);

 private:
  /// Shared immutable rep of a list value. The items never change after
  /// construction, so the structural hash is computed at most once and
  /// cached here; every copy of the Value shares the cache. The cache
  /// fields are mutable because caching is semantically transparent —
  /// logically the rep is const. They are atomics because shared reps
  /// cross worker threads under the parallel simulator: the digest is
  /// deterministic, so concurrent fills are idempotent, and the
  /// release-store of `hash_valid` publishes the relaxed `hash` store.
  struct ListRep {
    ValueList items;
    mutable std::atomic<uint64_t> hash{0};
    mutable std::atomic<bool> hash_valid{false};
  };

  using Rep = std::variant<std::monostate, int64_t, double, std::string,
                           NodeId, std::shared_ptr<const ListRep>>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// Human-readable kind name ("int", "list", ...).
const char* KindName(Value::Kind kind);

/// Appends the canonical digest of a value sequence — element count, then
/// each element's Value::Hash — to `h`. Every keyed digest in the system
/// (Tuple::Hash, ValueListHash, f_mkvid/TupleVid, aggregate-group keys)
/// shares this one layout; do not hand-roll it, VID stability depends on
/// every producer staying bit-identical.
inline void AddValueRange(Hasher* h, const Value* begin, const Value* end) {
  h->AddU64(static_cast<uint64_t>(end - begin));
  for (const Value* v = begin; v != end; ++v) h->AddU64(v->Hash());
}

}  // namespace nettrails

#endif  // NETTRAILS_COMMON_VALUE_H_
