#include "src/common/status.h"

namespace nettrails {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kTypeError:
      return "TypeError";
    case Status::Code::kPlanError:
      return "PlanError";
    case Status::Code::kRuntimeError:
      return "RuntimeError";
    case Status::Code::kUnsupported:
      return "Unsupported";
    case Status::Code::kIoError:
      return "IoError";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nettrails
