// Deterministic PRNG used across workload generators and benchmarks so that
// every experiment is reproducible from a seed.
#ifndef NETTRAILS_COMMON_RAND_H_
#define NETTRAILS_COMMON_RAND_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nettrails {

/// SplitMix64-seeded xorshift128+ generator. Not thread-safe; one per
/// workload.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (selects popular query
  /// targets, matching skewed provenance-query workloads).
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* xs) {
    for (size_t i = xs->size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap((*xs)[i - 1], (*xs)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace nettrails

#endif  // NETTRAILS_COMMON_RAND_H_
