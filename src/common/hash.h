// Stable hashing used for vertex IDs (VIDs) in the provenance graph. The
// paper's ExSPAN rewrite uses SHA-1; any collision-resistant-enough stable
// digest preserves the behaviour, so we use 64-bit FNV-1a with mixing.
#ifndef NETTRAILS_COMMON_HASH_H_
#define NETTRAILS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace nettrails {

inline constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a hasher with a finalization mix.
class Hasher {
 public:
  Hasher() : state_(kFnvOffset) {}

  void AddBytes(const void* data, size_t len);

  /// Feeds the 8 little-endian bytes of `v`. This is the innermost call of
  /// every digest (each hashed scalar funnels through it), so it is inlined
  /// and unrolled; the math is byte-for-byte the FNV-1a loop AddBytes runs,
  /// keeping digests stable across the change.
  void AddU64(uint64_t v) {
    uint64_t s = state_;
    s = (s ^ (v & 0xff)) * kFnvPrime;
    s = (s ^ ((v >> 8) & 0xff)) * kFnvPrime;
    s = (s ^ ((v >> 16) & 0xff)) * kFnvPrime;
    s = (s ^ ((v >> 24) & 0xff)) * kFnvPrime;
    s = (s ^ ((v >> 32) & 0xff)) * kFnvPrime;
    s = (s ^ ((v >> 40) & 0xff)) * kFnvPrime;
    s = (s ^ ((v >> 48) & 0xff)) * kFnvPrime;
    s = (s ^ ((v >> 56) & 0xff)) * kFnvPrime;
    state_ = s;
  }

  void AddString(const std::string& s);

  /// Finalized digest (fmix64 from MurmurHash3 for avalanche).
  uint64_t Digest() const;

 private:
  uint64_t state_;
};

/// One-shot hash of a byte buffer.
uint64_t HashBytes(const void* data, size_t len);

}  // namespace nettrails

#endif  // NETTRAILS_COMMON_HASH_H_
