// Pluggable process-wide allocation accounting.
//
// When the build defines NETTRAILS_COUNT_ALLOCS (CMake option
// -DNETTRAILS_COUNT_ALLOCS=ON, bench/CI builds only), alloc_hook.cc replaces
// global operator new/delete with thin wrappers that bump an atomic counter
// before delegating to malloc/free. Callers sample AllocCount() around a
// region of interest — bench_churn does this per converged link flap and
// reports the delta as `allocs_per_flap`, the zero-allocation-shipping-path
// regression metric pinned by scripts/check_alloc_budget.sh.
//
// In normal builds the hook is compiled out: AllocCount() returns 0 and
// AllocCountingEnabled() is false, so all derived metrics read as zero (and
// the budget check skips itself). The hook must NOT be combined with
// sanitizer builds — ASan interposes malloc and operator new itself, and the
// CMake configuration rejects the combination.
#ifndef NETTRAILS_COMMON_ALLOC_HOOK_H_
#define NETTRAILS_COMMON_ALLOC_HOOK_H_

#include <cstdint>

namespace nettrails {

/// Total calls to global operator new (all forms) since process start.
/// Always 0 when the hook is compiled out.
uint64_t AllocCount();

/// Calls to global operator new made by the CALLING thread since it
/// started. Engines sample this one around their drains: a drain executes
/// entirely on one thread, so the delta attributes allocations exactly to
/// that engine even when other workers allocate concurrently (the process-
/// wide AllocCount() delta would smear them together). Always 0 when the
/// hook is compiled out.
uint64_t AllocCountThisThread();

/// True when this build counts allocations (NETTRAILS_COUNT_ALLOCS).
bool AllocCountingEnabled();

}  // namespace nettrails

#endif  // NETTRAILS_COMMON_ALLOC_HOOK_H_
