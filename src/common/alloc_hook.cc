#include "src/common/alloc_hook.h"

#ifdef NETTRAILS_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_alloc_count{0};
thread_local uint64_t g_alloc_count_this_thread = 0;

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  ++g_alloc_count_this_thread;
  // malloc(0) may return nullptr; operator new must return a unique pointer.
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

// Replaceable global allocation functions ([new.delete.single] /
// [new.delete.array]). Alignment-aware overloads are omitted: the codebase
// never over-aligns, and the plain forms cover every container allocation.
void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace nettrails {

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

uint64_t AllocCountThisThread() { return g_alloc_count_this_thread; }

bool AllocCountingEnabled() { return true; }

}  // namespace nettrails

#else  // !NETTRAILS_COUNT_ALLOCS

namespace nettrails {

uint64_t AllocCount() { return 0; }

uint64_t AllocCountThisThread() { return 0; }

bool AllocCountingEnabled() { return false; }

}  // namespace nettrails

#endif  // NETTRAILS_COUNT_ALLOCS
