// Tuples: the unit of network state and of provenance vertices.
#ifndef NETTRAILS_COMMON_TUPLE_H_
#define NETTRAILS_COMMON_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace nettrails {

/// Vertex identifier in the provenance graph: stable digest of a tuple
/// (tuple vertices) or of a rule execution (rule-execution vertices).
using Vid = uint64_t;

/// A named tuple, e.g. `link(@1, 2, 10)`. By NDlog convention the first
/// field is the location attribute (a Value::Address) identifying the node
/// that stores the tuple.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::string name, ValueList fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  const std::string& name() const { return name_; }
  const ValueList& fields() const { return fields_; }
  ValueList& mutable_fields() { return fields_; }
  size_t arity() const { return fields_.size(); }
  const Value& field(size_t i) const { return fields_[i]; }

  /// True if field 0 exists and is an address.
  bool HasLocation() const {
    return !fields_.empty() && fields_[0].is_address();
  }
  /// Location attribute (field 0). Requires HasLocation().
  NodeId Location() const { return fields_[0].as_address(); }

  bool operator==(const Tuple& other) const {
    return name_ == other.name_ && fields_ == other.fields_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  /// Stable content digest; this is the tuple's VID in the provenance graph.
  Vid Hash() const;

  /// E.g. `link(@1,2,10)`.
  std::string ToString() const;

  /// Bytes on the wire when shipped between nodes.
  size_t SerializedSize() const;

  /// Parse the ToString() rendering back into a tuple.
  static Result<Tuple> Parse(const std::string& text);

 private:
  std::string name_;
  ValueList fields_;
};

}  // namespace nettrails

#endif  // NETTRAILS_COMMON_TUPLE_H_
