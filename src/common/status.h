// Status / Result error model for NetTrails (RocksDB/Arrow idiom: fallible
// operations return a Status or Result<T>; exceptions are not used).
#ifndef NETTRAILS_COMMON_STATUS_H_
#define NETTRAILS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nettrails {

/// Outcome of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kParseError,
    kTypeError,
    kPlanError,
    kRuntimeError,
    kUnsupported,
    kIoError,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(Code::kTypeError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(Code::kPlanError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(Code::kRuntimeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` /
  // `return Status::...;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace nettrails

/// Propagate a non-OK Status from the current function.
#define NT_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::nettrails::Status _nt_st = (expr);    \
    if (!_nt_st.ok()) return _nt_st;        \
  } while (0)

/// Assign the value of a Result to `lhs`, or propagate its error Status.
#define NT_ASSIGN_OR_RETURN(lhs, expr)          \
  NT_ASSIGN_OR_RETURN_IMPL_(                    \
      NT_STATUS_CONCAT_(_nt_res, __LINE__), lhs, expr)

#define NT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define NT_STATUS_CONCAT_(a, b) NT_STATUS_CONCAT_IMPL_(a, b)
#define NT_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // NETTRAILS_COMMON_STATUS_H_
