#include "src/protocols/programs.h"

#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "src/net/topology.h"
#include "src/provenance/rewrite.h"
#include "src/query/query_engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace protocols {
namespace {

// Dijkstra reference over a costed topology.
std::vector<std::vector<int64_t>> AllPairsShortest(const net::Topology& topo) {
  constexpr int64_t kInf = -1;
  size_t n = topo.num_nodes;
  std::vector<std::vector<std::pair<size_t, int64_t>>> adj(n);
  for (const net::CostedLink& l : topo.links) {
    adj[l.a].push_back({l.b, l.cost});
    adj[l.b].push_back({l.a, l.cost});
  }
  std::vector<std::vector<int64_t>> dist(n, std::vector<int64_t>(n, kInf));
  for (size_t src = 0; src < n; ++src) {
    using Item = std::pair<int64_t, size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    pq.push({0, src});
    std::vector<int64_t>& d = dist[src];
    d[src] = 0;
    std::vector<bool> done(n, false);
    while (!pq.empty()) {
      auto [c, u] = pq.top();
      pq.pop();
      if (done[u]) continue;
      done[u] = true;
      for (auto [v, w] : adj[u]) {
        if (d[v] == kInf || c + w < d[v]) {
          d[v] = c + w;
          pq.push({d[v], v});
        }
      }
    }
  }
  return dist;
}

struct Net {
  net::Simulator sim;
  net::Topology topo;
  std::vector<std::unique_ptr<runtime::Engine>> engines;
};

std::unique_ptr<Net> RunProtocol(const char* program, net::Topology topo,
                                 bool provenance) {
  runtime::CompileOptions opts;
  opts.provenance = provenance;
  Result<runtime::CompiledProgramPtr> prog = runtime::Compile(program, opts);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  auto net = std::make_unique<Net>();
  net->topo = std::move(topo);
  net->engines = MakeEngines(&net->sim, net->topo, *prog);
  EXPECT_TRUE(InstallLinks(net->topo, &net->engines, &net->sim).ok());
  return net;
}

int64_t MincostAt(const Net& net, NodeId x, NodeId z) {
  for (const Tuple& t : net.engines[x]->TableContents("mincost")) {
    if (t.field(1).as_address() == z) return t.field(2).as_int();
  }
  return -1;
}

int64_t BestcostAt(const Net& net, NodeId x, NodeId z) {
  for (const Tuple& t : net.engines[x]->TableContents("bestcost")) {
    if (t.field(1).as_address() == z) return t.field(2).as_int();
  }
  return -1;
}

void ExpectMincostMatchesDijkstra(const Net& net) {
  std::vector<std::vector<int64_t>> ref = AllPairsShortest(net.topo);
  for (size_t x = 0; x < net.topo.num_nodes; ++x) {
    for (size_t z = 0; z < net.topo.num_nodes; ++z) {
      if (x == z) continue;
      EXPECT_EQ(MincostAt(net, static_cast<NodeId>(x), static_cast<NodeId>(z)),
                ref[x][z])
          << "mincost(" << x << "," << z << ")";
    }
  }
}

// ---------- MINCOST ----------

struct MincostParam {
  const char* name;
  net::Topology topo;
};

class MincostCorrectness
    : public ::testing::TestWithParam<MincostParam> {};

TEST_P(MincostCorrectness, MatchesDijkstra) {
  std::unique_ptr<Net> net =
      RunProtocol(MincostProgram(), GetParam().topo, /*provenance=*/false);
  ExpectMincostMatchesDijkstra(*net);
}

TEST_P(MincostCorrectness, ProvenanceDoesNotChangeResults) {
  std::unique_ptr<Net> net =
      RunProtocol(MincostProgram(), GetParam().topo, /*provenance=*/true);
  ExpectMincostMatchesDijkstra(*net);
}

Rng g_topo_rng(0xbeef);

INSTANTIATE_TEST_SUITE_P(
    Topologies, MincostCorrectness,
    ::testing::Values(
        MincostParam{"line4", net::MakeLine(4, 2)},
        MincostParam{"ring6", net::MakeRing(6, 1)},
        MincostParam{"ringchord8", net::MakeRingWithChords(8, 1, 3)},
        MincostParam{"star5", net::MakeStar(5, 4)},
        MincostParam{"grid3x3", net::MakeGrid(3, 3, 1)},
        MincostParam{"rand10", net::MakeRandomConnected(10, 0.15,
                                                        &g_topo_rng)},
        MincostParam{"rand14", net::MakeRandomConnected(14, 0.1,
                                                        &g_topo_rng)}),
    [](const ::testing::TestParamInfo<MincostParam>& info) {
      return info.param.name;
    });

TEST(MincostChurnTest, ReconvergesAfterLinkFailureAndRecovery) {
  net::Topology topo = net::MakeRing(6, 1);
  std::unique_ptr<Net> net =
      RunProtocol(MincostProgram(), topo, /*provenance=*/false);
  ExpectMincostMatchesDijkstra(*net);

  // Fail one ring link: costs must match Dijkstra on the line that remains.
  ASSERT_TRUE(FailLink(0, 5, 1, &net->engines, &net->sim).ok());
  net::Topology after = net::MakeLine(6, 1);
  std::vector<std::vector<int64_t>> ref = AllPairsShortest(after);
  for (size_t x = 0; x < 6; ++x) {
    for (size_t z = 0; z < 6; ++z) {
      if (x == z) continue;
      EXPECT_EQ(MincostAt(*net, static_cast<NodeId>(x),
                          static_cast<NodeId>(z)),
                ref[x][z])
          << x << "->" << z;
    }
  }

  // Recover: back to ring-optimal costs.
  ASSERT_TRUE(RecoverLink(0, 5, 1, &net->engines, &net->sim).ok());
  ExpectMincostMatchesDijkstra(*net);
}

TEST(MincostChurnTest, CostChangeViaReplacement) {
  net::Topology topo = net::MakeLine(3, 5);
  std::unique_ptr<Net> net =
      RunProtocol(MincostProgram(), topo, /*provenance=*/false);
  EXPECT_EQ(MincostAt(*net, 0, 2), 10);
  // Re-inserting link(0,1) with a new cost replaces it (keys (1,2)).
  ASSERT_TRUE(RecoverLink(0, 1, 1, &net->engines, &net->sim).ok());
  EXPECT_EQ(MincostAt(*net, 0, 2), 6);
}

// ---------- PATH VECTOR ----------

TEST(PathVectorTest, BestPathsMatchDijkstraOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    net::Topology topo = net::MakeRandomConnected(8, 0.2, &rng);
    std::unique_ptr<Net> net =
        RunProtocol(PathVectorProgram(), topo, /*provenance=*/false);
    std::vector<std::vector<int64_t>> ref = AllPairsShortest(topo);
    for (size_t x = 0; x < topo.num_nodes; ++x) {
      for (size_t z = 0; z < topo.num_nodes; ++z) {
        if (x == z) continue;
        EXPECT_EQ(BestcostAt(*net, static_cast<NodeId>(x),
                             static_cast<NodeId>(z)),
                  ref[x][z])
            << "seed " << seed << " bestcost(" << x << "," << z << ")";
      }
    }
  }
}

TEST(PathVectorTest, BestPathsAreValidPaths) {
  Rng rng(7);
  net::Topology topo = net::MakeRandomConnected(8, 0.2, &rng);
  std::unique_ptr<Net> net =
      RunProtocol(PathVectorProgram(), topo, /*provenance=*/false);
  auto has_link = [&](NodeId a, NodeId b) {
    for (const net::CostedLink& l : topo.links) {
      if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return l.cost;
    }
    return int64_t{-1};
  };
  for (size_t x = 0; x < topo.num_nodes; ++x) {
    for (const Tuple& t : net->engines[x]->TableContents("bestpath")) {
      const ValueList& hops = t.field(3).as_list();
      ASSERT_GE(hops.size(), 2u);
      EXPECT_EQ(hops.front().as_address(), x);
      EXPECT_EQ(hops.back().as_address(), t.field(1).as_address());
      int64_t total = 0;
      for (size_t i = 0; i + 1 < hops.size(); ++i) {
        int64_t c = has_link(hops[i].as_address(), hops[i + 1].as_address());
        ASSERT_GE(c, 0) << "bestpath uses a non-existent link";
        total += c;
      }
      EXPECT_EQ(total, t.field(2).as_int());
    }
  }
}

TEST(PathVectorTest, PathsAreLoopFree) {
  net::Topology topo = net::MakeRingWithChords(8, 1, 2);
  std::unique_ptr<Net> net =
      RunProtocol(PathVectorProgram(), topo, /*provenance=*/false);
  for (size_t x = 0; x < topo.num_nodes; ++x) {
    for (const Tuple& t : net->engines[x]->TableContents("path")) {
      const ValueList& hops = t.field(3).as_list();
      std::set<NodeId> seen;
      for (const Value& h : hops) {
        EXPECT_TRUE(seen.insert(h.as_address()).second)
            << "loop in " << t.ToString();
      }
    }
  }
}

TEST(PathVectorTest, ChurnRetractsAffectedPaths) {
  net::Topology topo = net::MakeLine(4, 1);
  std::unique_ptr<Net> net =
      RunProtocol(PathVectorProgram(), topo, /*provenance=*/false);
  EXPECT_EQ(BestcostAt(*net, 0, 3), 3);
  ASSERT_TRUE(FailLink(2, 3, 1, &net->engines, &net->sim).ok());
  EXPECT_EQ(BestcostAt(*net, 0, 3), -1);
  EXPECT_EQ(BestcostAt(*net, 0, 2), 2);
  ASSERT_TRUE(RecoverLink(2, 3, 1, &net->engines, &net->sim).ok());
  EXPECT_EQ(BestcostAt(*net, 0, 3), 3);
}

/// Provenance query on an SPF result: the derivation of a distance must
/// bottom out in link base tuples only (the SPF is derived state all the
/// way down to the flooded LSAs, which root in links).
TEST(LinkStateTest, ProvenanceQueryExplainsSpf) {
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(LinkStateProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  net::Simulator sim;
  net::Topology topo = net::MakeRingWithChords(5, 1, 2);
  std::vector<std::unique_ptr<runtime::Engine>> engines =
      MakeEngines(&sim, topo, *prog);
  query::ProvenanceQuerier querier(&sim, EnginePtrs(engines));
  ASSERT_TRUE(InstallLinks(topo, &engines, &sim).ok());

  std::vector<Tuple> spf = engines[0]->TableContents("spf");
  ASSERT_FALSE(spf.empty());
  Result<query::QueryResult> r = querier.Query(spf.front());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->count, 0);
  ASSERT_FALSE(r->leaf_tuples.empty());
  for (const std::string& leaf : r->leaf_tuples) {
    EXPECT_EQ(leaf.rfind("link(", 0), 0u) << "non-link leaf: " << leaf;
  }
}

// ---------- DSR ----------

TEST(DsrTest, DiscoversRouteOnDemand) {
  net::Topology topo = net::MakeLine(4, 1);
  std::unique_ptr<Net> net =
      RunProtocol(DsrProgram(), topo, /*provenance=*/false);
  // No route before discovery (on-demand protocol).
  EXPECT_TRUE(net->engines[0]->TableContents("route").empty());
  ASSERT_TRUE(StartDsrDiscovery(net->engines[0].get(), 0, 3).ok());
  net->sim.Run();
  std::vector<Tuple> routes = net->engines[0]->TableContents("route");
  ASSERT_EQ(routes.size(), 1u);
  const ValueList& hops = routes[0].field(2).as_list();
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops[0].as_address(), 0u);
  EXPECT_EQ(hops[3].as_address(), 3u);
}

TEST(DsrTest, NoRouteAcrossPartition) {
  net::Topology topo = net::MakeLine(4, 1);
  std::unique_ptr<Net> net =
      RunProtocol(DsrProgram(), topo, /*provenance=*/false);
  ASSERT_TRUE(FailLink(1, 2, 1, &net->engines, &net->sim).ok());
  ASSERT_TRUE(StartDsrDiscovery(net->engines[0].get(), 0, 3).ok());
  net->sim.Run();
  EXPECT_TRUE(net->engines[0]->TableContents("route").empty());
}

TEST(DsrTest, RediscoveryAfterMobility) {
  // "Mobile network": node 3 moves — its link to 2 drops, a link to 0
  // appears. Re-discovery finds the new 1-hop route and replaces the old
  // route (route is keyed on (source, destination)).
  net::Topology topo = net::MakeLine(4, 1);
  std::unique_ptr<Net> net =
      RunProtocol(DsrProgram(), topo, /*provenance=*/false);
  ASSERT_TRUE(StartDsrDiscovery(net->engines[0].get(), 0, 3).ok());
  net->sim.Run();
  ASSERT_EQ(net->engines[0]->TableContents("route").size(), 1u);

  ASSERT_TRUE(FailLink(2, 3, 1, &net->engines, &net->sim).ok());
  net->sim.AddLink(0, 3, net::kMillisecond);
  ASSERT_TRUE(RecoverLink(0, 3, 1, &net->engines, &net->sim).ok());
  ASSERT_TRUE(StartDsrDiscovery(net->engines[0].get(), 0, 3).ok());
  net->sim.Run();
  std::vector<Tuple> routes = net->engines[0]->TableContents("route");
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].field(2).as_list().size(), 2u);  // direct route
}

// ---------- LINK STATE ----------

int64_t SpfAt(const Net& net, NodeId x, NodeId z) {
  for (const Tuple& t : net.engines[x]->TableContents("spf")) {
    if (t.field(1).as_address() == z) return t.field(2).as_int();
  }
  return -1;
}

void ExpectSpfMatchesDijkstra(const Net& net) {
  std::vector<std::vector<int64_t>> ref = AllPairsShortest(net.topo);
  for (size_t x = 0; x < net.topo.num_nodes; ++x) {
    for (size_t z = 0; z < net.topo.num_nodes; ++z) {
      if (x == z) continue;
      EXPECT_EQ(SpfAt(net, static_cast<NodeId>(x), static_cast<NodeId>(z)),
                ref[x][z])
          << "spf(" << x << "," << z << ")";
    }
  }
}

/// The flood invariant that makes link-state link-state: after convergence
/// every node's database holds exactly both directions of every live link.
void ExpectFullLsdbEverywhere(const Net& net) {
  for (size_t n = 0; n < net.topo.num_nodes; ++n) {
    std::set<std::tuple<NodeId, NodeId, int64_t>> db;
    for (const Tuple& t : net.engines[n]->TableContents("lsdb")) {
      db.insert({t.field(1).as_address(), t.field(2).as_address(),
                 t.field(3).as_int()});
    }
    EXPECT_EQ(db.size(), 2 * net.topo.links.size()) << "node " << n;
    for (const net::CostedLink& l : net.topo.links) {
      EXPECT_TRUE(db.count({l.a, l.b, l.cost})) << "node " << n;
      EXPECT_TRUE(db.count({l.b, l.a, l.cost})) << "node " << n;
    }
  }
}

class LinkStateCorrectness
    : public ::testing::TestWithParam<MincostParam> {};

TEST_P(LinkStateCorrectness, SpfMatchesDijkstraAndLsdbIsComplete) {
  std::unique_ptr<Net> net =
      RunProtocol(LinkStateProgram(), GetParam().topo, /*provenance=*/false);
  ExpectFullLsdbEverywhere(*net);
  ExpectSpfMatchesDijkstra(*net);
}

Rng g_ls_rng(0xf00d);

INSTANTIATE_TEST_SUITE_P(
    Topologies, LinkStateCorrectness,
    ::testing::Values(
        MincostParam{"line4", net::MakeLine(4, 2)},
        MincostParam{"ring6", net::MakeRing(6, 1)},
        MincostParam{"ringchord8", net::MakeRingWithChords(8, 1, 3)},
        MincostParam{"star5", net::MakeStar(5, 4)},
        MincostParam{"grid3x3", net::MakeGrid(3, 3, 1)},
        MincostParam{"rand10", net::MakeRandomConnected(10, 0.15,
                                                        &g_ls_rng)}),
    [](const ::testing::TestParamInfo<MincostParam>& info) {
      return info.param.name;
    });

TEST(LinkStateChurnTest, ReconvergesAfterLinkFailureAndRecovery) {
  net::Topology topo = net::MakeRing(6, 1);
  std::unique_ptr<Net> net =
      RunProtocol(LinkStateProgram(), topo, /*provenance=*/false);
  ExpectSpfMatchesDijkstra(*net);

  // Fail one ring link: the LSA retraction must flush it from every lsdb
  // and the local SPFs must match Dijkstra on the remaining line.
  ASSERT_TRUE(FailLink(0, 5, 1, &net->engines, &net->sim).ok());
  net::Topology ring = net->topo;
  net->topo = net::MakeLine(6, 1);
  ExpectFullLsdbEverywhere(*net);
  ExpectSpfMatchesDijkstra(*net);
  net->topo = ring;

  ASSERT_TRUE(RecoverLink(0, 5, 1, &net->engines, &net->sim).ok());
  ExpectFullLsdbEverywhere(*net);
  ExpectSpfMatchesDijkstra(*net);
}

TEST(DsrTest, WorksWithProvenance) {
  net::Topology topo = net::MakeLine(3, 1);
  std::unique_ptr<Net> net =
      RunProtocol(DsrProgram(), topo, /*provenance=*/true);
  ASSERT_TRUE(StartDsrDiscovery(net->engines[0].get(), 0, 2).ok());
  net->sim.Run();
  EXPECT_EQ(net->engines[0]->TableContents("route").size(), 1u);
  // The route tuple has provenance edges at its home node.
  EXPECT_FALSE(net->engines[0]
                   ->TableContents(provenance::kProvTable)
                   .empty());
}

}  // namespace
}  // namespace protocols
}  // namespace nettrails
