#include "src/common/status.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), Status::Code::kAlreadyExists);
  EXPECT_EQ(Status::TypeError("x").code(), Status::Code::kTypeError);
  EXPECT_EQ(Status::PlanError("x").code(), Status::Code::kPlanError);
  EXPECT_EQ(Status::RuntimeError("x").code(), Status::Code::kRuntimeError);
  EXPECT_EQ(Status::Unsupported("x").code(), Status::Code::kUnsupported);
  EXPECT_EQ(Status::IoError("x").code(), Status::Code::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  NT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_FALSE(UseReturnIfError(-1).ok());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NT_ASSIGN_OR_RETURN(int h, Half(x));
  NT_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusMacrosTest, AssignOrReturn) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

}  // namespace
}  // namespace nettrails
