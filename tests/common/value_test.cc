#include "src/common/value.h"

#include <gtest/gtest.h>

#include <limits>

namespace nettrails {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
  EXPECT_EQ(Value::Address(7).as_address(), 7u);
  Value list = Value::List({Value::Int(1), Value::Str("x")});
  ASSERT_TRUE(list.is_list());
  EXPECT_EQ(list.as_list().size(), 2u);
}

TEST(ValueTest, BoolIsInt) {
  EXPECT_TRUE(Value::Bool(true).is_int());
  EXPECT_EQ(Value::Bool(true).as_int(), 1);
  EXPECT_EQ(Value::Bool(false).as_int(), 0);
}

TEST(ValueTest, Truthy) {
  EXPECT_TRUE(Value::Int(3).Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Double(0.1).Truthy());
  EXPECT_FALSE(Value::Double(0).Truthy());
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Str("x").Truthy());
  EXPECT_FALSE(Value::List({Value::Int(1)}).Truthy());
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
  EXPECT_GT(Value::Double(3.5), Value::Int(3));
}

TEST(ValueTest, CrossKindOrderingIsTotal) {
  // Kind rank: null < numeric < string < address < list.
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::Str("a"));
  EXPECT_LT(Value::Str("zzz"), Value::Address(0));
  EXPECT_LT(Value::Address(999), Value::List({}));
}

TEST(ValueTest, ListComparisonLexicographic) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(3)});
  Value c = Value::List({Value::Int(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);  // prefix is smaller
  EXPECT_EQ(a, Value::List({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  // Compare()==0 across numeric kinds implies equal hashes.
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Int(6).Hash());
  EXPECT_NE(Value::Str("5").Hash(), Value::Int(5).Hash());
  EXPECT_NE(Value::Address(5).Hash(), Value::Int(5).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Address(4).ToString(), "@4");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Address(2)}).ToString(),
            "[1,@2]");
  // Doubles render distinguishably from ints.
  EXPECT_EQ(Value::Double(2).ToString(), "2.0");
}

TEST(ValueTest, ParseRoundTrip) {
  std::vector<Value> cases = {
      Value::Null(),
      Value::Int(0),
      Value::Int(-77),
      Value::Double(1.25),
      Value::Str("hello world"),
      Value::Str("esc\"aped"),
      Value::Address(12),
      Value::List({}),
      Value::List({Value::Int(1), Value::List({Value::Str("x")}),
                   Value::Address(3)}),
  };
  for (const Value& v : cases) {
    Result<Value> parsed = Value::Parse(v.ToString());
    ASSERT_TRUE(parsed.ok()) << v.ToString() << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(*parsed, v) << v.ToString();
  }
}

TEST(ValueTest, ParseErrors) {
  EXPECT_FALSE(Value::Parse("").ok());
  EXPECT_FALSE(Value::Parse("[1,").ok());
  EXPECT_FALSE(Value::Parse("\"unterminated").ok());
  EXPECT_FALSE(Value::Parse("@x").ok());
  EXPECT_FALSE(Value::Parse("12abc").ok());
}

TEST(ValueTest, SerializedSizeGrowsWithContent) {
  EXPECT_LT(Value::Int(1).SerializedSize(),
            Value::Str("a longer string").SerializedSize());
  Value small = Value::List({Value::Int(1)});
  Value big = Value::List({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_LT(small.SerializedSize(), big.SerializedSize());
}

// The table hash indexes rely on Compare()==0 implying equal hashes, even
// across numeric kinds. Beyond 2^53 Compare promotes ints to double, so
// Hash must follow the same conversion (regression: Int(2^62+1) compared
// equal to Double(2^62) but hashed differently, desynchronizing the hash
// key index from the Compare-ordered row map).
TEST(ValueTest, HashAgreesWithCompareForLargeNumerics) {
  const int64_t big = (int64_t{1} << 62) + 1;
  Value i = Value::Int(big);
  Value d = Value::Double(static_cast<double>(big));
  ASSERT_EQ(i.Compare(d), 0);
  EXPECT_EQ(i.Hash(), d.Hash());

  // INT64_MAX rounds to 2^63, outside the double path's int64-cast guard.
  Value imax = Value::Int(std::numeric_limits<int64_t>::max());
  Value dmax = Value::Double(static_cast<double>(
      std::numeric_limits<int64_t>::max()));
  ASSERT_EQ(imax.Compare(dmax), 0);
  EXPECT_EQ(imax.Hash(), dmax.Hash());

  // Small ints keep their exact-value hashes.
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, ListsAreImmutableShared) {
  Value a = Value::List({Value::Int(1)});
  Value b = a;  // shared representation
  EXPECT_EQ(a, b);
  EXPECT_EQ(&a.as_list(), &b.as_list());
}


// --- Cached list hashes -------------------------------------------------
// The structural hash of a list is computed once per shared rep and cached;
// the cached digest must be bit-identical to a fresh computation over a
// structurally equal value (separate rep, cold cache), and the invariant
// Compare()==0 => Hash equality must survive the caching.

namespace {

/// Deep copy through fresh reps, so the copy's hash cache is cold.
Value DeepRebuild(const Value& v) {
  if (!v.is_list()) return v;
  ValueList items;
  items.reserve(v.as_list().size());
  for (const Value& x : v.as_list()) items.push_back(DeepRebuild(x));
  return Value::List(std::move(items));
}

/// Pseudo-random nested value from a seed (deterministic, no RNG state).
Value MakeNested(uint64_t seed, int depth) {
  switch (seed % 5) {
    case 0:
      return Value::Int(static_cast<int64_t>(seed) - 50);
    case 1:
      return Value::Double(static_cast<double>(seed % 17));
    case 2:
      return Value::Str("s" + std::to_string(seed % 13));
    case 3:
      return Value::Address(static_cast<NodeId>(seed % 7));
    default: {
      ValueList items;
      if (depth > 0) {
        size_t n = seed % 4;
        for (size_t i = 0; i < n; ++i) {
          items.push_back(MakeNested(seed * 31 + i + 1, depth - 1));
        }
      }
      return Value::List(std::move(items));
    }
  }
}

}  // namespace

TEST(ValueTest, CachedListHashMatchesFreshComputation) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Value v = MakeNested(seed, 3);
    uint64_t first = v.Hash();   // cold: computes and caches
    uint64_t second = v.Hash();  // cached
    EXPECT_EQ(first, second) << "seed " << seed;
    Value rebuilt = DeepRebuild(v);  // structurally equal, cold cache
    ASSERT_EQ(v.Compare(rebuilt), 0) << "seed " << seed;
    EXPECT_EQ(rebuilt.Hash(), first) << "seed " << seed;
  }
}

TEST(ValueTest, CachedHashStaysConsistentWithCompare) {
  // Compare()==0 across distinct values (numeric promotion, nested lists)
  // must still imply equal hashes when one side is cached and the other is
  // not.
  Value li = Value::List({Value::Int(7), Value::List({Value::Int(1)})});
  Value ld = Value::List({Value::Double(7.0), Value::List({Value::Double(1.0)})});
  (void)li.Hash();  // warm li's cache only
  ASSERT_EQ(li.Compare(ld), 0);
  EXPECT_EQ(li.Hash(), ld.Hash());
  EXPECT_NE(li.Hash(),
            Value::List({Value::Int(7), Value::List({Value::Int(2)})}).Hash());
}

TEST(ValueTest, ListHashCacheCountsHits) {
  uint64_t hits0 = Value::ListHashCacheHits();
  uint64_t misses0 = Value::ListHashCacheMisses();
  Value v = Value::List({Value::Int(1), Value::Int(2)});
  (void)v.Hash();
  EXPECT_EQ(Value::ListHashCacheMisses(), misses0 + 1);
  Value copy = v;  // shares the rep and therefore the cache
  (void)copy.Hash();
  (void)v.Hash();
  EXPECT_EQ(Value::ListHashCacheHits(), hits0 + 2);
  // Re-digest count per distinct list stays at one.
  EXPECT_EQ(Value::ListHashCacheMisses(), misses0 + 1);
}

}  // namespace
}  // namespace nettrails
