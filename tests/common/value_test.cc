#include "src/common/value.h"

#include <gtest/gtest.h>

#include <limits>

namespace nettrails {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
  EXPECT_EQ(Value::Address(7).as_address(), 7u);
  Value list = Value::List({Value::Int(1), Value::Str("x")});
  ASSERT_TRUE(list.is_list());
  EXPECT_EQ(list.as_list().size(), 2u);
}

TEST(ValueTest, BoolIsInt) {
  EXPECT_TRUE(Value::Bool(true).is_int());
  EXPECT_EQ(Value::Bool(true).as_int(), 1);
  EXPECT_EQ(Value::Bool(false).as_int(), 0);
}

TEST(ValueTest, Truthy) {
  EXPECT_TRUE(Value::Int(3).Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Double(0.1).Truthy());
  EXPECT_FALSE(Value::Double(0).Truthy());
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Str("x").Truthy());
  EXPECT_FALSE(Value::List({Value::Int(1)}).Truthy());
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
  EXPECT_GT(Value::Double(3.5), Value::Int(3));
}

TEST(ValueTest, CrossKindOrderingIsTotal) {
  // Kind rank: null < numeric < string < address < list.
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(999), Value::Str("a"));
  EXPECT_LT(Value::Str("zzz"), Value::Address(0));
  EXPECT_LT(Value::Address(999), Value::List({}));
}

TEST(ValueTest, ListComparisonLexicographic) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(3)});
  Value c = Value::List({Value::Int(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);  // prefix is smaller
  EXPECT_EQ(a, Value::List({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  // Compare()==0 across numeric kinds implies equal hashes.
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Int(6).Hash());
  EXPECT_NE(Value::Str("5").Hash(), Value::Int(5).Hash());
  EXPECT_NE(Value::Address(5).Hash(), Value::Int(5).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Str("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Address(4).ToString(), "@4");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Address(2)}).ToString(),
            "[1,@2]");
  // Doubles render distinguishably from ints.
  EXPECT_EQ(Value::Double(2).ToString(), "2.0");
}

TEST(ValueTest, ParseRoundTrip) {
  std::vector<Value> cases = {
      Value::Null(),
      Value::Int(0),
      Value::Int(-77),
      Value::Double(1.25),
      Value::Str("hello world"),
      Value::Str("esc\"aped"),
      Value::Address(12),
      Value::List({}),
      Value::List({Value::Int(1), Value::List({Value::Str("x")}),
                   Value::Address(3)}),
  };
  for (const Value& v : cases) {
    Result<Value> parsed = Value::Parse(v.ToString());
    ASSERT_TRUE(parsed.ok()) << v.ToString() << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(*parsed, v) << v.ToString();
  }
}

TEST(ValueTest, ParseErrors) {
  EXPECT_FALSE(Value::Parse("").ok());
  EXPECT_FALSE(Value::Parse("[1,").ok());
  EXPECT_FALSE(Value::Parse("\"unterminated").ok());
  EXPECT_FALSE(Value::Parse("@x").ok());
  EXPECT_FALSE(Value::Parse("12abc").ok());
}

TEST(ValueTest, SerializedSizeGrowsWithContent) {
  EXPECT_LT(Value::Int(1).SerializedSize(),
            Value::Str("a longer string").SerializedSize());
  Value small = Value::List({Value::Int(1)});
  Value big = Value::List({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_LT(small.SerializedSize(), big.SerializedSize());
}

// The table hash indexes rely on Compare()==0 implying equal hashes, even
// across numeric kinds. Beyond 2^53 Compare promotes ints to double, so
// Hash must follow the same conversion (regression: Int(2^62+1) compared
// equal to Double(2^62) but hashed differently, desynchronizing the hash
// key index from the Compare-ordered row map).
TEST(ValueTest, HashAgreesWithCompareForLargeNumerics) {
  const int64_t big = (int64_t{1} << 62) + 1;
  Value i = Value::Int(big);
  Value d = Value::Double(static_cast<double>(big));
  ASSERT_EQ(i.Compare(d), 0);
  EXPECT_EQ(i.Hash(), d.Hash());

  // INT64_MAX rounds to 2^63, outside the double path's int64-cast guard.
  Value imax = Value::Int(std::numeric_limits<int64_t>::max());
  Value dmax = Value::Double(static_cast<double>(
      std::numeric_limits<int64_t>::max()));
  ASSERT_EQ(imax.Compare(dmax), 0);
  EXPECT_EQ(imax.Hash(), dmax.Hash());

  // Small ints keep their exact-value hashes.
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, ListsAreImmutableShared) {
  Value a = Value::List({Value::Int(1)});
  Value b = a;  // shared representation
  EXPECT_EQ(a, b);
  EXPECT_EQ(&a.as_list(), &b.as_list());
}

}  // namespace
}  // namespace nettrails
