#include "src/common/flat_hash.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace nettrails {
namespace {

TEST(FlatHashMap64Test, InsertFindErase) {
  FlatHashMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42), nullptr);
  m[42] = 7;
  ASSERT_NE(m.Find(42), nullptr);
  EXPECT_EQ(*m.Find(42), 7);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Erase(42));
  EXPECT_FALSE(m.Erase(42));
  EXPECT_EQ(m.Find(42), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(FlatHashMap64Test, OperatorBracketDefaultConstructsOnce) {
  FlatHashMap64<int> m;
  EXPECT_EQ(m[5], 0);
  m[5] = 3;
  EXPECT_EQ(m[5], 3);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap64Test, MatchesReferenceMapUnderRandomWorkload) {
  // Deterministic xorshift64 workload mirrored against std::map.
  FlatHashMap64<uint64_t> m;
  std::map<uint64_t, uint64_t> ref;
  uint64_t s = 12345;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = next() % 512;  // small key space forces collisions/reuse
    switch (next() % 3) {
      case 0:
        m[key] = key * 2 + 1;
        ref[key] = key * 2 + 1;
        break;
      case 1: {
        bool erased = m.Erase(key);
        EXPECT_EQ(erased, ref.erase(key) > 0) << "key " << key;
        break;
      }
      default: {
        const uint64_t* found = m.Find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr) << "key " << key;
        } else {
          ASSERT_NE(found, nullptr) << "key " << key;
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final full sweep both directions.
  size_t seen = 0;
  m.ForEach([&](uint64_t key, uint64_t& value) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
    ++seen;
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatHashMap64Test, ClearKeepsSlabAndReleasesValues) {
  FlatHashMap64<std::string> m;
  for (uint64_t i = 0; i < 100; ++i) {
    m[i] = "value-" + std::to_string(i);
  }
  m.Clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), nullptr);
  // Refill: entries land in recycled slots, values were reset to empty.
  m[7];
  EXPECT_EQ(*m.Find(7), "");
}

TEST(FlatHashMap64Test, AdjacentKeysProbeCorrectly) {
  // Dense sequential keys are the simulator's packed link ids; the
  // splitmix64 mix must keep probes short and lookups exact.
  FlatHashMap64<uint64_t> m;
  for (uint64_t i = 0; i < 1000; ++i) m[i] = ~i;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), ~i);
  }
  // Erase evens, verify odds survive backward-shift deletion.
  for (uint64_t i = 0; i < 1000; i += 2) EXPECT_TRUE(m.Erase(i));
  for (uint64_t i = 0; i < 1000; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(m.Find(i), nullptr) << i;
    } else {
      ASSERT_NE(m.Find(i), nullptr) << i;
      EXPECT_EQ(*m.Find(i), ~i);
    }
  }
}

TEST(FlatHashMap64Test, MoveOnlyLikeValuesViaVectors) {
  FlatHashMap64<std::vector<int>> m;
  m[1].push_back(10);
  m[1].push_back(11);
  m[2].push_back(20);
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(m.Find(1)->size(), 2u);
  // Erase shifts entries backward by move; vector contents must follow.
  EXPECT_TRUE(m.Erase(1));
  ASSERT_NE(m.Find(2), nullptr);
  EXPECT_EQ((*m.Find(2))[0], 20);
}

}  // namespace
}  // namespace nettrails
