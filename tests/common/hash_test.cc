#include "src/common/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace nettrails {
namespace {

TEST(HashTest, Deterministic) {
  Hasher a, b;
  a.AddString("hello");
  b.AddString("hello");
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(HashTest, OrderSensitive) {
  Hasher a, b;
  a.AddU64(1);
  a.AddU64(2);
  b.AddU64(2);
  b.AddU64(1);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(HashTest, LengthPrefixedStringsAvoidConcatCollisions) {
  Hasher a, b;
  a.AddString("ab");
  a.AddString("c");
  b.AddString("a");
  b.AddString("bc");
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(HashTest, OneShotMatchesIncremental) {
  const char data[] = "some bytes";
  Hasher h;
  h.AddBytes(data, sizeof(data) - 1);
  EXPECT_EQ(h.Digest(), HashBytes(data, sizeof(data) - 1));
}

TEST(HashTest, NoTrivialCollisionsOverSmallInts) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    Hasher h;
    h.AddU64(i);
    EXPECT_TRUE(seen.insert(h.Digest()).second) << "collision at " << i;
  }
}

TEST(HashTest, EmptyInputHasStableDigest) {
  Hasher a, b;
  EXPECT_EQ(a.Digest(), b.Digest());
  EXPECT_NE(a.Digest(), 0u);
}

}  // namespace
}  // namespace nettrails
