#include "src/common/rand.h"

#include <gtest/gtest.h>

#include <map>

namespace nettrails {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextU64() != b.NextU64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  std::map<size_t, int> counts;
  for (int i = 0; i < 5000; ++i) {
    size_t k = rng.NextZipf(20, 1.2);
    EXPECT_LT(k, 20u);
    counts[k]++;
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 500);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = xs;
  rng.Shuffle(&xs);
  std::vector<int> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

}  // namespace
}  // namespace nettrails
