#include "src/common/tuple.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace {

Tuple LinkTuple() {
  return Tuple("link", {Value::Address(1), Value::Address(2), Value::Int(10)});
}

TEST(TupleTest, BasicAccessors) {
  Tuple t = LinkTuple();
  EXPECT_EQ(t.name(), "link");
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t.field(2).as_int(), 10);
}

TEST(TupleTest, Location) {
  EXPECT_TRUE(LinkTuple().HasLocation());
  EXPECT_EQ(LinkTuple().Location(), 1u);
  EXPECT_FALSE(Tuple("x", {Value::Int(1)}).HasLocation());
  EXPECT_FALSE(Tuple("x", {}).HasLocation());
}

TEST(TupleTest, EqualityAndOrdering) {
  EXPECT_EQ(LinkTuple(), LinkTuple());
  Tuple other("link",
              {Value::Address(1), Value::Address(2), Value::Int(11)});
  EXPECT_NE(LinkTuple(), other);
  EXPECT_LT(LinkTuple(), other);
  Tuple diff_name("linj",
                  {Value::Address(1), Value::Address(2), Value::Int(10)});
  EXPECT_LT(diff_name, LinkTuple());
}

TEST(TupleTest, HashStableAndDiscriminating) {
  EXPECT_EQ(LinkTuple().Hash(), LinkTuple().Hash());
  Tuple other("link",
              {Value::Address(1), Value::Address(2), Value::Int(11)});
  EXPECT_NE(LinkTuple().Hash(), other.Hash());
  Tuple renamed("link2",
                {Value::Address(1), Value::Address(2), Value::Int(10)});
  EXPECT_NE(LinkTuple().Hash(), renamed.Hash());
}

TEST(TupleTest, ToStringAndParseRoundTrip) {
  Tuple t("path", {Value::Address(1), Value::Address(3), Value::Int(5),
                   Value::List({Value::Address(1), Value::Address(3)})});
  EXPECT_EQ(t.ToString(), "path(@1,@3,5,[@1,@3])");
  Result<Tuple> parsed = Tuple::Parse(t.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, t);
}

TEST(TupleTest, ParseHandlesStringsWithCommas) {
  Tuple t("log", {Value::Address(0), Value::Str("a,b(c")});
  Result<Tuple> parsed = Tuple::Parse(t.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, t);
}

TEST(TupleTest, ParseErrors) {
  EXPECT_FALSE(Tuple::Parse("").ok());
  EXPECT_FALSE(Tuple::Parse("noparen").ok());
  EXPECT_FALSE(Tuple::Parse("(1,2)").ok());
  EXPECT_FALSE(Tuple::Parse("x(1,]").ok());
}

TEST(TupleTest, SerializedSizeIncludesNameAndFields) {
  EXPECT_GT(LinkTuple().SerializedSize(), 8u);
  Tuple longer("link", {Value::Address(1), Value::Address(2), Value::Int(10),
                        Value::Str("metadata")});
  EXPECT_GT(longer.SerializedSize(), LinkTuple().SerializedSize());
}

}  // namespace
}  // namespace nettrails
