#include "src/provenance/secure.h"

#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace provenance {
namespace {

class SecureProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog =
        runtime::Compile(protocols::MincostProgram());
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    topo_ = net::MakeLine(3, 2);
    engines_ = protocols::MakeEngines(&sim_, topo_, *prog);
    for (auto& e : engines_) {
      stores_.push_back(std::make_unique<ProvStore>(e.get()));
      store_ptrs_.push_back(stores_.back().get());
    }
    ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
    target_ = Tuple("mincost",
                    {Value::Address(0), Value::Address(2), Value::Int(4)});
    ASSERT_TRUE(engines_[0]->HasTuple(target_));
  }

  Evidence Collect(const KeyAuthority& authority) {
    return CollectEvidence(store_ptrs_, authority, 0, target_.Hash());
  }

  net::Simulator sim_;
  net::Topology topo_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
  std::vector<std::unique_ptr<ProvStore>> stores_;
  std::vector<const ProvStore*> store_ptrs_;
  Tuple target_;
};

TEST_F(SecureProvenanceTest, HonestEvidenceVerifies) {
  KeyAuthority authority(42);
  Evidence ev = Collect(authority);
  EXPECT_GT(ev.edges.size(), 2u);
  EXPECT_GT(ev.execs.size(), 1u);
  VerifyResult r = VerifyEvidence(ev, authority, target_.Hash());
  EXPECT_TRUE(r.ok) << (r.problems.empty() ? "" : r.problems[0]);
  EXPECT_TRUE(r.problems.empty());
}

TEST_F(SecureProvenanceTest, KeysArePerNodeAndDeterministic) {
  KeyAuthority a(42), b(42), c(43);
  EXPECT_EQ(a.KeyFor(1), b.KeyFor(1));
  EXPECT_NE(a.KeyFor(1), a.KeyFor(2));
  EXPECT_NE(a.KeyFor(1), c.KeyFor(1));
}

TEST_F(SecureProvenanceTest, TamperedEdgeDetected) {
  KeyAuthority authority(42);
  Evidence ev = Collect(authority);
  // A compromised node rewrites an edge to point at a fabricated execution
  // without being able to forge the MAC.
  ASSERT_FALSE(ev.edges.empty());
  ev.edges[0].rid ^= 0xdeadbeef;
  VerifyResult r = VerifyEvidence(ev, authority, target_.Hash());
  EXPECT_FALSE(r.ok);
}

TEST_F(SecureProvenanceTest, TamperedExecInputsDetected) {
  KeyAuthority authority(42);
  Evidence ev = Collect(authority);
  ASSERT_FALSE(ev.execs.empty());
  // Claim an extra (fake) supporting input.
  ev.execs[0].inputs.push_back(0x1234);
  VerifyResult r = VerifyEvidence(ev, authority, target_.Hash());
  EXPECT_FALSE(r.ok);
}

TEST_F(SecureProvenanceTest, RehomedVertexDetected) {
  KeyAuthority authority(42);
  Evidence ev = Collect(authority);
  // Find a non-self edge and claim its execution happened elsewhere.
  for (SignedEdge& se : ev.edges) {
    if (se.rid != se.vid) {
      se.rloc = (se.rloc + 1) % 3;
      break;
    }
  }
  VerifyResult r = VerifyEvidence(ev, authority, target_.Hash());
  EXPECT_FALSE(r.ok);
}

TEST_F(SecureProvenanceTest, DroppedExecutionDetected) {
  KeyAuthority authority(42);
  Evidence ev = Collect(authority);
  ASSERT_FALSE(ev.execs.empty());
  ev.execs.pop_back();  // a node suppresses evidence
  VerifyResult r = VerifyEvidence(ev, authority, target_.Hash());
  EXPECT_FALSE(r.ok);
}

TEST_F(SecureProvenanceTest, WrongAuthorityRejectsEverything) {
  KeyAuthority honest(42), other(777);
  Evidence ev = Collect(honest);
  VerifyResult r = VerifyEvidence(ev, other, target_.Hash());
  EXPECT_FALSE(r.ok);
}

TEST_F(SecureProvenanceTest, MissingRootDetected) {
  KeyAuthority authority(42);
  Evidence ev = Collect(authority);
  VerifyResult r = VerifyEvidence(ev, authority, /*root=*/0x999999);
  EXPECT_FALSE(r.ok);
}

TEST_F(SecureProvenanceTest, UnvouchedInputReported) {
  KeyAuthority authority(42);
  Evidence ev = Collect(authority);
  // Drop all self-edges of one base tuple: its exec input is unvouched.
  std::vector<SignedEdge> kept;
  bool dropped = false;
  for (const SignedEdge& se : ev.edges) {
    if (!dropped && se.rid == se.vid) {
      dropped = true;
      continue;
    }
    kept.push_back(se);
  }
  ASSERT_TRUE(dropped);
  ev.edges = std::move(kept);
  VerifyResult r = VerifyEvidence(ev, authority, target_.Hash());
  EXPECT_FALSE(r.problems.empty());
}

}  // namespace
}  // namespace provenance
}  // namespace nettrails
