#include "src/provenance/graph.h"

#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace provenance {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog =
        runtime::Compile(protocols::MincostProgram());
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    topo_ = net::MakeLine(3, 2);  // 0 -2- 1 -2- 2
    engines_ = protocols::MakeEngines(&sim_, topo_, *prog);
    for (auto& e : engines_) {
      stores_.push_back(std::make_unique<ProvStore>(e.get()));
      store_ptrs_.push_back(stores_.back().get());
    }
    ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  }

  VidLabeler Labeler() {
    return [this](Vid vid) -> std::string {
      for (auto& e : engines_) {
        if (const Tuple* t = e->FindTupleByVid(vid)) return t->ToString();
      }
      return "?";
    };
  }

  net::Simulator sim_;
  net::Topology topo_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
  std::vector<std::unique_ptr<ProvStore>> stores_;
  std::vector<const ProvStore*> store_ptrs_;
};

TEST_F(GraphTest, MincostProvenanceGraphStructure) {
  // mincost(0->2) should exist with cost 4 and have a full derivation tree.
  Tuple target("mincost",
               {Value::Address(0), Value::Address(2), Value::Int(4)});
  ASSERT_TRUE(engines_[0]->HasTuple(target));
  Graph g = BuildGraph(store_ptrs_, 0, target.Hash(), Labeler());
  EXPECT_EQ(g.root, target.Hash());
  EXPECT_GT(g.vertices.size(), 3u);
  EXPECT_GT(g.exec_vertices(), 0u);
  EXPECT_GT(g.tuple_vertices(), 0u);
  // Root is present and is a tuple vertex.
  ASSERT_TRUE(g.vertices.count(g.root));
  EXPECT_EQ(g.vertices.at(g.root).kind, VertexKind::kTuple);
  EXPECT_FALSE(g.vertices.at(g.root).is_base);

  // Every leaf reachable from the root is a base tuple (link) vertex.
  size_t base_count = 0;
  for (const auto& [vid, v] : g.vertices) {
    if (v.kind == VertexKind::kTuple && v.is_base) {
      ++base_count;
      EXPECT_EQ(v.label.rfind("link(", 0), 0u) << v.label;
    }
  }
  EXPECT_GT(base_count, 0u);
}

TEST_F(GraphTest, EdgesConnectExistingVertices) {
  Tuple target("mincost",
               {Value::Address(0), Value::Address(2), Value::Int(4)});
  Graph g = BuildGraph(store_ptrs_, 0, target.Hash(), Labeler());
  for (const GraphEdge& e : g.edges) {
    EXPECT_TRUE(g.vertices.count(e.from));
    EXPECT_TRUE(g.vertices.count(e.to));
  }
  // Children of the root are rule executions.
  for (Vid child : g.ChildrenOf(g.root)) {
    EXPECT_EQ(g.vertices.at(child).kind, VertexKind::kRuleExec);
  }
}

TEST_F(GraphTest, GraphSpansMultipleNodes) {
  Tuple target("mincost",
               {Value::Address(0), Value::Address(2), Value::Int(4)});
  Graph g = BuildGraph(store_ptrs_, 0, target.Hash(), Labeler());
  std::set<NodeId> locations;
  for (const auto& [vid, v] : g.vertices) locations.insert(v.location);
  EXPECT_GE(locations.size(), 2u);
}

TEST_F(GraphTest, UnknownRootYieldsLeafGraph) {
  Graph g = BuildGraph(store_ptrs_, 0, /*root=*/12345, Labeler());
  ASSERT_EQ(g.vertices.size(), 1u);
  EXPECT_TRUE(g.vertices.begin()->second.is_base);
}

TEST_F(GraphTest, DepthLimitTruncates) {
  Tuple target("mincost",
               {Value::Address(0), Value::Address(2), Value::Int(4)});
  Graph full = BuildGraph(store_ptrs_, 0, target.Hash(), Labeler());
  Graph shallow =
      BuildGraph(store_ptrs_, 0, target.Hash(), Labeler(), /*max_depth=*/2);
  EXPECT_LT(shallow.vertices.size(), full.vertices.size());
}

TEST_F(GraphTest, BaseTupleGraphIsSingleVertex) {
  Tuple link("link", {Value::Address(0), Value::Address(1), Value::Int(2)});
  Graph g = BuildGraph(store_ptrs_, 0, link.Hash(), Labeler());
  ASSERT_EQ(g.vertices.size(), 1u);
  EXPECT_TRUE(g.vertices.at(link.Hash()).is_base);
  EXPECT_TRUE(g.edges.empty());
}

}  // namespace
}  // namespace provenance
}  // namespace nettrails
