#include "src/provenance/store.h"

#include <gtest/gtest.h>

#include "src/runtime/plan.h"

namespace nettrails {
namespace provenance {
namespace {

constexpr char kSrc[] = R"(
  materialize(link, infinity, infinity, keys(1,2)).
  materialize(reach, infinity, infinity, keys(1,2)).
  r1 reach(@X,Y) :- link(@X,Y,C).
)";

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog = runtime::Compile(kSrc);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    sim_.AddNode();
    engine_ = std::make_unique<runtime::Engine>(&sim_, 0, *prog);
    store_ = std::make_unique<ProvStore>(engine_.get());
  }

  Tuple Link(int64_t c) {
    return Tuple("link",
                 {Value::Address(0), Value::Address(0 + 0), Value::Int(c)});
  }

  net::Simulator sim_;
  std::unique_ptr<runtime::Engine> engine_;
  std::unique_ptr<ProvStore> store_;
};

TEST_F(StoreTest, BaseTupleGetsSelfEdge) {
  Tuple link("link", {Value::Address(0), Value::Address(1), Value::Int(3)});
  ASSERT_TRUE(engine_->Insert(link).ok());
  sim_.Run();
  const std::vector<ProvEdge>* edges = store_->EdgesFor(link.Hash());
  ASSERT_NE(edges, nullptr);
  bool has_self = false;
  for (const ProvEdge& e : *edges) {
    if (e.IsSelf(link.Hash())) has_self = true;
  }
  EXPECT_TRUE(has_self);
}

TEST_F(StoreTest, DerivedTupleGetsExecEdge) {
  Tuple link("link", {Value::Address(0), Value::Address(0), Value::Int(3)});
  // Self-link keeps the head local so edges and exec are both at node 0.
  ASSERT_TRUE(engine_->Insert(link).ok());
  sim_.Run();
  Tuple reach("reach", {Value::Address(0), Value::Address(0)});
  ASSERT_TRUE(engine_->HasTuple(reach));
  const std::vector<ProvEdge>* edges = store_->EdgesFor(reach.Hash());
  ASSERT_NE(edges, nullptr);
  ASSERT_EQ(edges->size(), 1u);
  const ProvEdge& e = (*edges)[0];
  EXPECT_FALSE(e.IsSelf(reach.Hash()));
  EXPECT_FALSE(e.maybe);
  EXPECT_EQ(e.rloc, 0u);
  const ExecEntry* exec = store_->ExecFor(e.rid);
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->rule, "r1");
  ASSERT_EQ(exec->inputs.size(), 1u);
  EXPECT_EQ(exec->inputs[0], link.Hash());
}

TEST_F(StoreTest, DeletionRemovesEdgesAndBumpsVersion) {
  Tuple link("link", {Value::Address(0), Value::Address(0), Value::Int(3)});
  ASSERT_TRUE(engine_->Insert(link).ok());
  sim_.Run();
  uint64_t v1 = store_->version();
  EXPECT_GT(v1, 0u);
  ASSERT_TRUE(engine_->Delete(link).ok());
  sim_.Run();
  EXPECT_GT(store_->version(), v1);
  Tuple reach("reach", {Value::Address(0), Value::Address(0)});
  EXPECT_EQ(store_->EdgesFor(reach.Hash()), nullptr);
  EXPECT_EQ(store_->EdgesFor(link.Hash()), nullptr);
  EXPECT_EQ(store_->exec_count(), 0u);
  EXPECT_EQ(store_->edge_count(), 0u);
}

TEST_F(StoreTest, BootstrapFromExistingState) {
  Tuple link("link", {Value::Address(0), Value::Address(0), Value::Int(3)});
  ASSERT_TRUE(engine_->Insert(link).ok());
  sim_.Run();
  // A store attached after the fact indexes the current tables.
  ProvStore late(engine_.get());
  EXPECT_NE(late.EdgesFor(link.Hash()), nullptr);
  EXPECT_EQ(late.edge_count(), store_->edge_count());
  EXPECT_EQ(late.exec_count(), store_->exec_count());
}

TEST_F(StoreTest, AllVidsEnumerates) {
  Tuple link("link", {Value::Address(0), Value::Address(0), Value::Int(3)});
  ASSERT_TRUE(engine_->Insert(link).ok());
  sim_.Run();
  std::vector<Vid> vids = store_->AllVids();
  EXPECT_EQ(vids.size(), 2u);  // link + reach
}

}  // namespace
}  // namespace provenance
}  // namespace nettrails
