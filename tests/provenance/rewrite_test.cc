#include "src/provenance/rewrite.h"

#include <gtest/gtest.h>

#include "src/ndlog/parser.h"

namespace nettrails {
namespace provenance {
namespace {

using ndlog::AnalyzedProgram;
using ndlog::Program;
using ndlog::Rule;

Result<Program> RewriteSrc(const std::string& src) {
  Result<Program> prog = ndlog::Parse(src);
  if (!prog.ok()) return prog.status();
  Result<AnalyzedProgram> analyzed = ndlog::Analyze(std::move(prog).value());
  if (!analyzed.ok()) return analyzed.status();
  return RewriteForProvenance(*analyzed);
}

const Rule* FindRule(const Program& prog, const std::string& name) {
  for (const Rule& r : prog.rules) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

constexpr char kSimpleSrc[] = R"(
  materialize(link, infinity, infinity, keys(1,2)).
  materialize(reach, infinity, infinity, keys(1,2)).
  r1 reach(@X,Y) :- link(@X,Y,C).
)";

TEST(RewriteTest, ReservedPredicateDetection) {
  EXPECT_TRUE(IsProvenancePredicate("prov"));
  EXPECT_TRUE(IsProvenancePredicate("ruleExec"));
  EXPECT_TRUE(IsProvenancePredicate("eh_r1"));
  EXPECT_FALSE(IsProvenancePredicate("reach"));
  EXPECT_FALSE(IsProvenancePredicate("myeh_x"));
}

TEST(RewriteTest, GeneratesEhHdReProvRules) {
  Result<Program> out = RewriteSrc(kSimpleSrc);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(FindRule(*out, "r1_eh"), nullptr);
  EXPECT_NE(FindRule(*out, "r1_hd"), nullptr);
  EXPECT_NE(FindRule(*out, "r1_re"), nullptr);
  EXPECT_NE(FindRule(*out, "r1_pr"), nullptr);
  // The original rule is replaced (head now derived via the eh view).
  EXPECT_EQ(FindRule(*out, "r1"), nullptr);
}

TEST(RewriteTest, DeclaresProvenanceTables) {
  Result<Program> out = RewriteSrc(kSimpleSrc);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->FindMaterialization(kProvTable), nullptr);
  EXPECT_NE(out->FindMaterialization(kRuleExecTable), nullptr);
  EXPECT_NE(out->FindMaterialization("eh_r1"), nullptr);
  // All-fields keys (counting semantics).
  EXPECT_TRUE(out->FindMaterialization(kProvTable)->keys.empty());
}

TEST(RewriteTest, BaseTablesGetSelfEdgeRules) {
  Result<Program> out = RewriteSrc(kSimpleSrc);
  ASSERT_TRUE(out.ok());
  const Rule* bp = FindRule(*out, "link_bprov");
  ASSERT_NE(bp, nullptr);
  EXPECT_EQ(bp->head.predicate, kProvTable);
  ASSERT_EQ(bp->head.args.size(), kProvArity);
  // VID and RID are the same variable: self-edge.
  EXPECT_EQ(bp->head.args[1].expr->ToString(),
            bp->head.args[2].expr->ToString());
  // Derived tables get no self-edge rule.
  EXPECT_EQ(FindRule(*out, "reach_bprov"), nullptr);
}

TEST(RewriteTest, ProvHeadShipsToHeadLocation) {
  const char* src = R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(b, infinity, infinity, keys(1,2)).
    r1 b(@Y,X) :- a(@X,Y).
  )";
  Result<Program> out = RewriteSrc(src);
  ASSERT_TRUE(out.ok());
  const Rule* pr = FindRule(*out, "r1_pr");
  ASSERT_NE(pr, nullptr);
  // prov's location argument is the head's location (Y); the RLoc argument
  // is the body location (X).
  EXPECT_EQ(pr->head.args[0].expr->var_name(), "Y");
  EXPECT_EQ(pr->head.args[3].expr->var_name(), "X");
  // Maybe flag is 0.
  EXPECT_EQ(pr->head.args[4].expr->const_value(), Value::Int(0));
}

TEST(RewriteTest, MaybeRuleJoinsHeadAsBody) {
  const char* src = R"(
    materialize(i, infinity, infinity, keys(1,2)).
    materialize(o, infinity, infinity, keys(1,2)).
    m1 o(@X,R2) ?- i(@X,R1), f_isExtend(R2,R1,X) == 1.
  )";
  Result<Program> out = RewriteSrc(src);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const Rule* eh = FindRule(*out, "m1_eh");
  ASSERT_NE(eh, nullptr);
  // First body atom is the (externally inserted) head table.
  ASSERT_FALSE(eh->BodyAtoms().empty());
  EXPECT_EQ(eh->BodyAtoms()[0]->predicate, "o");
  // No head-derivation rule for maybe rules.
  EXPECT_EQ(FindRule(*out, "m1_hd"), nullptr);
  // Maybe edge flag is 1.
  const Rule* pr = FindRule(*out, "m1_pr");
  ASSERT_NE(pr, nullptr);
  EXPECT_EQ(pr->head.args[4].expr->const_value(), Value::Int(1));
  // Maybe heads do not get base self-edges (their prov is the inference).
  EXPECT_EQ(FindRule(*out, "o_bprov"), nullptr);
  EXPECT_NE(FindRule(*out, "i_bprov"), nullptr);
}

TEST(RewriteTest, AggregateRulesPassThrough) {
  const char* src = R"(
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2)).
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
  )";
  Result<Program> out = RewriteSrc(src);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(FindRule(*out, "mc3"), nullptr);
  EXPECT_EQ(FindRule(*out, "mc3_eh"), nullptr);
}

TEST(RewriteTest, DuplicateRuleNamesRejected) {
  const char* src = R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(b, infinity, infinity, keys(1,2)).
    r1 b(@X,Y) :- a(@X,Y).
    r1 a(@X,Y) :- b(@X,Y).
  )";
  EXPECT_FALSE(RewriteSrc(src).ok());
}

TEST(RewriteTest, ReservedHeadRejected) {
  const char* src = R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(ruleExec, infinity, infinity, keys(1,2)).
    r1 ruleExec(@X,Y) :- a(@X,Y).
  )";
  EXPECT_FALSE(RewriteSrc(src).ok());
}

TEST(RewriteTest, RewrittenProgramReanalyzes) {
  Result<Program> out = RewriteSrc(kSimpleSrc);
  ASSERT_TRUE(out.ok());
  Result<AnalyzedProgram> again = ndlog::Analyze(std::move(out).value());
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST(RewriteTest, VidAssignmentsUseMkVid) {
  Result<Program> out = RewriteSrc(kSimpleSrc);
  ASSERT_TRUE(out.ok());
  std::string text = out->ToString();
  EXPECT_NE(text.find("f_mkvid(\"link\""), std::string::npos);
  EXPECT_NE(text.find("f_mkvid(\"reach\""), std::string::npos);
  EXPECT_NE(text.find("f_mkrid(\"r1\""), std::string::npos);
}

}  // namespace
}  // namespace provenance
}  // namespace nettrails
