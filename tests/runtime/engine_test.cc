#include "src/runtime/engine.h"

#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace runtime {
namespace {

CompiledProgramPtr MustCompile(const std::string& src, bool provenance) {
  CompileOptions opts;
  opts.provenance = provenance;
  Result<CompiledProgramPtr> prog = Compile(src, opts);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return prog.ok() ? *prog : nullptr;
}

Tuple Link(NodeId a, NodeId b, int64_t c) {
  return Tuple("link", {Value::Address(a), Value::Address(b), Value::Int(c)});
}

// A four-node chain fixture with a path-carrying reachability program.
// (The path argument keeps the derivation graph acyclic, which is the
// precondition for counting-based incremental deletion — the same
// discipline the shipped protocols follow via f_member / monotone costs.)
class EngineBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prog_ = MustCompile(R"(
      materialize(link, infinity, infinity, keys(1,2)).
      materialize(reach, infinity, infinity, keys(1,2,3)).
      r1 reach(@X,Y,P) :- link(@X,Y,C), P := f_list(X,Y).
      r2 reach(@X,Z,P) :- link(@X,Y,C), reach(@Y,Z,P2), X != Z,
                          f_member(P2,X) == 0, P := f_prepend(X,P2).
    )",
                        false);
    ASSERT_NE(prog_, nullptr);
    for (int i = 0; i < 4; ++i) sim_.AddNode();
    sim_.AddLink(0, 1);
    sim_.AddLink(1, 2);
    sim_.AddLink(2, 3);
    for (NodeId i = 0; i < 4; ++i) {
      engines_.push_back(std::make_unique<Engine>(&sim_, i, prog_));
    }
  }

  void InsertBoth(NodeId a, NodeId b, int64_t c) {
    ASSERT_TRUE(engines_[a]->Insert(Link(a, b, c)).ok());
    ASSERT_TRUE(engines_[b]->Insert(Link(b, a, c)).ok());
  }

  bool Reach(NodeId x, NodeId y) {
    for (const Tuple& t : engines_[x]->TableContents("reach")) {
      if (t.field(1).as_address() == y) return true;
    }
    return false;
  }

  net::Simulator sim_;
  CompiledProgramPtr prog_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

TEST_F(EngineBasicTest, LocalDerivation) {
  ASSERT_TRUE(engines_[0]->Insert(Link(0, 1, 1)).ok());
  sim_.Run();
  EXPECT_TRUE(Reach(0, 1));
}

TEST_F(EngineBasicTest, InsertRejectsWrongLocation) {
  EXPECT_FALSE(engines_[0]->Insert(Link(1, 0, 1)).ok());
  EXPECT_FALSE(engines_[0]->Insert(Tuple("nosuch", {Value::Address(0)})).ok());
}

TEST_F(EngineBasicTest, DistributedTransitiveClosure) {
  InsertBoth(0, 1, 1);
  InsertBoth(1, 2, 1);
  InsertBoth(2, 3, 1);
  sim_.Run();
  EXPECT_TRUE(Reach(0, 3));
  EXPECT_TRUE(Reach(3, 0));
  EXPECT_TRUE(Reach(1, 3));
  EXPECT_FALSE(Reach(0, 0));
  EXPECT_GT(engines_[1]->stats().messages_sent, 0u);
}

TEST_F(EngineBasicTest, DeletionCascades) {
  InsertBoth(0, 1, 1);
  InsertBoth(1, 2, 1);
  InsertBoth(2, 3, 1);
  sim_.Run();
  ASSERT_TRUE(Reach(0, 3));
  // Cut 2-3 (both directions).
  ASSERT_TRUE(engines_[2]->Delete(Link(2, 3, 1)).ok());
  ASSERT_TRUE(engines_[3]->Delete(Link(3, 2, 1)).ok());
  sim_.Run();
  EXPECT_FALSE(Reach(0, 3));
  EXPECT_FALSE(Reach(1, 3));
  EXPECT_TRUE(Reach(0, 2));
  EXPECT_FALSE(Reach(3, 0));
}

TEST_F(EngineBasicTest, AlternativePathSurvivesDeletion) {
  InsertBoth(0, 1, 1);
  InsertBoth(1, 2, 1);
  sim_.AddLink(0, 2);
  InsertBoth(0, 2, 5);  // second route to 2
  sim_.Run();
  ASSERT_TRUE(Reach(0, 2));
  Tuple direct("reach", {Value::Address(0), Value::Address(1),
                         Value::List({Value::Address(0), Value::Address(1)})});
  ASSERT_TRUE(engines_[0]->HasTuple(direct));
  ASSERT_TRUE(engines_[0]->Delete(Link(0, 1, 1)).ok());
  ASSERT_TRUE(engines_[1]->Delete(Link(1, 0, 1)).ok());
  sim_.Run();
  EXPECT_TRUE(Reach(0, 2));  // direct link still supports it
  // The direct derivation 0->1 is retracted, but 1 stays reachable via the
  // alternative route 0->2->1.
  EXPECT_FALSE(engines_[0]->HasTuple(direct));
  EXPECT_TRUE(Reach(0, 1));
}

TEST_F(EngineBasicTest, DeleteNonexistentFails) {
  EXPECT_FALSE(engines_[0]->Delete(Link(0, 1, 1)).ok());
}

TEST(EngineTest, DerivationCountingOnDiamond) {
  // Two derivations of the same tuple; deleting one leaves it visible.
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(b, infinity, infinity, keys(1,2)).
    materialize(out, infinity, infinity, keys(1,2)).
    r1 out(@X,Y) :- a(@X,Y).
    r2 out(@X,Y) :- b(@X,Y).
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  Tuple a("a", {Value::Address(0), Value::Int(7)});
  Tuple b("b", {Value::Address(0), Value::Int(7)});
  Tuple out("out", {Value::Address(0), Value::Int(7)});
  ASSERT_TRUE(engine.Insert(a).ok());
  ASSERT_TRUE(engine.Insert(b).ok());
  sim.Run();
  EXPECT_EQ(engine.CountOf(out), 2);
  ASSERT_TRUE(engine.Delete(a).ok());
  sim.Run();
  EXPECT_EQ(engine.CountOf(out), 1);
  EXPECT_TRUE(engine.HasTuple(out));
  ASSERT_TRUE(engine.Delete(b).ok());
  sim.Run();
  EXPECT_FALSE(engine.HasTuple(out));
}

TEST(EngineTest, SelfJoinSemiNaiveCorrectness) {
  // pair(@X,A,B) :- item(@X,A), item(@X,B): inserting one item must derive
  // the (new,new) pair exactly once.
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(item, infinity, infinity, keys(1,2)).
    materialize(pair, infinity, infinity, keys(1,2,3)).
    r1 pair(@X,A,B) :- item(@X,A), item(@X,B).
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(
      engine.Insert(Tuple("item", {Value::Address(0), Value::Int(1)})).ok());
  sim.Run();
  EXPECT_EQ(engine.CountOf(Tuple(
                "pair", {Value::Address(0), Value::Int(1), Value::Int(1)})),
            1);
  ASSERT_TRUE(
      engine.Insert(Tuple("item", {Value::Address(0), Value::Int(2)})).ok());
  sim.Run();
  EXPECT_EQ(engine.GetTable("pair")->size(), 4u);
  for (const Tuple& t : engine.TableContents("pair")) {
    EXPECT_EQ(engine.CountOf(t), 1) << t.ToString();
  }
  // Deleting one item removes its pairs exactly.
  ASSERT_TRUE(
      engine.Delete(Tuple("item", {Value::Address(0), Value::Int(2)})).ok());
  sim.Run();
  EXPECT_EQ(engine.GetTable("pair")->size(), 1u);
  EXPECT_EQ(engine.CountOf(Tuple(
                "pair", {Value::Address(0), Value::Int(1), Value::Int(1)})),
            1);
}

TEST(EngineTest, KeyReplacementCascades) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(conf, infinity, infinity, keys(1)).
    materialize(twice, infinity, infinity, keys(1)).
    r1 twice(@X,V2) :- conf(@X,V), V2 := V * 2.
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(
      engine.Insert(Tuple("conf", {Value::Address(0), Value::Int(3)})).ok());
  sim.Run();
  EXPECT_TRUE(
      engine.HasTuple(Tuple("twice", {Value::Address(0), Value::Int(6)})));
  // Replacing conf retracts the old derivation and adds the new one.
  ASSERT_TRUE(
      engine.Insert(Tuple("conf", {Value::Address(0), Value::Int(5)})).ok());
  sim.Run();
  EXPECT_FALSE(
      engine.HasTuple(Tuple("twice", {Value::Address(0), Value::Int(6)})));
  EXPECT_TRUE(
      engine.HasTuple(Tuple("twice", {Value::Address(0), Value::Int(10)})));
  EXPECT_EQ(engine.GetTable("conf")->size(), 1u);
}

TEST(EngineTest, EventsFireRulesButAreNotStored) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(seen, infinity, infinity, keys(1,2)).
    r1 seen(@X,V) :- ping(@X,V).
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(engine
                  .InsertEvent(
                      Tuple("ping", {Value::Address(0), Value::Int(9)}))
                  .ok());
  sim.Run();
  EXPECT_TRUE(
      engine.HasTuple(Tuple("seen", {Value::Address(0), Value::Int(9)})));
  EXPECT_EQ(engine.GetTable("ping"), nullptr);
  // InsertEvent on a materialized table is an error.
  EXPECT_FALSE(engine
                   .InsertEvent(
                       Tuple("seen", {Value::Address(0), Value::Int(1)}))
                   .ok());
  // Insert of an event predicate is an error.
  EXPECT_FALSE(
      engine.Insert(Tuple("ping", {Value::Address(0), Value::Int(1)})).ok());
}

TEST(EngineTest, EventJoinsAgainstMaterializedState) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(neighbor, infinity, infinity, keys(1,2)).
    materialize(told, infinity, infinity, keys(1,2)).
    r1 told(@Y,V) :- gossip(@X,V), neighbor(@X,Y).
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  sim.AddNode();
  sim.AddLink(0, 1);
  Engine e0(&sim, 0, prog);
  Engine e1(&sim, 1, prog);
  ASSERT_TRUE(
      e0.Insert(Tuple("neighbor", {Value::Address(0), Value::Address(1)}))
          .ok());
  ASSERT_TRUE(
      e0.InsertEvent(Tuple("gossip", {Value::Address(0), Value::Int(5)}))
          .ok());
  sim.Run();
  EXPECT_TRUE(e1.HasTuple(Tuple("told", {Value::Address(1), Value::Int(5)})));
}

TEST(EngineTest, AggregateMinIncremental) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, infinity, infinity, keys(1,2,3)).
    materialize(lowest, infinity, infinity, keys(1,2)).
    r1 lowest(@X,K,a_min<V>) :- obs(@X,K,V).
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  auto obs = [](int64_t k, int64_t v) {
    return Tuple("obs", {Value::Address(0), Value::Int(k), Value::Int(v)});
  };
  auto lowest = [](int64_t k, int64_t v) {
    return Tuple("lowest", {Value::Address(0), Value::Int(k), Value::Int(v)});
  };
  ASSERT_TRUE(engine.Insert(obs(1, 5)).ok());
  sim.Run();
  EXPECT_TRUE(engine.HasTuple(lowest(1, 5)));
  ASSERT_TRUE(engine.Insert(obs(1, 3)).ok());
  sim.Run();
  EXPECT_TRUE(engine.HasTuple(lowest(1, 3)));
  EXPECT_FALSE(engine.HasTuple(lowest(1, 5)));
  EXPECT_EQ(engine.GetTable("lowest")->size(), 1u);
  // Deleting the minimum recovers the next-best.
  ASSERT_TRUE(engine.Delete(obs(1, 3)).ok());
  sim.Run();
  EXPECT_TRUE(engine.HasTuple(lowest(1, 5)));
  // Deleting the last observation empties the group.
  ASSERT_TRUE(engine.Delete(obs(1, 5)).ok());
  sim.Run();
  EXPECT_EQ(engine.GetTable("lowest")->size(), 0u);
}

TEST(EngineTest, AggregateCountStar) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, infinity, infinity, keys(1,2)).
    materialize(total, infinity, infinity, keys(1)).
    r1 total(@X,a_count<*>) :- obs(@X,V).
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        engine.Insert(Tuple("obs", {Value::Address(0), Value::Int(i)})).ok());
  }
  sim.Run();
  EXPECT_TRUE(
      engine.HasTuple(Tuple("total", {Value::Address(0), Value::Int(3)})));
  ASSERT_TRUE(
      engine.Delete(Tuple("obs", {Value::Address(0), Value::Int(0)})).ok());
  sim.Run();
  EXPECT_TRUE(
      engine.HasTuple(Tuple("total", {Value::Address(0), Value::Int(2)})));
}

TEST(EngineTest, SelectionsAndAssignmentsFilter) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(num, infinity, infinity, keys(1,2)).
    materialize(big, infinity, infinity, keys(1,2)).
    r1 big(@X,V2) :- num(@X,V), V > 10, V2 := V + 1.
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(
      engine.Insert(Tuple("num", {Value::Address(0), Value::Int(5)})).ok());
  ASSERT_TRUE(
      engine.Insert(Tuple("num", {Value::Address(0), Value::Int(20)})).ok());
  sim.Run();
  EXPECT_EQ(engine.GetTable("big")->size(), 1u);
  EXPECT_TRUE(
      engine.HasTuple(Tuple("big", {Value::Address(0), Value::Int(21)})));
}

TEST(EngineTest, VidIndexTracksTuples) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(reach, infinity, infinity, keys(1,2)).
    r1 reach(@X,Y) :- link(@X,Y,C).
  )",
                                        true);
  net::Simulator sim;
  sim.AddNode();
  sim.AddNode();
  sim.AddLink(0, 1);
  Engine engine(&sim, 0, prog);
  Engine peer(&sim, 1, prog);
  ASSERT_TRUE(engine.Insert(Link(0, 1, 4)).ok());
  sim.Run();
  Tuple reach("reach", {Value::Address(0), Value::Address(1)});
  const Tuple* found = engine.FindTupleByVid(reach.Hash());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, reach);
  EXPECT_NE(engine.FindTupleByVid(Link(0, 1, 4).Hash()), nullptr);
}

TEST(EngineTest, StatsAccumulate) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(reach, infinity, infinity, keys(1,2)).
    r1 reach(@X,Y) :- link(@X,Y,C).
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(engine.Insert(Link(0, 0 + 1, 1)).ok());
  sim.Run();
  EXPECT_GT(engine.stats().deltas_enqueued, 0u);
  EXPECT_GT(engine.stats().rule_firings, 0u);
  EXPECT_EQ(engine.stats().eval_errors, 0u);
  EXPECT_FALSE(engine.overflowed());
}

TEST(EngineTest, RuntimeEvalErrorsAreCountedNotFatal) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(num, infinity, infinity, keys(1,2)).
    materialize(inv, infinity, infinity, keys(1,2)).
    r1 inv(@X,V2) :- num(@X,V), V2 := 100 / V.
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(
      engine.Insert(Tuple("num", {Value::Address(0), Value::Int(0)})).ok());
  ASSERT_TRUE(
      engine.Insert(Tuple("num", {Value::Address(0), Value::Int(4)})).ok());
  sim.Run();
  EXPECT_EQ(engine.stats().eval_errors, 1u);
  EXPECT_TRUE(
      engine.HasTuple(Tuple("inv", {Value::Address(0), Value::Int(25)})));
  EXPECT_EQ(engine.GetTable("inv")->size(), 1u);
}

TEST(EngineTest, OverflowSafetyValve) {
  // A deliberately divergent program: ticker grows forever.
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(tick, infinity, infinity, keys(1,2)).
    r1 tick(@X,V2) :- tick(@X,V), V2 := V + 1.
  )",
                                        false);
  net::Simulator sim;
  sim.AddNode();
  EngineOptions opts;
  opts.max_actions_per_trigger = 1000;
  Engine engine(&sim, 0, prog, opts);
  ASSERT_TRUE(
      engine.Insert(Tuple("tick", {Value::Address(0), Value::Int(0)})).ok());
  sim.Run();
  EXPECT_TRUE(engine.overflowed());
  EXPECT_FALSE(engine.last_error().empty());
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
