#include "src/runtime/table.h"

#include <gtest/gtest.h>

#include <type_traits>

namespace nettrails {
namespace runtime {
namespace {

ndlog::TableInfo CountingInfo() {
  ndlog::TableInfo info;
  info.name = "t";
  info.arity = 3;
  info.materialized = true;
  // keys empty = all fields: counting semantics.
  return info;
}

ndlog::TableInfo ReplacingInfo() {
  ndlog::TableInfo info;
  info.name = "t";
  info.arity = 3;
  info.materialized = true;
  info.keys = {0, 1};
  return info;
}

ValueList Row(int64_t a, int64_t b, int64_t c) {
  return {Value::Int(a), Value::Int(b), Value::Int(c)};
}

void ApplyAll(Table* t, const std::vector<TableAction>& actions) {
  for (const TableAction& a : actions) t->Apply(a);
}

TEST(TableTest, InsertAndCount) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 1);
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 3);
}

TEST(TableTest, CountingDeleteKeepsTupleUntilZero) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  ApplyAll(&t, t.PlanDelete(Row(1, 2, 3), 1));
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 1);
  EXPECT_EQ(t.size(), 1u);
  ApplyAll(&t, t.PlanDelete(Row(1, 2, 3), 1));
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableTest, PlanInsertEmitsSingleActionNormally) {
  Table t(CountingInfo());
  std::vector<TableAction> actions = t.PlanInsert(Row(1, 2, 3), 1);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_FALSE(actions[0].is_delete);
  EXPECT_EQ(actions[0].mult, 1);
}

TEST(TableTest, KeyReplacementEmitsDeleteTheInsert) {
  Table t(ReplacingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  std::vector<TableAction> actions = t.PlanInsert(Row(1, 2, 9), 1);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_TRUE(actions[0].is_delete);
  EXPECT_EQ(actions[0].fields, Row(1, 2, 3));
  EXPECT_FALSE(actions[1].is_delete);
  EXPECT_EQ(actions[1].fields, Row(1, 2, 9));
  ApplyAll(&t, actions);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 9)), 1);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 0);
}

TEST(TableTest, ReplacementDeletesFullCount) {
  Table t(ReplacingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 3));
  std::vector<TableAction> actions = t.PlanInsert(Row(1, 2, 9), 1);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].mult, 3);  // displaced tuple fully retracted
}

TEST(TableTest, SpuriousDeleteDropped) {
  Table t(CountingInfo());
  EXPECT_TRUE(t.PlanDelete(Row(9, 9, 9), 1).empty());
  EXPECT_EQ(t.spurious_deletes(), 1u);
  // Delete of a different tuple under the same key (replacement races).
  Table r(ReplacingInfo());
  ApplyAll(&r, r.PlanInsert(Row(1, 2, 3), 1));
  EXPECT_TRUE(r.PlanDelete(Row(1, 2, 4), 1).empty());
  EXPECT_EQ(r.spurious_deletes(), 1u);
}

// Regression: spurious_deletes_ used to be `mutable` and bumped inside a
// const PlanDelete. PlanDelete is now non-const (only for the counter);
// planning must still leave the stored rows untouched.
TEST(TableTest, PlanDeleteCountsSpuriousWithoutMutatingRows) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  EXPECT_TRUE(t.PlanDelete(Row(4, 5, 6), 1).empty());
  EXPECT_TRUE(t.PlanDelete(Row(4, 5, 6), 1).empty());
  EXPECT_EQ(t.spurious_deletes(), 2u);
  // Planning (spurious or not) never changes visible state.
  (void)t.PlanDelete(Row(1, 2, 3), 1);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 2);
  static_assert(!std::is_invocable_v<decltype(&Table::PlanDelete),
                                     const Table*, const ValueList&, int64_t>,
                "PlanDelete must not be callable on a const Table");
}

TEST(TableTest, DeleteClampsToStoredCount) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  std::vector<TableAction> actions = t.PlanDelete(Row(1, 2, 3), 5);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].mult, 2);
}

TEST(TableTest, KeyOfProjectsDeclaredColumns) {
  Table t(ReplacingInfo());
  ValueList key = t.KeyOf(Row(7, 8, 9));
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].as_int(), 7);
  EXPECT_EQ(key[1].as_int(), 8);
  Table c(CountingInfo());
  EXPECT_EQ(c.KeyOf(Row(7, 8, 9)).size(), 3u);
}

TEST(TableTest, ContentsListsVisibleTuples) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  ApplyAll(&t, t.PlanInsert(Row(4, 5, 6), 2));
  std::vector<Tuple> contents = t.Contents();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0].name(), "t");
}

TEST(TableTest, FindByKeyOf) {
  Table t(ReplacingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  const Table::Row* row = t.FindByKeyOf(Row(1, 2, 99));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->fields, Row(1, 2, 3));
  EXPECT_EQ(t.FindByKeyOf(Row(9, 9, 9)), nullptr);
}

TEST(TableTest, MixedValueKindsInKeys) {
  ndlog::TableInfo info;
  info.name = "m";
  info.arity = 2;
  info.materialized = true;
  info.keys = {0};
  Table t(info);
  ApplyAll(&t, t.PlanInsert({Value::Address(1), Value::Str("a")}, 1));
  ApplyAll(&t, t.PlanInsert({Value::Address(2), Value::Str("b")}, 1));
  EXPECT_EQ(t.size(), 2u);
  ApplyAll(&t, t.PlanInsert({Value::Address(1), Value::Str("c")}, 1));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.CountOf({Value::Address(1), Value::Str("c")}), 1);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
