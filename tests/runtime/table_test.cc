#include "src/runtime/table.h"

#include <gtest/gtest.h>

#include <map>
#include <type_traits>

namespace nettrails {
namespace runtime {
namespace {

ndlog::TableInfo CountingInfo() {
  ndlog::TableInfo info;
  info.name = "t";
  info.arity = 3;
  info.materialized = true;
  // keys empty = all fields: counting semantics.
  return info;
}

ndlog::TableInfo ReplacingInfo() {
  ndlog::TableInfo info;
  info.name = "t";
  info.arity = 3;
  info.materialized = true;
  info.keys = {0, 1};
  return info;
}

ValueList Row(int64_t a, int64_t b, int64_t c) {
  return {Value::Int(a), Value::Int(b), Value::Int(c)};
}

void ApplyAll(Table* t, const std::vector<TableAction>& actions) {
  for (const TableAction& a : actions) t->Apply(a);
}

TEST(TableTest, InsertAndCount) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 1);
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 3);
}

TEST(TableTest, CountingDeleteKeepsTupleUntilZero) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  ApplyAll(&t, t.PlanDelete(Row(1, 2, 3), 1));
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 1);
  EXPECT_EQ(t.size(), 1u);
  ApplyAll(&t, t.PlanDelete(Row(1, 2, 3), 1));
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableTest, PlanInsertEmitsSingleActionNormally) {
  Table t(CountingInfo());
  std::vector<TableAction> actions = t.PlanInsert(Row(1, 2, 3), 1);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_FALSE(actions[0].is_delete);
  EXPECT_EQ(actions[0].mult, 1);
}

TEST(TableTest, KeyReplacementEmitsDeleteTheInsert) {
  Table t(ReplacingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  std::vector<TableAction> actions = t.PlanInsert(Row(1, 2, 9), 1);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_TRUE(actions[0].is_delete);
  EXPECT_EQ(actions[0].fields, Row(1, 2, 3));
  EXPECT_FALSE(actions[1].is_delete);
  EXPECT_EQ(actions[1].fields, Row(1, 2, 9));
  ApplyAll(&t, actions);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 9)), 1);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 0);
}

TEST(TableTest, ReplacementDeletesFullCount) {
  Table t(ReplacingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 3));
  std::vector<TableAction> actions = t.PlanInsert(Row(1, 2, 9), 1);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].mult, 3);  // displaced tuple fully retracted
}

TEST(TableTest, SpuriousDeleteDropped) {
  Table t(CountingInfo());
  EXPECT_TRUE(t.PlanDelete(Row(9, 9, 9), 1).empty());
  EXPECT_EQ(t.spurious_deletes(), 1u);
  // Delete of a different tuple under the same key (replacement races).
  Table r(ReplacingInfo());
  ApplyAll(&r, r.PlanInsert(Row(1, 2, 3), 1));
  EXPECT_TRUE(r.PlanDelete(Row(1, 2, 4), 1).empty());
  EXPECT_EQ(r.spurious_deletes(), 1u);
}

// Regression: spurious_deletes_ used to be `mutable` and bumped inside a
// const PlanDelete. PlanDelete is now non-const (only for the counter);
// planning must still leave the stored rows untouched.
TEST(TableTest, PlanDeleteCountsSpuriousWithoutMutatingRows) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  EXPECT_TRUE(t.PlanDelete(Row(4, 5, 6), 1).empty());
  EXPECT_TRUE(t.PlanDelete(Row(4, 5, 6), 1).empty());
  EXPECT_EQ(t.spurious_deletes(), 2u);
  // Planning (spurious or not) never changes visible state.
  (void)t.PlanDelete(Row(1, 2, 3), 1);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.CountOf(Row(1, 2, 3)), 2);
  static_assert(!std::is_invocable_v<decltype(&Table::PlanDelete),
                                     const Table*, const ValueList&, int64_t>,
                "PlanDelete must not be callable on a const Table");
}

TEST(TableTest, DeleteClampsToStoredCount) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 2));
  std::vector<TableAction> actions = t.PlanDelete(Row(1, 2, 3), 5);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].mult, 2);
}

TEST(TableTest, KeyOfProjectsDeclaredColumns) {
  Table t(ReplacingInfo());
  ValueList key = t.KeyOf(Row(7, 8, 9));
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].as_int(), 7);
  EXPECT_EQ(key[1].as_int(), 8);
  Table c(CountingInfo());
  EXPECT_EQ(c.KeyOf(Row(7, 8, 9)).size(), 3u);
}

TEST(TableTest, ContentsListsVisibleTuples) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  ApplyAll(&t, t.PlanInsert(Row(4, 5, 6), 2));
  std::vector<Tuple> contents = t.Contents();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0].name(), "t");
}

TEST(TableTest, FindByKeyOf) {
  Table t(ReplacingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 2, 3), 1));
  const Table::Row* row = t.FindByKeyOf(Row(1, 2, 99));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->fields, Row(1, 2, 3));
  EXPECT_EQ(t.FindByKeyOf(Row(9, 9, 9)), nullptr);
}

TEST(TableTest, MixedValueKindsInKeys) {
  ndlog::TableInfo info;
  info.name = "m";
  info.arity = 2;
  info.materialized = true;
  info.keys = {0};
  Table t(info);
  ApplyAll(&t, t.PlanInsert({Value::Address(1), Value::Str("a")}, 1));
  ApplyAll(&t, t.PlanInsert({Value::Address(2), Value::Str("b")}, 1));
  EXPECT_EQ(t.size(), 2u);
  ApplyAll(&t, t.PlanInsert({Value::Address(1), Value::Str("c")}, 1));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.CountOf({Value::Address(1), Value::Str("c")}), 1);
}


// --- OrderedView determinism --------------------------------------------
// The hash-primary store must expose iteration in exactly the order the old
// std::map<ValueList, Row, ValueListLess> primary produced: sorted by key
// projection. A reference ordered map is maintained alongside a randomized
// insert/delete workload and the orders are compared after every step.

namespace {

/// Deterministic xorshift64 (no global RNG state).
uint64_t NextRand(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

void CheckOrderedViewAgainstReference(const Table& t,
                                      const std::map<ValueList, int64_t,
                                                     ValueListLess>& ref) {
  const std::vector<Table::RowHandle>& view = t.OrderedView();
  ASSERT_EQ(view.size(), ref.size());
  size_t i = 0;
  for (const auto& [key, count] : ref) {
    ASSERT_LT(i, view.size());
    EXPECT_TRUE(ValueListEq{}(t.KeyOf(t.Deref(view[i]).fields), key))
        << "position " << i << ": view order diverges from ordered-map order";
    EXPECT_EQ(t.Deref(view[i]).count, count) << "position " << i;
    ++i;
  }
}

}  // namespace

TEST(TableTest, OrderedViewMatchesOrderedMapCountingSemantics) {
  Table t(CountingInfo());
  std::map<ValueList, int64_t, ValueListLess> ref;
  uint64_t rng = 2024;
  for (int step = 0; step < 500; ++step) {
    ValueList fields = Row(static_cast<int64_t>(NextRand(&rng) % 13),
                           static_cast<int64_t>(NextRand(&rng) % 7),
                           static_cast<int64_t>(NextRand(&rng) % 3));
    bool del = NextRand(&rng) % 3 == 0;
    if (del) {
      ApplyAll(&t, t.PlanDelete(fields, 1));
      auto it = ref.find(fields);
      if (it != ref.end() && --it->second <= 0) ref.erase(it);
    } else {
      ApplyAll(&t, t.PlanInsert(fields, 1));
      ++ref[fields];
    }
    CheckOrderedViewAgainstReference(t, ref);
  }
  EXPECT_GT(t.size(), 0u);
}

TEST(TableTest, OrderedViewMatchesOrderedMapKeyReplacement) {
  Table t(ReplacingInfo());  // keys {0, 1}: key replacement
  std::map<ValueList, int64_t, ValueListLess> ref;  // key projection -> count
  uint64_t rng = 7;
  for (int step = 0; step < 500; ++step) {
    ValueList fields = Row(static_cast<int64_t>(NextRand(&rng) % 5),
                           static_cast<int64_t>(NextRand(&rng) % 5),
                           static_cast<int64_t>(NextRand(&rng) % 4));
    ValueList key = t.KeyOf(fields);
    if (NextRand(&rng) % 4 == 0) {
      // Reference: a delete only lands when the stored fields match.
      // Evaluated before applying — the handle dies with the row.
      const Table::Row* row = t.FindByKey(key);
      const bool lands = row != nullptr && ValueListEq{}(row->fields, fields);
      ApplyAll(&t, t.PlanDelete(fields, 1));
      if (lands) {
        auto it = ref.find(key);
        if (it != ref.end() && --it->second <= 0) ref.erase(it);
      }
    } else {
      ApplyAll(&t, t.PlanInsert(fields, 1));
      const Table::Row* row = t.FindByKey(key);
      ASSERT_NE(row, nullptr);
      ref[key] = row->count;
    }
    CheckOrderedViewAgainstReference(t, ref);
  }
}

TEST(TableTest, OrderedViewMatchesOrderedMapUnderApplyBatch) {
  Table t(CountingInfo());
  std::map<ValueList, int64_t, ValueListLess> ref;
  uint64_t rng = 99;
  for (int round = 0; round < 40; ++round) {
    std::vector<DeltaRequest> deltas;
    for (int i = 0; i < 16; ++i) {
      ValueList fields = Row(static_cast<int64_t>(NextRand(&rng) % 11),
                             static_cast<int64_t>(NextRand(&rng) % 5),
                             static_cast<int64_t>(NextRand(&rng) % 2));
      bool del = NextRand(&rng) % 3 == 0;
      deltas.push_back({fields, 1, del});
      if (del) {
        auto it = ref.find(fields);
        if (it != ref.end() && --it->second <= 0) ref.erase(it);
      } else {
        ++ref[fields];
      }
    }
    std::vector<TableAction> actions;
    t.ApplyBatch(deltas, &actions);
    CheckOrderedViewAgainstReference(t, ref);
  }
}

TEST(TableTest, OrderedViewCachesUntilRowSetChanges) {
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 1, 1), 1));
  ApplyAll(&t, t.PlanInsert(Row(2, 2, 2), 1));
  uint64_t rebuilds0 = t.ordered_view_rebuilds();
  (void)t.OrderedView();
  (void)t.OrderedView();
  EXPECT_EQ(t.ordered_view_rebuilds(), rebuilds0 + 1);
  // A pure count bump keeps the row set (and the cached view) intact.
  ApplyAll(&t, t.PlanInsert(Row(1, 1, 1), 1));
  (void)t.OrderedView();
  EXPECT_EQ(t.ordered_view_rebuilds(), rebuilds0 + 1);
  // An erase invalidates.
  ApplyAll(&t, t.PlanDelete(Row(2, 2, 2), 1));
  (void)t.OrderedView();
  EXPECT_EQ(t.ordered_view_rebuilds(), rebuilds0 + 2);
}

TEST(TableTest, RowHandlesStableAcrossGrowth) {
  // Handles are slab indices, not pointers: they must survive arbitrary
  // growth (slab reallocation and index rehashes) and keep resolving to the
  // same row.
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(0, 0, 0), 1));
  ASSERT_EQ(t.OrderedView().size(), 1u);
  Table::RowHandle first = t.OrderedView()[0];
  for (int64_t i = 1; i < 2000; ++i) {
    ApplyAll(&t, t.PlanInsert(Row(i, i % 9, i % 4), 1));
  }
  ASSERT_TRUE(t.HandleValid(first));
  EXPECT_EQ(t.Deref(first).fields, Row(0, 0, 0));
  EXPECT_EQ(t.Deref(first).count, 1);
}

TEST(TableTest, StaleHandleDetectedAfterEraseAndSlotReuse) {
  // Erasing a row invalidates its handles; recycling the slot for a new
  // row must NOT resurrect them (the generation tag diverges), so a stale
  // handle can never silently alias the slot's next tenant.
  Table t(CountingInfo());
  ApplyAll(&t, t.PlanInsert(Row(1, 1, 1), 1));
  ASSERT_EQ(t.OrderedView().size(), 1u);
  Table::RowHandle h = t.OrderedView()[0];
  ASSERT_TRUE(t.HandleValid(h));

  ApplyAll(&t, t.PlanDelete(Row(1, 1, 1), 1));
  EXPECT_FALSE(t.HandleValid(h));

  // The freed slot is recycled for the next insert (free-listed slab), so
  // the new row's handle shares h's index but not its generation.
  ApplyAll(&t, t.PlanInsert(Row(2, 2, 2), 1));
  ASSERT_EQ(t.OrderedView().size(), 1u);
  Table::RowHandle h2 = t.OrderedView()[0];
  EXPECT_EQ(h2.idx, h.idx);
  EXPECT_NE(h2, h);
  EXPECT_FALSE(t.HandleValid(h));
  ASSERT_TRUE(t.HandleValid(h2));
  EXPECT_EQ(t.Deref(h2).fields, Row(2, 2, 2));
}

TEST(TableTest, ChurnReusesSlotsInsteadOfGrowingTheSlab) {
  // The converged-flap workload deletes and re-derives the same rows over
  // and over; the slab must stay bounded by the peak row count, not grow
  // with total churn.
  Table t(CountingInfo());
  for (int64_t i = 0; i < 8; ++i) ApplyAll(&t, t.PlanInsert(Row(i, 0, 0), 1));
  size_t peak_slots = t.slot_count();
  for (int round = 0; round < 100; ++round) {
    for (int64_t i = 0; i < 8; ++i) {
      ApplyAll(&t, t.PlanDelete(Row(i, 0, 0), 1));
      ApplyAll(&t, t.PlanInsert(Row(i, 0, 0), 1));
    }
  }
  EXPECT_EQ(t.slot_count(), peak_slots);
  EXPECT_EQ(t.size(), 8u);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
