// Engine checkpoint / crash / restore: the round trip must preserve table
// fixpoints with derivation counts, aggregate group internals (so later
// incremental updates behave as if the crash never happened), the VID
// interner and index, soft-state lifetimes at their ORIGINAL absolute
// deadlines, and the provenance slice (a fresh ProvStore bootstrapped from
// the restored tables reproduces the canonical graph). HaltForCrash must
// fence every pending timer of the dead incarnation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/store.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace runtime {
namespace {

CompiledProgramPtr MustCompile(const std::string& src,
                               bool provenance = false) {
  CompileOptions opts;
  opts.provenance = provenance;
  Result<CompiledProgramPtr> prog = Compile(src, opts);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return prog.ok() ? *prog : nullptr;
}

/// All materialized tables of one engine, with derivation counts, in
/// canonical order.
std::string EngineFingerprint(const Engine& engine) {
  std::string out;
  for (const auto& [name, info] : engine.program().tables) {
    if (!info.materialized) continue;
    out += "-- " + name + "\n";
    for (const Tuple& t : engine.TableContents(name)) {
      out += t.ToString() + " x" + std::to_string(engine.CountOf(t)) + "\n";
    }
  }
  return out;
}

std::string WorldFingerprint(
    const std::vector<std::unique_ptr<Engine>>& engines) {
  std::string out;
  for (const auto& e : engines) {
    out += "== node " + std::to_string(e->id()) + "\n" + EngineFingerprint(*e);
  }
  return out;
}

TEST(CheckpointTest, RoundTripPreservesConvergedState) {
  CompiledProgramPtr prog =
      MustCompile(protocols::MincostProgram(), /*provenance=*/true);
  net::Topology topo = net::MakeLine(4, 1);
  net::Simulator sim;
  auto engines = protocols::MakeEngines(&sim, topo, prog);
  auto store = std::make_unique<provenance::ProvStore>(engines[1].get());
  ASSERT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());

  const std::string before = EngineFingerprint(*engines[1]);
  const std::string graph_before = store->CanonicalGraph();
  ASSERT_FALSE(before.empty());
  ASSERT_FALSE(graph_before.empty());

  EngineCheckpoint ckpt = engines[1]->TakeCheckpoint();
  engines[1]->HaltForCrash();
  engines[1]->RestoreCheckpoint(ckpt);
  // The restore cleared the observers; the old store is dead. A fresh one
  // bootstraps its adjacency from the restored prov/ruleExec tables.
  store = std::make_unique<provenance::ProvStore>(engines[1].get());

  EXPECT_EQ(EngineFingerprint(*engines[1]), before);
  EXPECT_EQ(store->CanonicalGraph(), graph_before);
}

// Aggregate internals (contribution multisets, last outputs) must survive:
// a world that checkpoints and restores a node, then fails a link and
// reconverges, must land on exactly the state of a world that never
// crashed. Any lost contribution or stale last_output would desynchronize
// the incremental a_min maintenance during the retraction cascade.
TEST(CheckpointTest, RestoredWorldTracksUncrashedWorldThroughChurn) {
  auto run = [](bool with_restore) {
    CompiledProgramPtr prog =
        MustCompile(protocols::MincostProgram(), /*provenance=*/true);
    net::Topology topo = net::MakeLine(4, 1);
    net::Simulator sim;
    auto engines = protocols::MakeEngines(&sim, topo, prog);
    EXPECT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());
    if (with_restore) {
      EngineCheckpoint ckpt = engines[2]->TakeCheckpoint();
      engines[2]->HaltForCrash();
      engines[2]->RestoreCheckpoint(ckpt);
    }
    // Post-restore dynamics: retraction cascade plus re-derivation.
    EXPECT_TRUE(protocols::FailLink(0, 1, 1, &engines, &sim).ok());
    EXPECT_TRUE(protocols::RecoverLink(0, 1, 1, &engines, &sim).ok());
    return WorldFingerprint(engines);
  };
  const std::string restored = run(true);
  const std::string pristine = run(false);
  ASSERT_FALSE(restored.empty());
  EXPECT_EQ(restored, pristine);
}

TEST(CheckpointTest, SoftStateKeepsOriginalDeadlineAcrossRestore) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, 5, infinity, keys(1,2)).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  Tuple obs("obs", {Value::Address(0), Value::Int(7)});
  ASSERT_TRUE(engine.Insert(obs).ok());
  sim.RunUntil(2 * net::kSecond);

  EngineCheckpoint ckpt = engine.TakeCheckpoint();
  engine.HaltForCrash();
  engine.RestoreCheckpoint(ckpt);
  // The lifetime is NOT restarted at restore time: the tuple still expires
  // 5s after its insertion, not 5s after the restore.
  sim.RunUntil(4900 * net::kMillisecond);
  EXPECT_TRUE(engine.HasTuple(obs));
  sim.RunUntil(5100 * net::kMillisecond);
  EXPECT_FALSE(engine.HasTuple(obs));
  EXPECT_EQ(engine.stats().expirations, 1u);
}

TEST(CheckpointTest, ExpiredWhileDownRetractsImmediatelyAfterRestore) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, 5, infinity, keys(1,2)).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  Tuple obs("obs", {Value::Address(0), Value::Int(7)});
  ASSERT_TRUE(engine.Insert(obs).ok());
  sim.RunUntil(2 * net::kSecond);
  EngineCheckpoint ckpt = engine.TakeCheckpoint();
  engine.HaltForCrash();
  // The node stays down past the tuple's deadline.
  sim.RunUntil(8 * net::kSecond);
  engine.RestoreCheckpoint(ckpt);
  EXPECT_TRUE(engine.HasTuple(obs));  // restored as data...
  sim.Run();
  EXPECT_FALSE(engine.HasTuple(obs));  // ...and retracted at once
  EXPECT_EQ(sim.now(), 8 * net::kSecond);
}

TEST(CheckpointTest, HaltFencesPendingTimersAndRestoreRestartsThem) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(tick, infinity, infinity, keys(1,2)).
    p1 tick(@X,E) :- periodic(@X,E,2,3).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  sim.RunUntil(3 * net::kSecond);  // one firing (t=2s) happened
  ASSERT_EQ(engine.stats().periodic_firings, 1u);

  EngineCheckpoint ckpt = engine.TakeCheckpoint();
  engine.HaltForCrash();
  sim.Run();
  // The armed t=4s/t=6s closures fired as events but were epoch-fenced.
  EXPECT_EQ(engine.stats().periodic_firings, 1u);
  EXPECT_EQ(engine.GetTable("tick")->size(), 1u);

  engine.RestoreCheckpoint(ckpt);
  sim.Run();
  // The restored node runs its periodic stream from iteration 1 again
  // (fresh event ids), on top of the one checkpointed tick.
  EXPECT_EQ(engine.stats().periodic_firings, 4u);
  EXPECT_EQ(engine.GetTable("tick")->size(), 4u);
}

TEST(CheckpointTest, DropRemoteDerivationsScrubsOnlyRemoteGroundedRows) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(src, infinity, infinity, keys(1,2)).
    materialize(dest, infinity, infinity, keys(1,2)).
    materialize(obs, infinity, infinity, keys(1,2)).
    r1 obs(@Y,V) :- src(@X,V), dest(@X,Y).
  )",
                                        /*provenance=*/true);
  net::Simulator sim;
  sim.AddNode();
  sim.AddNode();
  sim.AddLink(0, 1);
  Engine e0(&sim, 0, prog);
  Engine e1(&sim, 1, prog);
  ASSERT_TRUE(
      e0.Insert(Tuple("dest", {Value::Address(0), Value::Address(1)})).ok());
  ASSERT_TRUE(
      e0.Insert(Tuple("src", {Value::Address(0), Value::Int(5)})).ok());
  // A purely local base row at node 1: locally grounded, must survive.
  ASSERT_TRUE(
      e1.Insert(Tuple("src", {Value::Address(1), Value::Int(9)})).ok());
  sim.Run();
  // obs(@1,5) arrived at node 1, derived by r1 executing at node 0.
  Tuple shipped("obs", {Value::Address(1), Value::Int(5)});
  ASSERT_TRUE(e1.HasTuple(shipped));
  ASSERT_GT(e1.TableContents("prov").size(), 0u);

  e1.DropRemoteDerivations();
  sim.Run();
  // The remote-grounded tuple and its prov rows are gone...
  EXPECT_FALSE(e1.HasTuple(shipped));
  // ...the locally grounded base row and ITS provenance survive.
  EXPECT_TRUE(e1.HasTuple(Tuple("src", {Value::Address(1), Value::Int(9)})));
  const std::vector<Tuple> prov = e1.TableContents("prov");
  ASSERT_EQ(prov.size(), 1u);  // the base self-edge of src(@1,9)
  EXPECT_EQ(prov[0].field(3).as_address(), 1u);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
