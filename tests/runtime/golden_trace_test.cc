// Golden-trace determinism pin: serial mode (batch_size = 1) must replay an
// InstallLinks convergence bit-for-bit — every visible table action on
// every node, in order. This is the determinism anchor the batched pipeline
// is tested against: the equivalence suite proves batched mode reaches the
// same fixpoint, and this trace pins what "serial" means so an accidental
// semantic change to the anchor itself cannot hide there. The trace is
// MINCOST converging on a 3-node line (provenance off, so the log stays
// readable); any legitimate engine change that reorders serial evaluation
// must regenerate the constant below (the test prints the actual trace on
// mismatch).
#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace runtime {
namespace {

constexpr char kGoldenTrace[] = R"(n0 +link(@0,@1,1) x1
n0 +cost(@0,@1,1) x1
n0 +mincost(@0,@1,1) x1
n1 +link(@1,@0,1) x1
n1 +cost(@1,@0,1) x1
n1 +mincost(@1,@0,1) x1
n1 +link(@1,@2,1) x1
n1 +cost(@1,@2,1) x1
n1 +mincost(@1,@2,1) x1
n2 +link(@2,@1,1) x1
n2 +cost(@2,@1,1) x1
n2 +mincost(@2,@1,1) x1
n1 +link_d(@1,@0,1) x1
n0 +link_d(@0,@1,1) x1
n2 +link_d(@2,@1,1) x1
n1 +link_d(@1,@2,1) x1
n0 +cost(@0,@2,2) x1
n0 +mincost(@0,@2,2) x1
n2 +cost(@2,@0,2) x1
n2 +mincost(@2,@0,2) x1
n1 +cost(@1,@2,3) x1
n1 +cost(@1,@0,3) x1
)";

std::string CaptureSerialTrace() {
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), NoProvenanceOptions());
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return "";
  net::Topology topo = net::MakeLine(3, 1);
  net::Simulator sim;
  EngineOptions opts;
  opts.batch_size = 1;  // the serial anchor
  auto engines = protocols::MakeEngines(&sim, topo, *prog, opts);
  std::string trace;
  for (const auto& e : engines) {
    NodeId id = e->id();
    e->AddActionObserver([&trace, id](const std::string& table,
                                      const TableAction& action) {
      trace += "n" + std::to_string(id) + " " +
               (action.is_delete ? "-" : "+") +
               Tuple(table, action.fields).ToString() + " x" +
               std::to_string(action.mult) + "\n";
    });
  }
  EXPECT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());
  return trace;
}

TEST(GoldenTraceTest, SerialModeReproducesInstallLinksConvergenceExactly) {
  std::string actual = CaptureSerialTrace();
  ASSERT_FALSE(actual.empty());
  if (actual != kGoldenTrace) {
    std::cout << "=== ACTUAL TRACE BEGIN ===\n"
              << actual << "=== ACTUAL TRACE END ===\n";
  }
  EXPECT_EQ(actual, kGoldenTrace)
      << "serial-mode derivation order changed; if intentional, regenerate "
         "kGoldenTrace from the printed actual trace";
}

TEST(GoldenTraceTest, TraceIsStableAcrossRepeatedRuns) {
  EXPECT_EQ(CaptureSerialTrace(), CaptureSerialTrace());
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
