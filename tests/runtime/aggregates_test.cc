#include "src/runtime/aggregates.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace runtime {
namespace {

using ndlog::AggFn;

Value Vids(int64_t tag) { return Value::List({Value::Int(tag)}); }

TEST(AggGroupTest, EmptyHasNoOutput) {
  AggGroup g;
  EXPECT_TRUE(g.empty());
  EXPECT_FALSE(g.Output(AggFn::kMin).has_value());
}

TEST(AggGroupTest, MinTracksInsertions) {
  AggGroup g;
  g.Adjust(Value::Int(5), Vids(1), 1);
  EXPECT_EQ(*g.Output(AggFn::kMin), Value::Int(5));
  g.Adjust(Value::Int(3), Vids(2), 1);
  EXPECT_EQ(*g.Output(AggFn::kMin), Value::Int(3));
  g.Adjust(Value::Int(7), Vids(3), 1);
  EXPECT_EQ(*g.Output(AggFn::kMin), Value::Int(3));
}

TEST(AggGroupTest, MinRecoversAfterDeletion) {
  AggGroup g;
  g.Adjust(Value::Int(5), Vids(1), 1);
  g.Adjust(Value::Int(3), Vids(2), 1);
  g.Adjust(Value::Int(3), Vids(2), -1);  // delete current min
  EXPECT_EQ(*g.Output(AggFn::kMin), Value::Int(5));
  g.Adjust(Value::Int(5), Vids(1), -1);
  EXPECT_FALSE(g.Output(AggFn::kMin).has_value());
  EXPECT_TRUE(g.empty());
}

TEST(AggGroupTest, MaxMirrorsMin) {
  AggGroup g;
  g.Adjust(Value::Int(5), Vids(1), 1);
  g.Adjust(Value::Int(9), Vids(2), 1);
  EXPECT_EQ(*g.Output(AggFn::kMax), Value::Int(9));
  g.Adjust(Value::Int(9), Vids(2), -1);
  EXPECT_EQ(*g.Output(AggFn::kMax), Value::Int(5));
}

TEST(AggGroupTest, CountSumsMultiplicities) {
  AggGroup g;
  g.Adjust(Value::Int(1), Vids(1), 2);
  g.Adjust(Value::Int(1), Vids(2), 1);
  EXPECT_EQ(*g.Output(AggFn::kCount), Value::Int(3));
  g.Adjust(Value::Int(1), Vids(1), -1);
  EXPECT_EQ(*g.Output(AggFn::kCount), Value::Int(2));
}

TEST(AggGroupTest, SumWeighsByMultiplicity) {
  AggGroup g;
  g.Adjust(Value::Int(10), Vids(1), 2);
  g.Adjust(Value::Int(5), Vids(2), 1);
  EXPECT_EQ(*g.Output(AggFn::kSum), Value::Int(25));
}

TEST(AggGroupTest, SumWithDoubles) {
  AggGroup g;
  g.Adjust(Value::Double(1.5), Vids(1), 1);
  g.Adjust(Value::Int(2), Vids(2), 1);
  EXPECT_DOUBLE_EQ(g.Output(AggFn::kSum)->as_double(), 3.5);
}

TEST(AggGroupTest, WinnersForMinAreAllTiedContributions) {
  AggGroup g;
  g.Adjust(Value::Int(3), Vids(1), 1);
  g.Adjust(Value::Int(3), Vids(2), 1);  // tie: alternative derivation
  g.Adjust(Value::Int(7), Vids(3), 1);
  std::vector<AggGroup::ContribKey> winners = g.Winners(AggFn::kMin);
  ASSERT_EQ(winners.size(), 2u);
  for (const auto& w : winners) EXPECT_EQ(w.value, Value::Int(3));
}

TEST(AggGroupTest, WinnersForCountAreAllContributions) {
  AggGroup g;
  g.Adjust(Value::Int(3), Vids(1), 1);
  g.Adjust(Value::Int(7), Vids(2), 1);
  EXPECT_EQ(g.Winners(AggFn::kCount).size(), 2u);
  EXPECT_EQ(g.Winners(AggFn::kSum).size(), 2u);
}

TEST(AggGroupTest, DistinctVidListsAreDistinctContributions) {
  AggGroup g;
  g.Adjust(Value::Int(3), Vids(1), 1);
  g.Adjust(Value::Int(3), Vids(2), 1);
  EXPECT_EQ(g.distinct_contributions(), 2u);
  g.Adjust(Value::Int(3), Vids(1), 1);  // same contribution again
  EXPECT_EQ(g.distinct_contributions(), 2u);
}

TEST(AggGroupTest, WinnersForMaxAreTiedAtMaximum) {
  AggGroup g;
  g.Adjust(Value::Int(9), Vids(1), 1);
  g.Adjust(Value::Int(9), Vids(2), 1);
  g.Adjust(Value::Int(2), Vids(3), 1);
  std::vector<AggGroup::ContribKey> winners = g.Winners(AggFn::kMax);
  ASSERT_EQ(winners.size(), 2u);
  for (const auto& w : winners) EXPECT_EQ(w.value, Value::Int(9));
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
