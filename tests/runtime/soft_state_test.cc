// Soft-state semantics: materialize(t, LIFETIME, MAXSIZE, keys(...)) —
// tuples expire LIFETIME seconds after their last insertion (refresh
// extends), tables cap at MAXSIZE visible tuples with FIFO eviction, and
// both retract with full cascade through derived views and provenance.
// Plus the periodic(@X,E,T,C) timer streams.
#include <gtest/gtest.h>

#include "src/net/simulator.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace runtime {
namespace {

CompiledProgramPtr MustCompile(const std::string& src,
                               bool provenance = false) {
  CompileOptions opts;
  opts.provenance = provenance;
  Result<CompiledProgramPtr> prog = Compile(src, opts);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return prog.ok() ? *prog : nullptr;
}

Tuple Obs(int64_t v) {
  return Tuple("obs", {Value::Address(0), Value::Int(v)});
}

TEST(SoftStateTest, TupleExpiresAfterLifetime) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, 5, infinity, keys(1,2)).
    materialize(seen, infinity, infinity, keys(1,2)).
    r1 seen(@X,V) :- obs(@X,V).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(engine.Insert(Obs(7)).ok());
  sim.RunUntil(4 * net::kSecond);
  EXPECT_TRUE(engine.HasTuple(Obs(7)));
  sim.RunUntil(6 * net::kSecond);
  EXPECT_FALSE(engine.HasTuple(Obs(7)));
  EXPECT_EQ(engine.stats().expirations, 1u);
  // The derived view is retracted with it (cascade).
  EXPECT_EQ(engine.TableContents("seen").size(), 0u);
}

TEST(SoftStateTest, ReinsertionRefreshesLifetime) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, 5, infinity, keys(1,2)).
    r1 obs2(@X,V) :- obs(@X,V).
    materialize(obs2, infinity, infinity, keys(1,2)).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(engine.Insert(Obs(7)).ok());
  sim.RunUntil(3 * net::kSecond);
  ASSERT_TRUE(engine.Insert(Obs(7)).ok());  // refresh at t=3s
  sim.RunUntil(6 * net::kSecond);
  EXPECT_TRUE(engine.HasTuple(Obs(7)));  // old timer invalidated
  sim.RunUntil(9 * net::kSecond);
  EXPECT_FALSE(engine.HasTuple(Obs(7)));  // expires 5s after refresh
}

TEST(SoftStateTest, ReplacementRestartsLifetimeForNewTuple) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(conf, 5, infinity, keys(1)).
    materialize(out, infinity, infinity, keys(1,2)).
    r1 out(@X,V) :- conf(@X,V).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  Tuple v1("conf", {Value::Address(0), Value::Int(1)});
  Tuple v2("conf", {Value::Address(0), Value::Int(2)});
  ASSERT_TRUE(engine.Insert(v1).ok());
  sim.RunUntil(3 * net::kSecond);
  ASSERT_TRUE(engine.Insert(v2).ok());  // replaces under key, new timer
  sim.RunUntil(6 * net::kSecond);
  EXPECT_TRUE(engine.HasTuple(v2));
  sim.RunUntil(9 * net::kSecond);
  EXPECT_FALSE(engine.HasTuple(v2));
}

TEST(SoftStateTest, DerivedSoftStateExpires) {
  // The derived table itself has a lifetime; its tuples expire even though
  // the base stays.
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(base, infinity, infinity, keys(1,2)).
    materialize(cachebl, 3, infinity, keys(1,2)).
    r1 cachebl(@X,V) :- base(@X,V).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(
      engine.Insert(Tuple("base", {Value::Address(0), Value::Int(1)})).ok());
  sim.RunUntil(net::kSecond);
  EXPECT_EQ(engine.TableContents("cachebl").size(), 1u);
  sim.RunUntil(5 * net::kSecond);
  EXPECT_EQ(engine.TableContents("cachebl").size(), 0u);
  EXPECT_EQ(engine.TableContents("base").size(), 1u);
}

TEST(SoftStateTest, MaxSizeEvictsFifo) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, infinity, 3, keys(1,2)).
    materialize(seen, infinity, infinity, keys(1,2)).
    r1 seen(@X,V) :- obs(@X,V).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  for (int64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(engine.Insert(Obs(v)).ok());
  }
  sim.Run();
  EXPECT_EQ(engine.GetTable("obs")->size(), 3u);
  // Oldest two evicted.
  EXPECT_FALSE(engine.HasTuple(Obs(1)));
  EXPECT_FALSE(engine.HasTuple(Obs(2)));
  EXPECT_TRUE(engine.HasTuple(Obs(3)));
  EXPECT_TRUE(engine.HasTuple(Obs(5)));
  EXPECT_EQ(engine.stats().evictions, 2u);
  // Cascade: derived view matches.
  EXPECT_EQ(engine.TableContents("seen").size(), 3u);
}

TEST(SoftStateTest, RefreshMovesTupleToBackOfFifo) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, infinity, 2, keys(1,2)).
    r1 touched(@X,V) :- obs(@X,V).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(engine.Insert(Obs(1)).ok());
  ASSERT_TRUE(engine.Insert(Obs(2)).ok());
  ASSERT_TRUE(engine.Insert(Obs(1)).ok());  // refresh 1: now newest
  ASSERT_TRUE(engine.Insert(Obs(3)).ok());  // evicts 2, not 1
  sim.Run();
  EXPECT_TRUE(engine.HasTuple(Obs(1)));
  EXPECT_FALSE(engine.HasTuple(Obs(2)));
  EXPECT_TRUE(engine.HasTuple(Obs(3)));
}

TEST(PeriodicTest, FiresCountTimesAtPeriod) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(tick, infinity, infinity, keys(1,2)).
    p1 tick(@X,E) :- periodic(@X,E,2,3).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  sim.RunUntil(net::kSecond);
  EXPECT_EQ(engine.GetTable("tick")->size(), 0u);
  sim.RunUntil(2 * net::kSecond);
  EXPECT_EQ(engine.GetTable("tick")->size(), 1u);
  sim.RunUntil(10 * net::kSecond);
  EXPECT_EQ(engine.GetTable("tick")->size(), 3u);  // exactly 3 firings
  EXPECT_EQ(engine.stats().periodic_firings, 3u);
  sim.Run();  // drains: no infinite stream
  EXPECT_EQ(engine.GetTable("tick")->size(), 3u);
}

TEST(PeriodicTest, EventIdsAreFresh) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(tick, infinity, infinity, keys(1,2)).
    p1 tick(@X,E) :- periodic(@X,E,1,4).
  )");
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  sim.Run();
  // 4 distinct event ids -> 4 distinct tick tuples.
  EXPECT_EQ(engine.GetTable("tick")->size(), 4u);
}

TEST(PeriodicTest, JoinsWithLocalState) {
  // Periodic ping over links: each firing emits one ping per neighbor.
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(pinged, infinity, infinity, keys(1,2,3)).
    p1 pinged(@Y,X,E) :- periodic(@X,E,1,2), link(@X,Y,C).
  )");
  net::Simulator sim;
  sim.AddNode();
  sim.AddNode();
  sim.AddLink(0, 1);
  Engine e0(&sim, 0, prog);
  Engine e1(&sim, 1, prog);
  ASSERT_TRUE(
      e0.Insert(Tuple("link", {Value::Address(0), Value::Address(1),
                               Value::Int(1)}))
          .ok());
  sim.Run();
  // Node 1 received pings from node 0's two firings (and vice versa is
  // empty: node 1 has no link tuple).
  EXPECT_EQ(e1.GetTable("pinged")->size(), 2u);
  EXPECT_EQ(e0.GetTable("pinged")->size(), 0u);
}

TEST(PeriodicTest, CompileValidation) {
  // Non-constant period.
  EXPECT_FALSE(Compile(R"(
    materialize(t, infinity, infinity, keys(1,2)).
    p1 t(@X,E) :- periodic(@X,E,Y,3).
  )").ok());
  // Wrong arity.
  EXPECT_FALSE(Compile(R"(
    materialize(t, infinity, infinity, keys(1,2)).
    p1 t(@X,E) :- periodic(@X,E,2).
  )").ok());
  // Zero count.
  EXPECT_FALSE(Compile(R"(
    materialize(t, infinity, infinity, keys(1,2)).
    p1 t(@X,E) :- periodic(@X,E,2,0).
  )").ok());
  // Materialized periodic.
  EXPECT_FALSE(Compile(R"(
    materialize(periodic, infinity, infinity, keys(1,2)).
    materialize(t, infinity, infinity, keys(1,2)).
    p1 t(@X,E) :- periodic(@X,E,2,1).
  )").ok());
  // Derived periodic.
  EXPECT_FALSE(Compile(R"(
    materialize(t, infinity, infinity, keys(1,2)).
    p1 periodic(@X,E,T,C) :- t(@X,E), T := 1, C := 1.
  )").ok());
}

TEST(SoftStateTest, ProvenanceRetractedOnExpiry) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, 4, infinity, keys(1,2)).
    materialize(seen, infinity, infinity, keys(1,2)).
    r1 seen(@X,V) :- obs(@X,V).
  )",
                                        /*provenance=*/true);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(engine.Insert(Obs(9)).ok());
  sim.RunUntil(net::kSecond);
  EXPECT_GT(engine.TableContents("prov").size(), 0u);
  sim.Run();
  EXPECT_EQ(engine.TableContents("obs").size(), 0u);
  EXPECT_EQ(engine.TableContents("seen").size(), 0u);
  EXPECT_EQ(engine.TableContents("prov").size(), 0u);
  EXPECT_EQ(engine.TableContents("ruleExec").size(), 0u);
}

// Soft-state expiry determinism under timing faults: delay jitter and
// reorder hold-back shuffle when shipped tuples arrive (and therefore when
// their lifetimes start), but for a fixed fault seed the resulting action
// and expiry sequence at the receiver must be bit-identical across the
// serial, batched, and threaded engine configurations. Inserts are
// staggered in time so every shipped frame carries exactly one tuple in
// every configuration — identical wire traffic means identical fault
// sequence numbers, which is what makes the configs comparable at all.
TEST(SoftStateTest, ExpiryOrderDeterministicUnderTimingFaults) {
  const char* kProg = R"(
    materialize(src, infinity, infinity, keys(1,2)).
    materialize(dest, infinity, infinity, keys(1,2)).
    materialize(obs, 2, infinity, keys(1,2)).
    r1 obs(@Y,V) :- src(@X,V), dest(@X,Y).
  )";
  auto run = [&](uint32_t batch_size, unsigned threads) {
    CompiledProgramPtr prog = MustCompile(kProg);
    net::SimulatorOptions sopts;
    sopts.num_threads = threads;
    sopts.faults.seed = 2026;
    sopts.faults.spec.delay_per_10k = 6000;
    sopts.faults.spec.delay_jitter_max = 400 * net::kMillisecond;
    sopts.faults.spec.reorder_per_10k = 3000;
    sopts.faults.spec.reorder_hold = 600 * net::kMillisecond;
    net::Simulator sim(sopts);
    sim.AddNode();
    sim.AddNode();
    sim.AddNode();
    sim.AddLink(0, 1);
    sim.AddLink(2, 1);
    EngineOptions eopts;
    eopts.batch_size = batch_size;
    Engine e0(&sim, 0, prog, eopts);
    Engine e1(&sim, 1, prog, eopts);
    Engine e2(&sim, 2, prog, eopts);
    // Every obs action at node 1 (arrival inserts and expiry deletes), with
    // its virtual timestamp: the determinism fingerprint.
    std::vector<std::string> log;
    e1.AddActionObserver(
        [&](const std::string& table, const TableAction& a) {
          if (table != "obs") return;
          log.push_back(std::to_string(sim.now()) + ":" +
                        std::to_string(a.fields[1].as_int()) + ":" +
                        (a.is_delete ? "del" : "ins") + ":" +
                        std::to_string(a.mult));
        });
    EXPECT_TRUE(e0.Insert(Tuple("dest", {Value::Address(0),
                                         Value::Address(1)})).ok());
    EXPECT_TRUE(e2.Insert(Tuple("dest", {Value::Address(2),
                                         Value::Address(1)})).ok());
    sim.Run();
    // Staggered single-tuple inserts alternating between the two source
    // flows; jitter shuffles the cross-flow arrival interleaving at node 1.
    for (int64_t v = 0; v < 12; ++v) {
      Engine* src = (v % 2 == 0) ? &e0 : &e2;
      sim.ScheduleAt((1 + v) * 150 * net::kMillisecond, [src, v] {
        EXPECT_TRUE(src->Insert(Tuple("src", {Value::Address(src->id()),
                                              Value::Int(v)})).ok());
      });
    }
    sim.Run();
    // Everything arrived and everything expired.
    EXPECT_EQ(e1.stats().expirations, 12u);
    EXPECT_EQ(e1.TableContents("obs").size(), 0u);
    // The plan actually fired timing faults.
    const net::ChannelFaultStats fs = sim.total_fault_stats();
    EXPECT_GT(fs.delayed + fs.reordered, 0u);
    EXPECT_EQ(fs.sent, fs.delivered + fs.dropped_link + fs.dropped_fault);
    return log;
  };
  const std::vector<std::string> serial = run(/*batch_size=*/1, /*threads=*/1);
  ASSERT_EQ(serial.size(), 24u);  // 12 arrivals + 12 expiries
  EXPECT_EQ(serial, run(/*batch_size=*/64, /*threads=*/1));
  EXPECT_EQ(serial, run(/*batch_size=*/64, /*threads=*/4));
  EXPECT_EQ(serial, run(/*batch_size=*/1, /*threads=*/4));
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
