#include "src/runtime/builtins.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace nettrails {
namespace runtime {
namespace {

Result<Value> Call(const std::string& fn, std::vector<Value> args) {
  const BuiltinFn* f = FindBuiltin(fn);
  EXPECT_NE(f, nullptr) << fn;
  if (f == nullptr) return Status::NotFound(fn);
  return (*f)(args);
}

Value L(std::initializer_list<Value> xs) { return Value::List(ValueList(xs)); }

TEST(BuiltinsTest, Registry) {
  EXPECT_TRUE(IsBuiltin("f_append"));
  EXPECT_TRUE(IsBuiltin("f_isExtend"));
  EXPECT_FALSE(IsBuiltin("f_nonexistent"));
  EXPECT_FALSE(BuiltinNames().empty());
}

TEST(BuiltinsTest, ListConstruction) {
  EXPECT_EQ(*Call("f_list", {Value::Int(1), Value::Int(2)}),
            L({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(*Call("f_empty", {}), L({}));
  EXPECT_FALSE(Call("f_empty", {Value::Int(1)}).ok());
}

TEST(BuiltinsTest, AppendPrependConcat) {
  Value ab = L({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(*Call("f_append", {ab, Value::Int(3)}),
            L({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(*Call("f_prepend", {Value::Int(0), ab}),
            L({Value::Int(0), Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(*Call("f_concat", {ab, ab}),
            L({Value::Int(1), Value::Int(2), Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(*Call("f_concat", {Value::Str("ab"), Value::Str("cd")}),
            Value::Str("abcd"));
  EXPECT_FALSE(Call("f_concat", {ab, Value::Str("x")}).ok());
  EXPECT_FALSE(Call("f_append", {Value::Int(1), Value::Int(2)}).ok());
}

TEST(BuiltinsTest, MemberSizeFirstLastNth) {
  Value xs = L({Value::Int(5), Value::Int(7)});
  EXPECT_EQ(Call("f_member", {xs, Value::Int(5)})->as_int(), 1);
  EXPECT_EQ(Call("f_member", {xs, Value::Int(6)})->as_int(), 0);
  EXPECT_EQ(Call("f_size", {xs})->as_int(), 2);
  EXPECT_EQ(Call("f_size", {Value::Str("abc")})->as_int(), 3);
  EXPECT_EQ(*Call("f_first", {xs}), Value::Int(5));
  EXPECT_EQ(*Call("f_last", {xs}), Value::Int(7));
  EXPECT_EQ(*Call("f_nth", {xs, Value::Int(1)}), Value::Int(7));
  EXPECT_FALSE(Call("f_first", {L({})}).ok());
  EXPECT_FALSE(Call("f_last", {L({})}).ok());
  EXPECT_FALSE(Call("f_nth", {xs, Value::Int(9)}).ok());
}

TEST(BuiltinsTest, ReverseAndRemoveLast) {
  Value xs = L({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_EQ(*Call("f_reverse", {xs}),
            L({Value::Int(3), Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(*Call("f_removeLast", {xs}), L({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(Call("f_removeLast", {L({})}).ok());
}

TEST(BuiltinsTest, MinMaxAbs) {
  EXPECT_EQ(*Call("f_min", {Value::Int(3), Value::Int(5)}), Value::Int(3));
  EXPECT_EQ(*Call("f_max", {Value::Int(3), Value::Int(5)}), Value::Int(5));
  EXPECT_EQ(*Call("f_abs", {Value::Int(-4)}), Value::Int(4));
  EXPECT_DOUBLE_EQ(Call("f_abs", {Value::Double(-2.5)})->as_double(), 2.5);
  EXPECT_FALSE(Call("f_abs", {Value::Str("x")}).ok());
}

TEST(BuiltinsTest, AbsGuardsIntMin) {
  // |INT64_MIN| is not representable: a RuntimeError, not llabs() UB.
  const int64_t min = std::numeric_limits<int64_t>::min();
  const int64_t max = std::numeric_limits<int64_t>::max();
  Result<Value> overflow = Call("f_abs", {Value::Int(min)});
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), Status::Code::kRuntimeError);
  EXPECT_EQ(*Call("f_abs", {Value::Int(min + 1)}), Value::Int(max));
  EXPECT_EQ(*Call("f_abs", {Value::Int(max)}), Value::Int(max));
}

TEST(BuiltinsTest, ArityMetadataMatchesRuntimeChecks) {
  // The planner rejects arity violations at compile time using
  // FindBuiltinInfo; the contract must agree with what the functions
  // themselves enforce.
  for (const std::string& name : BuiltinNames()) {
    const BuiltinInfo* info = FindBuiltinInfo(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(&info->fn, FindBuiltin(name)) << name;
    EXPECT_GE(info->min_args, 0) << name;
    if (info->max_args >= 0) {
      EXPECT_LE(info->min_args, info->max_args) << name;
      // One past the maximum must be refused at call time too.
      std::vector<Value> args(static_cast<size_t>(info->max_args) + 1,
                              Value::Int(1));
      EXPECT_FALSE(info->fn(args).ok()) << name;
    }
    if (info->min_args > 0) {
      std::vector<Value> args(static_cast<size_t>(info->min_args) - 1,
                              Value::Int(1));
      EXPECT_FALSE(info->fn(args).ok()) << name;
    }
    // The registry range must not be wider than the function's own check:
    // every in-range count must get past the arity gate (it may still fail
    // on argument types — arity refusals are recognizable by message, the
    // "argument(s)" wording of ArityError).
    const int probe_max =
        info->max_args >= 0 ? info->max_args : info->min_args + 2;
    for (int n = info->min_args; n <= probe_max; ++n) {
      std::vector<Value> args(static_cast<size_t>(n), Value::Int(1));
      Result<Value> r = info->fn(args);
      if (!r.ok()) {
        EXPECT_EQ(r.status().message().find("argument(s)"), std::string::npos)
            << name << " refused in-range arity " << n << ": "
            << r.status().ToString();
      }
    }
  }
}

TEST(BuiltinsTest, ToStrAndSha1) {
  EXPECT_EQ(*Call("f_tostr", {Value::Int(42)}), Value::Str("42"));
  Value h1 = *Call("f_sha1", {Value::Str("x")});
  Value h2 = *Call("f_sha1", {Value::Str("x")});
  EXPECT_EQ(h1, h2);
  EXPECT_NE(*Call("f_sha1", {Value::Str("y")}), h1);
}

TEST(BuiltinsTest, IsExtendMatchesPaperSemantics) {
  // Route2 = [AS] ++ Route1.
  Value as = Value::Address(7);
  Value r1 = L({Value::Address(3), Value::Address(5)});
  Value r2 = L({Value::Address(7), Value::Address(3), Value::Address(5)});
  EXPECT_EQ(Call("f_isExtend", {r2, r1, as})->as_int(), 1);
  // Wrong prepended node.
  EXPECT_EQ(Call("f_isExtend", {r2, r1, Value::Address(8)})->as_int(), 0);
  // Wrong suffix.
  Value bad = L({Value::Address(7), Value::Address(5), Value::Address(3)});
  EXPECT_EQ(Call("f_isExtend", {bad, r1, as})->as_int(), 0);
  // Wrong length.
  EXPECT_EQ(Call("f_isExtend", {r1, r1, as})->as_int(), 0);
  EXPECT_FALSE(Call("f_isExtend", {r2, r1}).ok());
}

TEST(BuiltinsTest, MkVidMatchesTupleHash) {
  Tuple t("link", {Value::Address(1), Value::Address(2), Value::Int(10)});
  Value vid = *Call("f_mkvid", {Value::Str("link"), Value::Address(1),
                                Value::Address(2), Value::Int(10)});
  EXPECT_EQ(ValueToVid(vid), t.Hash());
  EXPECT_EQ(TupleVid("link", t.fields()), t.Hash());
}

TEST(BuiltinsTest, MkVidMatchesTupleHashForListFields) {
  // A path-vector tuple: the list field's digest comes from the cache in
  // its shared rep, and all three VID computations must agree bit-for-bit.
  Value path = L({Value::Address(1), Value::Address(2), Value::Address(3)});
  (void)path.Hash();  // warm the cache before any of the three digests
  Tuple t("path", {Value::Address(1), Value::Address(3), path, Value::Int(4)});
  Value vid = *Call("f_mkvid", {Value::Str("path"), Value::Address(1),
                                Value::Address(3), path, Value::Int(4)});
  EXPECT_EQ(ValueToVid(vid), t.Hash());
  EXPECT_EQ(TupleVid("path", t.fields()), t.Hash());
}

TEST(BuiltinsTest, MkRidDeterministic) {
  Value vids = L({VidToValue(1), VidToValue(2)});
  Value r1 =
      *Call("f_mkrid", {Value::Str("mc1"), Value::Address(3), vids});
  Value r2 =
      *Call("f_mkrid", {Value::Str("mc1"), Value::Address(3), vids});
  EXPECT_EQ(r1, r2);
  Value r3 =
      *Call("f_mkrid", {Value::Str("mc2"), Value::Address(3), vids});
  EXPECT_NE(r1, r3);
  EXPECT_EQ(ValueToVid(r1), RuleExecRid("mc1", 3, {1, 2}));
  EXPECT_FALSE(Call("f_mkrid", {Value::Str("x"), Value::Int(1), vids}).ok());
}

TEST(BuiltinsTest, VidValueRoundTrip) {
  Vid vid = 0xdeadbeefcafef00dULL;
  EXPECT_EQ(ValueToVid(VidToValue(vid)), vid);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
