#include "src/runtime/expr_eval.h"

#include <gtest/gtest.h>

#include "src/ndlog/parser.h"

namespace nettrails {
namespace runtime {
namespace {

// Parses `expr` by embedding it in a selection of a throwaway rule.
ndlog::ExprPtr ParseExpr(const std::string& expr) {
  Result<ndlog::Program> prog =
      ndlog::Parse("r1 out(@X) :- in(@X), " + expr + ".");
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  const auto& sel = std::get<ndlog::Select>(prog->rules[0].body[1]);
  return sel.expr;
}

Result<Value> EvalStr(const std::string& expr, Bindings bindings = {}) {
  return Eval(*ParseExpr(expr), bindings);
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(*EvalStr("1 + 2 * 3"), Value::Int(7));
  EXPECT_EQ(*EvalStr("10 / 3"), Value::Int(3));
  EXPECT_EQ(*EvalStr("10 % 3"), Value::Int(1));
  EXPECT_EQ(*EvalStr("2 - 5"), Value::Int(-3));
  EXPECT_DOUBLE_EQ(EvalStr("1.5 + 1")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(EvalStr("5 / 2.0")->as_double(), 2.5);
}

TEST(ExprEvalTest, DivisionByZero) {
  EXPECT_FALSE(EvalStr("1 / 0").ok());
  EXPECT_FALSE(EvalStr("1 % 0").ok());
  EXPECT_FALSE(EvalStr("1.0 / 0.0").ok());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_EQ(*EvalStr("2 < 3"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("3 <= 3"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("2 > 3"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("3 >= 4"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("2 == 2"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("2 != 2"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("\"a\" == \"a\""), Value::Bool(true));
}

TEST(ExprEvalTest, LogicalOperatorsShortCircuit) {
  EXPECT_EQ(*EvalStr("1 && 0"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("1 || 0"), Value::Bool(true));
  // Short-circuit: RHS would error (division by zero) but is never reached.
  EXPECT_EQ(*EvalStr("0 && (1 / 0)"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("1 || (1 / 0)"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("!0"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("!3"), Value::Bool(false));
}

TEST(ExprEvalTest, UnaryNegation) {
  EXPECT_EQ(*EvalStr("-(2 + 3)"), Value::Int(-5));
  EXPECT_DOUBLE_EQ(EvalStr("-2.5")->as_double(), -2.5);
  EXPECT_FALSE(EvalStr("-\"x\"").ok());
}

TEST(ExprEvalTest, Variables) {
  Bindings b;
  b["X"] = Value::Int(10);
  b["Y"] = Value::Int(4);
  EXPECT_EQ(*EvalStr("X - Y", b), Value::Int(6));
  EXPECT_FALSE(EvalStr("X + Z", b).ok());  // Z unbound
}

TEST(ExprEvalTest, FunctionCalls) {
  Bindings b;
  b["P"] = Value::List({Value::Address(1), Value::Address(2)});
  EXPECT_EQ(*EvalStr("f_size(P)", b), Value::Int(2));
  EXPECT_EQ(*EvalStr("f_member(P, @1)", b), Value::Bool(true));
  EXPECT_EQ(*EvalStr("f_size(f_append(P, @3))", b), Value::Int(3));
}

TEST(ExprEvalTest, FunctionErrorsPropagate) {
  Bindings b;
  b["P"] = Value::List({});
  EXPECT_FALSE(EvalStr("f_first(P)", b).ok());
  EXPECT_FALSE(EvalStr("f_size(P, P)", b).ok());  // arity
}

TEST(ExprEvalTest, ListLiterals) {
  Bindings b;
  b["X"] = Value::Int(9);
  Result<Value> v = EvalStr("f_size([1, X, [2]])", b);
  EXPECT_EQ(*v, Value::Int(3));
}

TEST(ExprEvalTest, TypeErrors) {
  EXPECT_FALSE(EvalStr("\"a\" + 1").ok());
  EXPECT_FALSE(EvalStr("1.5 % 2.0").ok());
}

TEST(ExprEvalTest, AddressComparisons) {
  Bindings b;
  b["X"] = Value::Address(1);
  b["Y"] = Value::Address(2);
  EXPECT_EQ(*EvalStr("X != Y", b), Value::Bool(true));
  EXPECT_EQ(*EvalStr("X == @1", b), Value::Bool(true));
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
