#include "src/runtime/expr_eval.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>

#include "src/ndlog/parser.h"

namespace nettrails {
namespace runtime {
namespace {

const int64_t kIntMin = std::numeric_limits<int64_t>::min();
const int64_t kIntMax = std::numeric_limits<int64_t>::max();

// Parses `expr` by embedding it in a selection of a throwaway rule.
ndlog::ExprPtr ParseExpr(const std::string& expr) {
  Result<ndlog::Program> prog =
      ndlog::Parse("r1 out(@X) :- in(@X), " + expr + ".");
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  const auto& sel = std::get<ndlog::Select>(prog->rules[0].body[1]);
  return sel.expr;
}

/// Name-keyed variable values for tests; lowered into a slot frame the way
/// the engine's rule compiler does.
using TestVars = std::map<std::string, Value>;

Result<Value> EvalStr(const std::string& expr, const TestVars& vars = {}) {
  ndlog::ExprPtr parsed = ParseExpr(expr);
  SlotMap slots;
  Result<CompiledExpr> compiled = CompileExpr(*parsed, &slots);
  if (!compiled.ok()) return compiled.status();
  Frame frame(slots.size());
  for (const auto& [name, value] : vars) {
    int slot = slots.Find(name);
    if (slot >= 0) frame.Set(slot, value);
  }
  return Eval(*compiled, frame);
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(*EvalStr("1 + 2 * 3"), Value::Int(7));
  EXPECT_EQ(*EvalStr("10 / 3"), Value::Int(3));
  EXPECT_EQ(*EvalStr("10 % 3"), Value::Int(1));
  EXPECT_EQ(*EvalStr("2 - 5"), Value::Int(-3));
  EXPECT_DOUBLE_EQ(EvalStr("1.5 + 1")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(EvalStr("5 / 2.0")->as_double(), 2.5);
}

TEST(ExprEvalTest, DivisionByZero) {
  EXPECT_FALSE(EvalStr("1 / 0").ok());
  EXPECT_FALSE(EvalStr("1 % 0").ok());
  EXPECT_FALSE(EvalStr("1.0 / 0.0").ok());
}

TEST(ExprEvalTest, IntegerDivisionOverflow) {
  // INT64_MIN / -1 is not representable: a RuntimeError, not UB/SIGFPE.
  TestVars vars{{"X", Value::Int(kIntMin)}, {"Y", Value::Int(-1)}};
  Result<Value> div = EvalStr("X / Y", vars);
  ASSERT_FALSE(div.ok());
  EXPECT_EQ(div.status().code(), Status::Code::kRuntimeError);
  // One step inside the boundary divides fine.
  EXPECT_EQ(*EvalStr("X / Y", {{"X", Value::Int(kIntMin + 1)},
                               {"Y", Value::Int(-1)}}),
            Value::Int(kIntMax));
}

TEST(ExprEvalTest, ModuloByNegativeOne) {
  // x % -1 == 0 for every x, including INT64_MIN (where the hardware
  // remainder would fault).
  EXPECT_EQ(*EvalStr("X % Y", {{"X", Value::Int(kIntMin)},
                               {"Y", Value::Int(-1)}}),
            Value::Int(0));
  EXPECT_EQ(*EvalStr("7 % Y", {{"Y", Value::Int(-1)}}), Value::Int(0));
  EXPECT_EQ(*EvalStr("X % 5", {{"X", Value::Int(kIntMin)}}),
            Value::Int(kIntMin % 5));
}

TEST(ExprEvalTest, AdditiveOverflowGuarded) {
  TestVars at_max{{"X", Value::Int(kIntMax)}};
  TestVars at_min{{"X", Value::Int(kIntMin)}};
  EXPECT_FALSE(EvalStr("X + 1", at_max).ok());
  EXPECT_FALSE(EvalStr("X - 1", at_min).ok());
  EXPECT_FALSE(EvalStr("0 - X", at_min).ok());  // -INT64_MIN via subtraction
  // The boundary values themselves are reachable.
  EXPECT_EQ(*EvalStr("X + 0", at_max), Value::Int(kIntMax));
  EXPECT_EQ(*EvalStr("X - 0", at_min), Value::Int(kIntMin));
  EXPECT_EQ(*EvalStr("X + 1", {{"X", Value::Int(kIntMax - 1)}}),
            Value::Int(kIntMax));
}

TEST(ExprEvalTest, MultiplicativeOverflowGuarded) {
  TestVars at_max{{"X", Value::Int(kIntMax)}};
  EXPECT_FALSE(EvalStr("X * 2", at_max).ok());
  EXPECT_FALSE(EvalStr("X * X", at_max).ok());
  EXPECT_FALSE(EvalStr("X * 0 - X * 2", at_max).ok());
  EXPECT_EQ(*EvalStr("X * 1", at_max), Value::Int(kIntMax));
  EXPECT_EQ(*EvalStr("X * 0", at_max), Value::Int(0));
  // INT64_MIN * -1 overflows too.
  EXPECT_FALSE(
      EvalStr("X * Y", {{"X", Value::Int(kIntMin)}, {"Y", Value::Int(-1)}})
          .ok());
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_EQ(*EvalStr("2 < 3"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("3 <= 3"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("2 > 3"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("3 >= 4"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("2 == 2"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("2 != 2"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("\"a\" == \"a\""), Value::Bool(true));
}

TEST(ExprEvalTest, LogicalOperatorsShortCircuit) {
  EXPECT_EQ(*EvalStr("1 && 0"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("1 || 0"), Value::Bool(true));
  // Short-circuit: RHS would error (division by zero) but is never reached.
  EXPECT_EQ(*EvalStr("0 && (1 / 0)"), Value::Bool(false));
  EXPECT_EQ(*EvalStr("1 || (1 / 0)"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("!0"), Value::Bool(true));
  EXPECT_EQ(*EvalStr("!3"), Value::Bool(false));
}

TEST(ExprEvalTest, UnaryNegation) {
  EXPECT_EQ(*EvalStr("-(2 + 3)"), Value::Int(-5));
  EXPECT_DOUBLE_EQ(EvalStr("-2.5")->as_double(), -2.5);
  EXPECT_FALSE(EvalStr("-\"x\"").ok());
}

TEST(ExprEvalTest, UnaryNegationOverflowGuarded) {
  // -INT64_MIN is not representable: a RuntimeError, not UB.
  Result<Value> neg = EvalStr("-X", {{"X", Value::Int(kIntMin)}});
  ASSERT_FALSE(neg.ok());
  EXPECT_EQ(neg.status().code(), Status::Code::kRuntimeError);
  EXPECT_EQ(*EvalStr("-X", {{"X", Value::Int(kIntMax)}}),
            Value::Int(-kIntMax));
  EXPECT_EQ(*EvalStr("-X", {{"X", Value::Int(kIntMin + 1)}}),
            Value::Int(kIntMax));
}

TEST(ExprEvalTest, Variables) {
  TestVars vars{{"X", Value::Int(10)}, {"Y", Value::Int(4)}};
  EXPECT_EQ(*EvalStr("X - Y", vars), Value::Int(6));
  EXPECT_FALSE(EvalStr("X + Z", vars).ok());  // Z unbound
}

TEST(ExprEvalTest, FunctionCalls) {
  TestVars vars{{"P", Value::List({Value::Address(1), Value::Address(2)})}};
  EXPECT_EQ(*EvalStr("f_size(P)", vars), Value::Int(2));
  EXPECT_EQ(*EvalStr("f_member(P, @1)", vars), Value::Bool(true));
  EXPECT_EQ(*EvalStr("f_size(f_append(P, @3))", vars), Value::Int(3));
}

TEST(ExprEvalTest, FunctionErrorsPropagate) {
  TestVars vars{{"P", Value::List({})}};
  EXPECT_FALSE(EvalStr("f_first(P)", vars).ok());
}

TEST(ExprEvalTest, UnknownBuiltinFailsAtCompileTime) {
  SlotMap slots;
  Result<CompiledExpr> bad = CompileExpr(*ParseExpr("f_bogus(X)"), &slots);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kPlanError);
  EXPECT_NE(bad.status().message().find("f_bogus"), std::string::npos);
}

TEST(ExprEvalTest, ArityErrorsFailAtCompileTime) {
  SlotMap slots;
  // f_size takes exactly one argument; the mismatch is a PlanError before
  // any evaluation happens (previously a lazy first-firing error).
  Result<CompiledExpr> bad = CompileExpr(*ParseExpr("f_size(X, X)"), &slots);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kPlanError);
  // Variadic builtins still accept any count >= their minimum.
  EXPECT_TRUE(CompileExpr(*ParseExpr("f_list(X, X, X)"), &slots).ok());
  EXPECT_FALSE(CompileExpr(*ParseExpr("f_mkvid()"), &slots).ok());
}

TEST(ExprEvalTest, CallNodesPreResolved) {
  SlotMap slots;
  Result<CompiledExpr> compiled =
      CompileExpr(*ParseExpr("f_size(f_append(P, @3))"), &slots);
  ASSERT_TRUE(compiled.ok());
  size_t calls = 0;
  for (const CompiledExpr::Node& node : compiled->nodes) {
    if (node.op != CompiledExpr::Op::kCall) continue;
    ++calls;
    EXPECT_EQ(node.fn, FindBuiltin(node.name)) << node.name;
  }
  EXPECT_EQ(calls, 2u);
}

TEST(ExprEvalTest, SlotInterningIsDense) {
  SlotMap slots;
  Result<CompiledExpr> compiled =
      CompileExpr(*ParseExpr("X + Y * X - Z"), &slots);
  ASSERT_TRUE(compiled.ok());
  // Three distinct variables -> three slots; repeats share the slot.
  EXPECT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots.Find("X"), 0);
  EXPECT_EQ(slots.Find("Y"), 1);
  EXPECT_EQ(slots.Find("Z"), 2);
  EXPECT_EQ(slots.Intern("X"), 0);
  EXPECT_EQ(slots.Find("W"), -1);
}

TEST(ExprEvalTest, FrameBoundTracking) {
  Frame frame(70);  // spans two bitmask words
  EXPECT_FALSE(frame.IsBound(0));
  EXPECT_FALSE(frame.IsBound(69));
  frame.Set(69, Value::Int(9));
  EXPECT_TRUE(frame.IsBound(69));
  EXPECT_EQ(frame.Get(69), Value::Int(9));
  frame.Unset(69);
  EXPECT_FALSE(frame.IsBound(69));
  frame.Set(3, Value::Int(1));
  frame.Reset(70);  // reset clears every bound bit
  EXPECT_FALSE(frame.IsBound(3));
}

TEST(ExprEvalTest, ListLiterals) {
  TestVars vars{{"X", Value::Int(9)}};
  Result<Value> v = EvalStr("f_size([1, X, [2]])", vars);
  EXPECT_EQ(*v, Value::Int(3));
}

TEST(ExprEvalTest, TypeErrors) {
  EXPECT_FALSE(EvalStr("\"a\" + 1").ok());
  EXPECT_FALSE(EvalStr("1.5 % 2.0").ok());
}

TEST(ExprEvalTest, AddressComparisons) {
  TestVars vars{{"X", Value::Address(1)}, {"Y", Value::Address(2)}};
  EXPECT_EQ(*EvalStr("X != Y", vars), Value::Bool(true));
  EXPECT_EQ(*EvalStr("X == @1", vars), Value::Bool(true));
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
