// Property tests for Table::ApplyBatch: a batch of deltas must produce
// exactly the visible actions and final storage state of N sequential
// PlanInsert/PlanDelete + Apply round-trips — including mixed insert+delete
// of the same key inside one batch, key replacement, count-to-zero
// retraction, and spurious-delete accounting — while keeping every
// secondary index consistent. Engine-level soft-state (FIFO eviction and
// lifetime expiry) equivalence between batched and serial modes is covered
// at the bottom.
#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/net/simulator.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"
#include "src/runtime/table.h"

namespace nettrails {
namespace runtime {
namespace {

ndlog::TableInfo CountingInfo() {
  ndlog::TableInfo info;
  info.name = "t";
  info.arity = 3;
  info.materialized = true;
  // keys empty = all fields: counting semantics.
  return info;
}

ndlog::TableInfo ReplacingInfo() {
  ndlog::TableInfo info;
  info.name = "t";
  info.arity = 3;
  info.materialized = true;
  info.keys = {0, 1};
  return info;
}

ValueList Row(int64_t a, int64_t b, int64_t c) {
  return {Value::Int(a), Value::Int(b), Value::Int(c)};
}

std::string Dump(const Table& t) {
  std::string out;
  for (Table::RowHandle h : t.OrderedView()) {
    const Table::Row& row = t.Deref(h);
    out += Tuple(t.name(), row.fields).ToString() + " x" +
           std::to_string(row.count) + "\n";
  }
  return out;
}

std::string Dump(const std::vector<TableAction>& actions) {
  std::string out;
  for (const TableAction& a : actions) {
    out += std::string(a.is_delete ? "-" : "+") +
           Tuple("t", a.fields).ToString() + " x" + std::to_string(a.mult) +
           "\n";
  }
  return out;
}

/// Reference semantics: one delta at a time through the planning API.
std::vector<TableAction> SerialApply(Table* t,
                                     const std::vector<DeltaRequest>& deltas) {
  std::vector<TableAction> out;
  for (const DeltaRequest& d : deltas) {
    std::vector<TableAction> actions = d.is_delete
                                           ? t->PlanDelete(d.fields, d.mult)
                                           : t->PlanInsert(d.fields, d.mult);
    for (const TableAction& a : actions) {
      t->Apply(a);
      out.push_back(a);
    }
  }
  return out;
}

/// Every secondary-index bucket row must be a live visible row, and every
/// visible row must be probeable through every index.
void ExpectIndexesConsistent(const Table& t) {
  for (size_t idx = 0; idx < t.num_indexes(); ++idx) {
    int id = static_cast<int>(idx);
    for (Table::RowHandle row : t.OrderedView()) {
      ValueList probe_key =
          Table::Project(t.IndexPositions(id), t.Deref(row).fields);
      const std::vector<Table::RowHandle>* rows = t.Probe(id, probe_key);
      ASSERT_NE(rows, nullptr);
      bool found = false;
      for (Table::RowHandle h : *rows) found |= (h == row);
      EXPECT_TRUE(found) << "row missing from index " << id;
    }
  }
}

struct BatchCase {
  const char* name;
  std::vector<DeltaRequest> deltas;
};

class ApplyBatchDirected : public ::testing::TestWithParam<bool> {};

TEST_P(ApplyBatchDirected, MixedInsertDeleteSameKeyInOneBatch) {
  ndlog::TableInfo info = GetParam() ? ReplacingInfo() : CountingInfo();
  std::vector<BatchCase> cases = {
      {"insert-then-delete",
       {{Row(1, 1, 1), 1, false}, {Row(1, 1, 1), 1, true}}},
      {"insert-delete-reinsert",
       {{Row(1, 1, 1), 2, false},
        {Row(1, 1, 1), 2, true},
        {Row(1, 1, 1), 1, false}}},
      {"delete-of-missing-then-insert",
       {{Row(9, 9, 9), 1, true}, {Row(9, 9, 9), 1, false}}},
      {"count-to-zero-retraction",
       {{Row(2, 2, 2), 3, false},
        {Row(2, 2, 2), 1, true},
        {Row(2, 2, 2), 2, true}}},
      {"key-replacement-chain",  // same key (0,1), three field variants
       {{Row(0, 1, 10), 1, false},
        {Row(0, 1, 20), 1, false},
        {Row(0, 1, 30), 1, false},
        {Row(0, 1, 30), 1, true}}},
      {"overdelete-clamps",
       {{Row(3, 3, 3), 1, false}, {Row(3, 3, 3), 5, true}}},
  };
  for (const BatchCase& c : cases) {
    Table serial(info);
    Table batched(info);
    serial.AddIndex({2});
    batched.AddIndex({2});
    std::vector<TableAction> ref = SerialApply(&serial, c.deltas);
    std::vector<TableAction> got;
    batched.ApplyBatch(c.deltas, &got);
    EXPECT_EQ(Dump(got), Dump(ref)) << c.name;
    EXPECT_EQ(Dump(batched), Dump(serial)) << c.name;
    EXPECT_EQ(batched.spurious_deletes(), serial.spurious_deletes()) << c.name;
    ExpectIndexesConsistent(batched);
  }
}

INSTANTIATE_TEST_SUITE_P(BothSemantics, ApplyBatchDirected,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("replacing")
                                             : std::string("counting");
                         });

TEST(ApplyBatchPropertyTest, RandomizedBatchesMatchSerialApplies) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (bool replacing : {false, true}) {
      Rng rng(seed + (replacing ? 100 : 0));
      ndlog::TableInfo info = replacing ? ReplacingInfo() : CountingInfo();
      Table serial(info);
      Table batched(info);
      serial.AddIndex({1});
      batched.AddIndex({1});
      serial.AddIndex({1, 2});
      batched.AddIndex({1, 2});
      // Small key domain so inserts, deletes, replacements, and repeats of
      // the same key collide within single batches.
      size_t step = 0;
      while (step < 300) {
        size_t batch = 1 + rng.NextBelow(9);
        std::vector<DeltaRequest> deltas;
        for (size_t i = 0; i < batch && step < 300; ++i, ++step) {
          DeltaRequest d;
          d.fields = Row(rng.NextInRange(0, 2), rng.NextInRange(0, 2),
                         rng.NextInRange(0, 3));
          d.mult = rng.NextInRange(1, 3);
          d.is_delete = rng.NextBool(0.45);
          deltas.push_back(std::move(d));
        }
        std::vector<TableAction> ref = SerialApply(&serial, deltas);
        std::vector<TableAction> got;
        batched.ApplyBatch(deltas, &got);
        ASSERT_EQ(Dump(got), Dump(ref)) << "seed " << seed << " step " << step;
        ASSERT_EQ(Dump(batched), Dump(serial))
            << "seed " << seed << " step " << step;
        ASSERT_EQ(batched.spurious_deletes(), serial.spurious_deletes());
        ExpectIndexesConsistent(batched);
      }
      EXPECT_GT(serial.spurious_deletes(), 0u);  // the sweep hit that path
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level soft state: FIFO eviction and lifetime expiry must pick the
// same victims in the same order whether deltas arrive one at a time
// (batch_size=1) or in batches.

CompiledProgramPtr SoftStateProgram(const char* decl) {
  Result<CompiledProgramPtr> prog = Compile(decl, NoProvenanceOptions());
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return prog.ok() ? *prog : nullptr;
}

std::string TableFingerprint(const Engine& engine, const std::string& table) {
  std::string out;
  for (const Tuple& t : engine.TableContents(table)) {
    out += t.ToString() + " x" + std::to_string(engine.CountOf(t)) + "\n";
  }
  return out;
}

TEST(SoftStateBatchEquivalenceTest, FifoEvictionOrderMatchesSerial) {
  // cache holds at most 3 rows; one flood event joins 6 item rows, so the
  // batched engine receives all 6 cache inserts as one DeltaBatch while the
  // serial engine evicts incrementally as each insert crosses the limit.
  // Victims and survivors must be identical.
  const char* src = R"(
    materialize(item, infinity, infinity, keys(1,2)).
    materialize(cache, infinity, 3, keys(1,2)).
    r1 cache(@X,I) :- flood(@X,N), item(@X,I).
  )";
  CompiledProgramPtr prog = SoftStateProgram(src);
  ASSERT_NE(prog, nullptr);
  auto run = [&](uint32_t batch_size, EngineStats* stats) {
    net::Simulator sim;
    sim.AddNode();
    EngineOptions opts;
    opts.batch_size = batch_size;
    Engine engine(&sim, 0, prog, opts);
    for (int64_t i = 1; i <= 6; ++i) {
      EXPECT_TRUE(
          engine.Insert(Tuple("item", {Value::Address(0), Value::Int(i)}))
              .ok());
    }
    EXPECT_TRUE(
        engine.InsertEvent(Tuple("flood", {Value::Address(0), Value::Int(1)}))
            .ok());
    sim.Run();
    *stats = engine.stats();
    return TableFingerprint(engine, "cache");
  };
  EngineStats serial_stats, batched_stats;
  std::string serial = run(1, &serial_stats);
  std::string batched = run(64, &batched_stats);
  EXPECT_EQ(batched, serial);
  EXPECT_GT(serial_stats.evictions, 0u);
  EXPECT_EQ(batched_stats.evictions, serial_stats.evictions);
  EXPECT_EQ(batched_stats.expirations, serial_stats.expirations);
}

TEST(SoftStateBatchEquivalenceTest, FifoVictimReinsertedInSameBatchMatchesSerial) {
  // Regression: a burst that inserts a fresh key AND re-derives the current
  // FIFO victim. Serial mode evicts the victim at its pre-re-insert count
  // (the re-insert then survives with the remainder); a naive batched
  // epilogue would read the victim's post-batch count and over-evict. The
  // engine therefore drains soft-state tables serially even in batched
  // mode — this pins that.
  const char* src = R"(
    materialize(item, infinity, infinity, keys(1,2)).
    materialize(cache, infinity, 2, keys(1,2)).
    r1 cache(@X,I) :- poke(@X,N), item(@X,I).
  )";
  CompiledProgramPtr prog = SoftStateProgram(src);
  ASSERT_NE(prog, nullptr);
  auto run = [&](uint32_t batch_size, EngineStats* stats) {
    net::Simulator sim;
    sim.AddNode();
    EngineOptions opts;
    opts.batch_size = batch_size;
    Engine engine(&sim, 0, prog, opts);
    // cache = {1 (FIFO-oldest), 2}, at max_size.
    for (int64_t i : {1, 2}) {
      EXPECT_TRUE(
          engine.Insert(Tuple("cache", {Value::Address(0), Value::Int(i)}))
              .ok());
    }
    // The broadcast join iterates items in sorted order, so the burst
    // derives cache(0) — evicting FIFO-oldest cache(1) at its current
    // count — and then re-derives cache(1) itself.
    for (int64_t i : {0, 1}) {
      EXPECT_TRUE(
          engine.Insert(Tuple("item", {Value::Address(0), Value::Int(i)}))
              .ok());
    }
    EXPECT_TRUE(
        engine.InsertEvent(Tuple("poke", {Value::Address(0), Value::Int(1)}))
            .ok());
    sim.Run();
    *stats = engine.stats();
    return TableFingerprint(engine, "cache");
  };
  EngineStats serial_stats, batched_stats;
  std::string serial = run(1, &serial_stats);
  std::string batched = run(64, &batched_stats);
  EXPECT_EQ(batched, serial);
  EXPECT_GT(serial_stats.evictions, 0u);
  EXPECT_EQ(batched_stats.evictions, serial_stats.evictions);
  // Serial semantics: the victim was evicted at its pre-re-insert count,
  // so the re-derived cache(1) survives with one derivation.
  EXPECT_NE(serial.find("cache(@0,1) x1"), std::string::npos) << serial;
}

TEST(SoftStateBatchEquivalenceTest, LifetimeExpiryMatchesSerial) {
  // seen rows live 2 virtual seconds; a second ping mid-lifetime refreshes
  // every row's timer (invalidating the first generation), so the final
  // expiry wave must retract all rows in both modes at the refreshed time.
  const char* src = R"(
    materialize(item, infinity, infinity, keys(1,2)).
    materialize(seen, 2, infinity, keys(1,2)).
    r1 seen(@X,I) :- ping(@X,N), item(@X,I).
  )";
  CompiledProgramPtr prog = SoftStateProgram(src);
  ASSERT_NE(prog, nullptr);
  auto run = [&](uint32_t batch_size, EngineStats* stats) {
    net::Simulator sim;
    sim.AddNode();
    EngineOptions opts;
    opts.batch_size = batch_size;
    Engine engine(&sim, 0, prog, opts);
    for (int64_t i = 1; i <= 4; ++i) {
      EXPECT_TRUE(
          engine.Insert(Tuple("item", {Value::Address(0), Value::Int(i)}))
              .ok());
    }
    EXPECT_TRUE(
        engine.InsertEvent(Tuple("ping", {Value::Address(0), Value::Int(1)}))
            .ok());
    sim.RunFor(1 * net::kSecond);
    EXPECT_TRUE(
        engine.InsertEvent(Tuple("ping", {Value::Address(0), Value::Int(2)}))
            .ok());
    std::string mid = TableFingerprint(engine, "seen");
    sim.Run();
    *stats = engine.stats();
    return mid + "----\n" + TableFingerprint(engine, "seen");
  };
  EngineStats serial_stats, batched_stats;
  std::string serial = run(1, &serial_stats);
  std::string batched = run(64, &batched_stats);
  EXPECT_EQ(batched, serial);
  EXPECT_GT(serial_stats.expirations, 0u);
  EXPECT_EQ(batched_stats.expirations, serial_stats.expirations);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
