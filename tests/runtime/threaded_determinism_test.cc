// Threaded-vs-serial determinism suite: the sharded epoch-barrier event
// loop (SimulatorOptions::num_threads > 1) must be observably
// indistinguishable from the serial loop — bit-identical per-node action
// traces, table fixpoints, derivation counts, canonical provenance graphs,
// traffic accounting, and event counts — at every thread count. Two
// scenarios: the MINCOST line-convergence behind the golden-trace pin, and
// the seeded link-churn worlds from the batch-equivalence suite (the
// heaviest deterministic workload the repo has: overlapping retraction /
// re-derivation cascades with distributed provenance on). CI runs this via
// `ctest -R threaded`, including under TSan.
//
// Trace capture is per-node: within a wave, handlers on different nodes run
// concurrently, so a global interleaved log is not defined in threaded mode
// (and appending to one would itself be a race). Per-node order is the
// contract — each node's engine is driven by exactly one worker per wave,
// in event-seq order, so its action stream must match serial execution
// exactly. Cross-node state agreement is covered by the fingerprint.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/store.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace runtime {
namespace {

/// MINCOST with the distance-vector "infinity" lowered to 24, exactly as in
/// batch_equivalence_test.cc (see the rationale there: bounds the
/// count-to-infinity transient when churn partitions the topology).
const char* kBoundedMincost = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2)).
    mc1 cost(@X,Y,C) :- link(@X,Y,C).
    mc2 cost(@X,Z,C) :- link(@X,Y,C1), mincost(@Y,Z,C2), X != Z,
                        C := C1 + C2, C < 24.
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
)";

/// Simulator-level counters that must agree across thread counts. Frame
/// pool size is deliberately excluded: pool indices and slab growth depend
/// on release/acquire interleaving, which the protocol does not (and need
/// not) pin — nothing observable reads them.
std::string SimCounters(const net::Simulator& sim) {
  net::TrafficStats total = sim.total_traffic();
  std::string out;
  out += "events=" + std::to_string(sim.events_executed()) + "\n";
  out += "dropped=" + std::to_string(sim.dropped_messages()) + "\n";
  out += "messages=" + std::to_string(total.messages) + "\n";
  out += "bytes=" + std::to_string(total.bytes) + "\n";
  out += "tuples=" + std::to_string(total.tuples) + "\n";
  for (const auto& [name, ts] : sim.ChannelTrafficByName()) {
    out += name + "=" + std::to_string(ts.messages) + "/" +
           std::to_string(ts.bytes) + "/" + std::to_string(ts.tuples) + "\n";
  }
  return out;
}

/// Full-system fingerprint: per-node table contents with derivation counts,
/// per-node canonical provenance graphs, and the simulator counters.
std::string Fingerprint(
    const net::Simulator& sim,
    const std::vector<std::unique_ptr<Engine>>& engines,
    const std::vector<std::unique_ptr<provenance::ProvStore>>& stores) {
  std::string out;
  for (const auto& engine : engines) {
    out += "== node " + std::to_string(engine->id()) + "\n";
    for (const auto& [name, info] : engine->program().tables) {
      if (!info.materialized) continue;
      for (const Tuple& t : engine->TableContents(name)) {
        out += t.ToString() + " x" + std::to_string(engine->CountOf(t)) + "\n";
      }
    }
  }
  for (const auto& store : stores) {
    out += "== provenance node " + std::to_string(store->node()) + "\n";
    out += store->CanonicalGraph();
  }
  out += "== sim\n" + SimCounters(sim);
  return out;
}

/// MINCOST converging on a 3-node line (the golden-trace scenario), with
/// per-node action traces. Returns the traces concatenated in node order
/// followed by the simulator counters.
std::string LineConvergenceTrace(unsigned threads) {
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), NoProvenanceOptions());
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return "";
  net::Topology topo = net::MakeLine(3, 1);
  net::SimulatorOptions sopts;
  sopts.num_threads = threads;
  net::Simulator sim(sopts);
  EngineOptions opts;
  opts.batch_size = 1;
  auto engines = protocols::MakeEngines(&sim, topo, *prog, opts);
  // One buffer per node: a worker only ever appends to the buffers of the
  // nodes in its shard, and a node is in exactly one shard per wave.
  std::vector<std::string> traces(engines.size());
  for (const auto& e : engines) {
    NodeId id = e->id();
    std::string* trace = &traces[id];
    e->AddActionObserver([trace, id](const std::string& table,
                                     const TableAction& action) {
      *trace += "n" + std::to_string(id) + " " +
                (action.is_delete ? "-" : "+") +
                Tuple(table, action.fields).ToString() + " x" +
                std::to_string(action.mult) + "\n";
    });
  }
  EXPECT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());
  std::string out;
  for (const std::string& t : traces) out += t;
  out += "== sim\n" + SimCounters(sim);
  return out;
}

/// The seeded link-churn world from batch_equivalence_test.cc, run at a
/// given thread count: converge a random 6-node topology, then 14 rounds of
/// 1-3 link flips with full reconvergence between rounds, provenance on.
/// The Rng schedule is engine-state-independent, so every thread count
/// replays identical churn.
std::string ChurnFingerprint(uint64_t seed, unsigned threads) {
  Result<CompiledProgramPtr> prog = Compile(kBoundedMincost);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return "";

  Rng rng(seed);
  net::Topology topo = net::MakeRandomConnected(6, 0.35, &rng, 3);
  net::SimulatorOptions sopts;
  sopts.num_threads = threads;
  net::Simulator sim(sopts);
  EngineOptions opts;
  opts.batch_size = 8;  // batched shipping: multi-tuple frames inside waves
  auto engines = protocols::MakeEngines(&sim, topo, *prog, opts);
  std::vector<std::unique_ptr<provenance::ProvStore>> stores;
  for (const auto& e : engines) {
    stores.push_back(std::make_unique<provenance::ProvStore>(e.get()));
  }
  EXPECT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());

  std::vector<bool> up(topo.links.size(), true);
  for (int op = 0; op < 14; ++op) {
    size_t burst = 1 + rng.NextBelow(3);
    for (size_t b = 0; b < burst; ++b) {
      size_t i = rng.NextBelow(topo.links.size());
      const net::CostedLink& l = topo.links[i];
      if (up[i]) {
        EXPECT_TRUE(protocols::FailLink(l.a, l.b, l.cost, &engines, &sim,
                                        /*run_to_quiescence=*/false)
                        .ok());
      } else {
        EXPECT_TRUE(protocols::RecoverLink(l.a, l.b, l.cost, &engines, &sim,
                                           /*run_to_quiescence=*/false)
                        .ok());
      }
      up[i] = !up[i];
    }
    sim.Run();
  }
  for (size_t i = 0; i < topo.links.size(); ++i) {
    if (!up[i]) {
      const net::CostedLink& l = topo.links[i];
      EXPECT_TRUE(protocols::RecoverLink(l.a, l.b, l.cost, &engines, &sim,
                                         /*run_to_quiescence=*/false)
                      .ok());
    }
  }
  sim.Run();
  return Fingerprint(sim, engines, stores);
}

class ThreadedDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadedDeterminism, LineConvergenceTraceMatchesSerial) {
  // Computed once; every parameterization (including threads=1, which
  // checks run-to-run stability) compares against the same serial anchor.
  static const std::string* serial =
      new std::string(LineConvergenceTrace(1));
  ASSERT_FALSE(serial->empty());
  std::string actual = LineConvergenceTrace(GetParam());
  EXPECT_EQ(actual, *serial)
      << "threads=" << GetParam() << " diverged from serial execution";
}

TEST_P(ThreadedDeterminism, ChurnFixpointAndProvenanceMatchSerial) {
  for (uint64_t seed : {uint64_t{101}, uint64_t{202}, uint64_t{303}}) {
    std::string reference = ChurnFingerprint(seed, 1);
    ASSERT_FALSE(reference.empty());
    std::string actual = ChurnFingerprint(seed, GetParam());
    EXPECT_EQ(actual, reference)
        << "threads=" << GetParam() << " seed=" << seed
        << " diverged from serial execution";
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedDeterminism,
                         ::testing::Values(1u, 2u, 4u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ThreadedDeterminism2, ThreadCountIsReconfigurable) {
  net::Simulator sim;
  EXPECT_EQ(sim.num_threads(), 1u);
  sim.set_num_threads(4);
#ifdef NETTRAILS_THREADS
  EXPECT_EQ(sim.num_threads(), 4u);
#else
  EXPECT_EQ(sim.num_threads(), 1u);  // clamped in non-threaded builds
#endif
  sim.set_num_threads(0);  // clamps to 1
  EXPECT_EQ(sim.num_threads(), 1u);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
