#include "src/runtime/plan.h"

#include <gtest/gtest.h>

#include "src/protocols/programs.h"
#include "src/provenance/rewrite.h"

namespace nettrails {
namespace runtime {
namespace {

TEST(PlanTest, CompilesMincostWithoutProvenance) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), opts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_FALSE((*prog)->provenance);
  // mc1, mc2 (localized), mc3, plus the link reversal rule.
  EXPECT_EQ((*prog)->rules.size(), 4u);
  EXPECT_NE((*prog)->FindTable("link_d"), nullptr);
}

TEST(PlanTest, CompilesMincostWithProvenance) {
  Result<CompiledProgramPtr> prog = Compile(protocols::MincostProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE((*prog)->provenance);
  EXPECT_NE((*prog)->FindTable(provenance::kProvTable), nullptr);
  EXPECT_NE((*prog)->FindTable(provenance::kRuleExecTable), nullptr);
  // eh views exist for the non-aggregate rules.
  EXPECT_NE((*prog)->FindTable("eh_mc1"), nullptr);
  EXPECT_NE((*prog)->FindTable("eh_mc2"), nullptr);
  EXPECT_EQ((*prog)->FindTable("eh_mc3"), nullptr);  // aggregate rule
}

TEST(PlanTest, AllShippedProtocolsCompile) {
  for (const char* src :
       {protocols::MincostProgram(), protocols::PathVectorProgram(),
        protocols::DsrProgram(), protocols::BgpMaybeProgram()}) {
    for (bool prov : {false, true}) {
      CompileOptions opts;
      opts.provenance = prov;
      Result<CompiledProgramPtr> prog = Compile(src, opts);
      EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    }
  }
}

TEST(PlanTest, TriggersIndexEveryBodyAtom) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), opts);
  ASSERT_TRUE(prog.ok());
  // link triggers mc1 and the reversal rule; link_d and mincost trigger mc2;
  // cost triggers mc3.
  EXPECT_GE((*prog)->triggers.at("link").size(), 2u);
  EXPECT_EQ((*prog)->triggers.at("mincost").size(), 1u);
  EXPECT_EQ((*prog)->triggers.at("cost").size(), 1u);
}

TEST(PlanTest, EventRulesTriggerOnlyOnTheEvent) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog = Compile(protocols::DsrProgram(), opts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  // dr1/dr2 contain the rreq event and a link atom: the rules must not be
  // triggered by link deltas.
  auto it = (*prog)->triggers.find("link");
  if (it != (*prog)->triggers.end()) {
    for (const auto& [rule_idx, pos] : it->second) {
      const CompiledRule& cr = (*prog)->rules[rule_idx];
      for (size_t p : cr.atom_positions) {
        const auto& atom = std::get<ndlog::Atom>(cr.rule.body[p]);
        EXPECT_NE(atom.predicate, "rreq")
            << "rule with event body triggered by link: " << cr.rule.name;
      }
    }
  }
  EXPECT_GE((*prog)->triggers.at("rreq").size(), 2u);
}

TEST(PlanTest, AggregateRuleMetadata) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), opts);
  ASSERT_TRUE(prog.ok());
  const CompiledRule* agg = nullptr;
  for (const CompiledRule& cr : (*prog)->rules) {
    if (cr.has_agg) agg = &cr;
  }
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->rule.name, "mc3");
  EXPECT_EQ(agg->agg_fn, ndlog::AggFn::kMin);
  EXPECT_EQ(agg->agg_arg_index, 2u);
}

TEST(PlanTest, AggregateHeadKeyMustMatchGroup) {
  const char* src = R"(
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2,3)).
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
  )";
  EXPECT_FALSE(Compile(src).ok());
}

TEST(PlanTest, UnknownBuiltinRejected) {
  const char* src = R"(
    materialize(t, infinity, infinity, keys(1)).
    r1 t(@X) :- t(@X), f_bogus(X) == 1.
  )";
  EXPECT_FALSE(Compile(src).ok());
}

TEST(PlanTest, MaybeRulesDroppedWithoutProvenance) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::BgpMaybeProgram(), opts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE((*prog)->rules.empty());
}

TEST(PlanTest, MaybeRulesBecomeProvenanceRules) {
  Result<CompiledProgramPtr> prog = Compile(protocols::BgpMaybeProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  bool has_eh = false, derives_output = false;
  for (const CompiledRule& cr : (*prog)->rules) {
    if (cr.rule.head.predicate == "eh_br1") has_eh = true;
    if (cr.rule.head.predicate == "outputRoute") derives_output = true;
  }
  EXPECT_TRUE(has_eh);
  // Maybe rules never derive their head; outputRoute stays external.
  EXPECT_FALSE(derives_output);
}

TEST(PlanTest, ReservedPredicatesRejected) {
  const char* src = R"(
    materialize(prov, infinity, infinity, keys(1,2)).
    r1 prov(@X,Y) :- somebase(@X,Y).
  )";
  EXPECT_FALSE(Compile(src).ok());
}

TEST(PlanTest, DuplicateRuleNamesRejectedWithProvenance) {
  const char* src = R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(b, infinity, infinity, keys(1,2)).
    r1 b(@X,Y) :- a(@X,Y).
    r1 a(@X,Y) :- b(@X,Y).
  )";
  EXPECT_FALSE(Compile(src).ok());
}

TEST(PlanTest, DumpShowsRewrittenProgram) {
  Result<CompiledProgramPtr> prog = Compile(protocols::MincostProgram());
  ASSERT_TRUE(prog.ok());
  std::string dump = (*prog)->Dump();
  EXPECT_NE(dump.find("prov("), std::string::npos);
  EXPECT_NE(dump.find("ruleExec("), std::string::npos);
  EXPECT_NE(dump.find("f_mkvid"), std::string::npos);
}

TEST(PlanTest, DumpedProgramsAreValidNdlog) {
  // The rewritten program text (what the demo displays as "the modified
  // program containing the provenance rules") must itself re-compile.
  for (const char* src :
       {protocols::MincostProgram(), protocols::PathVectorProgram(),
        protocols::DsrProgram()}) {
    Result<CompiledProgramPtr> prog = Compile(src);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    CompileOptions no_prov;
    no_prov.provenance = false;  // it already contains the prov rules
    Result<CompiledProgramPtr> again = Compile((*prog)->Dump(), no_prov);
    EXPECT_TRUE(again.ok()) << again.status().ToString();
    if (again.ok()) {
      EXPECT_EQ((*again)->rules.size(), (*prog)->rules.size());
    }
  }
}

TEST(PlanTest, BodyWithoutAtomsRejected) {
  const char* src = R"(
    materialize(t, infinity, infinity, keys(1)).
    r1 t(@X) :- X := @1.
  )";
  // X := @1 binds X, but a rule needs at least one atom to be triggered.
  EXPECT_FALSE(Compile(src).ok());
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
