#include "src/runtime/plan.h"

#include <gtest/gtest.h>

#include "src/protocols/programs.h"
#include "src/provenance/rewrite.h"

namespace nettrails {
namespace runtime {
namespace {

TEST(PlanTest, CompilesMincostWithoutProvenance) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), opts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_FALSE((*prog)->provenance);
  // mc1, mc2 (localized), mc3, plus the link reversal rule.
  EXPECT_EQ((*prog)->rules.size(), 4u);
  EXPECT_NE((*prog)->FindTable("link_d"), nullptr);
}

TEST(PlanTest, CompilesMincostWithProvenance) {
  Result<CompiledProgramPtr> prog = Compile(protocols::MincostProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE((*prog)->provenance);
  EXPECT_NE((*prog)->FindTable(provenance::kProvTable), nullptr);
  EXPECT_NE((*prog)->FindTable(provenance::kRuleExecTable), nullptr);
  // eh views exist for the non-aggregate rules.
  EXPECT_NE((*prog)->FindTable("eh_mc1"), nullptr);
  EXPECT_NE((*prog)->FindTable("eh_mc2"), nullptr);
  EXPECT_EQ((*prog)->FindTable("eh_mc3"), nullptr);  // aggregate rule
}

TEST(PlanTest, AllShippedProtocolsCompile) {
  for (const char* src :
       {protocols::MincostProgram(), protocols::PathVectorProgram(),
        protocols::DsrProgram(), protocols::BgpMaybeProgram()}) {
    for (bool prov : {false, true}) {
      CompileOptions opts;
      opts.provenance = prov;
      Result<CompiledProgramPtr> prog = Compile(src, opts);
      EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    }
  }
}

TEST(PlanTest, TriggersIndexEveryBodyAtom) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), opts);
  ASSERT_TRUE(prog.ok());
  // link triggers mc1 and the reversal rule; link_d and mincost trigger mc2;
  // cost triggers mc3.
  EXPECT_GE((*prog)->triggers.at("link").size(), 2u);
  EXPECT_EQ((*prog)->triggers.at("mincost").size(), 1u);
  EXPECT_EQ((*prog)->triggers.at("cost").size(), 1u);
}

TEST(PlanTest, EventRulesTriggerOnlyOnTheEvent) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog = Compile(protocols::DsrProgram(), opts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  // dr1/dr2 contain the rreq event and a link atom: the rules must not be
  // triggered by link deltas.
  auto it = (*prog)->triggers.find("link");
  if (it != (*prog)->triggers.end()) {
    for (const auto& [rule_idx, pos] : it->second) {
      const CompiledRule& cr = (*prog)->rules[rule_idx];
      for (size_t p : cr.atom_positions) {
        const auto& atom = std::get<ndlog::Atom>(cr.rule.body[p]);
        EXPECT_NE(atom.predicate, "rreq")
            << "rule with event body triggered by link: " << cr.rule.name;
      }
    }
  }
  EXPECT_GE((*prog)->triggers.at("rreq").size(), 2u);
}

TEST(PlanTest, AggregateRuleMetadata) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), opts);
  ASSERT_TRUE(prog.ok());
  const CompiledRule* agg = nullptr;
  for (const CompiledRule& cr : (*prog)->rules) {
    if (cr.has_agg) agg = &cr;
  }
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->rule.name, "mc3");
  EXPECT_EQ(agg->agg_fn, ndlog::AggFn::kMin);
  EXPECT_EQ(agg->agg_arg_index, 2u);
}

TEST(PlanTest, AggregateHeadKeyMustMatchGroup) {
  const char* src = R"(
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2,3)).
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
  )";
  EXPECT_FALSE(Compile(src).ok());
}

TEST(PlanTest, UnknownBuiltinRejected) {
  // Rejected when the program compiles — expression lowering resolves every
  // builtin — not lazily on the first firing.
  const char* src = R"(
    materialize(t, infinity, infinity, keys(1)).
    r1 t(@X) :- t(@X), f_bogus(X) == 1.
  )";
  Result<CompiledProgramPtr> prog = Compile(src);
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), Status::Code::kPlanError);
  EXPECT_NE(prog.status().message().find("f_bogus"), std::string::npos);
}

TEST(PlanTest, BuiltinArityRejectedAtCompileTime) {
  // f_size is unary; the arity violation is caught by the lowering pass.
  const char* src = R"(
    materialize(t, infinity, infinity, keys(1)).
    r1 t(@X) :- t(@X), f_size(X, X) == 1.
  )";
  Result<CompiledProgramPtr> prog = Compile(src);
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), Status::Code::kPlanError);
  EXPECT_NE(prog.status().message().find("argument"), std::string::npos);
  // Same check covers head expressions.
  const char* head_src = R"(
    materialize(t, infinity, infinity, keys(1)).
    materialize(u, infinity, infinity, keys(1,2)).
    r1 u(@X, f_abs(X, X)) :- t(@X).
  )";
  EXPECT_FALSE(Compile(head_src).ok());
}

TEST(PlanTest, RulesLowerToSlotFrames) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::MincostProgram(), opts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  for (const CompiledRule& cr : (*prog)->rules) {
    // Lowered body and head are index-parallel to the AST rule.
    ASSERT_EQ(cr.body.size(), cr.rule.body.size());
    ASSERT_EQ(cr.head_exprs.size(), cr.rule.head.args.size());
    EXPECT_GT(cr.slots.size(), 0u) << cr.rule.name;
    for (size_t i = 0; i < cr.body.size(); ++i) {
      const CompiledTerm& term = cr.body[i];
      if (const auto* atom = std::get_if<ndlog::Atom>(&cr.rule.body[i])) {
        ASSERT_EQ(term.kind, CompiledTerm::Kind::kAtom);
        ASSERT_EQ(term.atom.args.size(), atom->args.size());
        for (size_t a = 0; a < atom->args.size(); ++a) {
          const SlotArg& sa = term.atom.args[a];
          if (atom->args[a].expr->is_var()) {
            ASSERT_GE(sa.slot, 0);
            ASSERT_LT(static_cast<size_t>(sa.slot), cr.slots.size());
            // The slot maps back to exactly this variable name.
            EXPECT_EQ(cr.slots.name(sa.slot), atom->args[a].expr->var_name());
          } else {
            EXPECT_TRUE(sa.is_const());
            EXPECT_EQ(sa.constant, atom->args[a].expr->const_value());
          }
        }
      } else if (std::get_if<ndlog::Assign>(&cr.rule.body[i])) {
        ASSERT_EQ(term.kind, CompiledTerm::Kind::kAssign);
        EXPECT_GE(term.assign_slot, 0);
        EXPECT_TRUE(term.expr.valid());
      } else {
        ASSERT_EQ(term.kind, CompiledTerm::Kind::kSelect);
        EXPECT_TRUE(term.expr.valid());
      }
    }
    // Aggregate a_count<*> aside, every head argument lowers.
    for (size_t i = 0; i < cr.head_exprs.size(); ++i) {
      if (cr.rule.head.args[i].expr) {
        EXPECT_TRUE(cr.head_exprs[i].valid());
      }
    }
  }
}

TEST(PlanTest, LoweredCallsArePreResolved) {
  // The provenance rewrite makes heavy use of f_mkvid/f_mkrid; every Call
  // node in the compiled program must carry its resolved builtin pointer.
  Result<CompiledProgramPtr> prog = Compile(protocols::MincostProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  size_t call_nodes = 0;
  auto check_expr = [&](const CompiledExpr& e) {
    for (const CompiledExpr::Node& node : e.nodes) {
      if (node.op != CompiledExpr::Op::kCall) continue;
      ++call_nodes;
      ASSERT_NE(node.fn, nullptr) << node.name;
      EXPECT_EQ(node.fn, FindBuiltin(node.name)) << node.name;
    }
  };
  for (const CompiledRule& cr : (*prog)->rules) {
    for (const CompiledTerm& term : cr.body) {
      if (term.expr.valid()) check_expr(term.expr);
    }
    for (const CompiledExpr& e : cr.head_exprs) {
      if (e.valid()) check_expr(e);
    }
  }
  EXPECT_GT(call_nodes, 0u);
}

TEST(PlanTest, MaybeRulesDroppedWithoutProvenance) {
  CompileOptions opts;
  opts.provenance = false;
  Result<CompiledProgramPtr> prog =
      Compile(protocols::BgpMaybeProgram(), opts);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_TRUE((*prog)->rules.empty());
}

TEST(PlanTest, MaybeRulesBecomeProvenanceRules) {
  Result<CompiledProgramPtr> prog = Compile(protocols::BgpMaybeProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  bool has_eh = false, derives_output = false;
  for (const CompiledRule& cr : (*prog)->rules) {
    if (cr.rule.head.predicate == "eh_br1") has_eh = true;
    if (cr.rule.head.predicate == "outputRoute") derives_output = true;
  }
  EXPECT_TRUE(has_eh);
  // Maybe rules never derive their head; outputRoute stays external.
  EXPECT_FALSE(derives_output);
}

TEST(PlanTest, ReservedPredicatesRejected) {
  const char* src = R"(
    materialize(prov, infinity, infinity, keys(1,2)).
    r1 prov(@X,Y) :- somebase(@X,Y).
  )";
  EXPECT_FALSE(Compile(src).ok());
}

TEST(PlanTest, DuplicateRuleNamesRejectedWithProvenance) {
  const char* src = R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(b, infinity, infinity, keys(1,2)).
    r1 b(@X,Y) :- a(@X,Y).
    r1 a(@X,Y) :- b(@X,Y).
  )";
  EXPECT_FALSE(Compile(src).ok());
}

TEST(PlanTest, DumpShowsRewrittenProgram) {
  Result<CompiledProgramPtr> prog = Compile(protocols::MincostProgram());
  ASSERT_TRUE(prog.ok());
  std::string dump = (*prog)->Dump();
  EXPECT_NE(dump.find("prov("), std::string::npos);
  EXPECT_NE(dump.find("ruleExec("), std::string::npos);
  EXPECT_NE(dump.find("f_mkvid"), std::string::npos);
}

TEST(PlanTest, DumpedProgramsAreValidNdlog) {
  // The rewritten program text (what the demo displays as "the modified
  // program containing the provenance rules") must itself re-compile.
  for (const char* src :
       {protocols::MincostProgram(), protocols::PathVectorProgram(),
        protocols::DsrProgram()}) {
    Result<CompiledProgramPtr> prog = Compile(src);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    CompileOptions no_prov;
    no_prov.provenance = false;  // it already contains the prov rules
    Result<CompiledProgramPtr> again = Compile((*prog)->Dump(), no_prov);
    EXPECT_TRUE(again.ok()) << again.status().ToString();
    if (again.ok()) {
      EXPECT_EQ((*again)->rules.size(), (*prog)->rules.size());
    }
  }
}

TEST(PlanTest, BodyWithoutAtomsRejected) {
  const char* src = R"(
    materialize(t, infinity, infinity, keys(1)).
    r1 t(@X) :- X := @1.
  )";
  // X := @1 binds X, but a rule needs at least one atom to be triggered.
  EXPECT_FALSE(Compile(src).ok());
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
