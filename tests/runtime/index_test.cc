// Secondary-index subsystem: compile-time index selection (bound-position
// analysis in the planner), hash-index maintenance through every table
// mutation path (derivation counting, key replacement, soft-state
// retraction), and probe/scan equivalence of the engine's join loop.
#include <gtest/gtest.h>

#include <set>

#include "src/common/rand.h"
#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"
#include "src/runtime/table.h"

namespace nettrails {
namespace runtime {
namespace {

CompiledProgramPtr MustCompile(const std::string& src,
                               bool provenance = false) {
  CompileOptions opts;
  opts.provenance = provenance;
  Result<CompiledProgramPtr> prog = Compile(src, opts);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return prog.ok() ? *prog : nullptr;
}

/// Checks every secondary index of `table` against a full scan: each stored
/// row must be probe-reachable under its projection, every probe result must
/// match its key, and the total number of indexed handles must equal the
/// number of visible rows (no stale handles).
void ExpectIndexesConsistent(const Table& table) {
  for (size_t id = 0; id < table.num_indexes(); ++id) {
    const std::vector<int>& positions =
        table.IndexPositions(static_cast<int>(id));
    std::set<ValueList, ValueListLess> distinct_keys;
    for (Table::RowHandle row : table.OrderedView()) {
      ValueList probe_key = Table::Project(positions, table.Deref(row).fields);
      const std::vector<Table::RowHandle>* hits =
          table.Probe(static_cast<int>(id), probe_key);
      ASSERT_NE(hits, nullptr)
          << table.name() << " index " << id << ": stored row not probeable";
      bool found = false;
      for (Table::RowHandle h : *hits) {
        if (h == row) found = true;
        EXPECT_EQ(Table::Project(positions, table.Deref(h).fields), probe_key);
      }
      EXPECT_TRUE(found) << table.name() << " index " << id
                         << ": row missing from its bucket";
      distinct_keys.insert(std::move(probe_key));
    }
    size_t total = 0;
    for (const ValueList& key : distinct_keys) {
      total += table.Probe(static_cast<int>(id), key)->size();
    }
    EXPECT_EQ(total, table.size())
        << table.name() << " index " << id << ": stale handles";
  }
}

ndlog::TableInfo MakeInfo(const std::string& name, size_t arity,
                          std::vector<int> keys) {
  ndlog::TableInfo info;
  info.name = name;
  info.arity = arity;
  info.keys = std::move(keys);
  info.materialized = true;
  return info;
}

void ApplyAll(Table* t, const std::vector<TableAction>& actions) {
  for (const TableAction& a : actions) t->Apply(a);
}

TEST(TableIndexTest, AddIndexDedupsAndBuildsFromExistingRows) {
  Table t(MakeInfo("t", 3, {}));
  ApplyAll(&t, t.PlanInsert({Value::Int(1), Value::Int(2), Value::Int(3)}, 1));
  int a = t.AddIndex({0, 1});
  int b = t.AddIndex({1});
  EXPECT_EQ(t.AddIndex({0, 1}), a);
  EXPECT_EQ(t.num_indexes(), 2u);
  const auto* hits = t.Probe(a, {Value::Int(1), Value::Int(2)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(t.Probe(b, {Value::Int(9)}), nullptr);
}

TEST(TableIndexTest, NumericKindsProbeInterchangeably) {
  // MatchAtom compares with Value::operator==, under which Int(2) equals
  // Double(2.0); index probes must behave identically.
  Table t(MakeInfo("t", 2, {}));
  int idx = t.AddIndex({1});
  ApplyAll(&t, t.PlanInsert({Value::Int(1), Value::Double(2.0)}, 1));
  const auto* hits = t.Probe(idx, {Value::Int(2)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 1u);
}

TEST(TableIndexTest, KeyReplacementRetractionKeepsIndexesConsistent) {
  // Proper-subset key: inserting an existing key retracts the displaced
  // tuple; the old row must vanish from every index bucket.
  Table t(MakeInfo("t", 3, {0}));
  int idx = t.AddIndex({2});
  ApplyAll(&t, t.PlanInsert({Value::Int(1), Value::Int(10), Value::Int(7)}, 1));
  ApplyAll(&t, t.PlanInsert({Value::Int(1), Value::Int(20), Value::Int(8)}, 1));
  EXPECT_EQ(t.Probe(idx, {Value::Int(7)}), nullptr);
  const auto* hits = t.Probe(idx, {Value::Int(8)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 1u);
  ExpectIndexesConsistent(t);
}

TEST(TableIndexTest, DerivationCountDecrementToZeroRemovesFromIndexes) {
  Table t(MakeInfo("t", 2, {}));
  int idx = t.AddIndex({0});
  ValueList row{Value::Int(5), Value::Int(6)};
  ApplyAll(&t, t.PlanInsert(row, 2));
  ApplyAll(&t, t.PlanDelete(row, 1));
  ASSERT_NE(t.Probe(idx, {Value::Int(5)}), nullptr);  // count 1: visible
  ApplyAll(&t, t.PlanDelete(row, 1));
  EXPECT_EQ(t.Probe(idx, {Value::Int(5)}), nullptr);  // count 0: gone
  ExpectIndexesConsistent(t);
}

TEST(TableIndexTest, RandomOpsKeepProbeEqualToScan) {
  // Property test over both storage semantics: after every random
  // insert/delete, every index agrees exactly with a full scan.
  for (bool replacing : {false, true}) {
    Table t(MakeInfo("t", 3, replacing ? std::vector<int>{0, 1}
                                       : std::vector<int>{}));
    t.AddIndex({0});
    t.AddIndex({1, 2});
    t.AddIndex({0, 1, 2});
    Rng rng(replacing ? 42 : 7);
    for (int step = 0; step < 500; ++step) {
      ValueList fields{Value::Int(rng.NextInRange(0, 5)),
                       Value::Int(rng.NextInRange(0, 5)),
                       Value::Int(rng.NextInRange(0, 2))};
      if (rng.NextBool(0.4)) {
        ApplyAll(&t, t.PlanDelete(fields, rng.NextInRange(1, 2)));
      } else {
        ApplyAll(&t, t.PlanInsert(fields, rng.NextInRange(1, 2)));
      }
      ExpectIndexesConsistent(t);
    }
    EXPECT_GT(t.size(), 0u);
  }
}

TEST(PlanIndexTest, BoundPositionsDerivedFromDeltaBindings) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(link, infinity, infinity, keys(1,2,3)).
    materialize(path, infinity, infinity, keys(1,2,3)).
    materialize(best, infinity, infinity, keys(1,2)).
    materialize(chosen, infinity, infinity, keys(1,2,3)).
    p1 path(@X,Y,C) :- link(@X,Y,C).
    p2 path(@X,Z,C) :- link(@X,Y,C1), path(@Y,Z,C2), C := C1 + C2.
    p3 chosen(@X,Z,C) :- best(@X,Z,C), path(@X,Z,C).
  )");
  ASSERT_NE(prog, nullptr);
  // After localization every body atom shares the rule's location variable,
  // which the delta atom always binds — so every non-delta materialized
  // atom is either probed through an index on its non-location bound
  // positions or a planner-proven broadcast (never an unplanned scan). The
  // location attribute itself must never appear in an index key: it is
  // constant across a node-local table.
  bool saw_index = false, saw_broadcast = false;
  for (const CompiledRule& cr : prog->rules) {
    for (const auto& [delta_term, plans] : cr.join_plans) {
      for (size_t i = 0; i < plans.size(); ++i) {
        if (i == delta_term) continue;
        const ndlog::Atom* atom =
            std::get_if<ndlog::Atom>(&cr.rule.body[i]);
        if (atom == nullptr) continue;
        const ndlog::TableInfo* info = prog->FindTable(atom->predicate);
        if (info == nullptr || !info->materialized) continue;
        EXPECT_TRUE(plans[i].index_id >= 0 || plans[i].broadcast)
            << cr.rule.name << ": localized atoms always bind at least "
            << "the location variable";
        if (plans[i].index_id >= 0) {
          saw_index = true;
          ASSERT_FALSE(plans[i].bound_positions.empty());
          EXPECT_GT(plans[i].bound_positions[0], 0)
              << "location attribute must not be an index key";
          const std::vector<std::vector<int>>& specs =
              prog->table_indexes.at(atom->predicate);
          EXPECT_EQ(specs[static_cast<size_t>(plans[i].index_id)],
                    plans[i].bound_positions);
        } else {
          saw_broadcast = true;
        }
      }
    }
  }
  // p3's probes bind (dst, cost) beyond the location: indexed. p2's
  // localized probes bind only the location: broadcast.
  EXPECT_TRUE(saw_index);
  EXPECT_TRUE(saw_broadcast);
}

// ------------------------------------------------------------------------
// Engine-level equivalence: indexed evaluation must produce exactly the
// same fixpoint as scan evaluation, and on the shipped protocol programs
// the scan path must be cold (index_scan_fallbacks == 0).

struct Net {
  net::Simulator sim;
  net::Topology topo;
  std::vector<std::unique_ptr<Engine>> engines;
};

std::unique_ptr<Net> RunProtocol(const char* program, bool provenance,
                                 bool use_indexes, size_t n, uint64_t seed) {
  CompileOptions copts;
  copts.provenance = provenance;
  Result<CompiledProgramPtr> prog = Compile(program, copts);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return nullptr;
  auto net = std::make_unique<Net>();
  Rng rng(seed);
  net->topo = net::MakeRandomConnected(n, 0.2, &rng, 5);
  EngineOptions eopts;
  eopts.use_secondary_indexes = use_indexes;
  net->engines = protocols::MakeEngines(&net->sim, net->topo, *prog, eopts);
  EXPECT_TRUE(
      protocols::InstallLinks(net->topo, &net->engines, &net->sim).ok());
  return net;
}

void ExpectSameState(const Net& a, const Net& b) {
  ASSERT_EQ(a.engines.size(), b.engines.size());
  for (size_t i = 0; i < a.engines.size(); ++i) {
    const CompiledProgram& prog = a.engines[i]->program();
    for (const auto& [name, info] : prog.tables) {
      if (!info.materialized) continue;
      std::vector<Tuple> at = a.engines[i]->TableContents(name);
      std::vector<Tuple> bt = b.engines[i]->TableContents(name);
      ASSERT_EQ(at.size(), bt.size()) << "node " << i << " table " << name;
      for (size_t j = 0; j < at.size(); ++j) {
        EXPECT_EQ(at[j], bt[j]) << "node " << i << " table " << name;
      }
    }
  }
}

void CheckProtocol(const char* program, bool provenance, size_t n,
                   bool expect_fewer_candidates) {
  std::unique_ptr<Net> indexed = RunProtocol(program, provenance, true, n, 3);
  std::unique_ptr<Net> scanned = RunProtocol(program, provenance, false, n, 3);
  ASSERT_NE(indexed, nullptr);
  ASSERT_NE(scanned, nullptr);
  ExpectSameState(*indexed, *scanned);
  uint64_t probes = 0, broadcasts = 0, fallbacks = 0;
  uint64_t indexed_rows = 0, scanned_rows = 0;
  for (const auto& e : indexed->engines) {
    probes += e->stats().index_probes;
    broadcasts += e->stats().broadcast_probes;
    fallbacks += e->stats().index_scan_fallbacks;
    indexed_rows += e->stats().join_probes;
  }
  for (const auto& e : scanned->engines) {
    scanned_rows += e->stats().join_probes;
  }
  EXPECT_GT(probes + broadcasts, 0u);
  EXPECT_EQ(fallbacks, 0u) << "scan path must be cold on shipped programs";
  // Indexes never examine more candidate rows than a scan. Mincost's joins
  // bind only the location attribute (per-node fan-out: every row is a
  // genuine candidate — planned broadcasts), so candidates are equal
  // there; path-vector's bestpath join binds (loc, dst, cost), which is
  // strictly selective over the path table.
  if (expect_fewer_candidates) {
    EXPECT_GT(probes, 0u);
    EXPECT_LT(indexed_rows, scanned_rows);
  } else {
    EXPECT_LE(indexed_rows, scanned_rows);
  }
  for (const auto& e : indexed->engines) {
    for (const auto& [name, info] : e->program().tables) {
      const Table* t = e->GetTable(name);
      if (t != nullptr) ExpectIndexesConsistent(*t);
    }
  }
}

TEST(EngineIndexTest, MincostMatchesScanAndNeverFallsBack) {
  CheckProtocol(protocols::MincostProgram(), /*provenance=*/true, 12,
                /*expect_fewer_candidates=*/false);
}

TEST(EngineIndexTest, PathVectorMatchesScanAndNeverFallsBack) {
  CheckProtocol(protocols::PathVectorProgram(), /*provenance=*/true, 8,
                /*expect_fewer_candidates=*/true);
}

TEST(EngineIndexTest, BgpMaybeMatchesScanAndNeverFallsBack) {
  // The maybe rule's eh view joins outputRoute deltas against inputRoute
  // with (AS, Prefix) bound — a selective two-column index.
  Result<CompiledProgramPtr> prog = Compile(protocols::BgpMaybeProgram());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, *prog);
  for (int64_t prefix = 100; prefix < 110; ++prefix) {
    ASSERT_TRUE(
        engine
            .Insert(Tuple("inputRoute",
                          {Value::Address(0), Value::Address(5),
                           Value::Int(prefix),
                           Value::List({Value::Address(5), Value::Int(prefix)})}))
            .ok());
    ASSERT_TRUE(
        engine
            .Insert(Tuple("outputRoute",
                          {Value::Address(0), Value::Address(3),
                           Value::Int(prefix),
                           Value::List({Value::Address(0), Value::Address(5),
                                        Value::Int(prefix)})}))
            .ok());
  }
  sim.Run();
  EXPECT_GT(engine.stats().index_probes, 0u);
  EXPECT_EQ(engine.stats().index_scan_fallbacks, 0u);
  for (const auto& [name, info] : engine.program().tables) {
    const Table* t = engine.GetTable(name);
    if (t != nullptr) ExpectIndexesConsistent(*t);
  }
}

TEST(EngineIndexTest, DeletionCascadeMatchesScan) {
  std::unique_ptr<Net> indexed =
      RunProtocol(protocols::MincostProgram(), true, true, 10, 11);
  std::unique_ptr<Net> scanned =
      RunProtocol(protocols::MincostProgram(), true, false, 10, 11);
  ASSERT_NE(indexed, nullptr);
  ASSERT_NE(scanned, nullptr);
  const net::CostedLink& link = indexed->topo.links.front();
  ASSERT_TRUE(protocols::FailLink(static_cast<NodeId>(link.a),
                                  static_cast<NodeId>(link.b), link.cost,
                                  &indexed->engines, &indexed->sim)
                  .ok());
  ASSERT_TRUE(protocols::FailLink(static_cast<NodeId>(link.a),
                                  static_cast<NodeId>(link.b), link.cost,
                                  &scanned->engines, &scanned->sim)
                  .ok());
  ExpectSameState(*indexed, *scanned);
  for (const auto& e : indexed->engines) {
    for (const auto& [name, info] : e->program().tables) {
      const Table* t = e->GetTable(name);
      if (t != nullptr) ExpectIndexesConsistent(*t);
    }
  }
}

TEST(EngineIndexTest, SoftStateFifoEvictionKeepsIndexesConsistent) {
  // max_size 3 with FIFO eviction; the derived view joins back against the
  // evicting table, so the join loop probes indexes whose rows are being
  // evicted by the cascade.
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, infinity, 3, keys(1,2)).
    materialize(pair, infinity, infinity, keys(1,2,3)).
    r1 pair(@X,V,W) :- obs(@X,V), obs(@X,W).
  )");
  ASSERT_NE(prog, nullptr);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  for (int64_t v = 0; v < 10; ++v) {
    ASSERT_TRUE(
        engine.Insert(Tuple("obs", {Value::Address(0), Value::Int(v)})).ok());
    const Table* obs = engine.GetTable("obs");
    ASSERT_NE(obs, nullptr);
    EXPECT_LE(obs->size(), 3u);
    ExpectIndexesConsistent(*obs);
    ExpectIndexesConsistent(*engine.GetTable("pair"));
  }
  EXPECT_GT(engine.stats().evictions, 0u);
  EXPECT_EQ(engine.stats().index_scan_fallbacks, 0u);
  // Fixpoint sanity: 3 obs rows -> 9 pairs.
  EXPECT_EQ(engine.TableContents("pair").size(), 9u);
}

TEST(EngineIndexTest, SoftStateExpiryKeepsIndexesConsistent) {
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(obs, 5, infinity, keys(1,2)).
    materialize(seen, infinity, infinity, keys(1,2)).
    r1 seen(@X,V) :- obs(@X,V).
  )");
  ASSERT_NE(prog, nullptr);
  net::Simulator sim;
  sim.AddNode();
  Engine engine(&sim, 0, prog);
  ASSERT_TRUE(
      engine.Insert(Tuple("obs", {Value::Address(0), Value::Int(1)})).ok());
  sim.RunUntil(6 * net::kSecond);
  EXPECT_EQ(engine.stats().expirations, 1u);
  const Table* obs = engine.GetTable("obs");
  EXPECT_EQ(obs->size(), 0u);
  ExpectIndexesConsistent(*obs);
  ExpectIndexesConsistent(*engine.GetTable("seen"));
}

TEST(EngineIndexTest, ScanModeCountsFallbacksAndMatchesIndexedMode) {
  // With use_secondary_indexes off every atom takes the (counted) scan
  // path; the fixpoint must be unchanged.
  CompiledProgramPtr prog = MustCompile(R"(
    materialize(a, infinity, infinity, keys(1,2)).
    materialize(c, infinity, infinity, keys(1,2,3)).
    r1 c(@X,V,W) :- a(@X,V), a(@X,W).
  )");
  ASSERT_NE(prog, nullptr);
  net::Simulator sim;
  sim.AddNode();
  EngineOptions scan_opts;
  scan_opts.use_secondary_indexes = false;
  Engine engine(&sim, 0, prog, scan_opts);
  ASSERT_TRUE(
      engine.Insert(Tuple("a", {Value::Address(0), Value::Int(1)})).ok());
  ASSERT_TRUE(
      engine.Insert(Tuple("a", {Value::Address(0), Value::Int(2)})).ok());
  EXPECT_EQ(engine.TableContents("c").size(), 4u);
  EXPECT_GT(engine.stats().index_scan_fallbacks, 0u);
  EXPECT_EQ(engine.stats().index_probes, 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
