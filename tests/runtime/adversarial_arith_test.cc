// Adversarial-arithmetic fixture: an NDlog program whose rules funnel
// attacker-controlled int64 values through every guarded arithmetic path —
// division, modulo, negation, f_abs, and overflow-checked + - *. Run under
// the CI sanitize job (ctest -R adversarial) this proves the guards turn
// each would-be UB/SIGFPE case into a counted RuntimeError while leaving
// the defined cases exact, in both serial and batched pipelines.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "src/net/simulator.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace runtime {
namespace {

const int64_t kIntMin = std::numeric_limits<int64_t>::min();
const int64_t kIntMax = std::numeric_limits<int64_t>::max();

constexpr char kProgram[] = R"(
  materialize(input, infinity, infinity, keys(1,2,3)).
  materialize(quot, infinity, infinity, keys(1,2,3)).
  materialize(rem, infinity, infinity, keys(1,2,3)).
  materialize(neg, infinity, infinity, keys(1,2)).
  materialize(sum, infinity, infinity, keys(1,2,3)).
  materialize(prod, infinity, infinity, keys(1,2,3)).
  materialize(mag, infinity, infinity, keys(1,2)).
  rq quot(@X, A, Q) :- input(@X, A, B), Q := A / B.
  rr rem(@X, A, R) :- input(@X, A, B), R := A % B.
  rn neg(@X, N) :- input(@X, A, B), N := -A.
  rs sum(@X, A, S) :- input(@X, A, B), S := A + B.
  rp prod(@X, A, P) :- input(@X, A, B), P := A * B.
  rm mag(@X, M) :- input(@X, A, B), M := f_abs(A).
)";

Tuple In(int64_t a, int64_t b) {
  return Tuple("input", {Value::Address(1), Value::Int(a), Value::Int(b)});
}

struct Fixture {
  net::Simulator sim;
  std::unique_ptr<Engine> engine;
};

std::unique_ptr<Fixture> Build(uint32_t batch_size) {
  Result<CompiledProgramPtr> prog = Compile(kProgram);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return nullptr;
  auto fx = std::make_unique<Fixture>();
  EngineOptions opts;
  opts.batch_size = batch_size;
  fx->engine = std::make_unique<Engine>(&fx->sim, 1, *prog, opts);
  return fx;
}

void InsertAdversarialRows(Engine* engine) {
  // Each row steers one or more rules into a guarded edge case.
  ASSERT_TRUE(engine->Insert(In(kIntMin, -1)).ok());  // div/neg/prod/sum trip
  ASSERT_TRUE(engine->Insert(In(kIntMax, 1)).ok());   // sum trips, rest exact
  ASSERT_TRUE(engine->Insert(In(1, 0)).ok());         // div/mod by zero
  ASSERT_TRUE(engine->Insert(In(kIntMax, 2)).ok());   // prod trips
  ASSERT_TRUE(engine->Insert(In(6, 3)).ok());         // fully benign
}

TEST(AdversarialArithTest, GuardsTurnUbIntoEvalErrors) {
  std::unique_ptr<Fixture> fx = Build(/*batch_size=*/1);
  ASSERT_NE(fx, nullptr);
  Engine& e = *fx->engine;
  InsertAdversarialRows(&e);
  fx->sim.Run();

  // The engine survived (the whole point under UBSan) and counted every
  // refused derivation instead of crashing or wrapping.
  EXPECT_FALSE(e.overflowed());
  EXPECT_GT(e.stats().eval_errors, 0u);

  // Benign row: every rule derived the exact result.
  EXPECT_TRUE(e.HasTuple(
      Tuple("quot", {Value::Address(1), Value::Int(6), Value::Int(2)})));
  EXPECT_TRUE(e.HasTuple(
      Tuple("rem", {Value::Address(1), Value::Int(6), Value::Int(0)})));
  EXPECT_TRUE(e.HasTuple(Tuple("neg", {Value::Address(1), Value::Int(-6)})));
  EXPECT_TRUE(e.HasTuple(
      Tuple("sum", {Value::Address(1), Value::Int(6), Value::Int(9)})));
  EXPECT_TRUE(e.HasTuple(
      Tuple("prod", {Value::Address(1), Value::Int(6), Value::Int(18)})));
  EXPECT_TRUE(e.HasTuple(Tuple("mag", {Value::Address(1), Value::Int(6)})));

  // (INT64_MIN, -1): quot refused (INT64_MIN / -1 unrepresentable), rem is
  // the defined 0, neg/f_abs refused, sum (MIN + -1) and prod (MIN * -1)
  // refused.
  EXPECT_FALSE(e.HasTuple(Tuple(
      "quot",
      {Value::Address(1), Value::Int(kIntMin), Value::Int(kIntMin / -2)})));
  EXPECT_TRUE(e.HasTuple(
      Tuple("rem", {Value::Address(1), Value::Int(kIntMin), Value::Int(0)})));
  EXPECT_FALSE(
      e.HasTuple(Tuple("mag", {Value::Address(1), Value::Int(kIntMin)})));

  // (INT64_MAX, 1): quot/rem/neg/prod/f_abs exact, sum refused.
  EXPECT_TRUE(e.HasTuple(Tuple(
      "quot", {Value::Address(1), Value::Int(kIntMax), Value::Int(kIntMax)})));
  EXPECT_TRUE(e.HasTuple(
      Tuple("neg", {Value::Address(1), Value::Int(-kIntMax)})));
  EXPECT_TRUE(e.HasTuple(Tuple(
      "prod", {Value::Address(1), Value::Int(kIntMax), Value::Int(kIntMax)})));
  EXPECT_TRUE(e.HasTuple(Tuple("mag", {Value::Address(1), Value::Int(kIntMax)})));
  EXPECT_FALSE(e.HasTuple(Tuple(
      "sum", {Value::Address(1), Value::Int(kIntMax), Value::Int(kIntMin)})));

  // (1, 0): division and modulo by zero refused.
  size_t quot_rows = e.TableContents("quot").size();
  for (const Tuple& t : e.TableContents("quot")) {
    EXPECT_NE(t.fields()[1], Value::Int(1));
  }
  EXPECT_GT(quot_rows, 0u);
}

TEST(AdversarialArithTest, SerialAndBatchedAgreeOnGuardedPrograms) {
  std::unique_ptr<Fixture> serial = Build(/*batch_size=*/1);
  std::unique_ptr<Fixture> batched = Build(/*batch_size=*/64);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(batched, nullptr);
  InsertAdversarialRows(serial->engine.get());
  InsertAdversarialRows(batched->engine.get());
  serial->sim.Run();
  batched->sim.Run();
  for (const char* table : {"quot", "rem", "neg", "sum", "prod", "mag"}) {
    EXPECT_EQ(serial->engine->TableContents(table),
              batched->engine->TableContents(table))
        << table;
  }
  EXPECT_EQ(serial->engine->stats().eval_errors,
            batched->engine->stats().eval_errors);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
