// Batched-vs-serial equivalence harness: the engine's DeltaBatch pipeline
// (EngineOptions::batch_size > 1) must reach exactly the state the serial
// pipeline (batch_size = 1, the pre-batching engine preserved verbatim)
// reaches — identical table fixpoints (which subsumes identical aggregate
// output values: aggregate outputs are rows of mincost / bestcost), and
// bit-identical distributed provenance graphs — under randomized seeded
// churn: link flaps and failure bursts over the path-vector and MINCOST
// protocols, and route announce/withdraw churn over the legacy-BGP maybe
// program. CI runs this suite via `ctest -R equivalence` with the three
// fixed seeds below.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/provenance/store.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace runtime {
namespace {

/// MINCOST with the distance-vector "infinity" lowered from 255 to 24.
/// Identical rules to protocols::MincostProgram(); the lower bound only
/// shortens the count-to-infinity transient when a failure burst
/// temporarily partitions the 6-node test topology (with the shipped 255
/// bound a partition makes every surviving pair count up by link-cost
/// steps, which swamps the equivalence runs without exercising anything
/// new — the transient is protocol behaviour, not engine behaviour).
const char* kBoundedMincost = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2)).
    mc1 cost(@X,Y,C) :- link(@X,Y,C).
    mc2 cost(@X,Z,C) :- link(@X,Y,C1), mincost(@Y,Z,C2), X != Z,
                        C := C1 + C2, C < 24.
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
)";

struct WorldStats {
  uint64_t batches_processed = 0;
  uint64_t batched_tuples = 0;
  uint64_t trigger_dispatches = 0;
  uint64_t batch_messages_sent = 0;
  bool overflowed = false;
};

/// Full-system fixpoint fingerprint: every materialized table's visible
/// tuples with derivation counts (deterministic order) per node, plus each
/// node's canonical provenance graph.
std::string Fingerprint(
    const std::vector<std::unique_ptr<Engine>>& engines,
    const std::vector<std::unique_ptr<provenance::ProvStore>>& stores) {
  std::string out;
  for (const auto& engine : engines) {
    out += "== node " + std::to_string(engine->id()) + "\n";
    for (const auto& [name, info] : engine->program().tables) {
      if (!info.materialized) continue;
      for (const Tuple& t : engine->TableContents(name)) {
        out += t.ToString() + " x" + std::to_string(engine->CountOf(t)) + "\n";
      }
    }
  }
  for (const auto& store : stores) {
    out += "== provenance node " + std::to_string(store->node()) + "\n";
    out += store->CanonicalGraph();
  }
  return out;
}

WorldStats Collect(const std::vector<std::unique_ptr<Engine>>& engines) {
  WorldStats ws;
  for (const auto& e : engines) {
    ws.batches_processed += e->stats().batches_processed;
    ws.batched_tuples += e->stats().batched_tuples;
    ws.trigger_dispatches += e->stats().trigger_dispatches;
    ws.batch_messages_sent += e->stats().batch_messages_sent;
    ws.overflowed |= e->overflowed();
  }
  return ws;
}

/// Seeded link churn over a routing protocol: converge a random connected
/// topology, then apply single flaps and multi-link failure bursts. The Rng
/// consumption is engine-state-independent, so every batch_size replays the
/// identical schedule.
std::string RunLinkChurn(const char* program, uint64_t seed,
                         uint32_t batch_size, WorldStats* out_stats) {
  Result<CompiledProgramPtr> prog = Compile(program);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return "";

  Rng rng(seed);
  net::Topology topo = net::MakeRandomConnected(6, 0.35, &rng, 3);
  net::Simulator sim;
  EngineOptions opts;
  opts.batch_size = batch_size;
  auto engines = protocols::MakeEngines(&sim, topo, *prog, opts);
  std::vector<std::unique_ptr<provenance::ProvStore>> stores;
  for (const auto& e : engines) {
    stores.push_back(std::make_unique<provenance::ProvStore>(e.get()));
  }
  EXPECT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());

  std::vector<bool> up(topo.links.size(), true);
  for (int op = 0; op < 14; ++op) {
    // Burst: flip 1-3 links before letting the network reconverge, so
    // retraction and re-derivation cascades overlap (deep batches).
    size_t burst = 1 + rng.NextBelow(3);
    for (size_t b = 0; b < burst; ++b) {
      size_t i = rng.NextBelow(topo.links.size());
      const net::CostedLink& l = topo.links[i];
      if (up[i]) {
        EXPECT_TRUE(protocols::FailLink(l.a, l.b, l.cost, &engines, &sim,
                                        /*run_to_quiescence=*/false)
                        .ok());
      } else {
        EXPECT_TRUE(protocols::RecoverLink(l.a, l.b, l.cost, &engines, &sim,
                                           /*run_to_quiescence=*/false)
                        .ok());
      }
      up[i] = !up[i];
    }
    sim.Run();
  }
  // Leave no link down at the end so every node holds interesting state.
  for (size_t i = 0; i < topo.links.size(); ++i) {
    if (!up[i]) {
      const net::CostedLink& l = topo.links[i];
      EXPECT_TRUE(protocols::RecoverLink(l.a, l.b, l.cost, &engines, &sim,
                                         /*run_to_quiescence=*/false)
                      .ok());
    }
  }
  sim.Run();

  *out_stats = Collect(engines);
  EXPECT_FALSE(out_stats->overflowed);
  return Fingerprint(engines, stores);
}

/// Seeded announce/withdraw churn over the legacy-BGP maybe program:
/// inputRoute / outputRoute inserts (some output routes genuinely extending
/// an input route, exercising the maybe join), key-replacement updates, and
/// deletes of still-live tuples.
std::string RunBgpChurn(uint64_t seed, uint32_t batch_size,
                        WorldStats* out_stats) {
  Result<CompiledProgramPtr> prog = Compile(protocols::BgpMaybeProgram());
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return "";

  Rng rng(seed);
  net::Simulator sim;
  sim.AddNode();
  EngineOptions opts;
  opts.batch_size = batch_size;
  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(std::make_unique<Engine>(&sim, 0, *prog, opts));
  Engine& engine = *engines[0];
  std::vector<std::unique_ptr<provenance::ProvStore>> stores;
  stores.push_back(std::make_unique<provenance::ProvStore>(&engine));

  auto route = [&](int64_t first, int64_t len) {
    ValueList hops;
    for (int64_t i = 0; i < len; ++i) {
      hops.push_back(Value::Address(static_cast<NodeId>(first + i)));
    }
    return Value::List(std::move(hops));
  };
  std::vector<Tuple> live;
  for (int op = 0; op < 60; ++op) {
    if (!live.empty() && rng.NextBool(0.3)) {
      size_t i = rng.NextBelow(live.size());
      if (engine.HasTuple(live[i])) {
        EXPECT_TRUE(engine.Delete(live[i]).ok());
      }
      live.erase(live.begin() + static_cast<long>(i));
    } else {
      int64_t router = rng.NextInRange(1, 3);
      int64_t prefix = rng.NextInRange(10, 13);
      Value in_route = route(rng.NextInRange(4, 6), rng.NextInRange(1, 3));
      Tuple in("inputRoute", {Value::Address(0), Value::Int(router),
                              Value::Int(prefix), in_route});
      EXPECT_TRUE(engine.Insert(in).ok());
      live.push_back(in);
      if (rng.NextBool(0.7)) {
        // Extend: prepend this AS (node 0), matching f_isExtend.
        ValueList extended{Value::Address(0)};
        for (const Value& hop : in_route.as_list()) extended.push_back(hop);
        Tuple out_t("outputRoute",
                    {Value::Address(0), Value::Int(router), Value::Int(prefix),
                     Value::List(std::move(extended))});
        EXPECT_TRUE(engine.Insert(out_t).ok());
        live.push_back(out_t);
      }
    }
    sim.Run();
  }

  *out_stats = Collect(engines);
  EXPECT_FALSE(out_stats->overflowed);
  return Fingerprint(engines, stores);
}

struct EqCase {
  const char* name;
  const char* program;  // nullptr selects the BGP churn driver
  uint64_t seed;
};

class BatchEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(BatchEquivalence, BatchedFixpointMatchesSerial) {
  const EqCase& c = GetParam();
  auto run = [&](uint32_t batch_size, WorldStats* ws) {
    return c.program == nullptr
               ? RunBgpChurn(c.seed, batch_size, ws)
               : RunLinkChurn(c.program, c.seed, batch_size, ws);
  };
  WorldStats serial_ws, b8_ws, b64_ws;
  std::string serial = run(1, &serial_ws);
  std::string batched8 = run(8, &b8_ws);
  std::string batched64 = run(64, &b64_ws);
  ASSERT_FALSE(serial.empty());

  EXPECT_EQ(batched8, serial) << "batch_size=8 diverged from serial";
  EXPECT_EQ(batched64, serial) << "batch_size=64 diverged from serial";

  // The serial anchor forms no batches; the batched runs must actually
  // exercise the pipeline (multi-tuple batches, not just runs of one).
  EXPECT_EQ(serial_ws.batches_processed, 0u);
  EXPECT_GT(b8_ws.batches_processed, 0u);
  EXPECT_GT(b8_ws.batched_tuples, b8_ws.batches_processed);
  EXPECT_GT(b64_ws.batched_tuples, b64_ws.batches_processed);
  // Amortization: batching must strictly reduce trigger dispatches.
  EXPECT_LT(b64_ws.trigger_dispatches, serial_ws.trigger_dispatches);
}

INSTANTIATE_TEST_SUITE_P(
    SeededChurn, BatchEquivalence,
    ::testing::Values(
        EqCase{"mincost_s1", kBoundedMincost, 101},
        EqCase{"mincost_s2", kBoundedMincost, 202},
        EqCase{"mincost_s3", kBoundedMincost, 303},
        EqCase{"pathvector_s1", protocols::PathVectorProgram(), 101},
        EqCase{"pathvector_s2", protocols::PathVectorProgram(), 202},
        EqCase{"pathvector_s3", protocols::PathVectorProgram(), 303},
        EqCase{"bgp_s1", nullptr, 101}, EqCase{"bgp_s2", nullptr, 202},
        EqCase{"bgp_s3", nullptr, 303}),
    [](const ::testing::TestParamInfo<EqCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// EngineStats batch counters.

TEST(BatchStatsTest, DeltasEnqueuedCountsTuplesNotBatches) {
  // One gossip event fans out into 3 remote deltas: the batched sender
  // frames them into a single message, but the receiver must still count 3
  // enqueued deltas (plus nothing else on the sender beyond the event).
  Result<CompiledProgramPtr> prog = Compile(R"(
    materialize(item, infinity, infinity, keys(1,2)).
    materialize(told, infinity, infinity, keys(1,2)).
    r1 told(@Y,I) :- gossip(@X,Y), item(@X,I).
  )",
                                            NoProvenanceOptions());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  for (uint32_t batch_size : {1u, 64u}) {
    net::Simulator sim;
    sim.AddNode();
    sim.AddNode();
    sim.AddLink(0, 1);
    EngineOptions opts;
    opts.batch_size = batch_size;
    Engine sender(&sim, 0, *prog, opts);
    Engine receiver(&sim, 1, *prog, opts);
    for (int64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          sender.Insert(Tuple("item", {Value::Address(0), Value::Int(i)}))
              .ok());
    }
    ASSERT_TRUE(
        sender
            .InsertEvent(Tuple("gossip", {Value::Address(0), Value::Address(1)}))
            .ok());
    sim.Run();
    EXPECT_EQ(receiver.GetTable("told")->size(), 3u);
    // Per-tuple accounting regardless of framing.
    EXPECT_EQ(receiver.stats().deltas_enqueued, 3u) << "batch=" << batch_size;
    EXPECT_EQ(sender.stats().tuples_shipped, 3u) << "batch=" << batch_size;
    if (batch_size == 1) {
      EXPECT_EQ(sender.stats().messages_sent, 3u);
      EXPECT_EQ(sender.stats().batch_messages_sent, 0u);
      EXPECT_EQ(receiver.stats().batches_processed, 0u);
    } else {
      // One frame carrying all 3 deltas; the receiver drains them as one
      // DeltaBatch.
      EXPECT_EQ(sender.stats().messages_sent, 1u);
      EXPECT_EQ(sender.stats().batch_messages_sent, 1u);
      EXPECT_EQ(receiver.stats().batches_processed, 1u);
      EXPECT_EQ(receiver.stats().batched_tuples, 3u);
    }
  }
}

TEST(BatchStatsTest, BatchesProcessedAndDispatchAmortization) {
  // A local fan-out: one trigger derives 8 same-table tuples, so the
  // batched engine drains them as one batch (1 trigger dispatch) while the
  // serial engine dispatches 8 times.
  Result<CompiledProgramPtr> prog = Compile(R"(
    materialize(item, infinity, infinity, keys(1,2)).
    materialize(copy, infinity, infinity, keys(1,2)).
    materialize(twice, infinity, infinity, keys(1,2)).
    r1 copy(@X,I) :- burst(@X,N), item(@X,I).
    r2 twice(@X,I2) :- copy(@X,I), I2 := I * 2.
  )",
                                            NoProvenanceOptions());
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto dispatches = [&](uint32_t batch_size, EngineStats* stats) {
    net::Simulator sim;
    sim.AddNode();
    EngineOptions opts;
    opts.batch_size = batch_size;
    Engine engine(&sim, 0, *prog, opts);
    for (int64_t i = 0; i < 8; ++i) {
      EXPECT_TRUE(
          engine.Insert(Tuple("item", {Value::Address(0), Value::Int(i)}))
              .ok());
    }
    EngineStats before = engine.stats();  // the item inserts batch too
    EXPECT_TRUE(
        engine.InsertEvent(Tuple("burst", {Value::Address(0), Value::Int(1)}))
            .ok());
    sim.Run();
    EXPECT_EQ(engine.GetTable("twice")->size(), 8u);
    EngineStats after = engine.stats();
    stats->batches_processed =
        after.batches_processed - before.batches_processed;
    stats->batched_tuples = after.batched_tuples - before.batched_tuples;
    return after.trigger_dispatches - before.trigger_dispatches;
  };
  EngineStats serial_stats, batched_stats;
  uint64_t serial = dispatches(1, &serial_stats);
  uint64_t batched = dispatches(64, &batched_stats);
  // Serial: 1 event + 8 copy + 8 twice = 17 dispatches. Batched: 1 event
  // batch + 1 copy batch + 1 twice batch = 3.
  EXPECT_EQ(serial, 17u);
  EXPECT_EQ(batched, 3u);
  EXPECT_EQ(serial_stats.batches_processed, 0u);
  EXPECT_EQ(batched_stats.batches_processed, 3u);
  EXPECT_EQ(batched_stats.batched_tuples, 17u);
}

}  // namespace
}  // namespace runtime
}  // namespace nettrails
