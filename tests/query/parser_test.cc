#include "src/query/parser.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace query {
namespace {

TEST(QueryParserTest, LineageQuery) {
  Result<ParsedQuery> q = ParseQuery("LINEAGE OF mincost(@0,@3,6)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->options.type, QueryType::kLineage);
  EXPECT_EQ(q->target.name(), "mincost");
  EXPECT_EQ(q->target.Location(), 0u);
}

TEST(QueryParserTest, NodesAndCountQueries) {
  EXPECT_EQ(ParseQuery("NODES OF t(@1,2)")->options.type,
            QueryType::kNodeSet);
  EXPECT_EQ(ParseQuery("COUNT OF t(@1,2)")->options.type,
            QueryType::kDerivCount);
}

TEST(QueryParserTest, KeywordsCaseInsensitive) {
  Result<ParsedQuery> q = ParseQuery("lineage of t(@1,2) nocache");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->options.type, QueryType::kLineage);
  EXPECT_FALSE(q->options.use_cache);
}

TEST(QueryParserTest, TupleWithListsAndSpaces) {
  Result<ParsedQuery> q =
      ParseQuery("COUNT OF path(@0, @3, 3, [@0, @1, @3])");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->target.arity(), 4u);
  EXPECT_TRUE(q->target.field(3).is_list());
}

TEST(QueryParserTest, AllOptions) {
  Result<ParsedQuery> q = ParseQuery(
      "COUNT OF t(@1,2) SEQUENTIAL NOCACHE NOMAYBE THRESHOLD 4 DEPTH 16");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->options.traversal, Traversal::kSequential);
  EXPECT_FALSE(q->options.use_cache);
  EXPECT_FALSE(q->options.include_maybe);
  EXPECT_EQ(q->options.count_threshold, 4);
  EXPECT_EQ(q->options.max_depth, 16u);
}

TEST(QueryParserTest, ParallelIsDefaultAndExplicit) {
  Result<ParsedQuery> q = ParseQuery("COUNT OF t(@1,2) PARALLEL");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->options.traversal, Traversal::kParallel);
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("LINEAGE t(@1,2)").ok());          // missing OF
  EXPECT_FALSE(ParseQuery("EXPLAIN OF t(@1,2)").ok());       // unknown type
  EXPECT_FALSE(ParseQuery("LINEAGE OF notatuple").ok());     // bad tuple
  EXPECT_FALSE(ParseQuery("LINEAGE OF t(1,2)").ok());        // no location
  EXPECT_FALSE(ParseQuery("LINEAGE OF t(@1,2) BOGUS").ok()); // bad option
  EXPECT_FALSE(ParseQuery("COUNT OF t(@1,2) THRESHOLD").ok());
  EXPECT_FALSE(ParseQuery("COUNT OF t(@1,2) THRESHOLD x").ok());
  EXPECT_FALSE(ParseQuery("COUNT OF t(@1,2) THRESHOLD -1").ok());
  EXPECT_FALSE(ParseQuery("COUNT OF t(@1,2) DEPTH 0").ok());
  EXPECT_FALSE(ParseQuery("LINEAGE OF t(@1,[2)").ok());      // unbalanced
  EXPECT_FALSE(ParseQuery("LINEAGE OF t(@1,\"x)").ok());     // open string
}

TEST(QueryParserTest, FormatRoundTrips) {
  const char* queries[] = {
      "LINEAGE OF mincost(@0,@3,6)",
      "NODES OF t(@1,2) NOCACHE",
      "COUNT OF t(@1,2) SEQUENTIAL THRESHOLD 4 DEPTH 16",
      "COUNT OF path(@0,@3,3,[@0,@1,@3]) NOMAYBE",
  };
  for (const char* text : queries) {
    Result<ParsedQuery> q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    std::string formatted = FormatQuery(*q);
    Result<ParsedQuery> again = ParseQuery(formatted);
    ASSERT_TRUE(again.ok()) << formatted;
    EXPECT_EQ(FormatQuery(*again), formatted);
    EXPECT_EQ(again->target, q->target);
  }
}

}  // namespace
}  // namespace query
}  // namespace nettrails
