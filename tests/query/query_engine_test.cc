#include "src/query/query_engine.h"

#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/proxy/proxy.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace query {
namespace {

// Path-vector over a 4-node line: every tuple has exactly one derivation,
// so derivation counts are predictable.
class QueryLineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog =
        runtime::Compile(protocols::PathVectorProgram());
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    topo_ = net::MakeLine(4, 1);
    engines_ = protocols::MakeEngines(&sim_, topo_, *prog);
    querier_ = std::make_unique<ProvenanceQuerier>(
        &sim_, protocols::EnginePtrs(engines_));
    ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  }

  Tuple PathTuple(NodeId x, NodeId z, int64_t c,
                  std::vector<NodeId> hops) {
    ValueList p;
    for (NodeId h : hops) p.push_back(Value::Address(h));
    return Tuple("path", {Value::Address(x), Value::Address(z), Value::Int(c),
                          Value::List(std::move(p))});
  }

  net::Simulator sim_;
  net::Topology topo_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
  std::unique_ptr<ProvenanceQuerier> querier_;
};

TEST_F(QueryLineTest, LineageOfMultiHopPath) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  ASSERT_TRUE(engines_[0]->HasTuple(target));
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  Result<QueryResult> r = querier_->Query(target, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Lineage: the three link tuples along the path (each link(@X,Y,...) and
  // its reversed link_d derivation share the link base tuple).
  EXPECT_EQ(r->leaf_tuples.size(), 3u);
  for (const std::string& leaf : r->leaf_tuples) {
    EXPECT_EQ(leaf.rfind("link(", 0), 0u) << leaf;
  }
}

TEST_F(QueryLineTest, LineageOfDirectPathIsOneLink) {
  Tuple target = PathTuple(0, 1, 1, {0, 1});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  Result<QueryResult> r = querier_->Query(target, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->leaf_tuples.size(), 1u);
  EXPECT_EQ(r->leaf_tuples[0], "link(@0,@1,1)");
}

TEST_F(QueryLineTest, NodeSetCoversPath) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  QueryOptions opts;
  opts.type = QueryType::kNodeSet;
  Result<QueryResult> r = querier_->Query(target, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // All nodes along the derivation chain participated (3 does not: its
  // link tuple lives at 2's side... node 3 hosts link(@3,2) only for the
  // reverse path). At minimum nodes 0..2 must appear.
  EXPECT_TRUE(r->nodes.count(0));
  EXPECT_TRUE(r->nodes.count(1));
  EXPECT_TRUE(r->nodes.count(2));
}

TEST_F(QueryLineTest, DerivCountOnLineIsOne) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  QueryOptions opts;
  opts.type = QueryType::kDerivCount;
  Result<QueryResult> r = querier_->Query(target, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1);
}

TEST_F(QueryLineTest, BaseTupleLineageIsItself) {
  Tuple link("link", {Value::Address(1), Value::Address(2), Value::Int(1)});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  Result<QueryResult> r = querier_->Query(link, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->leaf_tuples.size(), 1u);
  EXPECT_EQ(r->leaf_tuples[0], "link(@1,@2,1)");
  EXPECT_EQ(r->count, 1);
}

TEST_F(QueryLineTest, RemoteTraversalSendsMessages) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  opts.use_cache = false;
  Result<QueryResult> r = querier_->Query(target, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->messages, 0u);
  EXPECT_GT(r->bytes, 0u);
  EXPECT_GT(r->latency, 0u);
}

TEST_F(QueryLineTest, CachingReducesTrafficOnRepeatedQueries) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  opts.use_cache = true;
  Result<QueryResult> first = querier_->Query(target, opts);
  ASSERT_TRUE(first.ok());
  Result<QueryResult> second = querier_->Query(target, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->messages, first->messages);
  EXPECT_EQ(second->leaf_tuples.size(), first->leaf_tuples.size());
  EXPECT_GT(querier_->total_cache_hits(), 0u);
}

TEST_F(QueryLineTest, CacheDisabledKeepsTrafficFlat) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  opts.use_cache = false;
  Result<QueryResult> first = querier_->Query(target, opts);
  Result<QueryResult> second = querier_->Query(target, opts);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->messages, first->messages);
}

TEST_F(QueryLineTest, CacheInvalidatedByProvenanceChange) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  Result<QueryResult> first = querier_->Query(target, opts);
  ASSERT_TRUE(first.ok());
  // Topology change: add a link at node 2; its provenance version bumps.
  sim_.AddLink(2, 0, net::kMillisecond);
  ASSERT_TRUE(protocols::RecoverLink(2, 0, 10, &engines_, &sim_).ok());
  Result<QueryResult> second = querier_->Query(target, opts);
  ASSERT_TRUE(second.ok());
  // Same leaves (the new link does not support this path tuple).
  EXPECT_EQ(second->leaf_tuples.size(), first->leaf_tuples.size());
}

TEST_F(QueryLineTest, SequentialAndParallelAgree) {
  Tuple target = PathTuple(0, 3, 3, {0, 1, 2, 3});
  for (QueryType type :
       {QueryType::kLineage, QueryType::kNodeSet, QueryType::kDerivCount}) {
    QueryOptions seq;
    seq.type = type;
    seq.traversal = Traversal::kSequential;
    seq.use_cache = false;
    QueryOptions par;
    par.type = type;
    par.traversal = Traversal::kParallel;
    par.use_cache = false;
    Result<QueryResult> a = querier_->Query(target, seq);
    Result<QueryResult> b = querier_->Query(target, par);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->count, b->count);
    EXPECT_EQ(a->leaf_tuples, b->leaf_tuples);
    EXPECT_EQ(a->nodes, b->nodes);
  }
}

TEST_F(QueryLineTest, UnknownVidIsLeaf) {
  QueryOptions opts;
  opts.type = QueryType::kDerivCount;
  Result<QueryResult> r = querier_->QueryVid(0, 999999, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count, 1);  // treated as an unexplained base fact
}

TEST_F(QueryLineTest, InvalidHomeRejected) {
  QueryOptions opts;
  EXPECT_FALSE(querier_->QueryVid(99, 1, opts).ok());
  EXPECT_FALSE(querier_->Query(Tuple("x", {Value::Int(1)}), opts).ok());
}

// A diamond: two parallel two-hop routes 0->1->3 and 0->2->3 of equal cost
// produce two alternative derivations of bestcost-selected paths, and
// multiple derivations for derived reach-style tuples.
class QueryDiamondTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog = runtime::Compile(R"(
      materialize(link, infinity, infinity, keys(1,2)).
      materialize(conn, infinity, infinity, keys(1,2)).
      c1 conn(@X,Y) :- link(@X,Y,C).
      c2 conn(@X,Z) :- link(@X,Y,C), conn(@Y,Z), X != Z.
    )");
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    // Diamond edges (directed inserts only: 0->1, 0->2, 1->3, 2->3 with the
    // link tuples inserted at the source only, so derivations stay acyclic).
    sim_.AddNode();
    sim_.AddNode();
    sim_.AddNode();
    sim_.AddNode();
    sim_.AddLink(0, 1);
    sim_.AddLink(0, 2);
    sim_.AddLink(1, 3);
    sim_.AddLink(2, 3);
    for (NodeId i = 0; i < 4; ++i) {
      engines_.push_back(std::make_unique<runtime::Engine>(&sim_, i, *prog));
    }
    querier_ = std::make_unique<ProvenanceQuerier>(
        &sim_, protocols::EnginePtrs(engines_));
    auto link = [](NodeId a, NodeId b) {
      return Tuple("link",
                   {Value::Address(a), Value::Address(b), Value::Int(1)});
    };
    ASSERT_TRUE(engines_[0]->Insert(link(0, 1)).ok());
    ASSERT_TRUE(engines_[0]->Insert(link(0, 2)).ok());
    ASSERT_TRUE(engines_[1]->Insert(link(1, 3)).ok());
    ASSERT_TRUE(engines_[2]->Insert(link(2, 3)).ok());
    sim_.Run();
  }

  net::Simulator sim_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
  std::unique_ptr<ProvenanceQuerier> querier_;
};

TEST_F(QueryDiamondTest, CountsAlternativeDerivations) {
  Tuple conn("conn", {Value::Address(0), Value::Address(3)});
  ASSERT_TRUE(engines_[0]->HasTuple(conn));
  EXPECT_EQ(engines_[0]->CountOf(conn), 2);
  QueryOptions opts;
  opts.type = QueryType::kDerivCount;
  opts.use_cache = false;
  Result<QueryResult> r = querier_->Query(conn, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 2);
}

TEST_F(QueryDiamondTest, LineageUnionsBothBranches) {
  Tuple conn("conn", {Value::Address(0), Value::Address(3)});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  Result<QueryResult> r = querier_->Query(conn, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->leaf_tuples.size(), 4u);  // all four links contribute
}

TEST_F(QueryDiamondTest, ThresholdPruningStopsEarly) {
  Tuple conn("conn", {Value::Address(0), Value::Address(3)});
  QueryOptions unpruned;
  unpruned.type = QueryType::kDerivCount;
  unpruned.traversal = Traversal::kSequential;
  unpruned.use_cache = false;
  Result<QueryResult> full = querier_->Query(conn, unpruned);
  ASSERT_TRUE(full.ok());

  QueryOptions pruned = unpruned;
  pruned.count_threshold = 1;
  Result<QueryResult> cheap = querier_->Query(conn, pruned);
  ASSERT_TRUE(cheap.ok());
  EXPECT_GE(cheap->count, 1);
  EXPECT_TRUE(cheap->truncated);
  EXPECT_LT(cheap->messages, full->messages);
}

// A "kite": chain 0->1->2->3 plus shortcut 0->2, so conn(@0,3) has two
// derivations that SHARE the sub-derivation conn(@2,3) — a long chain
// through node 1 and a short one over the shortcut. The shortcut link's
// latency is raised so the long-chain derivation reaches node 0 first,
// pinning the provenance edge order (long before short) that the
// depth-budget regression below depends on.
class QueryKiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog = runtime::Compile(R"(
      materialize(link, infinity, infinity, keys(1,2)).
      materialize(conn, infinity, infinity, keys(1,2)).
      c1 conn(@X,Y) :- link(@X,Y,C).
      c2 conn(@X,Z) :- link(@X,Y,C), conn(@Y,Z), X != Z.
    )");
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    sim_.AddNode();
    sim_.AddNode();
    sim_.AddNode();
    sim_.AddNode();
    sim_.AddLink(0, 1);
    sim_.AddLink(1, 2);
    sim_.AddLink(2, 3);
    sim_.AddLink(0, 2, 5 * net::kMillisecond);  // slow shortcut
    for (NodeId i = 0; i < 4; ++i) {
      engines_.push_back(std::make_unique<runtime::Engine>(&sim_, i, *prog));
    }
    querier_ = std::make_unique<ProvenanceQuerier>(
        &sim_, protocols::EnginePtrs(engines_));
    auto link = [](NodeId a, NodeId b) {
      return Tuple("link",
                   {Value::Address(a), Value::Address(b), Value::Int(1)});
    };
    ASSERT_TRUE(engines_[0]->Insert(link(0, 1)).ok());
    ASSERT_TRUE(engines_[1]->Insert(link(1, 2)).ok());
    ASSERT_TRUE(engines_[2]->Insert(link(2, 3)).ok());
    ASSERT_TRUE(engines_[0]->Insert(link(0, 2)).ok());
    sim_.Run();
  }

  net::Simulator sim_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
  std::unique_ptr<ProvenanceQuerier> querier_;
};

// Regression for the per-query memo: resolving the long branch first
// exhausts the depth budget partway down, truncating the shared conn(@2,3)
// subtree (0 derivations found there). Memoizing that truncated result as
// complete used to serve the undercount to the short branch — which arrives
// with enough remaining budget to resolve conn(@2,3) fully — collapsing the
// derivation count for conn(@0,3) to 0.
TEST_F(QueryKiteTest, DepthBudgetedCountRecomputesSharedSubtree) {
  Tuple conn("conn", {Value::Address(0), Value::Address(3)});
  ASSERT_TRUE(engines_[0]->HasTuple(conn));
  ASSERT_EQ(engines_[0]->CountOf(conn), 2);

  QueryOptions opts;
  opts.type = QueryType::kDerivCount;
  opts.traversal = Traversal::kSequential;
  opts.use_cache = false;

  // Sanity: with ample depth both derivations are counted.
  Result<QueryResult> full = querier_->Query(conn, opts);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->count, 2);
  EXPECT_FALSE(full->truncated);

  // Budget chosen so the long branch truncates inside conn(@2,3)'s subtree
  // while the short branch, two levels higher, can still resolve it fully:
  // the correct answer is exactly the short branch's derivation.
  opts.max_depth = 6;
  Result<QueryResult> r = querier_->Query(conn, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->count, 1);
}

TEST_F(QueryDiamondTest, DepthLimitTruncates) {
  Tuple conn("conn", {Value::Address(0), Value::Address(3)});
  QueryOptions opts;
  opts.type = QueryType::kLineage;
  opts.max_depth = 2;
  opts.use_cache = false;
  Result<QueryResult> r = querier_->Query(conn, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
}

}  // namespace
}  // namespace query
}  // namespace nettrails
