#include "src/query/cache.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace query {
namespace {

PartialResult SomeResult() {
  PartialResult r;
  r.count = 3;
  r.leaves.insert({42, 1});
  r.nodes.insert(1);
  return r;
}

TEST(CacheTest, MissThenHit) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  EXPECT_EQ(cache.Lookup(key, 1), nullptr);
  cache.Store(key, 1, SomeResult());
  const PartialResult* hit = cache.Lookup(key, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->count, 3);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTest, VersionMismatchInvalidates) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  cache.Store(key, 1, SomeResult());
  EXPECT_EQ(cache.Lookup(key, 2), nullptr);  // provenance changed
  EXPECT_EQ(cache.size(), 0u);               // stale entry evicted
}

TEST(CacheTest, KeyDiscriminatesAllFields) {
  ResultCache cache;
  cache.Store({7, QueryType::kLineage, true, 0}, 1, SomeResult());
  EXPECT_EQ(cache.Lookup({8, QueryType::kLineage, true, 0}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({7, QueryType::kDerivCount, true, 0}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({7, QueryType::kLineage, false, 0}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({7, QueryType::kLineage, true, 5}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({7, QueryType::kLineage, true, 0, 9}, 1), nullptr);
  EXPECT_NE(cache.Lookup({7, QueryType::kLineage, true, 0}, 1), nullptr);
}

// Regression: CacheKey used to omit the remaining traversal depth, so a
// result computed by a shallow query (max_depth=5) was served verbatim to a
// later deep query (max_depth=200) at the same provenance version.
TEST(CacheTest, DepthDiscriminatesEntries) {
  ResultCache cache;
  CacheKey shallow{7, QueryType::kDerivCount, true, 0, 5};
  CacheKey deep{7, QueryType::kDerivCount, true, 0, 200};
  cache.Store(shallow, 1, SomeResult());
  EXPECT_EQ(cache.Lookup(deep, 1), nullptr);
  EXPECT_NE(cache.Lookup(shallow, 1), nullptr);
}

// Regression: truncated results are budget artifacts of the traversal that
// produced them, not properties of the provenance graph; caching one would
// silently under-report to every later query with the same key.
TEST(CacheTest, StoreRefusesTruncatedResults) {
  ResultCache cache;
  CacheKey key{7, QueryType::kDerivCount, true, 0, 5};
  PartialResult r = SomeResult();
  r.truncated = true;
  cache.Store(key, 1, r);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(key, 1), nullptr);
}

TEST(CacheTest, ClearDropsEverything) {
  ResultCache cache;
  cache.Store({1, QueryType::kLineage, true, 0}, 1, SomeResult());
  cache.Store({2, QueryType::kLineage, true, 0}, 1, SomeResult());
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup({1, QueryType::kLineage, true, 0}, 1), nullptr);
}

// Regression: Clear() dropped the entries but kept the hit/miss counters,
// so stats straddling a Clear() conflated two unrelated measurement windows.
TEST(CacheTest, ClearResetsCounters) {
  ResultCache cache;
  CacheKey key{1, QueryType::kLineage, true, 0};
  cache.Store(key, 1, SomeResult());
  EXPECT_NE(cache.Lookup(key, 1), nullptr);
  EXPECT_EQ(cache.Lookup({2, QueryType::kLineage, true, 0}, 1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// Regression: stale-version entries for keys that were never looked up
// again used to accumulate forever, so the map grew without bound under
// churn+query cycles. A version advance now sweeps the whole cache (all
// entries share one version domain), bounding the size by the number of
// distinct keys queried since the last provenance change.
TEST(CacheTest, SizeBoundedUnderChurnQueryCycles) {
  ResultCache cache;
  for (uint64_t version = 1; version <= 100; ++version) {
    // Each "epoch" queries three fresh vids (distinct keys every round, as
    // churn produces new tuples), misses, and caches the results.
    for (Vid vid = version * 10; vid < version * 10 + 3; ++vid) {
      CacheKey key{vid, QueryType::kDerivCount, true, 0, 8};
      if (cache.Lookup(key, version) == nullptr) {
        cache.Store(key, version, SomeResult());
      }
    }
    EXPECT_LE(cache.size(), 3u) << "at version " << version;
  }
}

// A Store carrying a version older than one the cache has already observed
// (a producer that resolved before churn landed) must not resurrect stale
// data after the sweep.
TEST(CacheTest, StaleVersionStoreIsDropped) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  EXPECT_EQ(cache.Lookup(key, 5), nullptr);  // observes version 5
  cache.Store(key, 3, SomeResult());         // raced an older version
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(key, 5), nullptr);
}

// Regression for crash recovery: a restarted node attaches a fresh
// ProvStore whose version counter restarts near zero, so version
// comparison alone cannot tell "same version, same graph" from "same
// version number, different incarnation". Without the restart fence, an
// answer cached at pre-crash version 7 would be served verbatim once the
// new store's counter reaches 7 again.
TEST(CacheTest, InvalidateForRestartFencesOldIncarnation) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  cache.Store(key, 7, SomeResult());
  ASSERT_NE(cache.Lookup(key, 7), nullptr);
  cache.InvalidateForRestart();
  // Same key, same version number, new incarnation: must miss.
  EXPECT_EQ(cache.Lookup(key, 7), nullptr);
  EXPECT_EQ(cache.size(), 0u);

  // The fence also forgets the version watermark: the new incarnation's
  // early versions must be storable (a kept watermark of 7 would make
  // Store(version=2) drop every post-restart result as "stale").
  cache.InvalidateForRestart();
  cache.Store(key, 2, SomeResult());
  EXPECT_NE(cache.Lookup(key, 2), nullptr);
}

TEST(CacheTest, PartialResultMergeStructure) {
  PartialResult a = SomeResult();
  PartialResult b;
  b.count = 10;
  b.leaves.insert({43, 2});
  b.nodes.insert(2);
  b.truncated = true;
  a.MergeStructure(b);
  EXPECT_EQ(a.leaves.size(), 2u);
  EXPECT_EQ(a.nodes.size(), 2u);
  EXPECT_TRUE(a.truncated);
  // MergeStructure never combines counts: the fold owner picks sum (tuple
  // vertex alternatives) or product (exec vertex joint inputs).
  EXPECT_EQ(a.count, 3);
}

TEST(CacheTest, StoreOverwrites) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  cache.Store(key, 1, SomeResult());
  PartialResult other;
  other.count = 99;
  cache.Store(key, 1, other);
  EXPECT_EQ(cache.Lookup(key, 1)->count, 99);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace query
}  // namespace nettrails
