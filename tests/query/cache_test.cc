#include "src/query/cache.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace query {
namespace {

PartialResult SomeResult() {
  PartialResult r;
  r.count = 3;
  r.leaves.insert({42, 1});
  r.nodes.insert(1);
  return r;
}

TEST(CacheTest, MissThenHit) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  EXPECT_EQ(cache.Lookup(key, 1), nullptr);
  cache.Store(key, 1, SomeResult());
  const PartialResult* hit = cache.Lookup(key, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->count, 3);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTest, VersionMismatchInvalidates) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  cache.Store(key, 1, SomeResult());
  EXPECT_EQ(cache.Lookup(key, 2), nullptr);  // provenance changed
  EXPECT_EQ(cache.size(), 0u);               // stale entry evicted
}

TEST(CacheTest, KeyDiscriminatesAllFields) {
  ResultCache cache;
  cache.Store({7, QueryType::kLineage, true, 0}, 1, SomeResult());
  EXPECT_EQ(cache.Lookup({8, QueryType::kLineage, true, 0}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({7, QueryType::kDerivCount, true, 0}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({7, QueryType::kLineage, false, 0}, 1), nullptr);
  EXPECT_EQ(cache.Lookup({7, QueryType::kLineage, true, 5}, 1), nullptr);
  EXPECT_NE(cache.Lookup({7, QueryType::kLineage, true, 0}, 1), nullptr);
}

TEST(CacheTest, ClearDropsEverything) {
  ResultCache cache;
  cache.Store({1, QueryType::kLineage, true, 0}, 1, SomeResult());
  cache.Store({2, QueryType::kLineage, true, 0}, 1, SomeResult());
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup({1, QueryType::kLineage, true, 0}, 1), nullptr);
}

TEST(CacheTest, PartialResultUnionMerges) {
  PartialResult a = SomeResult();
  PartialResult b;
  b.count = 10;
  b.leaves.insert({43, 2});
  b.nodes.insert(2);
  b.truncated = true;
  a.Union(b);
  EXPECT_EQ(a.leaves.size(), 2u);
  EXPECT_EQ(a.nodes.size(), 2u);
  EXPECT_TRUE(a.truncated);
  // Union does not combine counts (sum vs product is the caller's choice).
  EXPECT_EQ(a.count, 3);
}

TEST(CacheTest, StoreOverwrites) {
  ResultCache cache;
  CacheKey key{7, QueryType::kLineage, true, 0};
  cache.Store(key, 1, SomeResult());
  PartialResult other;
  other.count = 99;
  cache.Store(key, 1, other);
  EXPECT_EQ(cache.Lookup(key, 1)->count, 99);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace query
}  // namespace nettrails
