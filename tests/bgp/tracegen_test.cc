#include "src/bgp/tracegen.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "src/bgp/speaker.h"
#include "src/bgp/trace_parser.h"

namespace nettrails {
namespace bgp {
namespace {

TEST(AsTopologyTest, TierSizesAndIds) {
  Rng rng(1);
  AsTopology topo = MakeAsTopology(3, 4, 5, &rng);
  EXPECT_EQ(topo.num_ases, 12u);
  EXPECT_EQ(topo.tier1.size(), 3u);
  EXPECT_EQ(topo.mid.size(), 4u);
  EXPECT_EQ(topo.stubs.size(), 5u);
  // Ids are dense and disjoint.
  std::set<NodeId> all;
  for (NodeId n : topo.tier1) all.insert(n);
  for (NodeId n : topo.mid) all.insert(n);
  for (NodeId n : topo.stubs) all.insert(n);
  EXPECT_EQ(all.size(), 12u);
  EXPECT_EQ(*all.rbegin(), 11u);
}

TEST(AsTopologyTest, Tier1FormsPeeringClique) {
  Rng rng(2);
  AsTopology topo = MakeAsTopology(3, 2, 2, &rng);
  int tier1_peerings = 0;
  for (const AsLink& l : topo.links) {
    bool a_t1 = l.a < 3, b_t1 = l.b < 3;
    if (a_t1 && b_t1) {
      EXPECT_EQ(l.relation, Relation::kPeer);
      ++tier1_peerings;
    }
  }
  EXPECT_EQ(tier1_peerings, 3);  // C(3,2)
}

TEST(AsTopologyTest, EveryStubHasAProvider) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    AsTopology topo = MakeAsTopology(2, 3, 6, &rng);
    for (NodeId stub : topo.stubs) {
      int providers = 0;
      for (const AsLink& l : topo.links) {
        // Stub appears as the customer side (b with kCustomer).
        if (l.b == stub && l.relation == Relation::kCustomer) ++providers;
      }
      EXPECT_GE(providers, 1) << "stub " << stub << " seed " << seed;
      EXPECT_LE(providers, 2);
    }
  }
}

TEST(AsTopologyTest, NoDuplicateLinks) {
  Rng rng(3);
  AsTopology topo = MakeAsTopology(3, 5, 8, &rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const AsLink& l : topo.links) {
    auto key = l.a < l.b ? std::make_pair(l.a, l.b) : std::make_pair(l.b, l.a);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate link " << l.a << "-" << l.b;
  }
}

TEST(AsTopologyTest, InstallRegistersEverything) {
  Rng rng(4);
  AsTopology topo = MakeAsTopology(2, 2, 2, &rng);
  net::Simulator sim;
  topo.Install(&sim);
  EXPECT_EQ(sim.node_count(), 6u);
  EXPECT_EQ(sim.Links().size(), topo.links.size());
}

TEST(TraceGenTest, InitialAnnouncementsCoverAllStubs) {
  Rng rng(5);
  AsTopology topo = MakeAsTopology(2, 3, 4, &rng);
  std::vector<TraceEvent> trace = GenerateTrace(topo, 0, &rng);
  ASSERT_EQ(trace.size(), 4u);
  std::set<Prefix> prefixes;
  for (const TraceEvent& ev : trace) {
    EXPECT_FALSE(ev.withdraw);
    prefixes.insert(ev.prefix);
  }
  EXPECT_EQ(prefixes.size(), 4u);
}

TEST(TraceGenTest, ChurnAlternatesPerPrefix) {
  Rng rng(6);
  AsTopology topo = MakeAsTopology(2, 3, 4, &rng);
  std::vector<TraceEvent> trace = GenerateTrace(topo, 40, &rng);
  // Per prefix, events alternate W, A, W, A... after the initial announce.
  std::map<Prefix, bool> announced;
  for (const TraceEvent& ev : trace) {
    auto it = announced.find(ev.prefix);
    if (it == announced.end()) {
      EXPECT_FALSE(ev.withdraw);  // first event is the announcement
      announced[ev.prefix] = true;
    } else {
      EXPECT_EQ(ev.withdraw, it->second)
          << "double " << (ev.withdraw ? "withdraw" : "announce");
      it->second = !ev.withdraw ? true : false;
    }
  }
}

TEST(TraceGenTest, TimesAreMonotone) {
  Rng rng(7);
  AsTopology topo = MakeAsTopology(2, 2, 3, &rng);
  std::vector<TraceEvent> trace = GenerateTrace(topo, 20, &rng);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].time, trace[i - 1].time);
  }
}

/// Seed determinism at the byte level: the serialized trace — the artifact
/// a workload file would pin — is identical for identical seeds and
/// differs across seeds.
TEST(TraceGenTest, SameSeedYieldsByteIdenticalSerializedTrace) {
  auto gen = [](uint64_t seed) {
    Rng rng(seed);
    AsTopology topo = MakeAsTopology(3, 5, 8, &rng);
    return SerializeTrace(GenerateTrace(topo, 50, &rng));
  };
  const std::string a = gen(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(gen(42), a);
  EXPECT_NE(gen(43), a);
}

/// RouteViews-scale generation: hundreds of ASes, thousands of churn
/// events, and the result still parses back losslessly.
TEST(TraceGenTest, RouteViewsScaleTraceRoundTrips) {
  Rng rng(12);
  AsTopology topo = MakeAsTopology(8, 40, 252, &rng);
  std::vector<TraceEvent> trace = GenerateTrace(topo, 5000, &rng);
  EXPECT_EQ(trace.size(), 252u + 5000u);
  Result<std::vector<TraceEvent>> back = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*back)[i].ToString(), trace[i].ToString()) << i;
  }
}

/// Replaying a trace through the speaker fleet reaches the same routing
/// fixpoint as directly originating each prefix's *final* state: the flaps
/// in between must leave nothing behind (BGP's stable state under
/// Gao-Rexford policies is unique, so history must not matter).
TEST(TraceReplayTest, ReplayReachesTheDirectInsertionFixpoint) {
  Rng rng(11);
  AsTopology topo = MakeAsTopology(2, 3, 4, &rng);
  std::vector<TraceEvent> trace = GenerateTrace(topo, 30, &rng);
  // Final per-prefix state.
  std::map<Prefix, TraceEvent> last;
  for (const TraceEvent& ev : trace) last[ev.prefix] = ev;

  struct Fleet {
    net::Simulator sim;
    std::vector<std::unique_ptr<Speaker>> speakers;
    explicit Fleet(const AsTopology& topo) {
      topo.Install(&sim);
      for (size_t i = 0; i < topo.num_ases; ++i) {
        speakers.push_back(
            std::make_unique<Speaker>(&sim, static_cast<NodeId>(i)));
      }
      for (const AsLink& l : topo.links) {
        speakers[l.a]->AddNeighbor(l.b, l.relation);
        speakers[l.b]->AddNeighbor(l.a, Reverse(l.relation));
      }
    }
    std::string RibFingerprint() const {
      std::string out;
      for (const auto& s : speakers) {
        out += "== as " + std::to_string(s->as()) + "\n";
        for (Prefix p : s->ReachablePrefixes()) {
          out += std::to_string(p) + " via " +
                 s->BestRoute(p)->ToString() + "\n";
        }
      }
      return out;
    }
  };

  Fleet replayed(topo);
  for (const TraceEvent& ev : trace) {
    replayed.sim.ScheduleAt(ev.time, [&replayed, ev]() {
      if (ev.withdraw) {
        replayed.speakers[ev.origin]->Withdraw(ev.prefix);
      } else {
        replayed.speakers[ev.origin]->Originate(ev.prefix);
      }
    });
  }
  replayed.sim.Run();

  Fleet direct(topo);
  for (const auto& [prefix, ev] : last) {
    if (!ev.withdraw) direct.speakers[ev.origin]->Originate(prefix);
  }
  direct.sim.Run();

  const std::string fp = direct.RibFingerprint();
  EXPECT_FALSE(fp.empty());
  EXPECT_EQ(replayed.RibFingerprint(), fp);
}

TEST(TraceGenTest, DeterministicForSeed) {
  Rng rng1(8), rng2(8);
  AsTopology t1 = MakeAsTopology(2, 3, 4, &rng1);
  AsTopology t2 = MakeAsTopology(2, 3, 4, &rng2);
  std::vector<TraceEvent> a = GenerateTrace(t1, 10, &rng1);
  std::vector<TraceEvent> b = GenerateTrace(t2, 10, &rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString());
  }
}

}  // namespace
}  // namespace bgp
}  // namespace nettrails
