#include "src/bgp/policy.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace bgp {
namespace {

TEST(PolicyTest, LocalPrefOrdering) {
  EXPECT_GT(LocalPref(Relation::kCustomer), LocalPref(Relation::kPeer));
  EXPECT_GT(LocalPref(Relation::kPeer), LocalPref(Relation::kProvider));
}

TEST(PolicyTest, GaoRexfordExportMatrix) {
  // Customer routes are exported to everyone.
  EXPECT_TRUE(ShouldExport(Relation::kCustomer, Relation::kCustomer));
  EXPECT_TRUE(ShouldExport(Relation::kCustomer, Relation::kPeer));
  EXPECT_TRUE(ShouldExport(Relation::kCustomer, Relation::kProvider));
  // Peer routes only to customers.
  EXPECT_TRUE(ShouldExport(Relation::kPeer, Relation::kCustomer));
  EXPECT_FALSE(ShouldExport(Relation::kPeer, Relation::kPeer));
  EXPECT_FALSE(ShouldExport(Relation::kPeer, Relation::kProvider));
  // Provider routes only to customers.
  EXPECT_TRUE(ShouldExport(Relation::kProvider, Relation::kCustomer));
  EXPECT_FALSE(ShouldExport(Relation::kProvider, Relation::kPeer));
  EXPECT_FALSE(ShouldExport(Relation::kProvider, Relation::kProvider));
}

TEST(PolicyTest, ReverseIsInvolution) {
  for (Relation r :
       {Relation::kCustomer, Relation::kPeer, Relation::kProvider}) {
    EXPECT_EQ(Reverse(Reverse(r)), r);
  }
  EXPECT_EQ(Reverse(Relation::kCustomer), Relation::kProvider);
  EXPECT_EQ(Reverse(Relation::kPeer), Relation::kPeer);
}

TEST(PolicyTest, RelationNames) {
  EXPECT_STREQ(RelationName(Relation::kCustomer), "customer");
  EXPECT_STREQ(RelationName(Relation::kPeer), "peer");
  EXPECT_STREQ(RelationName(Relation::kProvider), "provider");
}

}  // namespace
}  // namespace bgp
}  // namespace nettrails
