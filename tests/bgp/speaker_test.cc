#include "src/bgp/speaker.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace bgp {
namespace {

// Three ASes in a chain: 0 is 1's provider, 1 is 2's provider.
class SpeakerChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) sim_.AddNode();
    sim_.AddLink(0, 1);
    sim_.AddLink(1, 2);
    for (NodeId i = 0; i < 3; ++i) {
      speakers_.push_back(std::make_unique<Speaker>(&sim_, i));
    }
    speakers_[0]->AddNeighbor(1, Relation::kCustomer);
    speakers_[1]->AddNeighbor(0, Relation::kProvider);
    speakers_[1]->AddNeighbor(2, Relation::kCustomer);
    speakers_[2]->AddNeighbor(1, Relation::kProvider);
  }

  net::Simulator sim_;
  std::vector<std::unique_ptr<Speaker>> speakers_;
};

TEST_F(SpeakerChainTest, CustomerRoutePropagatesUpChain) {
  speakers_[2]->Originate(100);
  sim_.Run();
  std::optional<Route> at1 = speakers_[1]->BestRoute(100);
  ASSERT_TRUE(at1.has_value());
  EXPECT_EQ(at1->as_path, (std::vector<NodeId>{2}));
  std::optional<Route> at0 = speakers_[0]->BestRoute(100);
  ASSERT_TRUE(at0.has_value());
  EXPECT_EQ(at0->as_path, (std::vector<NodeId>{1, 2}));
}

TEST_F(SpeakerChainTest, ProviderRoutePropagatesDownChain) {
  speakers_[0]->Originate(50);
  sim_.Run();
  // Provider routes are exported to customers: 1 and then 2 learn it.
  ASSERT_TRUE(speakers_[1]->BestRoute(50).has_value());
  ASSERT_TRUE(speakers_[2]->BestRoute(50).has_value());
  EXPECT_EQ(speakers_[2]->BestRoute(50)->as_path,
            (std::vector<NodeId>{1, 0}));
}

TEST_F(SpeakerChainTest, WithdrawPropagates) {
  speakers_[2]->Originate(100);
  sim_.Run();
  ASSERT_TRUE(speakers_[0]->BestRoute(100).has_value());
  speakers_[2]->Withdraw(100);
  sim_.Run();
  EXPECT_FALSE(speakers_[0]->BestRoute(100).has_value());
  EXPECT_FALSE(speakers_[1]->BestRoute(100).has_value());
}

TEST_F(SpeakerChainTest, ReachablePrefixesListsLocRib) {
  speakers_[2]->Originate(100);
  speakers_[2]->Originate(200);
  sim_.Run();
  EXPECT_EQ(speakers_[0]->ReachablePrefixes().size(), 2u);
}

TEST(SpeakerPolicyTest, PeerRoutesNotExportedToPeers) {
  // Triangle: 0-1 peers, 1-2 peers. 2 originates; 1 learns it from a peer
  // and must NOT export it to its other peer 0 (valley-free routing).
  net::Simulator sim;
  for (int i = 0; i < 3; ++i) sim.AddNode();
  sim.AddLink(0, 1);
  sim.AddLink(1, 2);
  Speaker s0(&sim, 0), s1(&sim, 1), s2(&sim, 2);
  s0.AddNeighbor(1, Relation::kPeer);
  s1.AddNeighbor(0, Relation::kPeer);
  s1.AddNeighbor(2, Relation::kPeer);
  s2.AddNeighbor(1, Relation::kPeer);
  s2.Originate(100);
  sim.Run();
  EXPECT_TRUE(s1.BestRoute(100).has_value());
  EXPECT_FALSE(s0.BestRoute(100).has_value());
}

TEST(SpeakerPolicyTest, PrefersCustomerOverPeerRoute) {
  // 0 learns prefix 100 from customer 1 and from peer 2; must pick 1.
  net::Simulator sim;
  for (int i = 0; i < 4; ++i) sim.AddNode();
  sim.AddLink(0, 1);
  sim.AddLink(0, 2);
  sim.AddLink(1, 3);
  sim.AddLink(2, 3);
  Speaker s0(&sim, 0), s1(&sim, 1), s2(&sim, 2), s3(&sim, 3);
  s0.AddNeighbor(1, Relation::kCustomer);
  s0.AddNeighbor(2, Relation::kPeer);
  s1.AddNeighbor(0, Relation::kProvider);
  s1.AddNeighbor(3, Relation::kCustomer);
  s2.AddNeighbor(0, Relation::kPeer);
  s2.AddNeighbor(3, Relation::kCustomer);
  s3.AddNeighbor(1, Relation::kProvider);
  s3.AddNeighbor(2, Relation::kProvider);
  s3.Originate(100);
  sim.Run();
  std::optional<Route> best = s0.BestRoute(100);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->as_path, (std::vector<NodeId>{1, 3}));
}

TEST(SpeakerPolicyTest, ShorterPathWinsAtEqualPreference) {
  // 0 has two customers: 1 (direct origin) and 2 (transit to 3's prefix
  // via a longer path). Both are customer routes for prefix 100.
  net::Simulator sim;
  for (int i = 0; i < 4; ++i) sim.AddNode();
  sim.AddLink(0, 1);
  sim.AddLink(0, 2);
  sim.AddLink(2, 3);
  Speaker s0(&sim, 0), s1(&sim, 1), s2(&sim, 2), s3(&sim, 3);
  s0.AddNeighbor(1, Relation::kCustomer);
  s0.AddNeighbor(2, Relation::kCustomer);
  s1.AddNeighbor(0, Relation::kProvider);
  s2.AddNeighbor(0, Relation::kProvider);
  s2.AddNeighbor(3, Relation::kCustomer);
  s3.AddNeighbor(2, Relation::kProvider);
  s3.Originate(100);
  s1.Originate(100);  // same prefix, shorter path
  sim.Run();
  std::optional<Route> best = s0.BestRoute(100);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->as_path, (std::vector<NodeId>{1}));
}

TEST(SpeakerLoopTest, DropsRoutesContainingOwnAs) {
  net::Simulator sim;
  sim.AddNode();
  sim.AddNode();
  sim.AddLink(0, 1);
  Speaker s0(&sim, 0), s1(&sim, 1);
  s0.AddNeighbor(1, Relation::kPeer);
  s1.AddNeighbor(0, Relation::kPeer);
  // Craft an update whose path already contains AS 1.
  net::Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.channel = sim.InternChannel(kBgpChannel);
  msg.payload = Tuple("bgpUpd", {Value::Address(1), Value::Address(0),
                                 Value::Int(100),
                                 Value::List({Value::Address(0),
                                              Value::Address(1)})});
  sim.Send(std::move(msg));
  sim.Run();
  EXPECT_FALSE(s1.BestRoute(100).has_value());
}

TEST_F(SpeakerChainTest, StatsCountMessages) {
  speakers_[2]->Originate(100);
  sim_.Run();
  EXPECT_GT(speakers_[2]->updates_sent(), 0u);
  EXPECT_GT(speakers_[1]->updates_received(), 0u);
}

}  // namespace
}  // namespace bgp
}  // namespace nettrails
