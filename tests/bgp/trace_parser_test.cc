#include "src/bgp/trace_parser.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace bgp {
namespace {

TEST(TraceParserTest, ParsesRecords) {
  Result<std::vector<TraceEvent>> trace = ParseTrace(
      "100 A 7 101\n"
      "200 W 7 101\n");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_EQ((*trace)[0].time, 100u);
  EXPECT_FALSE((*trace)[0].withdraw);
  EXPECT_EQ((*trace)[0].origin, 7u);
  EXPECT_EQ((*trace)[0].prefix, 101);
  EXPECT_TRUE((*trace)[1].withdraw);
}

TEST(TraceParserTest, SkipsCommentsAndBlanks) {
  Result<std::vector<TraceEvent>> trace = ParseTrace(
      "# header\n"
      "\n"
      "100 A 7 101  # inline comment\n"
      "   \n");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->size(), 1u);
}

TEST(TraceParserTest, RejectsMalformedRecords) {
  EXPECT_FALSE(ParseTrace("100 X 7 101\n").ok());
  EXPECT_FALSE(ParseTrace("100 A 7\n").ok());
  EXPECT_FALSE(ParseTrace("abc A 7 101\n").ok());
  EXPECT_FALSE(ParseTrace("100 A 7 101 extra\n").ok());
}

TEST(TraceParserTest, ErrorMentionsLineNumber) {
  Result<std::vector<TraceEvent>> trace =
      ParseTrace("100 A 7 101\nbogus\n");
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().message().find("line 2"), std::string::npos);
}

TEST(TraceParserTest, RoundTripsWithGenerator) {
  Rng rng(42);
  AsTopology topo = MakeAsTopology(2, 3, 4, &rng);
  std::vector<TraceEvent> trace = GenerateTrace(topo, 25, &rng);
  Result<std::vector<TraceEvent>> parsed =
      ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*parsed)[i].time, trace[i].time);
    EXPECT_EQ((*parsed)[i].withdraw, trace[i].withdraw);
    EXPECT_EQ((*parsed)[i].origin, trace[i].origin);
    EXPECT_EQ((*parsed)[i].prefix, trace[i].prefix);
  }
}

TEST(TraceParserTest, EmptyInputIsEmptyTrace) {
  Result<std::vector<TraceEvent>> trace = ParseTrace("");
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->empty());
}

}  // namespace
}  // namespace bgp
}  // namespace nettrails
