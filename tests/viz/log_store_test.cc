#include "src/viz/log_store.h"

#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace viz {
namespace {

class LogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<runtime::CompiledProgramPtr> prog =
        runtime::Compile(protocols::MincostProgram());
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    topo_ = net::MakeLine(3, 1);
    engines_ = protocols::MakeEngines(&sim_, topo_, *prog);
  }

  net::Simulator sim_;
  net::Topology topo_;
  std::vector<std::unique_ptr<runtime::Engine>> engines_;
};

TEST_F(LogStoreTest, CaptureNowRecordsTables) {
  LogStore store(&sim_, protocols::EnginePtrs(engines_));
  ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  const SystemSnapshot& snap = store.CaptureNow();
  EXPECT_EQ(snap.nodes.size(), 3u);
  const NodeSnapshot* n0 = snap.FindNode(0);
  ASSERT_NE(n0, nullptr);
  EXPECT_TRUE(n0->tables.count("link"));
  EXPECT_TRUE(n0->tables.count("mincost"));
  EXPECT_TRUE(n0->tables.count("prov"));  // provenance included by default
  EXPECT_GT(n0->TotalTuples(), 0u);
  EXPECT_EQ(snap.links.size(), 2u);
}

TEST_F(LogStoreTest, OptionsFilterProvenanceAndEh) {
  LogStore::Options opts;
  opts.include_provenance = false;
  LogStore store(&sim_, protocols::EnginePtrs(engines_), opts);
  ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  const SystemSnapshot& snap = store.CaptureNow();
  const NodeSnapshot* n0 = snap.FindNode(0);
  ASSERT_NE(n0, nullptr);
  EXPECT_FALSE(n0->tables.count("prov"));
  for (const auto& [name, tuples] : n0->tables) {
    EXPECT_NE(name.rfind("eh_", 0), 0u) << name;
  }
}

TEST_F(LogStoreTest, PeriodicCapturesProduceTimeline) {
  LogStore store(&sim_, protocols::EnginePtrs(engines_));
  store.CapturePeriodically(net::kSecond, 5 * net::kSecond);
  ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_,
                                      /*run_to_quiescence=*/false)
                  .ok());
  sim_.RunUntil(6 * net::kSecond);
  EXPECT_EQ(store.snapshots().size(), 5u);
  for (size_t i = 1; i < store.snapshots().size(); ++i) {
    EXPECT_GT(store.snapshots()[i].time, store.snapshots()[i - 1].time);
  }
}

TEST_F(LogStoreTest, SnapshotAtFindsLatestBefore) {
  LogStore store(&sim_, protocols::EnginePtrs(engines_));
  ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  store.CaptureNow();
  net::Time t1 = sim_.now();
  EXPECT_EQ(store.SnapshotAt(t1), &store.snapshots().back());
  EXPECT_EQ(store.SnapshotAt(t1 + 100), &store.snapshots().back());
  // Before any snapshot: nothing.
  LogStore empty(&sim_, protocols::EnginePtrs(engines_));
  EXPECT_EQ(empty.SnapshotAt(0), nullptr);
}

TEST_F(LogStoreTest, ReplayShowsStateEvolution) {
  LogStore store(&sim_, protocols::EnginePtrs(engines_));
  store.CaptureNow();  // before links: empty tables
  ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  store.CaptureNow();  // after convergence
  std::vector<Tuple> before = store.TableAt(0, 0, "mincost");
  std::vector<Tuple> after =
      store.TableAt(sim_.now(), 0, "mincost");
  EXPECT_TRUE(before.empty());
  EXPECT_EQ(after.size(), 2u);  // mincost to nodes 1 and 2
}

TEST_F(LogStoreTest, LinkEventsRecorded) {
  LogStore store(&sim_, protocols::EnginePtrs(engines_));
  ASSERT_TRUE(protocols::InstallLinks(topo_, &engines_, &sim_).ok());
  ASSERT_TRUE(sim_.SetLinkUp(0, 1, false).ok());
  ASSERT_TRUE(sim_.SetLinkUp(0, 1, true).ok());
  ASSERT_EQ(store.link_events().size(), 2u);
  EXPECT_FALSE(store.link_events()[0].up);
  EXPECT_TRUE(store.link_events()[1].up);
}

TEST_F(LogStoreTest, TableAtUnknownNodeOrTableIsEmpty) {
  LogStore store(&sim_, protocols::EnginePtrs(engines_));
  store.CaptureNow();
  EXPECT_TRUE(store.TableAt(0, 99, "link").empty());
  EXPECT_TRUE(store.TableAt(0, 0, "nosuch").empty());
}

}  // namespace
}  // namespace viz
}  // namespace nettrails
