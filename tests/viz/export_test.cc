#include "src/viz/export.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace viz {
namespace {

using provenance::Graph;
using provenance::GraphEdge;
using provenance::Vertex;
using provenance::VertexKind;

// A small hand-built graph: tuple t1 <- exec e1 <- {base b1, base b2},
// plus a maybe edge t1 <- e2 <- b1.
Graph SampleGraph() {
  Graph g;
  g.root = 1;
  g.vertices[1] = {1, VertexKind::kTuple, 0, "out(@0,1)", false};
  g.vertices[2] = {2, VertexKind::kRuleExec, 0, "r1", false};
  g.vertices[3] = {3, VertexKind::kTuple, 0, "base(@0,\"a\")", true};
  g.vertices[4] = {4, VertexKind::kTuple, 1, "base(@1,2)", true};
  g.vertices[5] = {5, VertexKind::kRuleExec, 1, "m1", false};
  g.edges.push_back({1, 2, false});
  g.edges.push_back({2, 3, false});
  g.edges.push_back({2, 4, false});
  g.edges.push_back({1, 5, true});
  g.edges.push_back({5, 3, false});
  return g;
}

TEST(ExportTest, DotContainsAllVerticesAndEdges) {
  std::string dot = ToDot(SampleGraph());
  EXPECT_NE(dot.find("digraph provenance"), std::string::npos);
  EXPECT_NE(dot.find("out(@0,1)"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // maybe edge
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);  // base
  // Quotes in labels are escaped.
  EXPECT_NE(dot.find("base(@0,\\\"a\\\")"), std::string::npos);
  // Root highlighted.
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(ExportTest, DotEdgeCountMatches) {
  std::string dot = ToDot(SampleGraph());
  size_t count = 0;
  for (size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(ExportTest, JsonStructure) {
  std::string json = ToJson(SampleGraph());
  EXPECT_NE(json.find("\"vertices\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"tuple\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"ruleExec\""), std::string::npos);
  EXPECT_NE(json.find("\"maybe\": true"), std::string::npos);
  EXPECT_NE(json.find("\"base\": true"), std::string::npos);
  // Escaped quote in label.
  EXPECT_NE(json.find("base(@0,\\\"a\\\")"), std::string::npos);
}

TEST(ExportTest, TextTreeShowsDerivationChain) {
  std::string tree = ToTextTree(SampleGraph());
  EXPECT_NE(tree.find("out(@0,1) @0"), std::string::npos);
  EXPECT_NE(tree.find("<- rule r1 @0"), std::string::npos);
  EXPECT_NE(tree.find("[base]"), std::string::npos);
  EXPECT_NE(tree.find("(maybe)"), std::string::npos);
  // Indentation grows along the chain.
  size_t root_pos = tree.find("out(");
  size_t rule_pos = tree.find("<- rule r1");
  EXPECT_LT(root_pos, rule_pos);
}

TEST(ExportTest, TextTreeDepthLimit) {
  std::string deep = ToTextTree(SampleGraph(), 32);
  std::string shallow = ToTextTree(SampleGraph(), 1);
  EXPECT_LT(shallow.size(), deep.size());
  EXPECT_NE(shallow.find("..."), std::string::npos);
}

TEST(ExportTest, EmptyGraphProducesValidOutput) {
  Graph g;
  g.root = 42;
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_EQ(ToTextTree(g), "");
  EXPECT_NE(ToJson(g).find("\"edges\""), std::string::npos);
}

TEST(ExportTest, SharedSubtreeRenderedSafely) {
  // b1 (vid 3) appears under both e1 and e2; the tree renderer must not
  // loop and renders it twice.
  std::string tree = ToTextTree(SampleGraph());
  size_t count = 0;
  for (size_t pos = 0;
       (pos = tree.find("base(@0,\"a\")", pos)) != std::string::npos; ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace viz
}  // namespace nettrails
