#include "src/viz/hypertree.h"

#include <gtest/gtest.h>

namespace nettrails {
namespace viz {
namespace {

using provenance::Graph;
using provenance::Vertex;
using provenance::VertexKind;

// Balanced binary provenance-shaped tree of the given depth.
Graph BinaryTree(size_t depth) {
  Graph g;
  g.root = 1;
  size_t count = (1u << (depth + 1)) - 1;
  for (Vid v = 1; v <= count; ++v) {
    VertexKind kind = (v % 2 == 0) ? VertexKind::kRuleExec : VertexKind::kTuple;
    g.vertices[v] = {v, kind, 0, "v" + std::to_string(v),
                     2 * v > count};  // leaves are base
    if (2 * v <= count) g.edges.push_back({v, 2 * v, false});
    if (2 * v + 1 <= count) g.edges.push_back({v, 2 * v + 1, false});
  }
  return g;
}

TEST(HypertreeTest, BuildsSpanningTree) {
  Hypertree ht(BinaryTree(3));
  EXPECT_EQ(ht.size(), 15u);
  EXPECT_EQ(ht.root(), 1u);
  EXPECT_EQ(ht.max_depth(), 3u);
  const HypertreeNode* root = ht.node(1);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->leaves, 8u);
}

TEST(HypertreeTest, AllPositionsInsideUnitDisk) {
  Hypertree ht(BinaryTree(4));
  for (const auto& [id, n] : ht.nodes()) {
    EXPECT_LT(std::abs(n.pos), 1.0) << "vertex " << id;
    EXPECT_LT(std::abs(n.base_pos), 1.0);
  }
}

TEST(HypertreeTest, RootAtCenterInitially) {
  Hypertree ht(BinaryTree(3));
  EXPECT_LT(std::abs(ht.node(1)->pos), 1e-12);
  EXPECT_EQ(ht.focused(), 1u);
}

TEST(HypertreeTest, DepthIncreasesRadius) {
  Hypertree ht(BinaryTree(4));
  // Along the leftmost chain, Euclidean radius grows with depth.
  double prev = -1;
  for (Vid v = 1; v <= 16; v *= 2) {
    double r = std::abs(ht.node(v)->base_pos);
    EXPECT_GT(r, prev) << "vertex " << v;
    prev = r;
  }
}

TEST(HypertreeTest, MobiusTranslationProperties) {
  std::complex<double> c(0.3, -0.2);
  // Focus point maps to the origin.
  EXPECT_LT(std::abs(Hypertree::MobiusTranslate(c, c)), 1e-12);
  // Disk is preserved (|z| < 1 stays < 1).
  for (double x = -0.9; x <= 0.9; x += 0.3) {
    for (double y = -0.9; y <= 0.9; y += 0.3) {
      std::complex<double> z(x, y);
      if (std::abs(z) >= 1) continue;
      EXPECT_LT(std::abs(Hypertree::MobiusTranslate(z, c)), 1.0);
    }
  }
  // c = 0 is the identity.
  std::complex<double> z(0.5, 0.1);
  EXPECT_LT(std::abs(Hypertree::MobiusTranslate(z, {0, 0}) - z), 1e-12);
}

TEST(HypertreeTest, FocusCentersSelectedVertex) {
  Hypertree ht(BinaryTree(4));
  ASSERT_TRUE(ht.Focus(9));
  EXPECT_EQ(ht.focused(), 9u);
  EXPECT_LT(std::abs(ht.node(9)->pos), 1e-12);
  // Everything stays in the disk after refocus.
  for (const auto& [id, n] : ht.nodes()) {
    EXPECT_LT(std::abs(n.pos), 1.0);
  }
  EXPECT_FALSE(ht.Focus(999));
}

TEST(HypertreeTest, TransitionFramesInterpolateSmoothly) {
  Hypertree ht(BinaryTree(3));
  const size_t steps = 8;
  std::vector<std::map<Vid, std::complex<double>>> frames =
      ht.TransitionFrames(15, steps);
  ASSERT_EQ(frames.size(), steps);
  // Final frame equals the final focus positions.
  for (const auto& [id, pos] : frames.back()) {
    EXPECT_LT(std::abs(pos - ht.node(id)->pos), 1e-12);
  }
  // The focused vertex converges monotonically-ish to the center: its
  // distance in the last frame is smaller than in the first.
  EXPECT_LT(std::abs(frames.back().at(15)), std::abs(frames.front().at(15)));
  // Per-frame movement is bounded (smoothness proxy): no vertex jumps more
  // than the whole disk in one step.
  for (size_t f = 1; f < frames.size(); ++f) {
    for (const auto& [id, pos] : frames[f]) {
      EXPECT_LT(std::abs(pos - frames[f - 1].at(id)), 1.0);
    }
  }
}

TEST(HypertreeTest, TransitionToUnknownVertexIsEmpty) {
  Hypertree ht(BinaryTree(2));
  EXPECT_TRUE(ht.TransitionFrames(999, 4).empty());
  EXPECT_TRUE(ht.TransitionFrames(3, 0).empty());
}

TEST(HypertreeTest, AsciiRenderShowsFocusAndBoundary) {
  Hypertree ht(BinaryTree(3));
  std::string img = ht.AsciiRender(40, 20);
  EXPECT_NE(img.find('*'), std::string::npos);  // focus marker
  EXPECT_NE(img.find('.'), std::string::npos);  // boundary
  EXPECT_NE(img.find('o'), std::string::npos);  // tuple vertices
  EXPECT_NE(img.find('x'), std::string::npos);  // rule executions
  // 20 lines of 40 chars.
  EXPECT_EQ(img.size(), 20u * 41u);
}

TEST(HypertreeTest, HandlesDagBySpanningTree) {
  // Diamond: 1 -> {2,3} -> 4. Vertex 4 adopted by one parent only.
  Graph g;
  g.root = 1;
  for (Vid v = 1; v <= 4; ++v) {
    g.vertices[v] = {v, VertexKind::kTuple, 0, "v", v == 4};
  }
  g.edges.push_back({1, 2, false});
  g.edges.push_back({1, 3, false});
  g.edges.push_back({2, 4, false});
  g.edges.push_back({3, 4, false});
  Hypertree ht(g);
  EXPECT_EQ(ht.size(), 4u);
  size_t total_children =
      ht.node(2)->children.size() + ht.node(3)->children.size();
  EXPECT_EQ(total_children, 1u);
}

TEST(HypertreeTest, EmptyGraph) {
  Graph g;
  g.root = 7;
  Hypertree ht(g);
  EXPECT_EQ(ht.size(), 0u);
  EXPECT_EQ(ht.node(7), nullptr);
}

}  // namespace
}  // namespace viz
}  // namespace nettrails
