// The (protocol × topology × scenario) regression matrix — the repo's
// workload-level determinism gate.
//
// Every cell runs a full scenario script (examples/scenarios/*.scn) against
// a corpus topology (examples/topologies/*.topo, including file-loaded
// research topologies) under four engine configurations: batch {1,64} ×
// threads {1,4}, with provenance stores attached. The contract per cell:
//
//   - the protocol-state fingerprint (tables + derivation counts) and the
//     canonical provenance fingerprint are bit-identical across all four
//     configurations — batching and sharding must not change the fixpoint;
//   - traffic (events / messages / tuples) is bit-identical across thread
//     counts at a fixed batch size (batching legitimately coalesces
//     frames, so traffic is recorded per batch size);
//   - everything equals the committed golden fingerprints
//     (tests/integration/golden/scenario_fingerprints.txt), so an
//     unintentional semantic change anywhere in the stack shows up as a
//     diff against a reviewed file, not a silent drift.
//
// Regenerating goldens after an *intentional* semantic change:
//
//   NETTRAILS_REGEN_GOLDENS=1 ./build/integration_scenario_matrix_test
//
// then review and commit the rewritten golden file. The regen run still
// enforces the cross-configuration identities and SKIPs (never passes), so
// CI can never "pass" by regenerating.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/net/scenario.h"
#include "src/net/topology.h"
#include "src/protocols/programs.h"
#include "src/query/query_engine.h"
#include "src/runtime/engine.h"
#include "src/runtime/plan.h"

namespace nettrails {
namespace {

std::string SrcPath(const std::string& rel) {
  return std::string(NETTRAILS_SOURCE_DIR) + "/" + rel;
}

/// MINCOST with the distance-vector "infinity" lowered to 64: large enough
/// for every corpus shortest path (the 102-node ISP tops out around 25),
/// small enough to bound the count-to-infinity transient when a scenario
/// temporarily partitions a topology (regional_storm on att_na / ring12).
const char* kMatrixMincost = R"(
    materialize(link, infinity, infinity, keys(1,2)).
    materialize(cost, infinity, infinity, keys(1,2,3)).
    materialize(mincost, infinity, infinity, keys(1,2)).
    mc1 cost(@X,Y,C) :- link(@X,Y,C).
    mc2 cost(@X,Z,C) :- link(@X,Y,C1), mincost(@Y,Z,C2), X != Z,
                        C := C1 + C2, C < 64.
    mc3 mincost(@X,Z,a_min<C>) :- cost(@X,Z,C).
)";

const char* ProgramFor(const std::string& proto) {
  if (proto == "mincost") return kMatrixMincost;
  if (proto == "pathvector") return protocols::PathVectorProgram();
  if (proto == "linkstate") return protocols::LinkStateProgram();
  ADD_FAILURE() << "unknown protocol " << proto;
  return nullptr;
}

net::Topology LoadTopo(const std::string& name) {
  Result<net::Topology> t =
      net::LoadTopologyFile(SrcPath("examples/topologies/" + name + ".topo"));
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.ok() ? *t : net::Topology{};
}

net::Scenario LoadScn(const std::string& name) {
  Result<net::Scenario> s =
      net::LoadScenarioFile(SrcPath("examples/scenarios/" + name + ".scn"));
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return s.ok() ? *s : net::Scenario{};
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

struct CellRun {
  std::string state;    // tables + derivation counts, all nodes
  std::string prov;     // canonical provenance graphs, all nodes
  uint64_t events = 0;  // simulator events executed
  uint64_t messages = 0;
  uint64_t tuples = 0;
  size_t applied = 0;  // scenario events applied (vs skipped)
};

CellRun RunCell(const std::string& proto, const net::Topology& topo,
                const net::Scenario& scn, uint32_t batch, unsigned threads) {
  CellRun out;
  Result<runtime::CompiledProgramPtr> prog =
      runtime::Compile(ProgramFor(proto));
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return out;

  net::Simulator sim;
  sim.set_num_threads(threads);
  runtime::EngineOptions eopts;
  eopts.batch_size = batch;
  std::vector<std::unique_ptr<runtime::Engine>> engines =
      protocols::MakeEngines(&sim, topo, *prog, eopts);
  query::ProvenanceQuerier querier(&sim, protocols::EnginePtrs(engines));

  EXPECT_TRUE(protocols::InstallLinks(topo, &engines, &sim).ok());
  net::ScenarioRunOptions opts;
  opts.on_restored = [&](NodeId id) { querier.RestartNode(id); };
  Result<net::ScenarioRunStats> stats =
      net::RunScenario(scn, topo, &engines, &sim, opts);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (stats.ok()) out.applied = stats->applied;

  for (const auto& e : engines) {
    EXPECT_FALSE(e->overflowed()) << e->last_error();
    EXPECT_TRUE(e->last_error().empty()) << e->last_error();
    out.state += "== node " + std::to_string(e->id()) + "\n";
    for (const auto& [name, info] : e->program().tables) {
      if (!info.materialized) continue;
      for (const Tuple& t : e->TableContents(name)) {
        out.state +=
            t.ToString() + " x" + std::to_string(e->CountOf(t)) + "\n";
      }
    }
  }
  for (size_t i = 0; i < engines.size(); ++i) {
    out.prov += "== prov node " + std::to_string(i) + "\n";
    out.prov += querier.store(static_cast<NodeId>(i))->CanonicalGraph();
  }
  out.events = sim.events_executed();
  const net::TrafficStats t = sim.total_traffic();
  out.messages = t.messages;
  out.tuples = t.tuples;
  return out;
}

std::string HashOf(const std::string& s) {
  Hasher h;
  h.AddString(s);
  return Hex16(h.Digest());
}

struct Cell {
  const char* proto;
  const char* topo;
  const char* scn;
};

// 3 protocols × 4 topologies (all file-loaded; abilene and att_na are the
// research topologies, ring12/grid3x3 are generator exports) × 2 churn
// scripts, plus a crash/restart row and one 102-node ISP cell. Node-crash
// recovery across all three protocols is chaos_test's job; here one
// protocol exercises the scenario-driven crash path on every topology.
const Cell kCells[] = {
    {"mincost", "abilene", "flap_churn"},
    {"mincost", "abilene", "regional_storm"},
    {"mincost", "att_na", "flap_churn"},
    {"mincost", "att_na", "regional_storm"},
    {"mincost", "ring12", "flap_churn"},
    {"mincost", "ring12", "regional_storm"},
    {"mincost", "grid3x3", "flap_churn"},
    {"mincost", "grid3x3", "regional_storm"},
    {"pathvector", "abilene", "flap_churn"},
    {"pathvector", "abilene", "regional_storm"},
    {"pathvector", "att_na", "flap_churn"},
    {"pathvector", "att_na", "regional_storm"},
    {"pathvector", "ring12", "flap_churn"},
    {"pathvector", "ring12", "regional_storm"},
    {"pathvector", "grid3x3", "flap_churn"},
    {"pathvector", "grid3x3", "regional_storm"},
    {"linkstate", "abilene", "flap_churn"},
    {"linkstate", "abilene", "regional_storm"},
    {"linkstate", "att_na", "flap_churn"},
    {"linkstate", "att_na", "regional_storm"},
    {"linkstate", "ring12", "flap_churn"},
    {"linkstate", "ring12", "regional_storm"},
    {"linkstate", "grid3x3", "flap_churn"},
    {"linkstate", "grid3x3", "regional_storm"},
    {"mincost", "abilene", "crash_restart"},
    {"mincost", "att_na", "crash_restart"},
    {"mincost", "ring12", "crash_restart"},
    {"mincost", "grid3x3", "crash_restart"},
    {"mincost", "isp_synth_102", "regional_storm"},
};

std::string GoldenPath() {
  return SrcPath("tests/integration/golden/scenario_fingerprints.txt");
}

std::map<std::string, std::string> LoadGoldens() {
  std::map<std::string, std::string> out;
  std::ifstream in(GoldenPath());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // "cell <proto> <topo> <scn> ..." — key on the first four tokens.
    std::istringstream ss(line);
    std::string cell, proto, topo, scn;
    ss >> cell >> proto >> topo >> scn;
    out[proto + "/" + topo + "/" + scn] = line;
  }
  return out;
}

TEST(ScenarioMatrixTest, AllCellsBitIdenticalAndMatchGoldens) {
  const bool regen = std::getenv("NETTRAILS_REGEN_GOLDENS") != nullptr;
  // NETTRAILS_SCENARIO_FILTER=<substring> restricts the run to cells whose
  // "proto/topo/scn" key contains the substring — used by the sanitizer CI
  // leg, where one cell is enough to drive the full code path. Filtered
  // runs still check goldens per cell but skip the completeness check.
  const char* filter_env = std::getenv("NETTRAILS_SCENARIO_FILTER");
  const std::string filter = filter_env != nullptr ? filter_env : "";
  ASSERT_FALSE(regen && !filter.empty())
      << "refusing to regenerate goldens from a filtered run";
  std::map<std::string, std::string> goldens = LoadGoldens();
  std::string regen_out =
      "# (protocol x topology x scenario) golden fingerprints.\n"
      "# One line per cell: state/prov are 64-bit digests of the converged\n"
      "# table + provenance fingerprints (identical across batch {1,64} x\n"
      "# threads {1,4}); b1/b64 are events/messages/tuples per batch size\n"
      "# (identical across thread counts). Regenerate with\n"
      "# NETTRAILS_REGEN_GOLDENS=1 after an intentional semantic change and\n"
      "# review the diff.\n";

  size_t cells_run = 0;
  for (const Cell& cell : kCells) {
    const std::string key =
        std::string(cell.proto) + "/" + cell.topo + "/" + cell.scn;
    if (!filter.empty() && key.find(filter) == std::string::npos) continue;
    ++cells_run;
    SCOPED_TRACE(std::string(cell.proto) + " x " + cell.topo + " x " +
                 cell.scn);
    const net::Topology topo = LoadTopo(cell.topo);
    const net::Scenario scn = LoadScn(cell.scn);
    ASSERT_GT(topo.num_nodes, 0u);
    ASSERT_FALSE(scn.events.empty());

    const CellRun base = RunCell(cell.proto, topo, scn, 1, 1);
    ASSERT_FALSE(base.state.empty());
    EXPECT_GT(base.applied, 0u)
        << "scenario applied no events — the cell tests nothing";
    uint64_t b64_events = 0, b64_messages = 0, b64_tuples = 0;
    for (uint32_t batch : {1u, 64u}) {
      for (unsigned threads : {1u, 4u}) {
        if (batch == 1 && threads == 1) continue;
        const CellRun r = RunCell(cell.proto, topo, scn, batch, threads);
        EXPECT_EQ(r.state, base.state)
            << "state fingerprint diverged at batch=" << batch
            << " threads=" << threads;
        EXPECT_EQ(r.prov, base.prov)
            << "provenance fingerprint diverged at batch=" << batch
            << " threads=" << threads;
        EXPECT_EQ(r.applied, base.applied);
        if (batch == 1) {
          // Same batch as base: traffic must be thread-invariant too.
          EXPECT_EQ(r.events, base.events) << "threads=" << threads;
          EXPECT_EQ(r.messages, base.messages) << "threads=" << threads;
          EXPECT_EQ(r.tuples, base.tuples) << "threads=" << threads;
        } else if (threads == 1) {
          b64_events = r.events;
          b64_messages = r.messages;
          b64_tuples = r.tuples;
        } else {
          EXPECT_EQ(r.events, b64_events) << "b64 traffic thread-variant";
          EXPECT_EQ(r.messages, b64_messages);
          EXPECT_EQ(r.tuples, b64_tuples);
        }
      }
    }

    const std::string line =
        std::string("cell ") + cell.proto + " " + cell.topo + " " + cell.scn +
        " state=" + HashOf(base.state) + " prov=" + HashOf(base.prov) +
        " b1=" + std::to_string(base.events) + "/" +
        std::to_string(base.messages) + "/" + std::to_string(base.tuples) +
        " b64=" + std::to_string(b64_events) + "/" +
        std::to_string(b64_messages) + "/" + std::to_string(b64_tuples);
    if (regen) {
      regen_out += line + "\n";
    } else {
      auto it = goldens.find(key);
      if (it == goldens.end()) {
        ADD_FAILURE() << "no golden for " << key
                      << " — run NETTRAILS_REGEN_GOLDENS=1 and commit";
      } else {
        EXPECT_EQ(line, it->second) << "fingerprint drifted from golden";
      }
    }
  }

  ASSERT_GT(cells_run, 0u) << "filter '" << filter << "' matched no cells";
  if (regen) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << GoldenPath();
    out << regen_out;
    GTEST_SKIP() << "goldens regenerated at " << GoldenPath()
                 << " — review and commit";
  } else if (filter.empty()) {
    // Stale goldens (cells removed from the matrix) must not linger.
    EXPECT_EQ(goldens.size(), sizeof(kCells) / sizeof(kCells[0]))
        << "golden file has entries for cells not in the matrix";
  }
}

}  // namespace
}  // namespace nettrails
